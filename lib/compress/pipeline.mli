(** The seven-stage compression flow (paper Fig. 5):

    preprocess (gate decomposition) -> ICM -> PD graph -> I-shaped
    simplification -> flipping (primal bridging) -> iterative dual
    bridging -> module placement -> dual-defect net routing.

    Individual bridging stages can be disabled to obtain the baselines:
    [dual_only] (Hsu et al. DAC'21: no I-shape, no primal bridging) and
    [modular_only] (topological deformation via modularization and
    placement alone). *)

type variant =
  | Full  (** the paper's algorithm: primal + dual bridging *)
  | Dual_only  (** Hsu et al. [10]: iterative dual bridging only *)
  | Modular_only  (** no bridging at all; placement + routing *)

type config = {
  variant : variant;
  effort : Tqec_place.Placer.effort;
  seed : int;
  enable_ishape : bool;  (** ablations: disable stage 3 in [Full] runs *)
  z_cap : int option;  (** ablations: chain folding height override *)
  strategy : Tqec_place.Placer.strategy;  (** placement engine *)
  restarts : int;
      (** independent annealing trajectories; best placement wins.
          Deterministic in (seed, restarts) regardless of [jobs] *)
  jobs : int option;
      (** worker domains for multi-start placement and the per-iteration
          routing batches; [None] defers to [TQEC_JOBS] / the machine's
          domain count.  Results are identical for any value *)
  early_stop_margin : float option;
      (** adaptive multi-start early-stop margin (see
          {!Tqec_place.Placer.config}); [None] disables early stopping *)
}

val default_config : config

(** Per-stage observability: counts after each stage. *)
type stage_stats = {
  st_modules : int;  (** constructed modules (paper "#Modules") *)
  st_ishape_merges : int;
  st_points : int;
  st_chains : int;
  st_nodes : int;  (** B*-tree nodes (paper "#Nodes") *)
  st_nets : int;
  st_merged_nets : int;
  st_dual_bridges : int;
}

type t = {
  icm : Tqec_icm.Icm.t;
  graph : Tqec_pdgraph.Pd_graph.t;
  flipping : Tqec_pdgraph.Flipping.t;
  dual : Tqec_pdgraph.Dual_bridge.t;
  fvalue : Tqec_pdgraph.Fvalue.t;
  placement : Tqec_place.Placer.t;
  routing : Tqec_route.Pathfinder.result;
  volume : int;  (** final space-time volume (routing-aware bbox) *)
  stages : stage_stats;
  elapsed : float;  (** seconds *)
}

(** [run ?config circuit] executes the flow on a reversible or Clifford+T
    circuit (gate decomposition runs first when needed). *)
val run : ?config:config -> Tqec_circuit.Circuit.t -> t

(** [run_icm ?config icm] enters the flow after the preprocess stage. *)
val run_icm : ?config:config -> Tqec_icm.Icm.t -> t

(** [check r] runs all structural validators over the result (placement
    overlap/order, routing connectivity, braiding-relation preservation);
    empty when sound. *)
val check : t -> string list
