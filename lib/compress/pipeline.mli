(** The seven-stage compression flow (paper Fig. 5):

    preprocess (gate decomposition) -> ICM -> PD graph -> I-shaped
    simplification -> flipping (primal bridging) -> iterative dual
    bridging -> module placement -> dual-defect net routing.

    Individual bridging stages can be disabled to obtain the baselines:
    [dual_only] (Hsu et al. DAC'21: no I-shape, no primal bridging) and
    [modular_only] (topological deformation via modularization and
    placement alone). *)

type variant =
  | Full  (** the paper's algorithm: primal + dual bridging *)
  | Dual_only  (** Hsu et al. [10]: iterative dual bridging only *)
  | Modular_only  (** no bridging at all; placement + routing *)

type config = {
  variant : variant;
  effort : Tqec_place.Placer.effort;
  seed : int;
  enable_ishape : bool;  (** ablations: disable stage 3 in [Full] runs *)
  z_cap : int option;  (** ablations: chain folding height override *)
  strategy : Tqec_place.Placer.strategy;  (** placement engine *)
  restarts : int;
      (** independent annealing trajectories; best placement wins.
          Deterministic in (seed, restarts) regardless of [jobs] *)
  jobs : int option;
      (** worker domains for multi-start placement and the per-iteration
          routing batches; [None] defers to [TQEC_JOBS] / the machine's
          domain count.  Results are identical for any value *)
  early_stop_margin : float option;
      (** adaptive multi-start early-stop margin (see
          {!Tqec_place.Placer.config}); [None] disables early stopping *)
  partition : int option;
      (** divide-and-conquer placement threshold (see
          {!Tqec_place.Placer.config}); [None] (the default) defers to
          the placer's automatic node-count threshold
          ([auto_partition]) *)
  auto_partition : int option;
      (** override for the placer's automatic partition threshold (see
          {!Tqec_place.Placer.config}); [None] (the default) keeps the
          placer's default (4000 nodes — above every paper-suite
          instance, so those stay single-die bit-for-bit) *)
  corridor_cells : int option;
      (** hierarchical-routing threshold override (see
          {!Tqec_route.Pathfinder.config}); [None] (the default) keeps
          the router's default.  Exposed so a fuzz/replay harness can
          reproduce a run's exact routing trajectory from its recorded
          flag vector *)
  corridor_cache : bool;
      (** corridor reuse across negotiation iterations (see
          {!Tqec_route.Pathfinder.config}; default [true]).  Routes are
          bit-identical either way — [false] exists for cross-checks
          and benchmark baselines *)
  sa_moves_cap : int option;
      (** hard ceiling on annealing moves per trajectory (see
          {!Tqec_place.Placer.config}); [None] (the default) keeps the
          effort-derived budget.  The fuzzing harness bounds per-case
          placement work with it *)
  debug : bool;
      (** per-stage progress trace on stderr (also threaded into the
          router's negotiation trace).  A config field rather than an
          ambient [TQEC_DEBUG] read, so concurrent pipeline runs — e.g.
          requests inside the serving daemon — are isolated; the CLI
          layer defaults it from the environment *)
  verify : bool option;
      (** [Some true] forces the whole-pipeline translation validation
          after the run ({!verify}), [Some false] disables it; [None]
          (the default) defers to the [TQEC_VERIFY] environment hook,
          which is re-read on every call (never captured at load time) *)
}

val default_config : config

(** Raised when a requested post-run validation finds violations (and,
    over time, by any stage that detects an unrecoverable inconsistency).
    Structured — stage plus message — so a long-running server can catch
    it at the request boundary and answer with a failed-request response
    instead of dying; the CLI layers report it and exit non-zero. *)
exception Stage_failure of { stage : string; message : string }

(** Per-stage observability: counts after each stage. *)
type stage_stats = {
  st_modules : int;  (** constructed modules (paper "#Modules") *)
  st_ishape_merges : int;
  st_points : int;
  st_chains : int;
  st_nodes : int;  (** B*-tree nodes (paper "#Nodes") *)
  st_nets : int;
  st_merged_nets : int;
  st_dual_bridges : int;
}

type t = {
  icm : Tqec_icm.Icm.t;
  graph : Tqec_pdgraph.Pd_graph.t;
  merges : Tqec_pdgraph.Ishape.merge list;
      (** I-shape merges performed, in row order (the documented merge
          map the verifier replays) *)
  flipping : Tqec_pdgraph.Flipping.t;
  dual : Tqec_pdgraph.Dual_bridge.t;
  fvalue : Tqec_pdgraph.Fvalue.t;
  placement : Tqec_place.Placer.t;
  routing : Tqec_route.Pathfinder.result;
  grid_mem : Tqec_route.Grid.mem;
      (** sparse routing-grid occupancy after routing: how many tiles
          (and cells) of the substrate volume were materialized — the
          memory-scaling signal the scale-tier benchmarks track *)
  volume : int;  (** final space-time volume (routing-aware bbox) *)
  stages : stage_stats;
  elapsed : float;  (** seconds *)
  timings : (string * float) list;
      (** per-stage wall time in seconds, in execution order (bridging,
          placement, routing, finish); sums to roughly [elapsed].
          Consumed by [tqecc --timings]. *)
}

(** [run ?config ?on_stage circuit] executes the flow on a reversible or
    Clifford+T circuit (gate decomposition runs first when needed).
    [on_stage name seconds] is invoked as each stage completes — the
    serving daemon streams these as progress frames. *)
val run :
  ?config:config -> ?on_stage:(string -> float -> unit) ->
  Tqec_circuit.Circuit.t -> t

(** [run_icm ?config ?on_stage icm] enters the flow after the preprocess
    stage.

    When [config.verify] asks for it (explicitly, or via the [TQEC_VERIFY]
    environment hook re-read on each call), the full translation
    validation ({!verify}) runs on the result and a violated invariant
    raises {!Stage_failure} after rendering the report to stderr. *)
val run_icm :
  ?config:config -> ?on_stage:(string -> float -> unit) ->
  Tqec_icm.Icm.t -> t

(** [summary r] is the deterministic one-line result record (name,
    volume, die dimensions, module/node/bridge counts, routing success)
    — byte-identical across runs with the same (input, seed, knobs) for
    any worker count.  [tqecc compress] prints it (adding wall-clock
    unless [--porcelain]) and the serving daemon caches and returns it
    verbatim, which is what makes served-vs-CLI parity checkable by
    string comparison. *)
val summary : t -> string

(** [fingerprint r] is a hex digest of everything the determinism
    contract promises — reported volume, die dimensions, every node
    position/rotation, and every routed cell of every net in order.
    Two runs agree on it iff they agree on the full geometric result:
    the equality the jobs-invariance and corridor-cache cross-checks
    pin ([tqecc check --fingerprint], the fuzz determinism oracles). *)
val fingerprint : t -> string

(** [verify ?stages r] re-derives and cross-checks the invariants of
    every pipeline boundary (default: all stages) via {!Tqec_verify};
    see {!Tqec_verify.Check.run}. *)
val verify :
  ?stages:Tqec_verify.Violation.stage list -> t -> Tqec_verify.Violation.report

(** [check r] = [Tqec_verify.Violation.to_strings (verify r)]; empty when
    sound.  Deprecated alias kept for existing callers — new code should
    use {!verify} and inspect the structured report. *)
val check : t -> string list
