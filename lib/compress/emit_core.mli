(** Component-level geometry emission (the engine behind {!Emit}).

    Takes the stage artifacts directly instead of a {!Pipeline.t}, so the
    pipeline itself can emit geometry for verification without a module
    cycle.  Emission is deterministic: primal structures are ordered by
    their smallest module id and dual structures follow the route order,
    so equal artifacts yield identical geometry. *)

(** [primal_structures graph flipping placement] groups the placed alive
    modules into physically-bridged structures (one per flipping chain,
    through its points' members; every other module its own structure),
    ordered by ascending smallest member. *)
val primal_structures :
  Tqec_pdgraph.Pd_graph.t ->
  Tqec_pdgraph.Flipping.t ->
  Tqec_place.Placer.t ->
  int list list

val geometry :
  name:string ->
  graph:Tqec_pdgraph.Pd_graph.t ->
  flipping:Tqec_pdgraph.Flipping.t ->
  placement:Tqec_place.Placer.t ->
  routing:Tqec_route.Pathfinder.result ->
  Tqec_geom.Geometry.t
