module Icm = Tqec_icm.Icm
module Suite = Tqec_circuit.Suite
module Pretty = Tqec_util.Pretty
module Stats = Tqec_util.Stats

type row = {
  r_name : string;
  r_stats : Icm.stats;
  r_modules : int;
  r_nodes : int;
  r_canonical : int;
  r_lin1d : int;
  r_lin2d : int;
  r_dual_only : int;
  r_dual_only_runtime : float;
  r_ours : int;
  r_ours_runtime : float;
  r_paper : Suite.paper_row;
  r_scale : int;
}

let scale_note rows =
  if List.for_all (fun r -> r.r_scale = 1) rows then ""
  else
    Printf.sprintf
      "note: rows marked @1/k ran on instances scaled down by k; paper\n\
       reference values are for the full-size circuits.\n"

let name_of r =
  if r.r_scale = 1 then r.r_name
  else Printf.sprintf "%s@1/%d" r.r_name r.r_scale

let table1 rows =
  let t =
    Pretty.create
      [ "Benchmark"; "#Qubits"; "#CNOTs"; "#|Y>"; "#|A>"; "#Modules";
        "(paper)"; "#Nodes"; "(paper)" ]
  in
  List.iter
    (fun r ->
      Pretty.add_row t
        [
          name_of r;
          string_of_int r.r_stats.Icm.s_qubits;
          string_of_int r.r_stats.Icm.s_cnots;
          string_of_int r.r_stats.Icm.s_y;
          string_of_int r.r_stats.Icm.s_a;
          string_of_int r.r_modules;
          string_of_int r.r_paper.Suite.p_modules;
          string_of_int r.r_nodes;
          string_of_int r.r_paper.Suite.p_nodes;
        ])
    rows;
  "Table 1: benchmark statistics\n" ^ scale_note rows ^ Pretty.render t

(* Degenerate instances (zero volume / zero reference) make the ratio
   helpers return nan; render those cells as "n/a" and keep them out of
   the table averages instead of letting nan propagate. *)
let finite_cell fmt v = if Float.is_finite v then fmt v else "n/a"

let ratio_cell num den =
  finite_cell Pretty.float3 (Stats.ratio (float_of_int num) (float_of_int den))

let table2 rows =
  let t =
    Pretty.create
      [ "Benchmark"; "Canonical"; "Ratio"; "Lin[11] 1D"; "Ratio";
        "Lin[11] 2D"; "Ratio"; "Ours" ]
  in
  List.iter
    (fun r ->
      Pretty.add_row t
        [
          name_of r;
          Pretty.int_with_commas r.r_canonical;
          ratio_cell r.r_canonical r.r_ours;
          Pretty.int_with_commas r.r_lin1d;
          ratio_cell r.r_lin1d r.r_ours;
          Pretty.int_with_commas r.r_lin2d;
          ratio_cell r.r_lin2d r.r_ours;
          Pretty.int_with_commas r.r_ours;
        ])
    rows;
  let avg pick =
    Stats.mean_finite
      (List.map
         (fun r -> Stats.ratio (float_of_int (pick r)) (float_of_int r.r_ours))
         rows)
  in
  let avg_cell pick = finite_cell Pretty.float3 (avg pick) in
  Pretty.add_rule t;
  Pretty.add_row t
    [
      "Avg. ratio"; ""; avg_cell (fun r -> r.r_canonical); "";
      avg_cell (fun r -> r.r_lin1d); "";
      avg_cell (fun r -> r.r_lin2d); "";
    ];
  let paper_avgs =
    Printf.sprintf
      "paper averages: canonical 24.037, Lin 1D 13.876, Lin 2D 12.778\n"
  in
  "Table 2: space-time volume vs canonical and Lin et al. [11]\n"
  ^ scale_note rows ^ Pretty.render t ^ paper_avgs

let table3 rows =
  let t =
    Pretty.create
      [ "Benchmark"; "[10] Volume"; "Ratio"; "[10] Runtime(s)"; "Ours Volume";
        "Ours Runtime(s)"; "Paper ratio" ]
  in
  List.iter
    (fun r ->
      Pretty.add_row t
        [
          name_of r;
          Pretty.int_with_commas r.r_dual_only;
          ratio_cell r.r_dual_only r.r_ours;
          Pretty.float2 r.r_dual_only_runtime;
          Pretty.int_with_commas r.r_ours;
          Pretty.float2 r.r_ours_runtime;
          ratio_cell r.r_paper.Suite.p_hsu r.r_paper.Suite.p_ours;
        ])
    rows;
  Pretty.add_rule t;
  let avg =
    Stats.mean_finite
      (List.map
         (fun r ->
           Stats.ratio (float_of_int r.r_dual_only) (float_of_int r.r_ours))
         rows)
  in
  Pretty.add_row t
    [ "Avg. ratio"; ""; finite_cell Pretty.float3 avg; ""; ""; ""; "2.121" ];
  "Table 3: space-time volume vs dual-only bridging (Hsu et al. [10])\n"
  ^ scale_note rows ^ Pretty.render t

let fig1 series =
  let t = Pretty.create [ "Configuration"; "Volume"; "Paper" ] in
  List.iter
    (fun (name, measured, paper) ->
      Pretty.add_row t [ name; string_of_int measured; string_of_int paper ])
    series;
  "Figure 1: 3-CNOT example volume sequence\n" ^ Pretty.render t

let summary rows =
  let avg pick =
    finite_cell
      (Printf.sprintf "%.2f")
      (Stats.mean_finite
         (List.map
            (fun r ->
              Stats.ratio (float_of_int (pick r)) (float_of_int r.r_ours))
            rows))
  in
  let reduction =
    finite_cell
      (Printf.sprintf "%.1f%%")
      (Stats.mean_finite
         (List.map
            (fun r ->
              Stats.percent_reduction
                (float_of_int r.r_dual_only)
                (float_of_int r.r_ours))
            rows))
  in
  Printf.sprintf
    "summary: average volume ratios vs ours — canonical %s (paper 24.04), \
     Lin 1D %s (paper 13.88), Lin 2D %s (paper 12.78), dual-only %s \
     (paper 2.12); average reduction over dual-only bridging %s (paper \
     47.4%%).\n"
    (avg (fun r -> r.r_canonical))
    (avg (fun r -> r.r_lin1d))
    (avg (fun r -> r.r_lin2d))
    (avg (fun r -> r.r_dual_only))
    reduction
