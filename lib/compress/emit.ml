module Geometry = Tqec_geom.Geometry

let geometry (r : Pipeline.t) =
  Emit_core.geometry ~name:r.Pipeline.icm.Tqec_icm.Icm.name
    ~graph:r.Pipeline.graph ~flipping:r.Pipeline.flipping
    ~placement:r.Pipeline.placement ~routing:r.Pipeline.routing

let check r = Geometry.check (geometry r)

let volume_consistent r =
  (* the emitted bounding box never exceeds the reported volume (the
     report additionally covers node margins at the die boundary) *)
  Geometry.volume (geometry r) <= r.Pipeline.volume
