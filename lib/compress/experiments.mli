(** The experiment harness regenerating every table and figure of the
    paper's evaluation (Tables 1-3, the Fig. 1 volume sequence).

    Effort and instance scale come from the environment when not given:
    [TQEC_EFFORT] in quick|normal|full (default quick for the bench
    harness) and [TQEC_SCALE] (an integer divisor applied to the largest
    benchmarks so the harness terminates in minutes; 1 = full size). *)

type config = {
  effort : Tqec_place.Placer.effort;
  scale : int;  (** divisor for gate counts; 1 = full-size instances *)
  auto_scale : bool;
      (** additionally scale the largest instances down so each stays
          near the largest tractable size (rd84-scale, ~2600 modules);
          disable with TQEC_FULLSIZE=1 for a full-size run *)
  seed : int;
  benchmarks : string list;  (** names to run; defaults to all eight *)
  restarts : int;
      (** independent annealing trajectories per placement (multi-start;
          best wins); deterministic in (seed, restarts) *)
  jobs : int option;
      (** worker domains for the suite fan-out; [None] defers to
          [TQEC_JOBS] / the machine's domain count, [Some 1] is the
          historical serial behaviour *)
  early_stop_margin : float option;
      (** adaptive multi-start early-stop margin (see
          {!Tqec_place.Placer.config}); [None] disables early stopping *)
  partition : int option;
      (** divide-and-conquer placement cap (see
          {!Tqec_place.Placer.config}); [None] keeps single-die
          annealing *)
  debug : bool;
      (** per-stage pipeline/router traces on stderr (see
          {!Pipeline.config}); defaults from [TQEC_DEBUG] in
          {!config_from_env} *)
}

(** [config_from_env ()] reads TQEC_EFFORT / TQEC_SCALE / TQEC_SEED /
    TQEC_RESTARTS / TQEC_JOBS / TQEC_EARLY_STOP ("off" to disable) /
    TQEC_PARTITION (a node cap; unset or non-positive to disable) /
    TQEC_DEBUG.  All reads happen at call time (an entry point builds
    its defaults once per invocation); nothing is captured at module
    load, so a long-running process never freezes these. *)
val config_from_env : unit -> config

(** [partition_from_env ()] parses TQEC_PARTITION alone — the shared
    default for [tqecc --partition] and the benchmark harness. *)
val partition_from_env : unit -> int option

(** [run_benchmark config entry] measures one suite entry end to end. *)
val run_benchmark : config -> Tqec_circuit.Suite.entry -> Report.row

(** [run_all config] measures the selected benchmarks in table order,
    fanning instances out over [config.jobs] domains; rows keep suite
    order and match a serial run exactly. *)
val run_all : config -> Report.row list

(** [fig1_series ()] runs the four Fig. 1 configurations on the 3-CNOT
    example and returns (name, measured volume, paper volume) triples. *)
val fig1_series : unit -> (string * int * int) list

(** [render_all config] runs everything and returns the full report
    (Tables 1-3, Fig. 1, summary). *)
val render_all : config -> string
