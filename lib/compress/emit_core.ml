module Pd_graph = Tqec_pdgraph.Pd_graph
module Flipping = Tqec_pdgraph.Flipping
module Placer = Tqec_place.Placer
module Super_module = Tqec_place.Super_module
module Pathfinder = Tqec_route.Pathfinder
module Geometry = Tqec_geom.Geometry
module Defect = Tqec_geom.Defect
module Vec3 = Tqec_util.Vec3
module Box3 = Tqec_util.Box3
module Union_find = Tqec_util.Union_find

let double (c : Vec3.t) ~dual =
  let off = if dual then 1 else 0 in
  Vec3.make ((2 * c.x) + off) ((2 * c.y) + off) ((2 * c.z) + off)

(* Emit a cell set as strands of one structure: one 2-vertex strand per
   adjacent pair, plus single-vertex strands for isolated cells. *)
let emit_cells ~next_id ~structure ~dtype g cells =
  let in_set = Hashtbl.create 64 in
  List.iter (fun c -> Hashtbl.replace in_set c ()) cells;
  let covered = Hashtbl.create 64 in
  let dual = dtype = Defect.Dual in
  let g = ref g in
  List.iter
    (fun c ->
      (* canonical edges: only towards the positive axis directions *)
      let pos_neighbors (p : Vec3.t) =
        [
          { p with Vec3.x = p.Vec3.x + 1 };
          { p with Vec3.y = p.Vec3.y + 1 };
          { p with Vec3.z = p.Vec3.z + 1 };
        ]
      in
      List.iter
        (fun n ->
          if Hashtbl.mem in_set n then begin
            Hashtbl.replace covered c ();
            Hashtbl.replace covered n ();
            let id = !next_id in
            incr next_id;
            g :=
              Geometry.add_defect !g
                (Defect.make ~id ~structure ~dtype ~closed:false
                   [ double ~dual c; double ~dual n ])
          end)
        (pos_neighbors c))
    cells;
  List.iter
    (fun c ->
      if not (Hashtbl.mem covered c) then begin
        let id = !next_id in
        incr next_id;
        g :=
          Geometry.add_defect !g
            (Defect.make ~id ~structure ~dtype ~closed:false
               [ double ~dual c ])
      end)
    cells;
  !g

(* Primal structures: union the modules of every chain (through its
   points' members) — these are physically bridged; everything else is
   its own structure.  Structures are listed by ascending smallest
   member and each member list ascends, so structure ids are stable
   across runs (hash layout must not leak into emitted geometry). *)
let primal_structures (graph : Pd_graph.t) (flipping : Flipping.t)
    (placement : Placer.t) =
  let n = Pd_graph.n_modules_constructed graph in
  let uf = Union_find.create n in
  let members_of = Hashtbl.create 64 in
  List.iter
    (fun (rep, ms) -> Hashtbl.replace members_of rep ms)
    flipping.Flipping.points;
  List.iter
    (fun chain ->
      let all_members =
        List.concat_map
          (fun rep ->
            match Hashtbl.find_opt members_of rep with
            | Some ms -> ms
            | None -> [ rep ])
          chain
      in
      match all_members with
      | [] -> ()
      | first :: rest ->
          List.iter (fun m -> ignore (Union_find.union uf first m)) rest)
    flipping.Flipping.chains;
  let node_of_module = placement.Placer.sm.Super_module.node_of_module in
  let groups = Hashtbl.create 64 in
  for m = n - 1 downto 0 do
    if
      Hashtbl.mem node_of_module m
      && (Pd_graph.module_get graph m).Pd_graph.m_alive
    then begin
      let root = Union_find.find uf m in
      let existing = try Hashtbl.find groups root with Not_found -> [] in
      Hashtbl.replace groups root (m :: existing)
    end
  done;
  (* hash-order: member lists ascend (ids were prepended in descending
     order) and the groups are sorted, so the fold order cannot leak *)
  List.sort compare (Hashtbl.fold (fun _root ms acc -> ms :: acc) groups [])

let geometry ~name ~(graph : Pd_graph.t) ~(flipping : Flipping.t)
    ~(placement : Placer.t) ~(routing : Pathfinder.result) =
  let g = ref (Geometry.empty name) in
  let next_id = ref 0 in
  let structure = ref 0 in
  (* primal strands *)
  List.iter
    (fun modules ->
      let cells = List.map (Placer.module_cell placement) modules in
      g :=
        emit_cells ~next_id ~structure:!structure ~dtype:Defect.Primal !g cells;
      incr structure)
    (primal_structures graph flipping placement);
  (* dual strands: routed trees, with multiply-used pin cells kept only
     in the first structure that visits them *)
  let pin_owner = Hashtbl.create 64 in
  List.iter
    (fun (routed : Pathfinder.routed) ->
      let cells =
        List.filter
          (fun c ->
            match Hashtbl.find_opt pin_owner c with
            | Some owner -> owner = routed.Pathfinder.r_net
            | None ->
                Hashtbl.replace pin_owner c routed.Pathfinder.r_net;
                true)
          routed.Pathfinder.r_cells
      in
      g := emit_cells ~next_id ~structure:!structure ~dtype:Defect.Dual !g cells;
      incr structure)
    routing.Pathfinder.routes;
  (* distillation boxes *)
  Array.iteri
    (fun i nd ->
      match nd.Super_module.nd_kind with
      | Super_module.Distill_sm { box; _ } ->
          let bw, bh, bd =
            match box with
            | Geometry.Y_box -> Geometry.y_box_dims
            | Geometry.A_box -> Geometry.a_box_dims
          in
          let x, y = placement.Placer.node_pos.(i) in
          let w, h =
            if placement.Placer.rotated.(i) then (bh, bw) else (bw, bh)
          in
          g :=
            Geometry.add_box !g
              {
                Geometry.b_kind = box;
                b_box =
                  Box3.make (Vec3.make x y 0)
                    (Vec3.make (x + w - 1) (y + h - 1) (bd - 1));
              }
      | _ -> ())
    placement.Placer.sm.Super_module.nodes;
  !g
