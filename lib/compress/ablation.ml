module Icm = Tqec_icm.Icm
module Placer = Tqec_place.Placer
module Pretty = Tqec_util.Pretty

type datum = { a_label : string; a_volume : int; a_nodes : int; a_runtime : float }

type study = { s_name : string; s_data : datum list }

let measure label config icm =
  let r = Pipeline.run_icm ~config icm in
  {
    a_label = label;
    a_volume = r.Pipeline.volume;
    a_nodes = r.Pipeline.stages.Pipeline.st_nodes;
    a_runtime = r.Pipeline.elapsed;
  }

let ishape icm ~effort =
  let base = { Pipeline.default_config with effort } in
  {
    s_name = "I-shaped simplification";
    s_data =
      [
        measure "with I-shape" base icm;
        measure "without I-shape" { base with Pipeline.enable_ishape = false } icm;
      ];
  }

let flipping_seeds icm ~effort ~seeds =
  let base = { Pipeline.default_config with effort } in
  {
    s_name = "flipping start seed";
    s_data =
      List.map
        (fun seed ->
          measure (Printf.sprintf "seed %d" seed)
            { base with Pipeline.seed } icm)
        seeds;
  }

let z_cap icm ~effort ~caps =
  let base = { Pipeline.default_config with effort } in
  {
    s_name = "chain folding height (z_cap)";
    s_data =
      measure "auto" base icm
      :: List.map
           (fun cap ->
             measure (Printf.sprintf "z_cap %d" cap)
               { base with Pipeline.z_cap = Some cap } icm)
           caps;
  }

let effort icm =
  {
    s_name = "placement effort";
    s_data =
      List.map
        (fun (label, effort) ->
          measure label { Pipeline.default_config with effort } icm)
        [ ("quick", Placer.Quick); ("normal", Placer.Normal) ];
  }

let strategy icm ~effort =
  let base = { Pipeline.default_config with effort } in
  {
    s_name = "placement strategy";
    s_data =
      [
        measure "B*-tree annealing" base icm;
        measure "force-directed shelves"
          { base with Pipeline.strategy = Placer.Force_directed }
          icm;
      ];
  }

let render study =
  let t = Pretty.create [ "configuration"; "volume"; "nodes"; "runtime (s)" ] in
  List.iter
    (fun d ->
      Pretty.add_row t
        [
          d.a_label;
          Pretty.int_with_commas d.a_volume;
          string_of_int d.a_nodes;
          Pretty.float2 d.a_runtime;
        ])
    study.s_data;
  Printf.sprintf "Ablation: %s\n%s" study.s_name (Pretty.render t)

let run_default ?(scale = 8) () =
  let entry =
    match Tqec_circuit.Suite.find "rd84_142" with
    | Some e -> e
    (* partial: rd84_142 is a compiled-in suite entry; its absence is a
       build defect, not a runtime condition *)
    | None -> assert false
  in
  let circuit = Tqec_circuit.Suite.scaled ~factor:scale entry in
  let icm =
    Tqec_icm.Decompose.run (Tqec_circuit.Clifford_t.decompose circuit)
  in
  let e = Placer.Quick in
  String.concat "\n"
    [
      render (ishape icm ~effort:e);
      render (flipping_seeds icm ~effort:e ~seeds:[ 1; 42; 1337 ]);
      render (z_cap icm ~effort:e ~caps:[ 2; 4; 8 ]);
      render (effort icm);
      render (strategy icm ~effort:e);
    ]
