module Suite = Tqec_circuit.Suite
module Generator = Tqec_circuit.Generator
module Clifford_t = Tqec_circuit.Clifford_t
module Decompose = Tqec_icm.Decompose
module Icm = Tqec_icm.Icm
module Placer = Tqec_place.Placer

type config = {
  effort : Placer.effort;
  scale : int;
  auto_scale : bool;
  seed : int;
  benchmarks : string list;
  restarts : int;
  jobs : int option;
  early_stop_margin : float option;
  partition : int option;
  debug : bool;
}

(* env-read: call-time capture, daemon-safe by construction — [env] is
   only reached from [partition_from_env] / [config_from_env], which the
   CLI and bench entry points call once per invocation to build their
   defaults.  The serving daemon never consults the environment for
   request-scoped behavior: every request carries explicit knobs. *)
let env name = Sys.getenv_opt name

(* TQEC_PARTITION: node-count cap for divide-and-conquer placement
   ("400" = partition instances beyond 400 nodes); "off" / unset / a
   non-positive value keeps the single-die annealer. *)
let partition_from_env () =
  match env "TQEC_PARTITION" with
  | Some s -> (
      match int_of_string_opt s with
      | Some v when v >= 1 -> Some v
      | _ -> None)
  | None -> None

(* Keep each instance near the largest size that places and routes in a
   few minutes (about rd84's 2600 modules). *)
let auto_factor (entry : Suite.entry) =
  let modules = entry.Suite.paper.Suite.p_modules in
  max 1 ((modules + 2599) / 2600)

let config_from_env () =
  let effort =
    match env "TQEC_EFFORT" with
    | Some s -> (
        match Placer.effort_of_string (String.lowercase_ascii s) with
        | Some e -> e
        | None -> Placer.Quick)
    | None -> Placer.Quick
  in
  let scale =
    match env "TQEC_SCALE" with
    | Some s -> ( match int_of_string_opt s with Some v when v >= 1 -> v | _ -> 1)
    | None -> 1
  in
  let seed =
    match env "TQEC_SEED" with
    | Some s -> ( match int_of_string_opt s with Some v -> v | None -> 42)
    | None -> 42
  in
  let auto_scale = env "TQEC_FULLSIZE" = None in
  let restarts =
    match env "TQEC_RESTARTS" with
    | Some s -> ( match int_of_string_opt s with Some v when v >= 1 -> v | _ -> 1)
    | None -> 1
  in
  let jobs =
    match env "TQEC_JOBS" with
    | Some s -> ( match int_of_string_opt s with Some v when v >= 1 -> Some v | _ -> None)
    | None -> None
  in
  (* TQEC_EARLY_STOP: relative margin for adaptive multi-start early
     stopping ("0.05" = 5%); "off" (or any non-float) disables it. *)
  let early_stop_margin =
    match env "TQEC_EARLY_STOP" with
    | Some s -> (
        match float_of_string_opt s with
        | Some m when m >= 0. -> Some m
        | _ -> None)
    | None -> Pipeline.default_config.Pipeline.early_stop_margin
  in
  { effort; scale; auto_scale; seed; benchmarks = Suite.names; restarts; jobs;
    early_stop_margin; partition = partition_from_env ();
    debug = env "TQEC_DEBUG" <> None }

let run_benchmark config (entry : Suite.entry) =
  let factor =
    if config.auto_scale then max config.scale (auto_factor entry)
    else config.scale
  in
  let circuit = Suite.scaled ~factor entry in
  let icm = Decompose.run (Clifford_t.decompose circuit) in
  let stats = Icm.stats icm in
  let lin1d = Baselines.lin_1d icm and lin2d = Baselines.lin_2d icm in
  let run variant =
    Pipeline.run_icm
      ~config:
        {
          Pipeline.default_config with
          variant;
          effort = config.effort;
          seed = config.seed;
          restarts = config.restarts;
          early_stop_margin = config.early_stop_margin;
          partition = config.partition;
          debug = config.debug;
          (* inner stages (placement multi-start, the router's
             per-iteration batches) share the same persistent pool as
             the suite fan-out: a blocked instance helps drain nested
             tasks, so nesting composes without oversubscription and
             small suites soak idle workers with restarts — and the
             output is jobs-invariant either way *)
          jobs = config.jobs;
        }
      icm
  in
  let dual_only = run Pipeline.Dual_only in
  let ours = run Pipeline.Full in
  {
    Report.r_name = entry.Suite.spec.Generator.name;
    r_stats = stats;
    r_modules = ours.Pipeline.stages.Pipeline.st_modules;
    r_nodes = ours.Pipeline.stages.Pipeline.st_nodes;
    r_canonical = Baselines.canonical_volume icm;
    r_lin1d = lin1d.Baselines.l_volume;
    r_lin2d = lin2d.Baselines.l_volume;
    r_dual_only = dual_only.Pipeline.volume;
    r_dual_only_runtime = dual_only.Pipeline.elapsed;
    r_ours = ours.Pipeline.volume;
    r_ours_runtime = ours.Pipeline.elapsed;
    r_paper = entry.Suite.paper;
    r_scale =
      (if config.auto_scale then max config.scale (auto_factor entry)
       else config.scale);
  }

(* Suite instances are independent: fan them out across domains.  Rows
   come back in suite order whatever the worker count, and each instance
   is seeded from the config alone, so parallel runs reproduce serial
   ones bit for bit. *)
let run_all config =
  Suite.all
  |> List.filter (fun (e : Suite.entry) ->
         List.mem e.Suite.spec.Generator.name config.benchmarks)
  |> Array.of_list
  |> Tqec_util.Pool.map ?jobs:config.jobs (run_benchmark config)
  |> Array.to_list

let fig1_series () =
  let icm = Decompose.run Suite.three_cnot_example in
  let run variant =
    (Pipeline.run_icm
       ~config:
         { Pipeline.default_config with variant; effort = Placer.Normal }
       icm)
      .Pipeline.volume
  in
  [
    ("canonical", Baselines.canonical_volume icm, 54);
    ("topological deformation", run Pipeline.Modular_only, 32);
    ("dual-only bridging", run Pipeline.Dual_only, 18);
    ("primal+dual bridging (ours)", run Pipeline.Full, 6);
  ]

let render_all config =
  let rows = run_all config in
  String.concat "\n"
    [
      Report.table1 rows;
      Report.table2 rows;
      Report.table3 rows;
      Report.fig1 (fig1_series ());
      Report.summary rows;
    ]
