module Icm = Tqec_icm.Icm
module Pd_graph = Tqec_pdgraph.Pd_graph
module Ishape = Tqec_pdgraph.Ishape
module Flipping = Tqec_pdgraph.Flipping
module Dual_bridge = Tqec_pdgraph.Dual_bridge
module Fvalue = Tqec_pdgraph.Fvalue
module Placer = Tqec_place.Placer
module Super_module = Tqec_place.Super_module
module Pathfinder = Tqec_route.Pathfinder
module Grid = Tqec_route.Grid
module Vec3 = Tqec_util.Vec3
module Box3 = Tqec_util.Box3
module Union_find = Tqec_util.Union_find

type variant = Full | Dual_only | Modular_only

type config = {
  variant : variant;
  effort : Placer.effort;
  seed : int;
  enable_ishape : bool;
  z_cap : int option;
  strategy : Placer.strategy;
  restarts : int;
  jobs : int option;
  early_stop_margin : float option;
  partition : int option;
  auto_partition : int option;
  corridor_cells : int option;
  corridor_cache : bool;
  sa_moves_cap : int option;
  debug : bool;
  verify : bool option;
}

let default_config =
  { variant = Full; effort = Placer.Normal; seed = 42; enable_ishape = true;
    z_cap = None; strategy = Placer.Annealing; restarts = 1; jobs = None;
    early_stop_margin = Placer.default_config.Placer.early_stop_margin;
    partition = None; auto_partition = None; corridor_cells = None;
    corridor_cache = Pathfinder.default_config.Pathfinder.corridor_cache;
    sa_moves_cap = None; debug = false; verify = None }

exception
  Stage_failure of {
    stage : string;
    message : string;
  }

let () =
  Printexc.register_printer (function
    | Stage_failure { stage; message } ->
        Some (Printf.sprintf "Pipeline.Stage_failure(%s): %s" stage message)
    | _ -> None)

type stage_stats = {
  st_modules : int;
  st_ishape_merges : int;
  st_points : int;
  st_chains : int;
  st_nodes : int;
  st_nets : int;
  st_merged_nets : int;
  st_dual_bridges : int;
}

type t = {
  icm : Icm.t;
  graph : Pd_graph.t;
  merges : Ishape.merge list;
  flipping : Flipping.t;
  dual : Dual_bridge.t;
  fvalue : Fvalue.t;
  placement : Placer.t;
  routing : Pathfinder.result;
  grid_mem : Grid.mem;
  volume : int;
  stages : stage_stats;
  elapsed : float;
  timings : (string * float) list;
}

(* Every point its own chain: the no-primal-bridging baselines. *)
let trivial_chains (f : Flipping.t) =
  { f with Flipping.chains = List.map (fun (rep, _) -> [ rep ]) f.Flipping.points }

(* Every net its own class: the no-dual-bridging baseline. *)
let trivial_dual (g : Pd_graph.t) =
  let n = Pd_graph.n_nets g in
  {
    Dual_bridge.classes = Union_find.create n;
    merged = List.init n (fun i -> (i, [ i ]));
    n_bridges = 0;
    n_refused = 0;
  }

let distill_pin (placement : Placer.t) node =
  let nd = placement.Placer.sm.Super_module.nodes.(node) in
  let x, y = placement.Placer.node_pos.(node) in
  let bw =
    match nd.Super_module.nd_kind with
    | Super_module.Distill_sm { box = Tqec_geom.Geometry.Y_box; _ } ->
        let w, _, _ = Tqec_geom.Geometry.y_box_dims in
        w
    | Super_module.Distill_sm { box = Tqec_geom.Geometry.A_box; _ } ->
        let w, _, _ = Tqec_geom.Geometry.a_box_dims in
        w
    | _ -> invalid_arg "Pipeline.distill_pin: not a distillation node"
  in
  if placement.Placer.rotated.(node) then Vec3.make x (y + bw) 0
  else Vec3.make (x + bw) y 0

let build_route_nets (g : Pd_graph.t) (placement : Placer.t)
    (flipping : Flipping.t) (dual : Dual_bridge.t) (fvalue : Fvalue.t) =
  (* When the time-order rule leaves several merged structures through
     one module, alternate their exit sides (Fig. 15 planning). *)
  let visits : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let pin m =
    let k = try Hashtbl.find visits m with Not_found -> 0 in
    Hashtbl.replace visits m (k + 1);
    Placer.pin_cell ~opposite:(k land 1 = 1) placement fvalue flipping m
  in
  let nets =
    List.filter_map
      (fun (rep, _members) ->
        let modules = Dual_bridge.modules_of_class g dual rep in
        match modules with
        | [] | [ _ ] -> None
        | ms -> Some { Pathfinder.net_id = rep; pins = List.map pin ms })
      dual.Dual_bridge.merged
  in
  let n_nets = Pd_graph.n_nets g in
  let pseudo =
    List.mapi
      (fun i (box_node, m) ->
        {
          Pathfinder.net_id = n_nets + i;
          (* opposite-side exit (Fig. 15 planning): keeps the injection
             strand out of the merged dual structure's approach cell *)
          pins =
            [
              distill_pin placement box_node;
              Placer.pin_cell ~opposite:true placement fvalue flipping m;
            ];
        })
      placement.Placer.sm.Super_module.pseudo_nets
  in
  nets @ pseudo

let obstacles grid (g : Pd_graph.t) (placement : Placer.t) =
  let sm = placement.Placer.sm in
  (* hash-order: obstacle flags commute, iteration order is irrelevant *)
  Hashtbl.iter
    (fun m _node ->
      if (Pd_graph.module_get g m).Pd_graph.m_alive then
        Grid.set_obstacle grid (Placer.module_cell placement m))
    sm.Super_module.node_of_module;
  Array.iteri
    (fun i nd ->
      match nd.Super_module.nd_kind with
      | Super_module.Distill_sm { box; _ } ->
          let bw, bh, bd =
            match box with
            | Tqec_geom.Geometry.Y_box -> Tqec_geom.Geometry.y_box_dims
            | Tqec_geom.Geometry.A_box -> Tqec_geom.Geometry.a_box_dims
          in
          let x, y = placement.Placer.node_pos.(i) in
          let w, h =
            if placement.Placer.rotated.(i) then (bh, bw) else (bw, bh)
          in
          Grid.set_obstacle_box grid
            (Box3.make (Vec3.make x y 0)
               (Vec3.make (x + w - 1) (y + h - 1) (bd - 1)))
      | _ -> ())
    sm.Super_module.nodes

let placement_bbox ?(extra_z = 0) (placement : Placer.t) =
  Box3.make Vec3.zero
    (Vec3.make
       (max 0 (placement.Placer.width - 1))
       (max 0 (placement.Placer.height - 1))
       (max 0 (placement.Placer.depth - 1 + extra_z)))

(* Routability-driven capacity planning: estimate the routed wire demand
   (3D half-perimeter per net, scaled by a Steiner factor for many-pin
   nets) and extend the die with enough routing layers that the demand
   fits at moderate utilization.  The space these layers add is honest
   space-time volume: the measured bounding box grows only where the
   router actually uses them. *)
let routing_layers (placement : Placer.t) nets =
  let hpwl_3d pins =
    match pins with
    | [] -> 0
    | (p : Vec3.t) :: rest ->
        let x0 = ref p.x and x1 = ref p.x in
        let y0 = ref p.y and y1 = ref p.y in
        let z0 = ref p.z and z1 = ref p.z in
        List.iter
          (fun (q : Vec3.t) ->
            x0 := min !x0 q.x;
            x1 := max !x1 q.x;
            y0 := min !y0 q.y;
            y1 := max !y1 q.y;
            z0 := min !z0 q.z;
            z1 := max !z1 q.z)
          rest;
        !x1 - !x0 + (!y1 - !y0) + (!z1 - !z0)
  in
  let demand =
    List.fold_left
      (fun acc (n : Pathfinder.net) ->
        let pins = List.length n.Pathfinder.pins in
        let steiner = Float.max 1.0 (sqrt (float_of_int pins /. 4.0)) in
        acc +. (float_of_int (hpwl_3d n.Pathfinder.pins) *. steiner))
      0. nets
  in
  let area = float_of_int (max 1 (placement.Placer.width * placement.Placer.height)) in
  Tqec_util.Stats.clamp 1 16 (int_of_float (Float.ceil (1.5 *. demand /. area)))

(* The routing grid reconstruction shared by [run_icm] and [check]: the
   validator must see the same die, obstacle and shared-pin masks the
   routes were produced against, or legality checks are meaningless.
   [?extra_z] lets a caller that already computed [routing_layers] pass
   it in instead of recomputing. *)
let build_route_grid ?extra_z graph placement nets =
  let extra_z =
    match extra_z with
    | Some z -> z
    | None -> routing_layers placement nets
  in
  let die = placement_bbox ~extra_z placement in
  let grid = Grid.create ~die (Box3.inflate 2 die) in
  obstacles grid graph placement;
  (* pin cells are capacity-exempt: several dual strands may thread the
     same primal loop *)
  List.iter
    (fun (n : Pathfinder.net) -> List.iter (Grid.set_shared grid) n.Pathfinder.pins)
    nets;
  grid

let rec run_icm ?(config = default_config) ?on_stage icm =
  let debug = config.debug in
  (* Generated ICMs are acyclic by construction, but hand-built or
     corrupted ones are not: gate here so a cyclic constraint DAG
     surfaces as a structured stage failure instead of escaping as a
     bare exception from deep inside a stage. *)
  (match Tqec_icm.Constraints.topological_order icm with
  | (_ : int list) -> ()
  | exception Tqec_icm.Constraints.Cycle { emitted; total } ->
      raise
        (Stage_failure
           {
             stage = "icm";
             message =
               Printf.sprintf
                 "constraint graph is cyclic (%d of %d measurements \
                  ordered)"
                 emitted total;
           }));
  (* wallclock: stage timings are reporting-only; they never reach
     compression results or any diffed output *)
  let t0 = Unix.gettimeofday () in
  let timings = ref [] in
  let last_mark = ref t0 in
  let mark name =
    (* wallclock: same reporting-only timing as [t0] above *)
    let now = Unix.gettimeofday () in
    let dt = now -. !last_mark in
    timings := (name, dt) :: !timings;
    last_mark := now;
    (match on_stage with Some f -> f name dt | None -> ());
    if debug then
      Printf.eprintf "[pipeline] %-12s %6.2fs\n%!" name (now -. t0)
  in
  let graph = Pd_graph.of_icm icm in
  let st_modules = Pd_graph.n_modules_constructed graph in
  let merges =
    match config.variant with
    | Full when config.enable_ishape -> Ishape.run graph
    | Full | Dual_only | Modular_only -> []
  in
  let time_sms = Super_module.time_sm_modules graph in
  let in_time_sm = Hashtbl.create 64 in
  List.iter
    (fun (_, ms) -> List.iter (fun m -> Hashtbl.replace in_time_sm m ()) ms)
    time_sms;
  let exclude m = Hashtbl.mem in_time_sm m in
  let flipping =
    let f = Flipping.run ~rng:(Tqec_util.Rng.create config.seed) ~exclude graph in
    match config.variant with Full -> f | _ -> trivial_chains f
  in
  let dual =
    match config.variant with
    | Full | Dual_only -> Dual_bridge.run graph
    | Modular_only -> trivial_dual graph
  in
  mark "bridging";
  let fvalue = Fvalue.plan flipping in
  let placer_config =
    {
      Placer.default_config with
      effort = config.effort;
      seed = config.seed;
      z_cap = config.z_cap;
      strategy = config.strategy;
      restarts = config.restarts;
      jobs = config.jobs;
      early_stop_margin = config.early_stop_margin;
      partition = config.partition;
      auto_partition =
        (match config.auto_partition with
        | Some t -> t
        | None -> Placer.default_config.Placer.auto_partition);
      sa_moves_cap = config.sa_moves_cap;
    }
  in
  let placement = Placer.place ~config:placer_config graph flipping dual fvalue in
  mark "placement";
  let nets = build_route_nets graph placement flipping dual fvalue in
  (* computed once: the debug line reports exactly the extra layers the
     routing grid is built with *)
  let extra_z = routing_layers placement nets in
  if debug then
    Printf.eprintf "[pipeline] nets=%d pins=%d grid=%dx%dx%d extra_z=%d\n%!"
      (List.length nets)
      (List.fold_left (fun a (n : Pathfinder.net) -> a + List.length n.Pathfinder.pins) 0 nets)
      placement.Placer.width placement.Placer.height placement.Placer.depth
      extra_z;
  let grid = build_route_grid ~extra_z graph placement nets in
  let routing =
    let route_config =
      match config.corridor_cells with
      | None ->
          { Pathfinder.default_config with jobs = config.jobs;
            corridor_cache = config.corridor_cache; debug = config.debug }
      | Some cells ->
          { Pathfinder.default_config with jobs = config.jobs;
            corridor_cells = cells; corridor_cache = config.corridor_cache;
            debug = config.debug }
    in
    Pathfinder.route_all grid route_config nets
  in
  mark "routing";
  (* recorded before the grid is dropped: how much of the substrate
     volume the sparse grid actually materialized *)
  let grid_mem = Grid.mem grid in
  let all_boxes =
    List.init (Array.length placement.Placer.sm.Super_module.nodes) (fun i ->
        Placer.node_box placement i)
  in
  let route_cells =
    List.concat_map (fun r -> r.Pathfinder.r_cells) routing.Pathfinder.routes
  in
  (* Empty-tolerant bounding box: a circuit with zero placeable blocks
     and zero routes (empty / Pauli-only / H-only inputs) has volume 0,
     matching the verifier's from-scratch recompute — not the volume-1
     phantom cell a [Vec3.zero] seed box would report. *)
  let bbox =
    let join acc b =
      match acc with None -> Some b | Some a -> Some (Box3.join a b)
    in
    let acc = List.fold_left join None all_boxes in
    List.fold_left (fun acc c -> join acc (Box3.of_cell c)) acc route_cells
  in
  let volume = match bbox with None -> 0 | Some b -> Box3.volume b in
  let stages =
    {
      st_modules;
      st_ishape_merges = List.length merges;
      st_points = List.length flipping.Flipping.points;
      st_chains = List.length flipping.Flipping.chains;
      st_nodes = Array.length placement.Placer.sm.Super_module.nodes;
      st_nets = Pd_graph.n_nets graph;
      st_merged_nets = List.length dual.Dual_bridge.merged;
      st_dual_bridges = dual.Dual_bridge.n_bridges;
    }
  in
  mark "finish";
  let r =
    {
      icm;
      graph;
      merges;
      flipping;
      dual;
      fvalue;
      placement;
      routing;
      grid_mem;
      volume;
      stages;
      (* wallclock: [elapsed] is reporting-only and excluded from every
         porcelain/diffed output *)
      elapsed = Unix.gettimeofday () -. t0;
      timings = List.rev !timings;
    }
  in
  let want_verify =
    match config.verify with
    | Some explicit -> explicit
    | None -> (
        (* env-read: call-time capture — consulted once per run, never
           frozen at module load, so a daemon re-reads it per request;
           request-scoped control goes through [config.verify]. *)
        match Sys.getenv_opt "TQEC_VERIFY" with
        | Some "" | Some "0" | None -> false
        | Some _ -> true)
  in
  if want_verify then begin
    let report = verify r in
    if not (Tqec_verify.Violation.ok report) then begin
      prerr_string (Tqec_verify.Violation.render report);
      (* A structured, catchable failure: a serving daemon turns it into
         a failed-request response instead of losing a worker to an
         anonymous [Failure] (the pre-daemon behavior). *)
      raise
        (Stage_failure
           {
             stage = "verify";
             message =
               Printf.sprintf "%d violation(s) on %s"
                 (List.length report.Tqec_verify.Violation.violations)
                 icm.Icm.name;
           })
    end
  end;
  r

and verify ?stages (r : t) =
  let geometry =
    Emit_core.geometry ~name:r.icm.Icm.name ~graph:r.graph
      ~flipping:r.flipping ~placement:r.placement ~routing:r.routing
  in
  Tqec_verify.Check.run ?stages
    {
      Tqec_verify.Check.a_icm = r.icm;
      a_graph = r.graph;
      a_merges = r.merges;
      a_flipping = r.flipping;
      a_dual = r.dual;
      a_fvalue = r.fvalue;
      a_placement = r.placement;
      a_routing = r.routing;
      a_volume = r.volume;
      a_geometry = Some geometry;
    }

let run ?(config = default_config) ?on_stage circuit =
  let circuit =
    if Tqec_circuit.Circuit.is_clifford_t circuit then circuit
    else Tqec_circuit.Clifford_t.decompose circuit
  in
  run_icm ~config ?on_stage (Tqec_icm.Decompose.run circuit)

let check r = Tqec_verify.Violation.to_strings (verify r)

(* The deterministic result record: exactly what `tqecc compress` prints
   minus the wall-clock tail.  A pure function of (input, seed, knobs) —
   the serving daemon caches and returns these bytes verbatim, so parity
   between a served response and a local CLI run is a string equality. *)
let summary (r : t) =
  let p = r.placement in
  Printf.sprintf
    "%s: volume=%s (%dx%dx%d) modules=%d nodes=%d bridges=%d routed=%b"
    r.icm.Icm.name
    (Tqec_util.Pretty.int_with_commas r.volume)
    p.Placer.width p.Placer.height p.Placer.depth r.stages.st_modules
    r.stages.st_nodes r.stages.st_dual_bridges
    r.routing.Pathfinder.success

(* Digest of everything the determinism contract promises: reported
   volume, die dimensions, every node position and rotation, and every
   routed cell of every net in order.  Two runs agree on this hex
   string iff they agree on the full geometric result — the equality
   the jobs-invariance and corridor-cache cross-checks pin.  Lives here
   (not in the fuzz harness) so the CLI can print it and build rules
   can diff it. *)
let fingerprint (r : t) =
  let b = Buffer.create 1024 in
  let p = r.placement in
  Printf.bprintf b "v=%d w=%d h=%d d=%d|" r.volume p.Placer.width
    p.Placer.height p.Placer.depth;
  Array.iter (fun (x, y) -> Printf.bprintf b "%d,%d;" x y) p.Placer.node_pos;
  Array.iter
    (fun rot -> Buffer.add_char b (if rot then 'R' else '.'))
    p.Placer.rotated;
  List.iter
    (fun (route : Pathfinder.routed) ->
      Printf.bprintf b "|n%d:" route.Pathfinder.r_net;
      List.iter
        (fun (c : Vec3.t) ->
          Printf.bprintf b "%d.%d.%d," c.Vec3.x c.Vec3.y c.Vec3.z)
        route.Pathfinder.r_cells)
    r.routing.Pathfinder.routes;
  Digest.to_hex (Digest.string (Buffer.contents b))
