module Vec3 = Tqec_util.Vec3
module Box3 = Tqec_util.Box3

let capacity = 1

let outside_die_cost = 6

(* Chunked sparse congestion state: the bounding box is carved into
   fixed-size [tile_edge]^3 tiles, allocated on first touch through a
   flat tile directory.  Memory and copy work (snapshot / view / patch)
   scale with the number of touched tiles — the routed skeleton — not
   with the substrate volume, which for sparse assemblies is orders of
   magnitude larger. *)
let tile_bits = 3

let tile_edge = 1 lsl tile_bits

let tile_mask = tile_edge - 1

let tile_cells = tile_edge * tile_edge * tile_edge

type tile = {
  t_usage : int array;
  t_hist : int array;
  (* obstacle / shared masks are fixed once routing starts and therefore
     shared (never copied) between a grid and its snapshots and views *)
  t_obst : Bytes.t;
  t_shared : Bytes.t;
  (* Incrementally maintained tile summaries, the capacity signal the
     coarse corridor search reads: total usage + history over the tile,
     and the count of obstacle cells (a fully-obstacled tile is
     impassable at the coarse level). *)
  mutable t_sum_usage : int;
  mutable t_sum_hist : int;
  mutable t_n_obst : int;
}

type t = {
  box : Box3.t;
  die : Box3.t;
  nx : int;
  ny : int;
  nz : int;
  (* tile directory dimensions: ceil (n / tile_edge) per axis *)
  tx : int;
  ty : int;
  tz : int;
  tiles : tile option array;
  (* Cells currently above capacity, by flat index.  Maintained
     incrementally by [add_usage]/[set_shared], so [overused] is
     O(overused) instead of rescanning the whole x*y*z volume every
     negotiation iteration. *)
  over : (int, unit) Hashtbl.t;
  (* Per-tile summary generations: [gens.(ti)] is the value of
     [gen_counter] at the last mutation that changed tile [ti]'s
     summary-visible state (usage, history, obstacle count, shared
     mask).  The corridor cache compares a region's tile generations
     against the counter value recorded when a corridor was computed:
     all [<= stamp] means no coarse-search input changed.  Generations
     are a per-grid timeline — a [view] starts a fresh one — so stamps
     are only meaningful against the grid object that issued them. *)
  gens : int array;
  mutable gen_counter : int;
  (* true for [view] results: congestion-cost queries only — the overuse
     table is not carried, so [overused]/[overused_count] must fail
     loudly instead of answering from an empty table *)
  view_only : bool;
}

let create ?die box =
  let nx = Box3.dx box and ny = Box3.dy box and nz = Box3.dz box in
  let tx = (nx + tile_mask) lsr tile_bits in
  let ty = (ny + tile_mask) lsr tile_bits in
  let tz = (nz + tile_mask) lsr tile_bits in
  {
    box;
    die = (match die with Some d -> d | None -> box);
    nx;
    ny;
    nz;
    tx;
    ty;
    tz;
    tiles = Array.make (tx * ty * tz) None;
    over = Hashtbl.create 64;
    gens = Array.make (tx * ty * tz) 0;
    gen_counter = 0;
    view_only = false;
  }

let bump_gen g ti =
  g.gen_counter <- g.gen_counter + 1;
  g.gens.(ti) <- g.gen_counter

let box g = g.box
let die g = g.die
let in_bounds g p = Box3.contains g.box p

(* Global flat cell index — unchanged from the dense grid, so the
   [overused] ordering (x, then y, then z ascending) is bit-identical to
   the historical full-scan order. *)
let index g (p : Vec3.t) =
  let x = p.x - g.box.Box3.lo.Vec3.x in
  let y = p.y - g.box.Box3.lo.Vec3.y in
  let z = p.z - g.box.Box3.lo.Vec3.z in
  ((x * g.ny) + y) * g.nz + z

let cell_of_index g i =
  let lo = g.box.Box3.lo in
  let z = i mod g.nz in
  let rest = i / g.nz in
  let y = rest mod g.ny in
  let x = rest / g.ny in
  Vec3.make (lo.Vec3.x + x) (lo.Vec3.y + y) (lo.Vec3.z + z)

(* Tile directory index and within-tile cell index of [p]. *)
let tile_cell g (p : Vec3.t) =
  let x = p.x - g.box.Box3.lo.Vec3.x in
  let y = p.y - g.box.Box3.lo.Vec3.y in
  let z = p.z - g.box.Box3.lo.Vec3.z in
  let ti =
    (((x lsr tile_bits) * g.ty) + (y lsr tile_bits)) * g.tz + (z lsr tile_bits)
  in
  let ci =
    (((x land tile_mask) lsl tile_bits) lor (y land tile_mask)) lsl tile_bits
    lor (z land tile_mask)
  in
  (ti, ci)

let guard g p name =
  if not (in_bounds g p) then
    invalid_arg (Printf.sprintf "Grid.%s: out of bounds %s" name (Vec3.to_string p))

let fresh_tile () =
  {
    t_usage = Array.make tile_cells 0;
    t_hist = Array.make tile_cells 0;
    t_obst = Bytes.make tile_cells '\000';
    t_shared = Bytes.make tile_cells '\000';
    t_sum_usage = 0;
    t_sum_hist = 0;
    t_n_obst = 0;
  }

let ensure_tile g ti =
  match g.tiles.(ti) with
  | Some t -> t
  | None ->
      let t = fresh_tile () in
      g.tiles.(ti) <- Some t;
      t

let set_obstacle g p =
  guard g p "set_obstacle";
  let ti, ci = tile_cell g p in
  let t = ensure_tile g ti in
  if Bytes.get t.t_obst ci <> '\001' then begin
    Bytes.set t.t_obst ci '\001';
    t.t_n_obst <- t.t_n_obst + 1;
    bump_gen g ti
  end

let set_obstacle_box g b =
  match Box3.inter g.box b with
  | None -> ()
  | Some clipped -> List.iter (set_obstacle g) (Box3.cells clipped)

let is_obstacle g p =
  in_bounds g p
  &&
  let ti, ci = tile_cell g p in
  match g.tiles.(ti) with
  | None -> false
  | Some t -> Bytes.get t.t_obst ci = '\001'

let set_shared g p =
  guard g p "set_shared";
  let ti, ci = tile_cell g p in
  let t = ensure_tile g ti in
  Bytes.set t.t_shared ci '\001';
  bump_gen g ti;
  (* shared cells have unlimited capacity: whatever their usage, they can
     no longer be overused *)
  Hashtbl.remove g.over (index g p)

let is_shared g p =
  in_bounds g p
  &&
  let ti, ci = tile_cell g p in
  match g.tiles.(ti) with
  | None -> false
  | Some t -> Bytes.get t.t_shared ci = '\001'

let usage g p =
  guard g p "usage";
  let ti, ci = tile_cell g p in
  match g.tiles.(ti) with None -> 0 | Some t -> t.t_usage.(ci)

let add_usage g p delta =
  guard g p "add_usage";
  let ti, ci = tile_cell g p in
  let t = ensure_tile g ti in
  let u = t.t_usage.(ci) + delta in
  t.t_usage.(ci) <- u;
  t.t_sum_usage <- t.t_sum_usage + delta;
  if delta <> 0 then bump_gen g ti;
  if u < 0 then invalid_arg "Grid.add_usage: negative usage";
  if Bytes.get t.t_shared ci <> '\001' then
    if u > capacity then Hashtbl.replace g.over (index g p) ()
    else Hashtbl.remove g.over (index g p)

let history g p =
  guard g p "history";
  let ti, ci = tile_cell g p in
  match g.tiles.(ti) with None -> 0 | Some t -> t.t_hist.(ci)

let add_history g p delta =
  guard g p "add_history";
  let ti, ci = tile_cell g p in
  let t = ensure_tile g ti in
  t.t_hist.(ci) <- t.t_hist.(ci) + delta;
  t.t_sum_hist <- t.t_sum_hist + delta;
  if delta <> 0 then bump_gen g ti

let enter_cost_d g ~penalty ~dusage p =
  guard g p "enter_cost";
  let base = if Box3.contains g.die p then 1 else 1 + outside_die_cost in
  let ti, ci = tile_cell g p in
  match g.tiles.(ti) with
  | None ->
      (* untouched tile: usage 0, history 0, not shared *)
      let over = dusage + 1 - capacity in
      base + (if over > 0 then penalty * over else 0)
  | Some t ->
      if Bytes.get t.t_shared ci = '\001' then base + t.t_hist.(ci)
      else
        let over = t.t_usage.(ci) + dusage + 1 - capacity in
        base + t.t_hist.(ci) + (if over > 0 then penalty * over else 0)

let enter_cost g ~penalty p = enter_cost_d g ~penalty ~dusage:0 p

let check_not_view g name =
  if g.view_only then
    invalid_arg
      (Printf.sprintf
         "Grid.%s: views carry no overuse table (cost queries only)" name)

let overused g =
  check_not_view g "overused";
  (* hash-order: sorted by flat index so the order matches the historical
     full scan (x, then y, then z ascending) whatever the hash layout *)
  Hashtbl.fold (fun i () acc -> i :: acc) g.over []
  |> List.sort Int.compare
  |> List.map (cell_of_index g)

let overused_count g =
  check_not_view g "overused_count";
  Hashtbl.length g.over

(* Exact copy of an allocated tile: congestion arrays and summaries are
   deep-copied, the fixed obstacle/shared masks are shared. *)
let copy_tile t =
  {
    t_usage = Array.copy t.t_usage;
    t_hist = Array.copy t.t_hist;
    t_obst = t.t_obst;
    t_shared = t.t_shared;
    t_sum_usage = t.t_sum_usage;
    t_sum_hist = t.t_sum_hist;
    t_n_obst = t.t_n_obst;
  }

let snapshot g =
  {
    g with
    tiles = Array.map (Option.map copy_tile) g.tiles;
    over = Hashtbl.copy g.over;
    (* the snapshot inherits the source's generation timeline at the
       snapshot point, then diverges; never bumps the source *)
    gens = Array.copy g.gens;
  }

(* Unlike [snapshot], a view may be built WHILE [g] is being mutated by
   another domain, and only pays for allocated tiles.  [Array.copy] of a
   tile's int arrays reads each slot exactly once; a slot read
   concurrently with a write yields one of the two tagged ints byte-mixed
   — still an immediate int, just a garbage value.  A tile directory slot
   read while another domain installs a fresh tile is a racy pointer
   read: it returns either [None] or the new tile (immutable fields of
   which always read their initialized values — the OCaml 5 memory model
   guarantees this even under a race); the mutable summary fields may
   read garbage ints.  Every cell the mutator writes during the race
   window is recorded by the caller and overwritten via [patch_cell]
   (which re-materializes tiles the racy directory read missed and
   restores the summaries), after which the view equals [g] at the patch
   point.  The [over] table is deliberately NOT copied ([Hashtbl.copy]
   of a mutating table is not race-safe, and cost queries never consult
   it): a view answers [enter_cost]/[usage]/[history] only — never
   [overused]. *)
let view g =
  {
    g with
    tiles = Array.map (Option.map copy_tile) g.tiles;
    over = Hashtbl.create 1;
    (* fresh timeline: the source's gens array may be mutated while the
       racy copy runs, so the view starts at zero and is advanced only
       by its own [patch_cell] fix-ups — stamps taken against a view are
       valid against that view alone *)
    gens = Array.make (Array.length g.gens) 0;
    gen_counter = 0;
    view_only = true;
  }

let patch_cell ~src ~dst p =
  guard src p "patch_cell";
  let ti, ci = tile_cell src p in
  match src.tiles.(ti) with
  | None -> (
      (* the cell was written and then sank back into a never-allocated
         tile — impossible today (writes allocate), kept total for
         safety *)
      match dst.tiles.(ti) with
      | None -> ()
      | Some d ->
          if d.t_usage.(ci) <> 0 || d.t_hist.(ci) <> 0 then bump_gen dst ti;
          d.t_sum_usage <- d.t_sum_usage - d.t_usage.(ci);
          d.t_sum_hist <- d.t_sum_hist - d.t_hist.(ci);
          d.t_usage.(ci) <- 0;
          d.t_hist.(ci) <- 0)
  | Some s -> (
      match dst.tiles.(ti) with
      | None ->
          (* the racy directory read missed this tile (or the copy caught
             it half-built): re-materialize it wholesale from the now
             quiescent source *)
          dst.tiles.(ti) <- Some (copy_tile s);
          bump_gen dst ti
      | Some d ->
          (* bump only when the patch changes what the destination's
             summaries report: a rip-up + identical reclaim patches the
             same values back and must NOT invalidate corridors cached
             against the destination *)
          if
            d.t_usage.(ci) <> s.t_usage.(ci)
            || d.t_hist.(ci) <> s.t_hist.(ci)
            || d.t_sum_usage <> s.t_sum_usage
            || d.t_sum_hist <> s.t_sum_hist
          then bump_gen dst ti;
          d.t_usage.(ci) <- s.t_usage.(ci);
          d.t_hist.(ci) <- s.t_hist.(ci);
          (* summaries are whole-tile state: once every recorded cell of
             the tile is patched, copying the source's (quiescent) sums
             makes them exact again *)
          d.t_sum_usage <- s.t_sum_usage;
          d.t_sum_hist <- s.t_sum_hist)

(* ------------------------------------------------------------------ *)
(* Tile-level queries for the hierarchical corridor search.            *)
(* ------------------------------------------------------------------ *)

let n_tiles g = g.tx * g.ty * g.tz

let tile_dims g = (g.tx, g.ty, g.tz)

let tile_index g (p : Vec3.t) =
  let x = p.x - g.box.Box3.lo.Vec3.x in
  let y = p.y - g.box.Box3.lo.Vec3.y in
  let z = p.z - g.box.Box3.lo.Vec3.z in
  (((x lsr tile_bits) * g.ty) + (y lsr tile_bits)) * g.tz + (z lsr tile_bits)

let tile_coords g ti =
  let z = ti mod g.tz in
  let rest = ti / g.tz in
  let y = rest mod g.ty in
  let x = rest / g.ty in
  (x, y, z)

let tile_origin g ti =
  let x, y, z = tile_coords g ti in
  let lo = g.box.Box3.lo in
  Vec3.make
    (lo.Vec3.x + (x lsl tile_bits))
    (lo.Vec3.y + (y lsl tile_bits))
    (lo.Vec3.z + (z lsl tile_bits))

(* In-bounds cell count of a (possibly boundary-clipped) tile. *)
let tile_volume g ti =
  let x, y, z = tile_coords g ti in
  let w = min tile_edge (g.nx - (x lsl tile_bits)) in
  let h = min tile_edge (g.ny - (y lsl tile_bits)) in
  let d = min tile_edge (g.nz - (z lsl tile_bits)) in
  w * h * d

let tile_congestion g ti =
  match g.tiles.(ti) with
  | None -> 0
  | Some t -> t.t_sum_usage + t.t_sum_hist

let tile_blocked g ti =
  match g.tiles.(ti) with
  | None -> false
  | Some t -> t.t_n_obst >= tile_volume g ti

let tile_free g ti =
  let vol = tile_volume g ti in
  match g.tiles.(ti) with
  | None -> vol
  | Some t -> max 0 (vol - t.t_n_obst - t.t_sum_usage)

let generation g = g.gen_counter

let tile_generation g ti = g.gens.(ti)

let region_unchanged_since g ~since region =
  match Box3.inter g.box region with
  | None -> true
  | Some r ->
      let lo = g.box.Box3.lo in
      let tlx = (r.Box3.lo.Vec3.x - lo.Vec3.x) lsr tile_bits in
      let tly = (r.Box3.lo.Vec3.y - lo.Vec3.y) lsr tile_bits in
      let tlz = (r.Box3.lo.Vec3.z - lo.Vec3.z) lsr tile_bits in
      let thx = (r.Box3.hi.Vec3.x - lo.Vec3.x) lsr tile_bits in
      let thy = (r.Box3.hi.Vec3.y - lo.Vec3.y) lsr tile_bits in
      let thz = (r.Box3.hi.Vec3.z - lo.Vec3.z) lsr tile_bits in
      (* cheap global pre-check: nothing at all changed since the stamp *)
      g.gen_counter <= since
      ||
      let unchanged = ref true in
      let tx = ref tlx in
      while !unchanged && !tx <= thx do
        let ty = ref tly in
        while !unchanged && !ty <= thy do
          let base = (((!tx * g.ty) + !ty) * g.tz) + tlz in
          let tz = ref 0 in
          while !unchanged && !tz <= thz - tlz do
            if g.gens.(base + !tz) > since then unchanged := false;
            incr tz
          done;
          incr ty
        done;
        incr tx
      done;
      !unchanged

(* ------------------------------------------------------------------ *)
(* Memory accounting for the scale-tier benchmarks.                    *)
(* ------------------------------------------------------------------ *)

type mem = {
  mem_tiles : int;
  mem_tiles_total : int;
  mem_cells : int;
  mem_touched_cells : int;
  mem_words : int;
}

let mem g =
  let tiles = Array.fold_left (fun a t -> if t = None then a else a + 1) 0 g.tiles in
  let per_tile =
    (* two boxed int arrays, two byte masks (in words), record header *)
    (2 * (tile_cells + 1)) + (2 * ((tile_cells / 8) + 1)) + 8
  in
  {
    mem_tiles = tiles;
    mem_tiles_total = Array.length g.tiles;
    mem_cells = g.nx * g.ny * g.nz;
    mem_touched_cells = tiles * tile_cells;
    mem_words = Array.length g.tiles + (tiles * per_tile) + (2 * Hashtbl.length g.over);
  }
