module Vec3 = Tqec_util.Vec3
module Box3 = Tqec_util.Box3

let capacity = 1

let outside_die_cost = 6

type t = {
  box : Box3.t;
  die : Box3.t;
  nx : int;
  ny : int;
  nz : int;
  obstacle : Bytes.t;
  shared : Bytes.t;
  usage : int array;
  hist : int array;
  (* Cells currently above capacity, by flat index.  Maintained
     incrementally by [add_usage]/[set_shared], so [overused] is
     O(overused) instead of rescanning the whole x*y*z volume every
     negotiation iteration. *)
  over : (int, unit) Hashtbl.t;
}

let create ?die box =
  let nx = Box3.dx box and ny = Box3.dy box and nz = Box3.dz box in
  let cells = nx * ny * nz in
  {
    box;
    die = (match die with Some d -> d | None -> box);
    nx;
    ny;
    nz;
    obstacle = Bytes.make cells '\000';
    shared = Bytes.make cells '\000';
    usage = Array.make cells 0;
    hist = Array.make cells 0;
    over = Hashtbl.create 64;
  }

let box g = g.box
let in_bounds g p = Box3.contains g.box p

let index g (p : Vec3.t) =
  let x = p.x - g.box.Box3.lo.Vec3.x in
  let y = p.y - g.box.Box3.lo.Vec3.y in
  let z = p.z - g.box.Box3.lo.Vec3.z in
  ((x * g.ny) + y) * g.nz + z

let cell_of_index g i =
  let lo = g.box.Box3.lo in
  let z = i mod g.nz in
  let rest = i / g.nz in
  let y = rest mod g.ny in
  let x = rest / g.ny in
  Vec3.make (lo.Vec3.x + x) (lo.Vec3.y + y) (lo.Vec3.z + z)

let guard g p name =
  if not (in_bounds g p) then
    invalid_arg (Printf.sprintf "Grid.%s: out of bounds %s" name (Vec3.to_string p))

let set_obstacle g p =
  guard g p "set_obstacle";
  Bytes.set g.obstacle (index g p) '\001'

let set_obstacle_box g b =
  match Box3.inter g.box b with
  | None -> ()
  | Some clipped -> List.iter (set_obstacle g) (Box3.cells clipped)

let is_obstacle g p =
  in_bounds g p && Bytes.get g.obstacle (index g p) = '\001'

let set_shared g p =
  guard g p "set_shared";
  let i = index g p in
  Bytes.set g.shared i '\001';
  (* shared cells have unlimited capacity: whatever their usage, they can
     no longer be overused *)
  Hashtbl.remove g.over i

let is_shared g p = in_bounds g p && Bytes.get g.shared (index g p) = '\001'

let usage g p =
  guard g p "usage";
  g.usage.(index g p)

let add_usage g p delta =
  guard g p "add_usage";
  let i = index g p in
  let u = g.usage.(i) + delta in
  g.usage.(i) <- u;
  if u < 0 then invalid_arg "Grid.add_usage: negative usage";
  if Bytes.get g.shared i <> '\001' then
    if u > capacity then Hashtbl.replace g.over i ()
    else Hashtbl.remove g.over i

let history g p =
  guard g p "history";
  g.hist.(index g p)

let add_history g p delta =
  guard g p "add_history";
  let i = index g p in
  g.hist.(i) <- g.hist.(i) + delta

let enter_cost_d g ~penalty ~dusage p =
  guard g p "enter_cost";
  let i = index g p in
  let base = if Box3.contains g.die p then 1 else 1 + outside_die_cost in
  if Bytes.get g.shared i = '\001' then base + g.hist.(i)
  else
    let over = g.usage.(i) + dusage + 1 - capacity in
    base + g.hist.(i) + (if over > 0 then penalty * over else 0)

let enter_cost g ~penalty p = enter_cost_d g ~penalty ~dusage:0 p

let overused g =
  (* hash-order: sorted by flat index so the order matches the historical
     full scan (x, then y, then z ascending) whatever the hash layout *)
  Hashtbl.fold (fun i () acc -> i :: acc) g.over []
  |> List.sort Int.compare
  |> List.map (cell_of_index g)

let overused_count g = Hashtbl.length g.over

let snapshot g =
  {
    g with
    usage = Array.copy g.usage;
    hist = Array.copy g.hist;
    over = Hashtbl.copy g.over;
  }

(* Unlike [snapshot], a view may be built WHILE [g] is being mutated by
   another domain: [Array.copy] reads each slot exactly once, and any
   slot read concurrently with a write yields one of the two tagged
   ints byte-mixed — still an immediate int (both have the tag bit
   set), just a garbage value.  The caller records every cell written
   during the race window and overwrites it via [patch_cell], after
   which the view equals [g] at the patch point.  The [over] table is
   deliberately NOT copied ([Hashtbl.copy] of a mutating table is not
   race-safe, and cost queries never consult it), so a view answers
   [enter_cost]/[usage]/[history] only — never [overused]. *)
let view g =
  {
    g with
    usage = Array.copy g.usage;
    hist = Array.copy g.hist;
    over = Hashtbl.create 1;
  }

let patch_cell ~src ~dst p =
  guard src p "patch_cell";
  let i = index src p in
  dst.usage.(i) <- src.usage.(i);
  dst.hist.(i) <- src.hist.(i)
