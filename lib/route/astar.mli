(** A* search on the routing grid, within a restricted region.

    Multi-source single-target: the wavefront starts from every source
    cell at cost 0 and ends at the target; the heuristic is the Manhattan
    distance to the target (admissible: every step costs at least 1).
    Obstacle cells and cells outside the region are never expanded;
    source and target cells are exempt from the obstacle test so pins
    adjacent to module walls remain reachable. *)

(** Reusable search workspace.  One scratch serves any number of
    sequential searches (arrays grow to the largest region seen and are
    invalidated by generation stamps, never cleared); distinct concurrent
    searchers must each own their scratch — it contains the open queue and
    the score arrays, so sharing one across domains is a data race. *)
type scratch

val create_scratch : unit -> scratch

(** [search grid ~region ~penalty ~sources ~target] returns the cell path
    from some source to [target] (both inclusive), or [None] when
    unreachable within the region or when [max_expansions] pops are
    exhausted (a safety valve against pathological searches).  With
    [avoid_used], cells already at capacity are treated as blocked, so a
    found path can never create overuse (the cleanup mode of the
    negotiation loop).  [exclude] lists cells priced as if their usage
    were one lower ({!Grid.enter_cost_d} with [dusage = -1]) — the
    searching net's own current route, so a shared read-only view costs
    a re-route exactly like ripping the net up first; it biases cost
    only and does not interact with the [avoid_used] passability test
    (the negotiation loop never combines the two).  [scratch] reuses a
    caller-owned workspace instead of allocating fresh arrays; results
    are identical either way. *)
val search :
  ?scratch:scratch ->
  ?max_expansions:int ->
  ?avoid_used:bool ->
  ?exclude:Tqec_util.Vec3.t list ->
  Grid.t ->
  region:Tqec_util.Box3.t ->
  penalty:int ->
  sources:Tqec_util.Vec3.t list ->
  target:Tqec_util.Vec3.t ->
  Tqec_util.Vec3.t list option

(** The fixed congestion penalty of the coarse tile-graph pass.  The
    coarse corridor choice is a guide (the fine pass re-establishes
    feasibility and exact costs), so it deliberately does NOT track the
    negotiation loop's growing penalty: with the penalty pinned, a
    coarse result is a function of (source tiles, target tile, region,
    tile summaries) alone, which is what makes corridors cacheable
    across iterations and shareable between negotiation and cleanup. *)
val coarse_penalty : int

(** [coarse_corridor scr grid ~region ~sources ~target] runs the coarse
    tile-graph A* (6-neighbor adjacency; costs from the per-tile
    congestion summaries {!Grid.tile_congestion} at {!coarse_penalty},
    fully obstacled tiles impassable) and returns the corridor — the
    coarse path's tiles plus their in-region axis neighbors, as tile
    indices in deterministic discovery order — or [None] when the
    coarse graph offers no path or the target lies outside [region]
    (clipped to the grid box).

    [exclude] prices the net's own current route out of the tile
    congestion (per-tile count subtraction of the cells' own +1 usage)
    — the coarse analogue of the fine pass's own-route bias, and the
    property that makes the coarse effective input invariant under the
    net's own rip-up/re-claim.

    Determinism contract for the corridor cache: the result depends
    only on the ordered deduplicated list of in-region source tiles,
    the target tile, the (clipped) region, the grid's tile summaries,
    and the per-tile counts of in-region [exclude] cells — covered by
    the cache key plus the tile summary generations
    ({!Grid.region_unchanged_since}) plus the cache's commit-stamp
    bookkeeping over the net's own route.

    [source_tiles], when given, must be that same ordered deduplicated
    in-region source-tile list (the cache key's first component); the
    coarse pass then seeds from it directly instead of re-deriving it
    from [sources], with a bit-identical search either way.  Callers
    that have not already computed the list should omit it. *)
val coarse_corridor :
  ?exclude:Tqec_util.Vec3.t list ->
  ?source_tiles:int list ->
  scratch ->
  Grid.t ->
  region:Tqec_util.Box3.t ->
  sources:Tqec_util.Vec3.t list ->
  target:Tqec_util.Vec3.t ->
  int list option

(** [fine_in_corridor scr grid ~corridor ~region ~penalty ~sources
    ~target] runs the fine cell-level A* restricted to the cells of
    [corridor] (a {!coarse_corridor} result — freshly computed or
    replayed from a cache; the path depends only on the corridor's
    content).  Scratch scales with the corridor volume.  Cost semantics
    ([penalty], [avoid_used], [exclude], obstacle exemption of sources
    and target) match {!search}.  [None] when the corridor is
    infeasible at cell level or the target lies outside it. *)
val fine_in_corridor :
  ?max_expansions:int ->
  ?avoid_used:bool ->
  ?exclude:Tqec_util.Vec3.t list ->
  scratch ->
  Grid.t ->
  corridor:int list ->
  region:Tqec_util.Box3.t ->
  penalty:int ->
  sources:Tqec_util.Vec3.t list ->
  target:Tqec_util.Vec3.t ->
  Tqec_util.Vec3.t list option

(** [search_corridor grid ~region ~penalty ~sources ~target] is the
    hierarchical variant of {!search} for large regions —
    {!coarse_corridor} composed with {!fine_in_corridor}: the coarse
    pass picks a corridor and the fine cell-level search then runs
    restricted to corridor cells, with scratch sized by the corridor
    volume instead of the region's bounding volume.

    Returns [None] when the coarse graph offers no path, when the
    corridor turns out infeasible at cell level, or when the target
    falls outside [region]: the caller is expected to fall back to the
    exhaustive {!search} over the full window.  Cost semantics
    (penalty, [avoid_used], [exclude], obstacle exemption of sources
    and target) match {!search}, but the returned path may differ from
    {!search}'s on equal-cost ties — callers gating on a region-volume
    threshold keep small instances bit-identical to the flat search. *)
val search_corridor :
  ?scratch:scratch ->
  ?max_expansions:int ->
  ?avoid_used:bool ->
  ?exclude:Tqec_util.Vec3.t list ->
  Grid.t ->
  region:Tqec_util.Box3.t ->
  penalty:int ->
  sources:Tqec_util.Vec3.t list ->
  target:Tqec_util.Vec3.t ->
  Tqec_util.Vec3.t list option

(** [path_cost grid ~penalty path] sums entry costs along a path,
    excluding the first cell (test oracle: A* returns minimal-cost
    paths). *)
val path_cost : Grid.t -> penalty:int -> Tqec_util.Vec3.t list -> int
