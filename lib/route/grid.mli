(** 3D routing grid with PathFinder-style congestion bookkeeping.

    Each unit cell has capacity 1 (one dual strand), a present usage
    count, an accumulated history cost, and an obstacle flag (primal
    module cores and distillation boxes).  The negotiated-congestion cost
    of entering a cell is

    [base + history + penalty * max 0 (usage + 1 - capacity)]

    so shared cells become increasingly expensive across iterations. *)

type t

(** [create ?die box] allocates the grid.  Cells outside [die] (the
    placement bounding box) cost extra to enter, so wires spill out of
    the die — growing the space-time volume — only under real
    congestion pressure. *)
val create : ?die:Tqec_util.Box3.t -> Tqec_util.Box3.t -> t

val box : t -> Tqec_util.Box3.t

val in_bounds : t -> Tqec_util.Vec3.t -> bool

val set_obstacle : t -> Tqec_util.Vec3.t -> unit

(** [set_obstacle_box g b] marks every cell of [b] (clipped). *)
val set_obstacle_box : t -> Tqec_util.Box3.t -> unit

val is_obstacle : t -> Tqec_util.Vec3.t -> bool

(** Shared cells have unlimited capacity: net pin cells, where several
    dual strands legitimately thread the same primal loop. *)
val set_shared : t -> Tqec_util.Vec3.t -> unit

val is_shared : t -> Tqec_util.Vec3.t -> bool

val usage : t -> Tqec_util.Vec3.t -> int

val add_usage : t -> Tqec_util.Vec3.t -> int -> unit

val history : t -> Tqec_util.Vec3.t -> int

val add_history : t -> Tqec_util.Vec3.t -> int -> unit

(** [enter_cost g ~penalty p] is the congestion cost of entering [p]
    (obstacles are handled by the router, not here). *)
val enter_cost : t -> penalty:int -> Tqec_util.Vec3.t -> int

(** [enter_cost_d g ~penalty ~dusage p] is {!enter_cost} computed as if
    the cell's usage were [usage + dusage].  With [dusage = -1] on the
    cells of a net's own current route, a read-only shared view prices
    a re-route exactly as if that net had first been ripped up — the
    trick that lets every worker search one immutable snapshot instead
    of mutating a private copy. *)
val enter_cost_d : t -> penalty:int -> dusage:int -> Tqec_util.Vec3.t -> int

(** [overused g] lists cells with usage above capacity, in lexicographic
    (x, y, z) order.  The set is maintained incrementally by
    {!add_usage}/{!set_shared}, so the call is O(overused log overused) —
    it never rescans the grid volume. *)
val overused : t -> Tqec_util.Vec3.t list

(** [overused_count g] is [List.length (overused g)] in O(1). *)
val overused_count : t -> int

(** [snapshot g] is an immutable-by-convention copy of the congestion
    state: usage, history and the overused set are deep-copied, while the
    obstacle and shared masks (fixed once routing starts) are shared with
    [g].  Concurrent readers may query a snapshot freely while claims are
    committed to the live grid. *)
val snapshot : t -> t

(** [view g] is a cost-query-only copy of the congestion state (usage +
    history; obstacle/shared masks shared with [g]; the overused set is
    NOT carried — {!overused}/{!overused_count} on a view are
    meaningless).  Unlike {!snapshot} it may be built concurrently with
    mutations to [g]: racy slots read as garbage ints (memory-safely),
    and the caller must afterwards {!patch_cell} every cell that was
    written during the copy, restoring exact agreement with [g]. *)
val view : t -> t

(** [patch_cell ~src ~dst p] copies [p]'s usage and history from [src]
    into [dst] (a {!view} or {!snapshot} of the same grid), the fix-up
    primitive for racily built and incrementally maintained views. *)
val patch_cell : src:t -> dst:t -> Tqec_util.Vec3.t -> unit

val capacity : int
