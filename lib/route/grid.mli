(** 3D routing grid with PathFinder-style congestion bookkeeping, stored
    as a chunked sparse volume.

    Each unit cell has capacity 1 (one dual strand), a present usage
    count, an accumulated history cost, and an obstacle flag (primal
    module cores and distillation boxes).  The negotiated-congestion cost
    of entering a cell is

    [base + history + penalty * max 0 (usage + 1 - capacity)]

    so shared cells become increasingly expensive across iterations.

    Storage is tiled: the bounding box is carved into {!tile_edge}^3
    chunks allocated on first touch through a flat tile directory, so
    memory — and the copy cost of {!snapshot}/{!view}/{!patch_cell} —
    scales with the touched (routed/obstacled) volume instead of the
    substrate volume.  Untouched cells read as usage 0, history 0, no
    obstacle, not shared.  Each tile also carries incrementally
    maintained summaries (total usage + history, obstacle count) that the
    hierarchical corridor search reads as tile-level capacity signals. *)

type t

(** [create ?die box] allocates the tile directory (no tiles yet).  Cells
    outside [die] (the placement bounding box) cost extra to enter, so
    wires spill out of the die — growing the space-time volume — only
    under real congestion pressure. *)
val create : ?die:Tqec_util.Box3.t -> Tqec_util.Box3.t -> t

val box : t -> Tqec_util.Box3.t

(** The extra-cost boundary passed to {!create} ([box] when omitted). *)
val die : t -> Tqec_util.Box3.t

val in_bounds : t -> Tqec_util.Vec3.t -> bool

val set_obstacle : t -> Tqec_util.Vec3.t -> unit

(** [set_obstacle_box g b] marks every cell of [b] (clipped). *)
val set_obstacle_box : t -> Tqec_util.Box3.t -> unit

val is_obstacle : t -> Tqec_util.Vec3.t -> bool

(** Shared cells have unlimited capacity: net pin cells, where several
    dual strands legitimately thread the same primal loop. *)
val set_shared : t -> Tqec_util.Vec3.t -> unit

val is_shared : t -> Tqec_util.Vec3.t -> bool

val usage : t -> Tqec_util.Vec3.t -> int

val add_usage : t -> Tqec_util.Vec3.t -> int -> unit

val history : t -> Tqec_util.Vec3.t -> int

val add_history : t -> Tqec_util.Vec3.t -> int -> unit

(** [enter_cost g ~penalty p] is the congestion cost of entering [p]
    (obstacles are handled by the router, not here). *)
val enter_cost : t -> penalty:int -> Tqec_util.Vec3.t -> int

(** [enter_cost_d g ~penalty ~dusage p] is {!enter_cost} computed as if
    the cell's usage were [usage + dusage].  With [dusage = -1] on the
    cells of a net's own current route, a read-only shared view prices
    a re-route exactly as if that net had first been ripped up — the
    trick that lets every worker search one immutable snapshot instead
    of mutating a private copy. *)
val enter_cost_d : t -> penalty:int -> dusage:int -> Tqec_util.Vec3.t -> int

(** [overused g] lists cells with usage above capacity, in lexicographic
    (x, y, z) order.  The set is maintained incrementally by
    {!add_usage}/{!set_shared}, so the call is O(overused log overused) —
    it never rescans the grid volume.

    Raises [Invalid_argument] on a {!view}: views carry no overuse
    table, so answering would be silently meaningless (historically this
    contract lived only in prose; it is now enforced). *)
val overused : t -> Tqec_util.Vec3.t list

(** [overused_count g] is [List.length (overused g)] in O(1).  Raises
    [Invalid_argument] on a {!view}, like {!overused}. *)
val overused_count : t -> int

(** [snapshot g] is an immutable-by-convention copy of the congestion
    state: usage, history and the overused set are deep-copied (touched
    tiles only), while the obstacle and shared masks (fixed once routing
    starts) are shared with [g].  Concurrent readers may query a
    snapshot freely while claims are committed to the live grid. *)
val snapshot : t -> t

(** [view g] is a cost-query-only copy of the congestion state (usage +
    history; obstacle/shared masks shared with [g]).  The overuse set is
    NOT carried: {!overused}/{!overused_count} on a view raise
    [Invalid_argument] — a view answers {!enter_cost}/{!usage}/
    {!history} only.  Unlike {!snapshot} it may be built concurrently
    with mutations to [g]: racy slots read as garbage ints and racy tile
    directory reads may miss freshly allocated tiles (both
    memory-safely), and the caller must afterwards {!patch_cell} every
    cell that was written during the copy, restoring exact agreement
    with [g].  Only allocated tiles are copied, so the cost is
    O(touched volume). *)
val view : t -> t

(** [patch_cell ~src ~dst p] copies [p]'s usage and history from [src]
    into [dst] (a {!view} or {!snapshot} of the same grid), the fix-up
    primitive for racily built and incrementally maintained views.  A
    tile present in [src] but absent from [dst] (allocated during a racy
    {!view} copy) is re-materialized wholesale; tile summaries are
    restored from [src], so once every written cell has been patched the
    destination's tiles — summaries included — agree exactly with
    [src]. *)
val patch_cell : src:t -> dst:t -> Tqec_util.Vec3.t -> unit

val capacity : int

(** Additive surcharge on the base entry cost of cells outside the die
    (the coarse corridor search prices whole out-of-die tiles with it). *)
val outside_die_cost : int

(** {2 Tile geometry and summaries}

    The coarse level of the hierarchical router works on the tile graph:
    one node per directory slot, 6-neighbor adjacency, capacity signals
    from the incrementally maintained per-tile summaries. *)

(** Tile side length in cells (a compile-time constant). *)
val tile_edge : int

(** Cells per tile ([tile_edge]^3). *)
val tile_cells : int

(** Directory size ([n_tiles g = tx * ty * tz]). *)
val n_tiles : t -> int

(** Tile directory dimensions [(tx, ty, tz)]. *)
val tile_dims : t -> int * int * int

(** [tile_index g p] is the directory index of the tile containing [p]
    (which must be in bounds); layout is x-major, matching
    {!tile_dims}. *)
val tile_index : t -> Tqec_util.Vec3.t -> int

(** [tile_origin g ti] is the lowest cell of tile [ti] (boundary tiles
    may extend past the grid box; clip with {!box}). *)
val tile_origin : t -> int -> Tqec_util.Vec3.t

(** [tile_cell g p] is [p]'s (directory index, within-tile index); the
    within-tile index is x-major over the [tile_edge]^3 cells. *)
val tile_cell : t -> Tqec_util.Vec3.t -> int * int

(** [tile_congestion g ti] is the tile's summed usage + history — the
    coarse congestion signal, maintained incrementally by
    {!add_usage}/{!add_history} (O(1) per cell update). *)
val tile_congestion : t -> int -> int

(** [tile_blocked g ti] is true when every in-bounds cell of the tile is
    an obstacle: the tile is impassable at the coarse level. *)
val tile_blocked : t -> int -> bool

(** [tile_free g ti] is the tile's free capacity: in-bounds cells minus
    obstacles minus summed usage, clamped at 0.  The signal the
    tile-summary-guided region growth reads to expand a search corridor
    toward under-used volume first. *)
val tile_free : t -> int -> int

(** {2 Summary generations}

    Every mutation that changes a tile's summary-visible state — usage
    ({!add_usage} with a non-zero delta), history ({!add_history}),
    obstacle count ({!set_obstacle} on a previously clear cell), shared
    mask ({!set_shared}), or a {!patch_cell} that changes the
    destination — advances a grid-wide counter and stamps it on that
    tile (and only that tile).  A caller that records {!generation} at
    compute time can later ask {!region_unchanged_since}: if no tile in
    the region carries a newer stamp, every summary the computation read
    is provably unchanged, and the cached result is still exact.

    Generations are a per-grid-object timeline: {!snapshot} copies the
    source's timeline and then diverges; {!view} starts a fresh one
    (advanced only by its own patches).  Neither ever bumps the
    source.  Stamps must only be compared against the grid object that
    issued them. *)

(** [generation g] is the current value of the grid-wide mutation
    counter (0 on a fresh grid or view). *)
val generation : t -> int

(** [tile_generation g ti] is the counter value at the last
    summary-changing mutation of tile [ti] (0 if never mutated). *)
val tile_generation : t -> int -> int

(** [region_unchanged_since g ~since region] is true when no tile
    overlapping [region] (clipped to the grid box) has been
    summary-mutated after counter value [since].  O(tiles overlapping
    the region), with an O(1) fast path when the whole grid is
    unchanged. *)
val region_unchanged_since : t -> since:int -> Tqec_util.Box3.t -> bool

(** {2 Memory accounting} *)

type mem = {
  mem_tiles : int;  (** allocated (touched) tiles *)
  mem_tiles_total : int;  (** tile directory capacity *)
  mem_cells : int;  (** bounding-box volume in cells *)
  mem_touched_cells : int;  (** [mem_tiles * tile_cells] *)
  mem_words : int;  (** approximate live heap words held by the grid *)
}

(** [mem g] reports how much of the substrate volume is actually
    materialized — the asymptotics the scale-tier benchmarks track. *)
val mem : t -> mem
