module Vec3 = Tqec_util.Vec3
module Box3 = Tqec_util.Box3
module Pool = Tqec_util.Pool

type net = { net_id : int; pins : Vec3.t list }

type config = {
  max_iterations : int;
  initial_penalty : int;
  penalty_growth : int;
  history_increment : int;
  region_margin : int;
  jobs : int option;
  corridor_cells : int;
  corridor_cache : bool;
  debug : bool;
}

let default_config =
  {
    max_iterations = 40;
    initial_penalty = 6;
    penalty_growth = 4;
    history_increment = 2;
    region_margin = 3;
    jobs = None;
    (* Every paper-suite instance routes in well under this volume, so
       the hierarchical path never perturbs their bit-identical
       dense-era routes; scale-tier substrates blow past it. *)
    corridor_cells = 1_000_000;
    (* Reusing coarse corridors across negotiation iterations is pure
       optimization — every cache hit is provably identical to
       recomputing (see [route_net]) — so it defaults on; the off
       switch exists for cross-checking and benchmark baselines. *)
    corridor_cache = true;
    (* Per-call, never ambient: a long-running server routes many
       requests with different settings, so the debug switch lives in
       the config (the CLI layer defaults it from TQEC_DEBUG). *)
    debug = false;
  }

type routed = { r_net : int; r_cells : Vec3.t list }

type result = {
  routes : routed list;
  success : bool;
  iterations_used : int;
  overused_after : int;
  unrouted : int list;
}

let dedup_cells cells =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun c ->
      if Hashtbl.mem seen c then false
      else begin
        Hashtbl.add seen c ();
        true
      end)
    cells

(* Every domain keeps its own A* workspace: route_net is called
   concurrently from pool workers, and the scratch holds the open queue
   and score arrays. *)
let scratch_key = Domain.DLS.new_key Astar.create_scratch

(* ------------------------------------------------------------------ *)
(* Corridor cache.                                                     *)
(*                                                                     *)
(* [Astar.coarse_corridor] is a pure function of: the ordered          *)
(* deduplicated list of in-region source tiles, the target tile, the   *)
(* region, and the grid's tile summaries (its congestion penalty is    *)
(* pinned to [Astar.coarse_penalty], and it ignores [avoid_used] and   *)
(* [exclude] — both are fine-pass concerns).  The first three form the *)
(* cache key; the summaries are covered by the grid's tile summary     *)
(* generations: an entry stamped at generation [s] is replayable iff   *)
(* no tile overlapping the region was summary-mutated after [s]        *)
(* ([Grid.region_unchanged_since]).  A hit therefore yields exactly    *)
(* the corridor a fresh coarse search would compute — routes are       *)
(* bit-identical with the cache on or off, for any worker count; only  *)
(* the work saved differs.                                             *)
(*                                                                     *)
(* Entries also pin the grid OBJECT they were computed against         *)
(* (physical equality): generations are a per-grid timeline, so a      *)
(* stamp taken against the live grid means nothing to the shared       *)
(* parallel-phase view and vice versa.                                 *)
(*                                                                     *)
(* Tables are per-net: a net is routed by exactly one pool task per    *)
(* iteration, so its table is never touched concurrently; commit       *)
(* barriers ([Pool.map]/[Pool.await]) order accesses across            *)
(* iterations.                                                         *)
(*                                                                     *)
(* A generation stamp alone would self-invalidate on every reroute:    *)
(* the net's own claim (+1 along its path) and the rip-up that         *)
(* precedes the next reroute (-1 along that same path) cancel exactly  *)
(* in every cell and summary, yet both bump generations.  The cache    *)
(* therefore reasons about the EFFECTIVE coarse input — grid state     *)
(* minus the net's own route, which is precisely what                  *)
(* [Astar.coarse_corridor ~exclude] consumes — and that quantity is    *)
(* invariant under the net's own rip/claim.                            *)
(*                                                                     *)
(* Each entry carries [c_commit]: a generation at which               *)
(*                                                                     *)
(*   grid state  -  the net's own route usage  =  the entry's coarse   *)
(*   effective input                   (per tile, over [key]'s region) *)
(*                                                                     *)
(* is known to hold, and [c_excl]: the net's route list (the physical  *)
(* object stored in [route_all]'s routes table; [[]] when unrouted)    *)
(* at that moment.  An entry is replayable iff no region tile was      *)
(* touched after [c_commit] and the caller's [exclude] is physically   *)
(* the [c_excl] object: nothing at all changed, so the effective       *)
(* input — and hence the corridor a fresh coarse search would return   *)
(* — is unchanged.  Routes stay bit-identical with the cache on or     *)
(* off, for any worker count; only the work saved differs.             *)
(*                                                                     *)
(* [route_all] maintains the equation in brackets around every rip-up  *)
(* and claim of the net: the pre-pass checks the entry is current      *)
(* (nothing foreign touched the region since [c_commit]); the          *)
(* post-pass then advances [c_commit] past the mutation and swaps      *)
(* [c_excl] for the net's new route object — sound because the         *)
(* mutation changed grid state and own-route usage by the same         *)
(* amount.  An entry that misses a bracket's pre-check is DELETED:     *)
(* its route bookkeeping can no longer be trusted, so it could never   *)
(* certify again anyway, and dropping it keeps the table — and every   *)
(* later bracket's pre-pass — sized by the live entries instead of     *)
(* the run's history.  Entries pinned to a different grid object (the  *)
(* parallel-phase view) can likewise never match a live-grid lookup    *)
(* again and are dropped by the same post-pass. *)
type cache_entry = {
  c_grid : Grid.t;
  mutable c_commit : int;
  mutable c_excl : Vec3.t list;
  mutable c_keep : bool;
      (* scratch flag carrying the pre-pass verdict of a rip/claim
         bracket to its post-pass; meaningless outside a bracket *)
  c_corridor : int list;
}

type corridor_cache = (int list * int * Box3.t, cache_entry) Hashtbl.t

(* ------------------------------------------------------------------ *)
(* Tile-summary-guided region growth.                                  *)
(*                                                                     *)
(* When a corridor search fails, the window must widen.  The historic  *)
(* schedule inflated uniformly (margin, then 4*margin, then the whole  *)
(* grid); on large substrates this wastes most of the added volume on  *)
(* directions that are full or walled off.  Instead, spend the same    *)
(* total growth budget directionally: sum the free capacity            *)
(* ([Grid.tile_free]) of the one-tile slab beyond each of the six      *)
(* faces and divide the budget proportionally, so the window grows     *)
(* toward under-used volume first.  Deterministic integer arithmetic   *)
(* over tile summaries the searching grid already agrees on across     *)
(* workers — jobs-invariant by the same argument as the searches       *)
(* themselves.  Returns [None] when every slab is exhausted (callers   *)
(* fall back to the uniform schedule). *)
let guided_widen grid ~margin region =
  let tdx, tdy, tdz = Grid.tile_dims grid in
  let lo = (Grid.box grid).Box3.lo in
  let edge = Grid.tile_edge in
  let rlo = region.Box3.lo and rhi = region.Box3.hi in
  let tlx = (rlo.Vec3.x - lo.Vec3.x) / edge
  and tly = (rlo.Vec3.y - lo.Vec3.y) / edge
  and tlz = (rlo.Vec3.z - lo.Vec3.z) / edge in
  let thx = min (tdx - 1) ((rhi.Vec3.x - lo.Vec3.x) / edge)
  and thy = min (tdy - 1) ((rhi.Vec3.y - lo.Vec3.y) / edge)
  and thz = min (tdz - 1) ((rhi.Vec3.z - lo.Vec3.z) / edge) in
  let sum_slab x0 x1 y0 y1 z0 z1 =
    if x0 < 0 || y0 < 0 || z0 < 0 || x1 >= tdx || y1 >= tdy || z1 >= tdz then 0
    else begin
      let s = ref 0 in
      for x = x0 to x1 do
        for y = y0 to y1 do
          for z = z0 to z1 do
            s := !s + Grid.tile_free grid ((((x * tdy) + y) * tdz) + z)
          done
        done
      done;
      !s
    end
  in
  (* face order: x-, x+, y-, y+, z-, z+ *)
  let free =
    [|
      sum_slab (tlx - 1) (tlx - 1) tly thy tlz thz;
      sum_slab (thx + 1) (thx + 1) tly thy tlz thz;
      sum_slab tlx thx (tly - 1) (tly - 1) tlz thz;
      sum_slab tlx thx (thy + 1) (thy + 1) tlz thz;
      sum_slab tlx thx tly thy (tlz - 1) (tlz - 1);
      sum_slab tlx thx tly thy (thz + 1) (thz + 1);
    |]
  in
  let total = Array.fold_left ( + ) 0 free in
  if total = 0 then None
  else begin
    (* same total budget as the uniform step (3*margin more per face
       past the margin-inflated window), spent proportionally; the
       integer remainder goes to the freest faces, ties broken by face
       index — all deterministic *)
    let budget = 18 * margin in
    let extra = Array.map (fun f -> budget * f / total) free in
    let rem = budget - Array.fold_left ( + ) 0 extra in
    let order = [| 0; 1; 2; 3; 4; 5 |] in
    Array.sort
      (fun a b ->
        match Int.compare free.(b) free.(a) with
        | 0 -> Int.compare a b
        | c -> c)
      order;
    for i = 0 to rem - 1 do
      let f = order.(i) in
      extra.(f) <- extra.(f) + 1
    done;
    Some
      (Box3.make
         (Vec3.make (rlo.Vec3.x - extra.(0)) (rlo.Vec3.y - extra.(2))
            (rlo.Vec3.z - extra.(4)))
         (Vec3.make (rhi.Vec3.x + extra.(1)) (rhi.Vec3.y + extra.(3))
            (rhi.Vec3.z + extra.(5))))
  end

(* Route one net as a Steiner tree; returns its cell set (or None when a
   pin is unreachable even with the widest region).  Only reads [grid] —
   in the parallel phase it runs against an immutable shared view, with
   the net's own current route priced out via [exclude] (a -1 usage bias
   inside A*, exactly equivalent to ripping the net up first). *)
let route_net ?(avoid_used = false) ?(exclude = []) ?(corridor_cells = max_int)
    ?(cache : corridor_cache option) grid ~penalty ~margin (n : net) =
  match dedup_cells n.pins with
  | [] -> Some []
  | first :: rest ->
      let scratch = Domain.DLS.get scratch_key in
      let grid_box = Grid.box grid in
      let clip b =
        match Box3.inter b grid_box with Some r -> r | None -> grid_box
      in
      let tree = ref [ first ] in
      (* cache-key scratch, reused across lookups to keep the hot miss
         path allocation-light *)
      let key_seen = Hashtbl.create 64 in
      let tree_set = Hashtbl.create 64 in
      Hashtbl.replace tree_set first ();
      let add_cells cells =
        List.iter
          (fun c ->
            if not (Hashtbl.mem tree_set c) then begin
              Hashtbl.replace tree_set c ();
              tree := c :: !tree
            end)
          cells
      in
      (* Prim order: each pin keeps its distance to the growing tree,
         refreshed lazily; always connect the nearest remaining pin. *)
      let remaining = ref (List.map (fun p -> (Vec3.manhattan first p, p)) rest) in
      let dist_to_tree p =
        List.fold_left (fun acc c -> min acc (Vec3.manhattan c p)) max_int !tree
      in
      let connect pin =
        if Hashtbl.mem tree_set pin then true
        else begin
          (* restrict the search to the corridor between the pin and the
             nearest point of the tree, widening on failure *)
          let nearest =
            List.fold_left
              (fun best c ->
                if Vec3.manhattan c pin < Vec3.manhattan best pin then c
                else best)
              (List.hd !tree) !tree
          in
          let corridor = Box3.bounding [ pin; nearest ] in
          (* Small windows take the historical flat search (bit-identical
             routes).  Past the volume threshold, a coarse corridor over
             the tile graph bounds the fine search; if the corridor is
             infeasible at cell level, fall back to the exhaustive
             full-window search so completeness is unchanged. *)
          (* Hierarchical search with the corridor cache consulted
             first.  A replayed corridor is exactly what a fresh coarse
             search would compute (see the [corridor_cache] contract
             above), so the fine pass — and with it the route — cannot
             tell a hit from a recomputation. *)
          let hier_search region =
            match cache with
            | None ->
                Astar.search_corridor ~scratch ~avoid_used ~exclude grid
                  ~region ~penalty ~sources:!tree ~target:pin
            | Some tbl -> (
                Hashtbl.clear key_seen;
                let tiles = ref [] in
                List.iter
                  (fun s ->
                    if Box3.contains region s then begin
                      let ti = Grid.tile_index grid s in
                      if not (Hashtbl.mem key_seen ti) then begin
                        Hashtbl.add key_seen ti ();
                        tiles := ti :: !tiles
                      end
                    end)
                  !tree;
                let key_tiles = List.rev !tiles in
                let key = (key_tiles, Grid.tile_index grid pin, region) in
                match Hashtbl.find_opt tbl key with
                | Some e
                  when e.c_grid == grid && e.c_commit >= 0
                       && e.c_excl == exclude
                       && Grid.region_unchanged_since grid ~since:e.c_commit
                            region ->
                    Atomic.incr Counters.cache_hits;
                    Astar.fine_in_corridor ~avoid_used ~exclude scratch grid
                      ~corridor:e.c_corridor ~region ~penalty ~sources:!tree
                      ~target:pin
                | stale -> (
                    Atomic.incr Counters.cache_misses;
                    if stale <> None then Atomic.incr Counters.cache_stale;
                    let stamp = Grid.generation grid in
                    match
                      (* the key's tile list doubles as the coarse seed
                         list — same derivation, walked once *)
                      Astar.coarse_corridor ~exclude ~source_tiles:key_tiles
                        scratch grid ~region ~sources:!tree ~target:pin
                    with
                    | None -> None
                    | Some corridor ->
                        (* the equation holds right now by construction:
                           the coarse just consumed grid-minus-[exclude],
                           and [exclude] is the net's current route *)
                        Hashtbl.replace tbl key
                          { c_grid = grid; c_commit = stamp;
                            c_excl = exclude; c_keep = false;
                            c_corridor = corridor };
                        Astar.fine_in_corridor ~avoid_used ~exclude scratch
                          grid ~corridor ~region ~penalty ~sources:!tree
                          ~target:pin))
          in
          let try_region region =
            if Box3.volume region <= corridor_cells then
              Astar.search ~scratch ~avoid_used ~exclude grid ~region ~penalty
                ~sources:!tree ~target:pin
            else
              match hier_search region with
              | Some path -> Some path
              | None ->
                  Atomic.incr Counters.flat_fallbacks;
                  Astar.search ~scratch ~avoid_used ~exclude grid ~region
                    ~penalty ~sources:!tree ~target:pin
          in
          (* Escalation ladder, each region clipped to the grid.  A step
             whose clipped region does not strictly grow past the previous
             failed one would repeat the identical (and most expensive)
             search, so it is skipped: when the margin-inflated corridor
             already covers the grid, the failed search is final. *)
          let r1 = clip (Box3.inflate margin corridor) in
          (* Middle widening step: windows small enough for the flat
             search keep the historic uniform schedule (bit-identical
             routes on paper-suite instances); hierarchical windows
             grow toward free capacity instead, falling back to the
             uniform step when every neighboring tile slab is full.
             The full grid box remains the final fallback either
             way. *)
          let r2 =
            if Box3.volume r1 > corridor_cells then
              match guided_widen grid ~margin r1 with
              | Some r -> clip r
              | None -> clip (Box3.inflate (4 * margin) corridor)
            else clip (Box3.inflate (4 * margin) corridor)
          in
          let regions = [ r1; r2; grid_box ] in
          let rec attempt prev = function
            | [] -> None
            | r :: rest ->
                if (match prev with Some p -> Box3.equal p r | None -> false)
                then attempt prev rest
                else (
                  match try_region r with
                  | Some path -> Some path
                  | None -> attempt (Some r) rest)
          in
          match attempt None regions with
          | Some path ->
              add_cells path;
              true
          | None -> false
        end
      in
      let ok = ref true in
      while !ok && !remaining <> [] do
        (* refresh distances and pick the closest pin *)
        let refreshed =
          List.map (fun (_, p) -> (dist_to_tree p, p)) !remaining
        in
        let (_, pin), rest' =
          match List.sort compare refreshed with
          | best :: others -> (best, others)
          (* partial: the enclosing loop runs only while [remaining]
             is non-empty, so the sorted list has a head *)
          | [] -> assert false
        in
        remaining := rest';
        ok := connect pin
      done;
      if !ok then Some (List.rev !tree) else None

(* Negotiated congestion with a snapshot/commit iteration (parallel
   PathFinder): every iteration freezes the grid's congestion state,
   routes the nets under negotiation concurrently against that stale
   view (each with its own previous route priced out), then rips up and
   commits their claims serially in deterministic net order.  Conflicts
   the stale view hides from the concurrent searches surface as overuse
   at commit and are renegotiated on the next iteration.  Because every
   net is routed against the same view and the commit order is the
   (deterministic) net order, the trajectory is bit-identical for any
   worker count — including fully serial runs.

   The view itself is built and kept current off the critical path: one
   copy of the congestion arrays is made as a pool task that overlaps
   the first (serial) routing iteration, every cell the serial/commit
   phases write is recorded, and an end-of-iteration patch of exactly
   those cells brings the view back to "live grid, now" — so steady
   state does O(cells touched) fix-up work per iteration instead of the
   per-worker O(volume) copies the first parallel version made. *)
let route_all grid config nets =
  let jobs =
    match config.jobs with Some j -> max 1 j | None -> Pool.default_jobs ()
  in
  let routes : (int, Vec3.t list) Hashtbl.t = Hashtbl.create 64 in
  (* Shared stale view, incrementally maintained.  [touched] records
     every live-grid cell written since the view last agreed with the
     grid; [sync_view] patches exactly those.  The initial [Grid.view]
     copy races the first iteration's commits by design: any slot it
     catches mid-write belongs to a recorded cell, so the patch heals
     it (see the [Grid.view] contract). *)
  let snap = ref None in
  let snap_fill = ref None in
  let recording = ref false in
  let touched = ref [] in
  let record c = if !recording then touched := c :: !touched in
  let sync_view () =
    (match !snap_fill with
    | Some pr ->
        snap := Some (Pool.await pr);
        snap_fill := None
    | None -> ());
    match !snap with
    | Some v ->
        List.iter (fun c -> Grid.patch_cell ~src:grid ~dst:v c) !touched;
        touched := []
    | None -> touched := []
  in
  let rip_up net_id =
    match Hashtbl.find_opt routes net_id with
    | None -> ()
    | Some cells ->
        List.iter
          (fun c ->
            Grid.add_usage grid c (-1);
            record c)
          cells;
        Hashtbl.remove routes net_id
  in
  let claim net_id cells =
    List.iter
      (fun c ->
        Grid.add_usage grid c 1;
        record c)
      cells;
    Hashtbl.replace routes net_id cells
  in
  let unrouted = ref [] in
  let iterations_used = ref 0 in
  let finished = ref false in
  let penalty = ref config.initial_penalty in
  (* biggest nets first: they have the least routing freedom *)
  let nets =
    List.stable_sort
      (fun a b -> Int.compare (List.length b.pins) (List.length a.pins))
      nets
  in
  let route_set = ref nets in
  (* Corridor-cache tables, one per net, allocated up front: a net is
     routed by exactly one pool task per iteration, so a task only ever
     mutates its own net's table, and the outer table is read-only
     after this point ([Hashtbl.find_opt] from concurrent tasks is
     safe).  Entries self-invalidate via the grid-object pin and the
     summary generations — see the [corridor_cache] contract. *)
  let caches =
    if config.corridor_cache then begin
      let t = Hashtbl.create 64 in
      List.iter (fun n -> Hashtbl.replace t n.net_id (Hashtbl.create 8)) nets;
      Some t
    end
    else None
  in
  let cache_of n =
    match caches with
    | None -> None
    | Some t -> Hashtbl.find_opt t n.net_id
  in
  (* Rip/claim brackets maintaining the [c_commit]/[c_excl] equation
     (see the cache contract above).  Each bracket is a pre-pass over
     the net's live-grid entries, the usage mutation itself, and a
     post-pass; the grid is quiescent across each bracket (these run
     only in the serial phases and the serialized batch-commit loop).
     [excl_after] is the net's route object right after the mutation:
     [[]] for a rip-up, the claimed cell list for a claim.  Per-entry
     updates commute, so the tables' iteration order never reaches any
     output. *)
  let bracket n excl_after mutate =
    match cache_of n with
    | None -> mutate ()
    | Some tbl ->
        (* hash-order: per-entry flag/stamp writes are independent of
           the order entries are visited in *)
        Hashtbl.iter
          (fun (_, _, region) e ->
            if e.c_grid == grid then
              e.c_keep <-
                e.c_commit >= 0
                && Grid.region_unchanged_since grid ~since:e.c_commit region)
          tbl;
        mutate ();
        let now = Grid.generation grid in
        (* Entries that fail the pre-pass can never certify again (the
           window moved for good), and entries pinned to a retired view
           can never match a future lookup's grid — both are deleted
           rather than poisoned.  A multi-pin net mints fresh keys every
           iteration as its routed tree changes, so keeping dead entries
           would grow the table — and with it every later bracket's
           pre-pass — linearly in iterations. *)
        let dead = ref [] in
        (* hash-order: same argument — order-independent per-entry
           writes; the dead list only feeds unordered removals *)
        Hashtbl.iter
          (fun k e ->
            if e.c_grid == grid && e.c_keep then begin
              e.c_commit <- now;
              e.c_excl <- excl_after
            end
            else dead := k :: !dead)
          tbl;
        List.iter (Hashtbl.remove tbl) !dead
  in
  let rip net = bracket net [] (fun () -> rip_up net.net_id) in
  let claim_net net cells = bracket net cells (fun () -> claim net.net_id cells) in
  (* Snapshot routing can sustain a lock-step oscillation: two symmetric
     nets avoiding each other's stale position swap cells forever, each
     move depositing history on both alternatives equally.  Serial
     incremental rerouting is immune (the second net reacts to the
     first's new route), so small conflict batches — where parallelism
     buys nothing anyway — and stagnating negotiations fall back to it.
     Both triggers depend only on the trajectory, never on timing or the
     worker count, so determinism is preserved. *)
  let serial_batch_cutoff = 4 in
  let stagnation_limit = 3 in
  let best_overused = ref max_int in
  let stagnant = ref 0 in
  (* Parallel iterations are possible only when the negotiation set is
     big enough to ever escape the serial cutoff; only then is the view
     worth building.  Start the copy now — it overlaps the entire first
     serial iteration (searches and commits). *)
  if jobs > 1 && List.length nets > serial_batch_cutoff then begin
    recording := true;
    snap_fill := Some (Pool.async (fun () -> Grid.view grid))
  end;
  while (not !finished) && !iterations_used < config.max_iterations do
    incr iterations_used;
    let batch = Array.of_list !route_set in
    let penalty_now = !penalty and margin = config.region_margin in
    let still_unrouted = ref [] in
    if
      !iterations_used = 1
      || Array.length batch <= serial_batch_cutoff
      || !stagnant >= stagnation_limit
    then
      (* The first iteration defines the initial solution: route it
         incrementally (each net sees every earlier commitment) exactly
         like classic serial PathFinder — a blind first-iteration batch
         measurably degrades final volume.  Small or stagnating conflict
         batches take the same path to break snapshot oscillations.  This
         phase is sequential for every worker count, so determinism is
         free. *)
      Array.iter
        (fun n ->
          rip n;
          match
            route_net ~corridor_cells:config.corridor_cells
              ?cache:(cache_of n) grid ~penalty:penalty_now ~margin n
          with
          | Some cells -> claim_net n cells
          | None -> still_unrouted := n.net_id :: !still_unrouted)
        batch
    else begin
      let exclude_of n =
        match Hashtbl.find_opt routes n.net_id with
        | Some cells -> cells
        | None -> []
      in
      let found =
        if jobs = 1 || Array.length batch <= 1 then
          (* single worker: the live grid is immutable until the commit
             phase below, so it doubles as the frozen view — no copy *)
          Array.map
            (fun n ->
              route_net ~corridor_cells:config.corridor_cells
                ?cache:(cache_of n) grid ~exclude:(exclude_of n)
                ~penalty:penalty_now ~margin n)
            batch
        else begin
          let v =
            match !snap with
            | Some v -> v
            | None ->
                (* Defensive: a parallel batch can only follow a synced
                   serial iteration, but if the view is missing, build
                   it here — the grid is quiescent at this point. *)
                recording := true;
                let v = Grid.view grid in
                snap := Some v;
                v
          in
          (* pin the old routes down before fanning out: tasks must not
             read the mutable [routes] table *)
          let excludes = Array.map exclude_of batch in
          Pool.map ~jobs
            (fun (i, n) ->
              route_net ~corridor_cells:config.corridor_cells
                ?cache:(cache_of n) v ~exclude:excludes.(i)
                ~penalty:penalty_now ~margin n)
            (Array.mapi (fun i n -> (i, n)) batch)
        end
      in
      (* commit serially, in batch order: commit order, not completion
         order, decides the trajectory *)
      Array.iteri
        (fun i n ->
          rip n;
          match found.(i) with
          | Some cells -> claim_net n cells
          | None -> still_unrouted := n.net_id :: !still_unrouted)
        batch
    end;
    unrouted := !still_unrouted;
    let overused = Grid.overused grid in
    if List.length overused < !best_overused then begin
      best_overused := List.length overused;
      stagnant := 0
    end
    else incr stagnant;
    if config.debug then
      Printf.eprintf "[pathfinder] iter=%d rerouted=%d overused=%d jobs=%d\n%!"
        !iterations_used (Array.length batch) (List.length overused) jobs;
    if overused = [] && !unrouted = [] then finished := true
    else begin
      List.iter
        (fun c ->
          Grid.add_history grid c config.history_increment;
          record c)
        overused;
      penalty := !penalty + config.penalty_growth;
      (* negotiate only where it matters: re-route just the nets that
         cross an overused cell (plus any still-unrouted net) *)
      let hot = Hashtbl.create 64 in
      List.iter (fun c -> Hashtbl.replace hot c ()) overused;
      route_set :=
        List.filter
          (fun n ->
            List.mem n.net_id !unrouted
            ||
            match Hashtbl.find_opt routes n.net_id with
            | Some cells -> List.exists (Hashtbl.mem hot) cells
            | None -> true)
          nets
    end;
    (* Bring the shared view back in sync with the live grid (and land
       the overlapped initial copy after the first iteration).  Doing
       this even on the final iteration retires the fill task before
       the cleanup phase mutates the grid unwatched. *)
    if !recording then sync_view ()
  done;
  (* cleanup below routes on the live grid only — retire any pending
     fill (max_iterations = 0 edge) and stop paying for maintenance *)
  if !recording then sync_view ();
  recording := false;
  snap := None;
  (* Endgame cleanup: negotiation can oscillate between net pairs on a
     handful of cells.  Resolve each residual conflict deterministically:
     hard-block the contested cells and reroute the smallest involved
     net around them (restoring its old route if that fails). *)
  let cleanup_rounds = ref 0 in
  let rec cleanup () =
    incr cleanup_rounds;
    let overused = Grid.overused grid in
    if overused <> [] && !cleanup_rounds <= 8 then begin
      let hot = Hashtbl.create 16 in
      List.iter (fun c -> Hashtbl.replace hot c ()) overused;
      let involved =
        List.filter
          (fun n ->
            match Hashtbl.find_opt routes n.net_id with
            | Some cells -> List.exists (Hashtbl.mem hot) cells
            | None -> false)
          nets
        |> List.sort (fun a b ->
               Int.compare (List.length a.pins) (List.length b.pins))
      in
      let progressed = ref false in
      let rec try_victims = function
        | [] -> ()
        | victim :: others -> (
            let old = Hashtbl.find routes victim.net_id in
            rip victim;
            match
              route_net ~avoid_used:true
                ~corridor_cells:config.corridor_cells
                ?cache:(cache_of victim) grid ~penalty:!penalty
                ~margin:config.region_margin victim
            with
            | Some cells ->
                claim_net victim cells;
                progressed := true
            | None ->
                claim_net victim old;
                try_victims others)
      in
      try_victims involved;
      if !progressed then cleanup ()
    end
  in
  cleanup ();
  let final_overused = Grid.overused grid in
  if config.debug then
    List.iter
      (fun c ->
        let users =
          List.filter_map
            (fun n ->
              match Hashtbl.find_opt routes n.net_id with
              | Some cells when List.exists (Vec3.equal c) cells ->
                  Some (Printf.sprintf "%d(pins=%d)" n.net_id (List.length n.pins))
              | _ -> None)
            nets
        in
        Printf.eprintf "[pathfinder] stuck %s usage=%d obst-nbrs=%d users=%s\n%!"
          (Vec3.to_string c) (Grid.usage grid c)
          (List.length (List.filter (Grid.is_obstacle grid) (Vec3.axis_neighbors c)))
          (String.concat "," users))
      final_overused;
  let overused_after = List.length final_overused in
  {
    routes =
      List.filter_map
        (fun n ->
          Hashtbl.find_opt routes n.net_id
          |> Option.map (fun cells -> { r_net = n.net_id; r_cells = cells }))
        nets;
    success = overused_after = 0 && !unrouted = [];
    iterations_used = !iterations_used;
    overused_after;
    unrouted = List.rev !unrouted;
  }

let validate grid result nets =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  let by_id = Hashtbl.create 16 in
  List.iter (fun r -> Hashtbl.replace by_id r.r_net r.r_cells) result.routes;
  (* per-cell usage over all routed nets: the capacity oracle *)
  let usage = Hashtbl.create 256 in
  List.iter
    (fun r ->
      List.iter
        (fun c ->
          Hashtbl.replace usage c
            (1 + Option.value ~default:0 (Hashtbl.find_opt usage c)))
        r.r_cells)
    result.routes;
  List.iter
    (fun n ->
      match Hashtbl.find_opt by_id n.net_id with
      | None ->
          if not (List.mem n.net_id result.unrouted) then
            err "net %d missing from routes" n.net_id
      | Some cells ->
          let pins = dedup_cells n.pins in
          let pin_set = Hashtbl.create 8 in
          List.iter (fun p -> Hashtbl.replace pin_set p ()) pins;
          (* geometric legality against the grid: every cell inside the
             routing box, and no obstacle crossings except at the net's
             own pins (the only cells A* exempts) *)
          let cell_set = Hashtbl.create 64 in
          List.iter
            (fun c ->
              if Hashtbl.mem cell_set c then
                err "net %d lists cell %s twice" n.net_id (Vec3.to_string c)
              else Hashtbl.replace cell_set c ();
              if not (Grid.in_bounds grid c) then
                err "net %d leaves the routing grid at %s" n.net_id
                  (Vec3.to_string c)
              else if Grid.is_obstacle grid c && not (Hashtbl.mem pin_set c)
              then
                err "net %d passes through obstacle %s" n.net_id
                  (Vec3.to_string c))
            cells;
          List.iter
            (fun pin ->
              if not (Hashtbl.mem cell_set pin) then
                err "net %d does not reach pin %s" n.net_id (Vec3.to_string pin))
            pins;
          (* connectivity by BFS over the cell set *)
          (match cells with
          | [] -> ()
          | start :: _ ->
              let visited = Hashtbl.create 64 in
              let queue = Queue.create () in
              Queue.add start queue;
              Hashtbl.replace visited start ();
              while not (Queue.is_empty queue) do
                let p = Queue.pop queue in
                List.iter
                  (fun q ->
                    if Hashtbl.mem cell_set q && not (Hashtbl.mem visited q)
                    then begin
                      Hashtbl.replace visited q ();
                      Queue.add q queue
                    end)
                  (Vec3.axis_neighbors p)
              done;
              if Hashtbl.length visited <> Hashtbl.length cell_set then
                err "net %d cells disconnected" n.net_id))
    nets;
  (* capacity and overuse accounting: non-shared cells carry at most
     [Grid.capacity] strands, and the result must own up to exactly the
     overuse its routes imply *)
  let over =
    (* hash-order: the overuse list is sorted before reporting *)
    Hashtbl.fold
      (fun c u acc ->
        if u > Grid.capacity && Grid.in_bounds grid c
           && not (Grid.is_shared grid c)
        then (c, u) :: acc
        else acc)
      usage []
    |> List.sort compare
  in
  if result.success then
    List.iter
      (fun (c, u) ->
        err "cell %s carries %d nets (capacity %d)" (Vec3.to_string c) u
          Grid.capacity)
      over;
  if List.length over <> result.overused_after then
    err "overuse accounting: result reports %d overused cells, routes imply %d"
      result.overused_after (List.length over);
  List.rev !errors
