module Vec3 = Tqec_util.Vec3
module Box3 = Tqec_util.Box3
module Pool = Tqec_util.Pool

type net = { net_id : int; pins : Vec3.t list }

type config = {
  max_iterations : int;
  initial_penalty : int;
  penalty_growth : int;
  history_increment : int;
  region_margin : int;
  jobs : int option;
  corridor_cells : int;
  debug : bool;
}

let default_config =
  {
    max_iterations = 40;
    initial_penalty = 6;
    penalty_growth = 4;
    history_increment = 2;
    region_margin = 3;
    jobs = None;
    (* Every paper-suite instance routes in well under this volume, so
       the hierarchical path never perturbs their bit-identical
       dense-era routes; scale-tier substrates blow past it. *)
    corridor_cells = 1_000_000;
    (* Per-call, never ambient: a long-running server routes many
       requests with different settings, so the debug switch lives in
       the config (the CLI layer defaults it from TQEC_DEBUG). *)
    debug = false;
  }

type routed = { r_net : int; r_cells : Vec3.t list }

type result = {
  routes : routed list;
  success : bool;
  iterations_used : int;
  overused_after : int;
  unrouted : int list;
}

let dedup_cells cells =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun c ->
      if Hashtbl.mem seen c then false
      else begin
        Hashtbl.add seen c ();
        true
      end)
    cells

(* Every domain keeps its own A* workspace: route_net is called
   concurrently from pool workers, and the scratch holds the open queue
   and score arrays. *)
let scratch_key = Domain.DLS.new_key Astar.create_scratch

(* Route one net as a Steiner tree; returns its cell set (or None when a
   pin is unreachable even with the widest region).  Only reads [grid] —
   in the parallel phase it runs against an immutable shared view, with
   the net's own current route priced out via [exclude] (a -1 usage bias
   inside A*, exactly equivalent to ripping the net up first). *)
let route_net ?(avoid_used = false) ?(exclude = []) ?(corridor_cells = max_int)
    grid ~penalty ~margin (n : net) =
  match dedup_cells n.pins with
  | [] -> Some []
  | first :: rest ->
      let scratch = Domain.DLS.get scratch_key in
      let grid_box = Grid.box grid in
      let clip b =
        match Box3.inter b grid_box with Some r -> r | None -> grid_box
      in
      let tree = ref [ first ] in
      let tree_set = Hashtbl.create 64 in
      Hashtbl.replace tree_set first ();
      let add_cells cells =
        List.iter
          (fun c ->
            if not (Hashtbl.mem tree_set c) then begin
              Hashtbl.replace tree_set c ();
              tree := c :: !tree
            end)
          cells
      in
      (* Prim order: each pin keeps its distance to the growing tree,
         refreshed lazily; always connect the nearest remaining pin. *)
      let remaining = ref (List.map (fun p -> (Vec3.manhattan first p, p)) rest) in
      let dist_to_tree p =
        List.fold_left (fun acc c -> min acc (Vec3.manhattan c p)) max_int !tree
      in
      let connect pin =
        if Hashtbl.mem tree_set pin then true
        else begin
          (* restrict the search to the corridor between the pin and the
             nearest point of the tree, widening on failure *)
          let nearest =
            List.fold_left
              (fun best c ->
                if Vec3.manhattan c pin < Vec3.manhattan best pin then c
                else best)
              (List.hd !tree) !tree
          in
          let corridor = Box3.bounding [ pin; nearest ] in
          (* Small windows take the historical flat search (bit-identical
             routes).  Past the volume threshold, a coarse corridor over
             the tile graph bounds the fine search; if the corridor is
             infeasible at cell level, fall back to the exhaustive
             full-window search so completeness is unchanged. *)
          let try_region region =
            if Box3.volume region <= corridor_cells then
              Astar.search ~scratch ~avoid_used ~exclude grid ~region ~penalty
                ~sources:!tree ~target:pin
            else
              match
                Astar.search_corridor ~scratch ~avoid_used ~exclude grid
                  ~region ~penalty ~sources:!tree ~target:pin
              with
              | Some path -> Some path
              | None ->
                  Astar.search ~scratch ~avoid_used ~exclude grid ~region
                    ~penalty ~sources:!tree ~target:pin
          in
          (* Escalation ladder, each region clipped to the grid.  A step
             whose clipped region does not strictly grow past the previous
             failed one would repeat the identical (and most expensive)
             search, so it is skipped: when the margin-inflated corridor
             already covers the grid, the failed search is final. *)
          let regions =
            [
              clip (Box3.inflate margin corridor);
              clip (Box3.inflate (4 * margin) corridor);
              grid_box;
            ]
          in
          let rec attempt prev = function
            | [] -> None
            | r :: rest ->
                if (match prev with Some p -> Box3.equal p r | None -> false)
                then attempt prev rest
                else (
                  match try_region r with
                  | Some path -> Some path
                  | None -> attempt (Some r) rest)
          in
          match attempt None regions with
          | Some path ->
              add_cells path;
              true
          | None -> false
        end
      in
      let ok = ref true in
      while !ok && !remaining <> [] do
        (* refresh distances and pick the closest pin *)
        let refreshed =
          List.map (fun (_, p) -> (dist_to_tree p, p)) !remaining
        in
        let (_, pin), rest' =
          match List.sort compare refreshed with
          | best :: others -> (best, others)
          (* partial: the enclosing loop runs only while [remaining]
             is non-empty, so the sorted list has a head *)
          | [] -> assert false
        in
        remaining := rest';
        ok := connect pin
      done;
      if !ok then Some (List.rev !tree) else None

(* Negotiated congestion with a snapshot/commit iteration (parallel
   PathFinder): every iteration freezes the grid's congestion state,
   routes the nets under negotiation concurrently against that stale
   view (each with its own previous route priced out), then rips up and
   commits their claims serially in deterministic net order.  Conflicts
   the stale view hides from the concurrent searches surface as overuse
   at commit and are renegotiated on the next iteration.  Because every
   net is routed against the same view and the commit order is the
   (deterministic) net order, the trajectory is bit-identical for any
   worker count — including fully serial runs.

   The view itself is built and kept current off the critical path: one
   copy of the congestion arrays is made as a pool task that overlaps
   the first (serial) routing iteration, every cell the serial/commit
   phases write is recorded, and an end-of-iteration patch of exactly
   those cells brings the view back to "live grid, now" — so steady
   state does O(cells touched) fix-up work per iteration instead of the
   per-worker O(volume) copies the first parallel version made. *)
let route_all grid config nets =
  let jobs =
    match config.jobs with Some j -> max 1 j | None -> Pool.default_jobs ()
  in
  let routes : (int, Vec3.t list) Hashtbl.t = Hashtbl.create 64 in
  (* Shared stale view, incrementally maintained.  [touched] records
     every live-grid cell written since the view last agreed with the
     grid; [sync_view] patches exactly those.  The initial [Grid.view]
     copy races the first iteration's commits by design: any slot it
     catches mid-write belongs to a recorded cell, so the patch heals
     it (see the [Grid.view] contract). *)
  let snap = ref None in
  let snap_fill = ref None in
  let recording = ref false in
  let touched = ref [] in
  let record c = if !recording then touched := c :: !touched in
  let sync_view () =
    (match !snap_fill with
    | Some pr ->
        snap := Some (Pool.await pr);
        snap_fill := None
    | None -> ());
    match !snap with
    | Some v ->
        List.iter (fun c -> Grid.patch_cell ~src:grid ~dst:v c) !touched;
        touched := []
    | None -> touched := []
  in
  let rip_up net_id =
    match Hashtbl.find_opt routes net_id with
    | None -> ()
    | Some cells ->
        List.iter
          (fun c ->
            Grid.add_usage grid c (-1);
            record c)
          cells;
        Hashtbl.remove routes net_id
  in
  let claim net_id cells =
    List.iter
      (fun c ->
        Grid.add_usage grid c 1;
        record c)
      cells;
    Hashtbl.replace routes net_id cells
  in
  let unrouted = ref [] in
  let iterations_used = ref 0 in
  let finished = ref false in
  let penalty = ref config.initial_penalty in
  (* biggest nets first: they have the least routing freedom *)
  let nets =
    List.stable_sort
      (fun a b -> Int.compare (List.length b.pins) (List.length a.pins))
      nets
  in
  let route_set = ref nets in
  (* Snapshot routing can sustain a lock-step oscillation: two symmetric
     nets avoiding each other's stale position swap cells forever, each
     move depositing history on both alternatives equally.  Serial
     incremental rerouting is immune (the second net reacts to the
     first's new route), so small conflict batches — where parallelism
     buys nothing anyway — and stagnating negotiations fall back to it.
     Both triggers depend only on the trajectory, never on timing or the
     worker count, so determinism is preserved. *)
  let serial_batch_cutoff = 4 in
  let stagnation_limit = 3 in
  let best_overused = ref max_int in
  let stagnant = ref 0 in
  (* Parallel iterations are possible only when the negotiation set is
     big enough to ever escape the serial cutoff; only then is the view
     worth building.  Start the copy now — it overlaps the entire first
     serial iteration (searches and commits). *)
  if jobs > 1 && List.length nets > serial_batch_cutoff then begin
    recording := true;
    snap_fill := Some (Pool.async (fun () -> Grid.view grid))
  end;
  while (not !finished) && !iterations_used < config.max_iterations do
    incr iterations_used;
    let batch = Array.of_list !route_set in
    let penalty_now = !penalty and margin = config.region_margin in
    let still_unrouted = ref [] in
    if
      !iterations_used = 1
      || Array.length batch <= serial_batch_cutoff
      || !stagnant >= stagnation_limit
    then
      (* The first iteration defines the initial solution: route it
         incrementally (each net sees every earlier commitment) exactly
         like classic serial PathFinder — a blind first-iteration batch
         measurably degrades final volume.  Small or stagnating conflict
         batches take the same path to break snapshot oscillations.  This
         phase is sequential for every worker count, so determinism is
         free. *)
      Array.iter
        (fun n ->
          rip_up n.net_id;
          match
            route_net ~corridor_cells:config.corridor_cells grid
              ~penalty:penalty_now ~margin n
          with
          | Some cells -> claim n.net_id cells
          | None -> still_unrouted := n.net_id :: !still_unrouted)
        batch
    else begin
      let exclude_of n =
        match Hashtbl.find_opt routes n.net_id with
        | Some cells -> cells
        | None -> []
      in
      let found =
        if jobs = 1 || Array.length batch <= 1 then
          (* single worker: the live grid is immutable until the commit
             phase below, so it doubles as the frozen view — no copy *)
          Array.map
            (fun n ->
              route_net ~corridor_cells:config.corridor_cells grid
                ~exclude:(exclude_of n) ~penalty:penalty_now ~margin n)
            batch
        else begin
          let v =
            match !snap with
            | Some v -> v
            | None ->
                (* Defensive: a parallel batch can only follow a synced
                   serial iteration, but if the view is missing, build
                   it here — the grid is quiescent at this point. *)
                recording := true;
                let v = Grid.view grid in
                snap := Some v;
                v
          in
          (* pin the old routes down before fanning out: tasks must not
             read the mutable [routes] table *)
          let excludes = Array.map exclude_of batch in
          Pool.map ~jobs
            (fun (i, n) ->
              route_net ~corridor_cells:config.corridor_cells v
                ~exclude:excludes.(i) ~penalty:penalty_now ~margin n)
            (Array.mapi (fun i n -> (i, n)) batch)
        end
      in
      (* commit serially, in batch order: commit order, not completion
         order, decides the trajectory *)
      Array.iteri
        (fun i n ->
          rip_up n.net_id;
          match found.(i) with
          | Some cells -> claim n.net_id cells
          | None -> still_unrouted := n.net_id :: !still_unrouted)
        batch
    end;
    unrouted := !still_unrouted;
    let overused = Grid.overused grid in
    if List.length overused < !best_overused then begin
      best_overused := List.length overused;
      stagnant := 0
    end
    else incr stagnant;
    if config.debug then
      Printf.eprintf "[pathfinder] iter=%d rerouted=%d overused=%d jobs=%d\n%!"
        !iterations_used (Array.length batch) (List.length overused) jobs;
    if overused = [] && !unrouted = [] then finished := true
    else begin
      List.iter
        (fun c ->
          Grid.add_history grid c config.history_increment;
          record c)
        overused;
      penalty := !penalty + config.penalty_growth;
      (* negotiate only where it matters: re-route just the nets that
         cross an overused cell (plus any still-unrouted net) *)
      let hot = Hashtbl.create 64 in
      List.iter (fun c -> Hashtbl.replace hot c ()) overused;
      route_set :=
        List.filter
          (fun n ->
            List.mem n.net_id !unrouted
            ||
            match Hashtbl.find_opt routes n.net_id with
            | Some cells -> List.exists (Hashtbl.mem hot) cells
            | None -> true)
          nets
    end;
    (* Bring the shared view back in sync with the live grid (and land
       the overlapped initial copy after the first iteration).  Doing
       this even on the final iteration retires the fill task before
       the cleanup phase mutates the grid unwatched. *)
    if !recording then sync_view ()
  done;
  (* cleanup below routes on the live grid only — retire any pending
     fill (max_iterations = 0 edge) and stop paying for maintenance *)
  if !recording then sync_view ();
  recording := false;
  snap := None;
  (* Endgame cleanup: negotiation can oscillate between net pairs on a
     handful of cells.  Resolve each residual conflict deterministically:
     hard-block the contested cells and reroute the smallest involved
     net around them (restoring its old route if that fails). *)
  let cleanup_rounds = ref 0 in
  let rec cleanup () =
    incr cleanup_rounds;
    let overused = Grid.overused grid in
    if overused <> [] && !cleanup_rounds <= 8 then begin
      let hot = Hashtbl.create 16 in
      List.iter (fun c -> Hashtbl.replace hot c ()) overused;
      let involved =
        List.filter
          (fun n ->
            match Hashtbl.find_opt routes n.net_id with
            | Some cells -> List.exists (Hashtbl.mem hot) cells
            | None -> false)
          nets
        |> List.sort (fun a b ->
               Int.compare (List.length a.pins) (List.length b.pins))
      in
      let progressed = ref false in
      let rec try_victims = function
        | [] -> ()
        | victim :: others -> (
            let old = Hashtbl.find routes victim.net_id in
            rip_up victim.net_id;
            match
              route_net ~avoid_used:true
                ~corridor_cells:config.corridor_cells grid ~penalty:!penalty
                ~margin:config.region_margin victim
            with
            | Some cells ->
                claim victim.net_id cells;
                progressed := true
            | None ->
                claim victim.net_id old;
                try_victims others)
      in
      try_victims involved;
      if !progressed then cleanup ()
    end
  in
  cleanup ();
  let final_overused = Grid.overused grid in
  if config.debug then
    List.iter
      (fun c ->
        let users =
          List.filter_map
            (fun n ->
              match Hashtbl.find_opt routes n.net_id with
              | Some cells when List.exists (Vec3.equal c) cells ->
                  Some (Printf.sprintf "%d(pins=%d)" n.net_id (List.length n.pins))
              | _ -> None)
            nets
        in
        Printf.eprintf "[pathfinder] stuck %s usage=%d obst-nbrs=%d users=%s\n%!"
          (Vec3.to_string c) (Grid.usage grid c)
          (List.length (List.filter (Grid.is_obstacle grid) (Vec3.axis_neighbors c)))
          (String.concat "," users))
      final_overused;
  let overused_after = List.length final_overused in
  {
    routes =
      List.filter_map
        (fun n ->
          Hashtbl.find_opt routes n.net_id
          |> Option.map (fun cells -> { r_net = n.net_id; r_cells = cells }))
        nets;
    success = overused_after = 0 && !unrouted = [];
    iterations_used = !iterations_used;
    overused_after;
    unrouted = List.rev !unrouted;
  }

let validate grid result nets =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  let by_id = Hashtbl.create 16 in
  List.iter (fun r -> Hashtbl.replace by_id r.r_net r.r_cells) result.routes;
  (* per-cell usage over all routed nets: the capacity oracle *)
  let usage = Hashtbl.create 256 in
  List.iter
    (fun r ->
      List.iter
        (fun c ->
          Hashtbl.replace usage c
            (1 + Option.value ~default:0 (Hashtbl.find_opt usage c)))
        r.r_cells)
    result.routes;
  List.iter
    (fun n ->
      match Hashtbl.find_opt by_id n.net_id with
      | None ->
          if not (List.mem n.net_id result.unrouted) then
            err "net %d missing from routes" n.net_id
      | Some cells ->
          let pins = dedup_cells n.pins in
          let pin_set = Hashtbl.create 8 in
          List.iter (fun p -> Hashtbl.replace pin_set p ()) pins;
          (* geometric legality against the grid: every cell inside the
             routing box, and no obstacle crossings except at the net's
             own pins (the only cells A* exempts) *)
          let cell_set = Hashtbl.create 64 in
          List.iter
            (fun c ->
              if Hashtbl.mem cell_set c then
                err "net %d lists cell %s twice" n.net_id (Vec3.to_string c)
              else Hashtbl.replace cell_set c ();
              if not (Grid.in_bounds grid c) then
                err "net %d leaves the routing grid at %s" n.net_id
                  (Vec3.to_string c)
              else if Grid.is_obstacle grid c && not (Hashtbl.mem pin_set c)
              then
                err "net %d passes through obstacle %s" n.net_id
                  (Vec3.to_string c))
            cells;
          List.iter
            (fun pin ->
              if not (Hashtbl.mem cell_set pin) then
                err "net %d does not reach pin %s" n.net_id (Vec3.to_string pin))
            pins;
          (* connectivity by BFS over the cell set *)
          (match cells with
          | [] -> ()
          | start :: _ ->
              let visited = Hashtbl.create 64 in
              let queue = Queue.create () in
              Queue.add start queue;
              Hashtbl.replace visited start ();
              while not (Queue.is_empty queue) do
                let p = Queue.pop queue in
                List.iter
                  (fun q ->
                    if Hashtbl.mem cell_set q && not (Hashtbl.mem visited q)
                    then begin
                      Hashtbl.replace visited q ();
                      Queue.add q queue
                    end)
                  (Vec3.axis_neighbors p)
              done;
              if Hashtbl.length visited <> Hashtbl.length cell_set then
                err "net %d cells disconnected" n.net_id))
    nets;
  (* capacity and overuse accounting: non-shared cells carry at most
     [Grid.capacity] strands, and the result must own up to exactly the
     overuse its routes imply *)
  let over =
    (* hash-order: the overuse list is sorted before reporting *)
    Hashtbl.fold
      (fun c u acc ->
        if u > Grid.capacity && Grid.in_bounds grid c
           && not (Grid.is_shared grid c)
        then (c, u) :: acc
        else acc)
      usage []
    |> List.sort compare
  in
  if result.success then
    List.iter
      (fun (c, u) ->
        err "cell %s carries %d nets (capacity %d)" (Vec3.to_string c) u
          Grid.capacity)
      over;
  if List.length over <> result.overused_after then
    err "overuse accounting: result reports %d overused cells, routes imply %d"
      result.overused_after (List.length over);
  List.rev !errors
