module Vec3 = Tqec_util.Vec3
module Box3 = Tqec_util.Box3
module Pqueue = Tqec_util.Pqueue

(* Reusable per-searcher workspace.  Arrays grow geometrically with the
   largest region seen; a generation stamp marks which entries belong to
   the current search, so reuse needs no O(cells) clearing.  Each worker
   domain owns its scratch — nothing here is shared. *)
type scratch = {
  mutable cap : int;
  mutable g_score : int array;
  mutable parent : int array;
  mutable h_cache : int array;
  mutable stamp : int array;
  mutable own : bool array;
  mutable gen : int;
  queue : int Pqueue.t;
  (* Small per-search side tables, hoisted here so repeated searches —
     in particular the corridor-widening escalation ladder, which can
     run several attempts per connect — reuse their bucket arrays
     instead of allocating fresh hashtables per attempt.  [Hashtbl.clear]
     keeps the grown bucket table (where [reset] would shrink it). *)
  exempt : (int, unit) Hashtbl.t;
  slot_of : (int, int) Hashtbl.t;
  member : (int, unit) Hashtbl.t;
  excl_tiles : (int, int) Hashtbl.t;
}

let create_scratch () =
  {
    cap = 0;
    g_score = [||];
    parent = [||];
    h_cache = [||];
    stamp = [||];
    own = [||];
    gen = 0;
    queue = Pqueue.create ();
    exempt = Hashtbl.create 64;
    slot_of = Hashtbl.create 64;
    member = Hashtbl.create 64;
    excl_tiles = Hashtbl.create 64;
  }

(* Grow the dense arrays to at least [cells] slots.  Geometric growth:
   once the scratch has warmed to the largest region seen, further
   searches — including every widening step of the corridor escalation
   ladder — reallocate nothing ([Counters.scratch_grows] stays flat,
   which bench/route_stress.ml pins). *)
let grow scr cells =
  if scr.cap < cells then begin
    Atomic.incr Counters.scratch_grows;
    let cap = max cells (max 64 (2 * scr.cap)) in
    scr.g_score <- Array.make cap max_int;
    scr.parent <- Array.make cap (-1);
    scr.h_cache <- Array.make cap 0;
    scr.stamp <- Array.make cap 0;
    scr.own <- Array.make cap false;
    scr.cap <- cap
  end

(* Region-local dense state: corridors are small, so flat arrays beat
   hashing on both speed and allocation. *)
let search ?scratch ?(max_expansions = 400_000) ?(avoid_used = false)
    ?(exclude = []) grid ~region ~penalty ~sources ~target =
  let region =
    match Box3.inter region (Grid.box grid) with
    | Some r -> r
    | None -> Grid.box grid
  in
  let lo = region.Box3.lo in
  let nx = Box3.dx region and ny = Box3.dy region and nz = Box3.dz region in
  let cells = nx * ny * nz in
  let encode (p : Vec3.t) =
    ((((p.x - lo.Vec3.x) * ny) + (p.y - lo.Vec3.y)) * nz) + (p.z - lo.Vec3.z)
  in
  let decode i =
    let z = i mod nz in
    let rest = i / nz in
    let y = rest mod ny in
    let x = rest / ny in
    Vec3.make (x + lo.Vec3.x) (y + lo.Vec3.y) (z + lo.Vec3.z)
  in
  if not (Box3.contains region target) then None
  else begin
    Atomic.incr Counters.flat_searches;
    let scr = match scratch with Some s -> s | None -> create_scratch () in
    let exempt = scr.exempt in
    Hashtbl.clear exempt;
    List.iter
      (fun s ->
        if Box3.contains region s then Hashtbl.replace exempt (encode s) ())
      sources;
    let target_code = encode target in
    Hashtbl.replace exempt target_code ();
    let passable p code =
      Hashtbl.mem exempt code
      || ((not (Grid.is_obstacle grid p))
         && ((not avoid_used)
            || Grid.is_shared grid p
            || Grid.usage grid p < Grid.capacity))
    in
    grow scr cells;
    scr.gen <- scr.gen + 1;
    let gen = scr.gen in
    let g_score = scr.g_score
    and parent = scr.parent
    and h_cache = scr.h_cache
    and stamp = scr.stamp
    and own = scr.own in
    let open_q = scr.queue in
    Pqueue.clear open_q;
    (* The heuristic is fixed per cell, so compute it once when the cell
       is first touched this search (against precomputed target
       coordinates): the stale-entry check at pop never decodes the cell
       or re-derives the Manhattan distance. *)
    let tx = target.Vec3.x and ty = target.Vec3.y and tz = target.Vec3.z in
    let touch (p : Vec3.t) code =
      if stamp.(code) <> gen then begin
        stamp.(code) <- gen;
        g_score.(code) <- max_int;
        parent.(code) <- -1;
        own.(code) <- false;
        h_cache.(code) <- abs (p.x - tx) + abs (p.y - ty) + abs (p.z - tz)
      end
    in
    (* Cells of the searching net's own current route are priced as if
       already ripped up (usage - 1): marked before the sources so a
       later [touch] cannot clear the flag. *)
    let have_own = exclude <> [] in
    if have_own then
      List.iter
        (fun c ->
          if Box3.contains region c then begin
            let code = encode c in
            touch c code;
            own.(code) <- true
          end)
        exclude;
    List.iter
      (fun s ->
        if Box3.contains region s then begin
          let code = encode s in
          if passable s code then begin
            touch s code;
            g_score.(code) <- 0;
            Pqueue.push open_q h_cache.(code) code
          end
        end)
      sources;
    let found = ref false in
    let expansions = ref 0 in
    while (not !found) && (not (Pqueue.is_empty open_q))
          && !expansions < max_expansions do
      incr expansions;
      let f, code = Pqueue.pop open_q in
      let gp = g_score.(code) in
      (* skip stale queue entries *)
      if f <= gp + h_cache.(code) then begin
        if code = target_code then found := true
        else
          let p = decode code in
          List.iter
            (fun q ->
              if Box3.contains region q then begin
                let qcode = encode q in
                if passable q qcode then begin
                  touch q qcode;
                  let tentative =
                    gp
                    +
                    if have_own && own.(qcode) then
                      Grid.enter_cost_d grid ~penalty ~dusage:(-1) q
                    else Grid.enter_cost grid ~penalty q
                  in
                  if tentative < g_score.(qcode) then begin
                    g_score.(qcode) <- tentative;
                    parent.(qcode) <- code;
                    Pqueue.push open_q (tentative + h_cache.(qcode)) qcode
                  end
                end
              end)
            (Vec3.axis_neighbors p)
      end
    done;
    if not !found then None
    else begin
      let rec backtrack acc code =
        let acc = decode code :: acc in
        if parent.(code) = -1 then acc else backtrack acc parent.(code)
      in
      Some (backtrack [] target_code)
    end
  end

(* ------------------------------------------------------------------ *)
(* Hierarchical corridor search.                                       *)
(*                                                                     *)
(* Above a region-volume threshold (the caller's call), flat A* pays   *)
(* O(region volume) scratch and wavefront costs even when the useful   *)
(* geometry is a thin skeleton.  The hierarchical variant first runs a *)
(* coarse A* over the tile graph — one node per Grid tile, 6-neighbor  *)
(* adjacency, costs from the incrementally maintained per-tile         *)
(* summaries — then restricts the fine cell-level A* to the corridor:  *)
(* the coarse path's tiles plus their axis neighbors.  Scratch and     *)
(* wavefront now scale with the corridor volume.                       *)
(*                                                                     *)
(* The fine pass deliberately re-implements the A* loop of [search]    *)
(* instead of sharing it behind closures: the corridor uses a          *)
(* tile-slot cell encoding, and cell codes feed the priority queue, so *)
(* any encoding change reorders equal-cost pops — [search] must keep   *)
(* its exact historical behavior for the bit-identical routes          *)
(* guarantee, and closure-parameterizing its hot loop would tax every  *)
(* existing caller.                                                    *)
(* ------------------------------------------------------------------ *)

(* The coarse pass prices tile congestion with a FIXED penalty instead
   of the caller's negotiation penalty.  The corridor choice is a guide
   (feasibility and exact costs are re-established by the fine pass), so
   the iteration-dependent penalty bought nothing — and removing it
   makes the coarse search a function of (sources' tiles, target tile,
   region, tile summaries) alone, which is what lets the corridor cache
   reuse one corridor across negotiation iterations and between the
   negotiation and cleanup phases. *)
let coarse_penalty = 6

(* Coarse pass: A* over the tile graph restricted to tiles meeting
   [region], from the sources' tiles to the target's tile.  Returns the
   corridor as a list of tile indices (path tiles plus axis neighbors),
   or None when even the coarse graph offers no path.

   [exclude] prices the net's own current route out of the tile
   congestion (each excluded cell carries exactly the +1 usage the net
   itself claimed, so a per-tile count subtraction is exact) — the
   coarse-level analogue of the fine pass's own-route bias.  Beyond
   route quality, this makes the coarse effective input invariant under
   the net's own rip-up/re-claim, which is what lets the corridor cache
   survive the batch-phase route/commit cycle (see the cache contract
   in pathfinder.ml).

   [source_tiles], when given, must be the deduplicated in-region
   source tiles in first-occurrence order — exactly the list the
   corridor cache computes for its key.  The coarse pass then seeds
   from it directly instead of re-walking the (much longer) source cell
   list; both derivations visit tiles in the same order, so the search
   is bit-identical either way. *)
let coarse_corridor ?(exclude = []) ?source_tiles scr grid ~region ~sources
    ~(target : Vec3.t) =
  let region =
    match Box3.inter region (Grid.box grid) with
    | Some r -> r
    | None -> Grid.box grid
  in
  if not (Box3.contains region target) then None
  else begin
  Atomic.incr Counters.coarse_searches;
  let penalty = coarse_penalty in
  let _, tdy, tdz = Grid.tile_dims grid in
  let n_tiles = Grid.n_tiles grid in
  grow scr n_tiles;
  scr.gen <- scr.gen + 1;
  let gen = scr.gen in
  let g_score = scr.g_score
  and parent = scr.parent
  and h_cache = scr.h_cache
  and stamp = scr.stamp in
  let open_q = scr.queue in
  Pqueue.clear open_q;
  let edge = Grid.tile_edge in
  (* tile-coordinate bounds of the region: a tile is in play iff its
     coordinates fall inside (its cell box then meets [region]) *)
  let lo = (Grid.box grid).Box3.lo in
  let tlo = region.Box3.lo and thi = region.Box3.hi in
  let tlx = (tlo.Vec3.x - lo.Vec3.x) / edge
  and tly = (tlo.Vec3.y - lo.Vec3.y) / edge
  and tlz = (tlo.Vec3.z - lo.Vec3.z) / edge in
  let thx = (thi.Vec3.x - lo.Vec3.x) / edge
  and thy = (thi.Vec3.y - lo.Vec3.y) / edge
  and thz = (thi.Vec3.z - lo.Vec3.z) / edge in
  let encode x y z = ((x * tdy) + y) * tdz + z in
  let die = Grid.die grid in
  let ttx = Grid.tile_index grid target / (tdy * tdz) in
  let tty = Grid.tile_index grid target / tdz mod tdy in
  let ttz = Grid.tile_index grid target mod tdz in
  let target_code = encode ttx tty ttz in
  let exempt = scr.exempt in
  Hashtbl.clear exempt;
  Hashtbl.replace exempt target_code ();
  (match source_tiles with
  | Some tiles -> List.iter (fun ti -> Hashtbl.replace exempt ti ()) tiles
  | None ->
      List.iter
        (fun s ->
          if Box3.contains region s then
            Hashtbl.replace exempt (Grid.tile_index grid s) ())
        sources);
  let excl = scr.excl_tiles in
  Hashtbl.clear excl;
  List.iter
    (fun c ->
      if Box3.contains region c then begin
        let ti = Grid.tile_index grid c in
        Hashtbl.replace excl ti
          (1 + Option.value ~default:0 (Hashtbl.find_opt excl ti))
      end)
    exclude;
  let touch x y z code =
    if stamp.(code) <> gen then begin
      stamp.(code) <- gen;
      g_score.(code) <- max_int;
      parent.(code) <- -1;
      h_cache.(code) <- (abs (x - ttx) + abs (y - tty) + abs (z - ttz)) * edge
    end
  in
  (* Entering a tile costs roughly a tile traversal: the edge length at
     base cost, scaled up by the tile's average congestion (summed usage
     weighted by the negotiation penalty, plus history) and by the
     outside-die surcharge when the tile lies wholly outside the die.
     This is a guide, not a guarantee — feasibility is re-established by
     the fine pass. *)
  let enter_tile x y z code =
    (* clamped defensively: with the route_all call discipline the
       excluded cells' usage is really present, so the subtraction
       cannot go negative — but A* must never see a negative edge *)
    let congestion =
      max 0
        (Grid.tile_congestion grid code
        - Option.value ~default:0 (Hashtbl.find_opt excl code))
    in
    let ox = lo.Vec3.x + (x * edge) and oy = lo.Vec3.y + (y * edge)
    and oz = lo.Vec3.z + (z * edge) in
    let outside =
      ox > die.Box3.hi.Vec3.x
      || oy > die.Box3.hi.Vec3.y
      || oz > die.Box3.hi.Vec3.z
      || ox + edge - 1 < die.Box3.lo.Vec3.x
      || oy + edge - 1 < die.Box3.lo.Vec3.y
      || oz + edge - 1 < die.Box3.lo.Vec3.z
    in
    let base = if outside then edge * (1 + Grid.outside_die_cost) else edge in
    base + (congestion * penalty * edge / Grid.tile_cells)
  in
  let seed code =
    let x = code / (tdy * tdz) and y = code / tdz mod tdy and z = code mod tdz in
    touch x y z code;
    if g_score.(code) <> 0 then begin
      g_score.(code) <- 0;
      Pqueue.push open_q h_cache.(code) code
    end
  in
  (match source_tiles with
  | Some tiles -> List.iter seed tiles
  | None ->
      List.iter
        (fun (s : Vec3.t) ->
          if Box3.contains region s then seed (Grid.tile_index grid s))
        sources);
  let found = ref false in
  let expansions = ref 0 in
  while (not !found) && (not (Pqueue.is_empty open_q)) && !expansions < n_tiles * 8
  do
    incr expansions;
    let f, code = Pqueue.pop open_q in
    let gp = g_score.(code) in
    if f <= gp + h_cache.(code) then begin
      if code = target_code then found := true
      else begin
        let x = code / (tdy * tdz) and y = code / tdz mod tdy and z = code mod tdz in
        let expand nx ny nz =
          if
            nx >= tlx && nx <= thx && ny >= tly && ny <= thy && nz >= tlz
            && nz <= thz
          then begin
            let ncode = encode nx ny nz in
            if Hashtbl.mem exempt ncode || not (Grid.tile_blocked grid ncode)
            then begin
              touch nx ny nz ncode;
              let tentative = gp + enter_tile nx ny nz ncode in
              if tentative < g_score.(ncode) then begin
                g_score.(ncode) <- tentative;
                parent.(ncode) <- code;
                Pqueue.push open_q (tentative + h_cache.(ncode)) ncode
              end
            end
          end
        in
        expand (x - 1) y z;
        expand (x + 1) y z;
        expand x (y - 1) z;
        expand x (y + 1) z;
        expand x y (z - 1);
        expand x y (z + 1)
      end
    end
  done;
  if not !found then None
  else begin
    (* corridor = path tiles plus their in-range axis neighbors, in
       deterministic discovery order (slot numbering feeds cell codes,
       and codes break priority-queue ties) *)
    let member = scr.member in
    Hashtbl.clear member;
    let corridor = ref [] in
    let add code =
      if not (Hashtbl.mem member code) then begin
        Hashtbl.replace member code ();
        corridor := code :: !corridor
      end
    in
    let rec walk code =
      add code;
      if parent.(code) <> -1 then walk parent.(code)
    in
    walk target_code;
    let on_path = List.rev !corridor in
    List.iter
      (fun code ->
        let x = code / (tdy * tdz) and y = code / tdz mod tdy and z = code mod tdz in
        let ring nx ny nz =
          if
            nx >= tlx && nx <= thx && ny >= tly && ny <= thy && nz >= tlz
            && nz <= thz
          then add (encode nx ny nz)
        in
        ring (x - 1) y z;
        ring (x + 1) y z;
        ring x (y - 1) z;
        ring x (y + 1) z;
        ring x y (z - 1);
        ring x y (z + 1))
      on_path;
    Some (List.rev !corridor)
  end
  end

(* Fine pass: cell-level A* restricted to [corridor], a tile-index list
   from [coarse_corridor] — freshly computed or replayed from the
   corridor cache; the result depends only on the corridor's content,
   never on where it came from.  Cells are encoded as slot * tile_cells
   + in-tile offset, so scratch scales with the corridor, never with
   the region's bounding volume. *)
let fine_in_corridor ?(max_expansions = 400_000) ?(avoid_used = false)
    ?(exclude = []) scr grid ~corridor ~region ~penalty ~sources ~target =
  let region =
    match Box3.inter region (Grid.box grid) with
    | Some r -> r
    | None -> Grid.box grid
  in
  if not (Box3.contains region target) then None
  else begin
    Atomic.incr Counters.fine_searches;
    let tcells = Grid.tile_cells in
    let slots = Array.of_list corridor in
    let n_slots = Array.length slots in
    let slot_of = scr.slot_of in
    Hashtbl.clear slot_of;
    Array.iteri (fun i ti -> Hashtbl.replace slot_of ti i) slots;
        let cells = n_slots * tcells in
        grow scr cells;
        scr.gen <- scr.gen + 1;
        let gen = scr.gen in
        let g_score = scr.g_score
        and parent = scr.parent
        and h_cache = scr.h_cache
        and stamp = scr.stamp
        and own = scr.own in
        let open_q = scr.queue in
        Pqueue.clear open_q;
        (* -1: outside the corridor *)
        let encode (p : Vec3.t) =
          let ti, ci = Grid.tile_cell grid p in
          match Hashtbl.find_opt slot_of ti with
          | None -> -1
          | Some s -> (s * tcells) + ci
        in
        let edge = Grid.tile_edge in
        let decode code =
          let ci = code mod tcells in
          let origin = Grid.tile_origin grid slots.(code / tcells) in
          let lx = ci / (edge * edge) in
          let ly = ci / edge mod edge in
          let lz = ci mod edge in
          Vec3.make (origin.Vec3.x + lx) (origin.Vec3.y + ly)
            (origin.Vec3.z + lz)
        in
        let exempt = scr.exempt in
        Hashtbl.clear exempt;
        List.iter
          (fun s ->
            if Box3.contains region s then begin
              let c = encode s in
              if c >= 0 then Hashtbl.replace exempt c ()
            end)
          sources;
        let target_code = encode target in
        if target_code < 0 then None
        else begin
          Hashtbl.replace exempt target_code ();
          let passable p code =
            Hashtbl.mem exempt code
            || ((not (Grid.is_obstacle grid p))
               && ((not avoid_used)
                  || Grid.is_shared grid p
                  || Grid.usage grid p < Grid.capacity))
          in
          let tx = target.Vec3.x and ty = target.Vec3.y and tz = target.Vec3.z in
          let touch (p : Vec3.t) code =
            if stamp.(code) <> gen then begin
              stamp.(code) <- gen;
              g_score.(code) <- max_int;
              parent.(code) <- -1;
              own.(code) <- false;
              h_cache.(code) <- abs (p.x - tx) + abs (p.y - ty) + abs (p.z - tz)
            end
          in
          let have_own = exclude <> [] in
          if have_own then
            List.iter
              (fun c ->
                if Box3.contains region c then begin
                  let code = encode c in
                  if code >= 0 then begin
                    touch c code;
                    own.(code) <- true
                  end
                end)
              exclude;
          List.iter
            (fun s ->
              if Box3.contains region s then begin
                let code = encode s in
                if code >= 0 && passable s code then begin
                  touch s code;
                  g_score.(code) <- 0;
                  Pqueue.push open_q h_cache.(code) code
                end
              end)
            sources;
          let found = ref false in
          let expansions = ref 0 in
          while (not !found) && (not (Pqueue.is_empty open_q))
                && !expansions < max_expansions do
            incr expansions;
            let f, code = Pqueue.pop open_q in
            let gp = g_score.(code) in
            if f <= gp + h_cache.(code) then begin
              if code = target_code then found := true
              else
                let p = decode code in
                List.iter
                  (fun q ->
                    if Box3.contains region q then begin
                      let qcode = encode q in
                      if qcode >= 0 && passable q qcode then begin
                        touch q qcode;
                        let tentative =
                          gp
                          +
                          if have_own && own.(qcode) then
                            Grid.enter_cost_d grid ~penalty ~dusage:(-1) q
                          else Grid.enter_cost grid ~penalty q
                        in
                        if tentative < g_score.(qcode) then begin
                          g_score.(qcode) <- tentative;
                          parent.(qcode) <- code;
                          Pqueue.push open_q (tentative + h_cache.(qcode)) qcode
                        end
                      end
                    end)
                  (Vec3.axis_neighbors p)
            end
          done;
          if not !found then None
          else begin
            let rec backtrack acc code =
              let acc = decode code :: acc in
              if parent.(code) = -1 then acc else backtrack acc parent.(code)
            in
            Some (backtrack [] target_code)
          end
        end
  end

let search_corridor ?scratch ?(max_expansions = 400_000) ?(avoid_used = false)
    ?(exclude = []) grid ~region ~penalty ~sources ~target =
  let region =
    match Box3.inter region (Grid.box grid) with
    | Some r -> r
    | None -> Grid.box grid
  in
  if not (Box3.contains region target) then None
  else
    let scr = match scratch with Some s -> s | None -> create_scratch () in
    match coarse_corridor ~exclude scr grid ~region ~sources ~target with
    | None -> None
    | Some corridor ->
        fine_in_corridor ~max_expansions ~avoid_used ~exclude scr grid
          ~corridor ~region ~penalty ~sources ~target

let path_cost grid ~penalty = function
  | [] -> 0
  | _ :: rest ->
      List.fold_left (fun acc p -> acc + Grid.enter_cost grid ~penalty p) 0 rest
