module Vec3 = Tqec_util.Vec3
module Box3 = Tqec_util.Box3
module Pqueue = Tqec_util.Pqueue

(* Reusable per-searcher workspace.  Arrays grow geometrically with the
   largest region seen; a generation stamp marks which entries belong to
   the current search, so reuse needs no O(cells) clearing.  Each worker
   domain owns its scratch — nothing here is shared. *)
type scratch = {
  mutable cap : int;
  mutable g_score : int array;
  mutable parent : int array;
  mutable h_cache : int array;
  mutable stamp : int array;
  mutable own : bool array;
  mutable gen : int;
  queue : int Pqueue.t;
}

let create_scratch () =
  {
    cap = 0;
    g_score = [||];
    parent = [||];
    h_cache = [||];
    stamp = [||];
    own = [||];
    gen = 0;
    queue = Pqueue.create ();
  }

(* Region-local dense state: corridors are small, so flat arrays beat
   hashing on both speed and allocation. *)
let search ?scratch ?(max_expansions = 400_000) ?(avoid_used = false)
    ?(exclude = []) grid ~region ~penalty ~sources ~target =
  let region =
    match Box3.inter region (Grid.box grid) with
    | Some r -> r
    | None -> Grid.box grid
  in
  let lo = region.Box3.lo in
  let nx = Box3.dx region and ny = Box3.dy region and nz = Box3.dz region in
  let cells = nx * ny * nz in
  let encode (p : Vec3.t) =
    ((((p.x - lo.Vec3.x) * ny) + (p.y - lo.Vec3.y)) * nz) + (p.z - lo.Vec3.z)
  in
  let decode i =
    let z = i mod nz in
    let rest = i / nz in
    let y = rest mod ny in
    let x = rest / ny in
    Vec3.make (x + lo.Vec3.x) (y + lo.Vec3.y) (z + lo.Vec3.z)
  in
  let exempt = Hashtbl.create 8 in
  List.iter
    (fun s -> if Box3.contains region s then Hashtbl.replace exempt (encode s) ())
    sources;
  if not (Box3.contains region target) then None
  else begin
    let target_code = encode target in
    Hashtbl.replace exempt target_code ();
    let passable p code =
      Hashtbl.mem exempt code
      || ((not (Grid.is_obstacle grid p))
         && ((not avoid_used)
            || Grid.is_shared grid p
            || Grid.usage grid p < Grid.capacity))
    in
    let scr = match scratch with Some s -> s | None -> create_scratch () in
    if scr.cap < cells then begin
      let cap = max cells (max 64 (2 * scr.cap)) in
      scr.g_score <- Array.make cap max_int;
      scr.parent <- Array.make cap (-1);
      scr.h_cache <- Array.make cap 0;
      scr.stamp <- Array.make cap 0;
      scr.own <- Array.make cap false;
      scr.cap <- cap
    end;
    scr.gen <- scr.gen + 1;
    let gen = scr.gen in
    let g_score = scr.g_score
    and parent = scr.parent
    and h_cache = scr.h_cache
    and stamp = scr.stamp
    and own = scr.own in
    let open_q = scr.queue in
    Pqueue.clear open_q;
    (* The heuristic is fixed per cell, so compute it once when the cell
       is first touched this search (against precomputed target
       coordinates): the stale-entry check at pop never decodes the cell
       or re-derives the Manhattan distance. *)
    let tx = target.Vec3.x and ty = target.Vec3.y and tz = target.Vec3.z in
    let touch (p : Vec3.t) code =
      if stamp.(code) <> gen then begin
        stamp.(code) <- gen;
        g_score.(code) <- max_int;
        parent.(code) <- -1;
        own.(code) <- false;
        h_cache.(code) <- abs (p.x - tx) + abs (p.y - ty) + abs (p.z - tz)
      end
    in
    (* Cells of the searching net's own current route are priced as if
       already ripped up (usage - 1): marked before the sources so a
       later [touch] cannot clear the flag. *)
    let have_own = exclude <> [] in
    if have_own then
      List.iter
        (fun c ->
          if Box3.contains region c then begin
            let code = encode c in
            touch c code;
            own.(code) <- true
          end)
        exclude;
    List.iter
      (fun s ->
        if Box3.contains region s then begin
          let code = encode s in
          if passable s code then begin
            touch s code;
            g_score.(code) <- 0;
            Pqueue.push open_q h_cache.(code) code
          end
        end)
      sources;
    let found = ref false in
    let expansions = ref 0 in
    while (not !found) && (not (Pqueue.is_empty open_q))
          && !expansions < max_expansions do
      incr expansions;
      let f, code = Pqueue.pop open_q in
      let gp = g_score.(code) in
      (* skip stale queue entries *)
      if f <= gp + h_cache.(code) then begin
        if code = target_code then found := true
        else
          let p = decode code in
          List.iter
            (fun q ->
              if Box3.contains region q then begin
                let qcode = encode q in
                if passable q qcode then begin
                  touch q qcode;
                  let tentative =
                    gp
                    +
                    if have_own && own.(qcode) then
                      Grid.enter_cost_d grid ~penalty ~dusage:(-1) q
                    else Grid.enter_cost grid ~penalty q
                  in
                  if tentative < g_score.(qcode) then begin
                    g_score.(qcode) <- tentative;
                    parent.(qcode) <- code;
                    Pqueue.push open_q (tentative + h_cache.(qcode)) qcode
                  end
                end
              end)
            (Vec3.axis_neighbors p)
      end
    done;
    if not !found then None
    else begin
      let rec backtrack acc code =
        let acc = decode code :: acc in
        if parent.(code) = -1 then acc else backtrack acc parent.(code)
      in
      Some (backtrack [] target_code)
    end
  end

let path_cost grid ~penalty = function
  | [] -> 0
  | _ :: rest ->
      List.fold_left (fun acc p -> acc + Grid.enter_cost grid ~penalty p) 0 rest
