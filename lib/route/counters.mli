(** Process-wide routing diagnostics in the style of {!Tqec_util.Pool.stats}:
    atomic counters bumped on the router's hot paths, read as a snapshot.

    The counters are observability only: routing decisions never read
    them, so they cannot perturb results.  Over a deterministic run the
    totals are deterministic too (every increment corresponds to a
    deterministic event — which searches ran, which cache lookups hit —
    independent of worker interleaving). *)

(** {2 Increment points (owned by the router internals)} *)

val cache_hits : int Atomic.t
(** Corridor-cache lookups that skipped the coarse tile-graph search. *)

val cache_misses : int Atomic.t
(** Lookups that ran the coarse search: no entry, wrong grid object, or
    generation-stale (the latter also counted in {!cache_stale}). *)

val cache_stale : int Atomic.t
(** Subset of {!cache_misses}: an entry existed for the key but a tile
    in the region had been summary-mutated since it was stored. *)

val coarse_searches : int Atomic.t
(** Coarse tile-graph A* runs ({!Astar.coarse_corridor}). *)

val fine_searches : int Atomic.t
(** Fine in-corridor A* runs ({!Astar.fine_in_corridor}). *)

val flat_searches : int Atomic.t
(** Exhaustive cell-level A* runs ({!Astar.search}). *)

val flat_fallbacks : int Atomic.t
(** Hierarchical attempts that found no path and fell back to the
    exhaustive search over the same window. *)

val scratch_grows : int Atomic.t
(** A* scratch array reallocations ({!Astar.scratch} growth events).
    At steady state — scratch warmed to the largest region seen — new
    searches and corridor-widening escalations must not grow it. *)

(** {2 Snapshot} *)

type stats = {
  cache_hits : int;
  cache_misses : int;
  cache_stale : int;
  coarse_searches : int;
  fine_searches : int;
  flat_searches : int;
  flat_fallbacks : int;
  scratch_grows : int;
}

val stats : unit -> stats
(** Consistent-enough snapshot: each field is read atomically (the set
    is not read under a lock, which diagnostics do not need). *)

val reset : unit -> unit
(** Zero every counter (benchmark harnesses isolating a phase). *)
