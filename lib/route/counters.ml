(* Process-wide routing diagnostics, in the style of [Pool.stats]:
   lock-free atomic counters bumped on the router's hot paths, snapshot
   on demand.  Counters are observability only — they never feed back
   into routing decisions, so their (scheduling-dependent) intermediate
   values cannot perturb results; totals over a deterministic run are
   themselves deterministic. *)

let cache_hits = Atomic.make 0
let cache_misses = Atomic.make 0
let cache_stale = Atomic.make 0
let coarse_searches = Atomic.make 0
let fine_searches = Atomic.make 0
let flat_searches = Atomic.make 0
let flat_fallbacks = Atomic.make 0
let scratch_grows = Atomic.make 0

type stats = {
  cache_hits : int;
  cache_misses : int;
  cache_stale : int;
  coarse_searches : int;
  fine_searches : int;
  flat_searches : int;
  flat_fallbacks : int;
  scratch_grows : int;
}

let stats () =
  {
    cache_hits = Atomic.get cache_hits;
    cache_misses = Atomic.get cache_misses;
    cache_stale = Atomic.get cache_stale;
    coarse_searches = Atomic.get coarse_searches;
    fine_searches = Atomic.get fine_searches;
    flat_searches = Atomic.get flat_searches;
    flat_fallbacks = Atomic.get flat_fallbacks;
    scratch_grows = Atomic.get scratch_grows;
  }

let reset () =
  Atomic.set cache_hits 0;
  Atomic.set cache_misses 0;
  Atomic.set cache_stale 0;
  Atomic.set coarse_searches 0;
  Atomic.set fine_searches 0;
  Atomic.set flat_searches 0;
  Atomic.set flat_fallbacks 0;
  Atomic.set scratch_grows 0
