(** Negotiation-based rip-up and re-route (PathFinder, McMurchie &
    Ebeling FPGA'95), the paper's dual-defect net routing stage.

    Every iteration re-routes each multi-pin net with A* inside a
    restricted region (the net's pin bounding box plus a margin that
    grows on failure), building the net as a Steiner tree: pins connect
    one at a time to the growing tree.  After an iteration, cells used
    beyond capacity receive history cost and the congestion penalty
    grows; the loop ends when no cell is overused or the iteration
    budget is exhausted.

    Iterations follow the snapshot/commit recipe of parallel PathFinder:
    the nets under negotiation are ripped up, routed concurrently over
    {!Tqec_util.Pool} against a frozen snapshot of the congestion state,
    and committed serially in deterministic net order.  Conflicts hidden
    by the frozen snapshot surface as overuse at commit time and are
    renegotiated next iteration, so the trajectory — routes, iteration
    count and residual overuse — is bit-identical for every worker
    count. *)

type net = { net_id : int; pins : Tqec_util.Vec3.t list }

type config = {
  max_iterations : int;
  initial_penalty : int;
  penalty_growth : int;  (** added to the penalty each iteration *)
  history_increment : int;
  region_margin : int;
  jobs : int option;
      (** worker domains for the per-iteration net batch; [None] defers
          to [TQEC_JOBS] / the machine's domain count, [Some 1] routes the
          batch serially (same results either way) *)
  corridor_cells : int;
      (** search-window volume (in cells) above which a connection takes
          the hierarchical path: a coarse corridor over the grid's tile
          graph bounds the fine A*, falling back to the exhaustive flat
          search when the corridor proves infeasible
          ({!Astar.search_corridor}).  Windows at or below the threshold
          always use the flat search, so results on them are
          bit-identical to the historical dense-grid router.  The
          default (1M cells) exceeds every paper-suite instance;
          [max_int] disables the hierarchical path entirely. *)
  corridor_cache : bool;
      (** reuse coarse corridors across negotiation iterations (default
          [true]).  A per-net cache keyed on (ordered in-region source
          tiles, target tile, region) replays a stored corridor when
          the grid's per-tile summary generations prove no coarse-search
          input changed since it was computed
          ({!Grid.region_unchanged_since}); the coarse tile-graph A* is
          then skipped and the fine in-corridor search runs directly.
          Every hit is provably identical to recomputing, so routes are
          bit-identical with the cache on or off and for any worker
          count — [false] exists for cross-checks and benchmark
          baselines ({!Counters} reports hit/miss/stale rates). *)
  debug : bool;
      (** per-iteration negotiation trace on stderr.  A config field —
          not an ambient environment read — so concurrent callers (a
          serving daemon handling several requests) stay isolated; the
          CLI layer defaults it from [TQEC_DEBUG]. *)
}

val default_config : config

type routed = {
  r_net : int;
  r_cells : Tqec_util.Vec3.t list;  (** all cells of the net's tree *)
}

type result = {
  routes : routed list;
  success : bool;  (** true when nothing is overused and all nets routed *)
  iterations_used : int;
  overused_after : int;
  unrouted : int list;  (** nets with unreachable pins, if any *)
}

(** [route_all grid config nets] routes every net; [grid] retains the
    final usage state. Nets with fewer than 2 distinct pins route
    trivially to their pin set. *)
val route_all : Grid.t -> config -> net list -> result

(** [validate grid result nets] checks routing legality against the grid:
    every routed net's cell set is connected, touches all its pins, stays
    inside the routing box, crosses obstacles only at the net's own pins,
    and no non-shared cell carries more than {!Grid.capacity} nets beyond
    what [result.overused_after] admits.  Returns error strings; [] means
    the result is sound.  [grid] must carry the same obstacle and shared
    masks the routes were produced against (its usage state is not
    consulted). *)
val validate : Grid.t -> result -> net list -> string list
