type pair = { before : int; after : int }

let of_icm (icm : Icm.t) =
  let intra =
    Array.to_list icm.t_gadgets
    |> List.concat_map (fun (g : Icm.t_gadget) ->
           List.map
             (fun s -> { before = g.t_first_meas; after = s })
             g.t_second_meas)
  in
  (* Group gadgets by wire, order by sequence, link consecutive pairs. *)
  let by_wire = Hashtbl.create 16 in
  Array.iter
    (fun (g : Icm.t_gadget) ->
      let existing = try Hashtbl.find by_wire g.t_wire with Not_found -> [] in
      Hashtbl.replace by_wire g.t_wire (g :: existing))
    icm.t_gadgets;
  let inter =
    (* hash-order: the pair list is sort_uniq'd below, so the wire
       iteration order cannot reach the result *)
    Hashtbl.fold
      (fun _wire gadgets acc ->
        let sorted =
          List.sort
            (fun (a : Icm.t_gadget) b -> Int.compare a.t_seq b.t_seq)
            gadgets
        in
        let rec link acc = function
          | a :: (b : Icm.t_gadget) :: rest ->
              let pairs =
                List.concat_map
                  (fun sa ->
                    List.map (fun sb -> { before = sa; after = sb })
                      b.Icm.t_second_meas)
                  a.Icm.t_second_meas
              in
              link (pairs @ acc) (b :: rest)
          | _ -> acc
        in
        link acc sorted)
      by_wire []
  in
  let all = intra @ inter in
  List.sort_uniq
    (fun a b ->
      let c = Int.compare a.before b.before in
      if c <> 0 then c else Int.compare a.after b.after)
    all

let violations pairs ~time_of =
  List.filter (fun p -> time_of p.before >= time_of p.after) pairs

let satisfied pairs ~time_of = violations pairs ~time_of = []

exception Cycle of { emitted : int; total : int }

let () =
  Printexc.register_printer (function
    | Cycle { emitted; total } ->
        Some
          (Printf.sprintf
             "Constraints.Cycle: constraint graph is cyclic (%d of %d \
              measurements ordered)"
             emitted total)
    | _ -> None)

let topological_order (icm : Icm.t) =
  let n = Array.length icm.meas in
  let pairs = of_icm icm in
  let succs = Array.make n [] in
  let indegree = Array.make n 0 in
  List.iter
    (fun { before; after } ->
      succs.(before) <- after :: succs.(before);
      indegree.(after) <- indegree.(after) + 1)
    pairs;
  let ready = Queue.create () in
  for i = 0 to n - 1 do
    if indegree.(i) = 0 then Queue.add i ready
  done;
  let order = ref [] in
  let emitted = ref 0 in
  while not (Queue.is_empty ready) do
    let i = Queue.pop ready in
    order := i :: !order;
    incr emitted;
    List.iter
      (fun j ->
        indegree.(j) <- indegree.(j) - 1;
        if indegree.(j) = 0 then Queue.add j ready)
      succs.(i)
  done;
  if !emitted <> n then raise (Cycle { emitted = !emitted; total = n });
  List.rev !order
