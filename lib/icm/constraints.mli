(** Time-ordered measurement constraints (paper Section 2.2).

    Constraints are pairs of measurement indices (into [Icm.meas]) that
    must appear in strictly increasing time (x) order in any legal
    geometric description:
    - intra-T: the first-order measurement of a T gadget precedes each of
      its four second-order measurements;
    - inter-T: on the same logical wire, the second-order measurements of
      an earlier T gadget all precede those of a later one. *)

type pair = { before : int; after : int }

(** [of_icm icm] enumerates all constraint pairs (inter-T pairs only
    between consecutive gadgets on a wire; transitivity supplies the
    rest). The result is deterministic and duplicate-free. *)
val of_icm : Icm.t -> pair list

(** [violations pairs ~time_of] returns the pairs with
    [time_of before >= time_of after]. *)
val violations : pair list -> time_of:(int -> int) -> pair list

(** [satisfied pairs ~time_of] is [violations pairs ~time_of = []]. *)
val satisfied : pair list -> time_of:(int -> int) -> bool

(** Raised by {!topological_order} when the constraint DAG has a cycle:
    [emitted] measurements could be ordered out of [total].  Never
    raised for generated ICMs; a hand-built or corrupted ICM reaching
    the pipeline is mapped to [Pipeline.Stage_failure] at the stage
    boundary. *)
exception Cycle of { emitted : int; total : int }

(** [topological_order icm] returns the measurement indices of [icm] in
    some order satisfying all constraints (Kahn's algorithm; unconstrained
    measurements keep index order).
    @raise Cycle if the constraints are cyclic (never for generated
    ICMs). *)
val topological_order : Icm.t -> int list
