module Icm = Tqec_icm.Icm
module Pd = Tqec_pdgraph.Pd_graph
module Ishape = Tqec_pdgraph.Ishape
module Flipping = Tqec_pdgraph.Flipping
module Dual_bridge = Tqec_pdgraph.Dual_bridge
module Fvalue = Tqec_pdgraph.Fvalue
module Super_module = Tqec_place.Super_module
module Placer = Tqec_place.Placer
module Pathfinder = Tqec_route.Pathfinder
module Geometry = Tqec_geom.Geometry
module V = Violation

type artifacts = {
  a_icm : Icm.t;
  a_graph : Pd.t;
  a_merges : Ishape.merge list;
  a_flipping : Flipping.t;
  a_dual : Dual_bridge.t;
  a_fvalue : Fvalue.t;
  a_placement : Placer.t;
  a_routing : Pathfinder.result;
  a_volume : int;
  a_geometry : Geometry.t option;
}

let run ?stages (a : artifacts) =
  let checked =
    match stages with
    | None | Some [] -> V.all_stages
    | Some ss -> List.filter (fun st -> List.mem st ss) V.all_stages
  in
  let want st = List.mem st checked in
  let vs = ref [] in
  let collect l = vs := !vs @ l in
  if want V.Icm then collect (Icm_check.check a.a_icm);
  if want V.Pd_graph then collect (Pd_check.check a.a_graph);
  if want V.Ishape then
    collect (Stage_check.ishape ~icm:a.a_icm a.a_graph a.a_merges);
  if want V.Flipping then begin
    (* re-derive the exclusion set (time-SM members) from the graph *)
    let in_time_sm = Hashtbl.create 64 in
    List.iter
      (fun (_, ms) -> List.iter (fun m -> Hashtbl.replace in_time_sm m ()) ms)
      (Super_module.time_sm_modules a.a_graph);
    let excluded m = Hashtbl.mem in_time_sm m in
    collect (Stage_check.flipping ~excluded a.a_graph a.a_flipping);
    collect (Stage_check.fvalues a.a_flipping a.a_fvalue)
  end;
  if want V.Dual_bridge then
    collect (Stage_check.dual ~icm:a.a_icm a.a_graph a.a_dual);
  if want V.Placement then
    collect
      (Place_check.check ~icm:a.a_icm a.a_graph a.a_flipping a.a_dual
         a.a_placement);
  if want V.Routing then
    collect
      (Route_check.check a.a_graph a.a_flipping a.a_dual a.a_fvalue
         a.a_placement a.a_routing ~reported_volume:a.a_volume);
  if want V.Geometry then (
    match a.a_geometry with
    | Some g ->
        collect
          (Route_check.geometry_check a.a_graph a.a_placement a.a_routing g)
    | None -> ());
  let checked =
    (* a geometry-less artifact set reports only what actually ran *)
    match a.a_geometry with
    | None -> List.filter (fun st -> st <> V.Geometry) checked
    | Some _ -> checked
  in
  { V.checked; violations = !vs }
