module Pd = Tqec_pdgraph.Pd_graph
module Flipping = Tqec_pdgraph.Flipping
module Dual_bridge = Tqec_pdgraph.Dual_bridge
module Icm = Tqec_icm.Icm
module Super_module = Tqec_place.Super_module
module Placer = Tqec_place.Placer
module Bstar_tree = Tqec_place.Bstar_tree
module Hpwl_cache = Tqec_place.Hpwl_cache
module Vec3 = Tqec_util.Vec3
module V = Violation

(* Node-granularity nets, re-derived from the dual-bridge classes and the
   pseudo-net list rather than taken from the placer: the union of module
   parts traversed by each merged structure's member nets, mapped to
   their claiming nodes. *)
let derive_nets (g : Pd.t) (sm : Super_module.t) (d : Dual_bridge.t) =
  let nets = ref [] in
  List.iter
    (fun (_rep, members) ->
      let modules =
        List.sort_uniq Int.compare
          (List.concat_map (fun net -> Pd.modules_of_net g net) members)
      in
      let nodes =
        List.filter_map
          (Hashtbl.find_opt sm.Super_module.node_of_module)
          modules
        |> List.sort_uniq Int.compare
      in
      match nodes with [] | [ _ ] -> () | ns -> nets := ns :: !nets)
    d.Dual_bridge.merged;
  List.iter
    (fun (box_node, m) ->
      match Hashtbl.find_opt sm.Super_module.node_of_module m with
      | Some n when n <> box_node -> nets := [ box_node; n ] :: !nets
      | _ -> ())
    sm.Super_module.pseudo_nets;
  Array.of_list (List.map Array.of_list !nets)

let check ~(icm : Icm.t) (g : Pd.t) (f : Flipping.t) (d : Dual_bridge.t)
    (p : Placer.t) =
  let vs = ref [] in
  let add v = vs := v :: !vs in
  let sm = p.Placer.sm in
  let nodes = sm.Super_module.nodes in
  let n = Array.length nodes in
  (* (d) overlap-free and inside the bounding box, with the reference
     packer's overlap oracle on the rotated footprints *)
  let dims =
    Array.init n (fun i ->
        let nd = nodes.(i) in
        if p.Placer.rotated.(i) then (nd.Super_module.nd_h, nd.Super_module.nd_w)
        else (nd.Super_module.nd_w, nd.Super_module.nd_h))
  in
  if Bstar_tree.overlaps p.Placer.node_pos dims then
    add (V.make V.Placement ~code:"overlap" "two node footprints overlap");
  let max_x = ref 0 and max_y = ref 0 in
  Array.iteri
    (fun i (x, y) ->
      let w, h = dims.(i) in
      max_x := max !max_x (x + w);
      max_y := max !max_y (y + h);
      if x < 0 || y < 0 || x + w > p.Placer.width || y + h > p.Placer.height
      then
        add
          (V.makef V.Placement ~code:"bbox"
             "node %d at (%d, %d) size %dx%d leaves the %dx%d die" i x y w h
             p.Placer.width p.Placer.height))
    p.Placer.node_pos;
  if n > 0 && (!max_x <> p.Placer.width || !max_y <> p.Placer.height) then
    add
      (V.makef V.Placement ~code:"bbox"
         "recorded die %dx%d but packed extent is %dx%d" p.Placer.width
         p.Placer.height !max_x !max_y);
  (* recorded depth and volume recomputed from scratch *)
  let depth =
    max 2 (Array.fold_left (fun acc nd -> max acc nd.Super_module.nd_d) 2 nodes)
  in
  if depth <> p.Placer.depth then
    add
      (V.makef V.Placement ~code:"cost"
         "recorded depth %d but the deepest node implies %d" p.Placer.depth
         depth);
  let volume = !max_x * !max_y * depth in
  if n > 0 && volume <> p.Placer.volume then
    add
      (V.makef V.Placement ~code:"cost"
         "recorded volume %d but W*H*Z recomputes to %d" p.Placer.volume volume);
  (* recorded wirelength against an independently re-derived net set *)
  let nets = derive_nets g sm d in
  let wl = Hpwl_cache.compute nets p.Placer.node_pos in
  if wl <> p.Placer.wirelength then
    add
      (V.makef V.Placement ~code:"cost"
         "recorded wirelength %d but re-derived nets give %d"
         p.Placer.wirelength wl);
  (* every alive module claimed exactly once, inside its node's footprint *)
  let point_offsets = Hashtbl.create 64 in
  for m = 0 to Pd.n_modules_constructed g - 1 do
    let mr = Pd.module_get g m in
    (* distillation-box modules are realized by their box node's body,
       not claimed as a core cell *)
    let distill = match mr.Pd.m_kind with Pd.Distill _ -> true | _ -> false in
    if mr.Pd.m_alive && not distill then begin
      match Hashtbl.find_opt sm.Super_module.node_of_module m with
      | None ->
          add
            (V.makef V.Placement ~code:"claim"
               "alive module %d is claimed by no node" m)
      | Some nid when nid < 0 || nid >= n ->
          add
            (V.makef V.Placement ~code:"claim"
               "module %d claimed by unknown node %d" m nid)
      | Some nid -> (
          match Hashtbl.find_opt sm.Super_module.module_offset m with
          | None ->
              add
                (V.makef V.Placement ~code:"claim"
                   "claimed module %d has no offset" m)
          | Some (dx, dy, dz) ->
              let nd = nodes.(nid) in
              if
                dx < 0 || dy < 0 || dz < 0
                || dx >= nd.Super_module.nd_w
                || dy >= nd.Super_module.nd_h
                || dz >= nd.Super_module.nd_d
              then
                add
                  (V.makef V.Placement ~code:"claim"
                     "module %d offset (%d, %d, %d) leaves node %d's \
                      %dx%dx%d footprint"
                     m dx dy dz nid nd.Super_module.nd_w nd.Super_module.nd_h
                     nd.Super_module.nd_d);
              (* only chain columns stack above the ground layer *)
              (match nd.Super_module.nd_kind with
              | Super_module.Chain _ -> ()
              | _ ->
                  if dz <> 0 then
                    add
                      (V.makef V.Placement ~code:"layer"
                         "module %d of non-chain node %d floats at level %d" m
                         nid dz));
              let point =
                if m < Array.length f.Flipping.point_of then
                  f.Flipping.point_of.(m)
                else -1
              in
              if point >= 0 then
                (* a point's members sit side by side along x: track the
                   column origin (smallest dx) and the common level *)
                let entry =
                  match Hashtbl.find_opt point_offsets point with
                  | Some (nid', dx', dz') when nid' = nid ->
                      (nid, min dx dx', min dz dz')
                  | _ -> (nid, dx, dz)
                in
                Hashtbl.replace point_offsets point entry)
    end
  done;
  (* time-dependent and distillation super-modules are never rotated *)
  Array.iteri
    (fun i nd ->
      match nd.Super_module.nd_kind with
      | Super_module.Time_sm _ | Super_module.Distill_sm _ ->
          if p.Placer.rotated.(i) then
            add
              (V.makef V.Placement ~code:"rotation"
                 "time/distillation super-module %d is rotated" i)
      | _ -> ())
    nodes;
  (* chain geometry: consecutive points bridge along z (same column, one
     level apart) or serpentine across a column boundary (same level) *)
  Array.iter
    (fun nd ->
      match nd.Super_module.nd_kind with
      | Super_module.Chain chain ->
          let rec walk = function
            | a :: (b :: _ as rest) ->
                (match
                   (Hashtbl.find_opt point_offsets a,
                    Hashtbl.find_opt point_offsets b)
                 with
                | Some (na, xa, za), Some (nb, xb, zb) ->
                    if na <> nd.Super_module.nd_id || nb <> nd.Super_module.nd_id
                    then
                      add
                        (V.makef V.Placement ~code:"chain"
                           "chain node %d holds points %d and %d claimed \
                            elsewhere"
                           nd.Super_module.nd_id a b)
                    else if
                      not
                        ((xa = xb && abs (za - zb) = 1)
                        || (xa <> xb && za = zb))
                    then
                      add
                        (V.makef V.Placement ~code:"chain"
                           "bridged points %d and %d of node %d sit at \
                            (x=%d, z=%d) and (x=%d, z=%d): neither stacked \
                            nor serpentine-adjacent"
                           a b nd.Super_module.nd_id xa za xb zb)
                | _ ->
                    add
                      (V.makef V.Placement ~code:"chain"
                         "chain node %d references unclaimed points"
                         nd.Super_module.nd_id));
                walk rest
            | _ -> ()
          in
          walk chain
      | _ -> ())
    nodes;
  (* measurement-order constraints re-derived from the ICM must map to
     x-ordered placed cells (the time axis) *)
  let pairs = Icm_check.derive_pairs icm in
  List.iter
    (fun (before, after) ->
      let cell i =
        let line = icm.Icm.meas.(i).Icm.m_line in
        match Pd.meas_module g line with
        | Some m when Hashtbl.mem sm.Super_module.node_of_module m ->
            Some (m, Placer.module_cell p m)
        | _ -> None
      in
      match (cell before, cell after) with
      | Some (mb, cb), Some (ma, ca) ->
          if cb.Vec3.x >= ca.Vec3.x then
            add
              (V.makef V.Placement ~code:"time-order"
                 "measurement %d (module %d, x=%d) must precede measurement \
                  %d (module %d, x=%d) on the time axis"
                 before mb cb.Vec3.x after ma ca.Vec3.x)
      | _ ->
          add
            (V.makef V.Placement ~code:"time-order"
               "constrained measurements %d and %d lack placed modules" before
               after))
    pairs;
  List.rev !vs
