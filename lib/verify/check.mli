(** Whole-pipeline translation validation.

    [run] re-derives and cross-checks the invariants of every pipeline
    boundary from the raw stage artifacts — it never trusts a
    transformer's own bookkeeping where an independent derivation is
    possible.  The checks are deterministic: given equal artifacts the
    report is byte-identical, regardless of worker counts or hash-table
    layout. *)

type artifacts = {
  a_icm : Tqec_icm.Icm.t;
  a_graph : Tqec_pdgraph.Pd_graph.t;  (** post-simplification PD graph *)
  a_merges : Tqec_pdgraph.Ishape.merge list;
  a_flipping : Tqec_pdgraph.Flipping.t;
  a_dual : Tqec_pdgraph.Dual_bridge.t;
  a_fvalue : Tqec_pdgraph.Fvalue.t;
  a_placement : Tqec_place.Placer.t;
  a_routing : Tqec_route.Pathfinder.result;
  a_volume : int;  (** the pipeline's reported space-time volume *)
  a_geometry : Tqec_geom.Geometry.t option;
      (** emitted geometry; [None] skips the geometry stage *)
}

(** [run ?stages a] verifies the listed stages (default: all) in pipeline
    order and returns the report. *)
val run : ?stages:Violation.stage list -> artifacts -> Violation.report
