(** Stage (b): PD-graph incidence symmetry and dual-net coverage. *)

val check : Tqec_pdgraph.Pd_graph.t -> Violation.t list
