module Icm = Tqec_icm.Icm
module Pd = Tqec_pdgraph.Pd_graph
module Ishape = Tqec_pdgraph.Ishape
module Flipping = Tqec_pdgraph.Flipping
module Dual_bridge = Tqec_pdgraph.Dual_bridge
module Fvalue = Tqec_pdgraph.Fvalue
module V = Violation

module Pair_set = Set.Make (struct
  type t = int * int

  let compare = compare
end)

(* ------------------------------------------------------------------ *)
(* I-shaped simplification: translation validation.                    *)
(* ------------------------------------------------------------------ *)

(* Rebuild the pre-simplification PD graph from the ICM alone, apply the
   documented merge map of every recorded merge to its braiding relation
   (the creating net moves from the absorbed/residual pair onto the new
   merged module; nothing else changes), and require the result to equal
   the transformed graph's relation.  Because flipping and dual bridging
   never touch the stored incidence, comparing against the *final* graph
   also proves those stages left the braiding relation unchanged. *)
let ishape ~(icm : Icm.t) (post : Pd.t) (merges : Ishape.merge list) =
  let vs = ref [] in
  let add v = vs := v :: !vs in
  let pre = Pd.of_icm icm in
  (* construction-level coverage: every CNOT's net traverses its control
     row twice (current + innovative module) and its target row once *)
  Array.iteri
    (fun i ({ control; target } : Icm.cnot) ->
      if i < Pd.n_nets pre then begin
        let rows =
          List.map
            (fun m -> (Pd.module_get pre m).Pd.m_row)
            (Pd.net_get pre i).Pd.n_modules
        in
        let expected = [ control; control; target ] in
        if List.sort Int.compare rows <> List.sort Int.compare expected then
          add
            (V.makef V.Ishape ~code:"construction"
               "net %d of CNOT %d->%d traverses rows {%s}, expected control \
                twice and target once"
               i control target
               (String.concat ", " (List.map string_of_int rows)))
      end)
    icm.Icm.cnots;
  if Pd.n_nets pre <> Pd.n_nets post then
    add
      (V.makef V.Ishape ~code:"net-count"
         "simplification changed the net count (%d -> %d)" (Pd.n_nets pre)
         (Pd.n_nets post));
  let expected = ref (Pair_set.of_list (Pd.braiding_relation pre)) in
  List.iter
    (fun (m : Ishape.merge) ->
      let take pair who =
        if Pair_set.mem pair !expected then
          expected := Pair_set.remove pair !expected
        else
          add
            (V.makef V.Ishape ~code:"merge-map"
               "merge on row %d: net %d was not incident to the %s module %d"
               m.Ishape.g_row m.Ishape.g_net who (snd pair))
      in
      take (m.Ishape.g_net, m.Ishape.g_absorbed) "absorbed";
      take (m.Ishape.g_net, m.Ishape.g_residual) "residual";
      (* the absorbed module owned exactly the creating net *)
      if Pair_set.exists (fun (_, md) -> md = m.Ishape.g_absorbed) !expected
      then
        add
          (V.makef V.Ishape ~code:"merge-map"
             "absorbed module %d still carries nets other than %d"
             m.Ishape.g_absorbed m.Ishape.g_net);
      expected := Pair_set.add (m.Ishape.g_net, m.Ishape.g_merged) !expected)
    merges;
  let actual = Pair_set.of_list (Pd.braiding_relation post) in
  let missing = Pair_set.diff !expected actual in
  let extra = Pair_set.diff actual !expected in
  let describe what (n, m) =
    Printf.sprintf "braiding pair (net %d, module %d) %s after simplification"
      n m what
  in
  List.iter add
    (V.capped V.Ishape ~code:"braiding"
       (List.map (describe "lost") (Pair_set.elements missing)
       @ List.map (describe "appeared") (Pair_set.elements extra)));
  (* per-merge record checks against the transformed graph *)
  List.iter
    (fun (m : Ishape.merge) ->
      let bad code fmt = Printf.ksprintf (fun s -> add (V.make V.Ishape ~code s)) fmt in
      let get i =
        if i >= 0 && i < Pd.n_modules_constructed post then
          Some (Pd.module_get post i)
        else None
      in
      (match get m.Ishape.g_merged with
      | Some mr ->
          if not mr.Pd.m_alive then
            bad "merge-record" "merged module %d is dead" m.Ishape.g_merged;
          if mr.Pd.m_kind <> Pd.Ishape_merged then
            bad "merge-record" "module %d is not Ishape_merged" m.Ishape.g_merged;
          if mr.Pd.m_partner <> m.Ishape.g_residual then
            bad "merge-record" "merged module %d records partner %d, not %d"
              m.Ishape.g_merged mr.Pd.m_partner m.Ishape.g_residual
      | None -> bad "merge-record" "merged module %d unknown" m.Ishape.g_merged);
      (match get m.Ishape.g_absorbed with
      | Some a ->
          if a.Pd.m_alive then
            bad "merge-record" "absorbed module %d is still alive"
              m.Ishape.g_absorbed
      | None -> bad "merge-record" "absorbed module %d unknown" m.Ishape.g_absorbed);
      match get m.Ishape.g_residual with
      | Some r ->
          if not r.Pd.m_alive then
            bad "merge-record" "residual module %d is dead" m.Ishape.g_residual
      | None -> bad "merge-record" "residual module %d unknown" m.Ishape.g_residual)
    merges;
  List.rev !vs

(* ------------------------------------------------------------------ *)
(* Flipping (primal bridging).                                         *)
(* ------------------------------------------------------------------ *)

let flipping ~excluded (g : Pd.t) (f : Flipping.t) =
  let vs = ref [] in
  let add v = vs := v :: !vs in
  (* points partition the eligible modules exactly *)
  let eligible = Hashtbl.create 64 in
  for m = 0 to Pd.n_modules_constructed g - 1 do
    let mr = Pd.module_get g m in
    let distill = match mr.Pd.m_kind with Pd.Distill _ -> true | _ -> false in
    if mr.Pd.m_alive && (not distill) && not (excluded m) then
      Hashtbl.replace eligible m ()
  done;
  let seen = Hashtbl.create 64 in
  List.iter
    (fun (rep, members) ->
      if not (List.mem rep members) then
        add
          (V.makef V.Flipping ~code:"points"
             "point %d does not contain its representative" rep);
      List.iter
        (fun m ->
          if Hashtbl.mem seen m then
            add
              (V.makef V.Flipping ~code:"points"
                 "module %d belongs to two points" m)
          else Hashtbl.replace seen m ();
          if not (Hashtbl.mem eligible m) then
            add
              (V.makef V.Flipping ~code:"points"
                 "module %d is dead, excluded or a distillation box but \
                  belongs to point %d"
                 m rep);
          if
            m < Array.length f.Flipping.point_of
            && f.Flipping.point_of.(m) <> rep
          then
            add
              (V.makef V.Flipping ~code:"points"
                 "point_of.(%d) = %d disagrees with member list of point %d" m
                 f.Flipping.point_of.(m) rep))
        members)
    f.Flipping.points;
  let uncovered =
    List.filter
      (fun m -> not (Hashtbl.mem seen m))
      (List.sort Int.compare
         (Hashtbl.fold (fun m () acc -> m :: acc) eligible []))
    (* hash-order: keys sorted before use *)
  in
  List.iter
    (fun m ->
      add
        (V.makef V.Flipping ~code:"points"
           "eligible module %d belongs to no point" m))
    uncovered;
  (* chains partition the points, and every bridge has a common segment *)
  let point_nets =
    let tbl = Hashtbl.create 64 in
    List.iter
      (fun (rep, members) ->
        Hashtbl.replace tbl rep
          (List.sort_uniq Int.compare
             (List.concat_map (Pd.nets_through g) members)))
      f.Flipping.points;
    tbl
  in
  let in_chain = Hashtbl.create 64 in
  List.iter
    (fun chain ->
      if chain = [] then
        add (V.make V.Flipping ~code:"chains" "empty chain");
      List.iter
        (fun p ->
          if Hashtbl.mem in_chain p then
            add (V.makef V.Flipping ~code:"chains" "point %d in two chains" p)
          else Hashtbl.replace in_chain p ();
          if not (Hashtbl.mem point_nets p) then
            add
              (V.makef V.Flipping ~code:"chains"
                 "chain references unknown point %d" p))
        chain;
      let rec bridges = function
        | a :: (b :: _ as rest) ->
            let nets p =
              Option.value ~default:[] (Hashtbl.find_opt point_nets p)
            in
            if not (List.exists (fun n -> List.mem n (nets b)) (nets a)) then
              add
                (V.makef V.Flipping ~code:"bridge"
                   "bridge %d-%d lacks a common dual segment" a b);
            bridges rest
        | _ -> ()
      in
      bridges chain)
    f.Flipping.chains;
  List.iter
    (fun (rep, _) ->
      if not (Hashtbl.mem in_chain rep) then
        add
          (V.makef V.Flipping ~code:"chains" "point %d belongs to no chain" rep))
    f.Flipping.points;
  List.rev !vs

(* f values must alternate along every chain, starting unflipped (Eq. 5),
   re-derived here rather than through [Fvalue.alternates]. *)
let fvalues (f : Flipping.t) (fv : Fvalue.t) =
  let vs = ref [] in
  List.iter
    (fun chain ->
      (match chain with
      | first :: _ when Fvalue.flipped fv first ->
          vs :=
            V.makef V.Flipping ~code:"fvalue"
              "chain head %d is flipped; chains must start with f = 0" first
            :: !vs
      | _ -> ());
      let rec walk = function
        | a :: (b :: _ as rest) ->
            if Fvalue.flipped fv b = Fvalue.flipped fv a then
              vs :=
                V.makef V.Flipping ~code:"fvalue"
                  "f values of bridged points %d and %d do not alternate" a b
                :: !vs;
            walk rest
        | _ -> ()
      in
      walk chain)
    f.Flipping.chains;
  List.rev !vs

(* ------------------------------------------------------------------ *)
(* Iterative dual bridging.                                            *)
(* ------------------------------------------------------------------ *)

let dual ~(icm : Icm.t) (g : Pd.t) (d : Dual_bridge.t) =
  let vs = ref [] in
  let add v = vs := v :: !vs in
  let n = Pd.n_nets g in
  (* classes partition the nets and agree with the union-find *)
  let owner = Hashtbl.create 64 in
  List.iter
    (fun (rep, members) ->
      if not (List.mem rep members) then
        add
          (V.makef V.Dual_bridge ~code:"classes"
             "class %d does not contain its representative" rep);
      List.iter
        (fun net ->
          if Hashtbl.mem owner net then
            add
              (V.makef V.Dual_bridge ~code:"classes"
                 "net %d belongs to two merged structures" net)
          else Hashtbl.replace owner net rep;
          if net < 0 || net >= n then
            add
              (V.makef V.Dual_bridge ~code:"classes" "unknown net %d in class %d"
                 net rep)
          else if Dual_bridge.class_of d net <> Dual_bridge.class_of d rep then
            add
              (V.makef V.Dual_bridge ~code:"classes"
                 "union-find places net %d outside class %d" net rep))
        members)
    d.Dual_bridge.merged;
  for net = 0 to n - 1 do
    if not (Hashtbl.mem owner net) then
      add
        (V.makef V.Dual_bridge ~code:"classes"
           "net %d belongs to no merged structure" net)
  done;
  (* every merged structure is connected through shared module parts:
     each bridge joins two nets passing through one common part *)
  let modules_of = Array.init n (fun net -> Pd.modules_of_net g net) in
  List.iter
    (fun (rep, members) ->
      match members with
      | [] | [ _ ] -> ()
      | members ->
          let member_set = Hashtbl.create 8 in
          List.iter (fun m -> Hashtbl.replace member_set m ()) members;
          let by_module = Hashtbl.create 16 in
          List.iter
            (fun net ->
              if net >= 0 && net < n then
                List.iter
                  (fun m ->
                    let existing =
                      Option.value ~default:[] (Hashtbl.find_opt by_module m)
                    in
                    Hashtbl.replace by_module m (net :: existing))
                  modules_of.(net))
            members;
          let reached = Hashtbl.create 8 in
          let queue = Queue.create () in
          Queue.add rep queue;
          Hashtbl.replace reached rep ();
          while not (Queue.is_empty queue) do
            let net = Queue.pop queue in
            if net >= 0 && net < n then
              List.iter
                (fun m ->
                  List.iter
                    (fun peer ->
                      if
                        Hashtbl.mem member_set peer
                        && not (Hashtbl.mem reached peer)
                      then begin
                        Hashtbl.replace reached peer ();
                        Queue.add peer queue
                      end)
                    (Option.value ~default:[] (Hashtbl.find_opt by_module m)))
                modules_of.(net)
          done;
          List.iter
            (fun net ->
              if not (Hashtbl.mem reached net) then
                add
                  (V.makef V.Dual_bridge ~code:"connectivity"
                     "net %d cannot be bridged into structure %d through \
                      shared module parts"
                     net rep))
            members)
    d.Dual_bridge.merged;
  (* time-order rule: one structure may not contain nets of two different
     T gadgets acting on the same logical wire *)
  let gadget_of_cnot = Hashtbl.create 64 in
  Array.iter
    (fun (gd : Icm.t_gadget) ->
      List.iter
        (fun c -> Hashtbl.replace gadget_of_cnot c (gd.Icm.t_id, gd.Icm.t_wire))
        gd.Icm.t_cnots)
    icm.Icm.t_gadgets;
  List.iter
    (fun (rep, members) ->
      let wire_gadget = Hashtbl.create 4 in
      List.iter
        (fun net ->
          if net >= 0 && net < n then
            let cnot = (Pd.net_get g net).Pd.n_cnot in
            match Hashtbl.find_opt gadget_of_cnot cnot with
            | Some (gid, wire) -> (
                match Hashtbl.find_opt wire_gadget wire with
                | Some gid' when gid' <> gid ->
                    add
                      (V.makef V.Dual_bridge ~code:"time-order"
                         "structure %d merges nets of T gadgets %d and %d on \
                          wire %d"
                         rep gid' gid wire)
                | _ -> Hashtbl.replace wire_gadget wire gid)
            | None -> ())
        members)
    d.Dual_bridge.merged;
  List.rev !vs
