(** Stage (e): routing legality and geometry emission cross-checks.

    The routing problem — net pins, die, obstacle and shared-pin masks —
    is rebuilt from the placement alone before the routes are validated
    against it, and the reported space-time volume is recomputed from the
    node boxes and routed cells. *)

(** The checker's own reconstruction of the route net list (exposed for
    tests). *)
val build_nets :
  Tqec_pdgraph.Pd_graph.t ->
  Tqec_place.Placer.t ->
  Tqec_pdgraph.Flipping.t ->
  Tqec_pdgraph.Dual_bridge.t ->
  Tqec_pdgraph.Fvalue.t ->
  Tqec_route.Pathfinder.net list

val check :
  Tqec_pdgraph.Pd_graph.t ->
  Tqec_pdgraph.Flipping.t ->
  Tqec_pdgraph.Dual_bridge.t ->
  Tqec_pdgraph.Fvalue.t ->
  Tqec_place.Placer.t ->
  Tqec_route.Pathfinder.result ->
  reported_volume:int ->
  Violation.t list

(** [geometry_check g placement routing geom] proves the emitted strands
    agree with the flow: primal strands cover exactly the placed module
    core cells, each dual structure's cells equal its route's claimed
    cells (up to the documented shared-pin ownership rule), the lattice
    rules hold, and the emitted bounding box stays within the recomputed
    result volume. *)
val geometry_check :
  Tqec_pdgraph.Pd_graph.t ->
  Tqec_place.Placer.t ->
  Tqec_route.Pathfinder.result ->
  Tqec_geom.Geometry.t ->
  Violation.t list
