(** Stage (d): placement legality and cost recomputation.

    Uses {!Tqec_place.Bstar_tree.overlaps} as the overlap oracle, but
    re-derives everything else — bounding box, depth, volume, the node
    net set behind the wirelength, chain/layer geometry and the
    measurement time-order — from earlier-stage data. *)

val check :
  icm:Tqec_icm.Icm.t ->
  Tqec_pdgraph.Pd_graph.t ->
  Tqec_pdgraph.Flipping.t ->
  Tqec_pdgraph.Dual_bridge.t ->
  Tqec_place.Placer.t ->
  Violation.t list
