(** Structured findings of the translation-validation pass.

    Every checker emits [t] values tagged with the pipeline boundary it
    certifies; a whole-run {!report} records which stages were checked so
    a clean report is distinguishable from a skipped one.  All rendering
    is deterministic (stable stage order, capped floods), so reports are
    bit-identical across worker counts and repeated runs. *)

type stage =
  | Icm  (** ICM wellformedness + measurement-constraint DAG *)
  | Pd_graph  (** module/net incidence symmetry and net coverage *)
  | Ishape  (** braiding relation preserved up to the merge maps *)
  | Flipping  (** point/chain partition, bridge preconditions, f values *)
  | Dual_bridge  (** class consistency, connectivity, time-order rule *)
  | Placement  (** overlap, bounds, recomputed costs, layer legality *)
  | Routing  (** route legality and recomputed space-time volume *)
  | Geometry  (** emitted strands match the claimed routes cell-for-cell *)

val all_stages : stage list

val stage_name : stage -> string

val stage_of_string : string -> stage option

(** [stage_names] in canonical order (the [--stage] vocabulary). *)
val stage_names : string list

type t = { v_stage : stage; v_code : string; v_msg : string }

val make : stage -> code:string -> string -> t

val makef :
  stage -> code:string -> ('a, unit, string, t) format4 -> 'a

(** [capped ?cap stage ~code msgs] makes violations for the first [cap]
    (default 5) messages and summarizes the rest as a count. *)
val capped : ?cap:int -> stage -> code:string -> string list -> t list

val to_string : t -> string

type report = {
  checked : stage list;  (** stages that actually ran, canonical order *)
  violations : t list;
}

val ok : report -> bool

val to_strings : report -> string list

(** [render r] is the structured per-stage report ("ok" or the violation
    list), deterministic for identical inputs. *)
val render : report -> string
