type stage =
  | Icm
  | Pd_graph
  | Ishape
  | Flipping
  | Dual_bridge
  | Placement
  | Routing
  | Geometry

let all_stages =
  [ Icm; Pd_graph; Ishape; Flipping; Dual_bridge; Placement; Routing; Geometry ]

let stage_name = function
  | Icm -> "icm"
  | Pd_graph -> "pd-graph"
  | Ishape -> "ishape"
  | Flipping -> "flipping"
  | Dual_bridge -> "dual-bridge"
  | Placement -> "placement"
  | Routing -> "routing"
  | Geometry -> "geometry"

let stage_of_string s =
  let s = String.lowercase_ascii (String.trim s) in
  List.find_opt (fun st -> stage_name st = s) all_stages

let stage_names = List.map stage_name all_stages

type t = { v_stage : stage; v_code : string; v_msg : string }

let make v_stage ~code v_msg = { v_stage; v_code = code; v_msg }

let makef stage ~code fmt =
  Printf.ksprintf (fun s -> make stage ~code s) fmt

let to_string v =
  Printf.sprintf "[%s/%s] %s" (stage_name v.v_stage) v.v_code v.v_msg

(* Keep reports readable and deterministic under floods: the first [cap]
   messages verbatim plus a count of the rest. *)
let capped ?(cap = 5) stage ~code msgs =
  let n = List.length msgs in
  let kept = List.filteri (fun i _ -> i < cap) msgs in
  let vs = List.map (make stage ~code) kept in
  if n > cap then
    vs @ [ makef stage ~code "... and %d more" (n - cap) ]
  else vs

type report = { checked : stage list; violations : t list }

let ok r = r.violations = []

let to_strings r = List.map to_string r.violations

let render r =
  let buf = Buffer.create 256 in
  List.iter
    (fun st ->
      match List.filter (fun v -> v.v_stage = st) r.violations with
      | [] ->
          Buffer.add_string buf (Printf.sprintf "%-12s ok\n" (stage_name st))
      | vs ->
          Buffer.add_string buf
            (Printf.sprintf "%-12s %d violation%s\n" (stage_name st)
               (List.length vs)
               (if List.length vs = 1 then "" else "s"));
          List.iter
            (fun v ->
              Buffer.add_string buf
                (Printf.sprintf "  %s: %s\n" v.v_code v.v_msg))
            vs)
    r.checked;
  Buffer.contents buf
