module Pd = Tqec_pdgraph.Pd_graph
module V = Violation

(* Internal consistency of a PD graph at any point of the flow: the
   braiding relation is stored twice (module -> nets and net -> modules)
   and the two views must agree; every dual net must remain covered by at
   least two alive module parts (a net is realized as two-pin segments
   between consecutive parts, so fewer than two pins means the net lost
   its primal coverage). *)
let check (g : Pd.t) =
  let vs = ref [] in
  let n_modules = Pd.n_modules_constructed g in
  let n_nets = Pd.n_nets g in
  let n_lines = g.Pd.icm.Tqec_icm.Icm.n_lines in
  let asym = ref [] in
  for m = 0 to n_modules - 1 do
    let mr = Pd.module_get g m in
    if mr.Pd.m_alive then begin
      if mr.Pd.m_row < 0 || mr.Pd.m_row >= n_lines then
        vs :=
          V.makef V.Pd_graph ~code:"module-row"
            "module %d has out-of-range row %d" m mr.Pd.m_row
          :: !vs;
      List.iter
        (fun n ->
          if n < 0 || n >= n_nets then
            asym := Printf.sprintf "module %d lists unknown net %d" m n :: !asym
          else if not (List.mem m (Pd.net_get g n).Pd.n_modules) then
            asym :=
              Printf.sprintf
                "module %d lists net %d but the net does not list the module"
                m n
              :: !asym)
        (Pd.nets_through g m)
    end
  done;
  for n = 0 to n_nets - 1 do
    let nr = Pd.net_get g n in
    if
      nr.Pd.n_cnot < 0
      || nr.Pd.n_cnot >= Array.length g.Pd.icm.Tqec_icm.Icm.cnots
    then
      vs :=
        V.makef V.Pd_graph ~code:"net-cnot" "net %d maps to unknown CNOT %d" n
          nr.Pd.n_cnot
        :: !vs;
    let alive = Pd.modules_of_net g n in
    List.iter
      (fun m ->
        if not (List.mem n (Pd.nets_through g m)) then
          asym :=
            Printf.sprintf
              "net %d lists module %d but the module does not list the net" n m
            :: !asym)
      alive;
    if List.length alive < 2 then
      vs :=
        V.makef V.Pd_graph ~code:"net-coverage"
          "net %d is covered by %d alive module part(s); two-pin segments \
           need at least 2"
          n (List.length alive)
        :: !vs
  done;
  List.rev !vs @ V.capped V.Pd_graph ~code:"incidence" (List.rev !asym)
