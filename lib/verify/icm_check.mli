(** Stage (a): ICM wellformedness and the measurement-constraint DAG.

    Re-derives the intra-T and inter-T constraint pairs directly from the
    gadget records, proves the DAG acyclic with an independent Kahn pass,
    cross-checks {!Tqec_icm.Constraints.of_icm} against the re-derivation,
    and validates the ASAP depth schedule. *)

(** [derive_pairs icm] is the checker's own constraint enumeration
    (sorted, duplicate-free, invalid measurement indices dropped). *)
val derive_pairs : Tqec_icm.Icm.t -> (int * int) list

val check : Tqec_icm.Icm.t -> Violation.t list
