(** Stage (c): translation validation of the PD-graph transformations.

    Each check re-derives its invariant from earlier-stage data instead of
    trusting the transformer's bookkeeping. *)

(** [ishape ~icm post merges] rebuilds the pre-simplification PD graph
    from the ICM, replays the documented merge map of every recorded
    merge on its braiding relation, and requires the result to equal the
    transformed graph's relation.  Because later stages never touch the
    stored incidence, passing the *final* graph also proves flipping and
    dual bridging preserved the braiding relation. *)
val ishape :
  icm:Tqec_icm.Icm.t ->
  Tqec_pdgraph.Pd_graph.t ->
  Tqec_pdgraph.Ishape.merge list ->
  Violation.t list

(** [flipping ~excluded g f] checks that the points partition exactly the
    alive, non-distillation, non-excluded modules, that the chains
    partition the points, and that every bridge joins two points sharing
    a dual segment. *)
val flipping :
  excluded:(int -> bool) ->
  Tqec_pdgraph.Pd_graph.t ->
  Tqec_pdgraph.Flipping.t ->
  Violation.t list

(** [fvalues f fv] re-derives Eq. 5: every chain starts unflipped and f
    alternates along it. *)
val fvalues : Tqec_pdgraph.Flipping.t -> Tqec_pdgraph.Fvalue.t -> Violation.t list

(** [dual ~icm g d] checks that the merged structures partition the nets
    in agreement with the union-find, that each structure is connected
    through shared module parts, and that no structure merges nets of two
    different T gadgets on the same logical wire (the time-order rule,
    re-derived from the ICM). *)
val dual :
  icm:Tqec_icm.Icm.t ->
  Tqec_pdgraph.Pd_graph.t ->
  Tqec_pdgraph.Dual_bridge.t ->
  Violation.t list
