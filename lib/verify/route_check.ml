module Pd = Tqec_pdgraph.Pd_graph
module Flipping = Tqec_pdgraph.Flipping
module Dual_bridge = Tqec_pdgraph.Dual_bridge
module Fvalue = Tqec_pdgraph.Fvalue
module Placer = Tqec_place.Placer
module Super_module = Tqec_place.Super_module
module Pathfinder = Tqec_route.Pathfinder
module Grid = Tqec_route.Grid
module Geometry = Tqec_geom.Geometry
module Defect = Tqec_geom.Defect
module Vec3 = Tqec_util.Vec3
module Box3 = Tqec_util.Box3
module V = Violation

(* ------------------------------------------------------------------ *)
(* Independent reconstruction of the routing problem.                  *)
(*                                                                     *)
(* The checker rebuilds the net list and the grid (die, obstacle and    *)
(* shared-pin masks) from the placement alone, mirroring the documented *)
(* construction instead of borrowing the pipeline's instances: the      *)
(* routes must be legal against a problem derived from first            *)
(* principles, not against whatever grid the router happened to hold.  *)
(* ------------------------------------------------------------------ *)

let distill_pin (placement : Placer.t) node =
  let nd = placement.Placer.sm.Super_module.nodes.(node) in
  let x, y = placement.Placer.node_pos.(node) in
  let bw =
    match nd.Super_module.nd_kind with
    | Super_module.Distill_sm { box = Geometry.Y_box; _ } ->
        let w, _, _ = Geometry.y_box_dims in
        w
    | Super_module.Distill_sm { box = Geometry.A_box; _ } ->
        let w, _, _ = Geometry.a_box_dims in
        w
    | _ -> invalid_arg "Route_check.distill_pin: not a distillation node"
  in
  if placement.Placer.rotated.(node) then Vec3.make x (y + bw) 0
  else Vec3.make (x + bw) y 0

let build_nets (g : Pd.t) (placement : Placer.t) (flipping : Flipping.t)
    (dual : Dual_bridge.t) (fvalue : Fvalue.t) =
  let visits : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let pin m =
    let k = try Hashtbl.find visits m with Not_found -> 0 in
    Hashtbl.replace visits m (k + 1);
    Placer.pin_cell ~opposite:(k land 1 = 1) placement fvalue flipping m
  in
  let nets =
    List.filter_map
      (fun (rep, _members) ->
        let modules = Dual_bridge.modules_of_class g dual rep in
        match modules with
        | [] | [ _ ] -> None
        | ms -> Some { Pathfinder.net_id = rep; pins = List.map pin ms })
      dual.Dual_bridge.merged
  in
  let n_nets = Pd.n_nets g in
  let pseudo =
    List.mapi
      (fun i (box_node, m) ->
        {
          Pathfinder.net_id = n_nets + i;
          pins =
            [
              distill_pin placement box_node;
              Placer.pin_cell ~opposite:true placement fvalue flipping m;
            ];
        })
      placement.Placer.sm.Super_module.pseudo_nets
  in
  nets @ pseudo

let routing_layers (placement : Placer.t) nets =
  let hpwl_3d pins =
    match pins with
    | [] -> 0
    | (p : Vec3.t) :: rest ->
        let x0 = ref p.x and x1 = ref p.x in
        let y0 = ref p.y and y1 = ref p.y in
        let z0 = ref p.z and z1 = ref p.z in
        List.iter
          (fun (q : Vec3.t) ->
            x0 := min !x0 q.x;
            x1 := max !x1 q.x;
            y0 := min !y0 q.y;
            y1 := max !y1 q.y;
            z0 := min !z0 q.z;
            z1 := max !z1 q.z)
          rest;
        !x1 - !x0 + (!y1 - !y0) + (!z1 - !z0)
  in
  let demand =
    List.fold_left
      (fun acc (n : Pathfinder.net) ->
        let pins = List.length n.Pathfinder.pins in
        let steiner = Float.max 1.0 (sqrt (float_of_int pins /. 4.0)) in
        acc +. (float_of_int (hpwl_3d n.Pathfinder.pins) *. steiner))
      0. nets
  in
  let area =
    float_of_int (max 1 (placement.Placer.width * placement.Placer.height))
  in
  Tqec_util.Stats.clamp 1 16 (int_of_float (Float.ceil (1.5 *. demand /. area)))

let build_grid (g : Pd.t) (placement : Placer.t) nets =
  let die =
    Box3.make Vec3.zero
      (Vec3.make
         (max 0 (placement.Placer.width - 1))
         (max 0 (placement.Placer.height - 1))
         (max 0 (placement.Placer.depth - 1 + routing_layers placement nets)))
  in
  let grid = Grid.create ~die (Box3.inflate 2 die) in
  let sm = placement.Placer.sm in
  (* hash-order: obstacle flags commute, iteration order is irrelevant *)
  Hashtbl.iter
    (fun m _node ->
      if (Pd.module_get g m).Pd.m_alive then
        Grid.set_obstacle grid (Placer.module_cell placement m))
    sm.Super_module.node_of_module;
  Array.iteri
    (fun i nd ->
      match nd.Super_module.nd_kind with
      | Super_module.Distill_sm { box; _ } ->
          let bw, bh, bd =
            match box with
            | Geometry.Y_box -> Geometry.y_box_dims
            | Geometry.A_box -> Geometry.a_box_dims
          in
          let x, y = placement.Placer.node_pos.(i) in
          let w, h =
            if placement.Placer.rotated.(i) then (bh, bw) else (bw, bh)
          in
          Grid.set_obstacle_box grid
            (Box3.make (Vec3.make x y 0)
               (Vec3.make (x + w - 1) (y + h - 1) (bd - 1)))
      | _ -> ())
    sm.Super_module.nodes;
  List.iter
    (fun (n : Pathfinder.net) ->
      List.iter (Grid.set_shared grid) n.Pathfinder.pins)
    nets;
  grid

(* Bounding-box volume of the full result (node footprints plus routed
   cells), recomputed from scratch. *)
let recompute_volume (placement : Placer.t) (routing : Pathfinder.result) =
  let n = Array.length placement.Placer.sm.Super_module.nodes in
  let bbox = ref None in
  let join b = bbox := Some (match !bbox with None -> b | Some a -> Box3.join a b) in
  for i = 0 to n - 1 do
    join (Placer.node_box placement i)
  done;
  List.iter
    (fun (r : Pathfinder.routed) ->
      List.iter (fun c -> join (Box3.of_cell c)) r.Pathfinder.r_cells)
    routing.Pathfinder.routes;
  match !bbox with None -> 0 | Some b -> Box3.volume b

let check (g : Pd.t) (flipping : Flipping.t) (dual : Dual_bridge.t)
    (fvalue : Fvalue.t) (placement : Placer.t) (routing : Pathfinder.result)
    ~reported_volume =
  let vs = ref [] in
  let add v = vs := v :: !vs in
  let nets = build_nets g placement flipping dual fvalue in
  let grid = build_grid g placement nets in
  List.iter
    (fun msg -> add (V.make V.Routing ~code:"legality" msg))
    (Pathfinder.validate grid routing nets);
  if routing.Pathfinder.unrouted <> [] then
    add
      (V.makef V.Routing ~code:"unrouted" "%d net(s) left unrouted: {%s}"
         (List.length routing.Pathfinder.unrouted)
         (String.concat ", "
            (List.map string_of_int
               (List.sort Int.compare routing.Pathfinder.unrouted))));
  let volume = recompute_volume placement routing in
  if volume <> reported_volume then
    add
      (V.makef V.Routing ~code:"volume"
         "reported space-time volume %d but node boxes and routed cells \
          recompute to %d"
         reported_volume volume);
  List.rev !vs

(* ------------------------------------------------------------------ *)
(* Emitted geometry against the claimed routes.                        *)
(* ------------------------------------------------------------------ *)

let sorted_cells cells = List.sort_uniq compare cells

let structure_cells strands =
  sorted_cells (List.concat_map Defect.cells strands)

let cell_str (c : Vec3.t) = Printf.sprintf "(%d, %d, %d)" c.x c.y c.z

let geometry_check (g : Pd.t) (placement : Placer.t)
    (routing : Pathfinder.result) (geom : Geometry.t) =
  let vs = ref [] in
  let add v = vs := v :: !vs in
  (* the lattice-level rules (parity, steps, same-type collisions) *)
  List.iter
    (fun issue ->
      add
        (V.makef V.Geometry ~code:"lattice" "%s"
           (Format.asprintf "%a" Geometry.pp_issue issue)))
    (Geometry.check geom);
  (* primal strands cover exactly the placed module core cells *)
  let expected_primal =
    let cells = ref [] in
    let sm = placement.Placer.sm in
    (* hash-order: cells are sorted before comparison *)
    Hashtbl.iter
      (fun m _node ->
        if (Pd.module_get g m).Pd.m_alive then
          cells := Placer.module_cell placement m :: !cells)
      sm.Super_module.node_of_module;
    sorted_cells !cells
  in
  let actual_primal =
    structure_cells
      (List.concat_map snd (Geometry.structures geom Defect.Primal))
  in
  if expected_primal <> actual_primal then begin
    let missing =
      List.filter (fun c -> not (List.mem c actual_primal)) expected_primal
    in
    let extra =
      List.filter (fun c -> not (List.mem c expected_primal)) actual_primal
    in
    List.iter add
      (V.capped V.Geometry ~code:"primal-cells"
         (List.map
            (fun c ->
              Printf.sprintf "module core cell %s has no primal strand"
                (cell_str c))
            missing
         @ List.map
             (fun c ->
               Printf.sprintf "primal strand cell %s matches no placed module"
                 (cell_str c))
             extra))
  end;
  (* dual strands match the claimed routes cell-for-cell.  Dual structure
     ids follow the primal ones in route order; a cell visited by several
     routes (a shared pin) is emitted for the first visitor only, so the
     comparison replays that ownership rule. *)
  let first_dual = List.length (Geometry.structures geom Defect.Primal) in
  let n_routes = List.length routing.Pathfinder.routes in
  let dual_structures = Geometry.structures geom Defect.Dual in
  let owner = Hashtbl.create 256 in
  List.iteri
    (fun i (routed : Pathfinder.routed) ->
      let expected =
        sorted_cells
          (List.filter
             (fun c ->
               match Hashtbl.find_opt owner c with
               | Some o -> o = routed.Pathfinder.r_net
               | None ->
                   Hashtbl.replace owner c routed.Pathfinder.r_net;
                   true)
             routed.Pathfinder.r_cells)
      in
      let sid = first_dual + i in
      let actual =
        match List.assoc_opt sid dual_structures with
        | Some strands -> structure_cells strands
        | None -> []
      in
      if expected <> actual then
        add
          (V.makef V.Geometry ~code:"dual-cells"
             "dual structure %d emits %d cell(s) but net %d's route claims \
              %d: emission and routing disagree"
             sid (List.length actual) routed.Pathfinder.r_net
             (List.length expected)))
    routing.Pathfinder.routes;
  if List.length dual_structures > n_routes then
    add
      (V.makef V.Geometry ~code:"dual-cells"
         "%d dual structure(s) emitted for %d route(s)"
         (List.length dual_structures)
         n_routes);
  (* emitted bounding box never exceeds the reported volume *)
  (match Geometry.bbox geom with
  | Some b ->
      let n = Array.length placement.Placer.sm.Super_module.nodes in
      let reported = recompute_volume placement routing in
      if n > 0 && Box3.volume b > reported then
        add
          (V.makef V.Geometry ~code:"volume"
             "emitted geometry spans %d cells, exceeding the recomputed \
              result volume %d"
             (Box3.volume b) reported)
  | None -> ());
  List.rev !vs
