module Icm = Tqec_icm.Icm
module Constraints = Tqec_icm.Constraints
module Schedule = Tqec_icm.Schedule
module V = Violation

(* Re-derive the measurement-order constraint pairs straight from the
   gadget records — deliberately not via [Constraints.of_icm], whose
   bookkeeping this checker cross-validates.  Pairs referencing invalid
   measurement indices are dropped (they are reported separately by the
   structural check). *)
let derive_pairs (icm : Icm.t) =
  let n_meas = Array.length icm.meas in
  let valid i = i >= 0 && i < n_meas in
  let pairs = ref [] in
  Array.iter
    (fun (g : Icm.t_gadget) ->
      if valid g.t_first_meas then
        List.iter
          (fun s -> if valid s then pairs := (g.t_first_meas, s) :: !pairs)
          g.t_second_meas)
    icm.t_gadgets;
  let by_wire = Hashtbl.create 16 in
  Array.iter
    (fun (g : Icm.t_gadget) ->
      let existing = try Hashtbl.find by_wire g.t_wire with Not_found -> [] in
      Hashtbl.replace by_wire g.t_wire (g :: existing))
    icm.t_gadgets;
  (* hash-order: wire keys are sorted before use *)
  let wires = Hashtbl.fold (fun w _ acc -> w :: acc) by_wire [] in
  List.iter
    (fun wire ->
      let gadgets =
        List.sort
          (fun (a : Icm.t_gadget) b -> Int.compare a.t_seq b.t_seq)
          (Hashtbl.find by_wire wire)
      in
      let rec link = function
        | (a : Icm.t_gadget) :: (b : Icm.t_gadget) :: rest ->
            List.iter
              (fun sa ->
                List.iter
                  (fun sb ->
                    if valid sa && valid sb then pairs := (sa, sb) :: !pairs)
                  b.t_second_meas)
              a.t_second_meas;
            link (b :: rest)
        | _ -> ()
      in
      link gadgets)
    (List.sort_uniq Int.compare wires);
  List.sort_uniq compare !pairs

(* Kahn over the re-derived pairs: the measurements left with positive
   in-degree at exhaustion form the cycles. *)
let cycle_members n pairs =
  let indegree = Array.make n 0 in
  let succs = Array.make n [] in
  List.iter
    (fun (before, after) ->
      succs.(before) <- after :: succs.(before);
      indegree.(after) <- indegree.(after) + 1)
    pairs;
  let ready = Queue.create () in
  for i = 0 to n - 1 do
    if indegree.(i) = 0 then Queue.add i ready
  done;
  let emitted = ref 0 in
  while not (Queue.is_empty ready) do
    let i = Queue.pop ready in
    incr emitted;
    List.iter
      (fun j ->
        indegree.(j) <- indegree.(j) - 1;
        if indegree.(j) = 0 then Queue.add j ready)
      succs.(i)
  done;
  if !emitted = n then []
  else
    List.filter (fun i -> indegree.(i) > 0) (List.init n (fun i -> i))

let check (icm : Icm.t) =
  let vs = ref [] in
  let add v = vs := v :: !vs in
  (* structural wellformedness (the independent per-field checker) *)
  List.iter
    (fun issue ->
      add
        (V.makef V.Icm ~code:"structure" "%s"
           (Format.asprintf "%a" Tqec_icm.Validate.pp_issue issue)))
    (Tqec_icm.Validate.check icm);
  let pairs = derive_pairs icm in
  (* (a) the measurement-constraint DAG is acyclic *)
  let n_meas = Array.length icm.meas in
  (match cycle_members n_meas pairs with
  | [] -> ()
  | cyclic ->
      add
        (V.makef V.Icm ~code:"constraint-cycle"
           "measurement-order constraints are cyclic through measurements {%s}"
           (String.concat ", " (List.map string_of_int cyclic))));
  (* the transformer's own constraint enumeration must agree with the
     re-derivation *)
  let recorded =
    List.sort_uniq compare
      (List.map
         (fun (p : Constraints.pair) -> (p.before, p.after))
         (Constraints.of_icm icm))
  in
  if recorded <> pairs then
    add
      (V.makef V.Icm ~code:"constraint-derivation"
         "Constraints.of_icm lists %d pairs; independent re-derivation finds %d"
         (List.length recorded) (List.length pairs));
  (* the CNOT depth schedule respects line availability *)
  (try
     let asap = Schedule.asap icm in
     if not (Schedule.valid icm asap) then
       add
         (V.make V.Icm ~code:"schedule"
            "ASAP schedule violates line-dependency order")
   with e ->
     add
       (V.makef V.Icm ~code:"schedule" "ASAP scheduling failed: %s"
          (Printexc.to_string e)));
  List.rev !vs
