module Veca = Tqec_util.Veca
module Union_find = Tqec_util.Union_find

type t = {
  point_of : int array;
  points : (int * int list) list;
  chains : int list list;
}

let is_distill (m : Pd_graph.module_rec) =
  match m.m_kind with Pd_graph.Distill _ -> true | _ -> false

(* Union alive non-distill modules with their I-shape partners. *)
let build_points ~exclude g =
  let n = Veca.length g.Pd_graph.modules in
  let uf = Union_find.create n in
  Veca.iter
    (fun (m : Pd_graph.module_rec) ->
      if m.m_alive && m.m_partner >= 0 && (not (exclude m.m_id))
         && not (exclude m.m_partner) then
        ignore (Union_find.union uf m.m_id m.m_partner))
    g.Pd_graph.modules;
  let point_of = Array.make n (-1) in
  let members = Hashtbl.create 64 in
  Veca.iter
    (fun (m : Pd_graph.module_rec) ->
      if m.m_alive && (not (is_distill m)) && not (exclude m.m_id) then begin
        let r = Union_find.find uf m.m_id in
        point_of.(m.m_id) <- r;
        let existing = try Hashtbl.find members r with Not_found -> [] in
        Hashtbl.replace members r (m.m_id :: existing)
      end)
    g.Pd_graph.modules;
  (* Normalize representatives to the smallest member id. *)
  let points =
    (* hash-order: points are sorted by representative below *)
    Hashtbl.fold
      (fun _r ms acc ->
        let ms = List.sort Int.compare ms in
        let rep = List.hd ms in
        (rep, ms) :: acc)
      members []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  List.iter
    (fun (rep, ms) -> List.iter (fun m -> point_of.(m) <- rep) ms)
    points;
  (point_of, points)

(* Nets through any module of a point, deduplicated, order preserved. *)
let point_nets g point_members =
  let seen = Hashtbl.create 8 in
  List.concat_map
    (fun m ->
      List.filter
        (fun n ->
          if Hashtbl.mem seen n then false
          else begin
            Hashtbl.add seen n ();
            true
          end)
        (Pd_graph.nets_through g m))
    point_members

let run ?rng ?(exclude = fun _ -> false) (g : Pd_graph.t) =
  let point_of, points = build_points ~exclude g in
  let members_of = Hashtbl.create 64 in
  List.iter (fun (rep, ms) -> Hashtbl.add members_of rep ms) points;
  let nets_of_point = Hashtbl.create 64 in
  List.iter
    (fun (rep, ms) -> Hashtbl.add nets_of_point rep (point_nets g ms))
    points;
  (* Points reachable from [rep] via a shared net. *)
  let neighbors rep =
    let nets = Hashtbl.find nets_of_point rep in
    let seen = Hashtbl.create 8 in
    List.concat_map
      (fun n ->
        List.filter_map
          (fun m ->
            let p = point_of.(m) in
            if p = -1 || p = rep || Hashtbl.mem seen p then None
            else begin
              Hashtbl.add seen p ();
              Some p
            end)
          (Pd_graph.modules_of_net g n))
      nets
  in
  let traversed = Hashtbl.create 64 in
  (* Phi (Eq. 3-4): prefer the candidate whose modules connect the most
     dual nets still leading to un-traversed points. *)
  let phi cand =
    let nets = Hashtbl.find nets_of_point cand in
    List.length
      (List.filter
         (fun n ->
           List.exists
             (fun m ->
               let p = point_of.(m) in
               p <> -1 && p <> cand && not (Hashtbl.mem traversed p))
             (Pd_graph.modules_of_net g n))
         nets)
  in
  let pick_best candidates =
    match candidates with
    | [] -> None
    | _ ->
        let scored = List.map (fun c -> (phi c, c)) candidates in
        let best =
          List.fold_left
            (fun (bs, bc) (s, c) ->
              if s > bs || (s = bs && c < bc) then (s, c) else (bs, bc))
            (List.hd scored) (List.tl scored)
        in
        Some (snd best)
  in
  (* Start order: points on an edge (with nets) first, then isolated
     ones; a cursor makes the restart scan amortized O(points). *)
  let start_order =
    let on_edge, isolated =
      List.partition (fun (rep, _) -> Hashtbl.find nets_of_point rep <> []) points
    in
    let arr = Array.of_list (List.map fst on_edge) in
    let iso = Array.of_list (List.map fst isolated) in
    (match rng with
    | Some r ->
        Tqec_util.Rng.shuffle r arr;
        Tqec_util.Rng.shuffle r iso
    | None -> ());
    Array.append arr iso
  in
  let cursor = ref 0 in
  let pick_start () =
    while
      !cursor < Array.length start_order
      && Hashtbl.mem traversed start_order.(!cursor)
    do
      incr cursor
    done;
    if !cursor < Array.length start_order then Some start_order.(!cursor)
    else None
  in
  let chains = ref [] in
  let rec build_chain rep acc =
    Hashtbl.add traversed rep ();
    let candidates =
      List.filter (fun p -> not (Hashtbl.mem traversed p)) (neighbors rep)
    in
    match pick_best candidates with
    | Some next -> build_chain next (rep :: acc)
    | None -> List.rev (rep :: acc)
  in
  let rec loop () =
    match pick_start () with
    | None -> ()
    | Some start ->
        chains := build_chain start [] :: !chains;
        loop ()
  in
  loop ();
  { point_of; points; chains = List.rev !chains }

let n_nodes t = List.length t.chains

let chain_of t point =
  match List.find_opt (List.mem point) t.chains with
  | Some c -> c
  | None -> raise Not_found

let validate g t =
  let errors = ref [] in
  let seen = Hashtbl.create 64 in
  List.iter
    (fun chain ->
      List.iter
        (fun p ->
          if Hashtbl.mem seen p then
            errors := Printf.sprintf "point %d in two chains" p :: !errors
          else Hashtbl.add seen p ())
        chain)
    t.chains;
  List.iter
    (fun (rep, _) ->
      if not (Hashtbl.mem seen rep) then
        errors := Printf.sprintf "point %d missing from chains" rep :: !errors)
    t.points;
  let members_of = Hashtbl.create 64 in
  List.iter (fun (rep, ms) -> Hashtbl.add members_of rep ms) t.points;
  let nets_of rep =
    match Hashtbl.find_opt members_of rep with
    | None -> []
    | Some ms -> List.concat_map (Pd_graph.nets_through g) ms
  in
  List.iter
    (fun chain ->
      let rec check = function
        | a :: b :: rest ->
            let shared =
              List.exists (fun n -> List.mem n (nets_of b)) (nets_of a)
            in
            if not shared then
              errors :=
                Printf.sprintf "bridge %d-%d lacks a common segment" a b
                :: !errors;
            check (b :: rest)
        | _ -> ()
      in
      check chain)
    t.chains;
  List.rev !errors
