module Union_find = Tqec_util.Union_find
module Veca = Tqec_util.Veca
module Icm = Tqec_icm.Icm

type t = {
  classes : Union_find.t;
  merged : (int * int list) list;
  n_bridges : int;
  n_refused : int;
}

(* Map each ICM CNOT to its owning T gadget (if any). *)
let gadget_of_cnot (icm : Icm.t) =
  let tbl = Hashtbl.create 64 in
  Array.iter
    (fun (g : Icm.t_gadget) ->
      List.iter (fun k -> Hashtbl.replace tbl k (g.t_id, g.t_wire)) g.t_cnots)
    icm.t_gadgets;
  tbl

let run (g : Pd_graph.t) =
  let n = Pd_graph.n_nets g in
  let uf = Union_find.create n in
  let cnot_gadget = gadget_of_cnot g.Pd_graph.icm in
  (* Per class root: wire -> gadget id, for the time-order refusal rule. *)
  let wires_of_root : (int, (int, int) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 64
  in
  let wire_map root =
    match Hashtbl.find_opt wires_of_root root with
    | Some m -> m
    | None ->
        let m = Hashtbl.create 4 in
        Hashtbl.replace wires_of_root root m;
        m
  in
  (* Seed each net's wire map from its gadget membership. *)
  for net = 0 to n - 1 do
    let cnot = (Pd_graph.net_get g net).n_cnot in
    match Hashtbl.find_opt cnot_gadget cnot with
    | Some (gid, wire) -> Hashtbl.replace (wire_map net) wire gid
    | None -> ()
  done;
  let conflict ra rb =
    let ma = wire_map ra and mb = wire_map rb in
    let small, large =
      if Hashtbl.length ma <= Hashtbl.length mb then (ma, mb) else (mb, ma)
    in
    (* hash-order: (||) over all bindings is order-oblivious *)
    Hashtbl.fold
      (fun wire gid acc ->
        acc
        ||
        match Hashtbl.find_opt large wire with
        | Some gid' -> gid <> gid'
        | None -> false)
      small false
  in
  let absorb ~into ~from =
    (* hash-order: each wire key is replaced independently, so the
       iteration order is irrelevant *)
    Hashtbl.iter (fun wire gid -> Hashtbl.replace (wire_map into) wire gid)
      (wire_map from)
  in
  let n_bridges = ref 0 and n_refused = ref 0 in
  let try_union a b =
    let ra = Union_find.find uf a and rb = Union_find.find uf b in
    if ra <> rb then
      if conflict ra rb then incr n_refused
      else begin
        let root = Union_find.union uf ra rb in
        let other = if root = ra then rb else ra in
        absorb ~into:root ~from:other;
        incr n_bridges
      end
  in
  (* Iterate sweeps to a fixpoint: a union refused early can become
     unnecessary (same class) or acceptable later, and the refusal rule
     makes single-pass results order-dependent. *)
  let sweep () =
    let before = !n_bridges in
    Veca.iter
      (fun (m : Pd_graph.module_rec) ->
        if m.m_alive then
          match Pd_graph.nets_through g m.m_id with
          | [] | [ _ ] -> ()
          | first :: rest -> List.iter (fun net -> try_union first net) rest)
      g.Pd_graph.modules;
    !n_bridges > before
  in
  let rec iterate budget = if budget > 0 && sweep () then iterate (budget - 1) in
  n_refused := 0;
  iterate 10;
  let merged =
    Union_find.groups uf
    |> List.filter (fun (_, members) -> members <> [])
  in
  { classes = uf; merged; n_bridges = !n_bridges; n_refused = !n_refused }

let class_of t net = Union_find.find t.classes net

let modules_of_class g t rep =
  let members =
    match List.assoc_opt rep t.merged with
    | Some ms -> ms
    | None -> [ rep ]
  in
  List.concat_map (Pd_graph.modules_of_net g) members
  |> List.sort_uniq Int.compare
