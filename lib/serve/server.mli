(** The [tqecc serve] daemon: accepts framed {!Protocol} requests on a
    unix-domain socket, runs the compression pipeline on cache misses,
    and answers with payloads byte-identical to the CLI's porcelain
    output for the same (input, seed, knobs).

    Concurrency model: one accept loop, one lightweight thread per
    connection.  Connection threads do bookkeeping under a state lock;
    actual pipeline execution is serialized by a compute lock (the
    pipeline's scratch state is per-domain, and systhreads share their
    domain), with parallelism coming from the domain pool {e inside}
    each run.  Admission control bounds admitted-but-unfinished
    cache-miss requests at [capacity]; beyond that a request receives a
    structured [Busy] response immediately — the daemon never queues
    unboundedly and never crashes on overload.  Cache hits and stats
    bypass admission entirely. *)

type config = {
  socket_path : string;
  capacity : int;  (** max admitted cache-miss requests in flight *)
  cache_bytes : int;  (** result-cache byte budget; [0] disables *)
  max_jobs : int option;  (** clamp on per-request worker domains *)
  hold_ms : int;
      (** test hook: stall this long inside the compute section before
          each pipeline run, so overload tests can pin the daemon in the
          busy state deterministically.  [0] (the default) disables *)
  fault : string option;
      (** test hook: raise a planted {!Tqec_compress.Pipeline.Stage_failure}
          with this stage name instead of running the pipeline, proving
          the exception surfaces as a structured error response while the
          daemon keeps serving.  [None] (the default) disables *)
  verbose : bool;  (** request log on stderr *)
}

(** [/tmp/tqecc.sock], capacity 2, 16 MiB cache, no jobs clamp, no
    hold, quiet. *)
val default_config : config

(** [run config] binds the socket (replacing any stale file), serves
    until a [Shutdown] request arrives, drains admitted requests, and
    removes the socket file.  Returns the final counters.  Blocks the
    calling thread for the daemon's whole lifetime. *)
val run : config -> Protocol.server_stats
