type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(* ------------------------------------------------------------------ *)
(* Printing                                                           *)
(* ------------------------------------------------------------------ *)

let escape_into b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

(* %.17g round-trips every finite binary64 through decimal.  Integral
   values keep an explicit ".0" so they re-read as Float, preserving the
   Int/Float distinction across a round trip ([to_float] still accepts
   Int for foreign producers). *)
let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let rec print_into b = function
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> Buffer.add_string b (float_repr f)
  | String s -> escape_into b s
  | List items ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char b ',';
          print_into b v)
        items;
      Buffer.add_char b ']'
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          escape_into b k;
          Buffer.add_char b ':';
          print_into b v)
        fields;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  print_into b v;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Parsing (recursive descent)                                        *)
(* ------------------------------------------------------------------ *)

type cursor = { text : string; mutable pos : int }

let fail c fmt =
  Printf.ksprintf (fun m -> raise (Parse_error (Printf.sprintf "at byte %d: %s" c.pos m))) fmt

let peek c = if c.pos < String.length c.text then Some c.text.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  let continue = ref true in
  while !continue do
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') -> advance c
    | _ -> continue := false
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> fail c "expected %C, found %C" ch x
  | None -> fail c "expected %C, found end of input" ch

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.text && String.sub c.text c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else fail c "invalid literal"

let parse_string_body c =
  expect c '"';
  let b = Buffer.create 16 in
  let rec loop () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
        advance c;
        match peek c with
        | None -> fail c "unterminated escape"
        | Some e ->
            advance c;
            (match e with
            | '"' -> Buffer.add_char b '"'
            | '\\' -> Buffer.add_char b '\\'
            | '/' -> Buffer.add_char b '/'
            | 'n' -> Buffer.add_char b '\n'
            | 'r' -> Buffer.add_char b '\r'
            | 't' -> Buffer.add_char b '\t'
            | 'b' -> Buffer.add_char b '\b'
            | 'f' -> Buffer.add_char b '\012'
            | 'u' ->
                if c.pos + 4 > String.length c.text then
                  fail c "truncated \\u escape";
                let hex = String.sub c.text c.pos 4 in
                c.pos <- c.pos + 4;
                let code =
                  match int_of_string_opt ("0x" ^ hex) with
                  | Some v -> v
                  | None -> fail c "malformed \\u escape %S" hex
                in
                (* we only ever emit \u00XX (control bytes); decode any
                   BMP code point as UTF-8 for good measure *)
                if code < 0x80 then Buffer.add_char b (Char.chr code)
                else if code < 0x800 then begin
                  Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
                  Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
                end
                else begin
                  Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
                  Buffer.add_char b
                    (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                  Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
                end
            | e -> fail c "unknown escape \\%c" e);
            loop ())
    | Some ch ->
        advance c;
        Buffer.add_char b ch;
        loop ()
  in
  loop ();
  Buffer.contents b

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek c with Some ch -> is_num_char ch | None -> false) do
    advance c
  done;
  let s = String.sub c.text start (c.pos - start) in
  match int_of_string_opt s with
  | Some i -> Int i
  | None -> (
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> fail c "malformed number %S" s)

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some 'n' -> literal c "null" Null
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some '"' -> String (parse_string_body c)
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then begin
        advance c;
        List []
      end
      else
        let rec items acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              items (v :: acc)
          | Some ']' ->
              advance c;
              List (List.rev (v :: acc))
          | _ -> fail c "expected ',' or ']'"
        in
        items []
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then begin
        advance c;
        Obj []
      end
      else
        let rec fields acc =
          skip_ws c;
          let k = parse_string_body c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              fields ((k, v) :: acc)
          | Some '}' ->
              advance c;
              Obj (List.rev ((k, v) :: acc))
          | _ -> fail c "expected ',' or '}'"
        in
        fields []
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> fail c "unexpected character %C" ch

let of_string s =
  let c = { text = s; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length s then fail c "trailing garbage";
  v

(* ------------------------------------------------------------------ *)
(* Accessors                                                          *)
(* ------------------------------------------------------------------ *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_str = function String s -> Some s | _ -> None
let to_int = function Int i -> Some i | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_bool = function Bool b -> Some b | _ -> None
let to_list = function List l -> Some l | _ -> None
