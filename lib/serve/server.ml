module Pipeline = Tqec_compress.Pipeline

(* A minimal ICM whose measurement constraints form a 2-cycle: gadget 0
   wants measurement 0 before 1, gadget 1 wants 1 before 0.  Never a
   legal pipeline input — used only by the [icm-cycle] fault seam to
   drive the acyclicity gate from a live daemon. *)
let cyclic_icm : Tqec_icm.Icm.t =
  let open Tqec_icm.Icm in
  {
    name = "planted-cycle";
    n_lines = 2;
    inits = [| Init_z; Init_z |];
    cnots = [||];
    meas =
      [|
        { m_line = 0; m_basis = Mz; m_order = Order_first 0 };
        { m_line = 1; m_basis = Mz; m_order = Order_first 1 };
      |];
    t_gadgets =
      [|
        {
          t_id = 0;
          t_wire = 0;
          t_seq = 0;
          t_lines = [];
          t_cnots = [];
          t_first_meas = 0;
          t_second_meas = [ 1 ];
        };
        {
          t_id = 1;
          t_wire = 1;
          t_seq = 0;
          t_lines = [];
          t_cnots = [];
          t_first_meas = 1;
          t_second_meas = [ 0 ];
        };
      |];
    line_of_wire = [| 0; 1 |];
  }

type config = {
  socket_path : string;
  capacity : int;
  cache_bytes : int;
  max_jobs : int option;
  hold_ms : int;
  fault : string option;
  verbose : bool;
}

let default_config =
  {
    socket_path = "/tmp/tqecc.sock";
    capacity = 2;
    cache_bytes = 16 * 1024 * 1024;
    max_jobs = None;
    hold_ms = 0;
    fault = None;
    verbose = false;
  }

type state = {
  cfg : config;
  lock : Mutex.t;
      (* guards cache, counters and [in_flight]; held only for O(1)
         bookkeeping, never across a pipeline run *)
  compute : Mutex.t;
      (* serializes pipeline execution: systhreads within a domain share
         Domain.DLS (the router's A* scratch, the pool's current key),
         so two interleaved pipelines in one domain would corrupt each
         other.  Parallelism still comes from the domain pool inside the
         single running pipeline. *)
  cache : Cache.t;
  mutable in_flight : int;  (* admitted cache-miss requests *)
  mutable served : int;
  mutable busy : int;
  mutable errors : int;
  mutable stopping : bool;
}

let locked st f =
  Mutex.lock st.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock st.lock) f

let log st fmt =
  Printf.ksprintf
    (fun m -> if st.cfg.verbose then Printf.eprintf "[serve] %s\n%!" m)
    fmt

(* ------------------------------------------------------------------ *)
(* Request execution                                                  *)
(* ------------------------------------------------------------------ *)

let circuit_of_input = function
  | Protocol.Qct { name; text } -> (
      match Tqec_circuit.Qct.parse_string ~name text with
      | c -> Ok c
      | exception Tqec_circuit.Qct.Parse_error { line; message } ->
          Error (Printf.sprintf "%s:%d: %s" name line message))
  | Protocol.Named { name; scale } -> (
      match Tqec_circuit.Suite.find name with
      | Some entry ->
          Ok (Tqec_circuit.Suite.scaled ~factor:(max 1 scale) entry)
      | None -> (
          match Tqec_circuit.Generator.tier_of_name name with
          | Some c ->
              if scale > 1 then
                Error
                  (Printf.sprintf
                     "scale applies to suite benchmarks only, not tier %S"
                     name)
              else Ok c
          | None -> Error (Printf.sprintf "unknown benchmark %S" name)))

let pipeline_config st (k : Protocol.knobs) =
  let jobs =
    match (k.Protocol.jobs, st.cfg.max_jobs) with
    | None, cap -> cap
    | Some j, None -> Some (max 1 j)
    | Some j, Some m -> Some (max 1 (min j m))
  in
  {
    Pipeline.default_config with
    variant = k.Protocol.variant;
    effort = k.Protocol.effort;
    seed = k.Protocol.seed;
    restarts = k.Protocol.restarts;
    jobs;
    early_stop_margin = k.Protocol.early_stop;
    partition = k.Protocol.partition;
    corridor_cells = k.Protocol.corridor;
    debug = k.Protocol.debug;
    (* explicit per request — a daemon never consults its own
       environment for request-scoped behavior *)
    verify = Some k.Protocol.verify;
  }

let stats_snapshot st =
  {
    Protocol.sv_hits = Cache.hits st.cache;
    sv_misses = Cache.misses st.cache;
    sv_entries = Cache.entries st.cache;
    sv_bytes = Cache.bytes st.cache;
    sv_served = st.served;
    sv_busy = st.busy;
    sv_errors = st.errors;
    sv_in_flight = st.in_flight;
    sv_capacity = st.cfg.capacity;
  }

(* Best-effort frame write: the client may have hung up mid-run, and a
   dead progress stream must not kill the pipeline computing a result
   we still want to cache. *)
let send_opt fd resp =
  try
    Protocol.write_frame fd (Protocol.encode_response resp);
    true
  with Unix.Unix_error _ | Protocol.Framing_error _ -> false

type admission = Hit of string * (string * float) list | Admitted | Refused of int

let run_compress st fd input knobs =
  match circuit_of_input input with
  | Error message ->
      locked st (fun () -> st.errors <- st.errors + 1);
      ignore (send_opt fd (Protocol.Failed { message }))
  | Ok circuit -> (
      (* mirror Pipeline.run's preprocess exactly: the fingerprint (and
         thus the cache) keys on the ICM the pipeline will actually
         consume, and the served bytes must match the CLI's *)
      let circuit =
        if Tqec_circuit.Circuit.is_clifford_t circuit then circuit
        else Tqec_circuit.Clifford_t.decompose circuit
      in
      let icm = Tqec_icm.Decompose.run circuit in
      let key = Fingerprint.of_icm icm ~knobs in
      let admission =
        locked st (fun () ->
            match Cache.find st.cache key with
            | Some (payload, timings) ->
                st.served <- st.served + 1;
                Hit (payload, timings)
            | None ->
                if st.in_flight >= st.cfg.capacity then begin
                  st.busy <- st.busy + 1;
                  Refused st.in_flight
                end
                else begin
                  st.in_flight <- st.in_flight + 1;
                  Admitted
                end)
      in
      match admission with
      | Hit (payload, timings) ->
          log st "hit %s (%s)" (String.sub key 0 8) icm.Tqec_icm.Icm.name;
          ignore
            (send_opt fd (Protocol.Result { payload; cached = true; timings }))
      | Refused in_flight ->
          log st "busy (%d/%d)" in_flight st.cfg.capacity;
          ignore
            (send_opt fd
               (Protocol.Busy { in_flight; capacity = st.cfg.capacity }))
      | Admitted ->
          let finish resp ok =
            locked st (fun () ->
                st.in_flight <- st.in_flight - 1;
                if ok then st.served <- st.served + 1
                else st.errors <- st.errors + 1);
            ignore (send_opt fd resp)
          in
          (match
             Mutex.lock st.compute;
             Fun.protect
               ~finally:(fun () -> Mutex.unlock st.compute)
               (fun () ->
                 if st.cfg.hold_ms > 0 then
                   (* deliberate stall: lets the overload smoke test pin
                      the daemon in the computing state deterministically *)
                   Thread.delay (float_of_int st.cfg.hold_ms /. 1000.);
                 (match st.cfg.fault with
                 | Some "icm-cycle" ->
                     (* planted cyclic ICM: drives the real pipeline
                        acyclicity gate end-to-end — the crafted ICM has
                        two T gadgets whose first/second-order
                        measurements mutually constrain each other, so
                        [Pipeline.run_icm] raises the structured
                        [Stage_failure] that the handler below maps to a
                        Failed response *)
                     ignore
                       (Pipeline.run_icm
                          ~config:(pipeline_config st knobs)
                          cyclic_icm)
                 | Some stage ->
                     (* planted stage failure: proves the daemon maps a
                        pipeline exception to a structured error response
                        and keeps serving, instead of dying *)
                     raise
                       (Pipeline.Stage_failure
                          { stage; message = "planted fault" })
                 | None -> ());
                 let on_stage stage seconds =
                   ignore
                     (send_opt fd (Protocol.Progress { stage; seconds }))
                 in
                 Pipeline.run_icm ~config:(pipeline_config st knobs)
                   ~on_stage icm)
           with
          | r ->
              let payload = Pipeline.summary r in
              let timings = r.Pipeline.timings in
              locked st (fun () ->
                  Cache.add st.cache key ~payload ~timings);
              log st "miss %s (%s) -> %d bytes" (String.sub key 0 8)
                icm.Tqec_icm.Icm.name (String.length payload);
              finish
                (Protocol.Result { payload; cached = false; timings })
                true
          | exception Pipeline.Stage_failure { stage; message } ->
              finish
                (Protocol.Failed
                   { message = Printf.sprintf "%s: %s" stage message })
                false
          | exception (Failure message | Invalid_argument message) ->
              finish (Protocol.Failed { message }) false
          | exception exn ->
              finish
                (Protocol.Failed { message = Printexc.to_string exn })
                false))

(* Wakes the accept loop so it can observe [stopping]. *)
let poke st =
  match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      (try Unix.connect fd (Unix.ADDR_UNIX st.cfg.socket_path)
       with Unix.Unix_error _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ())

let handle_connection st fd =
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      match Protocol.read_frame fd with
      | exception (End_of_file | Unix.Unix_error _) -> ()
      | exception Protocol.Framing_error m ->
          ignore (send_opt fd (Protocol.Failed { message = m }))
      | frame -> (
          match Protocol.decode_request frame with
          | Error message ->
              locked st (fun () -> st.errors <- st.errors + 1);
              ignore (send_opt fd (Protocol.Failed { message }))
          | Ok (Protocol.Compress { input; knobs }) ->
              run_compress st fd input knobs
          | Ok Protocol.Stats ->
              let s = locked st (fun () -> stats_snapshot st) in
              ignore (send_opt fd (Protocol.Stats_reply s))
          | Ok Protocol.Shutdown ->
              locked st (fun () -> st.stopping <- true);
              ignore (send_opt fd Protocol.Bye);
              poke st))

let run cfg =
  (* a client hanging up mid-write must be an EPIPE error on the write,
     not a process-killing signal *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let st =
    {
      cfg;
      lock = Mutex.create ();
      compute = Mutex.create ();
      cache = Cache.create ~budget:cfg.cache_bytes;
      in_flight = 0;
      served = 0;
      busy = 0;
      errors = 0;
      stopping = false;
    }
  in
  if Sys.file_exists cfg.socket_path then Unix.unlink cfg.socket_path;
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      try Unix.unlink cfg.socket_path with Unix.Unix_error _ | Sys_error _ -> ())
    (fun () ->
      Unix.bind sock (Unix.ADDR_UNIX cfg.socket_path);
      Unix.listen sock 64;
      log st "listening on %s (capacity=%d cache=%dB)" cfg.socket_path
        cfg.capacity cfg.cache_bytes;
      let rec accept_loop () =
        if not (locked st (fun () -> st.stopping)) then begin
          (match Unix.accept sock with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
          | exception Unix.Unix_error _ -> ()
          | fd, _ ->
              if locked st (fun () -> st.stopping) then (
                try Unix.close fd with Unix.Unix_error _ -> ())
              else begin
                (* a stuck client must not pin a handler thread forever *)
                (try
                   Unix.setsockopt_float fd Unix.SO_RCVTIMEO 30.0
                 with Unix.Unix_error _ -> ());
                ignore (Thread.create (fun () -> handle_connection st fd) ())
              end);
          accept_loop ()
        end
      in
      accept_loop ();
      (* drain: wait for every admitted request to answer its client
         before tearing the socket down *)
      let rec drain () =
        if locked st (fun () -> st.in_flight > 0) then begin
          Thread.delay 0.02;
          drain ()
        end
      in
      drain ();
      Mutex.lock st.compute;
      Mutex.unlock st.compute;
      log st "shut down (served=%d busy=%d errors=%d)" st.served st.busy
        st.errors;
      stats_snapshot st)
