module Icm = Tqec_icm.Icm

(* A fingerprint must be total over the semantic content of the run: two
   requests share a cache entry iff the pipeline is guaranteed to print
   the same bytes for both.  That means every ICM field participates
   (gate ORDER matters — CNOTs don't commute in general) and every
   result-affecting knob participates, while [jobs] and [debug] are
   deliberately excluded: the flow is deterministic in worker count and
   the debug trace goes to stderr, not the payload. *)

let add_int b i =
  Buffer.add_string b (string_of_int i);
  Buffer.add_char b ';'

let add_str b s =
  (* length prefix keeps concatenated strings unambiguous *)
  add_int b (String.length s);
  Buffer.add_string b s

let icm_bytes (icm : Icm.t) =
  let b = Buffer.create 4096 in
  add_str b icm.Icm.name;
  add_int b icm.Icm.n_lines;
  Array.iter
    (fun k ->
      add_int b
        (match k with
        | Icm.Init_z -> 0
        | Icm.Init_x -> 1
        | Icm.Inject_y -> 2
        | Icm.Inject_a -> 3))
    icm.Icm.inits;
  Buffer.add_char b '|';
  Array.iter
    (fun { Icm.control; target } ->
      add_int b control;
      add_int b target)
    icm.Icm.cnots;
  Buffer.add_char b '|';
  Array.iter
    (fun { Icm.m_line; m_basis; m_order } ->
      add_int b m_line;
      add_int b (match m_basis with Icm.Mz -> 0 | Icm.Mx -> 1);
      (match m_order with
      | Icm.Order_free -> add_int b (-1)
      | Icm.Order_first id ->
          add_int b 0;
          add_int b id
      | Icm.Order_second id ->
          add_int b 1;
          add_int b id))
    icm.Icm.meas;
  Buffer.add_char b '|';
  Array.iter
    (fun (g : Icm.t_gadget) ->
      add_int b g.Icm.t_id;
      add_int b g.Icm.t_wire;
      add_int b g.Icm.t_seq;
      List.iter (add_int b) g.Icm.t_lines;
      Buffer.add_char b '/';
      List.iter (add_int b) g.Icm.t_cnots;
      Buffer.add_char b '/';
      add_int b g.Icm.t_first_meas;
      List.iter (add_int b) g.Icm.t_second_meas)
    icm.Icm.t_gadgets;
  Buffer.add_char b '|';
  Array.iter (add_int b) icm.Icm.line_of_wire;
  Buffer.contents b

let knob_bytes (k : Protocol.knobs) =
  let b = Buffer.create 64 in
  add_str b (Protocol.variant_name k.Protocol.variant);
  add_str b (Protocol.effort_name k.Protocol.effort);
  add_int b k.Protocol.seed;
  add_int b k.Protocol.restarts;
  (match k.Protocol.early_stop with
  | None -> Buffer.add_string b "es:none;"
  | Some f -> Buffer.add_string b (Printf.sprintf "es:%.17g;" f));
  (match k.Protocol.partition with
  | None -> Buffer.add_string b "pt:none;"
  | Some v -> Buffer.add_string b (Printf.sprintf "pt:%d;" v));
  (match k.Protocol.corridor with
  | None -> Buffer.add_string b "cc:none;"
  | Some v -> Buffer.add_string b (Printf.sprintf "cc:%d;" v));
  Buffer.contents b

let of_icm icm ~knobs =
  Digest.to_hex (Digest.string (icm_bytes icm ^ "#" ^ knob_bytes knobs))
