(** Client side of the serve protocol: one request per connection.

    [call ~socket request] connects, sends the request, forwards any
    streamed progress frames to [on_progress], and returns the terminal
    response ([Result], [Busy], [Failed], [Stats_reply] or [Bye]).

    Raises {!Connect_error} when the socket cannot be reached, the
    server closes the connection before a terminal frame, or a response
    fails to decode.  Never raises on a {e structured} failure — a
    [Failed] response is a normal return value. *)

exception Connect_error of string

val call :
  socket:string ->
  ?on_progress:(stage:string -> seconds:float -> unit) ->
  Protocol.request ->
  Protocol.response
