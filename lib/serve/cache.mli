(** Byte-budgeted LRU cache of served compression results.

    Keys are {!Fingerprint} hex digests; values are the result payload
    plus its original per-stage timings (replayed to cache-hit clients
    so the response shape is uniform).  Accounting counts payload bytes
    against [budget]; when an insertion pushes past it, least-recently
    used entries are evicted until it fits.  A payload larger than the
    whole budget is not cached at all.

    Unsynchronized by design — the server calls every operation while
    holding its state lock. *)

type t

val create : budget:int -> t

(** [find t key] returns the cached payload and timings, counting a hit
    (and refreshing recency) or a miss. *)
val find : t -> string -> (string * (string * float) list) option

val add : t -> string -> payload:string -> timings:(string * float) list -> unit

(** Introspection for the [Stats] request and tests. *)

val entries : t -> int
val bytes : t -> int
val hits : t -> int
val misses : t -> int
val evictions : t -> int
