(* Byte-budgeted LRU with lazy deletion.

   Recency lives in a FIFO queue of (key, stamp) pairs; each touch pushes
   a fresh stamp and bumps the per-key counter, so stale queue entries
   are recognized (stamp mismatch) and discarded when they surface during
   eviction.  This keeps every operation O(1) amortized without a
   hand-rolled doubly-linked list.  The structure is deliberately
   unsynchronized: the server only calls it while holding its state
   lock. *)

type entry = {
  e_payload : string;
  e_timings : (string * float) list;
}

type t = {
  budget : int;  (* payload bytes; <= 0 disables caching *)
  table : (string, entry) Hashtbl.t;
  stamps : (string, int) Hashtbl.t;  (* key -> current stamp *)
  order : (string * int) Queue.t;  (* oldest first, may hold stale pairs *)
  mutable bytes : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ~budget =
  {
    budget;
    table = Hashtbl.create 64;
    stamps = Hashtbl.create 64;
    order = Queue.create ();
    bytes = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let entry_bytes e = String.length e.e_payload

let touch t key =
  let stamp =
    match Hashtbl.find_opt t.stamps key with Some s -> s + 1 | None -> 0
  in
  Hashtbl.replace t.stamps key stamp;
  Queue.push (key, stamp) t.order

let find t key =
  match Hashtbl.find_opt t.table key with
  | Some e ->
      t.hits <- t.hits + 1;
      touch t key;
      Some (e.e_payload, e.e_timings)
  | None ->
      t.misses <- t.misses + 1;
      None

let remove_entry t key =
  match Hashtbl.find_opt t.table key with
  | None -> ()
  | Some e ->
      t.bytes <- t.bytes - entry_bytes e;
      Hashtbl.remove t.table key;
      Hashtbl.remove t.stamps key

let rec evict_one t =
  match Queue.take_opt t.order with
  | None -> ()
  | Some (key, stamp) -> (
      match Hashtbl.find_opt t.stamps key with
      | Some live when live = stamp ->
          remove_entry t key;
          t.evictions <- t.evictions + 1
      | _ -> evict_one t (* stale queue residue from an earlier touch *))

let add t key ~payload ~timings =
  let size = String.length payload in
  (* An oversized payload would evict the whole cache and still not fit;
     serve it uncached instead. *)
  if size <= t.budget then begin
    remove_entry t key;
    Hashtbl.replace t.table key { e_payload = payload; e_timings = timings };
    t.bytes <- t.bytes + size;
    touch t key;
    while t.bytes > t.budget do
      evict_one t
    done
  end

let entries t = Hashtbl.length t.table
let bytes t = t.bytes
let hits t = t.hits
let misses t = t.misses
let evictions t = t.evictions
