(** Canonical cache keys for served compression results.

    [of_icm icm ~knobs] hashes a canonical serialization of the full ICM
    (every field, in order — CNOT order matters, so reordered
    non-commuting gates fingerprint differently) together with the
    result-affecting knobs.  [knobs.jobs] and [knobs.debug] are excluded
    by design: the pipeline is deterministic in worker count, and the
    debug trace never reaches the result payload — requests differing
    only there must share a cache entry.  [knobs.verify] is likewise
    excluded: validation checks the result, it doesn't change it. *)

val of_icm : Tqec_icm.Icm.t -> knobs:Protocol.knobs -> string
