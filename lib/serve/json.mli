(** A minimal JSON tree, printer and recursive-descent parser — just
    enough for the serve protocol, with no dependency beyond the
    standard library.

    Totality and round-tripping are the contract the wire format needs:
    [of_string (to_string v)] reproduces [v] for every value built from
    finite floats and arbitrary byte strings (control characters are
    emitted as [\u00XX] escapes; non-ASCII bytes pass through verbatim).
    Integral floats are printed with an explicit ".0" so the Int/Float
    distinction survives the round trip.  [of_string] never raises
    anything but {!Parse_error} on hostile input. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

val to_string : t -> string

(** [of_string s] parses [s]; raises {!Parse_error} (with a byte
    offset) on malformed input, including trailing garbage. *)
val of_string : string -> t

(** Accessors; [None] on a type mismatch or missing member. *)

val member : string -> t -> t option
val to_str : t -> string option
val to_int : t -> int option

(** Accepts [Int] too: the printer renders integral floats without a
    fraction, so a float field can come back as an integer token. *)
val to_float : t -> float option

val to_bool : t -> bool option
val to_list : t -> t list option
