module Pipeline = Tqec_compress.Pipeline
module Placer = Tqec_place.Placer

(* ------------------------------------------------------------------ *)
(* Framing: 4-byte big-endian length prefix + JSON payload            *)
(* ------------------------------------------------------------------ *)

(* Bounds hostile or corrupt length prefixes: a daemon must never let a
   single frame demand an unbounded allocation. *)
let max_frame = 1 lsl 26

exception Framing_error of string

let really_read fd buf ofs len =
  let got = ref 0 in
  while !got < len do
    match Unix.read fd buf (ofs + !got) (len - !got) with
    | 0 -> raise End_of_file
    | n -> got := !got + n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let really_write fd s =
  let buf = Bytes.of_string s in
  let len = Bytes.length buf in
  let sent = ref 0 in
  while !sent < len do
    match Unix.write fd buf !sent (len - !sent) with
    | n -> sent := !sent + n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let write_frame fd payload =
  let n = String.length payload in
  if n > max_frame then
    raise (Framing_error (Printf.sprintf "frame too large (%d bytes)" n));
  let hdr = Bytes.create 4 in
  Bytes.set hdr 0 (Char.chr ((n lsr 24) land 0xff));
  Bytes.set hdr 1 (Char.chr ((n lsr 16) land 0xff));
  Bytes.set hdr 2 (Char.chr ((n lsr 8) land 0xff));
  Bytes.set hdr 3 (Char.chr (n land 0xff));
  really_write fd (Bytes.to_string hdr ^ payload)

let read_frame fd =
  let hdr = Bytes.create 4 in
  really_read fd hdr 0 4;
  let b i = Char.code (Bytes.get hdr i) in
  let n = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
  if n > max_frame then
    raise (Framing_error (Printf.sprintf "frame too large (%d bytes)" n));
  let buf = Bytes.create n in
  really_read fd buf 0 n;
  Bytes.to_string buf

(* ------------------------------------------------------------------ *)
(* Requests                                                           *)
(* ------------------------------------------------------------------ *)

type input =
  | Qct of { name : string; text : string }
  | Named of { name : string; scale : int }

type knobs = {
  variant : Pipeline.variant;
  effort : Placer.effort;
  seed : int;
  restarts : int;
  jobs : int option;
  early_stop : float option;
  partition : int option;
  corridor : int option;
  debug : bool;
  verify : bool;
}

(* Mirrors `tqecc compress` flag defaults, so a request that sets
   nothing gets the bytes a bare CLI run would print. *)
let default_knobs =
  {
    variant = Pipeline.Full;
    effort = Placer.Quick;
    seed = 42;
    restarts = 1;
    jobs = None;
    early_stop = Pipeline.default_config.Pipeline.early_stop_margin;
    partition = None;
    corridor = None;
    debug = false;
    verify = false;
  }

type request =
  | Compress of { input : input; knobs : knobs }
  | Stats
  | Shutdown

type server_stats = {
  sv_hits : int;
  sv_misses : int;
  sv_entries : int;
  sv_bytes : int;
  sv_served : int;
  sv_busy : int;
  sv_errors : int;
  sv_in_flight : int;
  sv_capacity : int;
}

type response =
  | Progress of { stage : string; seconds : float }
  | Result of { payload : string; cached : bool; timings : (string * float) list }
  | Busy of { in_flight : int; capacity : int }
  | Failed of { message : string }
  | Stats_reply of server_stats
  | Bye

(* ------------------------------------------------------------------ *)
(* Codec                                                              *)
(* ------------------------------------------------------------------ *)

let variant_name = function
  | Pipeline.Full -> "full"
  | Pipeline.Dual_only -> "dual-only"
  | Pipeline.Modular_only -> "modular"

let variant_of_name = function
  | "full" -> Some Pipeline.Full
  | "dual-only" -> Some Pipeline.Dual_only
  | "modular" -> Some Pipeline.Modular_only
  | _ -> None

let effort_name = function
  | Placer.Quick -> "quick"
  | Placer.Normal -> "normal"
  | Placer.Full -> "full"

let opt_int = function None -> Json.Null | Some v -> Json.Int v
let opt_float = function None -> Json.Null | Some v -> Json.Float v

let knobs_fields k =
  [
    ("variant", Json.String (variant_name k.variant));
    ("effort", Json.String (effort_name k.effort));
    ("seed", Json.Int k.seed);
    ("restarts", Json.Int k.restarts);
    ("jobs", opt_int k.jobs);
    ("early_stop", opt_float k.early_stop);
    ("partition", opt_int k.partition);
    ("corridor", opt_int k.corridor);
    ("debug", Json.Bool k.debug);
    ("verify", Json.Bool k.verify);
  ]

let request_to_json = function
  | Compress { input; knobs } ->
      let input_fields =
        match input with
        | Qct { name; text } ->
            [ ("qct", Json.String text); ("name", Json.String name) ]
        | Named { name; scale } ->
            [ ("benchmark", Json.String name); ("scale", Json.Int scale) ]
      in
      Json.Obj
        (("op", Json.String "compress")
        :: (input_fields @ knobs_fields knobs))
  | Stats -> Json.Obj [ ("op", Json.String "stats") ]
  | Shutdown -> Json.Obj [ ("op", Json.String "shutdown") ]

let encode_request r = Json.to_string (request_to_json r)

(* Decoding is defensive end to end: a daemon parses bytes from
   arbitrary clients, so every branch returns [Error] rather than
   raising. *)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let req_field j key conv what =
  match Option.bind (Json.member key j) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or malformed %S field" what)

let opt_field j key conv what =
  match Json.member key j with
  | None | Some Json.Null -> Ok None
  | Some v -> (
      match conv v with
      | Some v -> Ok (Some v)
      | None -> Error (Printf.sprintf "malformed %S field" what))

let default_field j key conv ~default what =
  let* v = opt_field j key conv what in
  Ok (Option.value ~default v)

let knobs_of_json j =
  let d = default_knobs in
  let* variant =
    default_field j "variant"
      (fun v -> Option.bind (Json.to_str v) variant_of_name)
      ~default:d.variant "variant"
  in
  let* effort =
    default_field j "effort"
      (fun v -> Option.bind (Json.to_str v) Placer.effort_of_string)
      ~default:d.effort "effort"
  in
  let* seed = default_field j "seed" Json.to_int ~default:d.seed "seed" in
  let* restarts =
    default_field j "restarts" Json.to_int ~default:d.restarts "restarts"
  in
  let* jobs = opt_field j "jobs" Json.to_int "jobs" in
  (* [early_stop] distinguishes absent (CLI default margin) from an
     explicit null (margin disabled), so it cannot go through
     [opt_field]. *)
  let* early_stop =
    match Json.member "early_stop" j with
    | None -> Ok d.early_stop
    | Some Json.Null -> Ok None
    | Some v -> (
        match Json.to_float v with
        | Some f -> Ok (Some f)
        | None -> Error "malformed \"early_stop\" field")
  in
  let* partition = opt_field j "partition" Json.to_int "partition" in
  let* corridor = opt_field j "corridor" Json.to_int "corridor" in
  let* debug = default_field j "debug" Json.to_bool ~default:false "debug" in
  let* verify = default_field j "verify" Json.to_bool ~default:false "verify" in
  if restarts < 1 then Error "restarts must be >= 1"
  else if seed < 0 then Error "seed must be non-negative"
  else
    Ok
      { variant; effort; seed; restarts; jobs; early_stop; partition;
        corridor; debug; verify }

let input_of_json j =
  match (Json.member "qct" j, Json.member "benchmark" j) with
  | Some _, Some _ -> Error "request carries both \"qct\" and \"benchmark\""
  | Some q, None -> (
      match Json.to_str q with
      | None -> Error "malformed \"qct\" field"
      | Some text ->
          let* name =
            default_field j "name" Json.to_str ~default:"request" "name"
          in
          Ok (Qct { name; text }))
  | None, Some b -> (
      match Json.to_str b with
      | None -> Error "malformed \"benchmark\" field"
      | Some name ->
          let* scale = default_field j "scale" Json.to_int ~default:1 "scale" in
          if scale < 1 then Error "scale must be >= 1"
          else Ok (Named { name; scale }))
  | None, None -> Error "request carries neither \"qct\" nor \"benchmark\""

let request_of_json j =
  match Option.bind (Json.member "op" j) Json.to_str with
  | Some "compress" ->
      let* input = input_of_json j in
      let* knobs = knobs_of_json j in
      Ok (Compress { input; knobs })
  | Some "stats" -> Ok Stats
  | Some "shutdown" -> Ok Shutdown
  | Some op -> Error (Printf.sprintf "unknown op %S" op)
  | None -> Error "missing \"op\" field"

let decode_request s =
  match Json.of_string s with
  | j -> request_of_json j
  | exception Json.Parse_error m -> Error ("malformed JSON: " ^ m)

let response_to_json = function
  | Progress { stage; seconds } ->
      Json.Obj
        [
          ("type", Json.String "progress");
          ("stage", Json.String stage);
          ("seconds", Json.Float seconds);
        ]
  | Result { payload; cached; timings } ->
      Json.Obj
        [
          ("type", Json.String "result");
          ("payload", Json.String payload);
          ("cached", Json.Bool cached);
          ("timings",
           Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) timings));
        ]
  | Busy { in_flight; capacity } ->
      Json.Obj
        [
          ("type", Json.String "busy");
          ("in_flight", Json.Int in_flight);
          ("capacity", Json.Int capacity);
        ]
  | Failed { message } ->
      Json.Obj
        [ ("type", Json.String "error"); ("message", Json.String message) ]
  | Stats_reply s ->
      Json.Obj
        [
          ("type", Json.String "stats");
          ("hits", Json.Int s.sv_hits);
          ("misses", Json.Int s.sv_misses);
          ("entries", Json.Int s.sv_entries);
          ("bytes", Json.Int s.sv_bytes);
          ("served", Json.Int s.sv_served);
          ("busy", Json.Int s.sv_busy);
          ("errors", Json.Int s.sv_errors);
          ("in_flight", Json.Int s.sv_in_flight);
          ("capacity", Json.Int s.sv_capacity);
        ]
  | Bye -> Json.Obj [ ("type", Json.String "bye") ]

let encode_response r = Json.to_string (response_to_json r)

let response_of_json j =
  match Option.bind (Json.member "op" j) Json.to_str with
  | Some _ -> Error "a request, not a response"
  | None -> (
      match Option.bind (Json.member "type" j) Json.to_str with
      | Some "progress" ->
          let* stage = req_field j "stage" Json.to_str "stage" in
          let* seconds = req_field j "seconds" Json.to_float "seconds" in
          Ok (Progress { stage; seconds })
      | Some "result" ->
          let* payload = req_field j "payload" Json.to_str "payload" in
          let* cached = req_field j "cached" Json.to_bool "cached" in
          let* timings =
            match Json.member "timings" j with
            | Some (Json.Obj fields) ->
                let rec conv acc = function
                  | [] -> Ok (List.rev acc)
                  | (k, v) :: rest -> (
                      match Json.to_float v with
                      | Some f -> conv ((k, f) :: acc) rest
                      | None -> Error "malformed \"timings\" entry")
                in
                conv [] fields
            | None | Some Json.Null -> Ok []
            | Some _ -> Error "malformed \"timings\" field"
          in
          Ok (Result { payload; cached; timings })
      | Some "busy" ->
          let* in_flight = req_field j "in_flight" Json.to_int "in_flight" in
          let* capacity = req_field j "capacity" Json.to_int "capacity" in
          Ok (Busy { in_flight; capacity })
      | Some "error" ->
          let* message = req_field j "message" Json.to_str "message" in
          Ok (Failed { message })
      | Some "stats" ->
          let i k = req_field j k Json.to_int k in
          let* sv_hits = i "hits" in
          let* sv_misses = i "misses" in
          let* sv_entries = i "entries" in
          let* sv_bytes = i "bytes" in
          let* sv_served = i "served" in
          let* sv_busy = i "busy" in
          let* sv_errors = i "errors" in
          let* sv_in_flight = i "in_flight" in
          let* sv_capacity = i "capacity" in
          Ok
            (Stats_reply
               { sv_hits; sv_misses; sv_entries; sv_bytes; sv_served;
                 sv_busy; sv_errors; sv_in_flight; sv_capacity })
      | Some "bye" -> Ok Bye
      | Some t -> Error (Printf.sprintf "unknown response type %S" t)
      | None -> Error "missing \"type\" field")

let decode_response s =
  match Json.of_string s with
  | j -> response_of_json j
  | exception Json.Parse_error m -> Error ("malformed JSON: " ^ m)
