(** Wire protocol for [tqecc serve]: 4-byte big-endian length-prefixed
    JSON frames over a unix-domain socket, plus the request/response
    schema and its codec.

    The codec is the trust boundary of the daemon.  Encoding is total;
    decoding never raises — every malformed byte sequence comes back as
    [Error message] so the server can answer with a structured error
    response instead of dying.  [decode_request (encode_request r) = Ok r]
    for every request (and likewise for responses); the fuzz harness
    round-trips random cases through it. *)

(** {1 Framing} *)

exception Framing_error of string

(** Frames above this size (64 MiB) are rejected on both read and write:
    a corrupt or hostile length prefix must never demand an unbounded
    allocation from a long-running process. *)
val max_frame : int

(** [write_frame fd payload] writes the length prefix and payload,
    restarting on [EINTR].  Raises {!Framing_error} on oversized
    payloads and [Unix.Unix_error] (e.g. [EPIPE]) on a dead peer. *)
val write_frame : Unix.file_descr -> string -> unit

(** [read_frame fd] reads one complete frame.  Raises [End_of_file] on
    a clean close mid-frame, {!Framing_error} on an oversized length. *)
val read_frame : Unix.file_descr -> string

(** {1 Requests} *)

type input =
  | Qct of { name : string; text : string }
      (** an inline circuit in [.qct] text form *)
  | Named of { name : string; scale : int }
      (** a named suite benchmark (or [tier-x<k>] generator instance),
          optionally scaled as by [tqecc compress --scale] *)

(** The result-affecting pipeline knobs a request may carry.  [jobs] and
    [debug] do not affect the result bytes (the flow is deterministic in
    worker count; debug only traces) — the cache key ignores them. *)
type knobs = {
  variant : Tqec_compress.Pipeline.variant;
  effort : Tqec_place.Placer.effort;
  seed : int;
  restarts : int;
  jobs : int option;
  early_stop : float option;
  partition : int option;
  corridor : int option;
  debug : bool;
  verify : bool;
      (** run the whole-pipeline translation validation before
          answering; a violation becomes a structured error response *)
}

(** Mirrors the [tqecc compress] flag defaults, so a request that sets
    nothing receives exactly the bytes a bare CLI run prints. *)
val default_knobs : knobs

type request =
  | Compress of { input : input; knobs : knobs }
  | Stats
  | Shutdown

(** {1 Responses} *)

type server_stats = {
  sv_hits : int;
  sv_misses : int;
  sv_entries : int;
  sv_bytes : int;
  sv_served : int;
  sv_busy : int;
  sv_errors : int;
  sv_in_flight : int;
  sv_capacity : int;
}

type response =
  | Progress of { stage : string; seconds : float }
      (** streamed as each pipeline stage completes; zero or more
          precede the terminal frame *)
  | Result of { payload : string; cached : bool; timings : (string * float) list }
      (** [payload] is byte-identical to [tqecc compress --porcelain]
          output for the same (input, seed, knobs) *)
  | Busy of { in_flight : int; capacity : int }
      (** admission control refused the request; retry later *)
  | Failed of { message : string }
  | Stats_reply of server_stats
  | Bye  (** acknowledges [Shutdown] *)

(** {1 Codec} *)

val encode_request : request -> string
val decode_request : string -> (request, string) result
val encode_response : response -> string
val decode_response : string -> (response, string) result

(** [variant_name] / [variant_of_name] use the CLI spellings
    ["full" | "dual-only" | "modular"]. *)

val variant_name : Tqec_compress.Pipeline.variant -> string
val variant_of_name : string -> Tqec_compress.Pipeline.variant option
val effort_name : Tqec_place.Placer.effort -> string
