exception Connect_error of string

let with_connection ~socket f =
  let fd =
    match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
    | fd -> fd
    | exception Unix.Unix_error (e, _, _) ->
        raise (Connect_error (Unix.error_message e))
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      (match Unix.connect fd (Unix.ADDR_UNIX socket) with
      | () -> ()
      | exception Unix.Unix_error (e, _, _) ->
          raise
            (Connect_error
               (Printf.sprintf "%s: %s" socket (Unix.error_message e))));
      f fd)

let call ~socket ?(on_progress = fun ~stage:_ ~seconds:_ -> ()) request =
  with_connection ~socket (fun fd ->
      Protocol.write_frame fd (Protocol.encode_request request);
      let rec await () =
        let frame =
          match Protocol.read_frame fd with
          | frame -> frame
          | exception End_of_file ->
              raise (Connect_error "server closed the connection early")
        in
        match Protocol.decode_response frame with
        | Error m -> raise (Connect_error ("malformed response: " ^ m))
        | Ok (Protocol.Progress { stage; seconds }) ->
            on_progress ~stage ~seconds;
            await ()
        | Ok terminal -> terminal
      in
      await ())
