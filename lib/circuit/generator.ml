type spec = {
  name : string;
  n_wires : int;
  n_toffoli : int;
  n_cnot : int;
  n_not : int;
  n_unused : int;
  seed : int;
}

(* Draw [k] distinct wires in [0, active) with a locality bias: the first
   wire is uniform; subsequent wires stay within a small window around it
   80% of the time, matching the mostly-local structure of arithmetic and
   symmetric-function reversible benchmarks. *)
let distinct_wires rng active k =
  if k > active then invalid_arg "Generator: more wires requested than exist";
  let base = Tqec_util.Rng.int rng active in
  let near w =
    let window = max 2 (active / 4) in
    let lo = max 0 (w - window) and hi = min (active - 1) (w + window) in
    Tqec_util.Rng.int_in rng lo hi
  in
  let rec draw acc remaining =
    if remaining = 0 then List.rev acc
    else
      let candidate =
        if Tqec_util.Rng.float rng < 0.8 then near base
        else Tqec_util.Rng.int rng active
      in
      if List.mem candidate acc then draw acc remaining
      else draw (candidate :: acc) (remaining - 1)
  in
  draw [ base ] (k - 1)

(* Rewire gates until every wire in [0, active) is touched by a CNOT or
   Toffoli: each still-unused wire replaces the control of a gate whose
   other wires are all multiply-used. *)
let ensure_coverage active gates =
  let usage = Array.make active 0 in
  let touch g =
    List.iter
      (fun q -> usage.(q) <- usage.(q) + 1)
      (Gate.qubits g)
  in
  let untouch g =
    List.iter (fun q -> usage.(q) <- usage.(q) - 1) (Gate.qubits g)
  in
  let gates = Array.of_list gates in
  Array.iter
    (fun g -> match (g : Gate.t) with Cnot _ | Toffoli _ -> touch g | _ -> ())
    gates;
  let rewire wire =
    (* find a CNOT/Toffoli whose wires all have usage >= 2 and which does
       not already use [wire]; swap its control for [wire]. *)
    let fix i =
      match gates.(i) with
      | Gate.Cnot { control; target }
        when usage.(control) >= 2 && usage.(target) >= 2
             && control <> wire && target <> wire ->
          untouch gates.(i);
          gates.(i) <- Gate.Cnot { control = wire; target };
          touch gates.(i);
          true
      | Gate.Toffoli { c1; c2; target }
        when usage.(c1) >= 2 && usage.(c2) >= 2 && usage.(target) >= 2
             && c1 <> wire && c2 <> wire && target <> wire ->
          untouch gates.(i);
          gates.(i) <- Gate.Toffoli { c1 = wire; c2; target };
          touch gates.(i);
          true
      | _ -> false
    in
    let rec scan i = i < Array.length gates && (fix i || scan (i + 1)) in
    ignore (scan 0)
  in
  for wire = 0 to active - 1 do
    if usage.(wire) = 0 then rewire wire
  done;
  Array.to_list gates

let generate spec =
  let active = spec.n_wires - spec.n_unused in
  if active < 3 && spec.n_toffoli > 0 then
    invalid_arg "Generator.generate: Toffoli needs >= 3 active wires";
  if active < 2 && spec.n_cnot > 0 then
    invalid_arg "Generator.generate: CNOT needs >= 2 active wires";
  if active < 1 && spec.n_not > 0 then
    invalid_arg "Generator.generate: NOT needs an active wire";
  let rng = Tqec_util.Rng.create spec.seed in
  let kinds =
    Array.concat
      [
        Array.make spec.n_toffoli `Toffoli;
        Array.make spec.n_cnot `Cnot;
        Array.make spec.n_not `Not;
      ]
  in
  Tqec_util.Rng.shuffle rng kinds;
  let gate_of = function
    | `Toffoli -> (
        match distinct_wires rng active 3 with
        | [ c1; c2; target ] -> Gate.Toffoli { c1; c2; target }
        (* partial: distinct_wires returns exactly as many wires as
           asked; [active >= 3] is checked by the caller *)
        | _ -> assert false)
    | `Cnot -> (
        match distinct_wires rng active 2 with
        | [ control; target ] -> Gate.Cnot { control; target }
        (* partial: same distinct_wires length invariant, two wires *)
        | _ -> assert false)
    | `Not -> Gate.X (Tqec_util.Rng.int rng active)
  in
  let gates = Array.to_list (Array.map gate_of kinds) in
  let gates = if active > 0 then ensure_coverage active gates else gates in
  Circuit.make ~name:spec.name ~n_qubits:spec.n_wires gates

(* Scale tiers: a family of synthetic instances with the suite's gate
   mix but a size dial, for the memory/wall-time scaling curves.  The
   per-factor gate counts keep the Toffoli:CNOT:NOT ratio of the mid
   suite (~1:7.5:0.5) while wires grow with the square root of the
   gate count, so routed congestion stays comparable across tiers. *)
let scale_tier ~factor ?seed () =
  let f = max 1 factor in
  let seed = match seed with Some s -> s | None -> 4099 + f in
  generate
    {
      name = Printf.sprintf "tier-x%d" f;
      n_wires = 8 + (2 * f);
      n_toffoli = 4 * f;
      n_cnot = 30 * f;
      n_not = 2 * f;
      n_unused = 0;
      seed;
    }

(* Largest accepted tier factor: far beyond anything a machine can run
   (tier-x100000 is ~3.6M gates) but small enough that a parsed factor
   can never overflow the gate-count arithmetic in [scale_tier]. *)
let max_tier_factor = 100_000

(* Strict decimal parse: plain digits only.  [int_of_string_opt] also
   accepts "0x10", "0b1", "1_0" and a leading sign — none of which a
   "tier-x<k>" instance name should smuggle in — and arbitrarily long
   digit strings overflow to [None] rather than raising. *)
let tier_factor_of_name name =
  let prefix = "tier-x" in
  let plen = String.length prefix in
  if String.length name > plen && String.sub name 0 plen = prefix then
    let suffix = String.sub name plen (String.length name - plen) in
    let all_digits =
      String.for_all (fun c -> c >= '0' && c <= '9') suffix
    in
    if not all_digits then None
    else
      match int_of_string_opt suffix with
      | Some f when f >= 1 && f <= max_tier_factor -> Some f
      | Some _ | None -> None
  else None

(* "tier-x<k>" -> the tier circuit; anything else -> None.  Lets the
   CLI accept tier names wherever it accepts suite benchmark names.
   Malformed suffixes ("tier-x0", "tier-x-3", non-numeric, overflowing
   or radix-prefixed digits) are rejected with [None], never an
   exception. *)
let tier_of_name name =
  match tier_factor_of_name name with
  | Some f -> Some (scale_tier ~factor:f ())
  | None -> None

(* Parameterized Clifford+T generation: per-kind weights plus an idle
   tail, covering the degenerate corners of the parameter space the
   fixed-mix [random_clifford_t] cannot reach (all-T streams, CNOT-free
   circuits, mostly-idle registers).  Weights need not be normalized;
   all-zero weights degenerate to all-T. *)
type mix = {
  w_h : int;
  w_s : int;
  w_t : int;
  w_x : int;
  w_cnot : int;
}

let uniform_mix = { w_h = 2; w_s = 2; w_t = 2; w_x = 2; w_cnot = 2 }
let all_t_mix = { w_h = 0; w_s = 0; w_t = 1; w_x = 0; w_cnot = 0 }

let random_clifford_t_mix ~seed ~n_qubits ~n_idle ~n_gates ~mix =
  if n_qubits < 1 then
    invalid_arg "Generator.random_clifford_t_mix: n_qubits must be positive";
  let n_idle = Tqec_util.Stats.clamp 0 (n_qubits - 1) n_idle in
  let active = n_qubits - n_idle in
  let rng = Tqec_util.Rng.create seed in
  let total =
    mix.w_h + mix.w_s + mix.w_t + mix.w_x
    + if active >= 2 then mix.w_cnot else 0
  in
  let wire () = Tqec_util.Rng.int rng active in
  let gate () =
    if total = 0 then Gate.T (wire ())
    else begin
      let r = Tqec_util.Rng.int rng total in
      if r < mix.w_h then Gate.H (wire ())
      else if r < mix.w_h + mix.w_s then
        if Tqec_util.Rng.float rng < 0.5 then Gate.S (wire ())
        else Gate.Sdg (wire ())
      else if r < mix.w_h + mix.w_s + mix.w_t then
        if Tqec_util.Rng.float rng < 0.5 then Gate.T (wire ())
        else Gate.Tdg (wire ())
      else if r < mix.w_h + mix.w_s + mix.w_t + mix.w_x then
        if Tqec_util.Rng.float rng < 0.5 then Gate.X (wire ())
        else Gate.Z (wire ())
      else begin
        let control = wire () in
        let rec pick () =
          let t = wire () in
          if t = control then pick () else t
        in
        Gate.Cnot { control; target = pick () }
      end
    end
  in
  Circuit.make
    ~name:(Printf.sprintf "fuzz-%d" seed)
    ~n_qubits
    (List.init n_gates (fun _ -> gate ()))

let add_idle_qubit (c : Circuit.t) =
  Circuit.make ~name:(c.Circuit.name ^ "+idle")
    ~n_qubits:(c.Circuit.n_qubits + 1) c.Circuit.gates

let commuting g1 g2 =
  let q1 = Gate.qubits g1 and q2 = Gate.qubits g2 in
  not (List.exists (fun q -> List.mem q q2) q1)

let permute_commuting ~seed ~swaps (c : Circuit.t) =
  let gates = Array.of_list c.Circuit.gates in
  let n = Array.length gates in
  let rng = Tqec_util.Rng.create seed in
  let swapped = ref 0 in
  if n >= 2 then
    (* bounded sweep: random adjacent positions, swap when the pair acts
       on disjoint wire sets (such gates commute, and the swap provably
       preserves the per-wire gate order) *)
    for _ = 1 to max 0 swaps * 4 do
      if !swapped < max 0 swaps then begin
        let i = Tqec_util.Rng.int rng (n - 1) in
        if commuting gates.(i) gates.(i + 1) then begin
          let t = gates.(i) in
          gates.(i) <- gates.(i + 1);
          gates.(i + 1) <- t;
          incr swapped
        end
      end
    done;
  Circuit.make ~name:c.Circuit.name ~n_qubits:c.Circuit.n_qubits
    (Array.to_list gates)

let random_clifford_t ~seed ~n_qubits ~n_gates =
  let rng = Tqec_util.Rng.create seed in
  let gate () =
    match Tqec_util.Rng.int rng 8 with
    | 0 -> Gate.H (Tqec_util.Rng.int rng n_qubits)
    | 1 -> Gate.S (Tqec_util.Rng.int rng n_qubits)
    | 2 -> Gate.T (Tqec_util.Rng.int rng n_qubits)
    | 3 -> Gate.Tdg (Tqec_util.Rng.int rng n_qubits)
    | 4 -> Gate.X (Tqec_util.Rng.int rng n_qubits)
    | 5 -> Gate.Z (Tqec_util.Rng.int rng n_qubits)
    | _ ->
        if n_qubits < 2 then Gate.T (Tqec_util.Rng.int rng n_qubits)
        else
          let control = Tqec_util.Rng.int rng n_qubits in
          let rec pick () =
            let t = Tqec_util.Rng.int rng n_qubits in
            if t = control then pick () else t
          in
          Gate.Cnot { control; target = pick () }
  in
  Circuit.make ~name:(Printf.sprintf "random-%d" seed) ~n_qubits
    (List.init n_gates (fun _ -> gate ()))
