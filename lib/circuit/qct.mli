(** Reader/writer for a minimal Clifford+T circuit text format ([.qct]).

    RevLib's [.real] format only carries reversible gates, so shrunk
    fuzzing reproducers — arbitrary Clifford+T circuits — need their own
    fixture syntax.  A [.qct] file is line-oriented:

    {v
    # optional comments
    qubits 3
    h 0
    s 1
    sdg 1
    t 2
    tdg 2
    x 0
    z 1
    cnot 0 2
    v}

    [qubits N] must precede the first gate; gate lines are a lowercase
    mnemonic plus wire indices in [0, N).  Blank lines and [#] comments
    are ignored.  The format round-trips exactly through
    {!to_string} / {!parse_string} and is accepted by the [tqecc] CLI
    wherever a circuit file is expected. *)

exception Parse_error of { line : int; message : string }

(** [parse_string ~name s] parses [.qct] text.
    @raise Parse_error on malformed input. *)
val parse_string : name:string -> string -> Circuit.t

(** [parse_file path] parses a [.qct] file, naming the circuit after the
    file's basename. *)
val parse_file : string -> Circuit.t

(** [to_string c] prints [c] in [.qct] syntax.  Only Clifford+T gates
    ([H], [S]/[Sdg], [T]/[Tdg], [X], [Z], [CNOT]) are printable.
    @raise Invalid_argument if the circuit contains other gates. *)
val to_string : Circuit.t -> string

val write_file : string -> Circuit.t -> unit
