let mct_ancillae controls = max 0 (List.length controls - 2)

let ancillae_needed (c : Circuit.t) =
  List.fold_left
    (fun acc g ->
      match (g : Gate.t) with
      | Mct { controls; _ } -> max acc (mct_ancillae controls)
      | _ -> acc)
    0 c.gates

(* V-chain expansion of a multi-control Toffoli.  Ancillae are clean and
   shared across gates (each expansion uncomputes its ancillae). *)
let expand_mct ~first_ancilla controls target =
  match controls with
  | [] | [ _ ] | [ _; _ ] -> invalid_arg "Mct.expand_mct: needs >= 3 controls"
  | c0 :: c1 :: rest ->
      let compute, top_anc, _ =
        List.fold_left
          (fun (acc, prev, anc) ctrl ->
            let g = Gate.Toffoli { c1 = ctrl; c2 = prev; target = anc } in
            (g :: acc, anc, anc + 1))
          ([ Gate.Toffoli { c1 = c0; c2 = c1; target = first_ancilla } ],
           first_ancilla, first_ancilla + 1)
          rest
      in
      let compute = List.rev compute in
      (* The last chain Toffoli targets the real target instead of a fresh
         ancilla: drop it and retarget. *)
      let rec retarget = function
        (* partial: the chain always ends in at least one Toffoli for
           [k >= 3] controls, which is the only path into this branch *)
        | [] -> assert false
        | [ Gate.Toffoli { c1; c2; _ } ] ->
            [ Gate.Toffoli { c1; c2; target } ]
        | g :: gs -> g :: retarget gs
      in
      let compute = retarget compute in
      let uncompute =
        List.rev
          (List.filter
             (fun g ->
               match (g : Gate.t) with
               | Toffoli { target = t; _ } -> t <> target
               | _ -> true)
             compute)
      in
      ignore top_anc;
      compute @ uncompute

let lower (c : Circuit.t) =
  let extra = ancillae_needed c in
  let first_ancilla = c.n_qubits in
  let lower_gate g =
    match (g : Gate.t) with
    | Swap (a, b) ->
        [
          Gate.Cnot { control = a; target = b };
          Gate.Cnot { control = b; target = a };
          Gate.Cnot { control = a; target = b };
        ]
    | Fredkin { control; t1; t2 } ->
        [
          Gate.Cnot { control = t2; target = t1 };
          Gate.Toffoli { c1 = control; c2 = t1; target = t2 };
          Gate.Cnot { control = t2; target = t1 };
        ]
    | Mct { controls; target } -> expand_mct ~first_ancilla controls target
    | g -> [ g ]
  in
  Circuit.make ~name:c.name ~n_qubits:(c.n_qubits + extra)
    (List.concat_map lower_gate c.gates)
