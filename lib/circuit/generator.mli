(** Seeded synthetic reversible-circuit generator.

    The paper evaluates on eight RevLib circuits that are not shipped
    here; this generator produces circuits with the same wire count and
    the same Toffoli / CNOT composition, so that after {!Clifford_t} and
    ICM decomposition the Table-1 statistics (#Qubits, #CNOTs, #|Y>,
    #|A>) match the paper exactly (see {!Suite}).

    Gate wiring follows a locality profile typical of reversible
    benchmarks: most gates act on nearby wires, a fraction are long
    range. *)

type spec = {
  name : string;
  n_wires : int;  (** wires of the reversible circuit *)
  n_toffoli : int;
  n_cnot : int;
  n_not : int;
  n_unused : int;
      (** trailing wires no gate touches (e.g. constant lines; add16_174
          and cycle17_3_112 have one, visible in the paper's canonical
          volumes which count one row fewer than #Qubits) *)
  seed : int;
}

(** [generate spec] builds the circuit; deterministic in [spec].  Every
    wire outside the unused tail is guaranteed to be touched by at least
    one CNOT or Toffoli. *)
val generate : spec -> Circuit.t

(** [scale_tier ~factor ()] is the synthetic scaling-curve instance
    ["tier-x<factor>"]: [4*factor] Toffolis, [30*factor] CNOTs,
    [2*factor] NOTs on [8 + 2*factor] wires, seeded [4099 + factor]
    unless [?seed] overrides it.  The gate mix matches the mid suite, so
    per-module statistics stay comparable as the size dial grows; the
    scale-tier benchmarks sweep [factor] to produce memory/wall-time
    curves far beyond the paper suite. *)
val scale_tier : factor:int -> ?seed:int -> unit -> Circuit.t

(** [tier_of_name "tier-x<k>"] builds that tier; [None] for any other
    string — the hook that lets the CLI accept tier names wherever it
    accepts suite benchmark names. *)
val tier_of_name : string -> Circuit.t option

(** [random_clifford_t ~seed ~n_qubits ~n_gates] builds a random
    Clifford+T circuit (used by property tests and small experiments). *)
val random_clifford_t : seed:int -> n_qubits:int -> n_gates:int -> Circuit.t
