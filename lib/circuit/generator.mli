(** Seeded synthetic reversible-circuit generator.

    The paper evaluates on eight RevLib circuits that are not shipped
    here; this generator produces circuits with the same wire count and
    the same Toffoli / CNOT composition, so that after {!Clifford_t} and
    ICM decomposition the Table-1 statistics (#Qubits, #CNOTs, #|Y>,
    #|A>) match the paper exactly (see {!Suite}).

    Gate wiring follows a locality profile typical of reversible
    benchmarks: most gates act on nearby wires, a fraction are long
    range. *)

type spec = {
  name : string;
  n_wires : int;  (** wires of the reversible circuit *)
  n_toffoli : int;
  n_cnot : int;
  n_not : int;
  n_unused : int;
      (** trailing wires no gate touches (e.g. constant lines; add16_174
          and cycle17_3_112 have one, visible in the paper's canonical
          volumes which count one row fewer than #Qubits) *)
  seed : int;
}

(** [generate spec] builds the circuit; deterministic in [spec].  Every
    wire outside the unused tail is guaranteed to be touched by at least
    one CNOT or Toffoli. *)
val generate : spec -> Circuit.t

(** [scale_tier ~factor ()] is the synthetic scaling-curve instance
    ["tier-x<factor>"]: [4*factor] Toffolis, [30*factor] CNOTs,
    [2*factor] NOTs on [8 + 2*factor] wires, seeded [4099 + factor]
    unless [?seed] overrides it.  The gate mix matches the mid suite, so
    per-module statistics stay comparable as the size dial grows; the
    scale-tier benchmarks sweep [factor] to produce memory/wall-time
    curves far beyond the paper suite. *)
val scale_tier : factor:int -> ?seed:int -> unit -> Circuit.t

(** Largest factor {!tier_factor_of_name} accepts (100_000, ~3.6M
    gates): beyond any runnable size, yet small enough that the parsed
    factor can never overflow the gate-count arithmetic. *)
val max_tier_factor : int

(** [tier_factor_of_name "tier-x<k>"] is [Some k] when the suffix is a
    plain decimal in [1, max_tier_factor]; [None] otherwise.  Malformed
    suffixes — ["tier-x0"], ["tier-x-3"], non-numeric, radix-prefixed
    (["tier-x0x10"]) or overflowing digit strings — are rejected with
    [None], never an exception. *)
val tier_factor_of_name : string -> int option

(** [tier_of_name "tier-x<k>"] builds that tier; [None] for any other
    string (including malformed tier suffixes, see
    {!tier_factor_of_name}) — the hook that lets the CLI accept tier
    names wherever it accepts suite benchmark names. *)
val tier_of_name : string -> Circuit.t option

(** [random_clifford_t ~seed ~n_qubits ~n_gates] builds a random
    Clifford+T circuit (used by property tests and small experiments). *)
val random_clifford_t : seed:int -> n_qubits:int -> n_gates:int -> Circuit.t

(** Gate-kind weights for {!random_clifford_t_mix}.  Weights are
    relative and need not be normalized; a kind with weight 0 never
    appears.  All-zero weights degenerate to an all-T stream. *)
type mix = {
  w_h : int;
  w_s : int;  (** split evenly between S and Sdg *)
  w_t : int;  (** split evenly between T and Tdg *)
  w_x : int;  (** split evenly between X and Z (Pauli frame updates) *)
  w_cnot : int;  (** ignored when fewer than 2 active qubits *)
}

val uniform_mix : mix
val all_t_mix : mix

(** [random_clifford_t_mix ~seed ~n_qubits ~n_idle ~n_gates ~mix] is the
    parameterized companion of {!random_clifford_t}: gates are drawn
    with the given kind weights and land only on the first
    [n_qubits - n_idle] wires, leaving an idle tail ([n_idle] is clamped
    to [[0, n_qubits - 1]]).  Reaches the degenerate corners the fixed
    mix cannot: all-T streams, CNOT-free circuits, mostly-idle
    registers, and (with [n_gates = 0]) gateless circuits.
    @raise Invalid_argument when [n_qubits < 1]. *)
val random_clifford_t_mix :
  seed:int -> n_qubits:int -> n_idle:int -> n_gates:int -> mix:mix -> Circuit.t

(** [add_idle_qubit c] appends one untouched wire (metamorphic-oracle
    transform: an idle wire must never increase per-qubit volume). *)
val add_idle_qubit : Circuit.t -> Circuit.t

(** [permute_commuting ~seed ~swaps c] applies up to [swaps] random
    adjacent transpositions of gates with disjoint wire support.  Such
    gates commute, so the permuted circuit computes the same unitary and
    has identical per-wire gate order — the metamorphic-oracle transform
    for schedule-invariance properties. *)
val permute_commuting : seed:int -> swaps:int -> Circuit.t -> Circuit.t
