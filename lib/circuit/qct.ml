exception Parse_error of { line : int; message : string }

let fail line fmt =
  Printf.ksprintf (fun message -> raise (Parse_error { line; message })) fmt

let split_words s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun w -> w <> "")

let strip_comment s =
  match String.index_opt s '#' with
  | Some i -> String.sub s 0 i
  | None -> s

let parse_string ~name text =
  let lines = String.split_on_char '\n' text in
  let n_qubits = ref None in
  let gates = ref [] in
  let wire lineno n s =
    match int_of_string_opt s with
    | Some q when q >= 0 && q < n -> q
    | Some q -> fail lineno "wire %d out of range [0, %d)" q n
    | None -> fail lineno "expected a wire index, got %S" s
  in
  List.iteri
    (fun i raw ->
      let lineno = i + 1 in
      let line = String.trim (strip_comment raw) in
      if line <> "" then
        match (split_words (String.lowercase_ascii line), !n_qubits) with
        | [ "qubits"; n ], None -> (
            match int_of_string_opt n with
            | Some v when v >= 1 -> n_qubits := Some v
            | _ -> fail lineno "qubits wants a positive count, got %S" n)
        | [ "qubits"; _ ], Some _ -> fail lineno "duplicate qubits directive"
        | _, None -> fail lineno "a qubits directive must precede the gates"
        | words, Some n -> (
            let w = wire lineno n in
            match words with
            | [ "h"; q ] -> gates := Gate.H (w q) :: !gates
            | [ "s"; q ] -> gates := Gate.S (w q) :: !gates
            | [ "sdg"; q ] -> gates := Gate.Sdg (w q) :: !gates
            | [ "t"; q ] -> gates := Gate.T (w q) :: !gates
            | [ "tdg"; q ] -> gates := Gate.Tdg (w q) :: !gates
            | [ "x"; q ] -> gates := Gate.X (w q) :: !gates
            | [ "z"; q ] -> gates := Gate.Z (w q) :: !gates
            | [ "cnot"; c; t ] ->
                let control = w c and target = w t in
                if control = target then
                  fail lineno "cnot control and target coincide";
                gates := Gate.Cnot { control; target } :: !gates
            | mnemonic :: _ -> fail lineno "unknown gate %S" mnemonic
            (* partial: blank lines are filtered before dispatch, so
               the token list is never empty here *)
            | [] -> assert false))
    lines;
  match !n_qubits with
  | None -> fail 0 "missing qubits directive"
  | Some n -> Circuit.make ~name ~n_qubits:n (List.rev !gates)

let parse_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  let name = Filename.remove_extension (Filename.basename path) in
  parse_string ~name text

let to_string (c : Circuit.t) =
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "# %s\n" c.Circuit.name);
  Buffer.add_string b (Printf.sprintf "qubits %d\n" c.Circuit.n_qubits);
  List.iter
    (fun g ->
      let line =
        match (g : Gate.t) with
        | H q -> Printf.sprintf "h %d" q
        | S q -> Printf.sprintf "s %d" q
        | Sdg q -> Printf.sprintf "sdg %d" q
        | T q -> Printf.sprintf "t %d" q
        | Tdg q -> Printf.sprintf "tdg %d" q
        | X q -> Printf.sprintf "x %d" q
        | Z q -> Printf.sprintf "z %d" q
        | Cnot { control; target } -> Printf.sprintf "cnot %d %d" control target
        | Swap _ | Toffoli _ | Fredkin _ | Mct _ ->
            invalid_arg "Qct.to_string: only Clifford+T gates are printable"
      in
      Buffer.add_string b line;
      Buffer.add_char b '\n')
    c.Circuit.gates;
  Buffer.contents b

let write_file path c =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string c))
