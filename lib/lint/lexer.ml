type token = { t_text : string; t_line : int; t_col : int; t_offset : int }

type comment = {
  c_text : string;
  c_start_line : int;
  c_end_line : int;
  c_offset : int;
}

type t = { tokens : token array; comments : comment array }

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c =
  is_ident_start c || (c >= '0' && c <= '9') || c = '\''

let is_digit c = c >= '0' && c <= '9'

(* Number continuation: digits, hex/octal/binary markers, underscores,
   exponent letters, width suffixes and the decimal dot.  Deliberately
   loose — a lint lexer only needs to move past the literal without
   misclassifying what follows. *)
let is_number_char c =
  is_digit c
  || (c >= 'a' && c <= 'f')
  || (c >= 'A' && c <= 'F')
  || c = '_' || c = 'x' || c = 'X' || c = 'o' || c = 'O' || c = 'b'
  || c = 'B' || c = 'n' || c = 'l' || c = 'L' || c = '.'

let is_op_char c =
  match c with
  | '!' | '$' | '%' | '&' | '*' | '+' | '-' | '/' | ':' | '<' | '=' | '>'
  | '?' | '@' | '^' | '|' | '~' | '.' | '#' ->
      true
  | _ -> false

type state = {
  src : string;
  n : int;
  mutable pos : int;
  mutable line : int;
  mutable bol : int;  (* offset of the current line's first byte *)
  mutable toks : token list;
  mutable comms : comment list;
}

let peek st k = if st.pos + k < st.n then Some st.src.[st.pos + k] else None

(* Advance one byte, maintaining the line map. *)
let advance st =
  (if st.pos < st.n then
     match st.src.[st.pos] with
     | '\n' ->
         st.line <- st.line + 1;
         st.bol <- st.pos + 1
     | _ -> ());
  st.pos <- st.pos + 1

let emit st ~start ~start_line ~start_col =
  st.toks <-
    {
      t_text = String.sub st.src start (st.pos - start);
      t_line = start_line;
      t_col = start_col;
      t_offset = start;
    }
    :: st.toks

(* Skip a double-quoted string literal; [st.pos] is on the opening
   quote.  Backslash escapes the next byte (covers escaped quotes,
   doubled backslashes and the backslash-newline continuation); an
   unterminated string runs to end of input. *)
let skip_string st =
  advance st;
  let rec go () =
    match peek st 0 with
    | None -> ()
    | Some '"' -> advance st
    | Some '\\' ->
        advance st;
        if peek st 0 <> None then advance st;
        go ()
    | Some _ ->
        advance st;
        go ()
  in
  go ()

(* Skip a [{id|...|id}] quoted string if one starts here; returns false
   (position unchanged) when the [{] is ordinary punctuation. *)
let try_skip_quoted_string st =
  let rec ident_end k =
    match peek st k with
    | Some c when (c >= 'a' && c <= 'z') || c = '_' -> ident_end (k + 1)
    | _ -> k
  in
  let id_len = ident_end 1 - 1 in
  match peek st (1 + id_len) with
  | Some '|' ->
      let id = String.sub st.src (st.pos + 1) id_len in
      let closer = "|" ^ id ^ "}" in
      let m = String.length closer in
      for _ = 0 to id_len + 1 do
        advance st
      done;
      let rec go () =
        if st.pos + m <= st.n && String.sub st.src st.pos m = closer then
          for _ = 1 to m do
            advance st
          done
        else if st.pos < st.n then begin
          advance st;
          go ()
        end
      in
      go ();
      true
  | _ -> false

(* Skip a char literal if one starts at ['], distinguishing it from a
   type variable; returns true when a literal was consumed.  ['X'] and
   [', escape, up-to-12-bytes, '] are literals; anything else leaves
   the quote for the caller. *)
let try_skip_char_literal st =
  match (peek st 1, peek st 2) with
  | Some c, Some '\'' when c <> '\\' ->
      advance st;
      advance st;
      advance st;
      true
  | Some '\\', Some _ ->
      let rec closing k =
        if k > 13 then None
        else
          match peek st k with
          | Some '\'' -> Some k
          | Some _ -> closing (k + 1)
          | None -> None
      in
      (match closing 2 with
      | Some k ->
          for _ = 0 to k do
            advance st
          done;
          true
      | None -> false)
  | _ -> false

(* Skip a nested comment; [st.pos] is on the opening paren of the
   comment delimiter.  String,
   quoted-string and char literals inside the comment are honored the
   way OCaml's own lexer honors them (a ["*)"] inside a string does not
   close the comment).  Unterminated comments run to end of input. *)
let skip_comment st =
  let c_offset = st.pos in
  let c_start_line = st.line in
  advance st;
  advance st;
  let body_start = st.pos in
  let depth = ref 1 in
  let body_end = ref st.n in
  let rec go () =
    if !depth > 0 && st.pos < st.n then begin
      (match (peek st 0, peek st 1) with
      | Some '(', Some '*' ->
          incr depth;
          advance st;
          advance st
      | Some '*', Some ')' ->
          decr depth;
          if !depth = 0 then body_end := st.pos;
          advance st;
          advance st
      | Some '"', _ -> skip_string st
      | Some '{', _ -> if not (try_skip_quoted_string st) then advance st
      | Some '\'', _ -> if not (try_skip_char_literal st) then advance st
      | _ -> advance st);
      go ()
    end
  in
  go ();
  if !depth > 0 then body_end := st.n;
  st.comms <-
    {
      c_text = String.sub st.src body_start (max 0 (!body_end - body_start));
      c_start_line;
      c_end_line = st.line;
      c_offset;
    }
    :: st.comms

(* Lex an identifier, joining module-qualified paths: after a segment
   that starts with an uppercase letter, a dot followed by an
   identifier start continues the same token ([Hashtbl.iter],
   [Tqec_util.Pool.map]); after a lowercase segment it does not
   ([p.spawn_failed] stays three tokens, so record mutations still
   expose their [<-]). *)
let lex_ident st =
  let start = st.pos in
  let start_line = st.line and start_col = st.pos - st.bol + 1 in
  let rec segment () =
    let seg_start = st.pos in
    while (match peek st 0 with Some c -> is_ident_char c | None -> false) do
      advance st
    done;
    let upper =
      seg_start < st.n
      && st.src.[seg_start] >= 'A'
      && st.src.[seg_start] <= 'Z'
    in
    match (upper, peek st 0, peek st 1) with
    | true, Some '.', Some c when is_ident_start c ->
        advance st;
        segment ()
    | _ -> ()
  in
  segment ();
  emit st ~start ~start_line ~start_col

let lex_number st =
  let start = st.pos in
  let start_line = st.line and start_col = st.pos - st.bol + 1 in
  while (match peek st 0 with Some c -> is_number_char c | None -> false) do
    advance st
  done;
  emit st ~start ~start_line ~start_col

let lex_operator st =
  let start = st.pos in
  let start_line = st.line and start_col = st.pos - st.bol + 1 in
  while (match peek st 0 with Some c -> is_op_char c | None -> false) do
    advance st
  done;
  emit st ~start ~start_line ~start_col

let single st =
  let start = st.pos in
  let start_line = st.line and start_col = st.pos - st.bol + 1 in
  advance st;
  emit st ~start ~start_line ~start_col

let scan src =
  let st =
    { src; n = String.length src; pos = 0; line = 1; bol = 0; toks = [];
      comms = [] }
  in
  while st.pos < st.n do
    match st.src.[st.pos] with
    | ' ' | '\t' | '\r' | '\n' -> advance st
    | '(' when peek st 1 = Some '*' -> skip_comment st
    | '"' -> skip_string st
    | '{' -> if not (try_skip_quoted_string st) then single st
    | '\'' ->
        (* a consumed literal leaves no token; a bare quote (type
           variable or stray byte) becomes one and the variable's name
           lexes as an ordinary identifier after it *)
        if not (try_skip_char_literal st) then single st
    | c when is_ident_start c -> lex_ident st
    | c when is_digit c -> lex_number st
    | c when is_op_char c -> lex_operator st
    | _ -> single st
  done;
  {
    tokens = Array.of_list (List.rev st.toks);
    comments = Array.of_list (List.rev st.comms);
  }
