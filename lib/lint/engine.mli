(** The lint driver: lex a file once, run every applicable rule, drop
    audited sites, and return deterministic findings.

    Determinism contract: for a fixed tree and rule set, findings are a
    pure function of the file bytes — ordered by (path, line, column,
    rule id) — whatever the worker count.  The [@lint] alias pins this
    by diffing JSON reports across [-j 1] / [-j 4] and across two
    consecutive runs. *)

val marker_with_justification : string -> string -> bool
(** [marker_with_justification comment marker]: does [comment] carry
    [marker] followed by a non-empty justification?  A bare marker is
    not an audit.  Exposed for tests. *)

val lint_string :
  rules:Rule.t list -> path:string -> string -> Rule.finding list
(** Lint in-memory source (the test seam). *)

val lint_file : rules:Rule.t list -> string -> Rule.finding list
(** Lint one file from disk.  An unreadable file yields a single
    finding on line 0 (rule [io]) rather than an exception. *)

val ml_files : string -> string list
(** All [.ml] files under a directory, recursively, sorted.  A path
    that is not a directory yields []. *)

val lint_dirs :
  ?jobs:int option -> rules:Rule.t list -> string list -> Rule.finding list
(** Lint every [.ml] file under the given directories, scanning files
    in parallel on the shared pool ([jobs] as in {!Tqec_util.Pool.map});
    the result order is independent of [jobs]. *)

(** {2 Baseline} *)

type baseline
(** A set of waived findings for incremental adoption: one entry per
    line, [<rule> <path>:<line> <token>], [#] comments and blank lines
    ignored. *)

val baseline_empty : baseline
val baseline_of_string : string -> baseline
val load_baseline : string -> (baseline, string) result

val apply_baseline :
  baseline -> Rule.finding list -> Rule.finding list * int * int
(** [apply_baseline b findings] is [(kept, suppressed, unused)]:
    findings not waived by [b], the number waived, and the number of
    baseline entries that matched nothing (stale entries worth
    deleting). *)

val baseline_entry : Rule.finding -> string
(** The baseline line that would waive this finding (for building a
    baseline from a report). *)
