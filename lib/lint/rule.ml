type severity = Error | Warning

let severity_name = function Error -> "error" | Warning -> "warning"

type site = {
  s_line : int;
  s_col : int;
  s_token : string;
  s_context_line : int;
}

type finding = {
  f_rule : string;
  f_severity : severity;
  f_path : string;
  f_line : int;
  f_col : int;
  f_token : string;
  f_advice : string;
}

type t = {
  r_id : string;
  r_severity : severity;
  r_marker : string;
  r_before : int;
  r_after : int;
  r_applies : string -> bool;
  r_doc : string;
  r_advice : string;
  r_sites : Lexer.t -> site list;
}

let starts_with ~prefix s =
  let np = String.length prefix in
  String.length s >= np && String.sub s 0 np = prefix

let ends_with ~suffix s =
  let ns = String.length suffix and n = String.length s in
  n >= ns && String.sub s (n - ns) ns = suffix

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
  m = 0 || at 0

(* Module-path tolerant matching: unit [Pool.map] matches tokens
   [Pool.map] and [Tqec_util.Pool.map]; a trailing [*] makes the unit a
   prefix, so [Array.unsafe_*] matches [Array.unsafe_get] and
   [Float.Array.unsafe_set]. *)
let unit_matches unit token =
  if ends_with ~suffix:"*" unit then begin
    let p = String.sub unit 0 (String.length unit - 1) in
    starts_with ~prefix:p token || contains ~sub:("." ^ p) token
  end
  else unit = token || ends_with ~suffix:("." ^ unit) token

let split_units pattern = String.split_on_char ' ' pattern

let seq_matches_at (tokens : Lexer.token array) i units =
  let n = Array.length tokens in
  let rec go i = function
    | [] -> true
    | u :: rest ->
        i < n && unit_matches u tokens.(i).Lexer.t_text && go (i + 1) rest
  in
  go i units

let site_of_token (tok : Lexer.token) ~text =
  {
    s_line = tok.Lexer.t_line;
    s_col = tok.Lexer.t_col;
    s_token = text;
    s_context_line = tok.Lexer.t_line;
  }

let pattern_sites patterns (lx : Lexer.t) =
  let unit_lists = List.map (fun p -> (p, split_units p)) patterns in
  let sites = ref [] in
  Array.iteri
    (fun i tok ->
      List.iter
        (fun (pattern, units) ->
          if seq_matches_at lx.Lexer.tokens i units then
            sites :=
              site_of_token tok
                ~text:(if List.length units = 1 then tok.Lexer.t_text
                       else pattern)
              :: !sites)
        unit_lists)
    lx.Lexer.tokens;
  List.rev !sites

let make ~id ?(severity = Error) ~marker ?(before = 3) ?(after = 1)
    ?(applies = fun _ -> true) ~doc ~advice sites =
  {
    r_id = id;
    r_severity = severity;
    r_marker = marker;
    r_before = before;
    r_after = after;
    r_applies = applies;
    r_doc = doc;
    r_advice = advice;
    r_sites = sites;
  }

(* [lib/...] at the sweep root or [.../lib/...] deeper (the dune rule
   sweeps from bench/, so paths arrive as [../lib/...]). *)
let in_lib path = starts_with ~prefix:"lib/" path || contains ~sub:"/lib/" path
