(** Lint rules: what to look for in a token stream, where it applies,
    and which audit marker waives a finding.

    A rule produces candidate {e sites} from a lexed file; the engine
    ({!Engine}) then drops every site carrying a nearby audit comment —
    a comment containing the rule's marker ([hash-order:], [partial:],
    ...) followed by a non-empty justification — and reports the rest
    as findings. *)

type severity = Error | Warning

val severity_name : severity -> string

type site = {
  s_line : int;
  s_col : int;
  s_token : string;  (** the offending token (or token sequence) *)
  s_context_line : int;
      (** first line of the construct the site belongs to — equal to
          [s_line] except for window rules (race), where an audit at
          the closure's opening [Pool.*] call also counts *)
}

type finding = {
  f_rule : string;
  f_severity : severity;
  f_path : string;
  f_line : int;
  f_col : int;
  f_token : string;
  f_advice : string;
}

type t = {
  r_id : string;
  r_severity : severity;
  r_marker : string;  (** audit-comment marker, e.g. ["partial:"] *)
  r_before : int;
      (** how many lines above a site an audit comment may end *)
  r_after : int;  (** how many lines below a site it may start *)
  r_applies : string -> bool;  (** path scope *)
  r_doc : string;  (** one-line description for [--list-rules] / README *)
  r_advice : string;  (** appended to each finding *)
  r_sites : Lexer.t -> site list;
}

(** {2 Token-pattern matching}

    A pattern is a space-separated sequence of token units matched
    against consecutive code tokens (comments between them are
    invisible, so [assert (* sic *) false] still matches
    ["assert false"]).  A unit ending in [*] is a prefix
    ([Array.unsafe_*]); otherwise it matches exactly.  Both forms are
    module-path tolerant: unit [Pool.map] also matches the token
    [Tqec_util.Pool.map]. *)

val unit_matches : string -> string -> bool
(** [unit_matches unit token] — exposed for tests. *)

val pattern_sites : string list -> Lexer.t -> site list
(** Sites of every occurrence of any of the given patterns. *)

val make :
  id:string ->
  ?severity:severity ->
  marker:string ->
  ?before:int ->
  ?after:int ->
  ?applies:(string -> bool) ->
  doc:string ->
  advice:string ->
  (Lexer.t -> site list) ->
  t

val in_lib : string -> bool
(** Path filter: true for files under a [lib/] directory. *)
