(** The built-in rule catalog.

    Seven families, each waived per-site by an audit comment carrying
    the family's marker and a justification:

    - [hash-order] — [Hashtbl.iter]/[Hashtbl.fold]: hash-layout
      iteration order must never reach an output ([hash-order:]).
    - [env-read] — [Sys.getenv]/[Sys.getenv_opt] under [lib/]: an
      ambient environment read in library code is a daemon hazard
      ([env-read:]).
    - [partial] — [failwith]/[assert false]/[exit] under [lib/]:
      partial library code needs a structured exception (the
      [Pipeline.Stage_failure] precedent) or an invariant audit
      ([partial:]).
    - [swallow] — [with _ ->] catch-alls: a swallowed exception hides
      failures from every caller ([swallow:]).
    - [wallclock] — [Unix.gettimeofday]/[Sys.time] under [lib/]:
      wall-clock reads outside declared timing sites are a determinism
      and replay hazard ([wallclock:]).
    - [unsafe] — [Obj.magic], [Marshal.*], [Random.self_init],
      [Array.unsafe_*]: memory- or determinism-unsafe primitives
      ([unsafe:]).
    - [race] — mutation tokens ([:=], [<-], [Hashtbl.replace],
      [Hashtbl.add]) inside a [Pool.map]/[Pool.run]/[Pool.async]
      closure window: shared-state writes on pool tasks need a [race:]
      audit naming the synchronization. *)

val all : Rule.t list
(** Every built-in rule, in catalog order. *)

val find : string -> Rule.t option
(** Look a rule up by id. *)

val ids : string list
