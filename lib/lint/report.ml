type summary = {
  files : int;
  rules : string list;
  suppressed : int;
  unused_baseline : int;
}

let text summary findings =
  let b = Buffer.create 1024 in
  List.iter
    (fun (f : Rule.finding) ->
      Buffer.add_string b
        (Printf.sprintf "%s:%d:%d: [%s] %s: `%s` — %s\n" f.Rule.f_path
           f.Rule.f_line f.Rule.f_col
           (Rule.severity_name f.Rule.f_severity)
           f.Rule.f_rule f.Rule.f_token f.Rule.f_advice))
    findings;
  let tail =
    if summary.suppressed > 0 || summary.unused_baseline > 0 then
      Printf.sprintf " (%d baseline-suppressed, %d stale baseline entr%s)"
        summary.suppressed summary.unused_baseline
        (if summary.unused_baseline = 1 then "y" else "ies")
    else ""
  in
  (match findings with
  | [] ->
      Buffer.add_string b
        (Printf.sprintf "lint: clean — %d files, %d rules%s\n" summary.files
           (List.length summary.rules) tail)
  | fs ->
      Buffer.add_string b
        (Printf.sprintf "lint: %d finding(s) — %d files, %d rules%s\n"
           (List.length fs) summary.files (List.length summary.rules) tail));
  Buffer.contents b

(* Minimal JSON string escaping (the report is ASCII paths, tokens and
   advice; anything non-printable goes out as \u00XX). *)
let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json summary findings =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "{\"version\":1,\"files\":%d,\"rules\":[%s]" summary.files
       (String.concat ","
          (List.map (fun r -> Printf.sprintf "\"%s\"" (escape r))
             summary.rules)));
  Buffer.add_string b
    (Printf.sprintf ",\"suppressed\":%d,\"unused_baseline\":%d,\"findings\":["
       summary.suppressed summary.unused_baseline);
  List.iteri
    (fun i (f : Rule.finding) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"rule\":\"%s\",\"severity\":\"%s\",\"path\":\"%s\",\"line\":%d,\"col\":%d,\"token\":\"%s\",\"advice\":\"%s\"}"
           (escape f.Rule.f_rule)
           (Rule.severity_name f.Rule.f_severity)
           (escape f.Rule.f_path) f.Rule.f_line f.Rule.f_col
           (escape f.Rule.f_token) (escape f.Rule.f_advice)))
    findings;
  Buffer.add_string b "]}\n";
  Buffer.contents b
