(** A lint-grade OCaml lexer: splits a source file into code tokens and
    comments so rules fire only on code, never on a pattern that merely
    appears inside a comment or a string literal.

    The lexer understands the full set of OCaml "text" forms:
    - nested [(* ... *)] comments, including string and quoted-string
      literals inside them (which OCaml requires to be well formed and
      which may contain ["*)"] without closing the comment);
    - ["..."] string literals with backslash escapes (including escaped
      quotes and line continuations);
    - [{|...|}] / [{id|...|id}] quoted strings, matched on the exact
      delimiter identifier;
    - char literals (['a'], ['\n'], ['\123'], ['\xFF']), distinguished
      from type variables (['a] in [let f (x : 'a) = ...]).

    It is total: unterminated comments, strings and quoted strings
    degrade gracefully (the open form simply runs to end of input) and
    no input raises.  Positions are byte-exact; token offsets are
    strictly increasing, which the fuzz oracle in [lib/fuzz] pins. *)

type token = {
  t_text : string;
      (** Token text.  Module-qualified identifiers are joined into a
          single token ([Hashtbl.iter], [Tqec_util.Pool.map]) whenever
          the segment before the dot starts with an uppercase letter, so
          rules can match dotted paths directly.  Operators are
          maximal-munch ([:=], [<-], [->]). *)
  t_line : int;  (** 1-based line of the token's first byte. *)
  t_col : int;  (** 1-based column of the token's first byte. *)
  t_offset : int;  (** byte offset of the token's first byte. *)
}

type comment = {
  c_text : string;
      (** Comment body without the outermost [(*]/[*)] delimiters (an
          unterminated comment keeps everything to end of input). *)
  c_start_line : int;
  c_end_line : int;
  c_offset : int;
}

type t = {
  tokens : token array;  (** code tokens, in source order *)
  comments : comment array;  (** comments, in source order *)
}

val scan : string -> t
(** [scan source] lexes [source].  Never raises. *)
