(* Audit resolution: a site is waived by a comment that (a) contains
   the rule's marker followed by a non-empty justification and (b)
   overlaps the site's audit window — from [r_before] lines above the
   site's context line (the site line itself, or the opening Pool.*
   call for window rules) to [r_after] lines below the site.  Marker
   hits inside string literals never count: markers are searched in
   comments only, which is the point of lexing instead of grepping. *)

let contains_at s i sub =
  let m = String.length sub in
  i + m <= String.length s && String.sub s i m = sub

let marker_with_justification comment marker =
  let n = String.length comment and m = String.length marker in
  let rec find i =
    if i + m > n then false
    else if contains_at comment i marker then begin
      (* non-whitespace after the marker: an empty audit is no audit *)
      let rec justified j =
        j < n
        && (match comment.[j] with
           | ' ' | '\t' | '\n' | '\r' -> justified (j + 1)
           | _ -> true)
      in
      justified (i + m) || find (i + m)
    end
    else find (i + 1)
  in
  find 0

let audited (lx : Lexer.t) (rule : Rule.t) (site : Rule.site) =
  let lo = min site.Rule.s_line site.Rule.s_context_line - rule.Rule.r_before in
  let hi = site.Rule.s_line + rule.Rule.r_after in
  Array.exists
    (fun (c : Lexer.comment) ->
      c.Lexer.c_end_line >= lo
      && c.Lexer.c_start_line <= hi
      && marker_with_justification c.Lexer.c_text rule.Rule.r_marker)
    lx.Lexer.comments

let compare_findings (a : Rule.finding) (b : Rule.finding) =
  let c = compare a.Rule.f_path b.Rule.f_path in
  if c <> 0 then c
  else
    let c = compare a.Rule.f_line b.Rule.f_line in
    if c <> 0 then c
    else
      let c = compare a.Rule.f_col b.Rule.f_col in
      if c <> 0 then c else compare a.Rule.f_rule b.Rule.f_rule

let lint_string ~rules ~path source =
  let lx = Lexer.scan source in
  rules
  |> List.concat_map (fun (rule : Rule.t) ->
         if not (rule.Rule.r_applies path) then []
         else
           rule.Rule.r_sites lx
           |> List.filter_map (fun (site : Rule.site) ->
                  if audited lx rule site then None
                  else
                    Some
                      {
                        Rule.f_rule = rule.Rule.r_id;
                        f_severity = rule.Rule.r_severity;
                        f_path = path;
                        f_line = site.Rule.s_line;
                        f_col = site.Rule.s_col;
                        f_token = site.Rule.s_token;
                        f_advice = rule.Rule.r_advice;
                      }))
  |> List.sort compare_findings

let io_finding path message =
  {
    Rule.f_rule = "io";
    f_severity = Rule.Error;
    f_path = path;
    f_line = 0;
    f_col = 0;
    f_token = "";
    f_advice = message;
  }

let lint_file ~rules path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | source -> lint_string ~rules ~path source
  | exception Sys_error message -> [ io_finding path message ]

let rec ml_files dir =
  match Sys.is_directory dir with
  | false | (exception Sys_error _) -> []
  | true ->
      let entries =
        match Sys.readdir dir with
        | entries -> Array.to_list entries
        | exception Sys_error _ -> []
      in
      List.concat_map
        (fun e ->
          let path = Filename.concat dir e in
          match Sys.is_directory path with
          | true -> ml_files path
          | false ->
              if Filename.check_suffix e ".ml" then [ path ] else []
          | exception Sys_error _ -> [])
        entries
      |> List.sort compare

let lint_dirs ?(jobs = None) ~rules dirs =
  let files = Array.of_list (List.concat_map ml_files dirs) in
  (* parallel over files; each task is a pure function of its file, and
     the per-file lists are concatenated in the sorted submission
     order, so the report is identical for any worker count *)
  Tqec_util.Pool.map ?jobs (fun path -> lint_file ~rules path) files
  |> Array.to_list |> List.concat

(* --- baseline ------------------------------------------------------ *)

type baseline = string list (* entry lines, exactly as matched *)

let baseline_empty = []

let baseline_entry (f : Rule.finding) =
  Printf.sprintf "%s %s:%d %s" f.Rule.f_rule f.Rule.f_path f.Rule.f_line
    f.Rule.f_token

let baseline_of_string text =
  String.split_on_char '\n' text
  |> List.filter_map (fun line ->
         let line = String.trim line in
         if line = "" || line.[0] = '#' then None else Some line)

let load_baseline path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | text -> Ok (baseline_of_string text)
  | exception Sys_error message -> Error message

let apply_baseline baseline findings =
  let used = Array.make (List.length baseline) false in
  let kept =
    List.filter
      (fun f ->
        let entry = baseline_entry f in
        let rec find i = function
          | [] -> false
          | e :: rest ->
              if e = entry then begin
                used.(i) <- true;
                true
              end
              else find (i + 1) rest
        in
        not (find 0 baseline))
      findings
  in
  let suppressed = List.length findings - List.length kept in
  let unused = Array.fold_left (fun a u -> if u then a else a + 1) 0 used in
  (kept, suppressed, unused)
