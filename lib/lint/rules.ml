(* The rule catalog.  Pattern strings below are exactly that — string
   data matched against code tokens — so this file never triggers its
   own rules: the lexer sees them as literals, not tokens. *)

(* --- race: mutation inside a pool-closure window ------------------- *)

(* Heuristic closure window: from a [Pool.map]/[Pool.run]/[Pool.async]
   token, the window is the first parenthesized group opening on the
   same or the next line (in practice the inline closure argument),
   through its matching close paren.  A call whose tasks are named
   functions opens no window.  Inside the window, mutation tokens are
   race candidates: the write may run on any worker domain concurrently
   with its siblings.  The audit may sit at the mutation site or at the
   [Pool.*] call that opens the window. *)
let race_entry_points = [ "Pool.map"; "Pool.run"; "Pool.async" ]
let race_mutations = [ ":="; "<-"; "Hashtbl.replace"; "Hashtbl.add" ]

let race_sites (lx : Lexer.t) =
  let tokens = lx.Lexer.tokens in
  let n = Array.length tokens in
  let sites = ref [] in
  for i = 0 to n - 1 do
    if
      List.exists
        (fun u -> Rule.unit_matches u tokens.(i).Lexer.t_text)
        race_entry_points
    then begin
      let call_line = tokens.(i).Lexer.t_line in
      (* first paren group opening on the call's line or the next *)
      let rec find_open j =
        if j >= n || tokens.(j).Lexer.t_line > call_line + 1 then None
        else if tokens.(j).Lexer.t_text = "(" then Some j
        else find_open (j + 1)
      in
      match find_open (i + 1) with
      | None -> ()
      | Some open_idx ->
          let depth = ref 1 in
          let j = ref (open_idx + 1) in
          while !depth > 0 && !j < n do
            let text = tokens.(!j).Lexer.t_text in
            if text = "(" then incr depth
            else if text = ")" then decr depth
            else if
              !depth > 0
              && List.exists (fun u -> Rule.unit_matches u text) race_mutations
            then
              sites :=
                {
                  Rule.s_line = tokens.(!j).Lexer.t_line;
                  s_col = tokens.(!j).Lexer.t_col;
                  s_token = text;
                  s_context_line = call_line;
                }
                :: !sites;
            incr j
          done
    end
  done;
  List.rev !sites

(* --- swallow: catch-all exception handlers ------------------------- *)

(* A bare [with _ ->] (or [with | _ ->]) is a swallow only when the
   [with] closes a [try]; the same token shape closes value matches
   ([match x with | _ -> ...]) all over test code.  Attribute each
   candidate [with] to its owner by scanning backwards with a nesting
   counter: every intervening [with] demands one more [match]/[try]
   before ours.  Record-update [with]s inflate the counter and can
   misattribute in principle; when no owner is found we flag
   (conservative). *)
let swallow_sites (lx : Lexer.t) =
  let tokens = lx.Lexer.tokens in
  let n = Array.length tokens in
  let text i = tokens.(i).Lexer.t_text in
  let catch_all_at i =
    (* [with _ ->] or [with | _ ->] starting at token i *)
    text i = "with"
    &&
    let j = if i + 1 < n && text (i + 1) = "|" then i + 2 else i + 1 in
    j + 1 < n && text j = "_" && text (j + 1) = "->"
  in
  let owned_by_try i =
    let rec scan j pending =
      if j < 0 then true (* no owner: flag conservatively *)
      else
        match text j with
        | "with" -> scan (j - 1) (pending + 1)
        | "try" when pending = 0 -> true
        | "match" when pending = 0 -> false
        | "try" | "match" -> scan (j - 1) (pending - 1)
        | _ -> scan (j - 1) pending
    in
    scan (i - 1) 0
  in
  let sites = ref [] in
  for i = 0 to n - 1 do
    if catch_all_at i && owned_by_try i then
      sites :=
        {
          Rule.s_line = tokens.(i).Lexer.t_line;
          s_col = tokens.(i).Lexer.t_col;
          s_token = "with _ ->";
          s_context_line = tokens.(i).Lexer.t_line;
        }
        :: !sites
  done;
  List.rev !sites

(* --- the catalog --------------------------------------------------- *)

let all =
  [
    Rule.make ~id:"hash-order" ~marker:"hash-order:"
      ~doc:
        "Hashtbl.iter/Hashtbl.fold: iteration order depends on the hash \
         layout and must never reach an output path"
      ~advice:
        "order-sensitive iteration; sort the output, fold commutatively, or \
         audit with `hash-order:`"
      (Rule.pattern_sites [ "Hashtbl.iter"; "Hashtbl.fold" ]);
    Rule.make ~id:"env-read" ~marker:"env-read:" ~before:6
      ~applies:Rule.in_lib
      ~doc:
        "Sys.getenv/Sys.getenv_opt in library code: ambient environment \
         reads freeze one process-wide value across every served request"
      ~advice:
        "environment read in library code; thread it through a config (the \
         CLI layer owns env defaults) or audit call-time capture with \
         `env-read:`"
      (Rule.pattern_sites [ "Sys.getenv"; "Sys.getenv_opt" ]);
    Rule.make ~id:"partial" ~marker:"partial:" ~applies:Rule.in_lib
      ~doc:
        "failwith / assert false / exit in library code: partiality a \
         daemon cannot catch structurally"
      ~advice:
        "partial library code; raise a structured exception (the \
         Stage_failure precedent) or audit the invariant with `partial:`"
      (Rule.pattern_sites [ "failwith"; "assert false"; "exit" ]);
    Rule.make ~id:"swallow" ~marker:"swallow:"
      ~doc:
        "`with _ ->` catch-alls: a swallowed exception hides real failures \
         (Stack_overflow, Out_of_memory, bugs) from every caller"
      ~advice:
        "catch-all exception handler; match the exceptions you mean, keep \
         the message, or audit with `swallow:`"
      swallow_sites;
    Rule.make ~id:"wallclock" ~marker:"wallclock:" ~applies:Rule.in_lib
      ~doc:
        "Unix.gettimeofday/Sys.time in library code outside declared \
         timing sites: a determinism and replay hazard"
      ~advice:
        "wall-clock read in library code; results must not depend on it — \
         declare the timing site with `wallclock:`"
      (Rule.pattern_sites [ "Unix.gettimeofday"; "Sys.time" ]);
    Rule.make ~id:"unsafe" ~marker:"unsafe:"
      ~doc:
        "Obj.magic, Marshal.*, Random.self_init, Array.unsafe_*: memory- \
         or determinism-unsafe primitives"
      ~advice:
        "unsafe primitive; prefer a typed/checked alternative or audit the \
         proof obligation with `unsafe:`"
      (Rule.pattern_sites
         [ "Obj.magic"; "Marshal.*"; "Random.self_init"; "Array.unsafe_*" ]);
    Rule.make ~id:"race" ~marker:"race:" ~before:3
      ~doc:
        "mutation tokens (:=, <-, Hashtbl.replace/add) inside a \
         Pool.map/Pool.run/Pool.async closure window: shared-state writes \
         on concurrent pool tasks"
      ~advice:
        "mutation inside a pool closure; make the task pure (return the \
         value) or audit the synchronization by name with `race:`"
      race_sites;
  ]

let find id = List.find_opt (fun (r : Rule.t) -> r.Rule.r_id = id) all
let ids = List.map (fun (r : Rule.t) -> r.Rule.r_id) all
