(** Deterministic lint reporters.  Neither format contains wall-clock
    times, absolute paths beyond what the caller passed, or any other
    run-dependent bytes: identical trees produce identical reports,
    which the [@lint] alias diffs across worker counts and runs. *)

type summary = {
  files : int;  (** files scanned *)
  rules : string list;  (** rule ids that ran, catalog order *)
  suppressed : int;  (** findings waived by the baseline *)
  unused_baseline : int;  (** stale baseline entries *)
}

val text : summary -> Rule.finding list -> string
(** One [path:line:col: [severity] rule: ...] line per finding plus a
    trailing summary line. *)

val json : summary -> Rule.finding list -> string
(** A single-line JSON object:
    [{"version":1,"files":N,"rules":[...],"suppressed":K,
      "unused_baseline":U,"findings":[{...}]}]. *)
