module Vec3 = Tqec_util.Vec3
module Box3 = Tqec_util.Box3

type box_kind = Y_box | A_box

type distill_box = { b_kind : box_kind; b_box : Box3.t }

type t = {
  name : string;
  defects : Defect.t list;
  boxes : distill_box list;
}

let empty name = { name; defects = []; boxes = [] }
let add_defect g d = { g with defects = g.defects @ [ d ] }
let add_box g b = { g with boxes = g.boxes @ [ b ] }

let y_box_dims = (3, 3, 2)
let a_box_dims = (16, 6, 2)

let box_volume = function
  | Y_box ->
      let x, y, z = y_box_dims in
      x * y * z
  | A_box ->
      let x, y, z = a_box_dims in
      x * y * z

let box_at kind (cell : Vec3.t) =
  let x, y, z = match kind with Y_box -> y_box_dims | A_box -> a_box_dims in
  {
    b_kind = kind;
    b_box =
      Box3.make cell (Vec3.make (cell.x + x - 1) (cell.y + y - 1) (cell.z + z - 1));
  }

let cells g =
  let seen = Hashtbl.create 256 in
  let out = ref [] in
  let visit c =
    if not (Hashtbl.mem seen c) then begin
      Hashtbl.add seen c ();
      out := c :: !out
    end
  in
  List.iter (fun d -> List.iter visit (Defect.cells d)) g.defects;
  List.iter
    (fun b ->
      visit b.b_box.Box3.lo;
      visit b.b_box.Box3.hi)
    g.boxes;
  List.rev !out

let bbox g =
  match cells g with [] -> None | cs -> Some (Box3.bounding cs)

let volume g = match bbox g with None -> 0 | Some b -> Box3.volume b

let total_box_volume g =
  List.fold_left (fun acc b -> acc + box_volume b.b_kind) 0 g.boxes

type issue =
  | Malformed_strand of int
  | Same_type_structure_overlap of { a : int; b : int; at : Vec3.t }
  | Box_overlap of int * int

let pp_issue ppf = function
  | Malformed_strand id -> Format.fprintf ppf "strand %d malformed" id
  | Same_type_structure_overlap { a; b; at } ->
      Format.fprintf ppf "structures %d and %d overlap at %a" a b Vec3.pp at
  | Box_overlap (a, b) -> Format.fprintf ppf "boxes %d and %d overlap" a b

let check g =
  let issues = ref [] in
  List.iter
    (fun (d : Defect.t) ->
      if not (Defect.valid_path ~dtype:d.dtype ~closed:d.closed d.path) then
        issues := Malformed_strand d.id :: !issues)
    g.defects;
  (* Same-sublattice vertex collisions across different structures. *)
  let occupancy : (Vec3.t, int) Hashtbl.t = Hashtbl.create 1024 in
  List.iter
    (fun (d : Defect.t) ->
      List.iter
        (fun v ->
          match Hashtbl.find_opt occupancy v with
          | Some s when s <> d.structure ->
              issues :=
                Same_type_structure_overlap { a = s; b = d.structure; at = v }
                :: !issues
          | Some _ -> ()
          | None -> Hashtbl.add occupancy v d.structure)
        d.path)
    g.defects;
  (* Boxes must not overlap each other. *)
  let rec box_pairs i = function
    | [] -> ()
    | b :: rest ->
        List.iteri
          (fun j b' ->
            if Box3.overlap b.b_box b'.b_box then
              issues := Box_overlap (i, i + j + 1) :: !issues)
          rest;
        box_pairs (i + 1) rest
  in
  box_pairs 0 g.boxes;
  List.rev !issues

let is_valid g = check g = []

let structures g dtype =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (d : Defect.t) ->
      if d.dtype = dtype then
        let existing = try Hashtbl.find tbl d.structure with Not_found -> [] in
        Hashtbl.replace tbl d.structure (d :: existing))
    g.defects;
  (* hash-order: sorted by structure id before returning *)
  Hashtbl.fold (fun s ds acc -> (s, List.rev ds) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
