module Rng = Tqec_util.Rng

(* Tree slots form the binary tree; each slot holds a block id.  Moves
   permute block ids across slots, so [pack] can report positions per
   block id and callers keep stable identities. *)
type t = {
  n : int;
  w : int array; (* by block id *)
  h : int array;
  rot : bool array;
  block_at : int array; (* slot -> block id *)
  slot_of : int array; (* block id -> slot *)
  parent : int array; (* slot tree; -1 for root/none *)
  left : int array;
  right : int array;
  mutable root : int;
  (* pack scratch, preallocated so a repack allocates nothing: skyline
     breakpoints (sorted x, segment height) and the DFS slot stack *)
  sk_x : int array;
  sk_y : int array;
  st_slot : int array;
  st_x : int array;
}

let size t = t.n
let width t b = if t.rot.(b) then t.h.(b) else t.w.(b)
let height t b = if t.rot.(b) then t.w.(b) else t.h.(b)

let create dims =
  let n = Array.length dims in
  if n = 0 then invalid_arg "Bstar_tree.create: no blocks";
  let t =
    {
      n;
      w = Array.map fst dims;
      h = Array.map snd dims;
      rot = Array.make n false;
      block_at = Array.init n (fun i -> i);
      slot_of = Array.init n (fun i -> i);
      parent = Array.make n (-1);
      left = Array.make n (-1);
      right = Array.make n (-1);
      root = 0;
      sk_x = Array.make ((2 * n) + 2) 0;
      sk_y = Array.make ((2 * n) + 2) 0;
      st_slot = Array.make (n + 1) 0;
      st_x = Array.make (n + 1) 0;
    }
  in
  (* Initial shape: left-chain spine with right children hung off it in
     index order packs blocks into rows; a complete binary tree packs
     roughly square.  Use the complete tree. *)
  for i = 0 to n - 1 do
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    if l < n then begin
      t.left.(i) <- l;
      t.parent.(l) <- i
    end;
    if r < n then begin
      t.right.(i) <- r;
      t.parent.(r) <- i
    end
  done;
  t

let create_shelves dims =
  let n = Array.length dims in
  if n = 0 then invalid_arg "Bstar_tree.create_shelves: no blocks";
  let t =
    {
      n;
      w = Array.map fst dims;
      h = Array.map snd dims;
      rot = Array.make n false;
      block_at = Array.init n (fun i -> i);
      slot_of = Array.init n (fun i -> i);
      parent = Array.make n (-1);
      left = Array.make n (-1);
      right = Array.make n (-1);
      root = 0;
      sk_x = Array.make ((2 * n) + 2) 0;
      sk_y = Array.make ((2 * n) + 2) 0;
      st_slot = Array.make (n + 1) 0;
      st_x = Array.make (n + 1) 0;
    }
  in
  let total_area =
    Array.fold_left (fun acc (w, h) -> acc + (w * h)) 0 dims
  in
  let target_w =
    max
      (Array.fold_left (fun acc (w, _) -> max acc w) 1 dims)
      (int_of_float (sqrt (1.15 *. float_of_int total_area)))
  in
  let order = Array.init n (fun i -> i) in
  Array.sort
    (fun a b ->
      let c = Int.compare (snd dims.(b)) (snd dims.(a)) in
      if c <> 0 then c else Int.compare a b)
    order;
  (* build shelves: within a row, chain left children; each new row head
     is the right child of the previous row's head *)
  let row_head = ref (-1) and row_prev = ref (-1) and row_width = ref 0 in
  Array.iter
    (fun b ->
      let slot = b in
      let w = fst dims.(b) in
      if !row_head = -1 then begin
        (* first block overall: root *)
        t.root <- slot;
        row_head := slot;
        row_prev := slot;
        row_width := w
      end
      else if !row_width + w <= target_w then begin
        t.left.(!row_prev) <- slot;
        t.parent.(slot) <- !row_prev;
        row_prev := slot;
        row_width := !row_width + w
      end
      else begin
        t.right.(!row_head) <- slot;
        t.parent.(slot) <- !row_head;
        row_head := slot;
        row_prev := slot;
        row_width := w
      end)
    order;
  t

let rotate t b = t.rot.(b) <- not t.rot.(b)
let is_rotated t b = t.rot.(b)

let swap_blocks t a b =
  if a <> b then begin
    let sa = t.slot_of.(a) and sb = t.slot_of.(b) in
    t.block_at.(sa) <- b;
    t.block_at.(sb) <- a;
    t.slot_of.(a) <- sb;
    t.slot_of.(b) <- sa
  end

(* Detach block [b]: bubble its id down to a leaf slot by swapping with
   child slots' ids, then unlink that leaf slot.  Returns the freed
   slot. *)
let detach t b =
  let cursor = ref t.slot_of.(b) in
  while t.left.(!cursor) <> -1 || t.right.(!cursor) <> -1 do
    let child =
      if t.left.(!cursor) <> -1 then t.left.(!cursor) else t.right.(!cursor)
    in
    swap_blocks t t.block_at.(!cursor) t.block_at.(child);
    cursor := child
  done;
  let leaf = !cursor in
  let p = t.parent.(leaf) in
  if p = -1 then failwith "Bstar_tree.detach: cannot detach the only block";
  if t.left.(p) = leaf then t.left.(p) <- -1 else t.right.(p) <- -1;
  t.parent.(leaf) <- -1;
  leaf

let attach t ~rng leaf =
  let in_tree slot = slot = t.root || t.parent.(slot) <> -1 in
  let candidates = ref [] in
  for slot = 0 to t.n - 1 do
    if slot <> leaf && in_tree slot
       && (t.left.(slot) = -1 || t.right.(slot) = -1)
    then candidates := slot :: !candidates
  done;
  match !candidates with
  | [] -> failwith "Bstar_tree.attach: no free slot"
  | cs ->
      let arr = Array.of_list cs in
      let target = arr.(Rng.int rng (Array.length arr)) in
      let use_left =
        if t.left.(target) = -1 && t.right.(target) = -1 then Rng.bool rng
        else t.left.(target) = -1
      in
      if use_left then t.left.(target) <- leaf else t.right.(target) <- leaf;
      t.parent.(leaf) <- target

let move_block t ~rng b =
  if t.n >= 2 then begin
    let leaf = detach t b in
    attach t ~rng leaf
  end

type snapshot = {
  s_rot : bool array;
  s_block_at : int array;
  s_slot_of : int array;
  s_parent : int array;
  s_left : int array;
  s_right : int array;
  s_root : int;
}

let snapshot t =
  {
    s_rot = Array.copy t.rot;
    s_block_at = Array.copy t.block_at;
    s_slot_of = Array.copy t.slot_of;
    s_parent = Array.copy t.parent;
    s_left = Array.copy t.left;
    s_right = Array.copy t.right;
    s_root = t.root;
  }

let restore t s =
  Array.blit s.s_rot 0 t.rot 0 t.n;
  Array.blit s.s_block_at 0 t.block_at 0 t.n;
  Array.blit s.s_slot_of 0 t.slot_of 0 t.n;
  Array.blit s.s_parent 0 t.parent 0 t.n;
  Array.blit s.s_left 0 t.left 0 t.n;
  Array.blit s.s_right 0 t.right 0 t.n;
  t.root <- s.s_root

(* Skyline: sorted breakpoints (x, y); (x, y) means the contour has
   height y from x to the next breakpoint (the last extends forever).
   Breakpoints and the DFS stack live in the preallocated scratch
   arrays of [t], so a repack performs no allocation at all. *)
let pack_xy t xs ys =
  let sk_x = t.sk_x and sk_y = t.sk_y in
  sk_x.(0) <- 0;
  sk_y.(0) <- 0;
  let sk_len = ref 1 in
  let max_w = ref 0 and max_h = ref 0 in
  let place b x0 =
    let w = width t b and h = height t b in
    let x1 = x0 + w in
    let len = !sk_len in
    (* base: tallest segment overlapping (x0, x1); y_end: contour height
       just right of x1 — both read before the contour is edited *)
    let base = ref 0 and y_end = ref 0 in
    let i = ref 0 in
    while !i < len && sk_x.(!i) <= x1 do
      let by = sk_y.(!i) in
      if
        sk_x.(!i) < x1
        && (!i = len - 1 || sk_x.(!i + 1) > x0)
        && by > !base
      then base := by;
      y_end := by;
      incr i
    done;
    (* splice: keep breakpoints left of x0, insert (x0, base+h) and
       (x1, y_end), keep breakpoints right of x1 *)
    let p = ref 0 in
    while !p < len && sk_x.(!p) < x0 do incr p done;
    let q = ref !p in
    while !q < len && sk_x.(!q) <= x1 do incr q done;
    let tail = len - !q in
    if tail > 0 then begin
      Array.blit sk_x !q sk_x (!p + 2) tail;
      Array.blit sk_y !q sk_y (!p + 2) tail
    end;
    sk_x.(!p) <- x0;
    sk_y.(!p) <- !base + h;
    sk_x.(!p + 1) <- x1;
    sk_y.(!p + 1) <- !y_end;
    sk_len := !p + 2 + tail;
    xs.(b) <- x0;
    ys.(b) <- !base;
    if x1 > !max_w then max_w := x1;
    if !base + h > !max_h then max_h := !base + h
  in
  let st_slot = t.st_slot and st_x = t.st_x in
  st_slot.(0) <- t.root;
  st_x.(0) <- 0;
  let sp = ref 1 in
  while !sp > 0 do
    decr sp;
    let slot = st_slot.(!sp) and x0 = st_x.(!sp) in
    let b = t.block_at.(slot) in
    place b x0;
    if t.right.(slot) <> -1 then begin
      st_slot.(!sp) <- t.right.(slot);
      st_x.(!sp) <- x0;
      incr sp
    end;
    if t.left.(slot) <> -1 then begin
      st_slot.(!sp) <- t.left.(slot);
      st_x.(!sp) <- x0 + width t b;
      incr sp
    end
  done;
  (!max_w, !max_h)

let pack_into t pos =
  let xs = Array.make t.n 0 and ys = Array.make t.n 0 in
  let wh = pack_xy t xs ys in
  for b = 0 to t.n - 1 do
    pos.(b) <- (xs.(b), ys.(b))
  done;
  wh

let pack t =
  let pos = Array.make t.n (0, 0) in
  let wh = pack_into t pos in
  (pos, wh)

let check t =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  if t.parent.(t.root) <> -1 then err "root slot %d has a parent" t.root;
  for slot = 0 to t.n - 1 do
    let l = t.left.(slot) and r = t.right.(slot) in
    if l <> -1 && t.parent.(l) <> slot then err "left child %d of %d disowned" l slot;
    if r <> -1 && t.parent.(r) <> slot then
      err "right child %d of %d disowned" r slot;
    if l <> -1 && l = r then err "slot %d has twin children" slot;
    if t.slot_of.(t.block_at.(slot)) <> slot then
      err "slot %d block mapping inconsistent" slot
  done;
  let visited = Array.make t.n false in
  let rec visit slot count =
    if slot = -1 then count
    else if visited.(slot) then begin
      err "slot %d visited twice" slot;
      count
    end
    else begin
      visited.(slot) <- true;
      visit t.right.(slot) (visit t.left.(slot) (count + 1))
    end
  in
  let reached = visit t.root 0 in
  if reached <> t.n then err "only %d of %d slots reachable" reached t.n;
  List.rev !errors

let overlaps positions dims =
  let n = Array.length positions in
  let overlap i j =
    let xi, yi = positions.(i) and wi, hi = dims.(i) in
    let xj, yj = positions.(j) and wj, hj = dims.(j) in
    xi < xj + wj && xj < xi + wi && yi < yj + hj && yj < yi + hi
  in
  let found = ref false in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if overlap i j then found := true
    done
  done;
  !found
