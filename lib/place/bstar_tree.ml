module Rng = Tqec_util.Rng

(* Persistent balanced skyline contour.  Breakpoints (x, y) mean the
   contour has height y from x to the next breakpoint (the last extends
   forever); the minimum key is always 0.  An AVL with join-based splits
   makes a placement O((k + 1) log n) where k is the number of
   breakpoints the new block swallows — and since every placement
   inserts at most two breakpoints, the amortized cost is O(log n).
   Persistence is what makes incremental repacking cheap: the contour
   after every DFS step is checkpointed by storing the root pointer,
   O(1) per step. *)
module Contour : sig
  type t

  val initial : t
  (** the all-zero contour: single breakpoint (0, 0) *)

  val place : t -> x0:int -> x1:int -> h:int -> t * int
  (** [place c ~x0 ~x1 ~h] drops a block of height [h] spanning
      [x0, x1) onto the contour; returns the new contour and the base y
      the block rests on. *)
end = struct
  type t =
    | Leaf
    | Node of { l : t; x : int; y : int; r : t; ht : int }

  let ht = function Leaf -> 0 | Node n -> n.ht

  let mk l x y r = Node { l; x; y; r; ht = 1 + max (ht l) (ht r) }

  (* standard AVL rebalance; valid when the height difference is <= 3 *)
  let bal l x y r =
    let hl = ht l and hr = ht r in
    if hl > hr + 2 then
      match l with
      | Node { l = ll; x = lx; y = ly; r = lr; _ } ->
          if ht ll >= ht lr then mk ll lx ly (mk lr x y r)
          else begin
            match lr with
            | Node { l = lrl; x = lrx; y = lry; r = lrr; _ } ->
                mk (mk ll lx ly lrl) lrx lry (mk lrr x y r)
            (* partial: height > sibling + 2 forces a Node (AVL) *)
            | Leaf -> assert false
          end
      (* partial: hl > hr + 2 >= 2 means l cannot be a Leaf (AVL) *)
      | Leaf -> assert false
    else if hr > hl + 2 then
      match r with
      | Node { l = rl; x = rx; y = ry; r = rr; _ } ->
          if ht rr >= ht rl then mk (mk l x y rl) rx ry rr
          else begin
            match rl with
            | Node { l = rll; x = rlx; y = rly; r = rlr; _ } ->
                mk (mk l x y rll) rlx rly (mk rlr rx ry rr)
            (* partial: height > sibling + 2 forces a Node (AVL) *)
            | Leaf -> assert false
          end
      (* partial: hr > hl + 2 >= 2 means r cannot be a Leaf (AVL) *)
      | Leaf -> assert false
    else mk l x y r

  (* join trees of arbitrary heights around a middle binding *)
  let rec join l x y r =
    let hl = ht l and hr = ht r in
    if hl > hr + 2 then begin
      match l with
      | Node { l = ll; x = lx; y = ly; r = lr; _ } ->
          bal ll lx ly (join lr x y r)
      (* partial: hl > hr + 2 >= 2 means l cannot be a Leaf (AVL) *)
      | Leaf -> assert false
    end
    else if hr > hl + 2 then begin
      match r with
      | Node { l = rl; x = rx; y = ry; r = rr; _ } ->
          bal (join l x y rl) rx ry rr
      (* partial: hr > hl + 2 >= 2 means r cannot be a Leaf (AVL) *)
      | Leaf -> assert false
    end
    else mk l x y r

  (* (keys < k, keys >= k) *)
  let rec split_lt k = function
    | Leaf -> (Leaf, Leaf)
    | Node { l; x; y; r; _ } ->
        if x < k then begin
          let m, hi = split_lt k r in
          (join l x y m, hi)
        end
        else begin
          let lo, m = split_lt k l in
          (lo, join m x y r)
        end

  (* (keys <= k, keys > k) *)
  let rec split_le k = function
    | Leaf -> (Leaf, Leaf)
    | Node { l; x; y; r; _ } ->
        if x <= k then begin
          let m, hi = split_le k r in
          (join l x y m, hi)
        end
        else begin
          let lo, m = split_le k l in
          (lo, join m x y r)
        end

  let rec min_binding = function
    | Leaf -> None
    | Node { l = Leaf; x; y; _ } -> Some (x, y)
    | Node { l; _ } -> min_binding l

  let rec max_binding = function
    | Leaf -> None
    | Node { x; y; r = Leaf; _ } -> Some (x, y)
    | Node { r; _ } -> max_binding r

  let rec iter f = function
    | Leaf -> ()
    | Node { l; x; y; r; _ } ->
        iter f l;
        f x y;
        iter f r

  let initial = mk Leaf 0 0 Leaf

  let place t ~x0 ~x1 ~h =
    let left, rest = split_lt x0 t in
    (* mid: swallowed breakpoints in [x0, x1]; right: untouched tail *)
    let mid, right = split_le x1 rest in
    (* height of the segment covering x0 (greatest key <= x0) *)
    let cov =
      match min_binding mid with
      | Some (k, y) when k = x0 -> y
      | _ -> ( match max_binding left with Some (_, y) -> y | None -> 0)
    in
    (* base: tallest segment overlapping (x0, x1); y_end: contour height
       just right of x1 (the segment covering x1) *)
    let base = ref cov and y_end = ref cov in
    iter
      (fun k y ->
        if k < x1 && y > !base then base := y;
        y_end := y)
      mid;
    let t' = join left x0 (!base + h) (join Leaf x1 !y_end right) in
    (t', !base)
end

(* Flat contours checkpoint every [cp_interval] DFS steps; an
   incremental repack replays at most [cp_interval - 1] cached
   placements to rebuild the contour at the divergence point. *)
let cp_interval = 8

(* Trees at least this large use the balanced persistent contour; below
   it the flat array splice wins on constants.  Measured on this
   machine the binary-search flat splice still beats the AVL by ~3x at
   2048 blocks (pointer chasing and allocation dominate), so the
   crossover is set well beyond every suite instance; the balanced
   back-end stays available via [?contour] and is differentially tested
   against the flat one. *)
let balanced_threshold = 100_000

(* Tree slots form the binary tree; each slot holds a block id.  Moves
   permute block ids across slots, so [pack] can report positions per
   block id and callers keep stable identities. *)
type t = {
  n : int;
  w : int array; (* by block id *)
  h : int array;
  rot : bool array;
  block_at : int array; (* slot -> block id *)
  slot_of : int array; (* block id -> slot *)
  parent : int array; (* slot tree; -1 for root/none *)
  left : int array;
  right : int array;
  mutable root : int;
  (* free-arity slot set: in-tree slots with at most one child, the
     attach candidates.  Kept incrementally by detach/attach so a move
     picks a candidate in O(1) instead of scanning all slots. *)
  free : int array;
  free_pos : int array; (* slot -> index in [free], -1 if absent *)
  mutable free_len : int;
  (* flat skyline scratch: breakpoints (sorted x, segment height) *)
  sk_x : int array;
  sk_y : int array;
  mutable sk_len : int;
  (* DFS slot stack *)
  st_slot : int array;
  st_x : int array;
  (* --- incremental repack cache: the last pack as a DFS-step record.
     A prefix of steps whose (block, x0, w, h) tuples are unchanged
     packs to exactly the same positions and contour, so the next pack
     reuses it and restarts the skyline from a checkpoint. *)
  balanced : bool;
  mutable c_valid : int; (* cached steps (0 before the first pack) *)
  c_block : int array; (* by DFS step *)
  c_x : int array;
  c_w : int array; (* effective (rotation-applied) dims at pack time *)
  c_h : int array;
  c_y : int array;
  c_contour : Contour.t array; (* balanced: contour AFTER each step *)
  (* flat: contour BEFORE step j * cp_interval, row-major *)
  cp_x : int array;
  cp_y : int array;
  cp_len : int array;
}

let size t = t.n
let width t b = if t.rot.(b) then t.h.(b) else t.w.(b)
let height t b = if t.rot.(b) then t.w.(b) else t.h.(b)

(* ------------------------------------------------------------------ *)
(* free-arity set maintenance                                          *)
(* ------------------------------------------------------------------ *)

let free_add t slot =
  if t.free_pos.(slot) = -1 then begin
    t.free.(t.free_len) <- slot;
    t.free_pos.(slot) <- t.free_len;
    t.free_len <- t.free_len + 1
  end

let free_remove t slot =
  let idx = t.free_pos.(slot) in
  if idx <> -1 then begin
    let last = t.free.(t.free_len - 1) in
    t.free.(idx) <- last;
    t.free_pos.(last) <- idx;
    t.free_len <- t.free_len - 1;
    t.free_pos.(slot) <- -1
  end

let in_tree t slot = slot = t.root || t.parent.(slot) <> -1

(* rebuild the set from the links, ascending slot order *)
let rebuild_free t =
  t.free_len <- 0;
  Array.fill t.free_pos 0 t.n (-1);
  for slot = 0 to t.n - 1 do
    if in_tree t slot && (t.left.(slot) = -1 || t.right.(slot) = -1) then
      free_add t slot
  done

(* ------------------------------------------------------------------ *)
(* construction                                                        *)
(* ------------------------------------------------------------------ *)

let alloc ?(contour = `Auto) dims =
  let n = Array.length dims in
  let balanced =
    match contour with
    | `Auto -> n >= balanced_threshold
    | `Flat -> false
    | `Balanced -> true
  in
  let cp_rows = if balanced then 0 else (n / cp_interval) + 1 in
  let cp_width = (2 * n) + 2 in
  {
    n;
    w = Array.map fst dims;
    h = Array.map snd dims;
    rot = Array.make n false;
    block_at = Array.init n (fun i -> i);
    slot_of = Array.init n (fun i -> i);
    parent = Array.make n (-1);
    left = Array.make n (-1);
    right = Array.make n (-1);
    root = 0;
    free = Array.make n 0;
    free_pos = Array.make n (-1);
    free_len = 0;
    sk_x = Array.make cp_width 0;
    sk_y = Array.make cp_width 0;
    sk_len = 0;
    st_slot = Array.make (n + 1) 0;
    st_x = Array.make (n + 1) 0;
    balanced;
    c_valid = 0;
    c_block = Array.make n 0;
    c_x = Array.make n 0;
    c_w = Array.make n 0;
    c_h = Array.make n 0;
    c_y = Array.make n 0;
    c_contour = Array.make (if balanced then n else 0) Contour.initial;
    cp_x = Array.make (cp_rows * cp_width) 0;
    cp_y = Array.make (cp_rows * cp_width) 0;
    cp_len = Array.make (max 1 cp_rows) 0;
  }

let create ?contour dims =
  if Array.length dims = 0 then invalid_arg "Bstar_tree.create: no blocks";
  let t = alloc ?contour dims in
  let n = t.n in
  (* Initial shape: left-chain spine with right children hung off it in
     index order packs blocks into rows; a complete binary tree packs
     roughly square.  Use the complete tree. *)
  for i = 0 to n - 1 do
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    if l < n then begin
      t.left.(i) <- l;
      t.parent.(l) <- i
    end;
    if r < n then begin
      t.right.(i) <- r;
      t.parent.(r) <- i
    end
  done;
  rebuild_free t;
  t

let create_shelves ?contour dims =
  if Array.length dims = 0 then
    invalid_arg "Bstar_tree.create_shelves: no blocks";
  let t = alloc ?contour dims in
  let n = t.n in
  let total_area =
    Array.fold_left (fun acc (w, h) -> acc + (w * h)) 0 dims
  in
  let target_w =
    max
      (Array.fold_left (fun acc (w, _) -> max acc w) 1 dims)
      (int_of_float (sqrt (1.15 *. float_of_int total_area)))
  in
  let order = Array.init n (fun i -> i) in
  Array.sort
    (fun a b ->
      let c = Int.compare (snd dims.(b)) (snd dims.(a)) in
      if c <> 0 then c else Int.compare a b)
    order;
  (* build shelves: within a row, chain left children; each new row head
     is the right child of the previous row's head *)
  let row_head = ref (-1) and row_prev = ref (-1) and row_width = ref 0 in
  Array.iter
    (fun b ->
      let slot = b in
      let w = fst dims.(b) in
      if !row_head = -1 then begin
        (* first block overall: root *)
        t.root <- slot;
        row_head := slot;
        row_prev := slot;
        row_width := w
      end
      else if !row_width + w <= target_w then begin
        t.left.(!row_prev) <- slot;
        t.parent.(slot) <- !row_prev;
        row_prev := slot;
        row_width := !row_width + w
      end
      else begin
        t.right.(!row_head) <- slot;
        t.parent.(slot) <- !row_head;
        row_head := slot;
        row_prev := slot;
        row_width := w
      end)
    order;
  rebuild_free t;
  t

let rotate t b = t.rot.(b) <- not t.rot.(b)
let is_rotated t b = t.rot.(b)

let swap_blocks t a b =
  if a <> b then begin
    let sa = t.slot_of.(a) and sb = t.slot_of.(b) in
    t.block_at.(sa) <- b;
    t.block_at.(sb) <- a;
    t.slot_of.(a) <- sb;
    t.slot_of.(b) <- sa
  end

(* Detach block [b]: bubble its id down to a leaf slot by swapping with
   child slots' ids, then unlink that leaf slot.  Returns the freed
   slot. *)
let detach t b =
  let cursor = ref t.slot_of.(b) in
  while t.left.(!cursor) <> -1 || t.right.(!cursor) <> -1 do
    let child =
      if t.left.(!cursor) <> -1 then t.left.(!cursor) else t.right.(!cursor)
    in
    swap_blocks t t.block_at.(!cursor) t.block_at.(child);
    cursor := child
  done;
  let leaf = !cursor in
  let p = t.parent.(leaf) in
  (* partial: perturbations only run on >= 2 blocks (Placer gate) *)
  if p = -1 then failwith "Bstar_tree.detach: cannot detach the only block";
  if t.left.(p) = leaf then t.left.(p) <- -1 else t.right.(p) <- -1;
  t.parent.(leaf) <- -1;
  (* the freed slot left the tree; its parent (re)gained a free arity *)
  free_remove t leaf;
  free_add t p;
  leaf

(* Candidate selection is O(1): one uniform draw from the maintained
   free-arity set.  The candidate ordering the RNG sees is the set's
   internal swap-removal order (deterministic for a given move history),
   which replaces the pre-maintained-set descending-slot scan order. *)
let attach t ~rng leaf =
  (* partial: detach always frees an arity before attach re-draws *)
  if t.free_len = 0 then failwith "Bstar_tree.attach: no free slot";
  let target = t.free.(Rng.int rng t.free_len) in
  let use_left =
    if t.left.(target) = -1 && t.right.(target) = -1 then Rng.bool rng
    else t.left.(target) = -1
  in
  if use_left then t.left.(target) <- leaf else t.right.(target) <- leaf;
  t.parent.(leaf) <- target;
  if t.left.(target) <> -1 && t.right.(target) <> -1 then
    free_remove t target;
  free_add t leaf

let move_block t ~rng b =
  if t.n >= 2 then begin
    let leaf = detach t b in
    attach t ~rng leaf
  end

(* The free-arity set is not captured: [restore] rebuilds it in O(n)
   from the restored links, which keeps snapshots as cheap as the tree
   arrays alone (the annealer allocates one per trial move).  The
   rebuilt set is in canonical ascending-slot order — a deterministic,
   RNG-visible reordering relative to the pre-snapshot swap-removal
   order, like the one [attach] itself introduced. *)
type snapshot = {
  s_rot : bool array;
  s_block_at : int array;
  s_slot_of : int array;
  s_parent : int array;
  s_left : int array;
  s_right : int array;
  s_root : int;
}

let snapshot t =
  {
    s_rot = Array.copy t.rot;
    s_block_at = Array.copy t.block_at;
    s_slot_of = Array.copy t.slot_of;
    s_parent = Array.copy t.parent;
    s_left = Array.copy t.left;
    s_right = Array.copy t.right;
    s_root = t.root;
  }

let restore t s =
  Array.blit s.s_rot 0 t.rot 0 t.n;
  Array.blit s.s_block_at 0 t.block_at 0 t.n;
  Array.blit s.s_slot_of 0 t.slot_of 0 t.n;
  Array.blit s.s_parent 0 t.parent 0 t.n;
  Array.blit s.s_left 0 t.left 0 t.n;
  Array.blit s.s_right 0 t.right 0 t.n;
  t.root <- s.s_root;
  rebuild_free t

(* ------------------------------------------------------------------ *)
(* packing                                                             *)
(* ------------------------------------------------------------------ *)

(* Flat skyline placement on the scratch arrays: sorted breakpoints
   (x, y); (x, y) means the contour has height y from x to the next
   breakpoint (the last extends forever).  Returns the base y. *)
let flat_place t x0 x1 h =
  let sk_x = t.sk_x and sk_y = t.sk_y in
  let len = t.sk_len in
  (* binary search for the first breakpoint at or right of x0 — blocks
     pack left to right, so a scan from 0 would walk nearly the whole
     contour on every step *)
  let lo = ref 0 and hi = ref len in
  while !lo < !hi do
    let mid = (!lo + !hi) lsr 1 in
    if sk_x.(mid) < x0 then lo := mid + 1 else hi := mid
  done;
  let p = !lo in
  (* base: tallest segment overlapping (x0, x1); y_end: contour height
     just right of x1.  The segment at p-1 covers x0 unless a breakpoint
     sits exactly on it; segments in [p, q) are swallowed. *)
  let base = ref 0 and y_end = ref 0 in
  if p > 0 && (p = len || sk_x.(p) > x0) then begin
    let cy = sk_y.(p - 1) in
    base := cy;
    y_end := cy
  end;
  let q = ref p in
  while !q < len && sk_x.(!q) <= x1 do
    let by = sk_y.(!q) in
    if sk_x.(!q) < x1 && by > !base then base := by;
    y_end := by;
    incr q
  done;
  (* splice: keep breakpoints left of x0, insert (x0, base+h) and
     (x1, y_end), keep breakpoints right of x1 *)
  let tail = len - !q in
  if tail > 0 && !q <> p + 2 then begin
    Array.blit sk_x !q sk_x (p + 2) tail;
    Array.blit sk_y !q sk_y (p + 2) tail
  end;
  sk_x.(p) <- x0;
  sk_y.(p) <- !base + h;
  sk_x.(p + 1) <- x1;
  sk_y.(p + 1) <- !y_end;
  t.sk_len <- p + 2 + tail;
  !base

let flat_reset t =
  t.sk_x.(0) <- 0;
  t.sk_y.(0) <- 0;
  t.sk_len <- 1

let cp_width t = (2 * t.n) + 2

let flat_save_checkpoint t j =
  let off = j * cp_width t in
  Array.blit t.sk_x 0 t.cp_x off t.sk_len;
  Array.blit t.sk_y 0 t.cp_y off t.sk_len;
  t.cp_len.(j) <- t.sk_len

let flat_load_checkpoint t j =
  let off = j * cp_width t in
  let len = t.cp_len.(j) in
  Array.blit t.cp_x off t.sk_x 0 len;
  Array.blit t.cp_y off t.sk_y 0 len;
  t.sk_len <- len

(* Restore the flat contour to its state just before cached step [k]:
   load the nearest checkpoint at or below [k] and replay the (at most
   [cp_interval - 1]) cached placements between the two. *)
let flat_restart t k =
  if k = 0 then flat_reset t
  else begin
    let j = k / cp_interval in
    flat_load_checkpoint t j;
    for i = j * cp_interval to k - 1 do
      ignore (flat_place t t.c_x.(i) (t.c_x.(i) + t.c_w.(i)) t.c_h.(i))
    done
  end

(* Incremental repack.  A pack is a fold over the DFS-step sequence of
   (block, x0, w, h) tuples: the y of step i and the contour after it
   depend only on steps 0..i.  So the longest prefix of tuples equal to
   the cached previous pack keeps its cached positions verbatim; the
   skyline restarts at the first divergent step — from a stored
   persistent-contour root (balanced) or the nearest flat checkpoint
   plus a short replay — and only the suffix is re-placed.  The cache
   always describes the latest pack, even one the annealer later
   rejects: prefix equality is checked tuple by tuple, so a stale
   suffix can never be reused by accident. *)
let pack_xy t xs ys =
  let max_w = ref 0 and max_h = ref 0 in
  let diverged = ref false in
  let bcontour = ref Contour.initial in
  let st_slot = t.st_slot and st_x = t.st_x in
  st_slot.(0) <- t.root;
  st_x.(0) <- 0;
  let sp = ref 1 in
  let i = ref 0 in
  while !sp > 0 do
    decr sp;
    let slot = st_slot.(!sp) and x0 = st_x.(!sp) in
    let b = t.block_at.(slot) in
    let w = width t b and h = height t b in
    if
      (not !diverged)
      && !i < t.c_valid
      && t.c_block.(!i) = b
      && t.c_x.(!i) = x0
      && t.c_w.(!i) = w
      && t.c_h.(!i) = h
    then begin
      (* unchanged prefix: cached position, no skyline work *)
      let y = t.c_y.(!i) in
      xs.(b) <- x0;
      ys.(b) <- y;
      if x0 + w > !max_w then max_w := x0 + w;
      if y + h > !max_h then max_h := y + h
    end
    else begin
      if not !diverged then begin
        diverged := true;
        if t.balanced then
          bcontour :=
            (if !i = 0 then Contour.initial else t.c_contour.(!i - 1))
        else flat_restart t !i
      end;
      let y =
        if t.balanced then begin
          let c', y =
            Contour.place !bcontour ~x0 ~x1:(x0 + w) ~h
          in
          bcontour := c';
          t.c_contour.(!i) <- c';
          y
        end
        else begin
          if !i mod cp_interval = 0 then
            flat_save_checkpoint t (!i / cp_interval);
          flat_place t x0 (x0 + w) h
        end
      in
      t.c_block.(!i) <- b;
      t.c_x.(!i) <- x0;
      t.c_w.(!i) <- w;
      t.c_h.(!i) <- h;
      t.c_y.(!i) <- y;
      xs.(b) <- x0;
      ys.(b) <- y;
      if x0 + w > !max_w then max_w := x0 + w;
      if y + h > !max_h then max_h := y + h
    end;
    incr i;
    if t.right.(slot) <> -1 then begin
      st_slot.(!sp) <- t.right.(slot);
      st_x.(!sp) <- x0;
      incr sp
    end;
    if t.left.(slot) <> -1 then begin
      st_slot.(!sp) <- t.left.(slot);
      st_x.(!sp) <- x0 + w;
      incr sp
    end
  done;
  t.c_valid <- !i;
  (!max_w, !max_h)

let pack_into t pos =
  let xs = Array.make t.n 0 and ys = Array.make t.n 0 in
  let wh = pack_xy t xs ys in
  for b = 0 to t.n - 1 do
    pos.(b) <- (xs.(b), ys.(b))
  done;
  wh

let pack t =
  let pos = Array.make t.n (0, 0) in
  let wh = pack_into t pos in
  (pos, wh)

(* Brute-force O(n^2) reference packer: the same DFS, but each block's y
   is the max top of the already-placed blocks its x-interval overlaps.
   No contour, no cache — the differential-test oracle for [pack_xy]. *)
let pack_reference t =
  let n = t.n in
  let pos = Array.make n (0, 0) in
  let placed_b = Array.make n 0 in
  let st_slot = Array.make (n + 1) 0 and st_x = Array.make (n + 1) 0 in
  st_slot.(0) <- t.root;
  st_x.(0) <- 0;
  let sp = ref 1 and placed = ref 0 in
  let max_w = ref 0 and max_h = ref 0 in
  while !sp > 0 do
    decr sp;
    let slot = st_slot.(!sp) and x0 = st_x.(!sp) in
    let b = t.block_at.(slot) in
    let w = width t b and h = height t b in
    let x1 = x0 + w in
    let y = ref 0 in
    for j = 0 to !placed - 1 do
      let pb = placed_b.(j) in
      let px, py = pos.(pb) in
      if px < x1 && x0 < px + width t pb then begin
        let top = py + height t pb in
        if top > !y then y := top
      end
    done;
    pos.(b) <- (x0, !y);
    placed_b.(!placed) <- b;
    incr placed;
    if x1 > !max_w then max_w := x1;
    if !y + h > !max_h then max_h := !y + h;
    if t.right.(slot) <> -1 then begin
      st_slot.(!sp) <- t.right.(slot);
      st_x.(!sp) <- x0;
      incr sp
    end;
    if t.left.(slot) <> -1 then begin
      st_slot.(!sp) <- t.left.(slot);
      st_x.(!sp) <- x0 + w;
      incr sp
    end
  done;
  (pos, (!max_w, !max_h))

let check t =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  if t.parent.(t.root) <> -1 then err "root slot %d has a parent" t.root;
  for slot = 0 to t.n - 1 do
    let l = t.left.(slot) and r = t.right.(slot) in
    if l <> -1 && t.parent.(l) <> slot then err "left child %d of %d disowned" l slot;
    if r <> -1 && t.parent.(r) <> slot then
      err "right child %d of %d disowned" r slot;
    if l <> -1 && l = r then err "slot %d has twin children" slot;
    if t.slot_of.(t.block_at.(slot)) <> slot then
      err "slot %d block mapping inconsistent" slot
  done;
  let visited = Array.make t.n false in
  let rec visit slot count =
    if slot = -1 then count
    else if visited.(slot) then begin
      err "slot %d visited twice" slot;
      count
    end
    else begin
      visited.(slot) <- true;
      visit t.right.(slot) (visit t.left.(slot) (count + 1))
    end
  in
  let reached = visit t.root 0 in
  if reached <> t.n then err "only %d of %d slots reachable" reached t.n;
  (* the free-arity set matches the links exactly *)
  for slot = 0 to t.n - 1 do
    let should =
      in_tree t slot && (t.left.(slot) = -1 || t.right.(slot) = -1)
    in
    let is = t.free_pos.(slot) <> -1 in
    if should && not is then err "slot %d missing from the free set" slot;
    if is && not should then err "slot %d wrongly in the free set" slot;
    if is then begin
      let idx = t.free_pos.(slot) in
      if idx < 0 || idx >= t.free_len || t.free.(idx) <> slot then
        err "free-set index of slot %d inconsistent" slot
    end
  done;
  List.rev !errors

let overlaps positions dims =
  let n = Array.length positions in
  let overlap i j =
    let xi, yi = positions.(i) and wi, hi = dims.(i) in
    let xj, yj = positions.(j) and wj, hj = dims.(j) in
    xi < xj + wj && xj < xi + wi && yi < yj + hj && yj < yi + hi
  in
  let found = ref false in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if overlap i j then found := true
    done
  done;
  !found
