module Rng = Tqec_util.Rng

type params = {
  iterations : int;
  moves_per_temp : int;
  cooling : float;
  initial_acceptance : float;
}

let default_params ~size =
  let size = max 1 size in
  {
    iterations = Tqec_util.Stats.clamp 2_000 200_000 (size * 60);
    moves_per_temp = Tqec_util.Stats.clamp 20 400 (size * 2);
    cooling = 0.93;
    initial_acceptance = 0.85;
  }

type stats = {
  attempted : int;
  accepted : int;
  best_cost : float;
  final_temperature : float;
}

type state = {
  rng : Rng.t;
  params : params;
  cost : unit -> float;
  perturb : unit -> unit -> unit;
  on_best : float -> unit;
  mutable current : float;
  mutable best : float;
  mutable temperature : float;
  mutable attempted : int;
  mutable accepted : int;
  mutable moves_at_temp : int;
}

(* The probe phase (temperature calibration) runs eagerly here, so a
   fresh state is already past it; [step] only ever executes main-loop
   moves.  Splitting a run into arbitrary [step] chunks consumes the
   RNG exactly like an uninterrupted run. *)
let create ~rng ~params ~cost ~perturb ?(on_best = fun _ -> ()) () =
  let current = ref (cost ()) in
  let best = ref !current in
  on_best !best;
  (* Probe phase: estimate the average uphill delta to set T0 so that
     the initial acceptance probability matches the target. *)
  let probe_moves = min 50 (max 10 (params.iterations / 100)) in
  let uphill_sum = ref 0. and uphill_count = ref 0 in
  for _ = 1 to probe_moves do
    let undo = perturb () in
    let c = cost () in
    let delta = c -. !current in
    if delta > 0. then begin
      uphill_sum := !uphill_sum +. delta;
      incr uphill_count
    end;
    (* accept all probe moves to explore; track best *)
    current := c;
    if c < !best then begin
      best := c;
      on_best c
    end;
    ignore undo
  done;
  let avg_uphill =
    if !uphill_count = 0 then 1.0 else !uphill_sum /. float_of_int !uphill_count
  in
  let t0 = -.avg_uphill /. log params.initial_acceptance in
  {
    rng;
    params;
    cost;
    perturb;
    on_best;
    current = !current;
    best = !best;
    temperature = Float.max 1e-6 t0;
    attempted = probe_moves;
    accepted = probe_moves;
    moves_at_temp = 0;
  }

let finished st = st.attempted >= st.params.iterations
let best_cost st = st.best
let attempted st = st.attempted
let total_moves st = st.params.iterations

let step st budget =
  let stop = min st.params.iterations (st.attempted + max 0 budget) in
  while st.attempted < stop do
    st.attempted <- st.attempted + 1;
    st.moves_at_temp <- st.moves_at_temp + 1;
    let undo = st.perturb () in
    let c = st.cost () in
    let delta = c -. st.current in
    let accept =
      delta <= 0.
      || Rng.float st.rng < exp (-.delta /. Float.max 1e-9 st.temperature)
    in
    if accept then begin
      st.accepted <- st.accepted + 1;
      st.current <- c;
      if c < st.best then begin
        st.best <- c;
        st.on_best c
      end
    end
    else undo ();
    if st.moves_at_temp >= st.params.moves_per_temp then begin
      st.moves_at_temp <- 0;
      st.temperature <- st.temperature *. st.params.cooling
    end
  done

let stats st =
  {
    attempted = st.attempted;
    accepted = st.accepted;
    best_cost = st.best;
    final_temperature = st.temperature;
  }

let run ~rng ~params ~cost ~perturb ?on_best () =
  let st = create ~rng ~params ~cost ~perturb ?on_best () in
  step st (params.iterations - st.attempted);
  stats st
