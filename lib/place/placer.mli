(** 2.5D module placement (paper Section 3.5).

    Packs the super-module nodes with a B*-tree + simulated annealing,
    minimizing [alpha * volume + beta * wirelength] where volume is
    [W * H * Z] (Z = the deepest node's z extent, at least 2) and
    wirelength is the summed 3D half-perimeter of the bridged dual nets'
    module pins plus the distillation pseudo-nets. *)

type effort = Quick | Normal | Full

(** [effort_of_string s] parses ["quick" | "normal" | "full"]. *)
val effort_of_string : string -> effort option

type strategy =
  | Annealing  (** B*-tree + simulated annealing (the paper's engine) *)
  | Force_directed
      (** iterative centroid-ordered shelf packing, in the spirit of the
          force-directed compactor of Paetznick & Fowler (the paper's
          related work [14]); cheaper, usually looser *)

type config = {
  effort : effort;
  seed : int;
  alpha : float;  (** volume weight *)
  beta : float;  (** wirelength weight *)
  z_cap : int option;  (** chain folding height override (ablations) *)
  strategy : strategy;
  restarts : int;
      (** independent annealing trajectories (multi-start; best result
          wins).  Deterministic in (seed, restarts): lane 0 reproduces
          the single-start trajectory, so [restarts = 1] matches
          historical results exactly *)
  jobs : int option;
      (** worker domains for multi-start; [None] defers to [TQEC_JOBS] /
          the machine's domain count (see {!Tqec_util.Pool}).  The
          result never depends on this value *)
  early_stop_margin : float option;
      (** adaptive multi-start: lanes publish their best cost into a
          shared [Atomic] at fixed chunk barriers, and a lane that has
          spent at least half its move budget while trailing the shared
          best by more than this relative margin stops early.  Lane 0 is
          exempt (the single-start trajectory always completes), stop
          decisions happen only at barriers, and the shared value read
          there is scheduling-independent — so results stay
          deterministic in (seed, restarts) for any job count, and the
          multi-start best is never worse than single-start.  [None]
          disables early stopping (every lane runs its full budget);
          the default is [Some 0.05] *)
  partition : int option;
      (** divide-and-conquer threshold for the [Annealing] strategy:
          with [Some cap] and more than [cap] nodes, the net hypergraph
          is partitioned ({!Partition.run}) into groups of at most
          [cap], each group annealed independently (partition-indexed
          seed offsets, fanned out over the pool alongside each group's
          restart lanes), and the packed groups stitched with a
          deterministic largest-first shelf packing.  Annealing cost
          then scales near-linearly in the node count instead of with
          the full quadratic move/net coupling, at some area/wirelength
          quality loss across the cuts.  Results are a pure function of
          (seed, restarts, cap) — never of [jobs].  [None] (the
          default) defers to [auto_partition], and [Some cap >= n]
          reproduces the historical single-die trajectory bit-for-bit.
          [Force_directed] ignores it *)
  auto_partition : int;
      (** node count above which an unset [partition] engages
          divide-and-conquer automatically, with [cap = auto_partition]
          — monolithic annealing past a few thousand modules burns its
          move budget without converging, so the placer picks the
          partitioned path by itself at scale.  Same dispatch rule as
          an explicit cap, so [auto_partition >= n] reproduces the
          single-die trajectory bit-for-bit; an explicit [partition]
          always wins.  The default (4000) sits above every paper-suite
          instance and below the larger synthetic scale tiers.
          [Force_directed] ignores it *)
  sa_moves_cap : int option;
      (** hard ceiling on annealing moves per trajectory, applied after
          the effort-derived budget.  A testing/replay hook: the fuzzing
          harness bounds per-case placement work with it so thousands of
          pipeline executions stay cheap.  Results remain deterministic
          in (seed, restarts, cap); [None] (the default) keeps the pure
          effort-derived budget — production behavior is unchanged *)
}

val default_config : config

type t = {
  sm : Super_module.t;
  node_pos : (int * int) array;  (** per node, lower-left (x, y) *)
  rotated : bool array;
  width : int;
  height : int;
  depth : int;
  volume : int;  (** W * H * Z of the placement *)
  wirelength : int;
  sa_stats : Sa.stats;
}

(** [place ?config g flipping dual fvalue] runs the annealer and returns
    the best placement found. *)
val place :
  ?config:config ->
  Tqec_pdgraph.Pd_graph.t ->
  Tqec_pdgraph.Flipping.t ->
  Tqec_pdgraph.Dual_bridge.t ->
  Tqec_pdgraph.Fvalue.t ->
  t

(** [module_cell p m] / [pin_cell p m] are the placed core/pin cells of
    alive module [m]. *)
val module_cell : t -> int -> Tqec_util.Vec3.t

val pin_cell :
  ?opposite:bool ->
  t ->
  Tqec_pdgraph.Fvalue.t ->
  Tqec_pdgraph.Flipping.t ->
  int ->
  Tqec_util.Vec3.t
(** [?opposite] exits on the other side of the module's f value — used by
    the distillation pseudo-nets so two structures pinned at one module
    approach it through different cells (the planning step of Fig. 15). *)

(** [node_box p n] is the placed footprint box of node [n] (z from 0 to
    the node's depth). *)
val node_box : t -> int -> Tqec_util.Box3.t

(** [check p] validates the placement: no two node footprints overlap,
    all inside [width * height], time-SM internal x-order monotone.
    Returns error strings. *)
val check : t -> string list
