(** B*-tree floorplan representation with contour (skyline) packing.

    The classic admissible-placement representation: a binary tree over
    blocks; in packing (preorder), the left child of a block sits
    immediately to its right ([x = parent.x + parent.w]) and the right
    child directly above it at the same x; the y coordinate comes from a
    skyline contour.  Every tree reachable by the perturbation moves
    packs to a left/bottom-compacted placement.

    Packing is incremental: each pack caches its DFS-step sequence
    (block, x, effective w/h, y) together with contour restart points,
    and the next pack reuses the longest prefix of steps whose inputs
    are unchanged — a local move late in the DFS order repacks only the
    suffix.  Two contour back-ends implement the restart: small trees
    keep the allocation-free flat array splice with periodic contour
    checkpoints; large trees use a persistent balanced (AVL) contour
    whose per-step roots are O(1) to retain, making each placement
    O(log n).  Both produce bit-identical placements.

    Blocks carry a footprint (w, h); rotation swaps the two.  The 2.5D
    aspect of the flow (block z-extents) is handled by the placer on
    top. *)

type t

(** [create dims] builds an initial balanced tree over blocks with the
    given (w, h) footprints, in index order.  [?contour] selects the
    packing back-end: [`Auto] (default) picks flat below 512 blocks and
    balanced above; [`Flat]/[`Balanced] force one (used by the
    differential tests — results are identical either way). *)
val create : ?contour:[ `Auto | `Flat | `Balanced ] -> (int * int) array -> t

(** [create_shelves dims] builds an initial tree that packs like shelf
    (strip) packing: blocks sorted by decreasing height fill rows of
    width about [sqrt (1.15 * total area)] — a strong starting point for
    the annealer. *)
val create_shelves :
  ?contour:[ `Auto | `Flat | `Balanced ] -> (int * int) array -> t

val size : t -> int

(** [width t i] / [height t i] are the current (rotation-aware)
    dimensions of block [i]. *)
val width : t -> int -> int

val height : t -> int -> int

(** [rotate t i] swaps block [i]'s w and h. *)
val rotate : t -> int -> unit

(** [is_rotated t i] reports block [i]'s rotation state. *)
val is_rotated : t -> int -> bool

(** [swap_blocks t i j] exchanges the tree positions of blocks [i] and
    [j] (their footprints travel with them). *)
val swap_blocks : t -> int -> int -> unit

(** [move_block t ~rng i] detaches block [i] and reattaches it at a
    random free child slot elsewhere in the tree.  Candidate selection
    is O(1) from a maintained free-arity slot set; the RNG-visible
    candidate ordering is the set's internal (swap-removal) order,
    deterministic for a given move history. No-op when [size t < 2]. *)
val move_block : t -> rng:Tqec_util.Rng.t -> int -> unit

(** [snapshot t] captures the tree structure; [restore t s] puts it
    back exactly (used for undoing non-self-inverse moves).  The pack
    cache survives restores: prefix reuse is validated per step, so a
    pack after an undo is still bit-identical to a from-scratch pack. *)
type snapshot

val snapshot : t -> snapshot

val restore : t -> snapshot -> unit

(** [pack t] computes the placement: per-block lower-left (x, y) and the
    bounding (width, height). *)
val pack : t -> (int * int) array * (int * int)

(** [pack_into t pos] is [pack] writing the positions into the caller's
    buffer (length [size t]) and returning the bounding (width, height). *)
val pack_into : t -> (int * int) array -> int * int

(** [pack_xy t xs ys] is [pack] writing x and y coordinates into the
    caller's unboxed int buffers (length [size t]) and returning the
    bounding (width, height) — the incremental repack used on the
    annealer's hot path (prefix steps unchanged since the previous pack
    are served from the cache without touching the contour). *)
val pack_xy : t -> int array -> int array -> int * int

(** [pack_reference t] packs with a brute-force O(n^2) per-block overlap
    scan instead of a contour — no cache, no skyline.  The differential
    oracle for [pack_xy] in tests. *)
val pack_reference : t -> (int * int) array * (int * int)

(** [check t] verifies tree-structure invariants (parent/child
    consistency, single root, all blocks reachable, free-arity set in
    sync with the links); returns error strings, empty when
    consistent. *)
val check : t -> string list

(** [overlaps positions dims] tests pairwise overlap of packed blocks —
    an O(n^2) oracle for tests; a correct packing never overlaps. *)
val overlaps : (int * int) array -> (int * int) array -> bool
