(** Incremental half-perimeter wirelength (HPWL) evaluation.

    The annealer's dominant per-move cost used to be a full-netlist HPWL
    sweep.  This cache stores each net's half-perimeter and a node ->
    incident-nets index; after a move only the nets containing a node
    whose position changed are re-evaluated, and the per-net previous
    values are kept in preallocated buffers inside the cache so a
    rejected move can {!restore} them exactly.  All values are integers,
    so the cached total always equals {!compute_xy} on the same
    coordinates.

    The hot-path entry points ({!rebuild}, {!update}) take unboxed
    coordinate arrays [xs]/[ys] and allocate nothing. *)

type t

(** [compute nets pos] is the from-scratch total HPWL on boxed positions
    — the reference the cache is provably equivalent to (empty nets
    contribute 0). *)
val compute : int array array -> (int * int) array -> int

(** [compute_xy nets ~xs ~ys] is {!compute} on unboxed coordinates. *)
val compute_xy : int array array -> xs:int array -> ys:int array -> int

(** [create ~n_nodes nets] builds the cache and its node->nets index.
    Node ids in [nets] must lie in [0, n_nodes); nets must not repeat a
    node (callers build them with [sort_uniq]).  The cache starts empty:
    call {!rebuild} before the first {!update}. *)
val create : n_nodes:int -> int array array -> t

(** [rebuild t ~xs ~ys] re-evaluates every net and returns the total. *)
val rebuild : t -> xs:int array -> ys:int array -> int

(** [total t] is the cached total, O(1). *)
val total : t -> int

(** [update t ~xs ~ys ~changed ~n_changed] re-evaluates the nets
    incident to the first [n_changed] nodes of [changed], recording
    their previous values in the cache's single-level undo buffer.  Nets
    shared by several changed nodes are visited once.  Each [update]
    overwrites the undo state of the previous one, so an annealer must
    either accept (drop the undo) or {!restore} before the next move. *)
val update :
  t -> xs:int array -> ys:int array -> changed:int array -> n_changed:int -> unit

(** [restore t] puts the nets touched by the last {!update} (and the
    total) back to their previous values — the exact rejection path of
    the annealer.  Idempotent until the next {!update}. *)
val restore : t -> unit
