(** Deterministic net-hypergraph partitioning for divide-and-conquer
    placement.

    Recursive bisection: each over-sized group is laid out in BFS order
    over the group-restricted adjacency graph (clique edges for nets of
    up to 8 members, a star around the first member for larger nets),
    split at the midpoint, then improved by a single KL/FM-style greedy
    sweep that moves a node across the cut when doing so strictly
    reduces the number of cut nets, within a balance tolerance of
    [max 1 (size/16)] around an even split.

    All iteration is in ascending node-id order, so the result is a
    pure function of the inputs — no hashing, no randomness — which
    keeps the partitioned placement path deterministic. *)

(** [run ~n ~nets ~max_part] partitions nodes [0..n-1] into groups of
    at most [max 1 max_part] members.  [nets] lists node ids per net
    (out-of-range ids are ignored).  Returns the groups in a
    deterministic left-to-right recursion order; each group is sorted
    ascending, every node appears in exactly one group, and no group is
    empty (for [n > 0]). *)
val run : n:int -> nets:int array array -> max_part:int -> int array array
