(** Generic simulated-annealing engine.

    The engine owns the annealing schedule; the problem supplies three
    callbacks over a mutable state: [cost] (smaller is better),
    [perturb] (make a random move, returning an undo closure), and
    optionally [on_best] (called when a new best cost is found, e.g. to
    snapshot the solution).  Cooling is geometric; the initial
    temperature is calibrated from the average uphill delta of a probe
    phase, the standard recipe for floorplanning annealers.

    Besides the one-shot [run], the engine exposes a resumable stepper
    ([create] / [step]) so a driver can interleave several trajectories
    in fixed-size chunks — the placer's adaptive multi-start advances K
    lanes epoch by epoch and compares bests at the chunk barriers.
    Chunked execution is bit-identical to an uninterrupted [run]: the
    probe phase completes inside [create] and [step] consumes the RNG
    exactly like the main loop. *)

type params = {
  iterations : int;  (** total move attempts *)
  moves_per_temp : int;
  cooling : float;  (** geometric factor in (0, 1) *)
  initial_acceptance : float;  (** probe-phase target, e.g. 0.85 *)
}

(** [default_params ~size] scales the budget with problem size. *)
val default_params : size:int -> params

type stats = {
  attempted : int;
  accepted : int;
  best_cost : float;
  final_temperature : float;
}

(** A resumable trajectory: probe phase done, main loop at some point
    before [params.iterations] attempts. *)
type state

(** [create ~rng ~params ~cost ~perturb ?on_best ()] evaluates the
    initial cost, runs the temperature-calibration probe phase, and
    returns a trajectory ready to [step].  [perturb] must return an undo
    closure that restores the problem state exactly. *)
val create :
  rng:Tqec_util.Rng.t ->
  params:params ->
  cost:(unit -> float) ->
  perturb:(unit -> unit -> unit) ->
  ?on_best:(float -> unit) ->
  unit ->
  state

(** [step st budget] advances the trajectory by up to [budget] move
    attempts (stopping at [params.iterations]). *)
val step : state -> int -> unit

(** [finished st] is true once all [params.iterations] attempts ran. *)
val finished : state -> bool

(** [best_cost st] is the best cost seen so far. *)
val best_cost : state -> float

(** [attempted st] is the number of move attempts so far (including the
    probe phase). *)
val attempted : state -> int

(** [total_moves st] is [params.iterations]. *)
val total_moves : state -> int

(** [stats st] summarizes the trajectory so far. *)
val stats : state -> stats

(** [run ~rng ~params ~cost ~perturb ?on_best ()] anneals to completion
    and returns statistics — [create] followed by one full [step].  The
    problem state is left at the last accepted configuration; use
    [on_best] to checkpoint the best one. *)
val run :
  rng:Tqec_util.Rng.t ->
  params:params ->
  cost:(unit -> float) ->
  perturb:(unit -> unit -> unit) ->
  ?on_best:(float -> unit) ->
  unit ->
  stats
