(* Incremental half-perimeter wirelength.  The cache keeps one bounding
   box summary (its half-perimeter) per net plus a node -> incident nets
   index in CSR form; a move re-evaluates only the nets that contain a
   node whose position actually changed.  Integer arithmetic throughout,
   so the running total is exactly the from-scratch sum — no drift.

   The hot-path API works on unboxed coordinate arrays (xs, ys) and a
   preallocated changed-node buffer, and the single-level undo state
   lives in preallocated buffers inside [t]: an SA move does zero
   allocation in here. *)

type t = {
  nets : int array array;
  nets_of_node : int array array; (* node -> incident net ids *)
  net_hpwl : int array;
  mutable total : int;
  mark : int array; (* per-net stamp of the last update pass *)
  mutable stamp : int;
  undo_nets : int array; (* nets touched by the last update ... *)
  undo_vals : int array; (* ... and their previous half-perimeters *)
  mutable undo_len : int;
}

let net_span (net : int array) ~(xs : int array) ~(ys : int array) =
  let x0 = ref max_int and x1 = ref min_int in
  let y0 = ref max_int and y1 = ref min_int in
  Array.iter
    (fun n ->
      let x = xs.(n) and y = ys.(n) in
      if x < !x0 then x0 := x;
      if x > !x1 then x1 := x;
      if y < !y0 then y0 := y;
      if y > !y1 then y1 := y)
    net;
  if !x1 < !x0 then 0 else !x1 - !x0 + (!y1 - !y0)

let compute_xy nets ~xs ~ys =
  Array.fold_left (fun acc net -> acc + net_span net ~xs ~ys) 0 nets

(* Reference form on boxed positions, for cold paths and tests. *)
let compute nets (pos : (int * int) array) =
  let n = Array.length pos in
  let xs = Array.make n 0 and ys = Array.make n 0 in
  for i = 0 to n - 1 do
    let x, y = pos.(i) in
    xs.(i) <- x;
    ys.(i) <- y
  done;
  compute_xy nets ~xs ~ys

let create ~n_nodes nets =
  let deg = Array.make n_nodes 0 in
  Array.iter (fun net -> Array.iter (fun v -> deg.(v) <- deg.(v) + 1) net) nets;
  let nets_of_node = Array.init n_nodes (fun v -> Array.make deg.(v) (-1)) in
  let fill = Array.make n_nodes 0 in
  Array.iteri
    (fun i net ->
      Array.iter
        (fun v ->
          nets_of_node.(v).(fill.(v)) <- i;
          fill.(v) <- fill.(v) + 1)
        net)
    nets;
  let n_nets = Array.length nets in
  {
    nets;
    nets_of_node;
    net_hpwl = Array.make n_nets 0;
    total = 0;
    mark = Array.make n_nets (-1);
    stamp = 0;
    undo_nets = Array.make n_nets 0;
    undo_vals = Array.make n_nets 0;
    undo_len = 0;
  }

let rebuild t ~xs ~ys =
  t.total <- 0;
  t.undo_len <- 0;
  Array.iteri
    (fun i net ->
      let v = net_span net ~xs ~ys in
      t.net_hpwl.(i) <- v;
      t.total <- t.total + v)
    t.nets;
  t.total

let total t = t.total

let update t ~xs ~ys ~(changed : int array) ~n_changed =
  t.stamp <- t.stamp + 1;
  t.undo_len <- 0;
  for k = 0 to n_changed - 1 do
    let incident = t.nets_of_node.(changed.(k)) in
    for j = 0 to Array.length incident - 1 do
      let i = incident.(j) in
      if t.mark.(i) <> t.stamp then begin
        t.mark.(i) <- t.stamp;
        let old = t.net_hpwl.(i) in
        let fresh = net_span t.nets.(i) ~xs ~ys in
        if fresh <> old then begin
          t.net_hpwl.(i) <- fresh;
          t.total <- t.total + fresh - old;
          t.undo_nets.(t.undo_len) <- i;
          t.undo_vals.(t.undo_len) <- old;
          t.undo_len <- t.undo_len + 1
        end
      end
    done
  done

let restore t =
  for k = 0 to t.undo_len - 1 do
    let i = t.undo_nets.(k) in
    let old = t.undo_vals.(k) in
    t.total <- t.total + old - t.net_hpwl.(i);
    t.net_hpwl.(i) <- old
  done;
  t.undo_len <- 0
