module Pd_graph = Tqec_pdgraph.Pd_graph
module Flipping = Tqec_pdgraph.Flipping
module Icm = Tqec_icm.Icm
module Vec3 = Tqec_util.Vec3
module Geometry = Tqec_geom.Geometry

type node_kind =
  | Plain of int
  | Chain of int list
  | Time_sm of { wire : int; modules : int list }
  | Distill_sm of {
      box : Geometry.box_kind;
      line : int;
      attached : int option;
    }

type node = {
  nd_id : int;
  nd_kind : node_kind;
  nd_w : int;
  nd_h : int;
  nd_d : int;
}

type t = {
  nodes : node array;
  node_of_module : (int, int) Hashtbl.t;
  module_offset : (int, int * int * int) Hashtbl.t;
  pseudo_nets : (int * int) list;
  z_cap : int;
  excluded : int -> bool;
}

(* Measurement-carrying module of an ICM line: the row's last module
   (alive by construction: I-shape never absorbs an order-constrained
   last module). *)
let meas_module_exn g line =
  match Pd_graph.meas_module g line with
  | Some m -> m
  | None -> invalid_arg "Super_module: measured line has no module"

let time_sm_modules (g : Pd_graph.t) =
  let icm = g.Pd_graph.icm in
  let by_wire = Hashtbl.create 16 in
  Array.iter
    (fun (gadget : Icm.t_gadget) ->
      let existing =
        try Hashtbl.find by_wire gadget.t_wire with Not_found -> []
      in
      Hashtbl.replace by_wire gadget.t_wire (gadget :: existing))
    icm.t_gadgets;
  (* hash-order: the wire list is sorted before returning *)
  Hashtbl.fold
    (fun wire gadgets acc ->
      let sorted =
        List.sort (fun (a : Icm.t_gadget) b -> Int.compare a.t_seq b.t_seq)
          gadgets
      in
      let modules =
        List.concat_map
          (fun (gadget : Icm.t_gadget) ->
            let meas_line i = icm.meas.(i).Icm.m_line in
            let first = meas_module_exn g (meas_line gadget.t_first_meas) in
            let seconds =
              List.map (fun i -> meas_module_exn g (meas_line i))
                gadget.t_second_meas
            in
            first :: seconds)
          sorted
      in
      (wire, modules) :: acc)
    by_wire []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

(* Choose the chain folding height that minimizes the estimated placed
   volume: taller columns shrink the chain footprint but multiply the
   whole die (distillation boxes and time super-modules are only 2
   deep), so the best height depends on the area mix. *)
let pick_z_cap ~fixed_area ~chains =
  match chains with
  | [] -> 2
  | _ ->
      let estimate z =
        let z_eff =
          List.fold_left (fun acc (k, _) -> max acc (min k z)) 2 chains
        in
        let chain_area =
          List.fold_left
            (fun acc (k, slot_w) ->
              acc + ((((k + z - 1) / z * slot_w) + 1) * 2))
            0 chains
        in
        ((fixed_area + chain_area) * z_eff, z)
      in
      let candidates = List.map estimate [ 2; 3; 4; 6; 8; 12; 16; 24 ] in
      snd
        (List.fold_left
           (fun (bv, bz) (v, z) -> if v < bv then (v, z) else (bv, bz))
           (List.hd candidates) (List.tl candidates))

let build ?z_cap (g : Pd_graph.t) (flipping : Flipping.t) =
  let time_sms = time_sm_modules g in
  let in_time_sm = Hashtbl.create 64 in
  List.iter
    (fun (_, ms) -> List.iter (fun m -> Hashtbl.replace in_time_sm m ()) ms)
    time_sms;
  let excluded m = Hashtbl.mem in_time_sm m in
  let members_of = Hashtbl.create 64 in
  List.iter
    (fun (rep, ms) -> Hashtbl.replace members_of rep ms)
    flipping.Flipping.points;
  let point_w rep =
    match Hashtbl.find_opt members_of rep with
    | Some ms -> max 1 (List.length ms)
    | None -> 1
  in
  let z_cap =
    match z_cap with
    | Some z -> max 2 z
    | None ->
        let fixed_area = ref 0 in
        List.iter
          (fun (_, ms) ->
            fixed_area := !fixed_area + (((2 * List.length ms) + 1) * 2))
          time_sms;
        List.iter
          (fun (_, kind) ->
            let bw, bh, _ =
              match kind with
              | Icm.Inject_y -> Geometry.y_box_dims
              | Icm.Inject_a -> Geometry.a_box_dims
              (* partial: distill_modules only yields injection kinds *)
              | Icm.Init_z | Icm.Init_x -> assert false
            in
            fixed_area := !fixed_area + ((bw + 1) * (bh + 1)))
          (Pd_graph.distill_modules g);
        let chain_dims =
          List.filter_map
            (fun chain ->
              match chain with
              | [] | [ _ ] ->
                  (match chain with
                  | [ rep ] ->
                      fixed_area := !fixed_area + ((point_w rep + 1) * 2);
                      None
                  | _ -> None)
              | chain ->
                  let slot_w =
                    List.fold_left (fun acc rep -> max acc (point_w rep)) 1 chain
                  in
                  Some (List.length chain, slot_w))
            flipping.Flipping.chains
        in
        pick_z_cap ~fixed_area:!fixed_area ~chains:chain_dims
  in
  let nodes = ref [] in
  let node_of_module = Hashtbl.create 256 in
  let module_offset = Hashtbl.create 256 in
  let n_nodes = ref 0 in
  let add_node kind ~w ~h ~d =
    let id = !n_nodes in
    incr n_nodes;
    nodes := { nd_id = id; nd_kind = kind; nd_w = w; nd_h = h; nd_d = d } :: !nodes;
    id
  in
  let claim m node dx dy dz =
    Hashtbl.replace node_of_module m node;
    Hashtbl.replace module_offset m (dx, dy, dz)
  in
  let members_of_point rep =
    match Hashtbl.find_opt members_of rep with
    | Some ms -> ms
    | None -> [ rep ]
  in
  (* Point members laid along x within a column slot (a point can hold a
     residual plus the merged modules of both row ends, so up to 3). *)
  let place_point ~node ~x0 ~z rep =
    List.iteri (fun i m -> claim m node (x0 + i) 0 z) (members_of_point rep)
  in
  let point_width rep = max 1 (List.length (members_of_point rep)) in
  (* 1. Time-dependent super-modules. *)
  List.iter
    (fun (wire, modules) ->
      let m_count = List.length modules in
      let node =
        add_node
          (Time_sm { wire; modules })
          ~w:((2 * m_count) + 1)
          ~h:2 ~d:2
      in
      List.iteri (fun i m -> claim m node (1 + (2 * i)) 0 0) modules)
    time_sms;
  (* 2. Primal bridging chains and plain modules. *)
  List.iter
    (fun chain ->
      match chain with
      | [] -> ()
      | [ rep ] ->
          let core_w = point_width rep in
          let node = add_node (Plain rep) ~w:(core_w + 1) ~h:2 ~d:2 in
          place_point ~node ~x0:0 ~z:0 rep
      | chain ->
          let k = List.length chain in
          let ncols = (k + z_cap - 1) / z_cap in
          let d = min k z_cap in
          let slot_w =
            List.fold_left (fun acc rep -> max acc (point_width rep)) 1 chain
          in
          let node =
            add_node (Chain chain) ~w:((slot_w * ncols) + 1) ~h:2 ~d
          in
          List.iteri
            (fun j rep ->
              let col = j / z_cap in
              let lvl_raw = j mod z_cap in
              (* serpentine so consecutive points stay adjacent across
                 column boundaries *)
              let lvl = if col land 1 = 0 then lvl_raw else d - 1 - lvl_raw in
              place_point ~node ~x0:(slot_w * col) ~z:lvl rep)
            chain)
    flipping.Flipping.chains;
  (* 3. Distillation boxes. *)
  let pseudo_nets = ref [] in
  List.iter
    (fun (box_module, kind) ->
      let box, (bw, bh, _bd) =
        match kind with
        | Icm.Inject_y -> (Geometry.Y_box, Geometry.y_box_dims)
        | Icm.Inject_a -> (Geometry.A_box, Geometry.a_box_dims)
        (* partial: distill_modules only yields injection kinds *)
        | Icm.Init_z | Icm.Init_x -> assert false
      in
      let line = (Pd_graph.module_get g box_module).Pd_graph.m_row in
      (* Attachment: the injection line's first alive module, or its
         I-shape merged replacement. *)
      let attach =
        let first = g.Pd_graph.row_first.(line) in
        if first = -1 then None
        else if (Pd_graph.module_get g first).Pd_graph.m_alive then Some first
        else
          (* absorbed: find the merged module on this line *)
          let found = ref None in
          Tqec_util.Veca.iter
            (fun (m : Pd_graph.module_rec) ->
              if
                m.m_alive && m.m_row = line
                && m.m_kind = Pd_graph.Ishape_merged
                && !found = None
              then found := Some m.m_id)
            g.Pd_graph.modules;
          !found
      in
      let absorbable =
        match attach with
        | Some m ->
            (not (Hashtbl.mem node_of_module m)) && not (excluded m)
        | None -> false
      in
      if absorbable then begin
        let m = Option.get attach in
        let node =
          add_node
            (Distill_sm { box; line; attached = Some m })
            ~w:(bw + 3) ~h:(bh + 1) ~d:2
        in
        (* the injection module sits after the box along x *)
        claim m node (bw + 1) 0 0
      end
      else begin
        let node =
          add_node
            (Distill_sm { box; line; attached = None })
            ~w:(bw + 1) ~h:(bh + 1) ~d:2
        in
        match attach with
        | Some m -> pseudo_nets := (node, m) :: !pseudo_nets
        | None -> ()
      end)
    (Pd_graph.distill_modules g);
  {
    nodes = Array.of_list (List.rev !nodes);
    node_of_module;
    module_offset;
    pseudo_nets = List.rev !pseudo_nets;
    z_cap;
    excluded;
  }

let module_cell t ~node_pos ~rotated m =
  let node = Hashtbl.find t.node_of_module m in
  let dx, dy, dz = Hashtbl.find t.module_offset m in
  let x, y = node_pos.(node) in
  if rotated node then Vec3.make (x + dy) (y + dx) dz
  else Vec3.make (x + dx) (y + dy) dz

let pin_cell t ~node_pos ~rotated ~flipped m =
  let node = Hashtbl.find t.node_of_module m in
  let dx, dy, dz = Hashtbl.find t.module_offset m in
  (* the pin sits on the node's margin row next to the core cell; the f
     value selects which x side of the 2-wide column it uses *)
  let dx = if flipped then dx + 1 else dx in
  let x, y = node_pos.(node) in
  if rotated node then Vec3.make (x + dy + 1) (y + dx) dz
  else Vec3.make (x + dx) (y + dy + 1) dz
