module Pd_graph = Tqec_pdgraph.Pd_graph
module Flipping = Tqec_pdgraph.Flipping
module Dual_bridge = Tqec_pdgraph.Dual_bridge
module Fvalue = Tqec_pdgraph.Fvalue
module Vec3 = Tqec_util.Vec3
module Box3 = Tqec_util.Box3
module Rng = Tqec_util.Rng
module Stats = Tqec_util.Stats
module Pool = Tqec_util.Pool

type effort = Quick | Normal | Full

let effort_of_string = function
  | "quick" -> Some Quick
  | "normal" -> Some Normal
  | "full" -> Some Full
  | _ -> None

type strategy = Annealing | Force_directed

type config = {
  effort : effort;
  seed : int;
  alpha : float;
  beta : float;
  z_cap : int option;
  strategy : strategy;
  restarts : int;
  jobs : int option;
  early_stop_margin : float option;
  partition : int option;
  auto_partition : int;
  sa_moves_cap : int option;
}

let default_config =
  { effort = Normal; seed = 42; alpha = 1.0; beta = 0.2; z_cap = None;
    strategy = Annealing; restarts = 1; jobs = None;
    early_stop_margin = Some 0.05; partition = None;
    (* Auto-partition threshold: with [partition = None], instances
       above this node count take the divide-and-conquer path with this
       cap.  Chosen above every paper-suite instance (~2.6k modules at
       auto scale) so their single-die placements stay bit-identical;
       synthetic scale-tier substrates cross it around tier-x9. *)
    auto_partition = 4000; sa_moves_cap = None }

type t = {
  sm : Super_module.t;
  node_pos : (int * int) array;
  rotated : bool array;
  width : int;
  height : int;
  depth : int;
  volume : int;
  wirelength : int;
  sa_stats : Sa.stats;
}

(* Iteration budget: a move costs one full repack, roughly 40*n simple
   operations, so derive the move count from an operation budget. *)
let iterations_for effort n =
  let budget =
    match effort with
    | Quick -> 60_000_000
    | Normal -> 500_000_000
    | Full -> 4_000_000_000
  in
  Stats.clamp 500 120_000 (budget / (30 * max 1 n))

(* Nets at node granularity for the SA wirelength estimate: each bridged
   dual structure pins the nodes its modules were claimed by. *)
let build_nets (g : Pd_graph.t) (sm : Super_module.t) (dual : Dual_bridge.t) =
  let nets = ref [] in
  List.iter
    (fun (rep, _members) ->
      let modules = Dual_bridge.modules_of_class g dual rep in
      let nodes =
        List.filter_map (Hashtbl.find_opt sm.Super_module.node_of_module) modules
        |> List.sort_uniq Int.compare
      in
      match nodes with [] | [ _ ] -> () | ns -> nets := ns :: !nets)
    dual.Dual_bridge.merged;
  List.iter
    (fun (box_node, m) ->
      match Hashtbl.find_opt sm.Super_module.node_of_module m with
      | Some n when n <> box_node -> nets := [ box_node; n ] :: !nets
      | _ -> ())
    sm.Super_module.pseudo_nets;
  Array.of_list (List.map Array.of_list !nets)

let hpwl = Hpwl_cache.compute

(* Force-directed placement: repeatedly (1) compute each block's desired
   position as the centroid of its net mates, (2) order blocks by the
   desired position, (3) legalize by shelf packing in that order.  The
   best iteration by the same cost function wins. *)
let force_directed ~iterations ~beta dims nets =
  let n = Array.length dims in
  let total_area = Array.fold_left (fun a (w, h) -> a + (w * h)) 0 dims in
  let target_w =
    max
      (Array.fold_left (fun a (w, _) -> max a w) 1 dims)
      (int_of_float (sqrt (1.2 *. float_of_int total_area)))
  in
  let shelf_pack order =
    let pos = Array.make n (0, 0) in
    let x = ref 0 and y = ref 0 and row_h = ref 0 in
    let max_w = ref 0 and max_h = ref 0 in
    Array.iter
      (fun b ->
        let w, h = dims.(b) in
        if !x + w > target_w && !x > 0 then begin
          x := 0;
          y := !y + !row_h;
          row_h := 0
        end;
        pos.(b) <- (!x, !y);
        x := !x + w;
        row_h := max !row_h h;
        max_w := max !max_w !x;
        max_h := max !max_h (!y + h))
      order;
    (pos, (!max_w, !max_h))
  in
  let cost pos (w, h) =
    float_of_int (w * h) +. (beta *. float_of_int (hpwl nets pos))
  in
  let order = Array.init n (fun i -> i) in
  let best = ref (shelf_pack order) in
  let best_cost = ref (cost (fst !best) (snd !best)) in
  for _ = 1 to iterations do
    let pos = fst !best in
    let desired =
      Array.init n (fun b ->
          let x, y = pos.(b) in
          (float_of_int x, float_of_int y))
    in
    (* pull towards net centroids *)
    let pull = Array.make n (0., 0., 0) in
    Array.iter
      (fun net ->
        let cx = ref 0. and cy = ref 0. in
        Array.iter
          (fun b ->
            let x, y = pos.(b) in
            cx := !cx +. float_of_int x;
            cy := !cy +. float_of_int y)
          net;
        let k = float_of_int (Array.length net) in
        let cx = !cx /. k and cy = !cy /. k in
        Array.iter
          (fun b ->
            let px, py, pk = pull.(b) in
            pull.(b) <- (px +. cx, py +. cy, pk + 1))
          net)
      nets;
    let desired =
      Array.mapi
        (fun b (dx, dy) ->
          match pull.(b) with
          | _, _, 0 -> (dx, dy)
          | px, py, pk ->
              let k = float_of_int pk in
              (* move halfway towards the mean centroid *)
              (0.5 *. (dx +. (px /. k)), 0.5 *. (dy +. (py /. k))))
        desired
    in
    let order = Array.init n (fun i -> i) in
    Array.sort
      (fun a b ->
        let ax, ay = desired.(a) and bx, by = desired.(b) in
        let c = compare (ay, ax) (by, bx) in
        if c <> 0 then c else Int.compare a b)
      order;
    let candidate = shelf_pack order in
    let c = cost (fst candidate) (snd candidate) in
    if c < !best_cost then begin
      best := candidate;
      best_cost := c
    end
  done;
  !best

(* One group's full adaptive multi-start annealing — the historical
   single-die engine, extracted so the partitioned mode can run it on
   each partition's subproblem.  With [seed = config.seed] over the
   whole node set this consumes the RNG exactly as the historical code
   did, so unpartitioned results are bit-identical. *)
let anneal_group ~(config : config) ~depth ~dims ~nets ~rotatable ~seed =
  let n = Array.length dims in
  let rotatable_ids =
    Array.of_list
      (List.filter
         (fun i -> rotatable.(i))
         (List.init n (fun i -> i)))
  in
  let iterations =
    let base = iterations_for config.effort n in
    match config.sa_moves_cap with
    | None -> base
    | Some cap -> min base (max 1 cap)
  in
  let params =
    {
      Sa.iterations;
      moves_per_temp = Stats.clamp 10 200 (iterations / 60);
      cooling = 0.93;
      initial_acceptance = 0.85;
    }
  in
  (* One independent annealing trajectory.  Packing is double-buffered:
     a move packs into the spare buffer, so a rejected move restores
     positions by flipping back — no per-move array allocation.  The
     wirelength term is maintained incrementally: only nets incident to
     nodes whose position actually changed are re-evaluated. *)
  let anneal_start rng =
    let tree = Bstar_tree.create dims in
    let xs = [| Array.make n 0; Array.make n 0 |] in
    let ys = [| Array.make n 0; Array.make n 0 |] in
    let cur = ref 0 in
    let cur_wh = ref (Bstar_tree.pack_xy tree xs.(0) ys.(0)) in
    let cache = Hpwl_cache.create ~n_nodes:n nets in
    ignore (Hpwl_cache.rebuild cache ~xs:xs.(0) ~ys:ys.(0));
    let changed = Array.make n 0 in
    let cost () =
      let w, h = !cur_wh in
      (config.alpha *. float_of_int (w * h * depth))
      +. (config.beta *. float_of_int (Hpwl_cache.total cache))
    in
    (* best snapshot *)
    let snapshot_pos () =
      Array.init n (fun i -> (xs.(!cur).(i), ys.(!cur).(i)))
    in
    let best_pos = ref (snapshot_pos ()) in
    let best_rot = ref (Array.init n (Bstar_tree.is_rotated tree)) in
    let best_wh = ref !cur_wh in
    let on_best _ =
      best_pos := snapshot_pos ();
      best_rot := Array.init n (Bstar_tree.is_rotated tree);
      best_wh := !cur_wh
    in
    let perturb () =
      let undo_structural =
        match
          if Array.length rotatable_ids = 0 then 1 + Rng.int rng 2
          else Rng.int rng 3
        with
        | 0 ->
            let b = rotatable_ids.(Rng.int rng (Array.length rotatable_ids)) in
            Bstar_tree.rotate tree b;
            fun () -> Bstar_tree.rotate tree b
        | 1 ->
            let a = Rng.int rng n and b = Rng.int rng n in
            Bstar_tree.swap_blocks tree a b;
            fun () -> Bstar_tree.swap_blocks tree a b
        | _ ->
            if n < 2 then fun () -> ()
            else begin
              (* a move is not self-inverse: snapshot the tree structure
                 and restore it exactly on rejection *)
              let snapshot = Bstar_tree.snapshot tree in
              let b = Rng.int rng n in
              Bstar_tree.move_block tree ~rng b;
              fun () -> Bstar_tree.restore tree snapshot
            end
      in
      let prev_wh = !cur_wh in
      let prev_xs = xs.(!cur) and prev_ys = ys.(!cur) in
      let next = 1 - !cur in
      let next_xs = xs.(next) and next_ys = ys.(next) in
      let wh = Bstar_tree.pack_xy tree next_xs next_ys in
      cur := next;
      cur_wh := wh;
      let n_changed = ref 0 in
      for b = 0 to n - 1 do
        if next_xs.(b) <> prev_xs.(b) || next_ys.(b) <> prev_ys.(b) then begin
          changed.(!n_changed) <- b;
          incr n_changed
        end
      done;
      Hpwl_cache.update cache ~xs:next_xs ~ys:next_ys ~changed
        ~n_changed:!n_changed;
      fun () ->
        undo_structural ();
        Hpwl_cache.restore cache;
        cur := 1 - !cur;
        cur_wh := prev_wh
    in
    let st = Sa.create ~rng ~params ~cost ~perturb ~on_best () in
    (st, fun () -> (Sa.stats st, !best_pos, !best_rot, !best_wh))
  in
  (* Adaptive multi-start: K independent trajectories with per-lane rng
     streams derived from the seed before the fan-out — always lane id,
     never worker id, so it doesn't matter which pool domain (or helping
     parent — this map may itself run inside a suite-instance task on
     the shared work-stealing pool) advances a lane.  Lanes advance in
     fixed-size chunks, one [Pool.map] per epoch; at each chunk end a
     lane publishes its best into a shared [Atomic] (CAS-min).  Early
     stopping is decided only at the epoch barriers, from the barrier
     value of the Atomic — the min over all lanes' bests through their
     completed epochs, which is independent of worker scheduling — so
     the result is a pure function of (seed, restarts) for any worker
     count.  Lane 0 is the historical single-start trajectory and is
     exempt from early stopping, so the multi-start best is never worse
     than a single-start run.  A stopped lane can never be the winner:
     at the stop decision its best exceeds (1 + margin) * global best,
     and the eventual winner's cost is at most that global best. *)
  let restarts = max 1 config.restarts in
  let lanes = Array.init restarts (Rng.lane seed) in
  let trajs = Pool.map ?jobs:config.jobs anneal_start lanes in
  let global_best = Atomic.make infinity in
  let rec publish v =
    let cur = Atomic.get global_best in
    if v < cur && not (Atomic.compare_and_set global_best cur v) then
      publish v
  in
  Array.iter (fun (st, _) -> publish (Sa.best_cost st)) trajs;
  let stopped = Array.make restarts false in
  let chunk = max 1_000 (iterations / 16) in
  let running = ref true in
  while !running do
    let active = ref [] in
    for i = restarts - 1 downto 0 do
      if (not stopped.(i)) && not (Sa.finished (fst trajs.(i))) then
        active := i :: !active
    done;
    match !active with
    | [] -> running := false
    | active ->
        ignore
          (Pool.map ?jobs:config.jobs
             (fun i ->
               let st, _ = trajs.(i) in
               Sa.step st chunk;
               publish (Sa.best_cost st))
             (Array.of_list active));
        (* barrier: deterministic stop decisions.  A low-temperature
           lane (at least half its moves spent) whose best trails the
           shared best by more than the margin gives up. *)
        (match config.early_stop_margin with
        | Some margin when margin >= 0. ->
            let g = Atomic.get global_best in
            Array.iteri
              (fun i (st, _) ->
                if
                  i > 0
                  && (not stopped.(i))
                  && (not (Sa.finished st))
                  && 2 * Sa.attempted st >= Sa.total_moves st
                  && Sa.best_cost st > (1. +. margin) *. g
                then stopped.(i) <- true)
              trajs
        | _ -> ())
  done;
  let runs = Array.map (fun (_, result) -> result ()) trajs in
  let best_i = ref 0 in
  Array.iteri
    (fun i (st, _, _, _) ->
      let prev, _, _, _ = runs.(!best_i) in
      if st.Sa.best_cost < prev.Sa.best_cost then best_i := i)
    runs;
  let win_stats, node_pos, rotated, (width, height) = runs.(!best_i) in
  let sa_stats =
    Array.fold_left
      (fun acc (st, _, _, _) ->
        {
          acc with
          Sa.attempted = acc.Sa.attempted + st.Sa.attempted;
          accepted = acc.Sa.accepted + st.Sa.accepted;
        })
      { win_stats with Sa.attempted = 0; accepted = 0 }
      runs
  in
  (sa_stats, node_pos, rotated, (width, height))

(* Divide-and-conquer annealing for instances beyond the single-die
   scale knee: partition the net hypergraph (deterministic BFS bisection
   + refinement, see {!Partition}), anneal each partition independently
   over the pool with partition-indexed seed offsets, then stitch the
   packed partitions with the same deterministic shelf packing the
   force-directed legalizer uses.  Per-partition annealing sees only the
   nets projected onto the partition (two or more members inside);
   cross-partition wirelength is paid at the stitch, which orders
   partitions by decreasing area for a tight skyline. *)
let place_partitioned ~(config : config) ~depth ~dims ~nets ~rotatable ~cap =
  let n = Array.length dims in
  let parts = Partition.run ~n ~nets ~max_part:cap in
  let k = Array.length parts in
  let part_of = Array.make n 0 in
  let local_id = Array.make n 0 in
  Array.iteri
    (fun pid members ->
      Array.iteri
        (fun li v ->
          part_of.(v) <- pid;
          local_id.(v) <- li)
        members)
    parts;
  (* Project each net onto every partition holding >= 2 of its members
     (first-seen partition order within the net keeps this allocation
     pattern deterministic without any hashing). *)
  let sub_nets_rev = Array.make k [] in
  Array.iter
    (fun net ->
      let buckets = ref [] in
      Array.iter
        (fun v ->
          let pid = part_of.(v) in
          match List.assoc_opt pid !buckets with
          | Some cell -> cell := local_id.(v) :: !cell
          | None -> buckets := (pid, ref [ local_id.(v) ]) :: !buckets)
        net;
      List.iter
        (fun (pid, cell) ->
          match !cell with
          | [] | [ _ ] -> ()
          | members ->
              sub_nets_rev.(pid) <-
                Array.of_list (List.rev members) :: sub_nets_rev.(pid))
        (List.rev !buckets))
    nets;
  let sub_problems =
    Array.init k (fun pid ->
        let members = parts.(pid) in
        ( pid,
          Array.map (fun v -> dims.(v)) members,
          Array.of_list (List.rev sub_nets_rev.(pid)),
          Array.map (fun v -> rotatable.(v)) members ))
  in
  (* Partition seeds are fixed offsets from the base seed, so results
     are a pure function of (seed, restarts, partition cap) — never of
     the job count.  anneal_group fans its restart lanes out on the same
     pool; nested maps compose on the work-stealing scheduler. *)
  let results =
    Pool.map ?jobs:config.jobs
      (fun (pid, p_dims, p_nets, p_rotatable) ->
        anneal_group ~config ~depth ~dims:p_dims ~nets:p_nets
          ~rotatable:p_rotatable
          ~seed:(config.seed + ((pid + 1) * 7_368_787)))
      sub_problems
  in
  (* Stitch: shelf-pack the partition bounding boxes, largest area
     first (ties by partition id), against a width target that squares
     up the die. *)
  let total_area =
    Array.fold_left (fun a (_, _, _, (w, h)) -> a + (w * h)) 0 results
  in
  let target_w =
    max
      (Array.fold_left (fun a (_, _, _, (w, _)) -> max a w) 1 results)
      (int_of_float (sqrt (1.2 *. float_of_int total_area)))
  in
  let order = Array.init k (fun i -> i) in
  Array.sort
    (fun a b ->
      let _, _, _, (aw, ah) = results.(a) and _, _, _, (bw, bh) = results.(b) in
      let c = Int.compare (bw * bh) (aw * ah) in
      if c <> 0 then c else Int.compare a b)
    order;
  let offsets = Array.make k (0, 0) in
  let x = ref 0 and y = ref 0 and row_h = ref 0 in
  Array.iter
    (fun pid ->
      let _, _, _, (w, h) = results.(pid) in
      if !x + w > target_w && !x > 0 then begin
        x := 0;
        y := !y + !row_h;
        row_h := 0
      end;
      offsets.(pid) <- (!x, !y);
      x := !x + w;
      row_h := max !row_h h)
    order;
  let node_pos = Array.make n (0, 0) in
  let rotated = Array.make n false in
  Array.iteri
    (fun pid members ->
      let _, pos, rot, _ = results.(pid) in
      let ox, oy = offsets.(pid) in
      Array.iteri
        (fun li v ->
          let lx, ly = pos.(li) in
          node_pos.(v) <- (ox + lx, oy + ly);
          rotated.(v) <- rot.(li))
        members)
    parts;
  (* Exact packed extents: place_check requires width/height to equal
     the maximum node reach, and each partition's (w, h) is already its
     own packed extent, so the global extent comes straight from the
     placed nodes. *)
  let width = ref 0 and height = ref 0 in
  Array.iteri
    (fun v (px, py) ->
      let dw, dh = dims.(v) in
      let w, h = if rotated.(v) then (dh, dw) else (dw, dh) in
      width := max !width (px + w);
      height := max !height (py + h))
    node_pos;
  let sa_stats =
    let first, _, _, _ = results.(0) in
    Array.fold_left
      (fun acc (st, _, _, _) ->
        {
          acc with
          Sa.attempted = acc.Sa.attempted + st.Sa.attempted;
          accepted = acc.Sa.accepted + st.Sa.accepted;
          best_cost = acc.Sa.best_cost +. st.Sa.best_cost;
        })
      { first with Sa.attempted = 0; accepted = 0; best_cost = 0. }
      results
  in
  (sa_stats, node_pos, rotated, (!width, !height))

let place ?(config = default_config) (g : Pd_graph.t) (flipping : Flipping.t)
    (dual : Dual_bridge.t) (_fvalue : Fvalue.t) =
  let sm =
    match config.z_cap with
    | Some z -> Super_module.build ~z_cap:z g flipping
    | None -> Super_module.build g flipping
  in
  let nodes = sm.Super_module.nodes in
  let n = Array.length nodes in
  if n = 0 then
    (* Zero blocks to place (no CNOTs, no injections): the empty
       placement on a degenerate 0x0 die.  Depth stays at the checker's
       floor of 2 so the from-scratch recompute agrees; volume and
       wirelength are 0. *)
    {
      sm;
      node_pos = [||];
      rotated = [||];
      width = 0;
      height = 0;
      depth = 2;
      volume = 0;
      wirelength = 0;
      sa_stats =
        { Sa.attempted = 0; accepted = 0; best_cost = 0.; final_temperature = 0. };
    }
  else
  let depth =
    max 2
      (Array.fold_left (fun acc nd -> max acc nd.Super_module.nd_d) 2 nodes)
  in
  let dims =
    Array.map (fun nd -> (nd.Super_module.nd_w, nd.Super_module.nd_h)) nodes
  in
  let nets = build_nets g sm dual in
  match config.strategy with
  | Force_directed ->
      let iterations =
        match config.effort with Quick -> 10 | Normal -> 40 | Full -> 120
      in
      let pos, (width, height) =
        force_directed ~iterations ~beta:config.beta dims nets
      in
      {
        sm;
        node_pos = pos;
        rotated = Array.make n false;
        width;
        height;
        depth;
        volume = width * height * depth;
        wirelength = hpwl nets pos;
        sa_stats =
          {
            Sa.attempted = iterations;
            accepted = iterations;
            best_cost = float_of_int (width * height * depth);
            final_temperature = 0.;
          };
      }
  | Annealing ->
      (* Time-dependent and distillation-injection super-modules keep
         their internal sequence along the time (x) axis: never rotate
         them. *)
      let rotatable =
        Array.map
          (fun nd ->
            match nd.Super_module.nd_kind with
            | Super_module.Plain _ | Super_module.Chain _ -> true
            | Super_module.Time_sm _ | Super_module.Distill_sm _ -> false)
          nodes
      in
      let sa_stats, node_pos, rotated, (width, height) =
        match config.partition with
        | Some cap when n > max 1 cap ->
            place_partitioned ~config ~depth ~dims ~nets ~rotatable
              ~cap:(max 1 cap)
        | None when n > max 1 config.auto_partition ->
            (* nobody asked for partitioning, but the instance is past
               the threshold where monolithic annealing stops scaling:
               pick the cap automatically.  Same dispatch guard as the
               explicit case, so [auto_partition >= n] — like
               [Some cap >= n] — reproduces the single-die placement
               bit for bit. *)
            place_partitioned ~config ~depth ~dims ~nets ~rotatable
              ~cap:(max 1 config.auto_partition)
        | _ -> anneal_group ~config ~depth ~dims ~nets ~rotatable
                 ~seed:config.seed
      in
      {
        sm;
        node_pos;
        rotated;
        width;
        height;
        depth;
        volume = width * height * depth;
        wirelength = hpwl nets node_pos;
        sa_stats;
      }

let module_cell p m =
  Super_module.module_cell p.sm ~node_pos:p.node_pos
    ~rotated:(fun n -> p.rotated.(n))
    m

let pin_cell ?(opposite = false) p fvalue flipping m =
  let point = flipping.Flipping.point_of.(m) in
  let flipped = point >= 0 && Fvalue.flipped fvalue point in
  let flipped = if opposite then not flipped else flipped in
  Super_module.pin_cell p.sm ~node_pos:p.node_pos
    ~rotated:(fun n -> p.rotated.(n))
    ~flipped m

let node_box p n =
  let nd = p.sm.Super_module.nodes.(n) in
  let x, y = p.node_pos.(n) in
  let w, h =
    if p.rotated.(n) then (nd.Super_module.nd_h, nd.Super_module.nd_w)
    else (nd.Super_module.nd_w, nd.Super_module.nd_h)
  in
  Box3.make (Vec3.make x y 0)
    (Vec3.make (x + w - 1) (y + h - 1) (nd.Super_module.nd_d - 1))

let check p =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  let n = Array.length p.sm.Super_module.nodes in
  let dims =
    Array.init n (fun i ->
        let nd = p.sm.Super_module.nodes.(i) in
        if p.rotated.(i) then (nd.Super_module.nd_h, nd.Super_module.nd_w)
        else (nd.Super_module.nd_w, nd.Super_module.nd_h))
  in
  if Bstar_tree.overlaps p.node_pos dims then err "node footprints overlap";
  Array.iteri
    (fun i (x, y) ->
      let w, h = dims.(i) in
      if x < 0 || y < 0 || x + w > p.width || y + h > p.height then
        err "node %d outside the die" i)
    p.node_pos;
  (* time-SM modules must be x-monotone in time order *)
  Array.iter
    (fun nd ->
      match nd.Super_module.nd_kind with
      | Super_module.Time_sm { modules; _ } ->
          let xs =
            List.map (fun m -> (module_cell p m).Vec3.x) modules
          in
          let rec mono = function
            | a :: (b :: _ as rest) -> a < b && mono rest
            | _ -> true
          in
          if not (mono xs) then
            err "time super-module %d order violated" nd.Super_module.nd_id
      | _ -> ())
    p.sm.Super_module.nodes;
  List.rev !errors
