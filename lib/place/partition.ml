(* Deterministic divide-and-conquer partitioning of the node-level net
   hypergraph: recursive bisection by BFS ordering, one KL/FM-style
   greedy refinement sweep per cut.  Everything iterates in ascending
   node-id order (adjacency lists are sorted, BFS ties break on id), so
   the result is a pure function of (n, nets, max_part) — no hashing,
   no randomness. *)

let run ~n ~nets ~max_part =
  if n < 0 then invalid_arg "Partition.run: negative n";
  let max_part = max 1 max_part in
  if n = 0 then [||]
  else begin
    (* Sorted adjacency lists.  Small nets contribute clique edges;
       large nets contribute a star around their first (lowest-id after
       net normalization) member, avoiding the quadratic blow-up of
       high-fanout distillation nets. *)
    let raw = Array.make n [] in
    let add a b =
      if a <> b && a >= 0 && a < n && b >= 0 && b < n then
        raw.(a) <- b :: raw.(a)
    in
    Array.iter
      (fun net ->
        let k = Array.length net in
        if k <= 8 then
          for i = 0 to k - 1 do
            for j = i + 1 to k - 1 do
              add net.(i) net.(j);
              add net.(j) net.(i)
            done
          done
        else begin
          let hub = net.(0) in
          for i = 1 to k - 1 do
            add hub net.(i);
            add net.(i) hub
          done
        end)
      nets;
    let adj =
      Array.map (fun l -> Array.of_list (List.sort_uniq Int.compare l)) raw
    in
    (* Net incidence per node, for the refinement gain computation. *)
    let inc_raw = Array.make n [] in
    Array.iteri
      (fun ni net ->
        Array.iter
          (fun v -> if v >= 0 && v < n then inc_raw.(v) <- ni :: inc_raw.(v))
          net)
      nets;
    let inc = Array.map (fun l -> Array.of_list (List.rev l)) inc_raw in
    let n_nets = Array.length nets in
    let in_group = Array.make n false in
    let side = Array.make n (-1) in
    let visited = Array.make n false in
    (* Net member counts on each side, restricted to the group being
       bisected (members outside the group are fixed context and are
       ignored, as in classic KL). *)
    let cnt0 = Array.make n_nets 0 in
    let cnt1 = Array.make n_nets 0 in
    (* [bisect group acc] appends the partitions of [group] (given
       sorted ascending) to [acc] in left-to-right order. *)
    let rec bisect group acc =
      let gsize = Array.length group in
      if gsize <= max_part then group :: acc
      else begin
        Array.iter (fun v -> in_group.(v) <- true) group;
        (* BFS order over the group-restricted adjacency; restart from
           the lowest unvisited id on each connected component. *)
        let order = Array.make gsize 0 in
        let filled = ref 0 in
        let q = Queue.create () in
        let push v =
          if in_group.(v) && not visited.(v) then begin
            visited.(v) <- true;
            Queue.add v q
          end
        in
        Array.iter
          (fun v ->
            if not visited.(v) then begin
              push v;
              while not (Queue.is_empty q) do
                let u = Queue.pop q in
                order.(!filled) <- u;
                incr filled;
                Array.iter push adj.(u)
              done
            end)
          group;
        let half = gsize / 2 in
        for i = 0 to gsize - 1 do
          side.(order.(i)) <- (if i < half then 0 else 1)
        done;
        (* Single greedy refinement sweep: move a node across the cut
           when that strictly reduces the number of cut nets, within a
           balance tolerance. *)
        Array.iter
          (fun v ->
            Array.iter
              (fun ni ->
                if side.(v) = 0 then cnt0.(ni) <- cnt0.(ni) + 1
                else cnt1.(ni) <- cnt1.(ni) + 1)
              inc.(v))
          group;
        let s0 = ref half and s1 = ref (gsize - half) in
        let tol = max 1 (gsize / 16) in
        let lo_bound = max 1 ((gsize / 2) - tol) in
        Array.iter
          (fun v ->
            let s = side.(v) in
            let src_size = if s = 0 then s0 else s1 in
            if !src_size - 1 >= lo_bound then begin
              let gain = ref 0 in
              Array.iter
                (fun ni ->
                  let c_s = if s = 0 then cnt0.(ni) else cnt1.(ni) in
                  let c_o = if s = 0 then cnt1.(ni) else cnt0.(ni) in
                  if c_s + c_o >= 2 then begin
                    (* cut before: c_o > 0 (v itself sits on side s);
                       cut after the move: c_s - 1 > 0 *)
                    if c_o > 0 then incr gain;
                    if c_s > 1 then decr gain
                  end)
                inc.(v);
              if !gain > 0 then begin
                Array.iter
                  (fun ni ->
                    if s = 0 then begin
                      cnt0.(ni) <- cnt0.(ni) - 1;
                      cnt1.(ni) <- cnt1.(ni) + 1
                    end
                    else begin
                      cnt1.(ni) <- cnt1.(ni) - 1;
                      cnt0.(ni) <- cnt0.(ni) + 1
                    end)
                  inc.(v);
                side.(v) <- 1 - s;
                decr src_size;
                incr (if s = 0 then s1 else s0)
              end
            end)
          group;
        let left = Array.of_list (List.filter (fun v -> side.(v) = 0)
                                    (Array.to_list group)) in
        let right = Array.of_list (List.filter (fun v -> side.(v) = 1)
                                     (Array.to_list group)) in
        (* Reset shared scratch for the recursive calls. *)
        Array.iter
          (fun v ->
            in_group.(v) <- false;
            visited.(v) <- false;
            side.(v) <- -1;
            Array.iter
              (fun ni ->
                cnt0.(ni) <- 0;
                cnt1.(ni) <- 0)
              inc.(v))
          group;
        bisect left (bisect right acc)
      end
    in
    let all = Array.init n (fun i -> i) in
    Array.of_list (bisect all [])
  end
