type failure = { case : Case.t; message : string; shrink_steps : int }
type outcome = { executed : int; failure : failure option; elapsed : float }

(* The property itself is a plain boolean: the oracle's messages are
   regenerated deterministically from the shrunk case afterwards, so
   the harness never depends on QCheck's in-flight message plumbing. *)
let prop ?fault case = Oracle.check_case ?fault case = []

let test ?fault ~count ~name () =
  QCheck2.Test.make ~count ~name ~print:Case.print Case.gen (prop ?fault)

let messages_of ?fault case =
  match Oracle.check_case ?fault case with
  | [] -> "(oracle failure did not reproduce on the shrunk case)"
  | msgs -> String.concat "\n" msgs
  | exception e -> "oracle raised: " ^ Printexc.to_string e

let run ?fault ?budget_s ~seed ~count () =
  let rand = Random.State.make [| seed |] in
  (* wallclock: the budget clock bounds how long fuzzing runs; case
     generation and oracle verdicts depend only on [seed] *)
  let t0 = Unix.gettimeofday () in
  let elapsed () = Unix.gettimeofday () -. t0 in
  let over_budget () =
    match budget_s with None -> false | Some b -> elapsed () >= b
  in
  let chunk = 20 in
  let rec loop executed =
    if executed >= count || over_budget () then
      { executed; failure = None; elapsed = elapsed () }
    else begin
      let n = min chunk (count - executed) in
      let cell =
        QCheck2.Test.make_cell ~count:n ~name:"pipeline-fuzz" Case.gen
          (prop ?fault)
      in
      let res = QCheck2.Test.check_cell ~rand cell in
      let executed = executed + QCheck2.TestResult.get_count res in
      let fail_of (ce : Case.t QCheck2.TestResult.counter_ex) message =
        {
          executed;
          failure =
            Some
              {
                case = ce.QCheck2.TestResult.instance;
                message;
                shrink_steps = ce.QCheck2.TestResult.shrink_steps;
              };
          elapsed = elapsed ();
        }
      in
      match QCheck2.TestResult.get_state res with
      | QCheck2.TestResult.Success -> loop executed
      | QCheck2.TestResult.Failed { instances = ce :: _ } ->
          fail_of ce (messages_of ?fault ce.QCheck2.TestResult.instance)
      | QCheck2.TestResult.Failed { instances = [] }
      | QCheck2.TestResult.Failed_other _ ->
          (* no counterexample to print: surface the raw report *)
          {
            executed;
            failure =
              Some
                {
                  case =
                    {
                      Case.circuit =
                        Tqec_circuit.Circuit.make ~name:"fuzz" ~n_qubits:1 [];
                      seed = 0;
                      restarts = 1;
                      jobs = 1;
                      partition = None;
                      corridor_cells = None;
                    };
                  message = "property failed without a counterexample";
                  shrink_steps = 0;
                };
            elapsed = elapsed ();
          }
      | QCheck2.TestResult.Error { instance = ce; exn; backtrace = _ } ->
          fail_of ce
            (Printf.sprintf "oracle raised %s\n%s" (Printexc.to_string exn)
               (messages_of ?fault ce.QCheck2.TestResult.instance))
    end
  in
  loop 0

let render_failure f =
  Printf.sprintf "=== fuzz failure (shrunk %d steps) ===\n%s%s\n"
    f.shrink_steps (Case.print f.case) f.message
