(** The property oracles the fuzzing fleet checks on every {!Case.t},
    plus the fault injector used to prove the fleet can actually catch
    and shrink a pipeline bug.

    Three oracle families (issue terminology):

    - {b verify}: the full translation-validation pass
      ({!Tqec_compress.Pipeline.verify}) reports clean and routing
      rip-up converged;
    - {b determinism}: a [jobs = 1] re-run is byte-identical (same
      {!fingerprint}) to the case's [jobs = N] run; when the case runs
      single-die placement, capping the partition at the node count is
      byte-identical too;
    - {b metamorphic}: appending an idle qubit never increases the
      space-time volume; permuting commuting gates preserves the ICM
      statistics and the canonical volume (placed volume is {e not}
      invariant — the annealer is seeded by gate position — so the
      oracle pins the schedule-independent quantities, and permuted
      circuits are additionally fuzzed as a first-class generator
      shape); a module-free circuit places to volume 0 and otherwise
      compressed volume stays within a calibrated bound of the
      closed-form canonical baseline ([3x + 64] — per-instance
      dominance is not a theorem on tiny circuits, the bound is a
      regression tripwire); and more restarts never produce a worse
      volume. *)

type fault =
  | Volume_misreport  (** final volume off by one (Routing/"volume") *)
  | Route_drop_cell  (** amputate a route cell (Routing legality) *)
  | Placement_collide  (** two nodes on one anchor (Placement/"overlap") *)

val fault_of_string : string -> fault option
val fault_name : fault -> string

(** [plant fault r] returns a mutated pipeline result carrying the
    fault.  Total: when the artifact the fault targets is empty (no
    routes / fewer than two nodes) it degrades to {!Volume_misreport},
    so a planted fault is observable on every case — the monotonicity
    shrinking needs to reach a minimal reproducer. *)
val plant : fault -> Tqec_compress.Pipeline.t -> Tqec_compress.Pipeline.t

(** [fingerprint r] digests everything the determinism contract
    promises: final volume, per-node anchors and rotations, die extent,
    and every routed cell in net order.  Byte-identical runs (any
    [jobs], capped partition) must agree on it. *)
val fingerprint : Tqec_compress.Pipeline.t -> string

(** [check_codec case] round-trips the case, expressed as a serving
    daemon request (inline [.qct] text plus its knob vector), through
    {!Tqec_serve.Protocol}'s encode/decode and reports any lossiness.
    Pure value-level property — no socket, no server; it keeps the wire
    format honest as the fuzz generator and the protocol evolve
    independently.  Also applied by {!check_case} as a fourth family. *)
val check_codec : Case.t -> string list

(** [check_case ?fault case] runs the pipeline on the case and applies
    every oracle family; the returned list of human-readable failure
    descriptions is empty when all properties hold.  With [?fault] the
    planted fault is applied to the primary run and only the verify
    family is consulted (the mutation must be {e caught}, not
    cross-checked against derived runs). *)
val check_case : ?fault:fault -> Case.t -> string list
