(** Budgeted QCheck2 driver for the fuzzing fleet.

    Wraps {!Oracle.check_case} as a QCheck2 property with integrated
    shrinking and runs it in fixed-size chunks against one random
    state, stopping at a case count or a wall-clock budget — the shape
    [bench/fuzz.exe] and the [@fuzz-smoke] alias share.  A failure
    comes back as the {e shrunk} minimal case plus the oracle's
    messages, ready to print as a replayable [.qct] reproducer. *)

type failure = {
  case : Case.t;  (** the shrunk counterexample *)
  message : string;  (** oracle failure descriptions *)
  shrink_steps : int;
}

type outcome = {
  executed : int;  (** property evaluations actually run *)
  failure : failure option;
  elapsed : float;  (** seconds *)
}

(** [test ?fault ~count ~name ()] is a self-contained QCheck2 test
    (fixed generator, oracle property, reproducer printer) for
    [QCheck_alcotest.to_alcotest] and friends. *)
val test : ?fault:Oracle.fault -> count:int -> name:string -> unit -> QCheck2.Test.t

(** [run ?fault ?budget_s ~seed ~count ()] fuzzes up to [count] cases
    (in chunks, so a wall-clock [budget_s] can cut the campaign between
    chunks), deterministic in [seed] when the budget does not
    intervene.  Stops at the first failure. *)
val run :
  ?fault:Oracle.fault ->
  ?budget_s:float ->
  seed:int ->
  count:int ->
  unit ->
  outcome

(** [render_failure f] is the full reproducer block: the [.qct] fixture
    text, the exact replay flag vector, and the oracle messages. *)
val render_failure : failure -> string
