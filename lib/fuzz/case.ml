open Tqec_circuit

type t = {
  circuit : Circuit.t;
  seed : int;
  restarts : int;
  jobs : int;
  partition : int option;
  corridor_cells : int option;
}

(* Gate generators are total in the wire indices: a wire is drawn from
   [0, active) directly and a CNOT target is [control + 1 + offset mod
   (active - 1)], so no shrink step can ever produce an out-of-range
   wire or a self-targeting CNOT.  QCheck2's integrated shrinking then
   reduces counterexamples inside the space of well-formed circuits. *)
let gate_gen ~active ~shape =
  let open QCheck2.Gen in
  let wire = int_bound (active - 1) in
  let single =
    oneof
      [
        map (fun q -> Gate.H q) wire;
        map (fun q -> Gate.S q) wire;
        map (fun q -> Gate.Sdg q) wire;
        map (fun q -> Gate.T q) wire;
        map (fun q -> Gate.Tdg q) wire;
        map (fun q -> Gate.X q) wire;
        map (fun q -> Gate.Z q) wire;
      ]
  in
  let t_stream =
    oneof [ map (fun q -> Gate.T q) wire; map (fun q -> Gate.Tdg q) wire ]
  in
  if active < 2 then match shape with `All_t -> t_stream | _ -> single
  else
    let cnot =
      map2
        (fun control off ->
          Gate.Cnot { control; target = (control + 1 + off) mod active })
        wire
        (int_bound (active - 2))
    in
    match shape with
    | `Uniform -> frequency [ (7, single); (3, cnot) ]
    | `Cnot_heavy -> frequency [ (1, single); (4, cnot) ]
    | `All_t -> t_stream
    | `Single_qubit_only -> single

let gen_circuit =
  let open QCheck2.Gen in
  int_range 1 8 >>= fun active ->
  frequency
    [
      (5, pure `Uniform);
      (2, pure `Cnot_heavy);
      (1, pure `All_t);
      (1, pure `Single_qubit_only);
    ]
  >>= fun shape ->
  (* empty circuits are a first-class shape, not a rare accident.  All-T
     streams are capped lower: every T costs a six-line ICM gadget plus
     a distillation box, so a handful already stresses the gadget path
     without drowning a campaign in routing work *)
  (match shape with
  | `All_t -> frequency [ (1, pure 0); (8, int_range 1 10) ]
  | _ -> frequency [ (1, pure 0); (7, int_range 1 24); (1, int_range 25 40) ])
  >>= fun n_gates ->
  list_repeat n_gates (gate_gen ~active ~shape) >>= fun gates ->
  (* idle tail: wires beyond [active] that no gate touches *)
  frequency [ (4, pure 0); (1, int_range 1 2) ] >>= fun idle ->
  (* optionally scramble commuting neighbours, covering the "permuted
     commuting gates" degenerate shape at generation time too *)
  frequency [ (5, pure None); (1, map Option.some (int_bound 999)) ]
  >>= fun permute_seed ->
  let c = Circuit.make ~name:"fuzz" ~n_qubits:(active + idle) gates in
  let c =
    match permute_seed with
    | None -> c
    | Some seed ->
        Generator.permute_commuting ~seed ~swaps:(List.length gates / 2) c
  in
  pure c

let gen =
  let open QCheck2.Gen in
  gen_circuit >>= fun circuit ->
  int_bound 9999 >>= fun seed ->
  frequency [ (7, pure 1); (2, pure 2); (1, pure 3) ] >>= fun restarts ->
  int_range 1 4 >>= fun jobs ->
  opt ~ratio:0.3 (int_range 1 6) >>= fun partition ->
  (* small thresholds force the hierarchical corridor router onto
     instances the default (1M cells) would route flat *)
  opt ~ratio:0.3 (int_range 16 512) >>= fun corridor_cells ->
  pure { circuit; seed; restarts; jobs; partition; corridor_cells }

(* Quick effort plus a hard annealing-move cap: the oracles check
   validity, determinism and metamorphic relations — none depend on
   placement quality — so per-case placement work is bounded to keep
   thousand-case campaigns (and shrinking, which re-runs the oracle per
   candidate) in CI budgets. *)
let config_of case =
  {
    Tqec_compress.Pipeline.default_config with
    Tqec_compress.Pipeline.effort = Tqec_place.Placer.Quick;
    sa_moves_cap = Some 3_000;
    seed = case.seed;
    restarts = case.restarts;
    jobs = Some case.jobs;
    partition = case.partition;
    corridor_cells = case.corridor_cells;
  }

let flag_vector case =
  Printf.sprintf "--seed %d -r %d -j %d%s%s" case.seed case.restarts case.jobs
    (match case.partition with
    | None -> ""
    | Some p -> Printf.sprintf " --partition %d" p)
    (match case.corridor_cells with
    | None -> ""
    | Some c -> Printf.sprintf " --corridor %d" c)

let print case =
  Printf.sprintf "%s# replay: tqecc check <this file as .qct> %s\n"
    (Qct.to_string case.circuit)
    (flag_vector case)
