module Lexer = Tqec_lint.Lexer

(* Fragments chosen to hit every lexer mode transition: comment
   open/close (nested and unbalanced), string quotes and escapes,
   quoted-string delimiters with and without ids, char-literal
   lookalikes vs type variables, operator runs, and plain idents.
   Concatenated with no separator discipline, so fragments merge into
   new forms (an open paren landing before a comment closer, a
   quoted-string opener before a stray bar, ...). *)
let fragments =
  [|
    "(*"; "*)"; "(**"; "\""; "\\\""; "\\\\"; "\\"; "{|"; "|}"; "{x|";
    "|x}"; "{|x"; "'"; "'a"; "'\\n'"; "'c'"; "Hashtbl.iter"; "with";
    "_"; "->"; "<-"; ":="; "|"; "("; ")"; "assert"; "false"; "A.b";
    "x"; " "; "\n"; "\t"; "0x1f"; "3.14"; "~-"; "@@"; "."; "*";
  |]

let gen =
  let open QCheck2.Gen in
  let fragment = map (fun i -> fragments.(i)) (int_bound (Array.length fragments - 1)) in
  let raw = map (String.make 1) (map Char.chr (int_bound 255)) in
  map (String.concat "")
    (list_size (int_bound 60) (frequency [ (9, fragment); (1, raw) ]))

let oracle src =
  match Lexer.scan src with
  | exception e -> Some ("scan raised: " ^ Printexc.to_string e)
  | lx ->
      let n = String.length src in
      let bad = ref None in
      let fail fmt = Printf.ksprintf (fun m -> if !bad = None then bad := Some m) fmt in
      let last_off = ref (-1) and last_line = ref 1 in
      Array.iter
        (fun (t : Lexer.token) ->
          let len = String.length t.Lexer.t_text in
          if len = 0 then fail "empty token at offset %d" t.Lexer.t_offset;
          if t.Lexer.t_offset <= !last_off then
            fail "offsets not increasing: %d after %d" t.Lexer.t_offset
              !last_off;
          if t.Lexer.t_line < !last_line then
            fail "line went backwards: %d after %d" t.Lexer.t_line !last_line;
          if t.Lexer.t_col < 1 then fail "column %d < 1" t.Lexer.t_col;
          if t.Lexer.t_offset < 0 || t.Lexer.t_offset + len > n then
            fail "token out of bounds at %d (+%d, src %d)" t.Lexer.t_offset
              len n
          else if String.sub src t.Lexer.t_offset len <> t.Lexer.t_text then
            fail "token text mismatch at offset %d" t.Lexer.t_offset;
          last_off := t.Lexer.t_offset;
          last_line := t.Lexer.t_line)
        lx.Lexer.tokens;
      let last_c = ref (-1) in
      Array.iter
        (fun (c : Lexer.comment) ->
          if c.Lexer.c_offset <= !last_c then
            fail "comment offsets not increasing at %d" c.Lexer.c_offset;
          if c.Lexer.c_end_line < c.Lexer.c_start_line then
            fail "comment ends (%d) before it starts (%d)" c.Lexer.c_end_line
              c.Lexer.c_start_line;
          last_c := c.Lexer.c_offset)
        lx.Lexer.comments;
      !bad

let test ~count =
  QCheck2.Test.make ~count ~name:"lint lexer total on token soup"
    ~print:(fun s -> Printf.sprintf "%S" s)
    gen
    (fun src ->
      match oracle src with
      | None -> true
      | Some msg -> QCheck2.Test.fail_report msg)
