(** Token-soup fuzzing for the lint lexer ({!Tqec_lint.Lexer}).

    The generator emits adversarial pseudo-OCaml: unbalanced comment
    delimiters, stray quotes and backslashes, quoted-string openers
    with and without their closers, char-literal lookalikes, raw
    bytes.  The oracle asserts [Lexer.scan] is total on all of it and
    that its output is well-formed: token offsets strictly increasing
    and in bounds, lines and columns positive, token text non-empty
    and matching the source bytes at its offset. *)

val gen : string QCheck2.Gen.t

val oracle : string -> string option
(** [None] when the scan is well-formed, [Some msg] describing the
    first violation otherwise. *)

val test : count:int -> QCheck2.Test.t
