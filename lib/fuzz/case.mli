(** A fuzzing case: a random Clifford+T circuit plus the pipeline
    configuration knobs the property oracles randomize over.

    The generator covers the parameter space the issue calls out —
    qubit count, T-count, gate mix, idle qubits, and the degenerate
    shapes (empty circuit, single qubit, all-T streams, permuted
    commuting gates) — and is built from QCheck2 combinators end to
    end, so integrated shrinking walks {e within} the space of
    well-formed cases: wire indices are generated total (CNOT targets
    can never collide with controls, single-qubit registers never see a
    CNOT), which means every shrink candidate is a valid circuit and
    failures reduce to minimal reproducers. *)

type t = {
  circuit : Tqec_circuit.Circuit.t;
  seed : int;  (** pipeline seed (annealing trajectories) *)
  restarts : int;  (** independent annealing trajectories, >= 1 *)
  jobs : int;  (** worker domains; results must not depend on it *)
  partition : int option;  (** divide-and-conquer placement threshold *)
  corridor_cells : int option;  (** hierarchical-routing threshold *)
}

val gen : t QCheck2.Gen.t

(** Generator for just the circuit component (format round-trip
    properties use it without the config knobs). *)
val gen_circuit : Tqec_circuit.Circuit.t QCheck2.Gen.t

(** [config_of case] is the pipeline configuration encoding the case's
    knobs (variant [Full] and default effort/strategy). *)
val config_of : t -> Tqec_compress.Pipeline.config

(** [flag_vector case] renders the knobs as the exact [tqecc] flags that
    replay the run: ["--seed S -r R -j J [--partition P] [--corridor C]"]. *)
val flag_vector : t -> string

(** [print case] is the replayable reproducer: the circuit in [.qct]
    syntax followed by a comment line with the [tqecc check] replay
    command (QCheck2's counterexample printer). *)
val print : t -> string
