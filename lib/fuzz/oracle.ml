open Tqec_compress

type fault = Volume_misreport | Route_drop_cell | Placement_collide

let fault_of_string = function
  | "volume" -> Some Volume_misreport
  | "route" -> Some Route_drop_cell
  | "overlap" -> Some Placement_collide
  | _ -> None

let fault_name = function
  | Volume_misreport -> "volume"
  | Route_drop_cell -> "route"
  | Placement_collide -> "overlap"

let misreport (r : Pipeline.t) =
  { r with Pipeline.volume = r.Pipeline.volume + 1 }

let plant fault (r : Pipeline.t) =
  match fault with
  | Volume_misreport -> misreport r
  | Route_drop_cell -> (
      let routing = r.Pipeline.routing in
      let rec amputate = function
        | (route : Tqec_route.Pathfinder.routed) :: rest
          when List.length route.Tqec_route.Pathfinder.r_cells >= 2 ->
            Some
              ({
                 route with
                 Tqec_route.Pathfinder.r_cells =
                   List.tl route.Tqec_route.Pathfinder.r_cells;
               }
              :: rest)
        | route :: rest ->
            Option.map (fun tail -> route :: tail) (amputate rest)
        | [] -> None
      in
      match amputate routing.Tqec_route.Pathfinder.routes with
      | Some routes ->
          {
            r with
            Pipeline.routing =
              { routing with Tqec_route.Pathfinder.routes };
          }
      | None -> misreport r)
  | Placement_collide ->
      let p = r.Pipeline.placement in
      if Array.length p.Tqec_place.Placer.node_pos < 2 then misreport r
      else begin
        let node_pos = Array.copy p.Tqec_place.Placer.node_pos in
        node_pos.(1) <- node_pos.(0);
        { r with Pipeline.placement = { p with Tqec_place.Placer.node_pos } }
      end

(* Promoted into the pipeline library so the CLI and build rules can
   print/diff it; the oracle families keep their historical name. *)
let fingerprint = Pipeline.fingerprint

let run_with config circuit = Pipeline.run ~config circuit

(* family 4: serve codec.  A case expressed as a daemon request must
   survive encode -> decode byte-exactly — the wire format and the fuzz
   generator evolve independently, and this is the tripwire that keeps
   them in sync.  Pure value-level round-trip; no socket, no server. *)
let check_codec (case : Case.t) =
  let module P = Tqec_serve.Protocol in
  let text = Tqec_circuit.Qct.to_string case.Case.circuit in
  let request =
    P.Compress
      {
        input =
          P.Qct
            { name = case.Case.circuit.Tqec_circuit.Circuit.name; text };
        knobs =
          {
            P.default_knobs with
            P.seed = case.Case.seed;
            restarts = case.Case.restarts;
            jobs = Some case.Case.jobs;
            partition = case.Case.partition;
            corridor = case.Case.corridor_cells;
          };
      }
  in
  match P.decode_request (P.encode_request request) with
  | Ok decoded when decoded = request -> []
  | Ok _ -> [ "codec: decoded request differs from the encoded one" ]
  | Error m -> [ Printf.sprintf "codec: round-trip failed to decode: %s" m ]

let verify_failures ~label (r : Pipeline.t) =
  let report = Pipeline.verify r in
  let fails =
    if Tqec_verify.Violation.ok report then []
    else
      List.map
        (fun v -> label ^ ": " ^ Tqec_verify.Violation.to_string v)
        report.Tqec_verify.Violation.violations
  in
  if r.Pipeline.routing.Tqec_route.Pathfinder.success then fails
  else (label ^ ": routing rip-up did not converge") :: fails

let check_case ?fault (case : Case.t) =
  let config = Case.config_of case in
  let r = run_with config case.Case.circuit in
  match fault with
  | Some f ->
      (* fault mode: the mutation must be caught by the verify family
         alone; derived runs would re-run the clean pipeline and mask
         the plant *)
      verify_failures ~label:("fault " ^ fault_name f) (plant f r)
  | None ->
      let failures = ref [] in
      let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
      (* family 4 first (cheap, pure): the serve-codec round trip *)
      List.iter (fun m -> failures := m :: !failures) (check_codec case);
      (* family 1: translation validation on the primary run *)
      List.iter (fun m -> failures := m :: !failures)
        (List.rev (verify_failures ~label:"verify" r));
      (* family 2: determinism.  jobs = 1 must be byte-identical to the
         case's jobs; a partition cap at the node count must be
         byte-identical to single-die placement *)
      let fp = fingerprint r in
      if case.Case.jobs > 1 then begin
        let r1 =
          run_with { config with Pipeline.jobs = Some 1 } case.Case.circuit
        in
        if fingerprint r1 <> fp then
          fail "determinism: jobs=1 diverges from jobs=%d (%s <> %s)"
            case.Case.jobs (fingerprint r1) fp
      end;
      let n_nodes =
        Array.length r.Pipeline.placement.Tqec_place.Placer.node_pos
      in
      if case.Case.partition = None && n_nodes > 0 then begin
        let rp =
          run_with
            { config with Pipeline.partition = Some n_nodes }
            case.Case.circuit
        in
        if fingerprint rp <> fp then
          fail "determinism: partition cap %d diverges from single-die"
            n_nodes
      end;
      (* family 5: corridor equivalence.  A case fuzzed with a small
         corridor threshold routed hierarchically (coarse tile-graph
         corridor + fine in-corridor search, corridor cache on); re-run
         flat, the exhaustive router must also verify clean, the
         placement — computed before routing and blind to the corridor
         knob — must be bit-identical, and the routed bounding volume
         may differ only by detour slack (corridor tie-breaks pick
         different equal-cost shapes, but a corridor route that blows
         the volume past the calibrated band means the coarse pass
         guided the fine search somewhere catastrophic) *)
      (match case.Case.corridor_cells with
      | None -> ()
      | Some _ ->
          let rflat =
            run_with
              { config with Pipeline.corridor_cells = None }
              case.Case.circuit
          in
          List.iter
            (fun m -> failures := m :: !failures)
            (List.rev (verify_failures ~label:"corridor-flat" rflat));
          if
            rflat.Pipeline.placement.Tqec_place.Placer.node_pos
            <> r.Pipeline.placement.Tqec_place.Placer.node_pos
            || rflat.Pipeline.placement.Tqec_place.Placer.rotated
               <> r.Pipeline.placement.Tqec_place.Placer.rotated
          then fail "corridor: corridor threshold perturbed the placement";
          let v = r.Pipeline.volume and vf = rflat.Pipeline.volume in
          if v > (2 * vf) + 64 || vf > (2 * v) + 64 then
            fail
              "corridor: corridor volume %d vs flat %d beyond the detour band"
              v vf);
      (* family 3: metamorphic *)
      let idle =
        run_with config (Tqec_circuit.Generator.add_idle_qubit case.Case.circuit)
      in
      if idle.Pipeline.volume > r.Pipeline.volume then
        fail "metamorphic: idle qubit raised volume %d -> %d"
          r.Pipeline.volume idle.Pipeline.volume;
      let permuted =
        Tqec_circuit.Generator.permute_commuting ~seed:case.Case.seed
          ~swaps:
            (List.length case.Case.circuit.Tqec_circuit.Circuit.gates / 2)
          case.Case.circuit
      in
      let icm_stats c = Tqec_icm.Icm.stats (Tqec_icm.Decompose.run c) in
      if icm_stats permuted <> icm_stats case.Case.circuit then
        fail "metamorphic: commuting permutation changed the ICM statistics";
      let canonical = Baselines.canonical_volume r.Pipeline.icm in
      let canonical' =
        Baselines.canonical_volume (Tqec_icm.Decompose.run permuted)
      in
      if canonical' <> canonical then
        fail "metamorphic: commuting permutation moved canonical volume %d -> %d"
          canonical canonical';
      (* compression tripwire against the closed-form uncompressed
         baseline.  Per-instance dominance over the canonical volume is
         not a theorem — on tiny circuits a single distillation box plus
         routing clearance exceeds it (worst observed full/canonical =
         2.4x on one-gate circuits) — so the oracle is a calibrated
         bound that a catastrophic volume regression still trips *)
      if canonical = 0 then begin
        if r.Pipeline.volume <> 0 then
          fail "metamorphic: module-free circuit placed volume %d (want 0)"
            r.Pipeline.volume
      end
      else if r.Pipeline.volume > (3 * canonical) + 64 then
        fail
          "metamorphic: compression blew past the canonical baseline (full %d > 3 * %d + 64)"
          r.Pipeline.volume canonical;
      (* restarts monotonicity: the multi-start winner minimizes the
         annealer's cost (alpha * placed volume + beta * wirelength) and
         lane 0 always completes, so on a single die best-of-R is never
         worse than single-start {e in that cost}.  Routed volume is not
         the compared metric, and partitioned placement composes
         per-group winners whose stitching carries no global guarantee —
         so the check is scoped to unpartitioned runs and the SA cost *)
      if case.Case.restarts > 1 && case.Case.partition = None then begin
        let r1 =
          run_with { config with Pipeline.restarts = 1 } case.Case.circuit
        in
        let cost (p : Pipeline.t) =
          p.Pipeline.placement.Tqec_place.Placer.sa_stats
            .Tqec_place.Sa.best_cost
        in
        if cost r > cost r1 +. 1e-6 then
          fail "metamorphic: %d restarts beat by 1 restart (cost %.1f > %.1f)"
            case.Case.restarts (cost r) (cost r1)
      end;
      List.rev !failures
