(* Chase–Lev work-stealing deque on OCaml 5 atomics (SC semantics), after
   Chase & Lev (SPAA '05) as formulated for C11 by Lê et al. (PPoPP '13).
   Owner pushes/pops at [bottom]; thieves CAS [top] upward.  [top] is
   monotonic, so a successful CAS uniquely claims one slot — no ABA.  The
   buffer lives in an Atomic so a thief ordered after a [bottom] write
   also sees the buffer that write stored into (growth publishes the new
   buffer *before* advancing [bottom]). *)

type 'a t = {
  top : int Atomic.t;
  bottom : int Atomic.t;
  buf : 'a array Atomic.t;
  dummy : 'a;
}

let min_capacity = 16

let create ~dummy () =
  {
    top = Atomic.make 0;
    bottom = Atomic.make 0;
    buf = Atomic.make (Array.make min_capacity dummy);
    dummy;
  }

let size d = max 0 (Atomic.get d.bottom - Atomic.get d.top)

(* Owner only.  Copies live slots [t, b) into a doubled buffer at the
   same logical indices (mod the new mask) and publishes it.  Thieves
   holding the old buffer stay correct: any slot a thief can still win
   holds the same element in both buffers. *)
let grow d b t a =
  let n = Array.length a in
  let a' = Array.make (2 * n) d.dummy in
  for i = t to b - 1 do
    a'.(i land ((2 * n) - 1)) <- a.(i land (n - 1))
  done;
  Atomic.set d.buf a';
  a'

let push d x =
  let b = Atomic.get d.bottom in
  let t = Atomic.get d.top in
  let a = Atomic.get d.buf in
  let a = if b - t >= Array.length a then grow d b t a else a in
  a.(b land (Array.length a - 1)) <- x;
  Atomic.set d.bottom (b + 1)

let pop d =
  let b = Atomic.get d.bottom - 1 in
  Atomic.set d.bottom b;
  let t = Atomic.get d.top in
  if b < t then begin
    (* Empty: restore the canonical empty state. *)
    Atomic.set d.bottom t;
    None
  end
  else begin
    let a = Atomic.get d.buf in
    let i = b land (Array.length a - 1) in
    let x = a.(i) in
    if b > t then begin
      (* More than one element: slot [b] is unreachable by thieves (a
         thief that could read index b would see bottom <= b first and
         refuse), so the owner takes it without synchronization. *)
      a.(i) <- d.dummy;
      Some x
    end
    else begin
      (* Last element: race thieves for it via the [top] CAS. *)
      let won = Atomic.compare_and_set d.top t (t + 1) in
      Atomic.set d.bottom (t + 1);
      if won then begin
        a.(i) <- d.dummy;
        Some x
      end
      else None
    end
  end

let steal d =
  let t = Atomic.get d.top in
  (* [bottom] must be read after [top]: seeing bottom > t then proves
     slot t was populated no later than that bottom write, and the buf
     read below (ordered later still) sees a buffer containing it. *)
  let b = Atomic.get d.bottom in
  if t >= b then None
  else begin
    let a = Atomic.get d.buf in
    let x = a.(t land (Array.length a - 1)) in
    if Atomic.compare_and_set d.top t (t + 1) then Some x else None
  end
