(** Persistent work-stealing scheduler over OCaml 5 domains ([Domain] +
    [Atomic] + [Mutex]/[Condition], no dependencies).

    Worker domains are spawned once and parked on a condition variable
    when idle; {!map}/{!run}/{!async} are submission fronts onto
    per-worker Chase–Lev deques plus a FIFO injector for external
    callers.  A blocked parent helps by draining tasks instead of
    sleeping, so nested parallelism composes: suite instances ×
    annealing restart lanes × routing batches all feed one pool, and no
    combination of nested [map]s can deadlock — even on a pool with
    zero workers, where the caller simply runs everything itself.

    Determinism: the scheduler only chooses where and when tasks run.
    Results land in submission-index order and the lowest-index failure
    wins, so parallel runs are bit-identical to serial ones whenever
    the tasks themselves are deterministic — the property every
    placement/routing/benchmark fan-out in this repo relies on. *)

type t
(** A pool instance.  Most callers never touch this: omitting [?pool]
    uses the lazily created process-wide pool, which grows on demand up
    to the largest worker count ever requested and is intentionally
    never shut down (parked domains cost nothing, and process exit with
    parked domains is clean). *)

(** [default_jobs ()] is the parallelism from the [TQEC_JOBS]
    environment variable when set to a positive integer, otherwise
    [Domain.recommended_domain_count ()].  [TQEC_JOBS=1] restores fully
    serial execution. *)
val default_jobs : unit -> int

(** [create ~workers] is a private fixed-size pool (it never grows past
    [workers]; [0] is allowed and makes every caller self-help).  For
    tests and benchmarks — production code should use the shared
    default pool. *)
val create : workers:int -> t

(** Stop and join a private pool's workers.  The caller must have no
    outstanding work on the pool.  Never needed for the default pool. *)
val shutdown : t -> unit

(** [map ?pool ?jobs f arr] is [Array.map f arr] computed with
    parallelism [jobs] (default {!default_jobs}); the caller
    participates, so [jobs = 2] means one worker plus the caller.
    Output order matches input order.  Safe to call from inside a task
    (nested fork-join): the nested caller helps drain its own subtasks.

    Exception safety: a raising task never deadlocks or poisons the
    pool.  Remaining tasks still run, and only then is the lowest-index
    task's exception re-raised on the caller — with its original
    backtrace, matching what the serial path would have thrown first.
    A [Domain.spawn] failure degrades to fewer workers. *)
val map : ?pool:t -> ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array

(** [run ?pool ?jobs thunks] forces an array of thunks in parallel. *)
val run : ?pool:t -> ?jobs:int -> (unit -> 'a) array -> 'a array

type 'a promise
(** A single in-flight task (see {!async}). *)

(** [async ?pool f] submits [f] to run concurrently with the caller and
    returns immediately.  On a pool without workers the task simply
    waits for {!await}, which runs it inline — overlap is best-effort,
    completion is guaranteed. *)
val async : ?pool:t -> (unit -> 'a) -> 'a promise

(** [await pr] returns the promise's value, helping with pool work
    (including the promised task itself) while it is pending.  Re-raises
    the task's exception with its original backtrace if it failed.  Must
    be called exactly once. *)
val await : 'a promise -> 'a

(** Scheduler counters, cumulative since pool creation.  [executed]
    counts tasks run anywhere (workers and helping callers), [stolen]
    the subset obtained by stealing from another worker's deque,
    [injected] the submissions that went through the external FIFO
    rather than a worker's own deque, [parks] how many times any
    participant slept on the condition variable, and [submitted] all
    tasks ever submitted.  Read racily (no lock): totals can lag by a
    few in-flight tasks.  [spawn_error] is [Some msg] when a
    [Domain.spawn] failed and the pool degraded to fewer workers than
    requested — callers still complete by helping, but the cause is
    kept for diagnosis. *)
type stats = {
  workers : int;
  executed : int;
  stolen : int;
  injected : int;
  parks : int;
  submitted : int;
  spawn_error : string option;
}

(** Counters for [pool] (default: the process-wide pool). *)
val stats : ?pool:t -> unit -> stats
