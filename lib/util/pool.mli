(** Small fork-join domain pool (OCaml 5 [Domain] + [Mutex], no
    dependencies).

    Tasks are independent; workers share them dynamically, so uneven
    costs balance across domains.  Results keep input order, which makes
    parallel runs bit-identical to serial ones whenever the tasks
    themselves are deterministic — the property the placement and
    benchmark fan-outs rely on. *)

(** [default_jobs ()] is the worker count from the [TQEC_JOBS]
    environment variable when set to a positive integer, otherwise
    [Domain.recommended_domain_count ()].  [TQEC_JOBS=1] restores fully
    serial execution. *)
val default_jobs : unit -> int

(** [map ?jobs f arr] is [Array.map f arr] computed by [jobs] domains
    (default {!default_jobs}).  Output order matches input order.

    Exception safety: a raising task never deadlocks or poisons the
    pool.  Remaining tasks still run, every spawned domain is joined,
    and only then is the lowest-index task's exception re-raised on the
    caller — with its original backtrace, matching what the serial path
    would have thrown first.  A [Domain.spawn] failure degrades to fewer
    workers instead of failing the call. *)
val map : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array

(** [run ?jobs thunks] forces an array of thunks in parallel. *)
val run : ?jobs:int -> (unit -> 'a) array -> 'a array
