(* Persistent work-stealing scheduler over OCaml 5 domains.

   Worker domains are spawned once per pool (the process-wide default
   pool grows on demand up to the largest [jobs] ever requested) and
   park on a condition variable when idle, so an idle pool costs
   nothing.  Each worker owns a Chase–Lev deque ({!Ws_deque}); tasks
   submitted from inside a worker go to its own deque (LIFO for the
   owner, so nested fork-join stays depth-first), tasks submitted from
   any other domain go through a mutex-protected FIFO injector, and
   idle workers pull injector work or steal from randomly chosen
   victims.  A caller blocked on {!map}/{!await} *helps* — it drains
   its own deque, the injector, and victims' deques until its batch
   completes — so nested parallelism composes without adding domains:
   suite instances × annealing lanes × routing batches all feed one
   pool, and a 1-worker pool can still run a jobs=8 nested workload
   without deadlock.

   Determinism: the scheduler decides only *where and when* tasks run.
   Each {!map} result is written into the slot of its submission index,
   exceptions are re-raised for the lowest failing index, and nothing
   a task can observe depends on which domain executed it (callers keep
   their RNG streams keyed by task index, never by worker).  Parallel
   runs are therefore bit-identical to serial ones whenever the tasks
   themselves are deterministic.

   Lost-wakeup freedom: a sleeper registers in [waiters] (an Atomic)
   and re-checks its wake condition *after* registering, while holding
   [lock]; a waker makes its condition true *before* reading [waiters].
   Under OCaml's sequentially consistent atomics, either the waker sees
   the registration (and broadcasts under the same lock), or the
   sleeper's re-check sees the condition — there is no interleaving in
   which both miss. *)

(* env-read: call-time capture — re-read on every call, never frozen at
   module load, so a long-running daemon sees updates and per-request
   [jobs] overrides (which all pool entry points accept) bypass it
   entirely.  Worker count never changes results, only speed. *)
let default_jobs () =
  match Sys.getenv_opt "TQEC_JOBS" with
  | Some s -> (
      match int_of_string_opt s with
      | Some v when v >= 1 -> v
      | _ -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

type task = unit -> unit

let idle_task : task = ignore

type worker = {
  wid : int;
  deque : task Ws_deque.t;
  (* Owner-written counters; {!stats} reads them racily (stale values
     only make the totals slightly out of date, never wrong-typed). *)
  mutable n_exec : int;
  mutable n_steal : int;
  mutable n_park : int;
}

type t = {
  mutable workers : worker array;
  (* [workers] only ever grows, under [lock]; thieves read it racily
     and may see a stale (shorter) array, which just narrows one
     steal sweep. *)
  mutable domains : unit Domain.t list;
  lock : Mutex.t;
  cond : Condition.t;
  waiters : int Atomic.t;
  inj : task Queue.t; (* guarded by [lock] *)
  inj_size : int Atomic.t; (* lock-free emptiness hint for [inj] *)
  mutable stopping : bool; (* written under [lock] *)
  max_workers : int;
  mutable spawn_failed : bool; (* degrade quietly, don't retry forever *)
  mutable spawn_error : string option; (* why, for [stats] *)
  (* Counters for non-worker participants (atomics: many writers). *)
  h_exec : int Atomic.t;
  h_steal : int Atomic.t;
  h_park : int Atomic.t;
  submitted : int Atomic.t;
  injected : int Atomic.t;
}

(* Which pool/worker the current domain belongs to, if any; routes
   nested submissions to the worker's own deque. *)
let current_key : (t * worker) option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let self_worker p =
  match Domain.DLS.get current_key with
  | Some (p', w) when p' == p -> Some w
  | _ -> None

(* ---- wakeups ---------------------------------------------------- *)

let work_available p =
  Atomic.get p.inj_size > 0
  || Array.exists (fun w -> Ws_deque.size w.deque > 0) p.workers

(* Call after making new work or a waited-on condition visible. *)
let wake p =
  if Atomic.get p.waiters > 0 then begin
    Mutex.lock p.lock;
    Condition.broadcast p.cond;
    Mutex.unlock p.lock
  end

(* ---- task acquisition ------------------------------------------- *)

let try_injector p =
  if Atomic.get p.inj_size = 0 then None
  else begin
    Mutex.lock p.lock;
    let r =
      if Queue.is_empty p.inj then None
      else begin
        Atomic.decr p.inj_size;
        Some (Queue.pop p.inj)
      end
    in
    Mutex.unlock p.lock;
    r
  end

(* Victim order only affects scheduling, never results, so any cheap
   generator will do (xorshift). *)
let next_rand seed =
  let s = !seed in
  let s = s lxor (s lsl 13) in
  let s = s lxor (s lsr 7) in
  let s = s lxor (s lsl 17) in
  let s = if s = 0 then 0x2545F491 else s in
  seed := s;
  s land max_int

(* One steal attempt per victim, starting from a random index.  A lost
   CAS race reads as "victim empty" and we move on; the caller's
   park-time double-check ([work_available]) catches anything left. *)
let try_steal p ~self ~seed =
  let ws = p.workers in
  let n = Array.length ws in
  if n = 0 then None
  else begin
    let start = next_rand seed mod n in
    let rec go k =
      if k >= n then None
      else begin
        let w = ws.((start + k) mod n) in
        let skip = match self with Some s -> s == w | None -> false in
        if skip then go (k + 1)
        else
          match Ws_deque.steal w.deque with
          | Some _ as r ->
              (match self with
              | Some s -> s.n_steal <- s.n_steal + 1
              | None -> Atomic.incr p.h_steal);
              r
          | None -> go (k + 1)
      end
    in
    go 0
  end

let find_task p ~self ~seed =
  let own = match self with Some w -> Ws_deque.pop w.deque | None -> None in
  match own with
  | Some _ as r -> r
  | None -> (
      match try_injector p with
      | Some _ as r -> r
      | None -> try_steal p ~self ~seed)

(* ---- worker main loop ------------------------------------------- *)

(* Submitted tasks never raise: every submission front wraps the user
   function and captures the outcome (see [map]/[async]). *)
let rec worker_loop p w seed =
  match find_task p ~self:(Some w) ~seed with
  | Some task ->
      w.n_exec <- w.n_exec + 1;
      task ();
      worker_loop p w seed
  | None ->
      Mutex.lock p.lock;
      Atomic.incr p.waiters;
      let exit_now =
        if work_available p then false
        else if p.stopping then true
        else begin
          w.n_park <- w.n_park + 1;
          Condition.wait p.cond p.lock;
          false
        end
      in
      Atomic.decr p.waiters;
      Mutex.unlock p.lock;
      if not exit_now then worker_loop p w seed

(* ---- helping (blocked parents) ---------------------------------- *)

(* Run pool tasks on the calling domain until [until ()] holds.  This
   is how a parent "waits": it can execute its own children (or any
   other pending task, including unrelated batches — help-first
   scheduling trades a little latency entanglement for deadlock
   freedom), and parks only when the whole pool looks empty. *)
let help p ~until =
  let self = self_worker p in
  let seed = ref (1 + ((Domain.self () :> int) * 0x9E3779B9)) in
  let rec go () =
    if not (until ()) then begin
      match find_task p ~self ~seed with
      | Some task ->
          (match self with
          | Some w -> w.n_exec <- w.n_exec + 1
          | None -> Atomic.incr p.h_exec);
          task ();
          go ()
      | None ->
          Mutex.lock p.lock;
          Atomic.incr p.waiters;
          if (not (until ())) && not (work_available p) then begin
            (match self with
            | Some w -> w.n_park <- w.n_park + 1
            | None -> Atomic.incr p.h_park);
            Condition.wait p.cond p.lock
          end;
          Atomic.decr p.waiters;
          Mutex.unlock p.lock;
          go ()
    end
  in
  go ()

(* ---- submission ------------------------------------------------- *)

let submit p task =
  Atomic.incr p.submitted;
  (match self_worker p with
  | Some w -> Ws_deque.push w.deque task
  | None ->
      Mutex.lock p.lock;
      Queue.push task p.inj;
      Atomic.incr p.inj_size;
      Mutex.unlock p.lock;
      Atomic.incr p.injected);
  wake p

(* ---- pool construction ------------------------------------------ *)

let make_pool ~max_workers =
  {
    workers = [||];
    domains = [];
    lock = Mutex.create ();
    cond = Condition.create ();
    waiters = Atomic.make 0;
    inj = Queue.create ();
    inj_size = Atomic.make 0;
    stopping = false;
    max_workers;
    spawn_failed = false;
    spawn_error = None;
    h_exec = Atomic.make 0;
    h_steal = Atomic.make 0;
    h_park = Atomic.make 0;
    submitted = Atomic.make 0;
    injected = Atomic.make 0;
  }

(* Called with [p.lock] held. *)
let spawn_worker p =
  let w =
    {
      wid = Array.length p.workers;
      deque = Ws_deque.create ~dummy:idle_task ();
      n_exec = 0;
      n_steal = 0;
      n_park = 0;
    }
  in
  let d =
    Domain.spawn (fun () ->
        Domain.DLS.set current_key (Some (p, w));
        worker_loop p w (ref (1 + (w.wid * 0x9E3779B9))))
  in
  (* Publish after the spawn succeeded so a failed spawn leaves no
     ghost worker for thieves to scan. *)
  p.workers <- Array.append p.workers [| w |];
  p.domains <- d :: p.domains

(* Grow (never shrink) to [want] workers, capped by [max_workers].  A
   [Domain.spawn] failure (domain/resource limit) degrades to fewer
   workers — callers still complete by helping. *)
let ensure_workers p want =
  let want = min want p.max_workers in
  if Array.length p.workers < want && not p.spawn_failed then begin
    Mutex.lock p.lock;
    (* swallow: spawn failure (domain/resource limit) is an expected
       degradation, not an error — but the cause is kept on the pool
       and surfaced through [stats] so operators can see why the pool
       is running under-provisioned. *)
    (try
       while Array.length p.workers < want && not p.spawn_failed do
         spawn_worker p
       done
     with e ->
       p.spawn_failed <- true;
       p.spawn_error <- Some (Printexc.to_string e));
    Mutex.unlock p.lock
  end

let create ~workers =
  let p = make_pool ~max_workers:(max 0 workers) in
  ensure_workers p workers;
  p

let shutdown p =
  Mutex.lock p.lock;
  p.stopping <- true;
  Condition.broadcast p.cond;
  Mutex.unlock p.lock;
  let ds = p.domains in
  p.domains <- [];
  List.iter Domain.join ds

(* The process-wide pool.  [max_workers] respects OCaml's 128-domain
   limit with headroom for the main domain and user-spawned ones.
   Never shut down: parked domains cost nothing, and a process exit
   with domains parked on [Condition.wait] is clean. *)
let global_pool = lazy (make_pool ~max_workers:118)

let get_pool = function Some p -> p | None -> Lazy.force global_pool

(* ---- fork-join fronts ------------------------------------------- *)

let map ?pool ?jobs f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
    let jobs = min jobs n in
    if jobs = 1 then Array.map f arr
    else begin
      let p = get_pool pool in
      ensure_workers p (jobs - 1);
      let results = Array.make n None in
      let remaining = Atomic.make n in
      for i = 0 to n - 1 do
        submit p (fun () ->
            let r =
              try Ok (f arr.(i))
              with e -> Error (e, Printexc.get_raw_backtrace ())
            in
            results.(i) <- Some r;
            (* The batch-complete edge is the parent's wake condition;
               the decrement publishes the slot write (see module
               comment on wakeups). *)
            if Atomic.fetch_and_add remaining (-1) = 1 then wake p)
      done;
      help p ~until:(fun () -> Atomic.get remaining = 0);
      (* Every task ran (the pool stays reusable); the lowest-index
         failure is re-raised with its original backtrace, matching
         what the serial path would have thrown first. *)
      Array.iter
        (function
          | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
          | Some (Ok _) | None -> ())
        results;
      Array.map
        (function
          | Some (Ok v) -> v
          (* partial: the completion barrier above filled every slot
             and re-raised any Error; an empty slot here is a
             scheduler bug, not an input condition *)
          | Some (Error _) | None -> assert false)
        results
    end
  end

let run ?pool ?jobs thunks = map ?pool ?jobs (fun thunk -> thunk ()) thunks

(* ---- single-task futures ---------------------------------------- *)

type 'a promise = {
  apool : t;
  cell : ('a, exn * Printexc.raw_backtrace) result option Atomic.t;
}

let async ?pool f =
  let p = get_pool pool in
  (* One worker is enough for overlap; a 0-worker pool (or a failed
     spawn) just defers the task to [await], which runs it inline. *)
  ensure_workers p 1;
  let cell = Atomic.make None in
  submit p (fun () ->
      let r =
        try Ok (f ()) with e -> Error (e, Printexc.get_raw_backtrace ())
      in
      Atomic.set cell (Some r);
      wake p);
  { apool = p; cell }

let await pr =
  help pr.apool ~until:(fun () ->
      match Atomic.get pr.cell with Some _ -> true | None -> false);
  match Atomic.get pr.cell with
  | Some (Ok v) -> v
  | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
  (* partial: [help ~until] returns only once the cell is filled *)
  | None -> assert false

(* ---- observability ---------------------------------------------- *)

type stats = {
  workers : int;
  executed : int;
  stolen : int;
  injected : int;
  parks : int;
  submitted : int;
  spawn_error : string option;
}

let stats ?pool () =
  let p = get_pool pool in
  let ws = p.workers in
  let executed = ref (Atomic.get p.h_exec)
  and stolen = ref (Atomic.get p.h_steal)
  and parks = ref (Atomic.get p.h_park) in
  Array.iter
    (fun w ->
      executed := !executed + w.n_exec;
      stolen := !stolen + w.n_steal;
      parks := !parks + w.n_park)
    ws;
  {
    workers = Array.length ws;
    executed = !executed;
    stolen = !stolen;
    injected = Atomic.get p.injected;
    parks = !parks;
    submitted = Atomic.get p.submitted;
    spawn_error = p.spawn_error;
  }
