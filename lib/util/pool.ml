(* Fork-join work-sharing over OCaml 5 domains.  Workers pull task
   indices from a mutex-protected counter, so uneven task costs balance
   automatically; results land in their input slot, so output order (and
   therefore every deterministic caller) is independent of the worker
   count. *)

let default_jobs () =
  match Sys.getenv_opt "TQEC_JOBS" with
  | Some s -> (
      match int_of_string_opt s with
      | Some v when v >= 1 -> v
      | _ -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let map ?jobs f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    let jobs =
      match jobs with Some j -> max 1 j | None -> default_jobs ()
    in
    let jobs = min jobs n in
    if jobs = 1 then Array.map f arr
    else begin
      let results = Array.make n None in
      let next = ref 0 in
      let lock = Mutex.create () in
      let take () =
        Mutex.lock lock;
        let i = !next in
        if i < n then incr next;
        Mutex.unlock lock;
        if i < n then Some i else None
      in
      let rec worker () =
        match take () with
        | None -> ()
        | Some i ->
            let r =
              try Ok (f arr.(i))
              with e -> Error (e, Printexc.get_raw_backtrace ())
            in
            results.(i) <- Some r;
            worker ()
      in
      (* [Domain.spawn] itself can fail (domain/resource limits); keep
         whatever spawned and degrade to fewer workers rather than
         leaking live domains or abandoning queued tasks *)
      let domains = ref [] in
      (try
         for _ = 1 to jobs - 1 do
           domains := Domain.spawn worker :: !domains
         done
       with _ -> ());
      worker ();
      List.iter Domain.join !domains;
      (* every domain has joined and every slot is filled: a failing
         task never deadlocks the join or poisons a later [map].  The
         lowest-index failure is re-raised with its original backtrace,
         matching what the serial path would have thrown first. *)
      Array.iter
        (function
          | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
          | Some (Ok _) | None -> ())
        results;
      Array.map
        (function
          | Some (Ok v) -> v
          | Some (Error _) | None -> assert false)
        results
    end
  end

let run ?jobs thunks = map ?jobs (fun thunk -> thunk ()) thunks
