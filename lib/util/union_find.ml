type t = { parent : int array; rank : int array; sizes : int array; mutable sets : int }

let create n =
  {
    parent = Array.init n (fun i -> i);
    rank = Array.make n 0;
    sizes = Array.make n 1;
    sets = n;
  }

let size t = Array.length t.parent

let rec find t i =
  let p = t.parent.(i) in
  if p = i then i
  else begin
    let root = find t p in
    t.parent.(i) <- root;
    root
  end

let union t a b =
  let ra = find t a and rb = find t b in
  if ra = rb then ra
  else begin
    t.sets <- t.sets - 1;
    let attach child root =
      t.parent.(child) <- root;
      t.sizes.(root) <- t.sizes.(root) + t.sizes.(child);
      root
    in
    if t.rank.(ra) < t.rank.(rb) then attach ra rb
    else if t.rank.(ra) > t.rank.(rb) then attach rb ra
    else begin
      t.rank.(ra) <- t.rank.(ra) + 1;
      attach rb ra
    end
  end

let same t a b = find t a = find t b
let component_size t i = t.sizes.(find t i)
let count_sets t = t.sets

let groups t =
  let n = size t in
  let tbl = Hashtbl.create 16 in
  for i = n - 1 downto 0 do
    let r = find t i in
    let members = try Hashtbl.find tbl r with Not_found -> [] in
    Hashtbl.replace tbl r (i :: members)
  done;
  (* hash-order: groups are sorted by representative before returning *)
  Hashtbl.fold (fun r members acc -> (r, members) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
