(** Deterministic pseudo-random numbers (SplitMix64).

    Every randomised stage of the flow (synthetic benchmark generation,
    simulated-annealing moves, greedy tie-breaking) draws from an explicit
    [Rng.t] so that whole-pipeline runs are reproducible from a single
    seed, independent of the OCaml stdlib [Random] state. *)

type t

val create : int -> t

(** [split r] derives an independent generator; the parent advances. *)
val split : t -> t

(** [copy r] duplicates the current state without advancing it. *)
val copy : t -> t

(** [split_n r k] derives [k] independent generators (the parent
    advances [k] times) — one per parallel worker. *)
val split_n : t -> int -> t array

(** [lane seed i] is a deterministic independent stream for worker lane
    [i] of a run seeded with [seed].  [lane seed 0] equals
    [create seed], so single-lane runs reproduce historical results. *)
val lane : int -> int -> t

(** [next_int64 r] is the raw 64-bit output. *)
val next_int64 : t -> int64

(** [int r n] is uniform in [0, n). @raise Invalid_argument if [n <= 0]. *)
val int : t -> int -> int

(** [int_in r lo hi] is uniform in the inclusive range. *)
val int_in : t -> int -> int -> int

(** [float r] is uniform in [0, 1). *)
val float : t -> float

val bool : t -> bool

(** [pick r arr] selects a uniform element of a non-empty array. *)
val pick : t -> 'a array -> 'a

(** [shuffle r arr] performs an in-place Fisher–Yates shuffle. *)
val shuffle : t -> 'a array -> unit
