type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let next_int64 r =
  r.state <- Int64.add r.state golden;
  let z = r.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split r = { state = next_int64 r }
let copy r = { state = r.state }
let split_n r k = Array.init k (fun _ -> split r)

(* Lane 0 is exactly [create seed] so a single-lane run reproduces the
   historical single-rng behaviour; other lanes start from the SplitMix64
   output of a seed+lane mix, giving independent streams. *)
let lane seed i =
  if i = 0 then create seed
  else
    let mixed =
      { state = Int64.add (Int64.of_int seed) (Int64.mul golden (Int64.of_int i)) }
    in
    { state = next_int64 mixed }

let int r n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* keep 62 bits so the value fits OCaml's 63-bit native int *)
  let v = Int64.to_int (Int64.shift_right_logical (next_int64 r) 2) in
  v mod n

let int_in r lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int r (hi - lo + 1)

let float r =
  let v = Int64.to_float (Int64.shift_right_logical (next_int64 r) 11) in
  v /. 9007199254740992.0

let bool r = Int64.logand (next_int64 r) 1L = 1L

let pick r arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int r (Array.length arr))

let shuffle r arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int r (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
