(** Small numeric helpers used by reports and benchmark tables. *)

(** [mean xs] of a non-empty list. @raise Invalid_argument on empty. *)
val mean : float list -> float

(** [geomean xs] geometric mean of positive values. *)
val geomean : float list -> float

val min_max : float list -> float * float

(** [mean_finite xs] is the mean of the finite values in [xs]; [nan]
    when none are finite (callers render that as "n/a") — the averaging
    companion of {!ratio}/{!percent_reduction}, which mark degenerate
    inputs with [nan]. *)
val mean_finite : float list -> float

(** [ratio a b] is [a /. b]; returns [nan] when [b = 0.]. *)
val ratio : float -> float -> float

(** [percent_reduction before after] is the relative reduction in percent,
    e.g. [percent_reduction 100. 53.] = 47.; returns [nan] when
    [before = 0.]. *)
val percent_reduction : float -> float -> float

(** [clamp lo hi v]. *)
val clamp : int -> int -> int -> int

val clamp_float : float -> float -> float -> float

(** [peak_rss_kb ()] is the process's peak resident set size in kB, read
    from [/proc/self/status] ([VmHWM]); [None] where unavailable —
    non-Linux hosts, a missing or unreadable status file, a [VmHWM] line
    with no digits — never an exception.  The scale-tier benchmarks
    render [None] as "n/a" next to wall time.  [?path] overrides the
    proc file location (used by the degradation tests). *)
val peak_rss_kb : ?path:string -> unit -> int option
