(** Chase–Lev work-stealing deque (single owner, many thieves).

    The owner pushes and pops at the bottom (LIFO — newest first, which
    keeps nested fork-join work depth-first and cache-warm); thieves
    steal from the top (FIFO — oldest first, which hands them the
    coarsest-grained tasks).  [top] and [bottom] are OCaml [Atomic]s
    (sequentially consistent), the element buffer is a plain array: the
    protocol guarantees owner and thieves never access a live slot
    concurrently, and the buffer pointer itself is re-read through an
    [Atomic] after [bottom] so a thief that observes a push also
    observes the (possibly grown) buffer it landed in.

    Every element is returned exactly once: the single-element
    owner/thief race and thief/thief races are decided by a CAS on
    [top], which increases monotonically (no ABA). *)

type 'a t

(** [create ~dummy ()] is an empty deque.  [dummy] fills vacated and
    never-used slots so popped elements don't linger for the GC; it is
    never returned. *)
val create : dummy:'a -> unit -> 'a t

(** Owner only. Amortized O(1); the buffer grows geometrically. *)
val push : 'a t -> 'a -> unit

(** Owner only.  Takes the newest element, [None] when empty. *)
val pop : 'a t -> 'a option

(** Any domain.  Takes the oldest element; [None] when the deque looks
    empty *or* when a race was lost — callers treat both as "try
    another victim", so a lost race never spins here. *)
val steal : 'a t -> 'a option

(** Racy size hint (never negative); exact only when quiescent.  Used
    by the scheduler's park double-check, where a stale non-zero answer
    merely costs one extra scan and a stale zero is caught by the
    submit-side wakeup. *)
val size : 'a t -> int
