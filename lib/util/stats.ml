let mean = function
  | [] -> invalid_arg "Stats.mean: empty list"
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let geomean = function
  | [] -> invalid_arg "Stats.geomean: empty list"
  | xs ->
      let log_sum =
        List.fold_left
          (fun acc x ->
            if x <= 0. then invalid_arg "Stats.geomean: non-positive value"
            else acc +. log x)
          0. xs
      in
      exp (log_sum /. float_of_int (List.length xs))

let min_max = function
  | [] -> invalid_arg "Stats.min_max: empty list"
  | x :: xs ->
      List.fold_left (fun (lo, hi) v -> (min lo v, max hi v)) (x, x) xs

let mean_finite xs =
  match List.filter Float.is_finite xs with [] -> nan | ys -> mean ys

let ratio a b = if b = 0. then nan else a /. b

let percent_reduction before after =
  if before = 0. then nan else 100. *. (before -. after) /. before
let clamp lo hi v = max lo (min hi v)
let clamp_float lo hi v = Float.max lo (Float.min hi v)

(* Peak resident set size from /proc/self/status (VmHWM), in kB.  Linux
   only; None where the proc file or the field is missing, truncated or
   unreadable mid-scan, so callers degrade to "n/a" instead of failing
   on other platforms (?path exists for the degradation tests). *)
let peak_rss_kb ?(path = "/proc/self/status") () =
  match open_in path with
  | exception Sys_error _ -> None
  | ic ->
      let prefix = "VmHWM:" in
      let rec scan () =
        match input_line ic with
        | exception End_of_file -> None
        | exception Sys_error _ -> None
        | line ->
            if String.length line > String.length prefix
               && String.sub line 0 (String.length prefix) = prefix
            then
              let rest =
                String.sub line (String.length prefix)
                  (String.length line - String.length prefix)
              in
              let digits =
                String.to_seq rest
                |> Seq.filter (fun c -> c >= '0' && c <= '9')
                |> String.of_seq
              in
              int_of_string_opt digits
            else scan ()
      in
      Fun.protect ~finally:(fun () -> close_in_noerr ic) scan
