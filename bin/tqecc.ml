(* tqecc — command-line driver for the TQEC bridge-compression flow.

   Subcommands:
     stats    — decomposition statistics of a circuit (.real file or a
                named suite benchmark)
     compress — run the full flow (or a baseline variant) and report the
                space-time volume
     table1 / table2 / table3 — regenerate the paper's tables
     fig1     — regenerate the Fig. 1 volume sequence
     render   — print the canonical geometric description (small inputs)
     serve    — long-lived compression daemon on a unix socket, with an
                LRU result cache and bounded admission
     request  — client for a running daemon *)

open Cmdliner
module Suite = Tqec_circuit.Suite
module Pipeline = Tqec_compress.Pipeline
module Experiments = Tqec_compress.Experiments
module Report = Tqec_compress.Report

(* CLI-grade failure: a malformed instance name or fixture is a usage
   error (message + exit 2), never an uncaught exception trace. *)
let die fmt =
  Printf.ksprintf
    (fun msg ->
      prerr_endline ("tqecc: " ^ msg);
      exit 2)
    fmt

let load_circuit input =
  match Suite.find input with
  | Some entry -> Suite.circuit entry
  | None -> (
      match Tqec_circuit.Generator.tier_of_name input with
      | Some c -> c
      | None ->
          if Sys.file_exists input then
            if Filename.check_suffix input ".qct" then
              match Tqec_circuit.Qct.parse_file input with
              | c -> c
              | exception Tqec_circuit.Qct.Parse_error { line; message } ->
                  die "%s:%d: %s" input line message
            else (
              try Tqec_circuit.Revlib.parse_file input
              with Failure msg | Invalid_argument msg ->
                die "%s: %s" input msg)
          else
            die
              "unknown benchmark %S (not a suite name, not a tier-x<k> scale \
               tier, not a file); suite: %s"
              input
              (String.concat ", " Suite.names))

let input_arg =
  let doc =
    "Input circuit: a RevLib .real file, a Clifford+T .qct fixture (e.g. a \
     shrunk fuzzing reproducer), a benchmark name (e.g. rd84_142) or a \
     tier-x<k> scale tier."
  in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"CIRCUIT" ~doc)

(* The CLI layer is where the environment becomes a default: one read
   per process invocation, passed down as explicit config — library code
   below never captures TQEC_DEBUG ambiently. *)
let debug_from_env () = Sys.getenv_opt "TQEC_DEBUG" <> None

let debug_arg =
  let doc =
    "Per-stage progress trace on stderr (also enabled by \\$(b,TQEC_DEBUG))."
  in
  Arg.(value & flag & info [ "debug" ] ~doc)

let effort_arg =
  let doc = "Placement effort: quick, normal or full." in
  let parse s =
    match Tqec_place.Placer.effort_of_string s with
    | Some e -> Ok e
    | None -> Error (`Msg "expected quick|normal|full")
  in
  let print ppf e =
    Format.pp_print_string ppf
      (match e with
      | Tqec_place.Placer.Quick -> "quick"
      | Tqec_place.Placer.Normal -> "normal"
      | Tqec_place.Placer.Full -> "full")
  in
  Arg.(
    value
    & opt (conv (parse, print)) Tqec_place.Placer.Quick
    & info [ "e"; "effort" ] ~docv:"EFFORT" ~doc)

let seed_arg =
  let doc = "Random seed for the annealer and tie-breaking." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let restarts_arg =
  let doc =
    "Independent annealing trajectories per placement (multi-start; the \
     best result wins).  Deterministic in (seed, restarts) whatever the \
     worker count."
  in
  Arg.(value & opt int 1 & info [ "r"; "restarts" ] ~docv:"K" ~doc)

let jobs_arg =
  let doc =
    "Worker domains for parallel placement restarts, per-iteration \
     routing batches, and benchmark fan-out.  Defaults to \
     \\$(b,TQEC_JOBS) or the machine's domain count; 1 forces serial \
     execution.  Results are identical for any value."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let early_stop_arg =
  let doc =
    "Adaptive multi-start: relative margin by which a restart's best \
     may trail the shared global best before it stops early (e.g. \
     0.05); $(b,off) disables early stopping.  Lane 0 always runs to \
     completion and results stay deterministic in (seed, restarts) for \
     any worker count."
  in
  let parse s =
    if String.lowercase_ascii s = "off" then Ok None
    else
      match float_of_string_opt s with
      | Some m when m >= 0. -> Ok (Some m)
      | _ -> Error (`Msg "expected a non-negative margin or 'off'")
  in
  let print ppf = function
    | None -> Format.pp_print_string ppf "off"
    | Some m -> Format.fprintf ppf "%g" m
  in
  Arg.(
    value
    & opt (conv (parse, print))
        Pipeline.default_config.Pipeline.early_stop_margin
    & info [ "early-stop" ] ~docv:"MARGIN" ~doc)

let partition_arg =
  let doc =
    "Node-count cap for divide-and-conquer placement: an instance with \
     more super-module nodes is partitioned (deterministic BFS \
     bisection of the net hypergraph), each part annealed \
     independently, and the parts stitched by shelf packing.  Defaults \
     to \\$(b,TQEC_PARTITION); $(b,off) keeps the single-die annealer \
     on any instance size.  Results are deterministic in (seed, \
     restarts, cap) for any worker count."
  in
  let parse s =
    if String.lowercase_ascii s = "off" then Ok None
    else
      match int_of_string_opt s with
      | Some v when v >= 1 -> Ok (Some v)
      | _ -> Error (`Msg "expected a positive node cap or 'off'")
  in
  let print ppf = function
    | None -> Format.pp_print_string ppf "off"
    | Some v -> Format.pp_print_int ppf v
  in
  Arg.(
    value
    & opt (conv (parse, print)) (Experiments.partition_from_env ())
    & info [ "partition" ] ~docv:"CAP" ~doc)

let corridor_arg =
  let doc =
    "Hierarchical-routing threshold: search windows above this many cells \
     take the coarse corridor path.  $(b,off) keeps the router's default.  \
     Recorded in fuzzing reproducers so a shrunk case replays its exact \
     routing trajectory."
  in
  let parse s =
    if String.lowercase_ascii s = "off" then Ok None
    else
      match int_of_string_opt s with
      | Some v when v >= 1 -> Ok (Some v)
      | _ -> Error (`Msg "expected a positive cell count or 'off'")
  in
  let print ppf = function
    | None -> Format.pp_print_string ppf "off"
    | Some v -> Format.pp_print_int ppf v
  in
  Arg.(
    value
    & opt (conv (parse, print)) None
    & info [ "corridor" ] ~docv:"CELLS" ~doc)

let corridor_cache_arg =
  let doc =
    "Corridor reuse across routing negotiation iterations: $(b,on) \
     (default) replays a net's coarse corridor when the grid's tile \
     summary generations prove it unchanged, $(b,off) recomputes every \
     coarse search.  Routes are bit-identical either way — off exists \
     for cross-checks and benchmark baselines."
  in
  let parse s =
    match String.lowercase_ascii s with
    | "on" -> Ok true
    | "off" -> Ok false
    | _ -> Error (`Msg "expected on|off")
  in
  let print ppf v = Format.pp_print_string ppf (if v then "on" else "off") in
  Arg.(
    value
    & opt (conv (parse, print)) true
    & info [ "corridor-cache" ] ~docv:"on|off" ~doc)

let scale_arg =
  let doc = "Scale instances down by this divisor (benchmarks only)." in
  Arg.(value & opt int 1 & info [ "scale" ] ~docv:"K" ~doc)

let variant_arg =
  let doc = "Flow variant: full (ours), dual-only ([10]), modular." in
  let parse = function
    | "full" -> Ok Pipeline.Full
    | "dual-only" -> Ok Pipeline.Dual_only
    | "modular" -> Ok Pipeline.Modular_only
    | _ -> Error (`Msg "expected full|dual-only|modular")
  in
  let print ppf v =
    Format.pp_print_string ppf
      (match v with
      | Pipeline.Full -> "full"
      | Pipeline.Dual_only -> "dual-only"
      | Pipeline.Modular_only -> "modular")
  in
  Arg.(
    value
    & opt (conv (parse, print)) Pipeline.Full
    & info [ "variant" ] ~docv:"VARIANT" ~doc)

let stats_cmd =
  let run input =
    let c = load_circuit input in
    let icm = Tqec_icm.Decompose.run (Tqec_circuit.Clifford_t.decompose c) in
    let s = Tqec_icm.Icm.stats icm in
    Format.printf "%s: %a@." c.Tqec_circuit.Circuit.name Tqec_icm.Icm.pp_stats s;
    Format.printf "canonical volume: %s@."
      (Tqec_util.Pretty.int_with_commas
         (Tqec_compress.Baselines.canonical_volume icm))
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Decomposition statistics of a circuit.")
    Term.(const run $ input_arg)

let optimize_arg =
  let doc = "Run the peephole optimizer before decomposition." in
  Arg.(value & flag & info [ "O"; "optimize" ] ~doc)

let timings_arg =
  let doc =
    "Print per-stage wall times and the work-stealing scheduler's \
     counters (tasks executed, steals, injector traffic, parks) after \
     the run."
  in
  Arg.(value & flag & info [ "timings" ] ~doc)

let print_timings (r : Pipeline.t) =
  Format.printf "stage timings:@.";
  List.iter
    (fun (name, dt) -> Format.printf "  %-10s %8.3fs@." name dt)
    r.Pipeline.timings;
  let s = Tqec_util.Pool.stats () in
  Format.printf
    "scheduler: workers=%d submitted=%d executed=%d stolen=%d injected=%d \
     parks=%d@."
    s.Tqec_util.Pool.workers s.Tqec_util.Pool.submitted
    s.Tqec_util.Pool.executed s.Tqec_util.Pool.stolen
    s.Tqec_util.Pool.injected s.Tqec_util.Pool.parks;
  (match s.Tqec_util.Pool.spawn_error with
  | None -> ()
  | Some msg -> Format.printf "scheduler: degraded (spawn failed: %s)@." msg);
  let rc = Tqec_route.Counters.stats () in
  Format.printf
    "router: corridor-cache hits=%d misses=%d stale=%d searches \
     coarse=%d fine=%d flat=%d fallbacks=%d scratch-grows=%d@."
    rc.Tqec_route.Counters.cache_hits rc.Tqec_route.Counters.cache_misses
    rc.Tqec_route.Counters.cache_stale rc.Tqec_route.Counters.coarse_searches
    rc.Tqec_route.Counters.fine_searches rc.Tqec_route.Counters.flat_searches
    rc.Tqec_route.Counters.flat_fallbacks
    rc.Tqec_route.Counters.scratch_grows

let porcelain_arg =
  let doc =
    "Deterministic single-line output: the result summary without the \
     elapsed time — byte-identical to what $(b,tqecc request) receives \
     from a serving daemon for the same input and knobs."
  in
  Arg.(value & flag & info [ "porcelain" ] ~doc)

let compress_cmd =
  let run input variant effort seed scale restarts jobs early_stop partition
      corridor corridor_cache optimize timings porcelain debug =
    let c =
      match Suite.find input with
      | Some entry -> Suite.scaled ~factor:(max 1 scale) entry
      | None -> load_circuit input
    in
    let c =
      if optimize then begin
        let c' = Tqec_circuit.Optimize.run c in
        Format.printf "peephole: %d gates cancelled@."
          (Tqec_circuit.Circuit.n_gates c - Tqec_circuit.Circuit.n_gates c');
        c'
      end
      else c
    in
    let config =
      { Pipeline.default_config with variant; effort; seed;
        restarts = max 1 restarts; jobs; early_stop_margin = early_stop;
        partition; corridor_cells = corridor; corridor_cache;
        debug = debug || debug_from_env () }
    in
    let r =
      match Pipeline.run ~config c with
      | r -> r
      | exception Pipeline.Stage_failure { stage; message } ->
          die "%s stage failed: %s" stage message
    in
    if porcelain then print_endline (Pipeline.summary r)
    else begin
      let p = r.Pipeline.placement in
      Format.printf
        "%s: volume=%s (%dx%dx%d) modules=%d nodes=%d bridges=%d routed=%b \
         elapsed=%.2fs@."
        c.Tqec_circuit.Circuit.name
        (Tqec_util.Pretty.int_with_commas r.Pipeline.volume)
        p.Tqec_place.Placer.width p.Tqec_place.Placer.height
        p.Tqec_place.Placer.depth r.Pipeline.stages.Pipeline.st_modules
        r.Pipeline.stages.Pipeline.st_nodes
        r.Pipeline.stages.Pipeline.st_dual_bridges
        r.Pipeline.routing.Tqec_route.Pathfinder.success r.Pipeline.elapsed
    end;
    if timings then print_timings r;
    match Pipeline.check r with
    | [] -> ()
    | issues ->
        List.iter (Format.eprintf "warning: %s@.") issues;
        exit 1
  in
  Cmd.v
    (Cmd.info "compress" ~doc:"Run the bridge-compression flow.")
    Term.(const run $ input_arg $ variant_arg $ effort_arg $ seed_arg
          $ scale_arg $ restarts_arg $ jobs_arg $ early_stop_arg
          $ partition_arg $ corridor_arg $ corridor_cache_arg $ optimize_arg
          $ timings_arg $ porcelain_arg $ debug_arg)

let experiment_config effort scale seed restarts jobs early_stop benchmarks =
  {
    Experiments.effort;
    scale;
    auto_scale = Sys.getenv_opt "TQEC_FULLSIZE" = None;
    seed;
    benchmarks = (if benchmarks = [] then Suite.names else benchmarks);
    restarts = max 1 restarts;
    jobs;
    early_stop_margin = early_stop;
    partition = Experiments.partition_from_env ();
    debug = debug_from_env ();
  }

let benchmarks_arg =
  let doc = "Restrict to the given benchmark names." in
  Arg.(value & opt_all string [] & info [ "b"; "benchmark" ] ~docv:"NAME" ~doc)

let table_cmd name doc render =
  let run effort scale seed restarts jobs early_stop benchmarks =
    let config =
      experiment_config effort scale seed restarts jobs early_stop benchmarks
    in
    print_string (render config)
  in
  Cmd.v (Cmd.info name ~doc)
    Term.(const run $ effort_arg $ scale_arg $ seed_arg $ restarts_arg
          $ jobs_arg $ early_stop_arg $ benchmarks_arg)

let table1_cmd =
  table_cmd "table1" "Regenerate Table 1 (benchmark statistics)."
    (fun config -> Report.table1 (Experiments.run_all config))

let table2_cmd =
  table_cmd "table2" "Regenerate Table 2 (volume vs canonical and Lin [11])."
    (fun config -> Report.table2 (Experiments.run_all config))

let table3_cmd =
  table_cmd "table3" "Regenerate Table 3 (volume vs Hsu [10])."
    (fun config -> Report.table3 (Experiments.run_all config))

let fig1_cmd =
  let run () = print_string (Report.fig1 (Experiments.fig1_series ())) in
  Cmd.v
    (Cmd.info "fig1" ~doc:"Regenerate the Fig. 1 volume sequence.")
    Term.(const run $ const ())

let ablate_cmd =
  let scale_doc = "Instance scale divisor for the ablation studies." in
  let ablate_scale =
    Cmdliner.Arg.(value & opt int 8 & info [ "scale" ] ~docv:"K" ~doc:scale_doc)
  in
  let run scale = print_string (Tqec_compress.Ablation.run_default ~scale ()) in
  Cmd.v
    (Cmd.info "ablate"
       ~doc:"Run the ablation studies (I-shape, flipping seeds, z_cap, effort).")
    Term.(const run $ ablate_scale)

let export_cmd =
  let out_arg =
    Cmdliner.Arg.(
      value & opt string "tqec.obj"
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output OBJ path.")
  in
  let force_arg =
    Cmdliner.Arg.(
      value & flag
      & info [ "force" ]
          ~doc:
            "Write the OBJ even when verification fails (the report is \
             still printed to stderr).")
  in
  let run input variant effort seed scale jobs out force debug =
    let c =
      match Suite.find input with
      | Some entry -> Suite.scaled ~factor:(max 1 scale) entry
      | None -> load_circuit input
    in
    let config =
      { Pipeline.default_config with variant; effort; seed; jobs;
        debug = debug || debug_from_env () }
    in
    let r = Pipeline.run ~config c in
    (* Undocumented test hook: plant a fault after the run so the
       export-gate regression rule (bench/dune) can prove the gate
       actually refuses unsound results. *)
    let r =
      match Sys.getenv_opt "TQEC_EXPORT_FAULT" with
      | Some "volume" -> { r with Pipeline.volume = r.Pipeline.volume + 1 }
      | Some ("" | "0") | None -> r
      | Some other ->
          failwith (Printf.sprintf "unknown TQEC_EXPORT_FAULT %S" other)
    in
    (* Verify-on-export: never ship geometry the translation validator
       rejects.  --force downgrades the refusal to a warning. *)
    let report = Pipeline.verify r in
    if not (Tqec_verify.Violation.ok report) then begin
      prerr_string (Tqec_verify.Violation.render report);
      if force then
        Format.eprintf "export: result is UNSOUND; writing %s anyway (--force)@."
          out
      else begin
        Format.eprintf
          "export: refusing to write %s for an unsound result (use --force \
           to override)@."
          out;
        exit 1
      end
    end;
    let g = Tqec_compress.Emit.geometry r in
    Tqec_geom.Export.write_obj out g;
    Format.printf "wrote %s (%s; volume %s)@." out (Tqec_geom.Render.summary g)
      (Tqec_util.Pretty.int_with_commas r.Pipeline.volume)
  in
  Cmd.v
    (Cmd.info "export"
       ~doc:
         "Compress a circuit and export the geometry as Wavefront OBJ.  \
          The whole-pipeline translation validation runs first; an \
          unsound result is refused (non-zero exit) unless --force is \
          given.")
    Term.(const run $ input_arg $ variant_arg $ effort_arg $ seed_arg
          $ scale_arg $ jobs_arg $ out_arg $ force_arg $ debug_arg)

let check_cmd =
  let stage_arg =
    let doc =
      "Verify only this stage (repeatable): icm, pd-graph, ishape, \
       flipping, dual-bridge, placement, routing or geometry.  Default: \
       all stages."
    in
    let parse s =
      match Tqec_verify.Violation.stage_of_string s with
      | Some st -> Ok st
      | None ->
          Error
            (`Msg
              (Printf.sprintf "unknown stage %S (expected %s)" s
                 (String.concat "|" Tqec_verify.Violation.stage_names)))
    in
    let print ppf st =
      Format.pp_print_string ppf (Tqec_verify.Violation.stage_name st)
    in
    Arg.(
      value
      & opt_all (conv (parse, print)) []
      & info [ "s"; "stage" ] ~docv:"STAGE" ~doc)
  in
  let fingerprint_arg =
    let doc =
      "Also print the determinism fingerprint: a digest of the reported \
       volume, every node position/rotation and every routed cell.  Two \
       runs print the same line iff they agree on the full geometric \
       result, so build rules diff it across worker counts and \
       corridor-cache settings."
    in
    Arg.(value & flag & info [ "fingerprint" ] ~doc)
  in
  let run input variant effort seed scale restarts jobs early_stop partition
      corridor corridor_cache fingerprint stages debug =
    let c =
      match Suite.find input with
      | Some entry -> Suite.scaled ~factor:(max 1 scale) entry
      | None -> load_circuit input
    in
    let config =
      { Pipeline.default_config with variant; effort; seed;
        restarts = max 1 restarts; jobs; early_stop_margin = early_stop;
        partition; corridor_cells = corridor; corridor_cache;
        debug = debug || debug_from_env () }
    in
    let r = Pipeline.run ~config c in
    let stages = match stages with [] -> None | ss -> Some ss in
    let report = Pipeline.verify ?stages r in
    Printf.printf "%s: volume=%s\n%s%!" c.Tqec_circuit.Circuit.name
      (Tqec_util.Pretty.int_with_commas r.Pipeline.volume)
      (Tqec_verify.Violation.render report);
    if fingerprint then
      Printf.printf "fingerprint: %s\n%!" (Pipeline.fingerprint r);
    if not (Tqec_verify.Violation.ok report) then exit 1
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Run the flow and the whole-pipeline translation validation: \
          every stage boundary's invariants are re-derived independently \
          and cross-checked.  Non-zero exit on any violation.")
    Term.(const run $ input_arg $ variant_arg $ effort_arg $ seed_arg
          $ scale_arg $ restarts_arg $ jobs_arg $ early_stop_arg
          $ partition_arg $ corridor_arg $ corridor_cache_arg
          $ fingerprint_arg $ stage_arg $ debug_arg)

(* ------------------------------------------------------------------ *)
(* serve / request                                                    *)
(* ------------------------------------------------------------------ *)

module Serve = Tqec_serve.Server
module Client = Tqec_serve.Client
module Protocol = Tqec_serve.Protocol

let socket_arg =
  let doc = "Unix-domain socket path of the serving daemon." in
  Arg.(
    value
    & opt string Serve.default_config.Serve.socket_path
    & info [ "socket" ] ~docv:"PATH" ~doc)

let serve_cmd =
  let capacity_arg =
    let doc =
      "Admission cap: cache-miss requests admitted but not yet answered.  \
       Beyond it, requests receive a structured busy response immediately."
    in
    Arg.(value & opt int Serve.default_config.Serve.capacity
         & info [ "capacity" ] ~docv:"N" ~doc)
  in
  let cache_mb_arg =
    let doc = "Result-cache byte budget in MiB (0 disables caching)." in
    Arg.(value & opt int 16 & info [ "cache-mb" ] ~docv:"MB" ~doc)
  in
  let max_jobs_arg =
    let doc = "Clamp on worker domains any single request may use." in
    Arg.(value & opt (some int) None & info [ "max-jobs" ] ~docv:"N" ~doc)
  in
  let verbose_arg =
    let doc = "Log requests (hits, misses, busy) on stderr." in
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc)
  in
  let run socket capacity cache_mb max_jobs verbose =
    if capacity < 1 then die "--capacity must be >= 1";
    if cache_mb < 0 then die "--cache-mb must be >= 0";
    (* env-read: call-time capture at the CLI layer, like TQEC_DEBUG
       above — a test hook making overload deterministic, read once at
       daemon startup, never per request. *)
    let hold_ms =
      match Sys.getenv_opt "TQEC_SERVE_HOLD_MS" with
      | None -> 0
      | Some s -> (
          match int_of_string_opt s with
          | Some v when v >= 0 -> v
          | _ -> die "TQEC_SERVE_HOLD_MS must be a non-negative integer")
    in
    (* env-read: same CLI-layer startup capture — plants a pipeline
       Stage_failure so the smoke test can prove a compute-time
       exception answers as a structured error without killing the
       daemon. *)
    let fault = Sys.getenv_opt "TQEC_SERVE_FAULT" in
    let config =
      {
        Serve.socket_path = socket;
        capacity;
        cache_bytes = cache_mb * 1024 * 1024;
        max_jobs;
        hold_ms;
        fault;
        verbose;
      }
    in
    let s =
      try Serve.run config
      with Unix.Unix_error (e, _, arg) ->
        die "cannot serve on %s: %s %s" socket (Unix.error_message e) arg
    in
    Printf.printf
      "serve: done served=%d busy=%d errors=%d hits=%d misses=%d\n%!"
      s.Protocol.sv_served s.Protocol.sv_busy s.Protocol.sv_errors
      s.Protocol.sv_hits s.Protocol.sv_misses
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run a long-lived compression daemon on a unix-domain socket.  \
          Results are cached by a canonical fingerprint of the decomposed \
          circuit plus the result-affecting knobs; served payloads are \
          byte-identical to $(b,tqecc compress --porcelain) for the same \
          input and knobs.  Overload yields structured busy responses, \
          never a crash.  Stop it with $(b,tqecc request --shutdown).")
    Term.(const run $ socket_arg $ capacity_arg $ cache_mb_arg $ max_jobs_arg
          $ verbose_arg)

let request_cmd =
  let input_arg =
    let doc =
      "Input circuit: a benchmark name (e.g. rd84_142), a tier-x<k> scale \
       tier, or a Clifford+T .qct fixture (sent inline).  RevLib .real \
       files are not accepted over the wire — decompose locally first."
    in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"CIRCUIT" ~doc)
  in
  let stats_flag =
    let doc = "Query the daemon's counters instead of compressing." in
    Arg.(value & flag & info [ "stats" ] ~doc)
  in
  let shutdown_flag =
    let doc = "Ask the daemon to shut down (after draining in-flight work)." in
    Arg.(value & flag & info [ "shutdown" ] ~doc)
  in
  let verify_flag =
    let doc =
      "Ask the daemon to run the whole-pipeline translation validation \
       before answering; a violation comes back as a structured error."
    in
    Arg.(value & flag & info [ "verify" ] ~doc)
  in
  let progress_flag =
    let doc = "Print streamed per-stage progress frames on stderr." in
    Arg.(value & flag & info [ "progress" ] ~doc)
  in
  let run socket input variant effort seed scale restarts jobs early_stop
      partition corridor verify stats shutdown progress debug =
    let request =
      if stats then Protocol.Stats
      else if shutdown then Protocol.Shutdown
      else
        let name = match input with
          | Some name -> name
          | None -> die "missing CIRCUIT (or use --stats / --shutdown)"
        in
        let input =
          match Suite.find name with
          | Some _ -> Protocol.Named { name; scale = max 1 scale }
          | None ->
              if Tqec_circuit.Generator.tier_of_name name <> None then
                Protocol.Named { name; scale = max 1 scale }
              else if Sys.file_exists name then
                if Filename.check_suffix name ".qct" then
                  let ic = open_in_bin name in
                  let text =
                    Fun.protect
                      ~finally:(fun () -> close_in_noerr ic)
                      (fun () -> really_input_string ic (in_channel_length ic))
                  in
                  Protocol.Qct
                    {
                      name =
                        Filename.remove_extension (Filename.basename name);
                      text;
                    }
                else
                  die
                    "%S: only .qct fixtures can be sent inline (decompose \
                     .real files locally first)"
                    name
              else
                die
                  "unknown benchmark %S (not a suite name, not a tier-x<k> \
                   scale tier, not a .qct file); suite: %s"
                  name
                  (String.concat ", " Suite.names)
        in
        let knobs =
          {
            Protocol.variant;
            effort;
            seed;
            restarts = max 1 restarts;
            jobs;
            early_stop;
            partition;
            corridor;
            debug = debug || debug_from_env ();
            verify;
          }
        in
        Protocol.Compress { input; knobs }
    in
    let on_progress ~stage ~seconds =
      if progress then Printf.eprintf "[%-10s] %6.2fs\n%!" stage seconds
    in
    match Client.call ~socket ~on_progress request with
    | Protocol.Result { payload; cached; timings = _ } ->
        if cached then prerr_endline "request: served from cache";
        print_endline payload
    | Protocol.Busy { in_flight; capacity } ->
        Printf.eprintf "tqecc: server busy (in-flight=%d capacity=%d)\n"
          in_flight capacity;
        exit 3
    | Protocol.Failed { message } ->
        Printf.eprintf "tqecc: server error: %s\n" message;
        exit 1
    | Protocol.Stats_reply s ->
        Printf.printf
          "hits=%d misses=%d entries=%d bytes=%d served=%d busy=%d \
           errors=%d in-flight=%d capacity=%d\n"
          s.Protocol.sv_hits s.Protocol.sv_misses s.Protocol.sv_entries
          s.Protocol.sv_bytes s.Protocol.sv_served s.Protocol.sv_busy
          s.Protocol.sv_errors s.Protocol.sv_in_flight s.Protocol.sv_capacity
    | Protocol.Bye -> print_endline "bye"
    | Protocol.Progress _ -> die "protocol violation: progress as terminal frame"
    | exception Client.Connect_error m -> die "%s" m
  in
  Cmd.v
    (Cmd.info "request"
       ~doc:
         "Send one request to a running $(b,tqecc serve) daemon and print \
          the result (exit 3 when the daemon refuses with busy).")
    Term.(const run $ socket_arg $ input_arg $ variant_arg $ effort_arg
          $ seed_arg $ scale_arg $ restarts_arg $ jobs_arg $ early_stop_arg
          $ partition_arg $ corridor_arg $ verify_flag $ stats_flag
          $ shutdown_flag $ progress_flag $ debug_arg)

let render_cmd =
  let run input =
    let c = load_circuit input in
    let icm = Tqec_icm.Decompose.run (Tqec_circuit.Clifford_t.decompose c) in
    let g, _ = Tqec_geom.Canonical.build icm in
    print_endline (Tqec_geom.Render.summary g);
    if Tqec_geom.Geometry.volume g <= 4000 then
      print_string (Tqec_geom.Render.layers g)
    else print_endline "(too large to render; showing summary only)"
  in
  Cmd.v
    (Cmd.info "render" ~doc:"Print the canonical geometric description.")
    Term.(const run $ input_arg)

let lint_cmd =
  let module Lint = Tqec_lint in
  let dirs_arg =
    let doc =
      "Directories to lint (every .ml file, recursively).  Defaults to \
       whichever of lib, test, bin, bench exist under the current \
       directory."
    in
    Arg.(value & pos_all string [] & info [] ~docv:"DIR" ~doc)
  in
  let format_arg =
    let doc = "Report format: $(b,text) or $(b,json)." in
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
      & info [ "format" ] ~docv:"FMT" ~doc)
  in
  let rule_arg =
    let doc =
      "Run only this rule (repeatable).  Default: the full catalog."
    in
    Arg.(value & opt_all string [] & info [ "rule" ] ~docv:"ID" ~doc)
  in
  let baseline_arg =
    let doc =
      "Waive the findings listed in $(docv) (one $(b,rule path:line \
       token) entry per line, # comments).  Stale entries are counted \
       in the report."
    in
    Arg.(
      value & opt (some string) None & info [ "baseline" ] ~docv:"FILE" ~doc)
  in
  let list_rules_flag =
    let doc = "Print the rule catalog and exit." in
    Arg.(value & flag & info [ "list-rules" ] ~doc)
  in
  let run dirs format rule_ids baseline_path list_rules jobs =
    if list_rules then begin
      List.iter
        (fun (r : Lint.Rule.t) ->
          Printf.printf "%-10s [%s] %s (audit marker: %s)\n" r.Lint.Rule.r_id
            (Lint.Rule.severity_name r.Lint.Rule.r_severity)
            r.Lint.Rule.r_doc r.Lint.Rule.r_marker)
        Lint.Rules.all;
      exit 0
    end;
    let rules =
      match rule_ids with
      | [] -> Lint.Rules.all
      | ids ->
          List.map
            (fun id ->
              match Lint.Rules.find id with
              | Some r -> r
              | None ->
                  die "unknown rule %s (known: %s)" id
                    (String.concat ", " Lint.Rules.ids))
            ids
    in
    let dirs =
      match dirs with
      | [] ->
          List.filter Sys.file_exists [ "lib"; "test"; "bin"; "bench" ]
      | ds -> ds
    in
    if dirs = [] then die "no directories to lint";
    let baseline =
      match baseline_path with
      | None -> Lint.Engine.baseline_empty
      | Some path -> (
          match Lint.Engine.load_baseline path with
          | Ok b -> b
          | Error msg -> die "cannot read baseline: %s" msg)
    in
    let findings = Lint.Engine.lint_dirs ~jobs ~rules dirs in
    let kept, suppressed, unused =
      Lint.Engine.apply_baseline baseline findings
    in
    let files = List.concat_map Lint.Engine.ml_files dirs |> List.length in
    let summary =
      {
        Lint.Report.files;
        rules = List.map (fun (r : Lint.Rule.t) -> r.Lint.Rule.r_id) rules;
        suppressed;
        unused_baseline = unused;
      }
    in
    print_string
      (match format with
      | `Text -> Lint.Report.text summary kept
      | `Json -> Lint.Report.json summary kept);
    exit (if kept = [] then 0 else 1)
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Token-accurate static analysis over the tree: partiality, \
          swallowed exceptions, wall-clock reads, hash-order and \
          environment dependence, unsafe primitives, and unsynchronized \
          mutation inside pool closures.  Exit 0 when clean, 1 with \
          findings, 2 on usage errors.")
    Term.(
      const run $ dirs_arg $ format_arg $ rule_arg $ baseline_arg
      $ list_rules_flag $ jobs_arg)

let () =
  let info =
    Cmd.info "tqecc" ~version:"1.0.0"
      ~doc:"Bridge-based primal/dual defect compression for TQEC circuits."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            stats_cmd; compress_cmd; check_cmd; table1_cmd; table2_cmd;
            table3_cmd; fig1_cmd; render_cmd; ablate_cmd; export_cmd;
            serve_cmd; request_cmd; lint_cmd;
          ]))
