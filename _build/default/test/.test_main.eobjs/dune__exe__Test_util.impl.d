test/test_util.ml: Alcotest Array Bitgrid Box3 Float Int Interval List Pqueue Pretty QCheck QCheck_alcotest Rng Stats String Tqec_util Union_find Vec3 Veca
