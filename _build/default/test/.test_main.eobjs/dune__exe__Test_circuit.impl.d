test/test_circuit.ml: Alcotest Array Circuit Clifford_t Gate Generator Int List Mct Optimize QCheck QCheck_alcotest Revlib Sim Suite Tqec_circuit Tqec_util
