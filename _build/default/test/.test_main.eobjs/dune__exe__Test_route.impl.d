test/test_route.ml: Alcotest Astar Box3 Grid Hashtbl List Pathfinder Pqueue QCheck QCheck_alcotest Rng Tqec_route Tqec_util Vec3
