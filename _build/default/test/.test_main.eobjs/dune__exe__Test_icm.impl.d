test/test_icm.ml: Alcotest Array Circuit Clifford_t Constraints Decompose Gate Generator Hashtbl Icm List QCheck QCheck_alcotest Schedule Suite Tqec_circuit Tqec_icm Validate
