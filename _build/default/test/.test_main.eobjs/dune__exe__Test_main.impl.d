test/test_main.ml: Alcotest List Test_circuit Test_compress Test_edge_cases Test_extensions Test_geom Test_icm Test_pdgraph Test_place Test_route Test_util
