(* Tests for the extension modules: peephole optimization, geometry
   emission, OBJ export, ablation studies. *)

open Tqec_circuit
open Tqec_compress

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Optimize                                                            *)
(* ------------------------------------------------------------------ *)

let circ gates n = Circuit.make ~name:"opt" ~n_qubits:n gates

let test_optimize_cancels_pairs () =
  let c = circ [ Gate.H 0; Gate.H 0 ] 1 in
  check Alcotest.int "HH cancels" 0 (Circuit.n_gates (Optimize.run c));
  let c = circ [ Gate.X 0; Gate.X 0; Gate.Z 1; Gate.Z 1 ] 2 in
  check Alcotest.int "XX ZZ cancel" 0 (Circuit.n_gates (Optimize.run c));
  let c =
    circ
      [ Gate.Cnot { control = 0; target = 1 }; Gate.Cnot { control = 0; target = 1 } ]
      2
  in
  check Alcotest.int "CNOT pair cancels" 0 (Circuit.n_gates (Optimize.run c))

let test_optimize_keeps_distinct () =
  let c =
    circ
      [ Gate.Cnot { control = 0; target = 1 }; Gate.Cnot { control = 1; target = 0 } ]
      2
  in
  check Alcotest.int "different CNOTs kept" 2 (Circuit.n_gates (Optimize.run c));
  let c = circ [ Gate.H 0; Gate.H 1 ] 2 in
  check Alcotest.int "different wires kept" 2 (Circuit.n_gates (Optimize.run c))

let test_optimize_blocked_by_intervening () =
  (* a gate on the same wire between the pair blocks cancellation *)
  let c = circ [ Gate.H 0; Gate.T 0; Gate.H 0 ] 1 in
  check Alcotest.int "blocked" 3 (Circuit.n_gates (Optimize.run c));
  (* a gate on an unrelated wire does not *)
  let c = circ [ Gate.H 0; Gate.T 1; Gate.H 0 ] 2 in
  check Alcotest.int "unrelated wire" 1 (Circuit.n_gates (Optimize.run c))

let test_optimize_merges_phases () =
  let c = circ [ Gate.T 0; Gate.T 0 ] 1 in
  (match (Optimize.run c).Circuit.gates with
  | [ Gate.S 0 ] -> ()
  | _ -> Alcotest.fail "TT should merge to S");
  (* cascade: T T T T -> S S -> Z *)
  let c = circ [ Gate.T 0; Gate.T 0; Gate.T 0; Gate.T 0 ] 1 in
  match (Optimize.run c).Circuit.gates with
  | [ Gate.Z 0 ] -> ()
  | gates ->
      Alcotest.failf "TTTT should cascade to Z, got %d gates"
        (List.length gates)

let test_optimize_cascade_cancel () =
  (* T Tdg cancels; then the surrounding H H become adjacent and cancel *)
  let c = circ [ Gate.H 0; Gate.T 0; Gate.Tdg 0; Gate.H 0 ] 1 in
  check Alcotest.int "cascade" 0 (Circuit.n_gates (Optimize.run c))

let test_optimize_toffoli_swap () =
  let c =
    circ
      [
        Gate.Toffoli { c1 = 0; c2 = 1; target = 2 };
        Gate.Toffoli { c1 = 1; c2 = 0; target = 2 };
        Gate.Swap (0, 1);
        Gate.Swap (1, 0);
      ]
      3
  in
  check Alcotest.int "symmetric controls cancel" 0
    (Circuit.n_gates (Optimize.run c))

let test_optimize_pair_rule () =
  check Alcotest.bool "S Z -> Sdg" true
    (Optimize.pair_rule (Gate.S 0) (Gate.Z 0) = `Replace (Gate.Sdg 0));
  check Alcotest.bool "S S -> Z" true
    (Optimize.pair_rule (Gate.S 0) (Gate.S 0) = `Replace (Gate.Z 0));
  check Alcotest.bool "H T keep" true
    (Optimize.pair_rule (Gate.H 0) (Gate.T 0) = `Keep)

let test_optimize_reduces_t_count () =
  (* a circuit with an immediate Toffoli pair loses all 14 T gates *)
  let c =
    circ
      [
        Gate.Toffoli { c1 = 0; c2 = 1; target = 2 };
        Gate.Toffoli { c1 = 0; c2 = 1; target = 2 };
        Gate.Cnot { control = 0; target = 1 };
      ]
      3
  in
  let optimized = Optimize.run c in
  check Alcotest.int "one gate left" 1 (Circuit.n_gates optimized);
  check Alcotest.int "cancelled count" 2 (Optimize.cancelled c)

let prop_optimize_idempotent =
  QCheck.Test.make ~name:"optimize is idempotent" ~count:60
    (QCheck.int_range 1 5000)
    (fun seed ->
      let c = Generator.random_clifford_t ~seed ~n_qubits:4 ~n_gates:40 in
      let once = Optimize.run c in
      Circuit.equal (Optimize.run once) once)

let prop_optimize_never_grows =
  QCheck.Test.make ~name:"optimize never grows the circuit" ~count:60
    (QCheck.int_range 1 5000)
    (fun seed ->
      let c = Generator.random_clifford_t ~seed ~n_qubits:3 ~n_gates:50 in
      Circuit.n_gates (Optimize.run c) <= Circuit.n_gates c)

let prop_optimize_preserves_wire_set =
  QCheck.Test.make ~name:"optimize preserves the wire count" ~count:40
    (QCheck.int_range 1 5000)
    (fun seed ->
      let c = Generator.random_clifford_t ~seed ~n_qubits:4 ~n_gates:30 in
      (Optimize.run c).Circuit.n_qubits = c.Circuit.n_qubits)

(* ------------------------------------------------------------------ *)
(* Emit / Export                                                       *)
(* ------------------------------------------------------------------ *)

let quick_result () =
  let icm = Tqec_icm.Decompose.run Suite.three_cnot_example in
  Pipeline.run_icm
    ~config:{ Pipeline.default_config with effort = Tqec_place.Placer.Quick }
    icm

let test_emit_valid_geometry () =
  let r = quick_result () in
  check Alcotest.(list string) "no geometric issues" []
    (List.map (Format.asprintf "%a" Tqec_geom.Geometry.pp_issue) (Emit.check r))

let test_emit_volume_consistent () =
  check Alcotest.bool "emitted within reported bbox" true
    (Emit.volume_consistent (quick_result ()))

let test_emit_has_both_types () =
  let g = Emit.geometry (quick_result ()) in
  let primal = Tqec_geom.Geometry.structures g Tqec_geom.Defect.Primal in
  let dual = Tqec_geom.Geometry.structures g Tqec_geom.Defect.Dual in
  check Alcotest.bool "primal structures" true (List.length primal > 0);
  check Alcotest.bool "dual structures" true (List.length dual > 0)

let prop_emit_valid_on_random =
  QCheck.Test.make ~name:"emission valid on random circuits" ~count:6
    (QCheck.int_range 1 400)
    (fun seed ->
      let c = Generator.random_clifford_t ~seed ~n_qubits:3 ~n_gates:12 in
      let r =
        Pipeline.run
          ~config:{ Pipeline.default_config with effort = Tqec_place.Placer.Quick }
          c
      in
      Emit.check r = [] && Emit.volume_consistent r)

let test_export_obj_wellformed () =
  let g = Emit.geometry (quick_result ()) in
  let obj = Tqec_geom.Export.to_obj g in
  let lines = String.split_on_char '\n' obj in
  let count prefix =
    List.length
      (List.filter
         (fun l ->
           String.length l > String.length prefix
           && String.sub l 0 (String.length prefix) = prefix)
         lines)
  in
  let vs = count "v " and fs = count "f " and gs = count "g " in
  check Alcotest.bool "has vertices" true (vs > 0);
  (* each emitted cube contributes 8 vertices and 6 faces *)
  check Alcotest.int "vertex/face ratio" (vs / 8) (fs / 6);
  check Alcotest.bool "has groups" true (gs > 0)

let test_export_canonical () =
  let icm = Tqec_icm.Decompose.run Suite.three_cnot_example in
  let g, _ = Tqec_geom.Canonical.build icm in
  let obj = Tqec_geom.Export.to_obj g in
  check Alcotest.bool "non-empty" true (String.length obj > 100)

(* ------------------------------------------------------------------ *)
(* Ablation                                                            *)
(* ------------------------------------------------------------------ *)

let small_icm () =
  Tqec_icm.Decompose.run
    (Clifford_t.decompose
       (Circuit.make ~name:"ab" ~n_qubits:3
          [
            Gate.Toffoli { c1 = 0; c2 = 1; target = 2 };
            Gate.Cnot { control = 0; target = 2 };
          ]))

let test_ablation_ishape () =
  let s = Ablation.ishape (small_icm ()) ~effort:Tqec_place.Placer.Quick in
  check Alcotest.int "two configurations" 2 (List.length s.Ablation.s_data);
  List.iter
    (fun d -> check Alcotest.bool "positive volume" true (d.Ablation.a_volume > 0))
    s.Ablation.s_data

let test_ablation_seeds_deterministic () =
  let icm = small_icm () in
  let a = Ablation.flipping_seeds icm ~effort:Tqec_place.Placer.Quick ~seeds:[ 7 ] in
  let b = Ablation.flipping_seeds icm ~effort:Tqec_place.Placer.Quick ~seeds:[ 7 ] in
  check Alcotest.bool "same volume for same seed" true
    ((List.hd a.Ablation.s_data).Ablation.a_volume
    = (List.hd b.Ablation.s_data).Ablation.a_volume)

let test_ablation_z_cap () =
  let s =
    Ablation.z_cap (small_icm ()) ~effort:Tqec_place.Placer.Quick ~caps:[ 2; 4 ]
  in
  (* auto + 2 caps *)
  check Alcotest.int "three rows" 3 (List.length s.Ablation.s_data);
  check Alcotest.bool "renders" true (String.length (Ablation.render s) > 0)

let suites =
  [
    ( "circuit.optimize",
      [
        Alcotest.test_case "cancels pairs" `Quick test_optimize_cancels_pairs;
        Alcotest.test_case "keeps distinct" `Quick test_optimize_keeps_distinct;
        Alcotest.test_case "blocked by intervening" `Quick
          test_optimize_blocked_by_intervening;
        Alcotest.test_case "merges phases" `Quick test_optimize_merges_phases;
        Alcotest.test_case "cascade cancel" `Quick test_optimize_cascade_cancel;
        Alcotest.test_case "toffoli/swap" `Quick test_optimize_toffoli_swap;
        Alcotest.test_case "pair rule" `Quick test_optimize_pair_rule;
        Alcotest.test_case "reduces T count" `Quick test_optimize_reduces_t_count;
        qtest prop_optimize_idempotent;
        qtest prop_optimize_never_grows;
        qtest prop_optimize_preserves_wire_set;
      ] );
    ( "compress.emit",
      [
        Alcotest.test_case "valid geometry" `Quick test_emit_valid_geometry;
        Alcotest.test_case "volume consistent" `Quick test_emit_volume_consistent;
        Alcotest.test_case "both defect types" `Quick test_emit_has_both_types;
        qtest prop_emit_valid_on_random;
      ] );
    ( "geom.export",
      [
        Alcotest.test_case "obj well-formed" `Quick test_export_obj_wellformed;
        Alcotest.test_case "canonical export" `Quick test_export_canonical;
      ] );
    ( "compress.ablation",
      [
        Alcotest.test_case "ishape study" `Slow test_ablation_ishape;
        Alcotest.test_case "seed determinism" `Slow
          test_ablation_seeds_deterministic;
        Alcotest.test_case "z_cap study" `Slow test_ablation_z_cap;
      ] );
  ]
