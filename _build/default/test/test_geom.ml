(* Tests for defect geometry, canonical construction, braiding
   verification and rendering. *)

open Tqec_util
open Tqec_circuit
open Tqec_icm
open Tqec_geom

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest
let vec = Vec3.make

(* ------------------------------------------------------------------ *)
(* Defect                                                              *)
(* ------------------------------------------------------------------ *)

let test_defect_parity () =
  check Alcotest.bool "primal even ok" true
    (Defect.valid_path ~dtype:Defect.Primal ~closed:false
       [ vec 0 0 0; vec 2 0 0 ]);
  check Alcotest.bool "primal odd rejected" false
    (Defect.valid_path ~dtype:Defect.Primal ~closed:false
       [ vec 1 1 1; vec 3 1 1 ]);
  check Alcotest.bool "dual odd ok" true
    (Defect.valid_path ~dtype:Defect.Dual ~closed:false
       [ vec 1 1 1; vec 3 1 1 ]);
  check Alcotest.bool "diagonal step rejected" false
    (Defect.valid_path ~dtype:Defect.Primal ~closed:false
       [ vec 0 0 0; vec 2 2 0 ]);
  check Alcotest.bool "long step rejected" false
    (Defect.valid_path ~dtype:Defect.Primal ~closed:false
       [ vec 0 0 0; vec 4 0 0 ])

let test_defect_closed () =
  let square =
    [ vec 0 0 0; vec 2 0 0; vec 2 2 0; vec 0 2 0 ]
  in
  check Alcotest.bool "closed square ok" true
    (Defect.valid_path ~dtype:Defect.Primal ~closed:true square);
  check Alcotest.bool "open chain not closable" false
    (Defect.valid_path ~dtype:Defect.Primal ~closed:true
       [ vec 0 0 0; vec 2 0 0; vec 4 0 0 ])

let test_defect_straight () =
  let d = Defect.straight ~id:0 ~structure:0 ~dtype:Defect.Primal
      (vec 0 0 0) (vec 6 0 0)
  in
  check Alcotest.int "four vertices" 4 (List.length (Defect.vertices d));
  check Alcotest.int "three steps" 3 (Defect.length d);
  (* cells: doubled 0,2,4,6 -> unit cells 0,1,2,3 *)
  check Alcotest.int "four cells" 4 (List.length (Defect.cells d))

let test_defect_rectangle () =
  let r =
    Defect.rectangle ~id:1 ~structure:1 ~dtype:Defect.Primal ~plane:`Xz ~at:0
      (0, 0) (6, 2)
  in
  check Alcotest.bool "closed" true r.Defect.closed;
  (* perimeter of a 4x2-vertex rectangle: 2*(3+1) = 8 steps/vertices *)
  check Alcotest.int "vertices" 8 (List.length (Defect.vertices r));
  check Alcotest.bool "valid" true
    (Defect.valid_path ~dtype:Defect.Primal ~closed:true (Defect.vertices r))

let test_cell_of_vertex () =
  check Alcotest.bool "even" true
    (Vec3.equal (Defect.cell_of_vertex (vec 4 6 0)) (vec 2 3 0));
  check Alcotest.bool "odd shares cell" true
    (Vec3.equal (Defect.cell_of_vertex (vec 5 7 1)) (vec 2 3 0));
  check Alcotest.bool "negative floor" true
    (Vec3.equal (Defect.cell_of_vertex (vec (-1) (-2) 0)) (vec (-1) (-1) 0))

(* ------------------------------------------------------------------ *)
(* Geometry                                                            *)
(* ------------------------------------------------------------------ *)

let two_structures_overlapping () =
  let a = Defect.straight ~id:0 ~structure:0 ~dtype:Defect.Primal
      (vec 0 0 0) (vec 4 0 0)
  in
  let b = Defect.straight ~id:1 ~structure:1 ~dtype:Defect.Primal
      (vec 4 0 0) (vec 8 0 0)
  in
  Geometry.add_defect (Geometry.add_defect (Geometry.empty "o") a) b

let test_geometry_overlap_detected () =
  let g = two_structures_overlapping () in
  check Alcotest.bool "invalid" false (Geometry.is_valid g);
  check Alcotest.bool "overlap issue" true
    (List.exists
       (function Geometry.Same_type_structure_overlap _ -> true | _ -> false)
       (Geometry.check g))

let test_geometry_same_structure_can_touch () =
  let a = Defect.straight ~id:0 ~structure:0 ~dtype:Defect.Primal
      (vec 0 0 0) (vec 4 0 0)
  in
  let b = Defect.straight ~id:1 ~structure:0 ~dtype:Defect.Primal
      (vec 4 0 0) (vec 4 4 0)
  in
  let g = Geometry.add_defect (Geometry.add_defect (Geometry.empty "s") a) b in
  check Alcotest.bool "valid" true (Geometry.is_valid g)

let test_geometry_primal_dual_independent () =
  (* A primal and a dual strand crossing the same unit cells is fine:
     they live on different sublattices. *)
  let p = Defect.straight ~id:0 ~structure:0 ~dtype:Defect.Primal
      (vec 0 0 0) (vec 4 0 0)
  in
  let d = Defect.straight ~id:1 ~structure:1 ~dtype:Defect.Dual
      (vec 1 1 1) (vec 5 1 1)
  in
  let g = Geometry.add_defect (Geometry.add_defect (Geometry.empty "pd") p) d in
  check Alcotest.bool "valid" true (Geometry.is_valid g)

let test_geometry_volume () =
  let p = Defect.straight ~id:0 ~structure:0 ~dtype:Defect.Primal
      (vec 0 0 0) (vec 6 0 0)
  in
  let g = Geometry.add_defect (Geometry.empty "v") p in
  check Alcotest.int "volume 4x1x1" 4 (Geometry.volume g);
  check Alcotest.int "empty volume" 0 (Geometry.volume (Geometry.empty "e"))

let test_geometry_boxes () =
  check Alcotest.int "Y volume" 18 (Geometry.box_volume Geometry.Y_box);
  check Alcotest.int "A volume" 192 (Geometry.box_volume Geometry.A_box);
  let g =
    Geometry.add_box (Geometry.empty "b") (Geometry.box_at Geometry.Y_box (vec 0 0 0))
  in
  check Alcotest.int "bbox = 18" 18 (Geometry.volume g);
  check Alcotest.int "total box volume" 18 (Geometry.total_box_volume g);
  let g2 =
    Geometry.add_box g (Geometry.box_at Geometry.Y_box (vec 1 1 0))
  in
  check Alcotest.bool "box overlap detected" true
    (List.exists
       (function Geometry.Box_overlap _ -> true | _ -> false)
       (Geometry.check g2))

let test_geometry_structures () =
  let g = two_structures_overlapping () in
  let prim = Geometry.structures g Defect.Primal in
  check Alcotest.int "two primal structures" 2 (List.length prim);
  check Alcotest.int "no dual structures" 0
    (List.length (Geometry.structures g Defect.Dual))

(* ------------------------------------------------------------------ *)
(* Braiding: linking numbers                                           *)
(* ------------------------------------------------------------------ *)

let simple_hole =
  { Braiding.axis = `Y; at = 0; u = Interval.make (-4) 4; v = Interval.make (-4) 4 }

let threading_loop =
  (* a small dual loop threading the y=0 plane inside the hole *)
  Defect.loop_of_corners ~id:0 ~structure:0 ~dtype:Defect.Dual
    [ vec 1 (-1) 1; vec 1 1 1; vec 1 1 5; vec 1 (-1) 5 ]

let test_linking_one () =
  check Alcotest.int "links once" 1 (abs (Braiding.linking threading_loop simple_hole))

let test_linking_outside () =
  let hole_far =
    { Braiding.axis = `Y; at = 0; u = Interval.make 10 20; v = Interval.make 10 20 }
  in
  check Alcotest.int "outside hole" 0 (Braiding.linking threading_loop hole_far)

let test_linking_no_crossing () =
  let flat =
    Defect.loop_of_corners ~id:1 ~structure:1 ~dtype:Defect.Dual
      [ vec 1 1 1; vec 3 1 1; vec 3 1 3; vec 1 1 3 ]
  in
  check Alcotest.int "coplanar loop" 0 (Braiding.linking flat simple_hole)

let test_linking_cancellation () =
  (* A loop that crosses the plane twice inside the hole in opposite
     directions links zero times. *)
  let in_out =
    Defect.loop_of_corners ~id:2 ~structure:2 ~dtype:Defect.Dual
      [ vec 1 (-1) 1; vec 1 1 1; vec 3 1 1; vec 3 (-1) 1 ]
  in
  check Alcotest.int "cancels" 0 (Braiding.linking in_out simple_hole)

let test_linking_requires_closed () =
  let open_strand =
    Defect.straight ~id:3 ~structure:3 ~dtype:Defect.Dual (vec 1 (-1) 1) (vec 1 3 1)
  in
  try
    ignore (Braiding.linking open_strand simple_hole);
    Alcotest.fail "expected invalid_arg"
  with Invalid_argument _ -> ()

let test_crossings_reported () =
  let cs = Braiding.crossings threading_loop ~axis:`Y ~at:0 in
  check Alcotest.int "two crossings" 2 (List.length cs);
  let signs = List.map snd cs in
  check Alcotest.int "signs cancel" 0 (List.fold_left ( + ) 0 signs)

(* ------------------------------------------------------------------ *)
(* Canonical geometry                                                  *)
(* ------------------------------------------------------------------ *)

let three_cnot_icm () = Decompose.run Suite.three_cnot_example

let test_canonical_three_cnot_volume () =
  let icm = three_cnot_icm () in
  (* 3 CNOTs, 3 used rows: 3*3 x 3 x 2 = 54, the paper's Fig. 1(b). *)
  check Alcotest.int "defect volume 54" 54 (Canonical.defect_volume icm);
  check Alcotest.int "no boxes" 54 (Canonical.volume icm)

let test_canonical_geometry_valid () =
  let icm = three_cnot_icm () in
  let g, info = Canonical.build icm in
  check Alcotest.(list string) "no geometry issues" []
    (List.map (Format.asprintf "%a" Geometry.pp_issue) (Geometry.check g));
  check Alcotest.int "three rows" 3 info.Canonical.n_rows;
  check Alcotest.int "three rings" 3 info.Canonical.n_cnots;
  (* Geometric bbox close to nominal: x exact, y and z at most +1. *)
  match Geometry.bbox g with
  | None -> Alcotest.fail "empty geometry"
  | Some bb ->
      check Alcotest.int "x units" 9 (Box3.dx bb);
      check Alcotest.bool "y units" true (Box3.dy bb <= 4);
      check Alcotest.bool "z units" true (Box3.dz bb <= 2)

(* The decisive functional test: every canonical dual ring links exactly
   its CNOT's control row and target row. *)
let canonical_braiding_correct icm =
  let g, info = Canonical.build icm in
  let rings =
    List.filter (fun (d : Defect.t) -> d.dtype = Defect.Dual) g.Geometry.defects
  in
  List.for_all
    (fun (d : Defect.t) ->
      let k = d.structure - info.Canonical.n_rows in
      let ({ control; target } : Icm.cnot) = icm.Icm.cnots.(k) in
      let rc = info.Canonical.row_of_line.(control) in
      let rt = info.Canonical.row_of_line.(target) in
      let ok = ref true in
      for row = 0 to info.Canonical.n_rows - 1 do
        let expected = if row = rc || row = rt then 1 else 0 in
        if abs (Braiding.linking d (Canonical.hole info row)) <> expected then
          ok := false
      done;
      !ok)
    rings

let test_canonical_braiding_three_cnot () =
  check Alcotest.bool "rings link control+target rows only" true
    (canonical_braiding_correct (three_cnot_icm ()))

let prop_canonical_braiding_random =
  QCheck.Test.make ~name:"canonical braiding correct on random circuits"
    ~count:20
    QCheck.(pair (int_range 2 5) (int_range 1 15))
    (fun (wires, gates) ->
      let c =
        Generator.random_clifford_t ~seed:(23 + wires + (41 * gates))
          ~n_qubits:wires ~n_gates:gates
      in
      let icm = Decompose.run c in
      Array.length icm.Icm.cnots = 0 || canonical_braiding_correct icm)

let prop_canonical_volume_formula =
  QCheck.Test.make ~name:"canonical volume formula vs stats" ~count:30
    QCheck.(pair (int_range 2 5) (int_range 1 20))
    (fun (wires, gates) ->
      let c =
        Generator.random_clifford_t ~seed:(5 + wires + (3 * gates))
          ~n_qubits:wires ~n_gates:gates
      in
      let icm = Decompose.run c in
      let s = Icm.stats icm in
      Canonical.volume icm
      = Canonical.defect_volume icm + (18 * s.Icm.s_y) + (192 * s.Icm.s_a))

let test_canonical_unused_line_dropped () =
  (* wire 2 unused: canonical rows = used rows only *)
  let c =
    Circuit.make ~name:"u" ~n_qubits:3
      [ Gate.Cnot { control = 0; target = 1 } ]
  in
  let icm = Decompose.run c in
  check Alcotest.int "two used rows" 2 (Canonical.used_rows icm);
  check Alcotest.int "volume 3*2*2" 12 (Canonical.defect_volume icm)

(* ------------------------------------------------------------------ *)
(* Render                                                              *)
(* ------------------------------------------------------------------ *)

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec scan i = i + m <= n && (String.sub s i m = sub || scan (i + 1)) in
  scan 0

let test_render_summary () =
  let g, _ = Canonical.build (three_cnot_icm ()) in
  let s = Render.summary g in
  check Alcotest.bool "mentions strands" true (contains_sub s "primal")

let test_render_layers_nonempty () =
  let g, _ = Canonical.build (three_cnot_icm ()) in
  let s = Render.layers g in
  check Alcotest.bool "has content" true (String.length s > 20);
  check Alcotest.bool "has primal cells" true (String.contains s 'P');
  check Alcotest.bool "has dual cells" true
    (String.contains s 'D' || String.contains s '*')

let test_render_empty () =
  check Alcotest.string "empty" "" (Render.layers (Geometry.empty "e"))

let suites =
  [
    ( "geom.defect",
      [
        Alcotest.test_case "parity" `Quick test_defect_parity;
        Alcotest.test_case "closed" `Quick test_defect_closed;
        Alcotest.test_case "straight" `Quick test_defect_straight;
        Alcotest.test_case "rectangle" `Quick test_defect_rectangle;
        Alcotest.test_case "cell mapping" `Quick test_cell_of_vertex;
      ] );
    ( "geom.geometry",
      [
        Alcotest.test_case "overlap detected" `Quick test_geometry_overlap_detected;
        Alcotest.test_case "same structure touches" `Quick
          test_geometry_same_structure_can_touch;
        Alcotest.test_case "primal/dual independent" `Quick
          test_geometry_primal_dual_independent;
        Alcotest.test_case "volume" `Quick test_geometry_volume;
        Alcotest.test_case "distillation boxes" `Quick test_geometry_boxes;
        Alcotest.test_case "structures" `Quick test_geometry_structures;
      ] );
    ( "geom.braiding",
      [
        Alcotest.test_case "links once" `Quick test_linking_one;
        Alcotest.test_case "outside hole" `Quick test_linking_outside;
        Alcotest.test_case "coplanar" `Quick test_linking_no_crossing;
        Alcotest.test_case "cancellation" `Quick test_linking_cancellation;
        Alcotest.test_case "requires closed" `Quick test_linking_requires_closed;
        Alcotest.test_case "crossings" `Quick test_crossings_reported;
      ] );
    ( "geom.canonical",
      [
        Alcotest.test_case "three-cnot volume 54" `Quick
          test_canonical_three_cnot_volume;
        Alcotest.test_case "geometry valid" `Quick test_canonical_geometry_valid;
        Alcotest.test_case "braiding three-cnot" `Quick
          test_canonical_braiding_three_cnot;
        Alcotest.test_case "unused line dropped" `Quick
          test_canonical_unused_line_dropped;
        qtest prop_canonical_braiding_random;
        qtest prop_canonical_volume_formula;
      ] );
    ( "geom.render",
      [
        Alcotest.test_case "summary" `Quick test_render_summary;
        Alcotest.test_case "layers" `Quick test_render_layers_nonempty;
        Alcotest.test_case "empty" `Quick test_render_empty;
      ] );
  ]
