(* Tests for the PD graph and the bridging stages, anchored on the
   paper's worked 3-CNOT example (Figs. 6, 10, 13, 14). *)

open Tqec_circuit
open Tqec_icm
open Tqec_pdgraph

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let three_cnot_graph () =
  Pd_graph.of_icm (Decompose.run Suite.three_cnot_example)

let nets_of g m = Pd_graph.nets_through g m

(* ------------------------------------------------------------------ *)
(* PD graph construction (Fig. 6)                                      *)
(* ------------------------------------------------------------------ *)

let test_fig6_module_structure () =
  let g = three_cnot_graph () in
  (* p0{d0} p1{d0,d2} p2{d0,d1,d2} p3{d1} p4{d1} p5{d2} *)
  check Alcotest.int "6 modules" 6 (Pd_graph.n_modules_constructed g);
  check Alcotest.int "3 nets" 3 (Pd_graph.n_nets g);
  check Alcotest.(list int) "p0" [ 0 ] (nets_of g 0);
  check Alcotest.(list int) "p1" [ 0; 2 ] (nets_of g 1);
  check Alcotest.(list int) "p2" [ 0; 1; 2 ] (nets_of g 2);
  check Alcotest.(list int) "p3" [ 1 ] (nets_of g 3);
  check Alcotest.(list int) "p4" [ 1 ] (nets_of g 4);
  check Alcotest.(list int) "p5" [ 2 ] (nets_of g 5)

let test_fig6_net_traversal () =
  let g = three_cnot_graph () in
  (* d0 passes p0 (control current), p1 (innovative), p2 (target). *)
  check Alcotest.(list int) "d0 modules" [ 0; 1; 2 ] (Pd_graph.modules_of_net g 0);
  check Alcotest.(list int) "d1 modules" [ 3; 4; 2 ] (Pd_graph.modules_of_net g 1);
  check Alcotest.(list int) "d2 modules" [ 2; 5; 1 ] (Pd_graph.modules_of_net g 2)

let test_fig6_module_kinds () =
  let g = three_cnot_graph () in
  let kind m = (Pd_graph.module_get g m).Pd_graph.m_kind in
  check Alcotest.bool "p0 initial" true
    (match kind 0 with Pd_graph.Initial _ -> true | _ -> false);
  check Alcotest.bool "p1 innovative" true (kind 1 = Pd_graph.Innovative);
  check Alcotest.bool "p2 initial" true
    (match kind 2 with Pd_graph.Initial _ -> true | _ -> false);
  check Alcotest.bool "p5 innovative" true (kind 5 = Pd_graph.Innovative)

let test_row_flags () =
  let g = three_cnot_graph () in
  check Alcotest.bool "row0 opens as control" true g.Pd_graph.row_first_as_control.(0);
  check Alcotest.bool "row0 closes as target" false g.Pd_graph.row_last_as_control.(0);
  check Alcotest.bool "row1 opens as target" false g.Pd_graph.row_first_as_control.(1);
  check Alcotest.bool "row1 closes as control" true g.Pd_graph.row_last_as_control.(1);
  check Alcotest.bool "row2 opens as control" true g.Pd_graph.row_first_as_control.(2);
  check Alcotest.bool "row2 closes as control" true g.Pd_graph.row_last_as_control.(2)

let test_distill_modules () =
  let icm =
    Decompose.run
      (Circuit.make ~name:"one-t" ~n_qubits:1 [ Tqec_circuit.Gate.T 0 ])
  in
  let g = Pd_graph.of_icm icm in
  let boxes = Pd_graph.distill_modules g in
  let y = List.filter (fun (_, k) -> k = Icm.Inject_y) boxes in
  let a = List.filter (fun (_, k) -> k = Icm.Inject_a) boxes in
  check Alcotest.int "2 Y boxes" 2 (List.length y);
  check Alcotest.int "1 A box" 1 (List.length a)

(* Paper module-count identity: #Modules = #CNOTs + used rows + #Y + #A. *)
let test_module_count_identity () =
  List.iter
    (fun seed ->
      let c =
        Generator.random_clifford_t ~seed ~n_qubits:4 ~n_gates:25
      in
      let icm = Decompose.run c in
      let g = Pd_graph.of_icm icm in
      let used_rows =
        Array.to_list g.Pd_graph.row_first
        |> List.filter (fun m -> m <> -1)
        |> List.length
      in
      let s = Icm.stats icm in
      check Alcotest.int "module identity"
        (s.Icm.s_cnots + used_rows + s.Icm.s_y + s.Icm.s_a)
        (Pd_graph.n_modules_constructed g))
    [ 1; 2; 3 ]

(* ------------------------------------------------------------------ *)
(* I-shaped simplification (Figs. 10 and 14)                           *)
(* ------------------------------------------------------------------ *)

let test_ishape_three_cnot () =
  let g = three_cnot_graph () in
  let merges = Ishape.run g in
  check Alcotest.int "three merges" 3 (List.length merges);
  (* Expected end state: p0p1{d0}, p1{d2}, p2{d0,d1}, p2p5{d2}, p3p4{d1},
     p4{} — new ids 6,7,8 for the merged modules. *)
  check Alcotest.bool "p0 dead" false (Pd_graph.module_get g 0).Pd_graph.m_alive;
  check Alcotest.bool "p3 dead" false (Pd_graph.module_get g 3).Pd_graph.m_alive;
  check Alcotest.bool "p5 dead" false (Pd_graph.module_get g 5).Pd_graph.m_alive;
  check Alcotest.(list int) "residual p1 keeps d2" [ 2 ] (nets_of g 1);
  check Alcotest.(list int) "p2 drops d2" [ 0; 1 ] (nets_of g 2);
  check Alcotest.(list int) "p4 empty" [] (nets_of g 4);
  (* Merged modules. *)
  let merged =
    List.filter
      (fun (m : Pd_graph.module_rec) -> m.m_kind = Pd_graph.Ishape_merged)
      (Pd_graph.alive_modules g)
  in
  check Alcotest.int "three merged modules" 3 (List.length merged);
  List.iter
    (fun (m : Pd_graph.module_rec) ->
      check Alcotest.int "merged holds one net" 1 (List.length m.m_nets);
      check Alcotest.bool "has partner" true (m.m_partner >= 0))
    merged

let test_ishape_idempotent () =
  let g = three_cnot_graph () in
  ignore (Ishape.run g);
  check Alcotest.int "second run no merges" 0 (List.length (Ishape.run g))

let test_ishape_net_retarget () =
  let g = three_cnot_graph () in
  let merges = Ishape.run g in
  (* After the init-end merge on row 0, net d0 passes the merged module,
     not p0 nor residual p1. *)
  let m0 = List.find (fun m -> m.Ishape.g_row = 0) merges in
  let d0_modules = Pd_graph.modules_of_net g 0 in
  check Alcotest.bool "d0 through merged" true
    (List.mem m0.Ishape.g_merged d0_modules);
  check Alcotest.bool "d0 not through residual" false
    (List.mem m0.Ishape.g_residual d0_modules)

(* Braiding preservation: each net's incidence set changes only by the
   documented substitution {absorbed, residual} -> {merged}. *)
let prop_ishape_preserves_braiding =
  QCheck.Test.make ~name:"ishape preserves braiding relation" ~count:30
    QCheck.(pair (int_range 2 5) (int_range 1 30))
    (fun (wires, gates) ->
      let c =
        Generator.random_clifford_t ~seed:(wires + (17 * gates))
          ~n_qubits:wires ~n_gates:gates
      in
      let icm = Decompose.run c in
      let g = Pd_graph.of_icm icm in
      let before =
        List.init (Pd_graph.n_nets g) (fun n -> Pd_graph.modules_of_net g n)
      in
      let merges = Ishape.run g in
      let subst =
        List.map
          (fun m -> (m.Ishape.g_net, m.Ishape.g_absorbed, m.Ishape.g_residual, m.Ishape.g_merged))
          merges
      in
      List.for_all
        (fun n ->
          let expected =
            List.fold_left
              (fun mods (net, absorbed, residual, merged) ->
                if net = n then
                  List.filter_map
                    (fun m ->
                      if m = absorbed then Some merged
                      else if m = residual then None
                      else Some m)
                    mods
                else mods)
              (List.nth before n) subst
          in
          List.sort Int.compare expected
          = List.sort Int.compare (Pd_graph.modules_of_net g n))
        (List.init (Pd_graph.n_nets g) (fun n -> n)))

let test_ishape_respects_meas_order () =
  (* A T-gadget line closing on a control side carries a second-order
     measurement: the meas-end merge must be skipped by default and
     allowed with ~respect_order:false. *)
  let c =
    Circuit.make ~name:"t" ~n_qubits:1 [ Tqec_circuit.Gate.T 0 ]
  in
  let count respect_order =
    let g = Pd_graph.of_icm (Decompose.run c) in
    List.length (Ishape.run ~respect_order g)
  in
  check Alcotest.bool "order-aware runs fewer merges" true
    (count true < count false)

let test_ishape_ordered_last_stays_alive () =
  let c = Circuit.make ~name:"t" ~n_qubits:1 [ Tqec_circuit.Gate.T 0 ] in
  let icm = Decompose.run c in
  let g = Pd_graph.of_icm icm in
  ignore (Ishape.run g);
  (* every measurement-carrying module must still be alive *)
  Array.iter
    (fun (m : Icm.measurement) ->
      match Pd_graph.meas_module g m.Icm.m_line with
      | Some md ->
          check Alcotest.bool "meas module alive" true
            (Pd_graph.module_get g md).Pd_graph.m_alive
      | None -> ())
    icm.Icm.meas

(* ------------------------------------------------------------------ *)
(* Flipping (Fig. 13)                                                  *)
(* ------------------------------------------------------------------ *)

let test_flipping_three_cnot_single_chain () =
  let g = three_cnot_graph () in
  ignore (Ishape.run g);
  let f = Flipping.run g in
  (* All modules collapse into one primal bridging super-module: one
     chain of three points (Fig. 13(b)). *)
  check Alcotest.int "one chain" 1 (List.length f.Flipping.chains);
  check Alcotest.int "three points" 3 (List.length (List.hd f.Flipping.chains));
  check Alcotest.(list string) "valid" [] (Flipping.validate g f)

let test_flipping_points_pair_ishape () =
  let g = three_cnot_graph () in
  ignore (Ishape.run g);
  let f = Flipping.run g in
  (* Merged module and its residual are the same point. *)
  List.iter
    (fun (m : Pd_graph.module_rec) ->
      if m.m_alive && m.m_kind = Pd_graph.Ishape_merged then
        check Alcotest.int "same point as partner"
          f.Flipping.point_of.(m.m_id)
          f.Flipping.point_of.(m.m_partner))
    (Pd_graph.alive_modules g)

let test_flipping_without_ishape () =
  let g = three_cnot_graph () in
  let f = Flipping.run g in
  (* Without I-shape every module is its own point: 6 points. *)
  check Alcotest.int "six points" 6 (List.length f.Flipping.points);
  check Alcotest.(list string) "still valid" [] (Flipping.validate g f)

let test_flipping_exclude () =
  let g = three_cnot_graph () in
  ignore (Ishape.run g);
  (* exclude module 2 (the residual p2): it must not appear as a point *)
  let f = Flipping.run ~exclude:(fun m -> m = 2) g in
  check Alcotest.int "excluded has no point" (-1) f.Flipping.point_of.(2);
  check Alcotest.bool "others still covered" true
    (List.for_all
       (fun (rep, _) -> rep <> 2)
       f.Flipping.points);
  check Alcotest.(list string) "still valid" [] (Flipping.validate g f)

let test_flipping_n_nodes () =
  let g = three_cnot_graph () in
  ignore (Ishape.run g);
  let f = Flipping.run g in
  check Alcotest.int "one node" 1 (Flipping.n_nodes f);
  check Alcotest.(list int) "chain_of finds" (List.hd f.Flipping.chains)
    (Flipping.chain_of f (List.hd (List.hd f.Flipping.chains)))

let prop_flipping_chains_partition =
  QCheck.Test.make ~name:"flipping chains partition the points" ~count:30
    QCheck.(pair (int_range 2 5) (int_range 1 40))
    (fun (wires, gates) ->
      let c =
        Generator.random_clifford_t ~seed:(3 + wires + (11 * gates))
          ~n_qubits:wires ~n_gates:gates
      in
      let g = Pd_graph.of_icm (Decompose.run c) in
      ignore (Ishape.run g);
      let f = Flipping.run g in
      Flipping.validate g f = []
      && List.length (List.concat f.Flipping.chains)
         = List.length f.Flipping.points)

let prop_flipping_rng_still_valid =
  QCheck.Test.make ~name:"randomized flipping stays valid" ~count:20
    (QCheck.int_range 1 1000)
    (fun seed ->
      let c = Generator.random_clifford_t ~seed ~n_qubits:4 ~n_gates:25 in
      let g = Pd_graph.of_icm (Decompose.run c) in
      ignore (Ishape.run g);
      let f = Flipping.run ~rng:(Tqec_util.Rng.create seed) g in
      Flipping.validate g f = [])

(* ------------------------------------------------------------------ *)
(* Dual bridging (Fig. 14)                                             *)
(* ------------------------------------------------------------------ *)

let test_dual_bridge_three_cnot () =
  let g = three_cnot_graph () in
  ignore (Ishape.run g);
  let db = Dual_bridge.run g in
  (* d0 and d1 merge (both pass residual p2); d2 stays alone. *)
  check Alcotest.int "one bridge" 1 db.Dual_bridge.n_bridges;
  check Alcotest.bool "d0 ~ d1" true
    (Dual_bridge.class_of db 0 = Dual_bridge.class_of db 1);
  check Alcotest.bool "d2 separate" true
    (Dual_bridge.class_of db 2 <> Dual_bridge.class_of db 0)

let test_dual_bridge_avoids_ishape_error () =
  (* The error case of Fig. 14: without the I-shape split, d0 and d2
     share p1 and would bridge; after I-shape they must not. *)
  let g_raw = three_cnot_graph () in
  let db_raw = Dual_bridge.run g_raw in
  check Alcotest.bool "raw graph would bridge d0,d2" true
    (Dual_bridge.class_of db_raw 0 = Dual_bridge.class_of db_raw 2);
  let g = three_cnot_graph () in
  ignore (Ishape.run g);
  let db = Dual_bridge.run g in
  check Alcotest.bool "after ishape d0,d2 split" true
    (Dual_bridge.class_of db 0 <> Dual_bridge.class_of db 2)

let test_dual_bridge_time_order_refusal () =
  (* Two T gadgets on one wire: their gadget-internal nets must not end
     up merged across gadgets. *)
  let c =
    Circuit.make ~name:"tt" ~n_qubits:1
      [ Tqec_circuit.Gate.T 0; Tqec_circuit.Gate.T 0 ]
  in
  let icm = Decompose.run c in
  let g = Pd_graph.of_icm icm in
  ignore (Ishape.run g);
  let db = Dual_bridge.run g in
  let gadget0 = icm.Icm.t_gadgets.(0) and gadget1 = icm.Icm.t_gadgets.(1) in
  let net_of_cnot k =
    (* nets are created in CNOT order *)
    k
  in
  List.iter
    (fun k0 ->
      List.iter
        (fun k1 ->
          check Alcotest.bool "cross-gadget nets separate" true
            (Dual_bridge.class_of db (net_of_cnot k0)
            <> Dual_bridge.class_of db (net_of_cnot k1)))
        gadget1.Icm.t_cnots)
    gadget0.Icm.t_cnots

let prop_dual_bridge_share_module =
  QCheck.Test.make
    ~name:"bridged nets are connected through shared modules" ~count:25
    QCheck.(pair (int_range 2 5) (int_range 1 30))
    (fun (wires, gates) ->
      let c =
        Generator.random_clifford_t ~seed:(19 + wires + (7 * gates))
          ~n_qubits:wires ~n_gates:gates
      in
      let g = Pd_graph.of_icm (Decompose.run c) in
      ignore (Ishape.run g);
      let db = Dual_bridge.run g in
      (* Every merged class must be connected when viewed as a graph whose
         edges are shared modules. *)
      List.for_all
        (fun (_, members) ->
          match members with
          | [] | [ _ ] -> true
          | members ->
              let shares a b =
                List.exists
                  (fun m -> List.mem m (Pd_graph.modules_of_net g b))
                  (Pd_graph.modules_of_net g a)
              in
              (* BFS connectivity *)
              let visited = Hashtbl.create 8 in
              let rec bfs = function
                | [] -> ()
                | n :: rest ->
                    if Hashtbl.mem visited n then bfs rest
                    else begin
                      Hashtbl.add visited n ();
                      let next =
                        List.filter
                          (fun m -> (not (Hashtbl.mem visited m)) && shares n m)
                          members
                      in
                      bfs (next @ rest)
                    end
              in
              bfs [ List.hd members ];
              List.for_all (Hashtbl.mem visited) members)
        db.Dual_bridge.merged)

(* ------------------------------------------------------------------ *)
(* F values (Eq. 5)                                                    *)
(* ------------------------------------------------------------------ *)

let test_fvalue_alternates () =
  let g = three_cnot_graph () in
  ignore (Ishape.run g);
  let f = Flipping.run g in
  let fv = Fvalue.plan f in
  check Alcotest.bool "alternation law" true (Fvalue.alternates f fv);
  match f.Flipping.chains with
  | [ [ a; b; c ] ] ->
      check Alcotest.bool "first unflipped" false (Fvalue.flipped fv a);
      check Alcotest.bool "second flipped" true (Fvalue.flipped fv b);
      check Alcotest.bool "third unflipped" false (Fvalue.flipped fv c)
  | _ -> Alcotest.fail "expected a single 3-chain"

let prop_fvalue_always_alternates =
  QCheck.Test.make ~name:"f values always alternate along chains" ~count:30
    (QCheck.int_range 1 1000)
    (fun seed ->
      let c = Generator.random_clifford_t ~seed ~n_qubits:3 ~n_gates:30 in
      let g = Pd_graph.of_icm (Decompose.run c) in
      ignore (Ishape.run g);
      let f = Flipping.run g in
      Fvalue.alternates f (Fvalue.plan f))

let suites =
  [
    ( "pdgraph.construction",
      [
        Alcotest.test_case "Fig. 6 module structure" `Quick
          test_fig6_module_structure;
        Alcotest.test_case "Fig. 6 net traversal" `Quick test_fig6_net_traversal;
        Alcotest.test_case "Fig. 6 module kinds" `Quick test_fig6_module_kinds;
        Alcotest.test_case "row flags" `Quick test_row_flags;
        Alcotest.test_case "distillation modules" `Quick test_distill_modules;
        Alcotest.test_case "module count identity" `Quick
          test_module_count_identity;
      ] );
    ( "pdgraph.ishape",
      [
        Alcotest.test_case "three-cnot merges" `Quick test_ishape_three_cnot;
        Alcotest.test_case "idempotent" `Quick test_ishape_idempotent;
        Alcotest.test_case "net retarget" `Quick test_ishape_net_retarget;
        Alcotest.test_case "respects measurement order" `Quick
          test_ishape_respects_meas_order;
        Alcotest.test_case "ordered last module alive" `Quick
          test_ishape_ordered_last_stays_alive;
        qtest prop_ishape_preserves_braiding;
      ] );
    ( "pdgraph.flipping",
      [
        Alcotest.test_case "three-cnot single chain" `Quick
          test_flipping_three_cnot_single_chain;
        Alcotest.test_case "ishape pairs are one point" `Quick
          test_flipping_points_pair_ishape;
        Alcotest.test_case "without ishape" `Quick test_flipping_without_ishape;
        Alcotest.test_case "exclude" `Quick test_flipping_exclude;
        Alcotest.test_case "n_nodes/chain_of" `Quick test_flipping_n_nodes;
        qtest prop_flipping_chains_partition;
        qtest prop_flipping_rng_still_valid;
      ] );
    ( "pdgraph.dual_bridge",
      [
        Alcotest.test_case "three-cnot bridges d0,d1" `Quick
          test_dual_bridge_three_cnot;
        Alcotest.test_case "ishape split prevents error" `Quick
          test_dual_bridge_avoids_ishape_error;
        Alcotest.test_case "time-order refusal" `Quick
          test_dual_bridge_time_order_refusal;
        qtest prop_dual_bridge_share_module;
      ] );
    ( "pdgraph.fvalue",
      [
        Alcotest.test_case "alternates on three-cnot" `Quick
          test_fvalue_alternates;
        qtest prop_fvalue_always_alternates;
      ] );
  ]
