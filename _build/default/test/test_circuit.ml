(* Tests for the tqec_circuit substrate: gates, circuits, RevLib format,
   decompositions, benchmark generator calibration. *)

open Tqec_circuit

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Gate                                                                *)
(* ------------------------------------------------------------------ *)

let test_gate_qubits () =
  check Alcotest.(list int) "cnot" [ 1; 2 ]
    (Gate.qubits (Gate.Cnot { control = 1; target = 2 }));
  check Alcotest.(list int) "toffoli" [ 0; 1; 2 ]
    (Gate.qubits (Gate.Toffoli { c1 = 0; c2 = 1; target = 2 }));
  check Alcotest.(list int) "mct" [ 0; 1; 2; 3 ]
    (Gate.qubits (Gate.Mct { controls = [ 0; 1; 2 ]; target = 3 }));
  check Alcotest.int "max qubit" 7
    (Gate.max_qubit (Gate.Fredkin { control = 7; t1 = 1; t2 = 2 }))

let test_gate_well_formed () =
  check Alcotest.bool "good cnot" true
    (Gate.well_formed (Gate.Cnot { control = 0; target = 1 }));
  check Alcotest.bool "self cnot" false
    (Gate.well_formed (Gate.Cnot { control = 1; target = 1 }));
  check Alcotest.bool "dup toffoli" false
    (Gate.well_formed (Gate.Toffoli { c1 = 0; c2 = 0; target = 1 }));
  check Alcotest.bool "negative wire" false (Gate.well_formed (Gate.T (-1)));
  check Alcotest.bool "short mct" false
    (Gate.well_formed (Gate.Mct { controls = [ 0; 1 ]; target = 2 }))

let test_gate_classify () =
  check Alcotest.bool "T is clifford+T" true (Gate.is_clifford_t (Gate.T 0));
  check Alcotest.bool "toffoli is not" false
    (Gate.is_clifford_t (Gate.Toffoli { c1 = 0; c2 = 1; target = 2 }));
  check Alcotest.bool "T is T" true (Gate.is_t (Gate.T 0));
  check Alcotest.bool "Tdg is T" true (Gate.is_t (Gate.Tdg 0));
  check Alcotest.bool "S is not T" false (Gate.is_t (Gate.S 0))

(* ------------------------------------------------------------------ *)
(* Circuit                                                             *)
(* ------------------------------------------------------------------ *)

let test_circuit_make_validates () =
  Alcotest.check_raises "wire overflow"
    (Invalid_argument "Circuit.make: gate CNOT 0 5 exceeds 2 wires")
    (fun () ->
      ignore
        (Circuit.make ~name:"bad" ~n_qubits:2
           [ Gate.Cnot { control = 0; target = 5 } ]))

let test_circuit_counts () =
  let c =
    Circuit.make ~name:"c" ~n_qubits:3
      [
        Gate.T 0;
        Gate.Tdg 1;
        Gate.Cnot { control = 0; target = 1 };
        Gate.Toffoli { c1 = 0; c2 = 1; target = 2 };
      ]
  in
  check Alcotest.int "gates" 4 (Circuit.n_gates c);
  check Alcotest.int "cnots" 1 (Circuit.count_cnots c);
  check Alcotest.int "t" 2 (Circuit.count_t c);
  check Alcotest.int "toffoli" 1 (Circuit.count_toffoli c);
  check Alcotest.bool "not clifford+T" false (Circuit.is_clifford_t c)

let test_circuit_depth () =
  let c =
    Circuit.make ~name:"d" ~n_qubits:4
      [
        Gate.Cnot { control = 0; target = 1 };
        Gate.Cnot { control = 2; target = 3 };
        Gate.Cnot { control = 1; target = 2 };
      ]
  in
  check Alcotest.int "depth" 2 (Circuit.depth c);
  let layers = Circuit.gate_layers c in
  check Alcotest.int "first layer parallel" 2 (List.length (List.nth layers 0));
  check Alcotest.int "second layer" 1 (List.length (List.nth layers 1))

let test_circuit_wire_usage () =
  let c =
    Circuit.make ~name:"u" ~n_qubits:3
      [ Gate.Cnot { control = 0; target = 1 }; Gate.T 1 ]
  in
  check Alcotest.(array int) "usage" [| 1; 2; 0 |] (Circuit.wire_usage c)

(* ------------------------------------------------------------------ *)
(* Revlib                                                              *)
(* ------------------------------------------------------------------ *)

let sample_real =
  {|# a comment
.version 1.0
.numvars 4
.variables a b c d
.constants ----
.garbage ----
.begin
t1 a
t2 a b
t3 a b c   # inline comment
t4 a b c d
f2 a b
f3 a b c
.end
|}

let test_revlib_parse () =
  let c = Revlib.parse_string ~name:"sample" sample_real in
  check Alcotest.int "qubits" 4 c.Circuit.n_qubits;
  check Alcotest.int "gates" 6 (Circuit.n_gates c);
  match c.Circuit.gates with
  | [ Gate.X 0; Gate.Cnot { control = 0; target = 1 };
      Gate.Toffoli { c1 = 0; c2 = 1; target = 2 };
      Gate.Mct { controls = [ 0; 1; 2 ]; target = 3 }; Gate.Swap (0, 1);
      Gate.Fredkin { control = 0; t1 = 1; t2 = 2 } ] ->
      ()
  | _ -> Alcotest.fail "unexpected gate list"

let test_revlib_roundtrip () =
  let c = Revlib.parse_string ~name:"sample" sample_real in
  let c' = Revlib.parse_string ~name:"sample" (Revlib.to_string c) in
  check Alcotest.bool "roundtrip equal" true (Circuit.equal c c')

let test_revlib_errors () =
  (try
     ignore (Revlib.parse_string ~name:"x" ".begin\nt2 a\n.end\n");
     Alcotest.fail "expected arity error"
   with Revlib.Parse_error { line = 2; _ } -> ());
  (try
     ignore (Revlib.parse_string ~name:"x" "t2 x0 x1\n");
     Alcotest.fail "expected gate-before-begin error"
   with Revlib.Parse_error { line = 1; _ } -> ());
  try
    ignore (Revlib.parse_string ~name:"x" ".begin\nq3 a b c\n.end\n");
    Alcotest.fail "expected unsupported gate"
  with Revlib.Parse_error { line = 2; _ } -> ()

let test_revlib_numeric_vars () =
  let c = Revlib.parse_string ~name:"n" ".begin\nt2 0 3\n.end\n" in
  check Alcotest.int "inferred wires" 4 c.Circuit.n_qubits

(* ------------------------------------------------------------------ *)
(* Mct lowering                                                        *)
(* ------------------------------------------------------------------ *)

let only_not_cnot_toffoli c =
  List.for_all
    (fun g ->
      match (g : Gate.t) with
      | X _ | Cnot _ | Toffoli _ -> true
      | _ -> Gate.is_clifford_t g)
    c.Circuit.gates

let test_mct_swap () =
  let c = Circuit.make ~name:"s" ~n_qubits:2 [ Gate.Swap (0, 1) ] in
  let l = Mct.lower c in
  check Alcotest.int "three cnots" 3 (Circuit.count_cnots l);
  check Alcotest.int "no extra wires" 2 l.Circuit.n_qubits

let test_mct_fredkin () =
  let c =
    Circuit.make ~name:"f" ~n_qubits:3
      [ Gate.Fredkin { control = 0; t1 = 1; t2 = 2 } ]
  in
  let l = Mct.lower c in
  check Alcotest.int "cnots" 2 (Circuit.count_cnots l);
  check Alcotest.int "toffoli" 1 (Circuit.count_toffoli l)

let test_mct_expansion () =
  let c =
    Circuit.make ~name:"m" ~n_qubits:5
      [ Gate.Mct { controls = [ 0; 1; 2; 3 ]; target = 4 } ]
  in
  check Alcotest.int "ancillae" 2 (Mct.ancillae_needed c);
  let l = Mct.lower c in
  check Alcotest.int "wires" 7 l.Circuit.n_qubits;
  check Alcotest.bool "lowered" true (only_not_cnot_toffoli l);
  (* V-chain: k=4 controls -> 2*(k-2)+1 = 5 Toffolis *)
  check Alcotest.int "toffoli count" 5 (Circuit.count_toffoli l)

let test_mct_passthrough () =
  let c =
    Circuit.make ~name:"p" ~n_qubits:3
      [ Gate.T 0; Gate.Toffoli { c1 = 0; c2 = 1; target = 2 } ]
  in
  check Alcotest.bool "unchanged" true (Circuit.equal (Mct.lower c) c)

(* ------------------------------------------------------------------ *)
(* Clifford+T lowering                                                 *)
(* ------------------------------------------------------------------ *)

let test_clifford_t_toffoli () =
  let c =
    Circuit.make ~name:"t" ~n_qubits:3
      [ Gate.Toffoli { c1 = 0; c2 = 1; target = 2 } ]
  in
  let l = Clifford_t.lower c in
  check Alcotest.bool "clifford+T" true (Circuit.is_clifford_t l);
  check Alcotest.int "7 T" 7 (Circuit.count_t l);
  check Alcotest.int "6 CNOT" 6 (Circuit.count_cnots l);
  check Alcotest.int "wires preserved" 3 l.Circuit.n_qubits

let test_clifford_t_rejects_mct () =
  let c =
    Circuit.make ~name:"bad" ~n_qubits:4
      [ Gate.Mct { controls = [ 0; 1; 2 ]; target = 3 } ]
  in
  try
    ignore (Clifford_t.lower c);
    Alcotest.fail "expected rejection"
  with Invalid_argument _ -> ()

let test_decompose_full () =
  let c =
    Circuit.make ~name:"full" ~n_qubits:5
      [
        Gate.Mct { controls = [ 0; 1; 2 ]; target = 3 };
        Gate.Swap (3, 4);
        Gate.Toffoli { c1 = 0; c2 = 1; target = 4 };
      ]
  in
  let l = Clifford_t.decompose c in
  check Alcotest.bool "clifford+T" true (Circuit.is_clifford_t l);
  (* MCT(3 controls) = 3 Toffolis, plus 1 direct = 4 Toffolis -> 28 T. *)
  check Alcotest.int "t count" 28 (Circuit.count_t l)

let prop_toffoli_t_accounting =
  QCheck.Test.make ~name:"clifford+T: T count = 7 * toffoli count" ~count:50
    QCheck.(pair (int_range 3 8) (int_range 0 20))
    (fun (wires, n_tof) ->
      let spec =
        {
          Generator.name = "prop";
          n_wires = wires;
          n_toffoli = n_tof;
          n_cnot = 5;
          n_not = 2;
          n_unused = 0;
          seed = wires + (100 * n_tof);
        }
      in
      let c = Generator.generate spec in
      let l = Clifford_t.decompose c in
      Circuit.count_t l = 7 * n_tof
      && Circuit.count_cnots l = 5 + (6 * n_tof))

(* ------------------------------------------------------------------ *)
(* Generator / Suite                                                   *)
(* ------------------------------------------------------------------ *)

let test_generator_deterministic () =
  let spec =
    {
      Generator.name = "det";
      n_wires = 6;
      n_toffoli = 4;
      n_cnot = 10;
      n_not = 2;
      n_unused = 0;
      seed = 11;
    }
  in
  let a = Generator.generate spec and b = Generator.generate spec in
  check Alcotest.bool "same circuit" true (Circuit.equal a b)

let test_generator_counts () =
  let spec =
    {
      Generator.name = "cnt";
      n_wires = 8;
      n_toffoli = 5;
      n_cnot = 12;
      n_not = 3;
      n_unused = 0;
      seed = 3;
    }
  in
  let c = Generator.generate spec in
  check Alcotest.int "toffoli" 5 (Circuit.count_toffoli c);
  check Alcotest.int "cnot" 12 (Circuit.count_cnots c);
  check Alcotest.int "gates" 20 (Circuit.n_gates c);
  check Alcotest.int "wires" 8 c.Circuit.n_qubits

let test_suite_has_eight () =
  check Alcotest.int "eight benchmarks" 8 (List.length Suite.all);
  check
    Alcotest.(list string)
    "names"
    [
      "4gt10-v1_81"; "4gt4-v0_73"; "rd84_142"; "hwb5_53"; "add16_174";
      "sym6_145"; "cycle17_3_112"; "ham15_107";
    ]
    Suite.names

let test_suite_find () =
  (match Suite.find "rd84_142" with
  | Some e -> check Alcotest.int "wires" 15 e.Suite.spec.Generator.n_wires
  | None -> Alcotest.fail "rd84_142 missing");
  check Alcotest.bool "unknown" true (Suite.find "nope" = None)

(* The generator calibration must reproduce the paper's Table 1 columns
   exactly once decomposed (identities documented in Suite). *)
let test_suite_calibration_identities () =
  List.iter
    (fun (e : Suite.entry) ->
      let p = e.paper and s = e.spec in
      check Alcotest.int
        (s.Generator.name ^ " |A| = 7*tof")
        p.Suite.p_a
        (7 * s.Generator.n_toffoli);
      check Alcotest.int (s.Generator.name ^ " Y=2A") p.Suite.p_y (2 * p.Suite.p_a);
      check Alcotest.int
        (s.Generator.name ^ " qubits")
        p.Suite.p_qubits
        (s.Generator.n_wires + (6 * p.Suite.p_a));
      check Alcotest.int
        (s.Generator.name ^ " cnots")
        p.Suite.p_cnots
        (s.Generator.n_cnot + (48 * s.Generator.n_toffoli));
      (* Canonical volume closed form, exact for every Table 2 row once
         unused wires (which have no canonical rails) are dropped. *)
      check Alcotest.int
        (s.Generator.name ^ " canonical")
        p.Suite.p_canonical
        ((6 * p.Suite.p_cnots * (p.Suite.p_qubits - s.Generator.n_unused))
        + (18 * p.Suite.p_y) + (192 * p.Suite.p_a)))
    Suite.all

let test_three_cnot_example () =
  let c = Suite.three_cnot_example in
  check Alcotest.int "3 qubits" 3 c.Circuit.n_qubits;
  check Alcotest.int "3 cnots" 3 (Circuit.count_cnots c)

let test_scaled () =
  let e = List.nth Suite.all 7 in
  let s = Suite.scaled ~factor:10 e in
  check Alcotest.bool "smaller" true
    (Circuit.n_gates s < Circuit.n_gates (Suite.circuit e))

(* ------------------------------------------------------------------ *)
(* Sim (semantic oracle)                                               *)
(* ------------------------------------------------------------------ *)

let test_sim_gates () =
  let c = Circuit.make ~name:"s" ~n_qubits:3
      [ Gate.X 0; Gate.Cnot { control = 0; target = 1 };
        Gate.Toffoli { c1 = 0; c2 = 1; target = 2 } ]
  in
  (* |000> -> X0 -> |100> -> CNOT -> |110> -> TOF -> |111> *)
  check Alcotest.int "basis 0" 0b111 (Sim.apply_int c 0);
  check Alcotest.bool "reversible" true (Sim.is_reversible c);
  check Alcotest.bool "T not reversible" false
    (Sim.is_reversible (Circuit.make ~name:"t" ~n_qubits:1 [ Gate.T 0 ]))

let test_sim_swap_fredkin () =
  let c = Circuit.make ~name:"sw" ~n_qubits:2 [ Gate.Swap (0, 1) ] in
  check Alcotest.int "swap" 0b10 (Sim.apply_int c 0b01);
  let f = Circuit.make ~name:"fr" ~n_qubits:3
      [ Gate.Fredkin { control = 0; t1 = 1; t2 = 2 } ]
  in
  check Alcotest.int "fredkin fires" 0b101 (Sim.apply_int f 0b011);
  check Alcotest.int "fredkin idle" 0b010 (Sim.apply_int f 0b010)

let test_sim_truth_table_is_permutation () =
  let c = Generator.generate
      { Generator.name = "p"; n_wires = 4; n_toffoli = 3; n_cnot = 6;
        n_not = 2; n_unused = 0; seed = 5 }
  in
  let tt = Sim.truth_table c in
  let sorted = Array.copy tt in
  Array.sort Int.compare sorted;
  check Alcotest.bool "permutation" true
    (Array.to_list sorted = List.init 16 (fun i -> i))

let prop_mct_lowering_semantics =
  QCheck.Test.make ~name:"Mct.lower preserves the computed function"
    ~count:20
    QCheck.(pair (int_range 4 7) (int_range 1 500))
    (fun (wires, seed) ->
      let rng = Tqec_util.Rng.create seed in
      (* random circuits with MCT/Fredkin/Swap mixed in *)
      let gate () =
        let distinct k =
          let rec draw acc =
            if List.length acc = k then acc
            else
              let q = Tqec_util.Rng.int rng wires in
              if List.mem q acc then draw acc else draw (q :: acc)
          in
          draw []
        in
        match Tqec_util.Rng.int rng 4 with
        | 0 -> (match distinct 2 with
                | [ a; b ] -> Gate.Cnot { control = a; target = b }
                | _ -> assert false)
        | 1 -> (match distinct 3 with
                | [ a; b; c ] -> Gate.Toffoli { c1 = a; c2 = b; target = c }
                | _ -> assert false)
        | 2 -> (match distinct 3 with
                | [ a; b; c ] -> Gate.Fredkin { control = a; t1 = b; t2 = c }
                | _ -> assert false)
        | _ -> (match distinct (min wires 4) with
                | t :: cs when List.length cs >= 3 ->
                    Gate.Mct { controls = cs; target = t }
                | [ a; b ] -> Gate.Cnot { control = a; target = b }
                | [ a; b; c ] -> Gate.Toffoli { c1 = a; c2 = b; target = c }
                | _ -> Gate.X (Tqec_util.Rng.int rng wires))
      in
      let c =
        Circuit.make ~name:"m" ~n_qubits:wires
          (List.init 10 (fun _ -> gate ()))
      in
      Sim.equivalent c (Mct.lower c))

let prop_optimize_preserves_semantics =
  QCheck.Test.make ~name:"Optimize.run preserves reversible semantics"
    ~count:25
    QCheck.(pair (int_range 3 6) (int_range 1 500))
    (fun (wires, seed) ->
      let spec =
        { Generator.name = "o"; n_wires = wires; n_toffoli = 4; n_cnot = 12;
          n_not = 4; n_unused = 0; seed }
      in
      let c = Generator.generate spec in
      Sim.equivalent c (Optimize.run c))

let prop_revlib_roundtrip_semantics =
  QCheck.Test.make ~name:"RevLib round trip preserves semantics" ~count:15
    (QCheck.int_range 1 500)
    (fun seed ->
      let spec =
        { Generator.name = "r"; n_wires = 5; n_toffoli = 3; n_cnot = 8;
          n_not = 2; n_unused = 0; seed }
      in
      let c = Generator.generate spec in
      let c' = Revlib.parse_string ~name:"r" (Revlib.to_string c) in
      Sim.equivalent c c')

let suites =
  [
    ( "circuit.gate",
      [
        Alcotest.test_case "qubits" `Quick test_gate_qubits;
        Alcotest.test_case "well-formed" `Quick test_gate_well_formed;
        Alcotest.test_case "classify" `Quick test_gate_classify;
      ] );
    ( "circuit.circuit",
      [
        Alcotest.test_case "make validates" `Quick test_circuit_make_validates;
        Alcotest.test_case "counts" `Quick test_circuit_counts;
        Alcotest.test_case "depth" `Quick test_circuit_depth;
        Alcotest.test_case "wire usage" `Quick test_circuit_wire_usage;
      ] );
    ( "circuit.revlib",
      [
        Alcotest.test_case "parse" `Quick test_revlib_parse;
        Alcotest.test_case "roundtrip" `Quick test_revlib_roundtrip;
        Alcotest.test_case "errors" `Quick test_revlib_errors;
        Alcotest.test_case "numeric vars" `Quick test_revlib_numeric_vars;
      ] );
    ( "circuit.mct",
      [
        Alcotest.test_case "swap" `Quick test_mct_swap;
        Alcotest.test_case "fredkin" `Quick test_mct_fredkin;
        Alcotest.test_case "mct expansion" `Quick test_mct_expansion;
        Alcotest.test_case "passthrough" `Quick test_mct_passthrough;
      ] );
    ( "circuit.clifford_t",
      [
        Alcotest.test_case "toffoli network" `Quick test_clifford_t_toffoli;
        Alcotest.test_case "rejects mct" `Quick test_clifford_t_rejects_mct;
        Alcotest.test_case "full decompose" `Quick test_decompose_full;
        qtest prop_toffoli_t_accounting;
      ] );
    ( "circuit.sim",
      [
        Alcotest.test_case "gate semantics" `Quick test_sim_gates;
        Alcotest.test_case "swap/fredkin" `Quick test_sim_swap_fredkin;
        Alcotest.test_case "truth table permutation" `Quick
          test_sim_truth_table_is_permutation;
        qtest prop_mct_lowering_semantics;
        qtest prop_optimize_preserves_semantics;
        qtest prop_revlib_roundtrip_semantics;
      ] );
    ( "circuit.generator-suite",
      [
        Alcotest.test_case "deterministic" `Quick test_generator_deterministic;
        Alcotest.test_case "counts" `Quick test_generator_counts;
        Alcotest.test_case "eight benchmarks" `Quick test_suite_has_eight;
        Alcotest.test_case "find" `Quick test_suite_find;
        Alcotest.test_case "calibration identities" `Quick
          test_suite_calibration_identities;
        Alcotest.test_case "three-cnot example" `Quick test_three_cnot_example;
        Alcotest.test_case "scaled" `Quick test_scaled;
      ] );
  ]
