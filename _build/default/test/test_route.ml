(* Tests for the routing substrate: grid bookkeeping, A* optimality,
   PathFinder negotiation. *)

open Tqec_util
open Tqec_route

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest
let vec = Vec3.make

let grid10 () = Grid.create (Box3.make (vec 0 0 0) (vec 9 9 9))

(* ------------------------------------------------------------------ *)
(* Grid                                                                *)
(* ------------------------------------------------------------------ *)

let test_grid_usage_history () =
  let g = grid10 () in
  let p = vec 1 2 3 in
  check Alcotest.int "usage 0" 0 (Grid.usage g p);
  Grid.add_usage g p 2;
  check Alcotest.int "usage 2" 2 (Grid.usage g p);
  Grid.add_history g p 5;
  check Alcotest.int "history" 5 (Grid.history g p);
  (* cost = 1 + history + penalty * overuse(=2) *)
  check Alcotest.int "cost" (1 + 5 + (3 * 2)) (Grid.enter_cost g ~penalty:3 p);
  Grid.add_usage g p (-2);
  check Alcotest.int "usage back" 0 (Grid.usage g p)

let test_grid_negative_usage_rejected () =
  let g = grid10 () in
  Alcotest.check_raises "negative usage"
    (Invalid_argument "Grid.add_usage: negative usage") (fun () ->
      Grid.add_usage g (vec 0 0 0) (-1))

let test_grid_obstacles () =
  let g = grid10 () in
  Grid.set_obstacle g (vec 5 5 5);
  check Alcotest.bool "obstacle" true (Grid.is_obstacle g (vec 5 5 5));
  check Alcotest.bool "oob not obstacle" false (Grid.is_obstacle g (vec 99 0 0));
  Grid.set_obstacle_box g (Box3.make (vec 0 0 0) (vec 1 1 1));
  check Alcotest.bool "box corner" true (Grid.is_obstacle g (vec 1 1 1))

let test_grid_shared () =
  let g = grid10 () in
  let p = vec 2 2 2 in
  Grid.set_shared g p;
  Grid.add_usage g p 5;
  check Alcotest.(list bool) "not overused" []
    (List.map (fun _ -> true) (Grid.overused g));
  (* shared cell cost ignores congestion *)
  check Alcotest.int "shared cost" 1 (Grid.enter_cost g ~penalty:10 p)

let test_grid_overused () =
  let g = grid10 () in
  Grid.add_usage g (vec 1 1 1) 2;
  Grid.add_usage g (vec 2 2 2) 1;
  check Alcotest.int "one overused" 1 (List.length (Grid.overused g))

let test_grid_die_cost () =
  let die = Box3.make (vec 0 0 0) (vec 4 4 4) in
  let g = Grid.create ~die (Box3.make (vec 0 0 0) (vec 9 9 9)) in
  let inside = Grid.enter_cost g ~penalty:1 (vec 1 1 1) in
  let outside = Grid.enter_cost g ~penalty:1 (vec 8 8 8) in
  check Alcotest.bool "outside costs more" true (outside > inside)

(* ------------------------------------------------------------------ *)
(* Astar                                                               *)
(* ------------------------------------------------------------------ *)

let full_region = Box3.make (vec 0 0 0) (vec 9 9 9)

let test_astar_straight_line () =
  let g = grid10 () in
  match
    Astar.search g ~region:full_region ~penalty:1 ~sources:[ vec 0 0 0 ]
      ~target:(vec 5 0 0)
  with
  | None -> Alcotest.fail "expected a path"
  | Some path ->
      check Alcotest.int "shortest length" 6 (List.length path);
      check Alcotest.bool "starts at source" true
        (Vec3.equal (List.hd path) (vec 0 0 0));
      check Alcotest.bool "ends at target" true
        (Vec3.equal (List.nth path 5) (vec 5 0 0))

let test_astar_detours_around_wall () =
  let g = grid10 () in
  (* wall at x=2 spanning all y,z except y=9 *)
  for y = 0 to 8 do
    for z = 0 to 9 do
      Grid.set_obstacle g (vec 2 y z)
    done
  done;
  match
    Astar.search g ~region:full_region ~penalty:1 ~sources:[ vec 0 0 0 ]
      ~target:(vec 4 0 0)
  with
  | None -> Alcotest.fail "expected detour"
  | Some path ->
      (* must pass through the y=9 gap *)
      check Alcotest.bool "visits gap row" true
        (List.exists (fun (p : Vec3.t) -> p.y = 9) path);
      (* path is a connected chain of unit steps *)
      let rec connected = function
        | a :: (b :: _ as rest) -> Vec3.manhattan a b = 1 && connected rest
        | _ -> true
      in
      check Alcotest.bool "connected" true (connected path)

let test_astar_unreachable () =
  let g = grid10 () in
  for y = 0 to 9 do
    for z = 0 to 9 do
      Grid.set_obstacle g (vec 2 y z)
    done
  done;
  check Alcotest.bool "unreachable" true
    (Astar.search g ~region:full_region ~penalty:1 ~sources:[ vec 0 0 0 ]
       ~target:(vec 4 0 0)
    = None)

let test_astar_respects_region () =
  let g = grid10 () in
  let region = Box3.make (vec 0 0 0) (vec 3 3 3) in
  check Alcotest.bool "target outside region" true
    (Astar.search g ~region ~penalty:1 ~sources:[ vec 0 0 0 ]
       ~target:(vec 5 0 0)
    = None)

let test_astar_source_target_exempt () =
  let g = grid10 () in
  Grid.set_obstacle g (vec 0 0 0);
  Grid.set_obstacle g (vec 3 0 0);
  match
    Astar.search g ~region:full_region ~penalty:1 ~sources:[ vec 0 0 0 ]
      ~target:(vec 3 0 0)
  with
  | None -> Alcotest.fail "pins must be reachable"
  | Some path -> check Alcotest.int "length" 4 (List.length path)

let test_astar_multi_source () =
  let g = grid10 () in
  match
    Astar.search g ~region:full_region ~penalty:1
      ~sources:[ vec 0 0 0; vec 9 9 9; vec 5 1 0 ]
      ~target:(vec 5 0 0)
  with
  | None -> Alcotest.fail "expected path"
  | Some path ->
      (* picks the closest source *)
      check Alcotest.int "short path" 2 (List.length path);
      check Alcotest.bool "from nearest" true
        (Vec3.equal (List.hd path) (vec 5 1 0))

(* A* path cost equals Dijkstra-optimal cost on random congested grids. *)
let prop_astar_optimal_vs_dijkstra =
  QCheck.Test.make ~name:"A* matches Dijkstra cost on random grids" ~count:25
    (QCheck.int_range 1 10_000)
    (fun seed ->
      let rng = Rng.create seed in
      let size = 6 in
      let box = Box3.make (vec 0 0 0) (vec (size - 1) (size - 1) (size - 1)) in
      let g = Grid.create box in
      (* random usage bumps make non-uniform costs *)
      for _ = 1 to 40 do
        let p = vec (Rng.int rng size) (Rng.int rng size) (Rng.int rng size) in
        Grid.add_usage g p 1
      done;
      for _ = 1 to 10 do
        let p = vec (Rng.int rng size) (Rng.int rng size) (Rng.int rng size) in
        if not (Vec3.equal p (vec 0 0 0)) then Grid.set_obstacle g p
      done;
      let target = vec (size - 1) (size - 1) (size - 1) in
      let source = vec 0 0 0 in
      let astar_cost =
        match
          Astar.search g ~region:box ~penalty:2 ~sources:[ source ] ~target
        with
        | Some path -> Some (Astar.path_cost g ~penalty:2 path)
        | None -> None
      in
      (* plain Dijkstra oracle *)
      let dist = Hashtbl.create 64 in
      let q = Pqueue.create () in
      Hashtbl.replace dist source 0;
      Pqueue.push q 0 source;
      let passable p =
        Box3.contains box p
        && ((not (Grid.is_obstacle g p)) || Vec3.equal p target || Vec3.equal p source)
      in
      while not (Pqueue.is_empty q) do
        let d, p = Pqueue.pop q in
        if d <= (try Hashtbl.find dist p with Not_found -> max_int) then
          List.iter
            (fun n ->
              if passable n then begin
                let nd = d + Grid.enter_cost g ~penalty:2 n in
                let old = try Hashtbl.find dist n with Not_found -> max_int in
                if nd < old then begin
                  Hashtbl.replace dist n nd;
                  Pqueue.push q nd n
                end
              end)
            (Vec3.axis_neighbors p)
      done;
      let dijkstra_cost = Hashtbl.find_opt dist target in
      astar_cost = dijkstra_cost)

(* ------------------------------------------------------------------ *)
(* Pathfinder                                                          *)
(* ------------------------------------------------------------------ *)

let test_pathfinder_simple_net () =
  let g = grid10 () in
  let nets =
    [ { Pathfinder.net_id = 0; pins = [ vec 0 0 0; vec 5 5 0; vec 9 0 0 ] } ]
  in
  let r = Pathfinder.route_all g Pathfinder.default_config nets in
  check Alcotest.bool "success" true r.Pathfinder.success;
  check Alcotest.(list string) "valid" [] (Pathfinder.validate g r nets)

let test_pathfinder_negotiates_conflict () =
  (* two nets whose straight paths collide in a narrow corridor *)
  let g = Grid.create (Box3.make (vec 0 0 0) (vec 9 2 1)) in
  let nets =
    [
      { Pathfinder.net_id = 0; pins = [ vec 0 1 0; vec 9 1 0 ] };
      { Pathfinder.net_id = 1; pins = [ vec 0 1 1; vec 9 1 1 ] };
      { Pathfinder.net_id = 2; pins = [ vec 0 0 0; vec 9 2 1 ] };
    ]
  in
  let r = Pathfinder.route_all g Pathfinder.default_config nets in
  check Alcotest.bool "resolved" true r.Pathfinder.success;
  check Alcotest.(list string) "valid" [] (Pathfinder.validate g r nets)

let test_pathfinder_single_pin_net () =
  let g = grid10 () in
  let nets = [ { Pathfinder.net_id = 0; pins = [ vec 3 3 3 ] } ] in
  let r = Pathfinder.route_all g Pathfinder.default_config nets in
  check Alcotest.bool "success" true r.Pathfinder.success

let test_pathfinder_unroutable () =
  let g = grid10 () in
  (* wall isolating the target completely *)
  for y = 0 to 9 do
    for z = 0 to 9 do
      Grid.set_obstacle g (vec 5 y z)
    done
  done;
  let nets = [ { Pathfinder.net_id = 7; pins = [ vec 0 0 0; vec 9 0 0 ] } ] in
  let r = Pathfinder.route_all g Pathfinder.default_config nets in
  check Alcotest.bool "failure reported" false r.Pathfinder.success;
  check Alcotest.(list int) "unrouted id" [ 7 ] r.Pathfinder.unrouted

let prop_pathfinder_random_nets_valid =
  QCheck.Test.make ~name:"pathfinder routes random nets validly" ~count:15
    (QCheck.int_range 1 1000)
    (fun seed ->
      let rng = Rng.create seed in
      let g = Grid.create (Box3.make (vec 0 0 0) (vec 11 11 3)) in
      let random_pin () = vec (Rng.int rng 12) (Rng.int rng 12) (Rng.int rng 4) in
      let nets =
        List.init 6 (fun i ->
            {
              Pathfinder.net_id = i;
              pins = List.init (2 + Rng.int rng 3) (fun _ -> random_pin ());
            })
      in
      List.iter
        (fun (n : Pathfinder.net) -> List.iter (Grid.set_shared g) n.Pathfinder.pins)
        nets;
      let r = Pathfinder.route_all g Pathfinder.default_config nets in
      r.Pathfinder.success && Pathfinder.validate g r nets = [])

let suites =
  [
    ( "route.grid",
      [
        Alcotest.test_case "usage/history" `Quick test_grid_usage_history;
        Alcotest.test_case "negative usage rejected" `Quick
          test_grid_negative_usage_rejected;
        Alcotest.test_case "obstacles" `Quick test_grid_obstacles;
        Alcotest.test_case "shared cells" `Quick test_grid_shared;
        Alcotest.test_case "overused" `Quick test_grid_overused;
        Alcotest.test_case "die cost" `Quick test_grid_die_cost;
      ] );
    ( "route.astar",
      [
        Alcotest.test_case "straight line" `Quick test_astar_straight_line;
        Alcotest.test_case "detours" `Quick test_astar_detours_around_wall;
        Alcotest.test_case "unreachable" `Quick test_astar_unreachable;
        Alcotest.test_case "respects region" `Quick test_astar_respects_region;
        Alcotest.test_case "pins exempt" `Quick test_astar_source_target_exempt;
        Alcotest.test_case "multi-source" `Quick test_astar_multi_source;
        qtest prop_astar_optimal_vs_dijkstra;
      ] );
    ( "route.pathfinder",
      [
        Alcotest.test_case "simple net" `Quick test_pathfinder_simple_net;
        Alcotest.test_case "negotiates" `Quick test_pathfinder_negotiates_conflict;
        Alcotest.test_case "single pin" `Quick test_pathfinder_single_pin_net;
        Alcotest.test_case "unroutable" `Quick test_pathfinder_unroutable;
        qtest prop_pathfinder_random_nets_valid;
      ] );
  ]
