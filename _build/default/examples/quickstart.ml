(* Quickstart: the paper's running example.

   Takes the 3-CNOT circuit of Fig. 1, walks it through every stage of
   the flow, and reports the volume at each compression level — the
   measured counterpart of the paper's 54 -> 32 -> 18 -> 6 sequence.

   Run with:  dune exec examples/quickstart.exe *)

open Tqec_compress
module Icm = Tqec_icm.Icm
module Pd_graph = Tqec_pdgraph.Pd_graph

let () =
  let circuit = Tqec_circuit.Suite.three_cnot_example in
  Format.printf "Input circuit:@.%a@.@." Tqec_circuit.Circuit.pp circuit;

  (* Stage 1: preprocess to ICM. *)
  let icm = Tqec_icm.Decompose.run circuit in
  Format.printf "ICM: %a@.@." Icm.pp_stats (Icm.stats icm);

  (* Canonical geometric description. *)
  let geometry, _info = Tqec_geom.Canonical.build icm in
  Format.printf "Canonical description: %s@."
    (Tqec_geom.Render.summary geometry);
  Format.printf "%s@." (Tqec_geom.Render.layers geometry);

  (* Stage 2: the PD graph (Fig. 6). *)
  let graph = Pd_graph.of_icm icm in
  Format.printf "%a@.@." Pd_graph.pp graph;

  (* Stage 3: I-shaped simplification (Fig. 10). *)
  let merges = Tqec_pdgraph.Ishape.run graph in
  Format.printf "I-shaped simplification: %d merges@." (List.length merges);
  Format.printf "%a@.@." Pd_graph.pp graph;

  (* Stages 4-7 run inside the pipeline; compare all variants. *)
  let volumes =
    List.map
      (fun (name, variant, paper) ->
        let r =
          Pipeline.run_icm
            ~config:
              { Pipeline.default_config with variant;
                effort = Tqec_place.Placer.Normal }
            icm
        in
        (name, r.Pipeline.volume, paper))
      [
        ("topological deformation", Pipeline.Modular_only, 32);
        ("dual-only bridging [10]", Pipeline.Dual_only, 18);
        ("primal+dual bridging (ours)", Pipeline.Full, 6);
      ]
  in
  let volumes =
    ("canonical", Baselines.canonical_volume icm, 54) :: volumes
  in
  print_string (Report.fig1 volumes);
  print_newline ();
  Format.printf
    "The measured sequence decreases monotonically, like the paper's;@.";
  Format.printf
    "absolute values differ at this tiny scale because every placed@.";
  Format.printf
    "module pays the one-unit separation margin that the paper's@.";
  Format.printf "hand-drawn minimal description avoids.@."
