(* Compressing a symmetric-function oracle.

   Builds a threshold oracle (fires when at least k of n inputs are 1 —
   the sym6_145-style symmetric benchmark family) from multi-control
   Toffoli gates, exercising the MCT lowering path, and sweeps the
   placement effort levels to show the quality/runtime trade-off of the
   SA engine.

   Run with:  dune exec examples/oracle_compression.exe [n] [k] *)

open Tqec_circuit
open Tqec_compress

(* One MCT per input subset of size k: fires iff >= k inputs set (each
   subset of exactly k ones flips the target; inclusion-exclusion on a
   one-hot threshold ancilla is overkill here — the point is the gate
   mix, matching how RevLib's symmetric benchmarks look after ESOP
   synthesis). *)
let threshold_oracle n k =
  let rec subsets i size =
    if size = 0 then [ [] ]
    else if i >= n then []
    else
      List.map (fun s -> i :: s) (subsets (i + 1) (size - 1))
      @ subsets (i + 1) size
  in
  let target = n in
  let gates =
    List.map
      (fun controls ->
        match controls with
        | [ q ] -> Gate.Cnot { control = q; target }
        | [ a; b ] -> Gate.Toffoli { c1 = a; c2 = b; target }
        | controls -> Gate.Mct { controls; target })
      (subsets 0 k)
  in
  Circuit.make ~name:(Printf.sprintf "threshold-%d-of-%d" k n)
    ~n_qubits:(n + 1) gates

let () =
  let n = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 5 in
  let k = if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 2 in
  let oracle = threshold_oracle n k in
  Format.printf "oracle %s: %d gates on %d wires@." oracle.Circuit.name
    (Circuit.n_gates oracle) oracle.Circuit.n_qubits;

  (* Lower MCTs; this may add ancilla wires. *)
  let lowered = Mct.lower oracle in
  Format.printf "after MCT lowering: %d wires, %d Toffoli, %d CNOT@."
    lowered.Circuit.n_qubits
    (Circuit.count_toffoli lowered)
    (Circuit.count_cnots lowered);
  let icm = Tqec_icm.Decompose.run (Clifford_t.lower lowered) in
  Format.printf "ICM: %a@.@." Tqec_icm.Icm.pp_stats (Tqec_icm.Icm.stats icm);

  (* Effort sweep. *)
  Format.printf "effort sweep (ours, seed 42):@.";
  let t =
    Tqec_util.Pretty.create [ "effort"; "volume"; "nodes"; "runtime (s)" ]
  in
  List.iter
    (fun (name, effort) ->
      let r =
        Pipeline.run_icm
          ~config:{ Pipeline.default_config with effort }
          icm
      in
      Tqec_util.Pretty.add_row t
        [
          name;
          Tqec_util.Pretty.int_with_commas r.Pipeline.volume;
          string_of_int r.Pipeline.stages.Pipeline.st_nodes;
          Tqec_util.Pretty.float2 r.Pipeline.elapsed;
        ])
    [
      ("quick", Tqec_place.Placer.Quick);
      ("normal", Tqec_place.Placer.Normal);
    ];
  Tqec_util.Pretty.print t;
  Format.printf "@.canonical volume for reference: %s@."
    (Tqec_util.Pretty.int_with_commas (Baselines.canonical_volume icm))
