(* Compressing a reversible ripple-carry adder.

   Builds an n-bit in-place ripple-carry adder (the Cuccaro MAJ/UMA
   construction: Toffoli and CNOT gates only) with the public circuit
   API, lowers it to Clifford+T and ICM, and compares the space-time
   volume of the canonical form, the Lin et al. [11] baselines, Hsu et
   al.'s dual-only bridging [10] and the paper's primal+dual bridging —
   the add16_174-style workload from the paper's evaluation.

   Run with:  dune exec examples/adder_compression.exe [bits] *)

open Tqec_circuit
open Tqec_compress

(* MAJ gate: (c, b, a) -> computes carry in place. *)
let maj c b a =
  [
    Gate.Cnot { control = a; target = b };
    Gate.Cnot { control = a; target = c };
    Gate.Toffoli { c1 = c; c2 = b; target = a };
  ]

(* UMA gate: undoes MAJ and produces the sum. *)
let uma c b a =
  [
    Gate.Toffoli { c1 = c; c2 = b; target = a };
    Gate.Cnot { control = a; target = c };
    Gate.Cnot { control = c; target = b };
  ]

(* In-place adder: b <- a + b. Wires: carry-in, then per bit (a_i, b_i),
   then carry-out. *)
let ripple_carry_adder bits =
  let cin = 0 in
  let a i = 1 + (2 * i) in
  let b i = 2 + (2 * i) in
  let cout = 1 + (2 * bits) in
  let majs =
    List.concat
      (List.init bits (fun i ->
           let c = if i = 0 then cin else a (i - 1) in
           maj c (b i) (a i)))
  in
  let carry = [ Gate.Cnot { control = a (bits - 1); target = cout } ] in
  let umas =
    List.concat
      (List.init bits (fun j ->
           let i = bits - 1 - j in
           let c = if i = 0 then cin else a (i - 1) in
           uma c (b i) (a i)))
  in
  Circuit.make
    ~name:(Printf.sprintf "rc-adder-%d" bits)
    ~n_qubits:(cout + 1)
    (majs @ carry @ umas)

let () =
  let bits =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 4
  in
  let circuit = ripple_carry_adder bits in
  Format.printf "%d-bit ripple-carry adder: %d qubits, %d Toffoli, %d CNOT@."
    bits circuit.Circuit.n_qubits
    (Circuit.count_toffoli circuit)
    (Circuit.count_cnots circuit);
  let icm = Tqec_icm.Decompose.run (Clifford_t.decompose circuit) in
  Format.printf "after decomposition: %a@.@." Tqec_icm.Icm.pp_stats
    (Tqec_icm.Icm.stats icm);

  let canonical = Baselines.canonical_volume icm in
  let lin1 = (Baselines.lin_1d icm).Baselines.l_volume in
  let lin2 = (Baselines.lin_2d icm).Baselines.l_volume in
  let run variant =
    Pipeline.run_icm
      ~config:
        { Pipeline.default_config with variant;
          effort = Tqec_place.Placer.Normal }
      icm
  in
  let dual = run Pipeline.Dual_only in
  let ours = run Pipeline.Full in
  let t = Tqec_util.Pretty.create [ "configuration"; "volume"; "vs ours" ] in
  let row name v =
    Tqec_util.Pretty.add_row t
      [
        name;
        Tqec_util.Pretty.int_with_commas v;
        Tqec_util.Pretty.float2
          (float_of_int v /. float_of_int ours.Pipeline.volume);
      ]
  in
  row "canonical" canonical;
  row "Lin [11] 1D" lin1;
  row "Lin [11] 2D" lin2;
  row "dual-only bridging [10]" dual.Pipeline.volume;
  row "primal+dual bridging (ours)" ours.Pipeline.volume;
  Tqec_util.Pretty.print t;
  Format.printf
    "@.B*-tree nodes: %d (dual-only) vs %d (ours) — primal bridging@."
    dual.Pipeline.stages.Pipeline.st_nodes ours.Pipeline.stages.Pipeline.st_nodes;
  Format.printf "merged %d modules into chains.@."
    (dual.Pipeline.stages.Pipeline.st_nodes
    - ours.Pipeline.stages.Pipeline.st_nodes);
  match Pipeline.check ours with
  | [] -> Format.printf "all structural checks passed.@."
  | issues ->
      List.iter (Format.printf "check: %s@.") issues;
      exit 1
