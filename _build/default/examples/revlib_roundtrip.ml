(* RevLib interchange: write a benchmark to .real, read it back, and
   verify the decomposition statistics survive the round trip.

   Also demonstrates loading an external .real file into the flow (pass
   a path as the first argument).

   Run with:  dune exec examples/revlib_roundtrip.exe [file.real] *)

open Tqec_circuit

let stats_of circuit =
  Tqec_icm.Icm.stats (Tqec_icm.Decompose.run (Clifford_t.decompose circuit))

let () =
  match if Array.length Sys.argv > 1 then Some Sys.argv.(1) else None with
  | Some path ->
      let circuit = Revlib.parse_file path in
      Format.printf "%s: %d wires, %d gates@." circuit.Circuit.name
        circuit.Circuit.n_qubits (Circuit.n_gates circuit);
      Format.printf "ICM: %a@." Tqec_icm.Icm.pp_stats (stats_of circuit)
  | None ->
      let entry =
        match Suite.find "4gt10-v1_81" with
        | Some e -> e
        | None -> failwith "suite entry missing"
      in
      let original = Suite.circuit entry in
      let path = Filename.temp_file "tqec" ".real" in
      Revlib.write_file path original;
      Format.printf "wrote %s (%d bytes)@." path
        (let st = open_in path in
         let n = in_channel_length st in
         close_in st;
         n);
      let reread = Revlib.parse_file path in
      Sys.remove path;
      assert (Circuit.equal original reread);
      Format.printf "round trip exact: %d gates preserved@."
        (Circuit.n_gates reread);
      let s = stats_of reread in
      Format.printf "ICM after round trip: %a@." Tqec_icm.Icm.pp_stats s;
      let paper = entry.Suite.paper in
      assert (s.Tqec_icm.Icm.s_qubits = paper.Suite.p_qubits);
      assert (s.Tqec_icm.Icm.s_cnots = paper.Suite.p_cnots);
      Format.printf "matches the paper's Table 1 row exactly.@."
