examples/revlib_roundtrip.ml: Array Circuit Clifford_t Filename Format Revlib Suite Sys Tqec_circuit Tqec_icm
