examples/adder_compression.mli:
