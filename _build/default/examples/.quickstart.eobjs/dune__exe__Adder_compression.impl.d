examples/adder_compression.ml: Array Baselines Circuit Clifford_t Format Gate List Pipeline Printf Sys Tqec_circuit Tqec_compress Tqec_icm Tqec_place Tqec_util
