examples/quickstart.mli:
