examples/quickstart.ml: Baselines Format List Pipeline Report Tqec_circuit Tqec_compress Tqec_geom Tqec_icm Tqec_pdgraph Tqec_place
