examples/oracle_compression.mli:
