examples/revlib_roundtrip.mli:
