type paper_row = {
  p_qubits : int;
  p_cnots : int;
  p_y : int;
  p_a : int;
  p_modules : int;
  p_nodes : int;
  p_canonical : int;
  p_lin1d : int;
  p_lin2d : int;
  p_hsu : int;
  p_ours : int;
  p_hsu_runtime : float;
  p_ours_runtime : float;
}

type entry = { spec : Generator.spec; paper : paper_row }

let base_seed = 2022

(* One row of Tables 1-3; the reversible-level composition is recovered
   from the published statistics via the calibration identities in the
   interface. *)
let entry ?(unused = 0) idx name ~qubits ~cnots ~y ~a ~modules ~nodes
    ~canonical ~lin1d ~lin2d ~hsu ~hsu_rt ~ours ~ours_rt =
  assert (a mod 7 = 0);
  assert (y = 2 * a);
  let n_wires = qubits - (6 * a) in
  let n_toffoli = a / 7 in
  let n_cnot = cnots - (48 * n_toffoli) in
  assert (n_wires >= 3 && n_cnot >= 0);
  {
    spec =
      {
        Generator.name;
        n_wires;
        n_toffoli;
        n_cnot;
        n_not = n_wires / 2;
        n_unused = unused;
        seed = base_seed + idx;
      };
    paper =
      {
        p_qubits = qubits;
        p_cnots = cnots;
        p_y = y;
        p_a = a;
        p_modules = modules;
        p_nodes = nodes;
        p_canonical = canonical;
        p_lin1d = lin1d;
        p_lin2d = lin2d;
        p_hsu = hsu;
        p_ours = ours;
        p_hsu_runtime = hsu_rt;
        p_ours_runtime = ours_rt;
      };
  }

let all =
  [
    entry 0 "4gt10-v1_81" ~qubits:131 ~cnots:168 ~y:42 ~a:21 ~modules:362
      ~nodes:18 ~canonical:136836 ~lin1d:98322 ~lin2d:91116 ~hsu:25520
      ~hsu_rt:15. ~ours:20880 ~ours_rt:16.;
    entry 1 "4gt4-v0_73" ~qubits:257 ~cnots:341 ~y:84 ~a:42 ~modules:724
      ~nodes:360 ~canonical:535398 ~lin1d:361152 ~lin2d:327816 ~hsu:58696
      ~hsu_rt:26. ~ours:45560 ~ours_rt:184.;
    entry 2 "rd84_142" ~qubits:897 ~cnots:1162 ~y:294 ~a:147 ~modules:2500
      ~nodes:1242 ~canonical:6287400 ~lin1d:2805246 ~lin2d:2744316
      ~hsu:451440 ~hsu_rt:262. ~ours:190773 ~ours_rt:654.;
    entry 3 "hwb5_53" ~qubits:1307 ~cnots:1729 ~y:434 ~a:217 ~modules:3687
      ~nodes:1853 ~canonical:13608294 ~lin1d:9114828 ~lin2d:8203548
      ~hsu:1341704 ~hsu_rt:447. ~ours:465800 ~ours_rt:1295.;
    entry ~unused:1 4 "add16_174" ~qubits:1394 ~cnots:1792 ~y:448 ~a:224 ~modules:3857
      ~nodes:1904 ~canonical:15028608 ~lin1d:6449532 ~lin2d:6173928
      ~hsu:1069362 ~hsu_rt:590. ~ours:519350 ~ours_rt:941.;
    entry 5 "sym6_145" ~qubits:1519 ~cnots:1980 ~y:504 ~a:252 ~modules:4255
      ~nodes:2148 ~canonical:18103176 ~lin1d:10720836 ~lin2d:9852336
      ~hsu:1971840 ~hsu_rt:793. ~ours:585060 ~ours_rt:1538.;
    entry ~unused:1 6 "cycle17_3_112" ~qubits:1911 ~cnots:2478 ~y:630 ~a:315
      ~modules:5321 ~nodes:2744 ~canonical:28469700 ~lin1d:19082448
      ~lin2d:16843884 ~hsu:2354100 ~hsu_rt:1402. ~ours:1327656
      ~ours_rt:1666.;
    entry 7 "ham15_107" ~qubits:3753 ~cnots:4938 ~y:1246 ~a:623
      ~modules:10560 ~nodes:5301 ~canonical:111335928 ~lin1d:69294822
      ~lin2d:63017484 ~hsu:7331454 ~hsu_rt:4901. ~ours:3650985
      ~ours_rt:4541.;
  ]

let find name =
  List.find_opt (fun e -> e.spec.Generator.name = name) all

let names = List.map (fun e -> e.spec.Generator.name) all

let circuit e = Generator.generate e.spec

let scaled ?(factor = 1) e =
  if factor <= 1 then circuit e
  else
    let spec = e.spec in
    let spec =
      {
        spec with
        Generator.name = Printf.sprintf "%s@1/%d" spec.Generator.name factor;
        n_toffoli = max 1 (spec.Generator.n_toffoli / factor);
        n_cnot = max 2 (spec.Generator.n_cnot / factor);
        n_not = spec.Generator.n_not / factor;
        n_unused = 0;
        n_wires = max 3 (spec.Generator.n_wires);
      }
    in
    Generator.generate spec

let three_cnot_example =
  Circuit.make ~name:"three-cnot" ~n_qubits:3
    [
      Gate.Cnot { control = 0; target = 1 };
      Gate.Cnot { control = 2; target = 1 };
      Gate.Cnot { control = 1; target = 0 };
    ]
