lib/circuit/clifford_t.mli: Circuit
