lib/circuit/optimize.ml: Array Circuit Gate List Tqec_util
