lib/circuit/generator.mli: Circuit
