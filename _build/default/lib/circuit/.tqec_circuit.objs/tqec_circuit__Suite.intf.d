lib/circuit/suite.mli: Circuit Generator
