lib/circuit/mct.mli: Circuit
