lib/circuit/sim.ml: Array Circuit Gate List Tqec_util
