lib/circuit/revlib.ml: Buffer Circuit Filename Gate List Printf String
