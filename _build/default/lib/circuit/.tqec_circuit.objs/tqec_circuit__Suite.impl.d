lib/circuit/suite.ml: Circuit Gate Generator List Printf
