lib/circuit/sim.mli: Circuit
