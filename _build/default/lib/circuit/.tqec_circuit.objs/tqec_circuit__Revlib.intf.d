lib/circuit/revlib.mli: Circuit
