lib/circuit/generator.ml: Array Circuit Gate List Printf Tqec_util
