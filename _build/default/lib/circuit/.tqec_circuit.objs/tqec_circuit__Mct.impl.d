lib/circuit/mct.ml: Circuit Gate List
