lib/circuit/clifford_t.ml: Circuit Gate List Mct Printf
