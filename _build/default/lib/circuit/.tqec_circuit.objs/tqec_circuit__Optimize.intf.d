lib/circuit/optimize.mli: Circuit Gate
