(** Quantum circuits: a wire count plus a time-ordered gate list. *)

type t = { name : string; n_qubits : int; gates : Gate.t list }

(** [make ~name ~n_qubits gates] validates that every gate is well formed
    and fits in [n_qubits] wires. @raise Invalid_argument otherwise. *)
val make : name:string -> n_qubits:int -> Gate.t list -> t

val n_gates : t -> int

(** [count p c] counts gates satisfying [p]. *)
val count : (Gate.t -> bool) -> t -> int

val count_cnots : t -> int

val count_t : t -> int

val count_toffoli : t -> int

(** [is_clifford_t c] is true when every gate is in the Clifford+T set. *)
val is_clifford_t : t -> bool

(** [append a b] concatenates gate lists; wire counts are maxed.  The
    result keeps [a]'s name. *)
val append : t -> t -> t

(** [depth c] is the circuit depth under the usual as-soon-as-possible
    schedule (gates sharing a wire are serialized). *)
val depth : t -> int

(** [gate_layers c] is the ASAP layering used by [depth]: each inner list
    is one parallel time step, in order. *)
val gate_layers : t -> Gate.t list list

(** [wire_usage c] maps each wire to the number of gates touching it. *)
val wire_usage : t -> int array

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
