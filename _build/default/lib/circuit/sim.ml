let is_reversible (c : Circuit.t) =
  List.for_all
    (fun g ->
      match (g : Gate.t) with
      | X _ | Cnot _ | Swap _ | Toffoli _ | Fredkin _ | Mct _ -> true
      | Z _ | H _ | S _ | Sdg _ | T _ | Tdg _ -> false)
    c.Circuit.gates

let apply_gate state (g : Gate.t) =
  match g with
  | X q -> state.(q) <- not state.(q)
  | Cnot { control; target } ->
      if state.(control) then state.(target) <- not state.(target)
  | Swap (a, b) ->
      let tmp = state.(a) in
      state.(a) <- state.(b);
      state.(b) <- tmp
  | Toffoli { c1; c2; target } ->
      if state.(c1) && state.(c2) then state.(target) <- not state.(target)
  | Fredkin { control; t1; t2 } ->
      if state.(control) then begin
        let tmp = state.(t1) in
        state.(t1) <- state.(t2);
        state.(t2) <- tmp
      end
  | Mct { controls; target } ->
      if List.for_all (fun q -> state.(q)) controls then
        state.(target) <- not state.(target)
  | Z _ | H _ | S _ | Sdg _ | T _ | Tdg _ ->
      invalid_arg "Sim: non-reversible gate"

let apply (c : Circuit.t) input =
  if Array.length input <> c.Circuit.n_qubits then
    invalid_arg "Sim.apply: width mismatch";
  let state = Array.copy input in
  List.iter (apply_gate state) c.Circuit.gates;
  state

let apply_int (c : Circuit.t) x =
  let n = c.Circuit.n_qubits in
  if n > 62 then invalid_arg "Sim.apply_int: too many wires";
  let input = Array.init n (fun i -> (x lsr i) land 1 = 1) in
  let output = apply c input in
  Array.to_list output
  |> List.mapi (fun i b -> if b then 1 lsl i else 0)
  |> List.fold_left ( lor ) 0

let truth_table (c : Circuit.t) =
  if c.Circuit.n_qubits > 16 then invalid_arg "Sim.truth_table: too wide";
  Array.init (1 lsl c.Circuit.n_qubits) (fun x -> apply_int c x)

let equivalent (a : Circuit.t) (b : Circuit.t) =
  let narrow, wide = if a.Circuit.n_qubits <= b.Circuit.n_qubits then (a, b) else (b, a) in
  let shared = narrow.Circuit.n_qubits in
  let check x =
    (* extra wires of the wider circuit start clean and must end clean *)
    let out_w = apply_int wide x in
    let out_n = apply_int narrow x in
    out_w = out_n
  in
  if shared <= 16 then
    let all = List.init (1 lsl shared) (fun x -> x) in
    List.for_all check all
  else begin
    let rng = Tqec_util.Rng.create 0x5eed in
    let ok = ref true in
    for _ = 1 to 4096 do
      if not (check (Tqec_util.Rng.int rng (1 lsl min shared 60))) then
        ok := false
    done;
    !ok
  end
