(** Reader/writer for the RevLib [.real] circuit format (the format of the
    paper's benchmark suite).

    The supported subset covers the constructs appearing in reversible
    benchmark circuits: [.version], [.numvars], [.variables], [.inputs],
    [.outputs], [.constants], [.garbage], [.begin] / [.end], comments
    ([#]), Toffoli-family gates [t1] (NOT), [t2] (CNOT), [t3] (Toffoli),
    [tN] (multi-control Toffoli) and Fredkin-family gates [f2] (SWAP),
    [f3] (controlled SWAP). *)

exception Parse_error of { line : int; message : string }

(** [parse_string ~name s] parses [.real] text.
    @raise Parse_error on malformed input. *)
val parse_string : name:string -> string -> Circuit.t

(** [parse_file path] parses a [.real] file, naming the circuit after the
    file's basename. *)
val parse_file : string -> Circuit.t

(** [to_string c] prints [c] in [.real] syntax. Only reversible gates
    (NOT / CNOT / Toffoli / MCT / SWAP / Fredkin) are printable.
    @raise Invalid_argument if the circuit contains other gates. *)
val to_string : Circuit.t -> string

val write_file : string -> Circuit.t -> unit
