(** Peephole circuit optimization.

    A single left-to-right pass with cascading cancellation: each gate is
    checked against the most recent surviving gate on its wires and the
    pair is cancelled (self-inverse gates, [S]/[S†], [T]/[T†], identical
    CNOT/SWAP/Toffoli) or merged ([T·T = S], [S·S = Z], ...), with the
    merged gate re-checked against its own predecessor.  Used as an
    optional preprocess before ICM decomposition: cancelling a [T] pair
    removes a whole six-line gadget from the TQEC circuit.

    The pass only pairs gates that are adjacent on {e every} wire they
    touch, so it never reorders non-commuting operations. *)

(** [run c] is the optimized circuit (same wire count). *)
val run : Circuit.t -> Circuit.t

(** [cancelled c] is [n_gates c - n_gates (run c)]. *)
val cancelled : Circuit.t -> int

(** [pair_rule a b] is the rule applied when [b] immediately follows [a]
    on all shared wires: [`Cancel], [`Replace g], or [`Keep] — exposed
    for tests. *)
val pair_rule : Gate.t -> Gate.t -> [ `Cancel | `Replace of Gate.t | `Keep ]
