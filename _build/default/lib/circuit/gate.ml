type t =
  | X of int
  | Z of int
  | H of int
  | S of int
  | Sdg of int
  | T of int
  | Tdg of int
  | Cnot of { control : int; target : int }
  | Swap of int * int
  | Toffoli of { c1 : int; c2 : int; target : int }
  | Fredkin of { control : int; t1 : int; t2 : int }
  | Mct of { controls : int list; target : int }

let qubits = function
  | X q | Z q | H q | S q | Sdg q | T q | Tdg q -> [ q ]
  | Cnot { control; target } -> [ control; target ]
  | Swap (a, b) -> [ a; b ]
  | Toffoli { c1; c2; target } -> [ c1; c2; target ]
  | Fredkin { control; t1; t2 } -> [ control; t1; t2 ]
  | Mct { controls; target } -> controls @ [ target ]

let max_qubit g = List.fold_left max 0 (qubits g)

let is_clifford_t = function
  | X _ | Z _ | H _ | S _ | Sdg _ | T _ | Tdg _ | Cnot _ -> true
  | Swap _ | Toffoli _ | Fredkin _ | Mct _ -> false

let is_t = function T _ | Tdg _ -> true | _ -> false

let rec all_distinct = function
  | [] -> true
  | q :: qs -> (not (List.mem q qs)) && all_distinct qs

let well_formed g =
  let qs = qubits g in
  List.for_all (fun q -> q >= 0) qs
  && all_distinct qs
  && match g with Mct { controls; _ } -> List.length controls >= 3 | _ -> true

let equal a b = a = b

let pp ppf = function
  | X q -> Format.fprintf ppf "X %d" q
  | Z q -> Format.fprintf ppf "Z %d" q
  | H q -> Format.fprintf ppf "H %d" q
  | S q -> Format.fprintf ppf "S %d" q
  | Sdg q -> Format.fprintf ppf "Sdg %d" q
  | T q -> Format.fprintf ppf "T %d" q
  | Tdg q -> Format.fprintf ppf "Tdg %d" q
  | Cnot { control; target } -> Format.fprintf ppf "CNOT %d %d" control target
  | Swap (a, b) -> Format.fprintf ppf "SWAP %d %d" a b
  | Toffoli { c1; c2; target } ->
      Format.fprintf ppf "TOF %d %d %d" c1 c2 target
  | Fredkin { control; t1; t2 } ->
      Format.fprintf ppf "FRED %d %d %d" control t1 t2
  | Mct { controls; target } ->
      Format.fprintf ppf "MCT %a -> %d"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ' ')
           Format.pp_print_int)
        controls target

let to_string g = Format.asprintf "%a" pp g
