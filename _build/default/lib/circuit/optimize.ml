let pair_rule (a : Gate.t) (b : Gate.t) =
  match (a, b) with
  (* self-inverse single-qubit gates *)
  | Gate.X p, Gate.X q when p = q -> `Cancel
  | Gate.Z p, Gate.Z q when p = q -> `Cancel
  | Gate.H p, Gate.H q when p = q -> `Cancel
  (* phase-gate inverses *)
  | Gate.S p, Gate.Sdg q | Gate.Sdg p, Gate.S q when p = q -> `Cancel
  | Gate.T p, Gate.Tdg q | Gate.Tdg p, Gate.T q when p = q -> `Cancel
  (* phase-gate merges *)
  | Gate.T p, Gate.T q when p = q -> `Replace (Gate.S p)
  | Gate.Tdg p, Gate.Tdg q when p = q -> `Replace (Gate.Sdg p)
  | Gate.S p, Gate.S q | Gate.Sdg p, Gate.Sdg q when p = q ->
      `Replace (Gate.Z p)
  | Gate.S p, Gate.Z q | Gate.Z p, Gate.S q when p = q ->
      `Replace (Gate.Sdg p)
  | Gate.Sdg p, Gate.Z q | Gate.Z p, Gate.Sdg q when p = q ->
      `Replace (Gate.S p)
  (* identical self-inverse multi-qubit gates *)
  | ( Gate.Cnot { control = ac; target = at },
      Gate.Cnot { control = bc; target = bt } )
    when ac = bc && at = bt ->
      `Cancel
  | Gate.Swap (a1, a2), Gate.Swap (b1, b2)
    when (a1, a2) = (b1, b2) || (a1, a2) = (b2, b1) ->
      `Cancel
  | ( Gate.Toffoli { c1 = a1; c2 = a2; target = at },
      Gate.Toffoli { c1 = b1; c2 = b2; target = bt } )
    when at = bt && ((a1, a2) = (b1, b2) || (a1, a2) = (b2, b1)) ->
      `Cancel
  | ( Gate.Fredkin { control = ac; t1 = a1; t2 = a2 },
      Gate.Fredkin { control = bc; t1 = b1; t2 = b2 } )
    when ac = bc && ((a1, a2) = (b1, b2) || (a1, a2) = (b2, b1)) ->
      `Cancel
  | _ -> `Keep

(* Output gates as a growable array with tombstones; last.(w) holds the
   index of the latest surviving gate touching wire w. *)
let run (c : Circuit.t) =
  let out = Tqec_util.Veca.create () in
  let alive = Tqec_util.Veca.create () in
  let last = Array.make c.Circuit.n_qubits (-1) in
  let kill i =
    Tqec_util.Veca.set alive i false;
    (* wires that pointed at i must fall back; a full back-scan keeps the
       code simple and the pass is already linear in practice *)
    Array.iteri
      (fun w l ->
        if l = i then begin
          let rec back j =
            if j < 0 then -1
            else if
              Tqec_util.Veca.get alive j
              && List.mem w (Gate.qubits (Tqec_util.Veca.get out j))
            then j
            else back (j - 1)
          in
          last.(w) <- back (i - 1)
        end)
      last
  in
  let emit g =
    let i = Tqec_util.Veca.push out g in
    ignore (Tqec_util.Veca.push alive true);
    List.iter (fun w -> last.(w) <- i) (Gate.qubits g);
    i
  in
  (* The previous gate adjacent to g on every wire, if unique. *)
  let adjacent_pred g =
    match Gate.qubits g with
    | [] -> None
    | w :: ws ->
        let candidate = last.(w) in
        if candidate = -1 then None
        else if
          List.for_all (fun w' -> last.(w') = candidate) ws
          && List.for_all
               (fun w' ->
                 List.mem w'
                   (Gate.qubits (Tqec_util.Veca.get out candidate))
                 = List.mem w' (Gate.qubits g))
               (Gate.qubits (Tqec_util.Veca.get out candidate))
        then Some candidate
        else None
  in
  let rec insert g =
    match adjacent_pred g with
    | None -> ignore (emit g)
    | Some i -> (
        match pair_rule (Tqec_util.Veca.get out i) g with
        | `Cancel -> kill i
        | `Replace g' ->
            kill i;
            insert g'
        | `Keep -> ignore (emit g))
  in
  List.iter insert c.Circuit.gates;
  let gates =
    List.filteri (fun i _ -> Tqec_util.Veca.get alive i)
      (Tqec_util.Veca.to_list out)
  in
  Circuit.make ~name:c.Circuit.name ~n_qubits:c.Circuit.n_qubits gates

let cancelled c = Circuit.n_gates c - Circuit.n_gates (run c)
