(** The paper's eight-benchmark evaluation suite (RevLib names), with the
    published reference numbers from Tables 1-3 for paper-vs-measured
    reporting.

    Generator calibration: the paper's Table 1 satisfies, for every row,
    - [#|A>] = 7 * #Toffoli (7-T Toffoli decomposition),
    - [#|Y>] = 2 * #|A>   (two |Y> ancillae per T gadget),
    - [#Qubits] = wires + 6 * #|A>  (six ancilla lines per T gadget),
    - [#CNOTs] = reversible-level CNOTs + 6 per Toffoli + 6 per T gadget,
    so the reversible-level composition of each benchmark is recovered
    exactly from the published statistics. *)

type paper_row = {
  p_qubits : int;
  p_cnots : int;
  p_y : int;
  p_a : int;
  p_modules : int;
  p_nodes : int;
  p_canonical : int;  (** Table 2 canonical volume *)
  p_lin1d : int;  (** Table 2 Lin [11] 1D volume *)
  p_lin2d : int;  (** Table 2 Lin [11] 2D volume *)
  p_hsu : int;  (** Table 3 Hsu [10] volume *)
  p_ours : int;  (** Table 3 the paper's volume *)
  p_hsu_runtime : float;  (** seconds *)
  p_ours_runtime : float;
}

type entry = { spec : Generator.spec; paper : paper_row }

(** All eight benchmarks, in the paper's row order. *)
val all : entry list

(** [find name] looks an entry up by benchmark name. *)
val find : string -> entry option

(** [names] in table order. *)
val names : string list

(** [circuit entry] generates the reversible-level circuit. *)
val circuit : entry -> Circuit.t

(** [scaled ?factor entry] generates a linearly scaled-down instance (gate
    and wire counts divided by [factor], at least the minimum legal size),
    used by the quick benchmark mode. [factor = 1] is the full circuit. *)
val scaled : ?factor:int -> entry -> Circuit.t

(** The paper's 3-CNOT running example (Fig. 1): three CNOTs on three
    qubits, control/target pattern of Fig. 6. *)
val three_cnot_example : Circuit.t
