(** Classical simulation of reversible circuits.

    Gates from the reversible set (NOT / CNOT / SWAP / Toffoli / Fredkin /
    MCT) act as permutations of computational basis states; simulating
    them on bit vectors gives a semantic oracle for the lowering and
    optimization passes: {!Mct.lower} must preserve the computed function
    (ancillae returned clean), {!Optimize.run} must preserve it exactly,
    and {!Revlib} round trips must too. *)

(** [is_reversible c] is true when every gate is classically simulable. *)
val is_reversible : Circuit.t -> bool

(** [apply c input] runs the circuit on a bit vector of width
    [c.n_qubits].
    @raise Invalid_argument on width mismatch or non-reversible gates. *)
val apply : Circuit.t -> bool array -> bool array

(** [apply_int c x] runs on the little-endian encoding of [x] (wire 0 is
    the least significant bit); the result is re-encoded the same way.
    Only usable when [c.n_qubits <= 62]. *)
val apply_int : Circuit.t -> int -> int

(** [truth_table c] is the full permutation for circuits of at most 16
    wires, as an array indexed by input encoding. *)
val truth_table : Circuit.t -> int array

(** [equivalent a b] compares two circuits' permutations on their common
    width, treating extra wires of the wider circuit as clean ancillae
    that must be returned to zero (the V-chain contract of {!Mct.lower}).
    Exhaustive up to 16 shared wires; sampled beyond. *)
val equivalent : Circuit.t -> Circuit.t -> bool
