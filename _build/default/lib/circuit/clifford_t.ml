let toffoli_t_count = 7
let toffoli_cnot_count = 6

(* Standard Toffoli network: H t; CX b t; Tdg t; CX a t; T t; CX b t;
   Tdg t; CX a t; T b; T t; H t; CX a b; T a; Tdg b; CX a b. *)
let toffoli_network a b t =
  [
    Gate.H t;
    Gate.Cnot { control = b; target = t };
    Gate.Tdg t;
    Gate.Cnot { control = a; target = t };
    Gate.T t;
    Gate.Cnot { control = b; target = t };
    Gate.Tdg t;
    Gate.Cnot { control = a; target = t };
    Gate.T b;
    Gate.T t;
    Gate.H t;
    Gate.Cnot { control = a; target = b };
    Gate.T a;
    Gate.Tdg b;
    Gate.Cnot { control = a; target = b };
  ]

let lower (c : Circuit.t) =
  let lower_gate g =
    match (g : Gate.t) with
    | Toffoli { c1; c2; target } -> toffoli_network c1 c2 target
    | X _ | Z _ | H _ | S _ | Sdg _ | T _ | Tdg _ | Cnot _ -> [ g ]
    | Swap _ | Fredkin _ | Mct _ ->
        invalid_arg
          (Printf.sprintf "Clifford_t.lower: run Mct.lower first (%s)"
             (Gate.to_string g))
  in
  Circuit.make ~name:c.name ~n_qubits:c.n_qubits
    (List.concat_map lower_gate c.gates)

let decompose c = lower (Mct.lower c)
