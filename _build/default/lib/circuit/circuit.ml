type t = { name : string; n_qubits : int; gates : Gate.t list }

let make ~name ~n_qubits gates =
  if n_qubits <= 0 then invalid_arg "Circuit.make: n_qubits must be positive";
  List.iter
    (fun g ->
      if not (Gate.well_formed g) then
        invalid_arg
          (Printf.sprintf "Circuit.make: malformed gate %s" (Gate.to_string g));
      if Gate.max_qubit g >= n_qubits then
        invalid_arg
          (Printf.sprintf "Circuit.make: gate %s exceeds %d wires"
             (Gate.to_string g) n_qubits))
    gates;
  { name; n_qubits; gates }

let n_gates c = List.length c.gates
let count p c = List.length (List.filter p c.gates)
let count_cnots = count (function Gate.Cnot _ -> true | _ -> false)
let count_t = count Gate.is_t
let count_toffoli = count (function Gate.Toffoli _ -> true | _ -> false)
let is_clifford_t c = List.for_all Gate.is_clifford_t c.gates

let append a b =
  {
    name = a.name;
    n_qubits = max a.n_qubits b.n_qubits;
    gates = a.gates @ b.gates;
  }

let gate_layers c =
  (* ASAP layering: a gate lands one past the latest layer using its wires. *)
  let ready = Array.make c.n_qubits 0 in
  let layers = Hashtbl.create 16 in
  let max_layer = ref (-1) in
  List.iter
    (fun g ->
      let qs = Gate.qubits g in
      let layer = List.fold_left (fun acc q -> max acc ready.(q)) 0 qs in
      List.iter (fun q -> ready.(q) <- layer + 1) qs;
      max_layer := max !max_layer layer;
      let existing = try Hashtbl.find layers layer with Not_found -> [] in
      Hashtbl.replace layers layer (g :: existing))
    c.gates;
  List.init (!max_layer + 1) (fun i ->
      List.rev (try Hashtbl.find layers i with Not_found -> []))

let depth c = List.length (gate_layers c)

let wire_usage c =
  let usage = Array.make c.n_qubits 0 in
  List.iter
    (fun g -> List.iter (fun q -> usage.(q) <- usage.(q) + 1) (Gate.qubits g))
    c.gates;
  usage

let equal a b =
  a.n_qubits = b.n_qubits && List.equal Gate.equal a.gates b.gates

let pp ppf c =
  Format.fprintf ppf "@[<v>circuit %s (%d qubits, %d gates)@,%a@]" c.name
    c.n_qubits (n_gates c)
    (Format.pp_print_list Gate.pp)
    c.gates
