(** Lowering from the {NOT, CNOT, Toffoli} basis to Clifford+T.

    Each Toffoli expands to the textbook 7-T / 6-CNOT / 2-H network
    (Nielsen & Chuang Fig. 4.9), which is the decomposition behind the
    paper's benchmark statistics: every Toffoli contributes exactly seven
    T-count (hence 7 |A> states, cf. Table 1 where #|A> is always a
    multiple of 7). *)

(** [toffoli_t_count] = 7, [toffoli_cnot_count] = 6. *)
val toffoli_t_count : int

val toffoli_cnot_count : int

(** [lower c] maps a {NOT, CNOT, Toffoli} circuit (Clifford+T gates pass
    through) to Clifford+T.
    @raise Invalid_argument if [c] still contains MCT/SWAP/Fredkin gates
    (run {!Mct.lower} first). *)
val lower : Circuit.t -> Circuit.t

(** [decompose c] is [lower (Mct.lower c)] — the full preprocess entry
    point used by the pipeline. *)
val decompose : Circuit.t -> Circuit.t
