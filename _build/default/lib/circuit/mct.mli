(** Lowering of the extended reversible gate set to the
    {NOT, CNOT, Toffoli} basis.

    Multi-control Toffoli gates are expanded with the standard V-chain
    construction using clean ancilla wires appended to the circuit (a gate
    with [k >= 3] controls costs [2*(k-2)] Toffolis on [k-2] ancillae plus
    the final Toffoli); SWAP becomes three CNOTs and Fredkin a
    CNOT-conjugated Toffoli. *)

(** [ancillae_needed c] is the number of extra wires [lower] will append. *)
val ancillae_needed : Circuit.t -> int

(** [lower c] returns an equivalent circuit over {NOT, CNOT, Toffoli} (any
    already-lowered gates, including Clifford+T gates, pass through
    untouched). Ancilla wires are appended after the original wires and
    are returned to |0> by the uncomputation half of each expansion. *)
val lower : Circuit.t -> Circuit.t
