(** Gate set of the input circuits.

    Circuits enter the flow at the reversible level (NOT / CNOT / Toffoli /
    multi-control Toffoli / SWAP / Fredkin) and are lowered by {!Mct} and
    {!Clifford_t} to the Clifford+T set ([H], [S]/[Sdg], [T]/[Tdg], [CNOT],
    [X], [Z]), the input of the ICM decomposition. *)

type t =
  | X of int
  | Z of int
  | H of int
  | S of int
  | Sdg of int
  | T of int
  | Tdg of int
  | Cnot of { control : int; target : int }
  | Swap of int * int
  | Toffoli of { c1 : int; c2 : int; target : int }
  | Fredkin of { control : int; t1 : int; t2 : int }
  | Mct of { controls : int list; target : int }
      (** Multi-control Toffoli with >= 3 controls. *)

(** [qubits g] lists the wires touched by [g], controls first, without
    duplicates. *)
val qubits : t -> int list

(** [max_qubit g] is the largest wire index used. *)
val max_qubit : t -> int

(** [is_clifford_t g] is true when [g] belongs to the Clifford+T set. *)
val is_clifford_t : t -> bool

(** [is_t g] is true for [T] and [Tdg]. *)
val is_t : t -> bool

(** [well_formed g] checks that wires are non-negative and distinct. *)
val well_formed : t -> bool

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

val to_string : t -> string
