(** Depth scheduling of ICM circuits.

    The related work the paper contrasts with (AlFailakawi et al.,
    Adnan & Yamashita) compresses the ICM time axis by minimizing circuit
    depth.  This module computes ASAP and ALAP schedules of an ICM's
    CNOTs — respecting line availability and, optionally, the
    measurement-order constraints by keeping each T gadget's CNOT block
    after its wire's previous gadget — giving the depth lower bound that
    purely time-directed compression can reach (the quantity behind the
    Lin et al. baselines' step counts). *)

type t = {
  level_of_cnot : int array;  (** schedule level of each CNOT *)
  depth : int;  (** number of levels *)
}

(** [asap icm] earliest-possible levels (gates sharing a line
    serialize). *)
val asap : Icm.t -> t

(** [alap icm] latest-possible levels within the ASAP depth. *)
val alap : Icm.t -> t

(** [slack icm] per-CNOT difference between ALAP and ASAP levels — the
    scheduling freedom available to a compressor. *)
val slack : Icm.t -> int array

(** [valid icm t] checks that no two CNOTs sharing a line share a level
    and every CNOT's level respects its line predecessors. *)
val valid : Icm.t -> t -> bool

(** [parallelism icm] = #CNOTs / depth, the average number of concurrent
    CNOTs under ASAP. *)
val parallelism : Icm.t -> float
