let t_gadget_lines = 6
let t_gadget_cnots = 6

type builder = {
  mutable n_lines : int;
  mutable n_cnots : int;
  mutable inits : Icm.init_kind list; (* reversed *)
  mutable cnots : Icm.cnot list; (* reversed *)
  mutable meas : Icm.measurement list; (* reversed *)
  mutable n_meas : int;
  mutable gadgets : Icm.t_gadget list; (* reversed *)
  mutable next_gadget : int;
}

let new_line b kind =
  let line = b.n_lines in
  b.n_lines <- line + 1;
  b.inits <- kind :: b.inits;
  line

let add_cnot b ~control ~target =
  let idx = b.n_cnots in
  b.n_cnots <- idx + 1;
  b.cnots <- { Icm.control; target } :: b.cnots;
  idx

let add_meas b ~line ~basis ~order =
  let idx = b.n_meas in
  b.n_meas <- idx + 1;
  b.meas <- { Icm.m_line = line; m_basis = basis; m_order = order } :: b.meas;
  idx

let run (c : Tqec_circuit.Circuit.t) =
  if not (Tqec_circuit.Circuit.is_clifford_t c) then
    invalid_arg "Decompose.run: input must be Clifford+T";
  let b =
    {
      n_lines = 0;
      n_cnots = 0;
      inits = [];
      cnots = [];
      meas = [];
      n_meas = 0;
      gadgets = [];
      next_gadget = 0;
    }
  in
  (* Current ICM line of each logical wire, its tracked basis frame
     (flipped by H) and its T-gadget ordinal (for inter-T ordering). *)
  let line_of_wire = Array.init c.n_qubits (fun _ -> new_line b Icm.Init_z) in
  let h_frame = Array.make c.n_qubits false in
  let t_seq = Array.make c.n_qubits 0 in
  let flip basis flipped =
    match (basis, flipped) with
    | Icm.Mz, false | Icm.Mx, true -> Icm.Mz
    | Icm.Mx, false | Icm.Mz, true -> Icm.Mx
  in
  let emit_t wire =
    let q = line_of_wire.(wire) in
    let tid = b.next_gadget in
    b.next_gadget <- tid + 1;
    let a = new_line b Icm.Inject_a in
    let y1 = new_line b Icm.Inject_y in
    let g1 = new_line b Icm.Init_z in
    let y2 = new_line b Icm.Inject_y in
    let g2 = new_line b Icm.Init_x in
    let out = new_line b Icm.Init_z in
    let k1 = add_cnot b ~control:q ~target:a in
    let k2 = add_cnot b ~control:a ~target:g1 in
    let k3 = add_cnot b ~control:y1 ~target:g1 in
    let k4 = add_cnot b ~control:g1 ~target:g2 in
    let k5 = add_cnot b ~control:y2 ~target:g2 in
    let k6 = add_cnot b ~control:g2 ~target:out in
    let first =
      add_meas b ~line:q
        ~basis:(flip Icm.Mz h_frame.(wire))
        ~order:(Icm.Order_first tid)
    in
    let second =
      [
        add_meas b ~line:a ~basis:Icm.Mx ~order:(Icm.Order_second tid);
        add_meas b ~line:g1 ~basis:Icm.Mz ~order:(Icm.Order_second tid);
        add_meas b ~line:y1 ~basis:Icm.Mx ~order:(Icm.Order_second tid);
        add_meas b ~line:g2 ~basis:Icm.Mz ~order:(Icm.Order_second tid);
      ]
    in
    let _ = add_meas b ~line:y2 ~basis:Icm.Mx ~order:Icm.Order_free in
    b.gadgets <-
      {
        Icm.t_id = tid;
        t_wire = wire;
        t_seq = t_seq.(wire);
        t_lines = [ a; y1; g1; y2; g2; out ];
        t_cnots = [ k1; k2; k3; k4; k5; k6 ];
        t_first_meas = first;
        t_second_meas = second;
      }
      :: b.gadgets;
    t_seq.(wire) <- t_seq.(wire) + 1;
    line_of_wire.(wire) <- out;
    h_frame.(wire) <- false
  in
  let emit_s wire =
    let q = line_of_wire.(wire) in
    let y = new_line b Icm.Inject_y in
    ignore (add_cnot b ~control:q ~target:y);
    ignore (add_meas b ~line:y ~basis:Icm.Mx ~order:Icm.Order_free)
  in
  List.iter
    (fun g ->
      match (g : Tqec_circuit.Gate.t) with
      | X _ | Z _ -> () (* Pauli frame *)
      | H q -> h_frame.(q) <- not h_frame.(q)
      | S q | Sdg q -> emit_s q
      | T q | Tdg q -> emit_t q
      | Cnot { control; target } ->
          ignore
            (add_cnot b ~control:line_of_wire.(control)
               ~target:line_of_wire.(target))
      | Swap _ | Toffoli _ | Fredkin _ | Mct _ ->
          invalid_arg "Decompose.run: input must be Clifford+T")
    c.gates;
  (* Close every logical wire's output line. *)
  Array.iteri
    (fun wire line ->
      ignore
        (add_meas b ~line ~basis:(flip Icm.Mz h_frame.(wire))
           ~order:Icm.Order_free))
    line_of_wire;
  {
    Icm.name = c.name;
    n_lines = b.n_lines;
    inits = Array.of_list (List.rev b.inits);
    cnots = Array.of_list (List.rev b.cnots);
    meas = Array.of_list (List.rev b.meas);
    t_gadgets = Array.of_list (List.rev b.gadgets);
    line_of_wire;
  }
