(** Clifford+T to ICM decomposition (the paper's preprocess stage).

    Gate handling:
    - [CNOT] maps to an ICM CNOT on the lines currently carrying its
      wires.
    - [T]/[Tdg] expands to the six-line teleportation gadget: one |A>
      injection, two |Y> injections and three bare ancilla lines, six
      CNOTs, one first-order measurement and four second-order
      measurements, after which the logical wire continues on the
      gadget's output line.  This is the gadget whose counting matches
      the paper's Table 1 (#Qubits = wires + 6 #|A>, #|Y> = 2 #|A>,
      six CNOTs per T).
    - [S]/[Sdg] expands to the one-ancilla |Y> teleportation (one CNOT,
      one free measurement).
    - [H] toggles the line's tracked basis frame: it exchanges the roles
      of the Z/X bases of the closing measurement and of any later
      gadget couplings, with no ICM resource cost (defect-qubit
      Hadamards are realized by boundary manipulation, not ancillae).
    - [X]/[Z] are absorbed into the Pauli frame and leave no structure.

    @raise Invalid_argument on non-Clifford+T input (lower it first with
    {!Tqec_circuit.Clifford_t.decompose}). *)

val run : Tqec_circuit.Circuit.t -> Icm.t

(** [t_gadget_lines] = 6, [t_gadget_cnots] = 6: the calibration constants
    documented above, exposed for tests. *)
val t_gadget_lines : int

val t_gadget_cnots : int
