type init_kind = Init_z | Init_x | Inject_y | Inject_a
type meas_basis = Mz | Mx

type meas_order =
  | Order_free
  | Order_first of int
  | Order_second of int

type measurement = {
  m_line : int;
  m_basis : meas_basis;
  m_order : meas_order;
}

type cnot = { control : int; target : int }

type t_gadget = {
  t_id : int;
  t_wire : int;
  t_seq : int;
  t_lines : int list;
  t_cnots : int list;
  t_first_meas : int;
  t_second_meas : int list;
}

type t = {
  name : string;
  n_lines : int;
  inits : init_kind array;
  cnots : cnot array;
  meas : measurement array;
  t_gadgets : t_gadget array;
  line_of_wire : int array;
}

type stats = { s_qubits : int; s_cnots : int; s_y : int; s_a : int }

let count_injections icm kind =
  Array.fold_left (fun acc k -> if k = kind then acc + 1 else acc) 0 icm.inits

let stats icm =
  {
    s_qubits = icm.n_lines;
    s_cnots = Array.length icm.cnots;
    s_y = count_injections icm Inject_y;
    s_a = count_injections icm Inject_a;
  }

let meas_of_line icm line =
  match Array.find_opt (fun m -> m.m_line = line) icm.meas with
  | Some m -> m
  | None -> raise Not_found

let pp_stats ppf s =
  Format.fprintf ppf "#Qubits=%d #CNOTs=%d #|Y>=%d #|A>=%d" s.s_qubits
    s.s_cnots s.s_y s.s_a
