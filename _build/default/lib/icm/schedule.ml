type t = { level_of_cnot : int array; depth : int }

let asap (icm : Icm.t) =
  let ready = Array.make icm.n_lines 0 in
  let n = Array.length icm.cnots in
  let level_of_cnot = Array.make n 0 in
  let depth = ref 0 in
  Array.iteri
    (fun k ({ control; target } : Icm.cnot) ->
      let level = max ready.(control) ready.(target) in
      level_of_cnot.(k) <- level;
      ready.(control) <- level + 1;
      ready.(target) <- level + 1;
      depth := max !depth (level + 1))
    icm.cnots;
  { level_of_cnot; depth = !depth }

let alap (icm : Icm.t) =
  let horizon = (asap icm).depth in
  let due = Array.make icm.n_lines horizon in
  let n = Array.length icm.cnots in
  let level_of_cnot = Array.make n 0 in
  for k = n - 1 downto 0 do
    let ({ control; target } : Icm.cnot) = icm.cnots.(k) in
    let level = min due.(control) due.(target) - 1 in
    level_of_cnot.(k) <- level;
    due.(control) <- level;
    due.(target) <- level
  done;
  { level_of_cnot; depth = horizon }

let slack icm =
  let a = asap icm and l = alap icm in
  Array.init
    (Array.length icm.Icm.cnots)
    (fun k -> l.level_of_cnot.(k) - a.level_of_cnot.(k))

let valid (icm : Icm.t) t =
  let n = Array.length icm.cnots in
  if Array.length t.level_of_cnot <> n then false
  else begin
    let ok = ref true in
    (* program order on each line implies increasing levels *)
    let last_level = Array.make icm.n_lines (-1) in
    Array.iteri
      (fun k ({ control; target } : Icm.cnot) ->
        let level = t.level_of_cnot.(k) in
        if level < 0 || level >= t.depth then ok := false;
        if level <= last_level.(control) || level <= last_level.(target) then
          ok := false;
        last_level.(control) <- level;
        last_level.(target) <- level)
      icm.cnots;
    !ok
  end

let parallelism icm =
  let n = Array.length icm.Icm.cnots in
  if n = 0 then 0. else float_of_int n /. float_of_int (asap icm).depth
