(** Structural well-formedness checks for ICM circuits, used as oracles by
    the test suite and as a guard at pipeline entry. *)

type issue =
  | Line_out_of_range of { where : string; line : int }
  | Cnot_self_loop of int  (** CNOT index with control = target *)
  | Missing_measurement of int  (** line without closing measurement *)
  | Duplicate_measurement of int  (** line measured more than once *)
  | Gadget_meas_mismatch of int  (** gadget with bad measurement refs *)
  | Bad_second_count of int  (** gadget without exactly 4 second-order *)

val pp_issue : Format.formatter -> issue -> unit

(** [check icm] returns all detected issues (empty = well formed). *)
val check : Icm.t -> issue list

(** [is_valid icm] is [check icm = []]. *)
val is_valid : Icm.t -> bool
