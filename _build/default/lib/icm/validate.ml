type issue =
  | Line_out_of_range of { where : string; line : int }
  | Cnot_self_loop of int
  | Missing_measurement of int
  | Duplicate_measurement of int
  | Gadget_meas_mismatch of int
  | Bad_second_count of int

let pp_issue ppf = function
  | Line_out_of_range { where; line } ->
      Format.fprintf ppf "line %d out of range in %s" line where
  | Cnot_self_loop i -> Format.fprintf ppf "CNOT %d has control = target" i
  | Missing_measurement l -> Format.fprintf ppf "line %d never measured" l
  | Duplicate_measurement l ->
      Format.fprintf ppf "line %d measured more than once" l
  | Gadget_meas_mismatch g ->
      Format.fprintf ppf "gadget %d references invalid measurements" g
  | Bad_second_count g ->
      Format.fprintf ppf "gadget %d lacks exactly 4 second-order measurements" g

let check (icm : Icm.t) =
  let issues = ref [] in
  let report i = issues := i :: !issues in
  let n = icm.n_lines in
  let check_line where line =
    if line < 0 || line >= n then report (Line_out_of_range { where; line })
  in
  Array.iteri
    (fun i ({ control; target } : Icm.cnot) ->
      check_line "cnot" control;
      check_line "cnot" target;
      if control = target then report (Cnot_self_loop i))
    icm.cnots;
  let meas_count = Array.make n 0 in
  Array.iter
    (fun (m : Icm.measurement) ->
      check_line "measurement" m.m_line;
      if m.m_line >= 0 && m.m_line < n then
        meas_count.(m.m_line) <- meas_count.(m.m_line) + 1)
    icm.meas;
  Array.iteri
    (fun line count ->
      if count = 0 then report (Missing_measurement line)
      else if count > 1 then report (Duplicate_measurement line))
    meas_count;
  let n_meas = Array.length icm.meas in
  Array.iter
    (fun (g : Icm.t_gadget) ->
      let valid i = i >= 0 && i < n_meas in
      if not (valid g.t_first_meas && List.for_all valid g.t_second_meas)
      then report (Gadget_meas_mismatch g.t_id);
      if List.length g.t_second_meas <> 4 then report (Bad_second_count g.t_id);
      List.iter (check_line "gadget") g.t_lines)
    icm.t_gadgets;
  List.rev !issues

let is_valid icm = check icm = []
