(** The ICM (Initialization, CNOT, Measurement) representation.

    An ICM circuit is a set of qubit lines, each opened by exactly one
    initialization and closed by exactly one measurement, with a
    time-ordered list of CNOTs in between (Paler et al., "A fully
    fault-tolerant representation of quantum circuits").  All non-CNOT
    gates of the Clifford+T input are realized by ancilla lines,
    injections and measurement-order constraints; see {!Decompose}. *)

type init_kind =
  | Init_z  (** |0>, Z-basis initialization *)
  | Init_x  (** |+>, X-basis initialization *)
  | Inject_y  (** |Y> state injection (backed by a 3x3x2 distillation box) *)
  | Inject_a  (** |A> state injection (backed by a 16x6x2 distillation box) *)

type meas_basis = Mz | Mx

type meas_order =
  | Order_free  (** no constraint; invariant under topological deformation *)
  | Order_first of int  (** first-order measurement of T gadget [id] *)
  | Order_second of int  (** second-order measurement of T gadget [id] *)

type measurement = {
  m_line : int;
  m_basis : meas_basis;
  m_order : meas_order;
}

type cnot = { control : int; target : int }

(** One decomposed T (or T†) gate: six ancilla lines, one first-order and
    four second-order measurements (paper Fig. 3). *)
type t_gadget = {
  t_id : int;
  t_wire : int;  (** logical wire of the original circuit *)
  t_seq : int;  (** ordinal among the gadgets on [t_wire] (inter-T order) *)
  t_lines : int list;  (** the ancilla lines, in creation order *)
  t_cnots : int list;  (** indices of the gadget's six CNOTs *)
  t_first_meas : int;  (** index into [meas] *)
  t_second_meas : int list;  (** four indices into [meas] *)
}

type t = {
  name : string;
  n_lines : int;
  inits : init_kind array;  (** per line *)
  cnots : cnot array;  (** in time order *)
  meas : measurement array;  (** one entry per line, indexed by position *)
  t_gadgets : t_gadget array;
  line_of_wire : int array;  (** ICM line carrying each logical wire's output *)
}

(** Statistics matching the columns of the paper's Table 1. *)
type stats = {
  s_qubits : int;  (** #Qubits: ICM lines *)
  s_cnots : int;
  s_y : int;  (** #|Y> injections *)
  s_a : int;  (** #|A> injections *)
}

val stats : t -> stats

(** [meas_of_line icm line] finds the measurement closing [line]. *)
val meas_of_line : t -> int -> measurement

(** [count_injections icm kind]. *)
val count_injections : t -> init_kind -> int

val pp_stats : Format.formatter -> stats -> unit
