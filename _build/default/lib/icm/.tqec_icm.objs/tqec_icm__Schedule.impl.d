lib/icm/schedule.ml: Array Icm
