lib/icm/validate.ml: Array Format Icm List
