lib/icm/decompose.ml: Array Icm List Tqec_circuit
