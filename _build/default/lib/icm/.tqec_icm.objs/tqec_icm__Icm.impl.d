lib/icm/icm.ml: Array Format
