lib/icm/icm.mli: Format
