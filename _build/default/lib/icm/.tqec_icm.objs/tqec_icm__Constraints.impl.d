lib/icm/constraints.ml: Array Hashtbl Icm Int List Queue
