lib/icm/constraints.mli: Icm
