lib/icm/validate.mli: Format Icm
