lib/icm/decompose.mli: Icm Tqec_circuit
