lib/icm/schedule.mli: Icm
