(** Result records and table rendering for the experiment harness. *)

(** One benchmark's complete measurement set. *)
type row = {
  r_name : string;
  r_stats : Tqec_icm.Icm.stats;
  r_modules : int;  (** paper Table 1 "#Modules" *)
  r_nodes : int;  (** paper Table 1 "#Nodes" *)
  r_canonical : int;
  r_lin1d : int;
  r_lin2d : int;
  r_dual_only : int;  (** Hsu et al. [10] volume *)
  r_dual_only_runtime : float;
  r_ours : int;
  r_ours_runtime : float;
  r_paper : Tqec_circuit.Suite.paper_row;
  r_scale : int;  (** instance scale divisor (1 = full size) *)
}

(** [table1 rows] renders benchmark statistics in the layout of the
    paper's Table 1, with paper reference values. *)
val table1 : row list -> string

(** [table2 rows] renders canonical and Lin [11] volumes with ratios to
    ours (paper Table 2). *)
val table2 : row list -> string

(** [table3 rows] renders Hsu [10] vs ours volumes, ratios and runtimes
    (paper Table 3). *)
val table3 : row list -> string

(** [fig1 series] renders the Fig. 1 volume sequence for the 3-CNOT
    example: canonical, topological deformation (modular), dual-only
    bridging, primal+dual bridging — measured vs paper. *)
val fig1 : (string * int * int) list -> string

(** [summary rows] one-paragraph paper-vs-measured digest (average
    ratios). *)
val summary : row list -> string
