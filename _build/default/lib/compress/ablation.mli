(** Ablation studies for the design choices DESIGN.md calls out.

    Each study runs the full pipeline on one benchmark instance with a
    single knob varied and reports the resulting space-time volume:

    - {b I-shaped simplification} on/off (paper Section 3.2's claim that
      the O(n) pass is "very effective ... for small-scale problems");
    - {b flipping start randomization}: seed sweep of the greedy primal
      bridging, measuring how sensitive chain construction is to the
      random starting point (paper Section 3.3);
    - {b chain folding height} (z_cap) sweep, the 2.5D trade-off behind
      the primal bridging super-module's footprint;
    - {b placement effort} sweep (SA budget vs quality). *)

type datum = { a_label : string; a_volume : int; a_nodes : int; a_runtime : float }

type study = { s_name : string; s_data : datum list }

(** [ishape icm ~effort] on/off comparison. *)
val ishape : Tqec_icm.Icm.t -> effort:Tqec_place.Placer.effort -> study

(** [flipping_seeds icm ~effort ~seeds]. *)
val flipping_seeds :
  Tqec_icm.Icm.t -> effort:Tqec_place.Placer.effort -> seeds:int list -> study

(** [z_cap icm ~effort ~caps]. *)
val z_cap :
  Tqec_icm.Icm.t -> effort:Tqec_place.Placer.effort -> caps:int list -> study

(** [effort icm] quick/normal comparison. *)
val effort : Tqec_icm.Icm.t -> study

(** [strategy icm ~effort] annealing vs force-directed placement. *)
val strategy : Tqec_icm.Icm.t -> effort:Tqec_place.Placer.effort -> study

(** [render study] as a text table. *)
val render : study -> string

(** [run_default ()] runs all studies on a scaled-down rd84_142 instance
    and renders them (the `tqecc ablate` / bench entry point). *)
val run_default : ?scale:int -> unit -> string
