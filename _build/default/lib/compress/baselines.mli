(** Volume baselines of the paper's Table 2 and Table 3.

    - {b Canonical}: the synthesized canonical form plus the total
      distillation-box volume (closed form, exact for Table 2).
    - {b Lin 1D / 2D} (Lin et al., TCAD'18): logical qubit lines arranged
      in a 1D row or 2D grid for the primal defects; compression acts
      only along the time axis by packing CNOTs whose dual-defect
      routes do not conflict into shared 3-unit time steps, respecting
      data dependencies (gates sharing a line stay ordered).  Volume is
      [3 * steps * rows * 2] plus distillation boxes.
    - {b Dual-only} (Hsu et al., DAC'21) and {b ours} run the actual
      pipeline; see {!Pipeline}. *)

type lin_result = {
  l_steps : int;  (** scheduled time steps *)
  l_rows : int;  (** ICM lines with canonical rails *)
  l_volume : int;  (** including distillation boxes *)
}

val canonical_volume : Tqec_icm.Icm.t -> int

(** [lin_1d icm] — greedy ASAP list scheduling; two CNOTs conflict in a
    step when their line intervals touch (disjoint dual routes must stay
    one unit apart). *)
val lin_1d : Tqec_icm.Icm.t -> lin_result

(** [lin_2d icm] — lines arranged row-major in a near-square grid; a CNOT
    occupies the L-shaped route between its endpoints; two CNOTs conflict
    when their routes share or touch a grid cell. *)
val lin_2d : Tqec_icm.Icm.t -> lin_result
