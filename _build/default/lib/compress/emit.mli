(** Geometric description emission for pipeline results.

    Converts a placed-and-routed result into a {!Tqec_geom.Geometry.t} on
    the doubled lattice: every primal structure (a bridging chain with
    its I-shape partners, a time-dependent super-module member, a plain
    module) becomes a primal strand through its modules' cell vertices;
    every routed dual structure becomes the set of unit edges of its
    routed tree; distillation boxes become boxes.

    Because each unit cell carries one primal and one dual lattice
    vertex, running {!Tqec_geom.Geometry.check} on the emission is a
    geometric soundness check of the whole flow: any two distinct
    structures sharing a cell (a placement overlap or a routing overuse)
    shows up as a vertex collision.  Pin cells are deliberately shared by
    several dual structures (strands threading the same primal loop);
    they are emitted for the first structure only, so a valid result
    yields a collision-free geometry. *)

(** [geometry r] emits the result's geometric description. *)
val geometry : Pipeline.t -> Tqec_geom.Geometry.t

(** [check r] = [Tqec_geom.Geometry.check (geometry r)]. *)
val check : Pipeline.t -> Tqec_geom.Geometry.issue list

(** [volume_consistent r] verifies that the emitted geometry's bounding
    box matches the pipeline's reported volume. *)
val volume_consistent : Pipeline.t -> bool
