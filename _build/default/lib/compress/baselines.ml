module Icm = Tqec_icm.Icm
module Canonical = Tqec_geom.Canonical
module Geometry = Tqec_geom.Geometry
module Interval = Tqec_util.Interval

type lin_result = { l_steps : int; l_rows : int; l_volume : int }

let canonical_volume = Canonical.volume

let box_total (icm : Icm.t) =
  let s = Icm.stats icm in
  (Geometry.box_volume Geometry.Y_box * s.Icm.s_y)
  + (Geometry.box_volume Geometry.A_box * s.Icm.s_a)

(* Rows in layout order: only lines that participate in a CNOT. *)
let rows_of (icm : Icm.t) =
  let used = Array.make icm.n_lines false in
  Array.iter
    (fun ({ control; target } : Icm.cnot) ->
      used.(control) <- true;
      used.(target) <- true)
    icm.cnots;
  let row = Array.make icm.n_lines (-1) in
  let next = ref 0 in
  Array.iteri
    (fun line u ->
      if u then begin
        row.(line) <- !next;
        incr next
      end)
    used;
  (row, !next)

(* Greedy ASAP list scheduling over abstract per-step occupancy.
   [cells c t] lists the resource cells of a CNOT's route (already
   inflated by the one-unit separation); a CNOT fits a step when none of
   its cells is occupied there.  Gates sharing a line are serialized
   through [ready]. *)
let schedule (icm : Icm.t) ~cells =
  let n_lines = icm.n_lines in
  let ready = Array.make n_lines 0 in
  let occupancy : (int, (int, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 64 in
  let step_table s =
    match Hashtbl.find_opt occupancy s with
    | Some t -> t
    | None ->
        let t = Hashtbl.create 32 in
        Hashtbl.replace occupancy s t;
        t
  in
  let n_steps = ref 0 in
  Array.iter
    (fun ({ control; target } : Icm.cnot) ->
      let core, inflated = cells control target in
      let earliest = max ready.(control) ready.(target) in
      let rec find s =
        let t = step_table s in
        if List.exists (Hashtbl.mem t) inflated then find (s + 1) else s
      in
      let s = find earliest in
      let t = step_table s in
      List.iter (fun c -> Hashtbl.replace t c ()) core;
      ready.(control) <- s + 1;
      ready.(target) <- s + 1;
      n_steps := max !n_steps (s + 1))
    icm.cnots;
  !n_steps

let lin_1d (icm : Icm.t) =
  let row, n_rows = rows_of icm in
  let span lo hi = List.init (hi - lo + 1) (fun i -> lo + i) in
  let cells c t =
    let i = Interval.make row.(c) row.(t) in
    (span i.Interval.lo i.Interval.hi, span (i.Interval.lo - 1) (i.Interval.hi + 1))
  in
  let steps = schedule icm ~cells in
  {
    l_steps = steps;
    l_rows = n_rows;
    l_volume = (3 * steps * n_rows * 2) + box_total icm;
  }

let lin_2d (icm : Icm.t) =
  let row, n_rows = rows_of icm in
  let grid_w =
    max 1 (int_of_float (Float.ceil (sqrt (float_of_int (max 1 n_rows)))))
  in
  let stride = grid_w + 4 in
  let encode (x, y) = ((y + 1) * stride) + x + 1 in
  let coord line = (row.(line) mod grid_w, row.(line) / grid_w) in
  (* L-shaped route: horizontal run in the control's grid row, then
     vertical run in the target's column. *)
  let cells c t =
    let cx, cy = coord c and tx, ty = coord t in
    let horizontal =
      List.init (abs (tx - cx) + 1) (fun i -> (min cx tx + i, cy))
    in
    let vertical =
      List.init (abs (ty - cy) + 1) (fun i -> (tx, min cy ty + i))
    in
    let core = horizontal @ vertical in
    let inflated =
      List.concat_map
        (fun (x, y) -> [ (x, y); (x + 1, y); (x - 1, y); (x, y + 1); (x, y - 1) ])
        core
    in
    (List.map encode core, List.sort_uniq Int.compare (List.map encode inflated))
  in
  let steps = schedule icm ~cells in
  {
    l_steps = steps;
    l_rows = n_rows;
    l_volume = (3 * steps * n_rows * 2) + box_total icm;
  }
