lib/compress/report.ml: List Printf Tqec_circuit Tqec_icm Tqec_util
