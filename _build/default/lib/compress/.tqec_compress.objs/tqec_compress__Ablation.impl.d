lib/compress/ablation.ml: List Pipeline Printf String Tqec_circuit Tqec_icm Tqec_place Tqec_util
