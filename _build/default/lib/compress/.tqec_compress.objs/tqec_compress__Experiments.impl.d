lib/compress/experiments.ml: Baselines List Pipeline Report String Sys Tqec_circuit Tqec_icm Tqec_place
