lib/compress/pipeline.mli: Tqec_circuit Tqec_icm Tqec_pdgraph Tqec_place Tqec_route
