lib/compress/baselines.ml: Array Float Hashtbl Int List Tqec_geom Tqec_icm Tqec_util
