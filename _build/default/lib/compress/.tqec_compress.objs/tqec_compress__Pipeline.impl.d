lib/compress/pipeline.ml: Array Float Hashtbl List Printf Sys Tqec_circuit Tqec_geom Tqec_icm Tqec_pdgraph Tqec_place Tqec_route Tqec_util Unix
