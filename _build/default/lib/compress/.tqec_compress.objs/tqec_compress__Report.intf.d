lib/compress/report.mli: Tqec_circuit Tqec_icm
