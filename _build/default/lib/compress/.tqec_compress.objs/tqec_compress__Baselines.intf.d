lib/compress/baselines.mli: Tqec_icm
