lib/compress/experiments.mli: Report Tqec_circuit Tqec_place
