lib/compress/ablation.mli: Tqec_icm Tqec_place
