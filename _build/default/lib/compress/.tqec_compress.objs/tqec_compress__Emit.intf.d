lib/compress/emit.mli: Pipeline Tqec_geom
