lib/compress/emit.ml: Array Hashtbl List Pipeline Tqec_geom Tqec_icm Tqec_pdgraph Tqec_place Tqec_route Tqec_util
