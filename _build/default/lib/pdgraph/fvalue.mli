(** Dual-segment flip planning (paper Section 3.5, Eq. 5).

    When a primal bridging chain is laid out along the z axis, each
    module's dual segments exit on one of two sides.  The boolean [f]
    records whether a module's segments are flipped: the chain's first
    module has [f = 0] and each subsequent module takes
    [f_current = 1 - f_source], so segments alternate and the router is
    not forced into crossings (Fig. 15). *)

type t = {
  f_of_point : (int, bool) Hashtbl.t;
      (** point representative -> flipped? *)
}

(** [plan flipping] assigns f values along every chain. *)
val plan : Flipping.t -> t

val flipped : t -> int -> bool

(** [alternates flipping t] checks Eq. 5 along every chain (test
    oracle). *)
val alternates : Flipping.t -> t -> bool
