(** I-shaped simplification (paper Section 3.2).

    When a qubit I/M sits on the control-side module pair of a CNOT —
    i.e. a row's first CNOT use is on the control side (initialization
    I/M), or its last is (measurement I/M) — the pair is bridged along
    the x axis.  In PD-graph terms (Fig. 14): a new [Ishape_merged]
    module takes the pair's creating net; the module owning only that net
    disappears; the residual module drops the net but remains, recorded
    as the merged module's partner ("regarded as the same point" for the
    flipping stage).  One check per I/M: O(n). *)

type merge = {
  g_row : int;
  g_merged : int;  (** id of the new [Ishape_merged] module *)
  g_absorbed : int;  (** module that disappeared *)
  g_residual : int;  (** partner module that dropped the net *)
  g_net : int;  (** the creating net *)
  g_at_init : bool;  (** true: initialization end; false: measurement end *)
}

(** [run ?respect_order g] mutates the PD graph and returns the merges
    performed, in row order.  With [respect_order] (default [true]),
    measurement-end merges are skipped on rows whose closing measurement
    carries a time-order constraint (those modules belong to
    time-dependent super-modules in placement and must keep their own
    position).  Idempotent: running again performs no further merges. *)
val run : ?respect_order:bool -> Pd_graph.t -> merge list
