type t = { f_of_point : (int, bool) Hashtbl.t }

let plan (flipping : Flipping.t) =
  let f_of_point = Hashtbl.create 64 in
  List.iter
    (fun chain ->
      ignore
        (List.fold_left
           (fun f point ->
             Hashtbl.replace f_of_point point f;
             not f)
           false chain))
    flipping.Flipping.chains;
  { f_of_point }

let flipped t point =
  try Hashtbl.find t.f_of_point point with Not_found -> false

let alternates (flipping : Flipping.t) t =
  List.for_all
    (fun chain ->
      let rec check = function
        | a :: b :: rest ->
            flipped t b = not (flipped t a) && check (b :: rest)
        | _ -> true
      in
      match chain with
      | [] -> true
      | first :: _ -> (not (flipped t first)) && check chain)
    flipping.Flipping.chains
