(** The 2D primal-dual graph (paper Section 2.3 and Figure 6).

    Modularization breaks every dual net (one per CNOT) into two-pin
    segments enclosed by primal loops ("modules").  The PD graph records
    which dual nets pass through which primal modules — the braiding
    relation — and is the structure on which I-shaped simplification,
    primal bridging (flipping) and iterative dual bridging operate.

    Construction rules (Fig. 6): per CNOT, on the control row the net is
    recorded in the row's current module (creating an initial module when
    the row is fresh) and then in a new "innovative" module which becomes
    current; on the target row the net is recorded in the row's current
    module (creating one if fresh).  Every |Y>/|A> injection additionally
    owns a distillation-box module (not traversed by nets). *)

type module_kind =
  | Initial of Tqec_icm.Icm.init_kind
      (** a row's first module; carries the initialization I/M *)
  | Innovative  (** control-side module created by a CNOT *)
  | Ishape_merged  (** created by {!Ishape}; bridges an I/M pair *)
  | Distill of Tqec_icm.Icm.init_kind
      (** distillation box backing an injection ([Inject_y]/[Inject_a]) *)

type module_rec = {
  m_id : int;
  m_kind : module_kind;
  m_row : int;  (** ICM line; [-1] for distillation boxes *)
  mutable m_nets : int list;  (** nets through this module, record order *)
  mutable m_alive : bool;  (** false once absorbed by I-shape *)
  mutable m_partner : int;
      (** for [Ishape_merged], the residual module bridged with it (the
          "same point" of the flipping stage); [-1] otherwise *)
}

type net_rec = {
  n_id : int;
  n_cnot : int;  (** index of the CNOT in the ICM *)
  mutable n_modules : int list;  (** modules traversed, in order *)
}

type t = {
  icm : Tqec_icm.Icm.t;
  modules : module_rec Tqec_util.Veca.t;
  nets : net_rec Tqec_util.Veca.t;
  row_first : int array;  (** first module of each row; [-1] if unused *)
  row_last : int array;  (** current (last) module of each row; [-1] *)
  row_first_as_control : bool array;
      (** row's first CNOT use was on the control side *)
  row_last_as_control : bool array;
}

(** [of_icm icm] builds the PD graph. *)
val of_icm : Tqec_icm.Icm.t -> t

(** [n_modules g] counts alive modules (the paper's "#Modules" before
    primal bridging counts all constructed modules: use
    [n_modules_constructed]). *)
val n_modules : t -> int

val n_modules_constructed : t -> int

val n_nets : t -> int

val module_get : t -> int -> module_rec

val net_get : t -> int -> net_rec

(** [alive_modules g] lists alive modules in id order. *)
val alive_modules : t -> module_rec list

(** [nets_through g m] is the net list of module [m] (alive nets only,
    deduplicated, order preserved). *)
val nets_through : t -> int -> int list

(** [modules_of_net g n] is the module list of net [n] (alive only). *)
val modules_of_net : t -> int -> int list

(** [braiding_relation g] is the set of (net, module) incidences as a
    sorted list — the invariant that all later stages must preserve up to
    the documented module splits/merges. *)
val braiding_relation : t -> (int * int) list

(** [meas_module g row] is the module carrying row's closing measurement
    (its last module), if the row has modules. *)
val meas_module : t -> int -> int option

(** [distill_modules g] lists (module id, kind) of distillation boxes. *)
val distill_modules : t -> (int * Tqec_icm.Icm.init_kind) list

val pp : Format.formatter -> t -> unit
