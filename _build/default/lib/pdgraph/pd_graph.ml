module Icm = Tqec_icm.Icm
module Veca = Tqec_util.Veca

type module_kind =
  | Initial of Icm.init_kind
  | Innovative
  | Ishape_merged
  | Distill of Icm.init_kind

type module_rec = {
  m_id : int;
  m_kind : module_kind;
  m_row : int;
  mutable m_nets : int list;
  mutable m_alive : bool;
  mutable m_partner : int;
}

type net_rec = {
  n_id : int;
  n_cnot : int;
  mutable n_modules : int list;
}

type t = {
  icm : Icm.t;
  modules : module_rec Veca.t;
  nets : net_rec Veca.t;
  row_first : int array;
  row_last : int array;
  row_first_as_control : bool array;
  row_last_as_control : bool array;
}

let new_module g ~kind ~row =
  let m =
    {
      m_id = Veca.length g.modules;
      m_kind = kind;
      m_row = row;
      m_nets = [];
      m_alive = true;
      m_partner = -1;
    }
  in
  Veca.push g.modules m

let record g ~m ~net =
  let mr = Veca.get g.modules m in
  mr.m_nets <- mr.m_nets @ [ net ];
  let nr = Veca.get g.nets net in
  nr.n_modules <- nr.n_modules @ [ m ]

let of_icm (icm : Icm.t) =
  let g =
    {
      icm;
      modules = Veca.create ();
      nets = Veca.create ();
      row_first = Array.make icm.n_lines (-1);
      row_last = Array.make icm.n_lines (-1);
      row_first_as_control = Array.make icm.n_lines false;
      row_last_as_control = Array.make icm.n_lines false;
    }
  in
  let ensure_current row ~as_control =
    if g.row_last.(row) = -1 then begin
      let m = new_module g ~kind:(Initial icm.inits.(row)) ~row in
      g.row_first.(row) <- m;
      g.row_last.(row) <- m;
      g.row_first_as_control.(row) <- as_control
    end;
    g.row_last.(row)
  in
  Array.iteri
    (fun cnot_index ({ control; target } : Icm.cnot) ->
      let net =
        Veca.push g.nets { n_id = Veca.length g.nets; n_cnot = cnot_index; n_modules = [] }
      in
      (* Control side: record in current, then add an innovative module. *)
      let cur = ensure_current control ~as_control:true in
      record g ~m:cur ~net;
      let innovative = new_module g ~kind:Innovative ~row:control in
      record g ~m:innovative ~net;
      g.row_last.(control) <- innovative;
      g.row_last_as_control.(control) <- true;
      (* Target side: record in current. *)
      let cur = ensure_current target ~as_control:false in
      record g ~m:cur ~net;
      g.row_last_as_control.(target) <- false)
    icm.cnots;
  (* One distillation-box module per injection line. *)
  Array.iteri
    (fun line kind ->
      match kind with
      | Icm.Inject_y | Icm.Inject_a ->
          ignore (new_module g ~kind:(Distill kind) ~row:line)
      | Icm.Init_z | Icm.Init_x -> ())
    icm.inits;
  g

let n_modules g =
  Veca.fold (fun acc m -> if m.m_alive then acc + 1 else acc) 0 g.modules

let n_modules_constructed g = Veca.length g.modules
let n_nets g = Veca.length g.nets
let module_get g i = Veca.get g.modules i
let net_get g i = Veca.get g.nets i

let alive_modules g =
  List.filter (fun m -> m.m_alive) (Veca.to_list g.modules)

let dedup_keep_order l =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun x ->
      if Hashtbl.mem seen x then false
      else begin
        Hashtbl.add seen x ();
        true
      end)
    l

let nets_through g m = dedup_keep_order (Veca.get g.modules m).m_nets

let modules_of_net g n =
  dedup_keep_order
    (List.filter
       (fun m -> (Veca.get g.modules m).m_alive)
       (Veca.get g.nets n).n_modules)

let braiding_relation g =
  let pairs = ref [] in
  Veca.iter
    (fun m ->
      if m.m_alive then
        List.iter (fun n -> pairs := (n, m.m_id) :: !pairs) (dedup_keep_order m.m_nets))
    g.modules;
  List.sort_uniq compare !pairs

let meas_module g row =
  if row < 0 || row >= Array.length g.row_last then None
  else
    let m = g.row_last.(row) in
    if m = -1 then None else Some m

let distill_modules g =
  Veca.fold
    (fun acc m ->
      match m.m_kind with Distill k -> (m.m_id, k) :: acc | _ -> acc)
    [] g.modules
  |> List.rev

let pp ppf g =
  Format.fprintf ppf "@[<v>PD graph: %d modules (%d alive), %d nets@,"
    (n_modules_constructed g) (n_modules g) (n_nets g);
  Veca.iter
    (fun m ->
      if m.m_alive then
        Format.fprintf ppf "p%d (row %d) <- {%a}@," m.m_id m.m_row
          (Format.pp_print_list
             ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
             (fun ppf n -> Format.fprintf ppf "d%d" n))
          (dedup_keep_order m.m_nets))
    g.modules;
  Format.fprintf ppf "@]"
