(** Iterative dual bridging (paper Section 3.4, after Hsu et al. [10]).

    Two dual nets may bridge when they pass through the same primal
    module *part* — the PD graph's post-I-shape modules, so that a net
    retargeted to an [Ishape_merged] part can no longer bridge with a net
    passing only through the residual part (the error case of Fig. 14).
    At most one bridge joins two structures (extra loops are forbidden):
    merging is tracked by a union-find over nets, and a merge of two nets
    already in one structure is skipped.

    Time-ordered measurement constraints: nets belonging to different
    T gadgets acting on the same logical wire may not end up in one
    merged structure (their second-order measurement groups must remain
    separable in time), so such unions are refused. *)

type t = {
  classes : Tqec_util.Union_find.t;  (** over net ids *)
  merged : (int * int list) list;
      (** class representative -> member nets, ascending *)
  n_bridges : int;  (** unions performed *)
  n_refused : int;  (** unions refused by the time-order rule *)
}

val run : Pd_graph.t -> t

(** [class_of t net] is the representative of [net]'s merged structure. *)
val class_of : t -> int -> int

(** [modules_of_class g t rep] lists all module parts traversed by the
    merged structure [rep] (deduplicated, ascending). *)
val modules_of_class : Pd_graph.t -> t -> int -> int list
