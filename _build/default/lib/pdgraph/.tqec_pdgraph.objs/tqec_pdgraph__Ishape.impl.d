lib/pdgraph/ishape.ml: Array List Pd_graph Tqec_icm Tqec_util
