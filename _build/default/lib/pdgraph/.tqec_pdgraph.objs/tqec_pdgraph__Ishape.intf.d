lib/pdgraph/ishape.mli: Pd_graph
