lib/pdgraph/fvalue.mli: Flipping Hashtbl
