lib/pdgraph/fvalue.ml: Flipping Hashtbl List
