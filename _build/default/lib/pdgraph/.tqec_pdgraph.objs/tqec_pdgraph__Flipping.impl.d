lib/pdgraph/flipping.ml: Array Hashtbl Int List Pd_graph Printf Tqec_util
