lib/pdgraph/dual_bridge.mli: Pd_graph Tqec_util
