lib/pdgraph/flipping.mli: Pd_graph Tqec_util
