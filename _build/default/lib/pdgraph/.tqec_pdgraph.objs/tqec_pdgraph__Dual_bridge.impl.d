lib/pdgraph/dual_bridge.ml: Array Hashtbl Int List Pd_graph Tqec_icm Tqec_util
