lib/pdgraph/pd_graph.ml: Array Format Hashtbl List Tqec_icm Tqec_util
