lib/pdgraph/pd_graph.mli: Format Tqec_icm Tqec_util
