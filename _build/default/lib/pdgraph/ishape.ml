module Veca = Tqec_util.Veca

type merge = {
  g_row : int;
  g_merged : int;
  g_absorbed : int;
  g_residual : int;
  g_net : int;
  g_at_init : bool;
}

(* The partner of [small] via net [d]: the other alive module of [d] on
   the same row. *)
let partner_via g ~small ~row ~net =
  Pd_graph.modules_of_net g net
  |> List.find_opt (fun m ->
         m <> small && (Pd_graph.module_get g m).Pd_graph.m_row = row)

let remove_net_from_module g ~m ~net =
  let mr = Pd_graph.module_get g m in
  mr.m_nets <- List.filter (fun n -> n <> net) mr.m_nets

let replace_module_in_net g ~net ~old_m ~new_m ~drop_m =
  let nr = Pd_graph.net_get g net in
  nr.n_modules <-
    List.filter_map
      (fun m ->
        if m = old_m then Some new_m
        else if m = drop_m then None
        else Some m)
      nr.n_modules

let merge_pair g ~row ~small ~big ~net ~at_init acc =
  let small_rec = Pd_graph.module_get g small in
  let merged_id =
    Veca.push g.Pd_graph.modules
      {
        Pd_graph.m_id = Veca.length g.Pd_graph.modules;
        m_kind = Pd_graph.Ishape_merged;
        m_row = row;
        m_nets = [ net ];
        m_alive = true;
        m_partner = big;
      }
  in
  small_rec.m_alive <- false;
  remove_net_from_module g ~m:big ~net;
  replace_module_in_net g ~net ~old_m:small ~new_m:merged_id ~drop_m:big;
  {
    g_row = row;
    g_merged = merged_id;
    g_absorbed = small;
    g_residual = big;
    g_net = net;
    g_at_init = at_init;
  }
  :: acc

let row_meas_ordered (g : Pd_graph.t) row =
  match Tqec_icm.Icm.meas_of_line g.Pd_graph.icm row with
  | { m_order = Tqec_icm.Icm.Order_free; _ } -> false
  | _ -> true
  | exception Not_found -> false

let run ?(respect_order = true) (g : Pd_graph.t) =
  let n_rows = Array.length g.row_first in
  let merges = ref [] in
  for row = 0 to n_rows - 1 do
    let first = g.row_first.(row) and last = g.row_last.(row) in
    if first <> -1 && first <> last then begin
      (* Initialization-end candidate: the row opened on a control side,
         so its initial module holds exactly the creating net. *)
      let init_merged =
        if g.row_first_as_control.(row) then
          let first_rec = Pd_graph.module_get g first in
          match (first_rec.m_alive, first_rec.m_nets) with
          | true, [ net ] -> (
              match partner_via g ~small:first ~row ~net with
              | Some big
                when not
                       (respect_order && big = last
                       && row_meas_ordered g row) ->
                  merges :=
                    merge_pair g ~row ~small:first ~big ~net ~at_init:true
                      !merges;
                  true
              | Some _ | None -> false)
          | _ -> false
        else false
      in
      (* Measurement-end candidate: the row closed on a control side, so
         its last (innovative) module holds exactly the creating net.
         Skip when the initialization merge already consumed the pair. *)
      let last_rec = Pd_graph.module_get g last in
      if
        g.row_last_as_control.(row)
        && last_rec.m_alive
        && (not (init_merged && last_rec.m_nets = []))
        && not (respect_order && row_meas_ordered g row)
      then
        match last_rec.m_nets with
        | [ net ] -> (
            match partner_via g ~small:last ~row ~net with
            | Some big ->
                merges :=
                  merge_pair g ~row ~small:last ~big ~net ~at_init:false
                    !merges
            | None -> ())
        | _ -> ()
    end
  done;
  List.rev !merges
