(** The flipping operation / primal bridging stage (paper Section 3.3).

    Primal modules connected through shared dual nets are flipped onto a
    common layer and bridged along the z axis, so each module joins at
    most two others (a chain).  The greedy traversal starts from a point
    on an edge and repeatedly moves to the reachable un-traversed point
    whose modules connect the most dual nets (cost function Phi, Eq. 3-4),
    restarting until every point is covered.

    A "point" is an equivalence class of modules: an [Ishape_merged]
    module and its residual partner count as one point.  Distillation-box
    modules are excluded (they become distillation-injection
    super-modules in placement). *)

type t = {
  point_of : int array;
      (** module id -> point representative (alive non-distill modules);
          [-1] for dead or distillation modules *)
  points : (int * int list) list;
      (** point representative -> member modules, deterministic order *)
  chains : int list list;
      (** primal bridging chains of point representatives, in bridge
          (z-axis) order; singletons are unbridged modules *)
}

(** [run ?rng ?exclude g] performs the greedy primal bridging on a PD
    graph (normally after {!Ishape.run}).  With [rng] the starting points
    are randomized (the paper picks random starts); without it the
    lowest-numbered eligible point starts each chain.  Modules for which
    [exclude] holds (e.g. members of time-dependent super-modules) do not
    become points and never join a chain. *)
val run : ?rng:Tqec_util.Rng.t -> ?exclude:(int -> bool) -> Pd_graph.t -> t

(** [n_nodes t] is the number of B*-tree nodes the chains induce: one per
    chain (super-module or plain module). *)
val n_nodes : t -> int

(** [chain_of t point] finds the chain containing [point]. *)
val chain_of : t -> int -> int list

(** [validate g t] checks the chain invariants: every point in exactly one
    chain, and consecutive chain elements share at least one dual net
    (the common-segment precondition of a bridge).  Returns error
    descriptions, empty when valid. *)
val validate : Pd_graph.t -> t -> string list
