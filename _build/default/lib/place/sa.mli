(** Generic simulated-annealing engine.

    The engine owns the annealing schedule; the problem supplies three
    callbacks over a mutable state: [cost] (smaller is better),
    [perturb] (make a random move, returning an undo closure), and
    optionally [on_best] (called when a new best cost is found, e.g. to
    snapshot the solution).  Cooling is geometric; the initial
    temperature is calibrated from the average uphill delta of a probe
    phase, the standard recipe for floorplanning annealers. *)

type params = {
  iterations : int;  (** total move attempts *)
  moves_per_temp : int;
  cooling : float;  (** geometric factor in (0, 1) *)
  initial_acceptance : float;  (** probe-phase target, e.g. 0.85 *)
}

(** [default_params ~size] scales the budget with problem size. *)
val default_params : size:int -> params

type stats = {
  attempted : int;
  accepted : int;
  best_cost : float;
  final_temperature : float;
}

(** [run ~rng ~params ~cost ~perturb ?on_best ()] anneals and returns
    statistics.  [perturb] must return an undo closure that restores the
    state exactly; the engine calls it when a move is rejected.  The
    problem state should be left at the last accepted configuration; use
    [on_best] to checkpoint the best one. *)
val run :
  rng:Tqec_util.Rng.t ->
  params:params ->
  cost:(unit -> float) ->
  perturb:(unit -> unit -> unit) ->
  ?on_best:(float -> unit) ->
  unit ->
  stats
