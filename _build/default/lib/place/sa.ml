module Rng = Tqec_util.Rng

type params = {
  iterations : int;
  moves_per_temp : int;
  cooling : float;
  initial_acceptance : float;
}

let default_params ~size =
  let size = max 1 size in
  {
    iterations = Tqec_util.Stats.clamp 2_000 200_000 (size * 60);
    moves_per_temp = Tqec_util.Stats.clamp 20 400 (size * 2);
    cooling = 0.93;
    initial_acceptance = 0.85;
  }

type stats = {
  attempted : int;
  accepted : int;
  best_cost : float;
  final_temperature : float;
}

let run ~rng ~params ~cost ~perturb ?(on_best = fun _ -> ()) () =
  let current = ref (cost ()) in
  let best = ref !current in
  on_best !best;
  (* Probe phase: estimate the average uphill delta to set T0 so that
     the initial acceptance probability matches the target. *)
  let probe_moves = min 50 (max 10 (params.iterations / 100)) in
  let uphill_sum = ref 0. and uphill_count = ref 0 in
  for _ = 1 to probe_moves do
    let undo = perturb () in
    let c = cost () in
    let delta = c -. !current in
    if delta > 0. then begin
      uphill_sum := !uphill_sum +. delta;
      incr uphill_count
    end;
    (* accept all probe moves to explore; track best *)
    current := c;
    if c < !best then begin
      best := c;
      on_best c
    end;
    ignore undo
  done;
  let avg_uphill =
    if !uphill_count = 0 then 1.0 else !uphill_sum /. float_of_int !uphill_count
  in
  let t0 = -.avg_uphill /. log params.initial_acceptance in
  let temperature = ref (Float.max 1e-6 t0) in
  let attempted = ref probe_moves and accepted = ref probe_moves in
  let moves_at_temp = ref 0 in
  while !attempted < params.iterations do
    incr attempted;
    incr moves_at_temp;
    let undo = perturb () in
    let c = cost () in
    let delta = c -. !current in
    let accept =
      delta <= 0.
      || Rng.float rng < exp (-.delta /. Float.max 1e-9 !temperature)
    in
    if accept then begin
      incr accepted;
      current := c;
      if c < !best then begin
        best := c;
        on_best c
      end
    end
    else undo ();
    if !moves_at_temp >= params.moves_per_temp then begin
      moves_at_temp := 0;
      temperature := !temperature *. params.cooling
    end
  done;
  {
    attempted = !attempted;
    accepted = !accepted;
    best_cost = !best;
    final_temperature = !temperature;
  }
