lib/place/super_module.mli: Hashtbl Tqec_geom Tqec_pdgraph Tqec_util
