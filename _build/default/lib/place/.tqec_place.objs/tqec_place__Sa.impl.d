lib/place/sa.ml: Float Tqec_util
