lib/place/bstar_tree.mli: Tqec_util
