lib/place/bstar_tree.ml: Array Int List Printf Tqec_util
