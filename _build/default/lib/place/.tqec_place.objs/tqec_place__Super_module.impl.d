lib/place/super_module.ml: Array Hashtbl Int List Option Tqec_geom Tqec_icm Tqec_pdgraph Tqec_util
