lib/place/sa.mli: Tqec_util
