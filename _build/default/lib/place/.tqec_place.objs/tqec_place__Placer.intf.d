lib/place/placer.mli: Sa Super_module Tqec_pdgraph Tqec_util
