lib/place/placer.ml: Array Bstar_tree Hashtbl Int List Printf Sa Super_module Tqec_pdgraph Tqec_util
