(** Super-module construction (paper Section 3.5).

    Converts the bridging results into the node set of the 2.5D B*-tree:

    - {b time-dependent super-modules}: per logical wire with T gadgets,
      the measurement-carrying modules in required time order (first-order
      then second-order, gadget after gadget), laid along the x (time)
      axis — satisfying the intra-T and inter-T constraints by
      construction;
    - {b distillation-injection super-modules}: one per |Y>/|A>
      injection: the distillation box, absorbing the injection line's
      first module when that module is not already claimed by a chain or
      a time-dependent super-module (otherwise the box is its own node
      tied to the module by a pseudo-net);
    - {b primal bridging super-modules}: the flipping chains, folded into
      serpentine columns of at most [z_cap] levels;
    - {b plain modules}: singleton points.

    Every node's footprint includes the one-unit separation margin on x
    and y, so packed nodes that touch still keep disjoint primal
    structures one unit apart. *)

type node_kind =
  | Plain of int  (** point representative *)
  | Chain of int list  (** point representatives in bridge order *)
  | Time_sm of { wire : int; modules : int list }  (** time order *)
  | Distill_sm of {
      box : Tqec_geom.Geometry.box_kind;
      line : int;
      attached : int option;  (** absorbed injection module *)
    }

type node = {
  nd_id : int;
  nd_kind : node_kind;
  nd_w : int;  (** footprint (margin included) *)
  nd_h : int;
  nd_d : int;  (** z extent (levels) *)
}

type t = {
  nodes : node array;
  node_of_module : (int, int) Hashtbl.t;  (** alive module -> node *)
  module_offset : (int, int * int * int) Hashtbl.t;
      (** alive module -> (dx, dy, dz) of its core cell inside the node
          (unrotated frame) *)
  pseudo_nets : (int * int) list;
      (** (box node, module) pairs for unabsorbed distillation boxes *)
  z_cap : int;
  excluded : int -> bool;
      (** the module predicate used to keep time-SM members out of
          chains; exposed for the pipeline *)
}

(** [time_sm_modules g] computes, per wire with T gadgets, the ordered
    measurement-module list (exposed so the pipeline can exclude them
    from flipping before calling [build]). *)
val time_sm_modules : Tqec_pdgraph.Pd_graph.t -> (int * int list) list

(** [build ?z_cap g flipping] assembles the node set.  [flipping] must
    have been run with the exclusion predicate from [time_sm_modules].
    [z_cap] defaults to a cube-balancing heuristic. *)
val build :
  ?z_cap:int -> Tqec_pdgraph.Pd_graph.t -> Tqec_pdgraph.Flipping.t -> t

(** [module_cells t ~node_pos ~rotated m] is the core cell of module [m]
    given its node's packed position and rotation. *)
val module_cell :
  t ->
  node_pos:(int * int) array ->
  rotated:(int -> bool) ->
  int ->
  Tqec_util.Vec3.t

(** [pin_cell t ~node_pos ~rotated ~flipped m] is the routing pin next to
    module [m]'s core cell; [flipped] is the f value of [m]'s point. *)
val pin_cell :
  t ->
  node_pos:(int * int) array ->
  rotated:(int -> bool) ->
  flipped:bool ->
  int ->
  Tqec_util.Vec3.t
