(** Wavefront OBJ export of geometric descriptions for external 3D
    viewers.

    Every defect vertex becomes a small cube on the doubled lattice
    (primal cubes at even coordinates, dual at odd), distillation boxes
    become scaled boxes, and each structure goes into its own OBJ group
    ([g primal_3], [g dual_7], [g box_Y_0]) so viewers can color them
    independently. *)

(** [to_obj g] renders the geometry as OBJ text. *)
val to_obj : Geometry.t -> string

(** [write_obj path g] writes the OBJ file. *)
val write_obj : string -> Geometry.t -> unit
