(** Braiding (linking) verification on geometric descriptions.

    The functional content of a braided TQEC circuit is the linking
    pattern between dual loops and primal loops; topological deformation
    and bridge compression must preserve it.  For planar primal loops —
    the rail loops of the canonical form — linking of an axis-aligned
    dual loop reduces to counting signed crossings through the loop's
    hole rectangle. *)

type hole = {
  axis : [ `X | `Y | `Z ];  (** normal axis of the hole's plane *)
  at : int;  (** plane position (doubled coordinate) *)
  u : Tqec_util.Interval.t;  (** open range on the first remaining axis *)
  v : Tqec_util.Interval.t;  (** open range on the second remaining axis *)
}

(** [linking loop hole] is the signed linking number of a closed defect
    with the planar loop bounded around [hole].  Crossings count only
    strictly inside the open rectangle.
    @raise Invalid_argument if [loop] is not closed. *)
val linking : Defect.t -> hole -> int

(** [links loop hole] is [linking loop hole <> 0]. *)
val links : Defect.t -> hole -> bool

(** [crossings loop ~axis ~at] is all signed plane crossings (position on
    the two remaining axes, in axis order, with sign), for debugging and
    tests. *)
val crossings :
  Defect.t -> axis:[ `X | `Y | `Z ] -> at:int -> ((int * int) * int) list
