(** Defect strands of a geometric description.

    Geometry lives on a doubled integer lattice: primal defect vertices
    have even coordinates, dual defect vertices odd coordinates (the
    half-unit offset of the dual sublattice), and one paper unit cell [u]
    contains the doubled coordinates [2u] and [2u + 1] on each axis
    ([cell c = floor (c / 2)]).  A defect is a polyline of lattice
    vertices with steps of one unit (two doubled coordinates) along a
    single axis; closed defects are loops. *)

type defect_type = Primal | Dual

type t = {
  id : int;
  structure : int;  (** structure (connected component) this strand belongs to *)
  dtype : defect_type;
  path : Tqec_util.Vec3.t list;  (** doubled-lattice vertices, in order *)
  closed : bool;
}

(** [make ~id ~structure ~dtype ~closed path] validates parity and step
    structure. @raise Invalid_argument on malformed paths. *)
val make :
  id:int ->
  structure:int ->
  dtype:defect_type ->
  closed:bool ->
  Tqec_util.Vec3.t list ->
  t

(** [valid_path ~dtype ~closed path] checks: non-empty; all vertices on
    the sublattice of [dtype]; consecutive vertices differ by exactly 2 on
    exactly one axis; a closed path also steps from last back to first. *)
val valid_path :
  dtype:defect_type -> closed:bool -> Tqec_util.Vec3.t list -> bool

(** [vertices d] is the vertex list. *)
val vertices : t -> Tqec_util.Vec3.t list

(** [cells d] is the set of paper unit cells touched, deduplicated. *)
val cells : t -> Tqec_util.Vec3.t list

(** [cell_of_vertex v] maps a doubled-lattice vertex to its unit cell. *)
val cell_of_vertex : Tqec_util.Vec3.t -> Tqec_util.Vec3.t

(** [length d] is the number of unit steps. *)
val length : t -> int

(** [straight ~id ~structure ~dtype a b] builds a straight strand from
    [a] to [b] (must share two coordinates). *)
val straight :
  id:int ->
  structure:int ->
  dtype:defect_type ->
  Tqec_util.Vec3.t ->
  Tqec_util.Vec3.t ->
  t

(** [loop_of_corners ~id ~structure ~dtype corners] builds a closed loop
    from a corner list: consecutive corners (and last back to first) must
    be axis-aligned; the runs are expanded to unit steps.
    @raise Invalid_argument on non-axis-aligned corners or degenerate
    (self-overlapping) loops. *)
val loop_of_corners :
  id:int ->
  structure:int ->
  dtype:defect_type ->
  Tqec_util.Vec3.t list ->
  t

(** [rectangle ~id ~structure ~dtype ~plane ~at corner_lo corner_hi]
    builds a closed rectangular loop in the given axis [plane]
    ([`Xy] | [`Xz] | [`Yz]) at fixed third coordinate [at]. The corners
    are 2D (doubled) coordinates in the plane's axis order. *)
val rectangle :
  id:int ->
  structure:int ->
  dtype:defect_type ->
  plane:[ `Xy | `Xz | `Yz ] ->
  at:int ->
  int * int ->
  int * int ->
  t

val pp : Format.formatter -> t -> unit
