(** ASCII rendering of small geometric descriptions, one grid per z layer
    of unit cells.  Primal cells print ['P'], dual cells ['D'], cells
    holding both ['*'], distillation boxes ['Y'] / ['A'], empty ['.']. *)

(** [layers g] renders every z layer, annotated with layer indices.
    Returns [""] for empty geometry. *)
val layers : Geometry.t -> string

(** [layer g ~z] renders one z layer of unit cells. *)
val layer : Geometry.t -> z:int -> string

(** [summary g] is a one-line description: defect/strand counts, bbox,
    volume. *)
val summary : Geometry.t -> string
