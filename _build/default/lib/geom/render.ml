module Vec3 = Tqec_util.Vec3
module Box3 = Tqec_util.Box3

type cell_content = {
  mutable primal : bool;
  mutable dual : bool;
  mutable box : Geometry.box_kind option;
}

let cell_map g =
  let tbl : (Vec3.t, cell_content) Hashtbl.t = Hashtbl.create 256 in
  let content c =
    match Hashtbl.find_opt tbl c with
    | Some x -> x
    | None ->
        let x = { primal = false; dual = false; box = None } in
        Hashtbl.add tbl c x;
        x
  in
  List.iter
    (fun (d : Defect.t) ->
      List.iter
        (fun c ->
          let x = content c in
          match d.dtype with
          | Defect.Primal -> x.primal <- true
          | Defect.Dual -> x.dual <- true)
        (Defect.cells d))
    g.Geometry.defects;
  List.iter
    (fun (b : Geometry.distill_box) ->
      List.iter
        (fun c -> (content c).box <- Some b.b_kind)
        (Box3.cells b.b_box))
    g.Geometry.boxes;
  tbl

let char_of = function
  | { box = Some Geometry.Y_box; _ } -> 'Y'
  | { box = Some Geometry.A_box; _ } -> 'A'
  | { primal = true; dual = true; _ } -> '*'
  | { primal = true; _ } -> 'P'
  | { dual = true; _ } -> 'D'
  | _ -> '.'

let render_layer tbl (bb : Box3.t) z =
  let buf = Buffer.create 256 in
  for y = bb.Box3.lo.Vec3.y to bb.Box3.hi.Vec3.y do
    for x = bb.Box3.lo.Vec3.x to bb.Box3.hi.Vec3.x do
      let c =
        match Hashtbl.find_opt tbl (Vec3.make x y z) with
        | Some content -> char_of content
        | None -> '.'
      in
      Buffer.add_char buf c
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let layer g ~z =
  match Geometry.bbox g with
  | None -> ""
  | Some bb -> render_layer (cell_map g) bb z

let layers g =
  match Geometry.bbox g with
  | None -> ""
  | Some bb ->
      let tbl = cell_map g in
      let buf = Buffer.create 1024 in
      for z = bb.Box3.lo.Vec3.z to bb.Box3.hi.Vec3.z do
        Buffer.add_string buf (Printf.sprintf "-- z = %d --\n" z);
        Buffer.add_string buf (render_layer tbl bb z)
      done;
      Buffer.contents buf

let summary g =
  let n_primal =
    List.length
      (List.filter (fun (d : Defect.t) -> d.dtype = Defect.Primal) g.Geometry.defects)
  in
  let n_dual = List.length g.Geometry.defects - n_primal in
  match Geometry.bbox g with
  | None -> Printf.sprintf "%s: empty" g.Geometry.name
  | Some bb ->
      Printf.sprintf "%s: %d primal + %d dual strands, %d boxes, %dx%dx%d = %d cells"
        g.Geometry.name n_primal n_dual
        (List.length g.Geometry.boxes)
        (Box3.dx bb) (Box3.dy bb) (Box3.dz bb) (Box3.volume bb)
