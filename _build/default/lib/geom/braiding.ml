module Vec3 = Tqec_util.Vec3
module Interval = Tqec_util.Interval

type hole = {
  axis : [ `X | `Y | `Z ];
  at : int;
  u : Interval.t;
  v : Interval.t;
}

let coords axis (p : Vec3.t) =
  match axis with
  | `X -> (p.x, p.y, p.z)
  | `Y -> (p.y, p.x, p.z)
  | `Z -> (p.z, p.x, p.y)

let closed_segments (d : Defect.t) =
  if not d.closed then invalid_arg "Braiding: defect must be closed";
  match d.path with
  | [] | [ _ ] -> []
  | first :: _ ->
      let rec pair = function
        | a :: (b :: _ as rest) -> (a, b) :: pair rest
        | [ last ] -> [ (last, first) ]
        | [] -> []
      in
      pair d.path

let crossings d ~axis ~at =
  List.filter_map
    (fun (a, b) ->
      let na, ua, va = coords axis a in
      let nb, ub, vb = coords axis b in
      if min na nb < at && at < max na nb then begin
        (* axis-aligned step: the transverse coordinates agree *)
        assert (ua = ub && va = vb);
        Some ((ua, va), if nb > na then 1 else -1)
      end
      else None)
    (closed_segments d)

let linking d hole =
  let inside (u, v) =
    u > hole.u.Interval.lo && u < hole.u.Interval.hi && v > hole.v.Interval.lo
    && v < hole.v.Interval.hi
  in
  List.fold_left
    (fun acc (pos, sign) -> if inside pos then acc + sign else acc)
    0
    (crossings d ~axis:hole.axis ~at:hole.at)

let links d hole = linking d hole <> 0
