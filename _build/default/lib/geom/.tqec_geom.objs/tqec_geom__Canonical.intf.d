lib/geom/canonical.mli: Braiding Geometry Tqec_icm
