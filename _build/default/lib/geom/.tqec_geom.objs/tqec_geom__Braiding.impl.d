lib/geom/braiding.ml: Defect List Tqec_util
