lib/geom/export.mli: Geometry
