lib/geom/render.mli: Geometry
