lib/geom/render.ml: Buffer Defect Geometry Hashtbl List Printf Tqec_util
