lib/geom/geometry.mli: Defect Format Tqec_util
