lib/geom/defect.mli: Format Tqec_util
