lib/geom/canonical.ml: Array Braiding Defect Geometry Tqec_icm Tqec_util
