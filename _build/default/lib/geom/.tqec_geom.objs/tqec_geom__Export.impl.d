lib/geom/export.ml: Buffer Defect Geometry List Printf Tqec_util
