lib/geom/braiding.mli: Defect Tqec_util
