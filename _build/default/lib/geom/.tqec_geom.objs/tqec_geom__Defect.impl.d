lib/geom/defect.ml: Format Hashtbl List Tqec_util
