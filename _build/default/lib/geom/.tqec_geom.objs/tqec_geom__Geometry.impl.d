lib/geom/geometry.ml: Defect Format Hashtbl Int List Tqec_util
