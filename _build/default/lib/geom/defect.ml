module Vec3 = Tqec_util.Vec3

type defect_type = Primal | Dual

type t = {
  id : int;
  structure : int;
  dtype : defect_type;
  path : Vec3.t list;
  closed : bool;
}

let on_sublattice dtype (v : Vec3.t) =
  let parity = match dtype with Primal -> 0 | Dual -> 1 in
  (v.x land 1) = parity && (v.y land 1) = parity && (v.z land 1) = parity

let unit_step (a : Vec3.t) (b : Vec3.t) =
  let dx = abs (a.x - b.x) and dy = abs (a.y - b.y) and dz = abs (a.z - b.z) in
  (dx = 2 && dy = 0 && dz = 0)
  || (dx = 0 && dy = 2 && dz = 0)
  || (dx = 0 && dy = 0 && dz = 2)

let valid_path ~dtype ~closed path =
  match path with
  | [] -> false
  | [ v ] -> on_sublattice dtype v && not closed
  | first :: _ ->
      let rec steps_ok = function
        | a :: b :: rest -> unit_step a b && steps_ok (b :: rest)
        | [ last ] -> (not closed) || unit_step last first
        | [] -> true
      in
      List.for_all (on_sublattice dtype) path && steps_ok path

let make ~id ~structure ~dtype ~closed path =
  if not (valid_path ~dtype ~closed path) then
    invalid_arg "Defect.make: malformed path";
  { id; structure; dtype; path; closed }

let vertices d = d.path

(* floor division that handles negatives *)
let fdiv2 c = if c >= 0 then c / 2 else (c - 1) / 2

let cell_of_vertex (v : Vec3.t) = Vec3.make (fdiv2 v.x) (fdiv2 v.y) (fdiv2 v.z)

let cells d =
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun v ->
      let c = cell_of_vertex v in
      if Hashtbl.mem seen c then None
      else begin
        Hashtbl.add seen c ();
        Some c
      end)
    d.path

let length d =
  let n = List.length d.path in
  if n <= 1 then 0 else if d.closed then n else n - 1

let range2 a b = if a <= b then List.init (((b - a) / 2) + 1) (fun i -> a + (2 * i))
  else List.init (((a - b) / 2) + 1) (fun i -> a - (2 * i))

let straight ~id ~structure ~dtype (a : Vec3.t) (b : Vec3.t) =
  let path =
    if a.y = b.y && a.z = b.z then
      List.map (fun x -> Vec3.make x a.y a.z) (range2 a.x b.x)
    else if a.x = b.x && a.z = b.z then
      List.map (fun y -> Vec3.make a.x y a.z) (range2 a.y b.y)
    else if a.x = b.x && a.y = b.y then
      List.map (fun z -> Vec3.make a.x a.y z) (range2 a.z b.z)
    else invalid_arg "Defect.straight: endpoints not axis-aligned"
  in
  make ~id ~structure ~dtype ~closed:false path

let axis_run (a : Vec3.t) (b : Vec3.t) =
  if a.y = b.y && a.z = b.z then
    List.map (fun x -> Vec3.make x a.y a.z) (range2 a.x b.x)
  else if a.x = b.x && a.z = b.z then
    List.map (fun y -> Vec3.make a.x y a.z) (range2 a.y b.y)
  else if a.x = b.x && a.y = b.y then
    List.map (fun z -> Vec3.make a.x a.y z) (range2 a.z b.z)
  else invalid_arg "Defect: corners not axis-aligned"

let loop_of_corners ~id ~structure ~dtype corners =
  match corners with
  | [] | [ _ ] | [ _; _ ] -> invalid_arg "Defect.loop_of_corners: too few corners"
  | first :: _ ->
      let rec walk acc = function
        | a :: (b :: _ as rest) ->
            let run = axis_run a b in
            let run = match acc with [] -> run | _ -> List.tl run in
            walk (acc @ run) rest
        | [ last ] ->
            let run = axis_run last first in
            (* drop both endpoints: last is in acc, first closes the loop *)
            let middle =
              match run with
              | [] | [ _ ] -> []
              | _ :: rest -> List.filteri (fun i _ -> i < List.length rest - 1) rest
            in
            acc @ middle
        | [] -> acc
      in
      let path = walk [] corners in
      (* reject self-overlapping loops *)
      let seen = Hashtbl.create 16 in
      List.iter
        (fun v ->
          if Hashtbl.mem seen v then
            invalid_arg "Defect.loop_of_corners: self-overlapping loop";
          Hashtbl.add seen v ())
        path;
      make ~id ~structure ~dtype ~closed:true path

let rectangle ~id ~structure ~dtype ~plane ~at (a1, a2) (b1, b2) =
  let lo1 = min a1 b1 and hi1 = max a1 b1 in
  let lo2 = min a2 b2 and hi2 = max a2 b2 in
  if lo1 = hi1 || lo2 = hi2 then
    invalid_arg "Defect.rectangle: degenerate rectangle";
  let embed (u, v) =
    match plane with
    | `Xy -> Vec3.make u v at
    | `Xz -> Vec3.make u at v
    | `Yz -> Vec3.make at u v
  in
  let side1 = List.map (fun u -> (u, lo2)) (range2 lo1 hi1) in
  let side2 = List.map (fun v -> (hi1, v)) (range2 (lo2 + 2) hi2) in
  let side3 = List.map (fun u -> (u, hi2)) (range2 (hi1 - 2) lo1) in
  let side4 =
    if hi2 - 2 < lo2 + 2 then []
    else List.map (fun v -> (lo1, v)) (range2 (hi2 - 2) (lo2 + 2))
  in
  let path = List.map embed (side1 @ side2 @ side3 @ side4) in
  make ~id ~structure ~dtype ~closed:true path

let pp ppf d =
  Format.fprintf ppf "%s strand %d (structure %d, %s, %d vertices)"
    (match d.dtype with Primal -> "primal" | Dual -> "dual")
    d.id d.structure
    (if d.closed then "closed" else "open")
    (List.length d.path)
