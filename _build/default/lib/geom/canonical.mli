(** Canonical geometric description of an ICM circuit (paper Fig. 1(b)).

    Every ICM line that participates in at least one CNOT becomes a
    horizontal primal rail pair (a closed rectangle loop in the (x,z)
    plane) spanning the full time axis; CNOT [k] becomes a dual ring in
    the slab of 3 time units starting at [3k], threading the control
    row's rail loop and the target row's rail loop and no other.

    Volume convention: the canonical space-time volume is
    [3 * #CNOTs * rows * 2] with the distillation-box volumes
    (18 per |Y>, 192 per |A>) added separately, exactly the accounting of
    the paper's Table 2.  The doubled-lattice geometry built here is used
    for braiding verification and rendering; its bounding box is allowed
    to exceed the nominal volume by the dual rings' half-cell excursions
    (at most one cell on y and z). *)

type info = {
  row_of_line : int array;  (** ICM line -> row index; [-1] if unused *)
  n_rows : int;
  n_cnots : int;
  ring_x : int array;  (** doubled x coordinate of each CNOT's ring *)
}

(** [build icm] constructs the canonical geometry (without distillation
    boxes, which the canonical convention accounts separately). *)
val build : Tqec_icm.Icm.t -> Geometry.t * info

(** [hole info row] is the rail-loop hole of [row] for linking tests. *)
val hole : info -> int -> Braiding.hole

(** [volume icm] is the canonical space-time volume including separate
    distillation boxes — exact for every row of the paper's Table 2. *)
val volume : Tqec_icm.Icm.t -> int

(** [defect_volume icm] is the volume without distillation boxes. *)
val defect_volume : Tqec_icm.Icm.t -> int

(** [used_rows icm] counts ICM lines touched by at least one CNOT. *)
val used_rows : Tqec_icm.Icm.t -> int
