module Vec3 = Tqec_util.Vec3
module Box3 = Tqec_util.Box3

(* Emit one axis-aligned cuboid, returning the next free vertex index.
   OBJ vertex indices are global and 1-based. *)
let cuboid buf ~index (x0, y0, z0) (x1, y1, z1) =
  Buffer.add_string buf
    (Printf.sprintf
       "v %g %g %g\nv %g %g %g\nv %g %g %g\nv %g %g %g\nv %g %g %g\nv %g %g \
        %g\nv %g %g %g\nv %g %g %g\n"
       x0 y0 z0 x1 y0 z0 x1 y1 z0 x0 y1 z0 x0 y0 z1 x1 y0 z1 x1 y1 z1 x0 y1 z1);
  let f a b c d =
    Buffer.add_string buf
      (Printf.sprintf "f %d %d %d %d\n" (index + a) (index + b) (index + c)
         (index + d))
  in
  f 0 1 2 3;
  f 4 5 6 7;
  f 0 1 5 4;
  f 2 3 7 6;
  f 1 2 6 5;
  f 0 3 7 4;
  index + 8

let to_obj (g : Geometry.t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "# tqec geometric description\n";
  let index = ref 1 in
  let strand_half = 0.3 in
  List.iter
    (fun (d : Defect.t) ->
      let kind =
        match d.dtype with Defect.Primal -> "primal" | Defect.Dual -> "dual"
      in
      Buffer.add_string buf (Printf.sprintf "g %s_%d\n" kind d.structure);
      List.iter
        (fun (v : Vec3.t) ->
          let x = float_of_int v.x /. 2.
          and y = float_of_int v.y /. 2.
          and z = float_of_int v.z /. 2. in
          index :=
            cuboid buf ~index:!index
              (x -. strand_half, y -. strand_half, z -. strand_half)
              (x +. strand_half, y +. strand_half, z +. strand_half))
        d.path)
    g.Geometry.defects;
  List.iteri
    (fun i (b : Geometry.distill_box) ->
      let kind = match b.b_kind with Geometry.Y_box -> "Y" | Geometry.A_box -> "A" in
      Buffer.add_string buf (Printf.sprintf "g box_%s_%d\n" kind i);
      let lo = b.b_box.Box3.lo and hi = b.b_box.Box3.hi in
      index :=
        cuboid buf ~index:!index
          (float_of_int lo.Vec3.x, float_of_int lo.Vec3.y, float_of_int lo.Vec3.z)
          ( float_of_int (hi.Vec3.x + 1),
            float_of_int (hi.Vec3.y + 1),
            float_of_int (hi.Vec3.z + 1) ))
    g.Geometry.boxes;
  Buffer.contents buf

let write_obj path g =
  let oc = open_out path in
  output_string oc (to_obj g);
  close_out oc
