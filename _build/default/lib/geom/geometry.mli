(** A geometric description: defect strands plus distillation boxes.

    Volume accounting follows the paper's convention: the space-time
    volume of a description is [#x * #y * #z] counted in unit cells of
    its bounding box (boxes included when they are placed inside the
    diagram; the canonical baseline instead adds box volumes separately,
    as in Table 2 of the paper). *)

type box_kind = Y_box  (** 3 x 3 x 2 *) | A_box  (** 16 x 6 x 2 *)

type distill_box = {
  b_kind : box_kind;
  b_box : Tqec_util.Box3.t;  (** in unit cells *)
}

type t = {
  name : string;
  defects : Defect.t list;
  boxes : distill_box list;
}

val empty : string -> t

val add_defect : t -> Defect.t -> t

val add_box : t -> distill_box -> t

(** [y_box_dims] = (3,3,2); [a_box_dims] = (16,6,2); volumes 18 / 192. *)
val y_box_dims : int * int * int

val a_box_dims : int * int * int

val box_volume : box_kind -> int

(** [box_at kind cell] makes a distillation box with its low corner at
    the given unit cell. *)
val box_at : box_kind -> Tqec_util.Vec3.t -> distill_box

(** [cells g] is all unit cells touched by defects or boxes. *)
val cells : t -> Tqec_util.Vec3.t list

(** [bbox g] is the bounding box in unit cells; [None] when empty. *)
val bbox : t -> Tqec_util.Box3.t option

(** [volume g] is the paper volume: cell count of [bbox g] (0 if empty). *)
val volume : t -> int

(** [total_box_volume g] sums the nominal volumes of the distillation
    boxes (18 per Y, 192 per A), for canonical-style accounting. *)
val total_box_volume : t -> int

type issue =
  | Malformed_strand of int
  | Same_type_structure_overlap of { a : int; b : int; at : Tqec_util.Vec3.t }
      (** two distinct same-type structures share a doubled-lattice
          vertex: disjoint defects must stay one unit apart *)
  | Box_overlap of int * int

val pp_issue : Format.formatter -> issue -> unit

(** [check g] returns all violations of the geometric rules. *)
val check : t -> issue list

val is_valid : t -> bool

(** [structures g dtype] groups strand ids by structure id. *)
val structures : t -> Defect.defect_type -> (int * Defect.t list) list
