module Icm = Tqec_icm.Icm
module Vec3 = Tqec_util.Vec3
module Interval = Tqec_util.Interval

type info = {
  row_of_line : int array;
  n_rows : int;
  n_cnots : int;
  ring_x : int array;
}

let used_lines (icm : Icm.t) =
  let used = Array.make icm.n_lines false in
  Array.iter
    (fun ({ control; target } : Icm.cnot) ->
      used.(control) <- true;
      used.(target) <- true)
    icm.cnots;
  used

let used_rows icm =
  Array.fold_left (fun acc u -> if u then acc + 1 else acc) 0 (used_lines icm)

let layout (icm : Icm.t) =
  let used = used_lines icm in
  let row_of_line = Array.make icm.n_lines (-1) in
  let next = ref 0 in
  Array.iteri
    (fun line u ->
      if u then begin
        row_of_line.(line) <- !next;
        incr next
      end)
    used;
  let n_cnots = Array.length icm.cnots in
  {
    row_of_line;
    n_rows = !next;
    n_cnots;
    ring_x = Array.init n_cnots (fun k -> (6 * k) + 3);
  }

(* Dual ring threading rows [a] and [b] (doubled y of the two rails) at
   doubled x position [x].  Crossings happen at z = 1 (inside the rail
   loops' holes); return paths run at z = 3 (outside). *)
let ring ~id ~structure ~x ya yb =
  let a = min ya yb and b = max ya yb in
  let v y z = Vec3.make x y z in
  let v' y z = Vec3.make (x + 2) y z in
  let path =
    if b = a + 2 then
      (* adjacent rows: one planar hexagon crossing both holes at z = 1 *)
      [ v (a - 1) 1; v (a + 1) 1; v (b + 1) 1; v (b + 1) 3; v (a + 1) 3;
        v (a - 1) 3 ]
    else
      (* distant rows: cross each hole at z = 1 in the plane x; dodge the
         intermediate rows at z = 3, returning through the plane x + 2 so
         the outbound and return runs never overlap *)
      [ v (a - 1) 1; v (a + 1) 1; v (a + 1) 3; v (b - 1) 3; v (b - 1) 1;
        v (b + 1) 1; v (b + 1) 3; v' (b + 1) 3; v' (a - 1) 3; v (a - 1) 3 ]
  in
  Defect.loop_of_corners ~id ~structure ~dtype:Defect.Dual path

let build (icm : Icm.t) =
  let info = layout icm in
  let xmax = max 2 ((6 * info.n_cnots) - 2) in
  let g = ref (Geometry.empty icm.name) in
  (* Primal rail loops, one per used row. *)
  Array.iteri
    (fun line row ->
      ignore line;
      if row >= 0 then
        let loop =
          Defect.rectangle ~id:row ~structure:row ~dtype:Defect.Primal
            ~plane:`Xz ~at:(2 * row) (0, 0) (xmax, 2)
        in
        g := Geometry.add_defect !g loop)
    info.row_of_line;
  (* Dual rings. *)
  Array.iteri
    (fun k ({ control; target } : Icm.cnot) ->
      let rc = info.row_of_line.(control) and rt = info.row_of_line.(target) in
      assert (rc >= 0 && rt >= 0 && rc <> rt);
      let d =
        ring ~id:(info.n_rows + k) ~structure:(info.n_rows + k)
          ~x:info.ring_x.(k) (2 * rc) (2 * rt)
      in
      g := Geometry.add_defect !g d)
    icm.cnots;
  (!g, info)

let hole info row =
  if row < 0 || row >= info.n_rows then invalid_arg "Canonical.hole: bad row";
  let xmax = max 2 ((6 * info.n_cnots) - 2) in
  {
    Braiding.axis = `Y;
    at = 2 * row;
    u = Interval.make 0 xmax;
    v = Interval.make 0 2;
  }

let defect_volume icm =
  let rows = used_rows icm in
  3 * Array.length icm.cnots * rows * 2

let volume icm =
  let s = Icm.stats icm in
  defect_volume icm
  + (Geometry.box_volume Geometry.Y_box * s.Icm.s_y)
  + (Geometry.box_volume Geometry.A_box * s.Icm.s_a)
