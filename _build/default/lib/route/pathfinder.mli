(** Negotiation-based rip-up and re-route (PathFinder, McMurchie &
    Ebeling FPGA'95), the paper's dual-defect net routing stage.

    Every iteration re-routes each multi-pin net with A* inside a
    restricted region (the net's pin bounding box plus a margin that
    grows on failure), building the net as a Steiner tree: pins connect
    one at a time to the growing tree.  After an iteration, cells used
    beyond capacity receive history cost and the congestion penalty
    grows; the loop ends when no cell is overused or the iteration
    budget is exhausted. *)

type net = { net_id : int; pins : Tqec_util.Vec3.t list }

type config = {
  max_iterations : int;
  initial_penalty : int;
  penalty_growth : int;  (** added to the penalty each iteration *)
  history_increment : int;
  region_margin : int;
}

val default_config : config

type routed = {
  r_net : int;
  r_cells : Tqec_util.Vec3.t list;  (** all cells of the net's tree *)
}

type result = {
  routes : routed list;
  success : bool;  (** true when nothing is overused and all nets routed *)
  iterations_used : int;
  overused_after : int;
  unrouted : int list;  (** nets with unreachable pins, if any *)
}

(** [route_all grid config nets] routes every net; [grid] retains the
    final usage state. Nets with fewer than 2 distinct pins route
    trivially to their pin set. *)
val route_all : Grid.t -> config -> net list -> result

(** [validate grid result nets] checks that every routed net's cell set
    is connected and touches all its pins; returns error strings. *)
val validate : Grid.t -> result -> net list -> string list
