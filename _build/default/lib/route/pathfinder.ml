module Vec3 = Tqec_util.Vec3
module Box3 = Tqec_util.Box3

type net = { net_id : int; pins : Vec3.t list }

type config = {
  max_iterations : int;
  initial_penalty : int;
  penalty_growth : int;
  history_increment : int;
  region_margin : int;
}

let default_config =
  {
    max_iterations = 40;
    initial_penalty = 6;
    penalty_growth = 4;
    history_increment = 2;
    region_margin = 3;
  }

let debug = Sys.getenv_opt "TQEC_DEBUG" <> None

type routed = { r_net : int; r_cells : Vec3.t list }

type result = {
  routes : routed list;
  success : bool;
  iterations_used : int;
  overused_after : int;
  unrouted : int list;
}

let dedup_cells cells =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun c ->
      if Hashtbl.mem seen c then false
      else begin
        Hashtbl.add seen c ();
        true
      end)
    cells

(* Route one net as a Steiner tree; returns its cell set (or None when a
   pin is unreachable even with the widest region). *)
let route_net ?(avoid_used = false) grid ~penalty ~margin (n : net) =
  match dedup_cells n.pins with
  | [] -> Some []
  | first :: rest ->
      let tree = ref [ first ] in
      let tree_set = Hashtbl.create 64 in
      Hashtbl.replace tree_set first ();
      let add_cells cells =
        List.iter
          (fun c ->
            if not (Hashtbl.mem tree_set c) then begin
              Hashtbl.replace tree_set c ();
              tree := c :: !tree
            end)
          cells
      in
      (* Prim order: each pin keeps its distance to the growing tree,
         refreshed lazily; always connect the nearest remaining pin. *)
      let remaining = ref (List.map (fun p -> (Vec3.manhattan first p, p)) rest) in
      let dist_to_tree p =
        List.fold_left (fun acc c -> min acc (Vec3.manhattan c p)) max_int !tree
      in
      let connect pin =
        if Hashtbl.mem tree_set pin then true
        else begin
          (* restrict the search to the corridor between the pin and the
             nearest point of the tree, widening on failure *)
          let nearest =
            List.fold_left
              (fun best c ->
                if Vec3.manhattan c pin < Vec3.manhattan best pin then c
                else best)
              (List.hd !tree) !tree
          in
          let corridor = Box3.bounding [ pin; nearest ] in
          let try_region region =
            Astar.search ~avoid_used grid ~region ~penalty ~sources:!tree
              ~target:pin
          in
          let attempt =
            match try_region (Box3.inflate margin corridor) with
            | Some p -> Some p
            | None -> (
                match try_region (Box3.inflate (4 * margin) corridor) with
                | Some p -> Some p
                | None -> try_region (Grid.box grid))
          in
          match attempt with
          | Some path ->
              add_cells path;
              true
          | None -> false
        end
      in
      let ok = ref true in
      while !ok && !remaining <> [] do
        (* refresh distances and pick the closest pin *)
        let refreshed =
          List.map (fun (_, p) -> (dist_to_tree p, p)) !remaining
        in
        let (_, pin), rest' =
          match List.sort compare refreshed with
          | best :: others -> (best, others)
          | [] -> assert false
        in
        remaining := rest';
        ok := connect pin
      done;
      if !ok then Some (List.rev !tree) else None

let route_all grid config nets =
  let routes : (int, Vec3.t list) Hashtbl.t = Hashtbl.create 64 in
  let rip_up net_id =
    match Hashtbl.find_opt routes net_id with
    | None -> ()
    | Some cells ->
        List.iter (fun c -> Grid.add_usage grid c (-1)) cells;
        Hashtbl.remove routes net_id
  in
  let claim net_id cells =
    List.iter (fun c -> Grid.add_usage grid c 1) cells;
    Hashtbl.replace routes net_id cells
  in
  let unrouted = ref [] in
  let iterations_used = ref 0 in
  let finished = ref false in
  let penalty = ref config.initial_penalty in
  (* biggest nets first: they have the least routing freedom *)
  let nets =
    List.stable_sort
      (fun a b -> Int.compare (List.length b.pins) (List.length a.pins))
      nets
  in
  let route_set = ref nets in
  while (not !finished) && !iterations_used < config.max_iterations do
    incr iterations_used;
    let still_unrouted = ref [] in
    List.iter
      (fun n ->
        rip_up n.net_id;
        match route_net grid ~penalty:!penalty ~margin:config.region_margin n with
        | Some cells -> claim n.net_id cells
        | None -> still_unrouted := n.net_id :: !still_unrouted)
      !route_set;
    unrouted := !still_unrouted;
    let overused = Grid.overused grid in
    if debug then
      Printf.eprintf "[pathfinder] iter=%d rerouted=%d overused=%d\n%!"
        !iterations_used (List.length !route_set) (List.length overused);
    if overused = [] && !unrouted = [] then finished := true
    else begin
      List.iter
        (fun c -> Grid.add_history grid c config.history_increment)
        overused;
      penalty := !penalty + config.penalty_growth;
      (* negotiate only where it matters: re-route just the nets that
         cross an overused cell (plus any still-unrouted net) *)
      let hot = Hashtbl.create 64 in
      List.iter (fun c -> Hashtbl.replace hot c ()) overused;
      route_set :=
        List.filter
          (fun n ->
            List.mem n.net_id !unrouted
            ||
            match Hashtbl.find_opt routes n.net_id with
            | Some cells -> List.exists (Hashtbl.mem hot) cells
            | None -> true)
          nets
    end
  done;
  (* Endgame cleanup: negotiation can oscillate between net pairs on a
     handful of cells.  Resolve each residual conflict deterministically:
     hard-block the contested cells and reroute the smallest involved
     net around them (restoring its old route if that fails). *)
  let cleanup_rounds = ref 0 in
  let rec cleanup () =
    incr cleanup_rounds;
    let overused = Grid.overused grid in
    if overused <> [] && !cleanup_rounds <= 8 then begin
      let hot = Hashtbl.create 16 in
      List.iter (fun c -> Hashtbl.replace hot c ()) overused;
      let involved =
        List.filter
          (fun n ->
            match Hashtbl.find_opt routes n.net_id with
            | Some cells -> List.exists (Hashtbl.mem hot) cells
            | None -> false)
          nets
        |> List.sort (fun a b ->
               Int.compare (List.length a.pins) (List.length b.pins))
      in
      let progressed = ref false in
      let rec try_victims = function
        | [] -> ()
        | victim :: others -> (
            let old = Hashtbl.find routes victim.net_id in
            rip_up victim.net_id;
            match
              route_net ~avoid_used:true grid ~penalty:!penalty
                ~margin:config.region_margin victim
            with
            | Some cells ->
                claim victim.net_id cells;
                progressed := true
            | None ->
                claim victim.net_id old;
                try_victims others)
      in
      try_victims involved;
      if !progressed then cleanup ()
    end
  in
  cleanup ();
  let final_overused = Grid.overused grid in
  if debug then
    List.iter
      (fun c ->
        let users =
          List.filter_map
            (fun n ->
              match Hashtbl.find_opt routes n.net_id with
              | Some cells when List.exists (Vec3.equal c) cells ->
                  Some (Printf.sprintf "%d(pins=%d)" n.net_id (List.length n.pins))
              | _ -> None)
            nets
        in
        Printf.eprintf "[pathfinder] stuck %s usage=%d obst-nbrs=%d users=%s\n%!"
          (Vec3.to_string c) (Grid.usage grid c)
          (List.length (List.filter (Grid.is_obstacle grid) (Vec3.axis_neighbors c)))
          (String.concat "," users))
      final_overused;
  let overused_after = List.length final_overused in
  {
    routes =
      List.filter_map
        (fun n ->
          Hashtbl.find_opt routes n.net_id
          |> Option.map (fun cells -> { r_net = n.net_id; r_cells = cells }))
        nets;
    success = overused_after = 0 && !unrouted = [];
    iterations_used = !iterations_used;
    overused_after;
    unrouted = List.rev !unrouted;
  }

let validate _grid result nets =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  let by_id = Hashtbl.create 16 in
  List.iter (fun r -> Hashtbl.replace by_id r.r_net r.r_cells) result.routes;
  List.iter
    (fun n ->
      match Hashtbl.find_opt by_id n.net_id with
      | None ->
          if not (List.mem n.net_id result.unrouted) then
            err "net %d missing from routes" n.net_id
      | Some cells ->
          let cell_set = Hashtbl.create 64 in
          List.iter (fun c -> Hashtbl.replace cell_set c ()) cells;
          List.iter
            (fun pin ->
              if not (Hashtbl.mem cell_set pin) then
                err "net %d does not reach pin %s" n.net_id (Vec3.to_string pin))
            (dedup_cells n.pins);
          (* connectivity by BFS over the cell set *)
          (match cells with
          | [] -> ()
          | start :: _ ->
              let visited = Hashtbl.create 64 in
              let queue = Queue.create () in
              Queue.add start queue;
              Hashtbl.replace visited start ();
              while not (Queue.is_empty queue) do
                let p = Queue.pop queue in
                List.iter
                  (fun q ->
                    if Hashtbl.mem cell_set q && not (Hashtbl.mem visited q)
                    then begin
                      Hashtbl.replace visited q ();
                      Queue.add q queue
                    end)
                  (Vec3.axis_neighbors p)
              done;
              if Hashtbl.length visited <> List.length cells then
                err "net %d cells disconnected" n.net_id))
    nets;
  List.rev !errors
