lib/route/astar.mli: Grid Tqec_util
