lib/route/pathfinder.ml: Astar Grid Hashtbl Int List Option Printf Queue String Sys Tqec_util
