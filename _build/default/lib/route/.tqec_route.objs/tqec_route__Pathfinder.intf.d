lib/route/pathfinder.mli: Grid Tqec_util
