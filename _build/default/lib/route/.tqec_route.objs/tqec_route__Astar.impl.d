lib/route/astar.ml: Array Grid Hashtbl List Tqec_util
