lib/route/grid.ml: Array Bytes List Printf Tqec_util
