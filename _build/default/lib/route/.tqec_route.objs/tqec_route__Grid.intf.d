lib/route/grid.mli: Tqec_util
