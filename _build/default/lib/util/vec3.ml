type t = { x : int; y : int; z : int }

let make x y z = { x; y; z }
let zero = { x = 0; y = 0; z = 0 }
let add a b = { x = a.x + b.x; y = a.y + b.y; z = a.z + b.z }
let sub a b = { x = a.x - b.x; y = a.y - b.y; z = a.z - b.z }
let neg a = { x = -a.x; y = -a.y; z = -a.z }
let scale k a = { x = (k * a.x); y = (k * a.y); z = (k * a.z) }
let dot a b = (a.x * b.x) + (a.y * b.y) + (a.z * b.z)
let manhattan a b = abs (a.x - b.x) + abs (a.y - b.y) + abs (a.z - b.z)
let linf a b = max (abs (a.x - b.x)) (max (abs (a.y - b.y)) (abs (a.z - b.z)))
let equal a b = a.x = b.x && a.y = b.y && a.z = b.z

let compare a b =
  let c = Int.compare a.x b.x in
  if c <> 0 then c
  else
    let c = Int.compare a.y b.y in
    if c <> 0 then c else Int.compare a.z b.z

let hash { x; y; z } = (x * 73856093) lxor (y * 19349663) lxor (z * 83492791)

let axis_neighbors p =
  [
    { p with x = p.x + 1 };
    { p with x = p.x - 1 };
    { p with y = p.y + 1 };
    { p with y = p.y - 1 };
    { p with z = p.z + 1 };
    { p with z = p.z - 1 };
  ]

let min_pointwise a b = { x = min a.x b.x; y = min a.y b.y; z = min a.z b.z }
let max_pointwise a b = { x = max a.x b.x; y = max a.y b.y; z = max a.z b.z }
let pp ppf { x; y; z } = Format.fprintf ppf "(%d,%d,%d)" x y z
let to_string v = Format.asprintf "%a" pp v
