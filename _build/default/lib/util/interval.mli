(** Closed integer intervals, used for channel conflict tests in the Lin
    et al. baseline scheduler and for time windows of measurement-order
    constraints. *)

type t = { lo : int; hi : int }

(** [make a b] normalises the endpoints. *)
val make : int -> int -> t

val length : t -> int

val contains : t -> int -> bool

(** [overlap a b] is true when the closed intervals intersect. *)
val overlap : t -> t -> bool

(** [touches a b] is true when the intervals intersect or are adjacent
    (distance <= 1), the "one-unit separation" rule for disjoint defects. *)
val touches : t -> t -> bool

val join : t -> t -> t

val inter : t -> t -> t option

val equal : t -> t -> bool

val compare : t -> t -> int

val pp : Format.formatter -> t -> unit
