(** Mutable binary min-heap keyed by integer priorities.

    The A* router and the PathFinder wavefronts push the same element more
    than once with decreasing keys instead of performing decrease-key; the
    consumer skips stale pops, which is the standard trick for grid
    routing. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> int -> 'a -> unit

(** [pop t] removes and returns the (key, value) pair with the smallest
    key; ties are broken by insertion order (FIFO), keeping searches
    deterministic. @raise Not_found when empty. *)
val pop : 'a t -> int * 'a

(** [peek t] is [pop] without removal. @raise Not_found when empty. *)
val peek : 'a t -> int * 'a

val clear : 'a t -> unit
