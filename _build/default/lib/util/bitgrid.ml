type t = {
  box : Box3.t;
  nx : int;
  ny : int;
  nz : int;
  data : Bytes.t;
}

let create box =
  let nx = Box3.dx box and ny = Box3.dy box and nz = Box3.dz box in
  let bits = nx * ny * nz in
  { box; nx; ny; nz; data = Bytes.make ((bits + 7) / 8) '\000' }

let box g = g.box

let in_bounds g p = Box3.contains g.box p

let index g (p : Vec3.t) =
  let x = p.x - g.box.Box3.lo.Vec3.x in
  let y = p.y - g.box.Box3.lo.Vec3.y in
  let z = p.z - g.box.Box3.lo.Vec3.z in
  ((x * g.ny) + y) * g.nz + z

let get g p =
  if not (in_bounds g p) then false
  else
    let i = index g p in
    Char.code (Bytes.get g.data (i lsr 3)) land (1 lsl (i land 7)) <> 0

let set g p v =
  if not (in_bounds g p) then invalid_arg "Bitgrid.set: out of bounds";
  let i = index g p in
  let byte = Char.code (Bytes.get g.data (i lsr 3)) in
  let mask = 1 lsl (i land 7) in
  let byte = if v then byte lor mask else byte land lnot mask in
  Bytes.set g.data (i lsr 3) (Char.chr byte)

let count g =
  let total = ref 0 in
  Bytes.iter
    (fun c ->
      let b = ref (Char.code c) in
      while !b <> 0 do
        total := !total + (!b land 1);
        b := !b lsr 1
      done)
    g.data;
  !total

let fill g b v =
  match Box3.inter g.box b with
  | None -> ()
  | Some clipped -> List.iter (fun p -> set g p v) (Box3.cells clipped)

let clear g = Bytes.fill g.data 0 (Bytes.length g.data) '\000'
