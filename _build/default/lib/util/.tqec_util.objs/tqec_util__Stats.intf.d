lib/util/stats.mli:
