lib/util/box3.mli: Format Vec3
