lib/util/veca.ml: Array List
