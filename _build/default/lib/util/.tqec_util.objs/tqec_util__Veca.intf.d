lib/util/veca.mli:
