lib/util/bitgrid.ml: Box3 Bytes Char List Vec3
