lib/util/bitgrid.mli: Box3 Vec3
