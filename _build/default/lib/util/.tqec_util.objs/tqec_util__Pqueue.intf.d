lib/util/pqueue.mli:
