lib/util/rng.mli:
