lib/util/box3.ml: Format List Vec3
