lib/util/pretty.mli:
