(** Dense boolean occupancy over a 3D box of cells.

    Backed by a [Bytes.t]; the router and the geometry checker use it for
    fast membership tests over bounded regions. Coordinates are absolute
    lattice coordinates; the grid stores an offset internally. *)

type t

(** [create box] allocates an all-false grid covering [box]. *)
val create : Box3.t -> t

val box : t -> Box3.t

(** [in_bounds g p] is true when [p] lies inside the grid's box. *)
val in_bounds : t -> Vec3.t -> bool

(** [get g p] / [set g p v]: out-of-bounds [get] is [false]; out-of-bounds
    [set] raises [Invalid_argument]. *)
val get : t -> Vec3.t -> bool

val set : t -> Vec3.t -> bool -> unit

(** [count g] is the number of true cells. *)
val count : t -> int

(** [fill g b v] sets every cell of [b] (clipped to the grid) to [v]. *)
val fill : t -> Box3.t -> bool -> unit

val clear : t -> unit
