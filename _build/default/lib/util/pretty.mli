(** Plain-text table rendering for the benchmark harness and the CLI.

    Tables are rendered with a header row, a separator, and right-aligned
    numeric columns, close to the layout of the paper's Tables 1-3. *)

type align = Left | Right

type t

(** [create headers] starts a table; every later row must have the same
    number of columns. Default alignment: first column [Left], the rest
    [Right]. *)
val create : ?aligns:align list -> string list -> t

val add_row : t -> string list -> unit

(** [add_rule t] inserts a horizontal rule (used before summary rows). *)
val add_rule : t -> unit

val render : t -> string

val print : t -> unit

(** Formatting helpers shared by report code. *)

val int_with_commas : int -> string

val float2 : float -> string

val float3 : float -> string
