type align = Left | Right

type line = Row of string list | Rule

type t = {
  headers : string list;
  aligns : align list;
  ncols : int;
  mutable lines : line list; (* reversed *)
}

let create ?aligns headers =
  let ncols = List.length headers in
  let aligns =
    match aligns with
    | Some a ->
        if List.length a <> ncols then
          invalid_arg "Pretty.create: aligns length mismatch";
        a
    | None -> List.mapi (fun i _ -> if i = 0 then Left else Right) headers
  in
  { headers; aligns; ncols; lines = [] }

let add_row t row =
  if List.length row <> t.ncols then
    invalid_arg "Pretty.add_row: column count mismatch";
  t.lines <- Row row :: t.lines

let add_rule t = t.lines <- Rule :: t.lines

let render t =
  let rows =
    t.headers
    :: List.filter_map (function Row r -> Some r | Rule -> None)
         (List.rev t.lines)
  in
  let widths = Array.make t.ncols 0 in
  let measure row =
    List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row
  in
  List.iter measure rows;
  let pad align width s =
    let n = width - String.length s in
    if n <= 0 then s
    else
      match align with
      | Left -> s ^ String.make n ' '
      | Right -> String.make n ' ' ^ s
  in
  let render_row row =
    let cells =
      List.mapi
        (fun i cell -> pad (List.nth t.aligns i) widths.(i) cell)
        row
    in
    String.concat "  " cells
  in
  let total_width =
    Array.fold_left ( + ) 0 widths + (2 * (t.ncols - 1))
  in
  let rule = String.make total_width '-' in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (render_row t.headers);
  Buffer.add_char buf '\n';
  Buffer.add_string buf rule;
  Buffer.add_char buf '\n';
  List.iter
    (fun line ->
      (match line with
      | Row r -> Buffer.add_string buf (render_row r)
      | Rule -> Buffer.add_string buf rule);
      Buffer.add_char buf '\n')
    (List.rev t.lines);
  Buffer.contents buf

let print t = print_string (render t)

let int_with_commas n =
  let s = string_of_int (abs n) in
  let len = String.length s in
  let buf = Buffer.create (len + (len / 3) + 1) in
  if n < 0 then Buffer.add_char buf '-';
  String.iteri
    (fun i c ->
      if i > 0 && (len - i) mod 3 = 0 then Buffer.add_char buf ',';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float2 f = Printf.sprintf "%.2f" f
let float3 f = Printf.sprintf "%.3f" f
