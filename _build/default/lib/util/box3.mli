(** Axis-aligned integer boxes on the 3D lattice.

    A box is a set of unit cells; [lo] is the cell with the smallest
    coordinates and [hi] the cell with the largest, both inclusive, so a
    single cell is [{ lo = p; hi = p }].  The space-time volume of a
    geometric description is the cell count of its bounding box, matching
    the paper's [#x * #y * #z] convention. *)

type t = { lo : Vec3.t; hi : Vec3.t }

(** [make lo hi] normalises the corners componentwise, so any two opposite
    corners are accepted. *)
val make : Vec3.t -> Vec3.t -> t

(** [of_cell p] is the single-cell box at [p]. *)
val of_cell : Vec3.t -> t

(** Extents along each axis, in unit cells (always >= 1). *)
val dx : t -> int

val dy : t -> int

val dz : t -> int

(** [volume b] = [dx * dy * dz]. *)
val volume : t -> int

val contains : t -> Vec3.t -> bool

(** [overlap a b] is true when [a] and [b] share at least one cell. *)
val overlap : t -> t -> bool

(** [join a b] is the smallest box containing both. *)
val join : t -> t -> t

(** [inter a b] is the common sub-box, if any. *)
val inter : t -> t -> t option

(** [inflate n b] grows the box by [n] cells on every side. *)
val inflate : int -> t -> t

(** [translate v b] shifts the box by [v]. *)
val translate : Vec3.t -> t -> t

(** [bounding cells] is the bounding box of a non-empty cell list.
    @raise Invalid_argument on the empty list. *)
val bounding : Vec3.t list -> t

(** [cells b] enumerates the cells of [b] in lexicographic order. *)
val cells : t -> Vec3.t list

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
