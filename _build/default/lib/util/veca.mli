(** Growable arrays (OCaml 5.1 has no stdlib [Dynarray]).

    Elements keep their index forever; [push] appends at the end. Used by
    the PD-graph builder, whose module and net tables grow during
    construction and I-shaped simplification. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

(** [push t v] appends [v] and returns its index. *)
val push : 'a t -> 'a -> int

(** [get]/[set] with bounds checking. *)
val get : 'a t -> int -> 'a

val set : 'a t -> int -> 'a -> unit

val iter : ('a -> unit) -> 'a t -> unit

val iteri : (int -> 'a -> unit) -> 'a t -> unit

val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

val to_list : 'a t -> 'a list

val of_list : 'a list -> 'a t

(** [find_index p t] is the first index satisfying [p], if any. *)
val find_index : ('a -> bool) -> 'a t -> int option
