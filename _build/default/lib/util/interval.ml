type t = { lo : int; hi : int }

let make a b = if a <= b then { lo = a; hi = b } else { lo = b; hi = a }
let length i = i.hi - i.lo + 1
let contains i v = v >= i.lo && v <= i.hi
let overlap a b = a.lo <= b.hi && b.lo <= a.hi
let touches a b = a.lo <= b.hi + 1 && b.lo <= a.hi + 1
let join a b = { lo = min a.lo b.lo; hi = max a.hi b.hi }

let inter a b =
  let lo = max a.lo b.lo and hi = min a.hi b.hi in
  if lo <= hi then Some { lo; hi } else None

let equal a b = a.lo = b.lo && a.hi = b.hi

let compare a b =
  let c = Int.compare a.lo b.lo in
  if c <> 0 then c else Int.compare a.hi b.hi

let pp ppf i = Format.fprintf ppf "[%d,%d]" i.lo i.hi
