(** Disjoint-set forest with path compression and union by rank.

    Used by the bridging stages to maintain merged primal structures and
    merged dual nets, and by the geometry checker to identify connected
    defect components. *)

type t

(** [create n] makes [n] singleton sets labelled [0 .. n-1]. *)
val create : int -> t

val size : t -> int

(** [find t i] is the canonical representative of [i]'s set. *)
val find : t -> int -> int

(** [union t a b] merges the two sets; returns the surviving root. *)
val union : t -> int -> int -> int

val same : t -> int -> int -> bool

(** [component_size t i] is the cardinality of [i]'s set. *)
val component_size : t -> int -> int

(** [count_sets t] is the current number of disjoint sets. *)
val count_sets : t -> int

(** [groups t] lists each set as (representative, members), members in
    increasing order, groups ordered by representative. *)
val groups : t -> (int * int list) list
