(** Integer 3-vectors used as lattice coordinates.

    Throughout the library the convention follows the paper: [x] is the
    time axis of a geometric description, [y] and [z] span the 2D code
    surface. *)

type t = { x : int; y : int; z : int }

val make : int -> int -> int -> t

val zero : t

val add : t -> t -> t

val sub : t -> t -> t

val neg : t -> t

val scale : int -> t -> t

(** [dot a b] is the standard inner product. *)
val dot : t -> t -> int

(** [manhattan a b] is the L1 distance between [a] and [b]. *)
val manhattan : t -> t -> int

(** [linf a b] is the Chebyshev (L-infinity) distance. *)
val linf : t -> t -> int

val equal : t -> t -> bool

val compare : t -> t -> int

val hash : t -> int

(** The six axis-aligned unit steps, in a fixed deterministic order. *)
val axis_neighbors : t -> t list

(** [min_pointwise a b] / [max_pointwise a b] take componentwise extrema. *)
val min_pointwise : t -> t -> t

val max_pointwise : t -> t -> t

val pp : Format.formatter -> t -> unit

val to_string : t -> string
