type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }
let length t = t.len

let push t v =
  let cap = Array.length t.data in
  if t.len = cap then begin
    let ncap = max 16 (2 * cap) in
    let data = Array.make ncap v in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data
  end;
  t.data.(t.len) <- v;
  t.len <- t.len + 1;
  t.len - 1

let check t i =
  if i < 0 || i >= t.len then invalid_arg "Veca: index out of bounds"

let get t i =
  check t i;
  t.data.(i)

let set t i v =
  check t i;
  t.data.(i) <- v

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.data.(i)
  done

let fold f acc t =
  let acc = ref acc in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let to_list t = List.init t.len (fun i -> t.data.(i))

let of_list l =
  let t = create () in
  List.iter (fun v -> ignore (push t v)) l;
  t

let find_index p t =
  let rec loop i =
    if i >= t.len then None else if p t.data.(i) then Some i else loop (i + 1)
  in
  loop 0
