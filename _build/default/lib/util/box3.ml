type t = { lo : Vec3.t; hi : Vec3.t }

let make a b = { lo = Vec3.min_pointwise a b; hi = Vec3.max_pointwise a b }
let of_cell p = { lo = p; hi = p }
let dx b = b.hi.Vec3.x - b.lo.Vec3.x + 1
let dy b = b.hi.Vec3.y - b.lo.Vec3.y + 1
let dz b = b.hi.Vec3.z - b.lo.Vec3.z + 1
let volume b = dx b * dy b * dz b

let contains b (p : Vec3.t) =
  p.x >= b.lo.x && p.x <= b.hi.x && p.y >= b.lo.y && p.y <= b.hi.y
  && p.z >= b.lo.z && p.z <= b.hi.z

let overlap a b =
  a.lo.Vec3.x <= b.hi.Vec3.x && b.lo.Vec3.x <= a.hi.Vec3.x
  && a.lo.Vec3.y <= b.hi.Vec3.y && b.lo.Vec3.y <= a.hi.Vec3.y
  && a.lo.Vec3.z <= b.hi.Vec3.z && b.lo.Vec3.z <= a.hi.Vec3.z

let join a b =
  { lo = Vec3.min_pointwise a.lo b.lo; hi = Vec3.max_pointwise a.hi b.hi }

let inter a b =
  let lo = Vec3.max_pointwise a.lo b.lo in
  let hi = Vec3.min_pointwise a.hi b.hi in
  if lo.Vec3.x <= hi.Vec3.x && lo.Vec3.y <= hi.Vec3.y && lo.Vec3.z <= hi.Vec3.z
  then Some { lo; hi }
  else None

let inflate n b =
  let d = Vec3.make n n n in
  { lo = Vec3.sub b.lo d; hi = Vec3.add b.hi d }

let translate v b = { lo = Vec3.add b.lo v; hi = Vec3.add b.hi v }

let bounding = function
  | [] -> invalid_arg "Box3.bounding: empty cell list"
  | p :: ps ->
      List.fold_left
        (fun acc q ->
          {
            lo = Vec3.min_pointwise acc.lo q;
            hi = Vec3.max_pointwise acc.hi q;
          })
        (of_cell p) ps

let cells b =
  let acc = ref [] in
  for x = b.hi.Vec3.x downto b.lo.Vec3.x do
    for y = b.hi.Vec3.y downto b.lo.Vec3.y do
      for z = b.hi.Vec3.z downto b.lo.Vec3.z do
        acc := Vec3.make x y z :: !acc
      done
    done
  done;
  !acc

let equal a b = Vec3.equal a.lo b.lo && Vec3.equal a.hi b.hi

let pp ppf b =
  Format.fprintf ppf "[%a..%a]" Vec3.pp b.lo Vec3.pp b.hi
