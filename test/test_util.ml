(* Unit and property tests for the tqec_util substrate. *)

open Tqec_util

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Vec3 / Box3                                                         *)
(* ------------------------------------------------------------------ *)

let vec = Vec3.make

let test_vec3_arith () =
  check Alcotest.bool "add" true (Vec3.equal (Vec3.add (vec 1 2 3) (vec 4 5 6)) (vec 5 7 9));
  check Alcotest.bool "sub" true (Vec3.equal (Vec3.sub (vec 4 5 6) (vec 1 2 3)) (vec 3 3 3));
  check Alcotest.bool "neg" true (Vec3.equal (Vec3.neg (vec 1 (-2) 3)) (vec (-1) 2 (-3)));
  check Alcotest.int "dot" 32 (Vec3.dot (vec 1 2 3) (vec 4 5 6));
  check Alcotest.int "manhattan" 9 (Vec3.manhattan (vec 1 2 3) (vec 4 5 6));
  check Alcotest.int "linf" 3 (Vec3.linf (vec 1 2 3) (vec 4 5 6))

let test_vec3_neighbors () =
  let ns = Vec3.axis_neighbors (vec 0 0 0) in
  check Alcotest.int "six neighbors" 6 (List.length ns);
  List.iter
    (fun n -> check Alcotest.int "unit distance" 1 (Vec3.manhattan n (vec 0 0 0)))
    ns

let test_box3_basics () =
  let b = Box3.make (vec 2 3 4) (vec 0 1 2) in
  check Alcotest.bool "normalized lo" true (Vec3.equal b.Box3.lo (vec 0 1 2));
  check Alcotest.int "dx" 3 (Box3.dx b);
  check Alcotest.int "dy" 3 (Box3.dy b);
  check Alcotest.int "dz" 3 (Box3.dz b);
  check Alcotest.int "volume" 27 (Box3.volume b);
  check Alcotest.int "cells" 27 (List.length (Box3.cells b));
  check Alcotest.bool "contains corner" true (Box3.contains b (vec 2 3 4));
  check Alcotest.bool "not contains" false (Box3.contains b (vec 3 3 4))

let test_box3_single_cell () =
  let b = Box3.of_cell (vec 5 5 5) in
  check Alcotest.int "volume 1" 1 (Box3.volume b);
  check Alcotest.(list bool) "cells" [ true ]
    (List.map (Vec3.equal (vec 5 5 5)) (Box3.cells b))

let test_box3_overlap () =
  let a = Box3.make (vec 0 0 0) (vec 2 2 2) in
  let b = Box3.make (vec 2 2 2) (vec 4 4 4) in
  let c = Box3.make (vec 3 3 3) (vec 4 4 4) in
  check Alcotest.bool "share corner" true (Box3.overlap a b);
  check Alcotest.bool "disjoint" false (Box3.overlap a c);
  (match Box3.inter a b with
  | Some i -> check Alcotest.int "corner intersection" 1 (Box3.volume i)
  | None -> Alcotest.fail "expected intersection");
  check Alcotest.bool "no intersection" true (Box3.inter a c = None)

let test_box3_join_inflate () =
  let a = Box3.of_cell (vec 0 0 0) in
  let b = Box3.of_cell (vec 2 3 4) in
  let j = Box3.join a b in
  check Alcotest.int "join volume" 60 (Box3.volume j);
  let i = Box3.inflate 1 a in
  check Alcotest.int "inflate volume" 27 (Box3.volume i);
  let t = Box3.translate (vec 1 1 1) a in
  check Alcotest.bool "translate" true (Box3.contains t (vec 1 1 1))

let test_box3_bounding () =
  let b = Box3.bounding [ vec 1 1 1; vec 3 0 2; vec 2 5 0 ] in
  check Alcotest.int "dx" 3 (Box3.dx b);
  check Alcotest.int "dy" 6 (Box3.dy b);
  check Alcotest.int "dz" 3 (Box3.dz b);
  Alcotest.check_raises "empty" (Invalid_argument "Box3.bounding: empty cell list")
    (fun () -> ignore (Box3.bounding []))

let vec3_gen =
  QCheck.Gen.(
    map3 Vec3.make (int_range (-20) 20) (int_range (-20) 20) (int_range (-20) 20))

let vec3_arb = QCheck.make ~print:Vec3.to_string vec3_gen

let prop_box_join_contains =
  QCheck.Test.make ~name:"box join contains both corners" ~count:200
    (QCheck.pair vec3_arb vec3_arb)
    (fun (a, b) ->
      let box = Box3.join (Box3.of_cell a) (Box3.of_cell b) in
      Box3.contains box a && Box3.contains box b)

let prop_box_volume_cells =
  QCheck.Test.make ~name:"box volume equals cell count" ~count:50
    (QCheck.pair vec3_arb vec3_arb)
    (fun (a, b) ->
      (* keep boxes small so cells stays cheap *)
      let clampv (v : Vec3.t) = Vec3.make (v.x mod 5) (v.y mod 5) (v.z mod 5) in
      let box = Box3.make (clampv a) (clampv b) in
      Box3.volume box = List.length (Box3.cells box))

let prop_manhattan_triangle =
  QCheck.Test.make ~name:"manhattan triangle inequality" ~count:200
    (QCheck.triple vec3_arb vec3_arb vec3_arb)
    (fun (a, b, c) ->
      Vec3.manhattan a c <= Vec3.manhattan a b + Vec3.manhattan b c)

(* ------------------------------------------------------------------ *)
(* Interval                                                            *)
(* ------------------------------------------------------------------ *)

let test_interval () =
  let i = Interval.make 5 2 in
  check Alcotest.int "normalized lo" 2 i.Interval.lo;
  check Alcotest.int "length" 4 (Interval.length i);
  check Alcotest.bool "contains" true (Interval.contains i 3);
  let j = Interval.make 5 8 in
  check Alcotest.bool "overlap" true (Interval.overlap i j);
  let k = Interval.make 6 8 in
  check Alcotest.bool "no overlap" false (Interval.overlap i k);
  check Alcotest.bool "touches" true (Interval.touches i k);
  let far = Interval.make 7 8 in
  check Alcotest.bool "not touching" false (Interval.touches i far);
  (match Interval.inter i j with
  | Some x -> check Alcotest.int "inter is point" 1 (Interval.length x)
  | None -> Alcotest.fail "expected intersection");
  check Alcotest.int "join length" 7 (Interval.length (Interval.join i j))

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)
(* ------------------------------------------------------------------ *)

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check Alcotest.int "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_bounds () =
  let r = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int r 10 in
    check Alcotest.bool "in range" true (v >= 0 && v < 10);
    let w = Rng.int_in r 5 9 in
    check Alcotest.bool "int_in range" true (w >= 5 && w <= 9);
    let f = Rng.float r in
    check Alcotest.bool "float range" true (f >= 0. && f < 1.)
  done

let test_rng_split_independent () =
  let parent = Rng.create 1 in
  let child = Rng.split parent in
  let xs = List.init 20 (fun _ -> Rng.int parent 1000) in
  let ys = List.init 20 (fun _ -> Rng.int child 1000) in
  check Alcotest.bool "streams differ" true (xs <> ys)

let test_rng_shuffle_permutation () =
  let r = Rng.create 9 in
  let arr = Array.init 50 (fun i -> i) in
  Rng.shuffle r arr;
  let sorted = Array.copy arr in
  Array.sort Int.compare sorted;
  check Alcotest.(array int) "is permutation" (Array.init 50 (fun i -> i)) sorted

let test_rng_copy () =
  let a = Rng.create 3 in
  ignore (Rng.int a 10);
  let b = Rng.copy a in
  check Alcotest.int "copy same next" (Rng.int a 1000) (Rng.int b 1000)

(* ------------------------------------------------------------------ *)
(* Union_find                                                          *)
(* ------------------------------------------------------------------ *)

let test_uf_basics () =
  let uf = Union_find.create 10 in
  check Alcotest.int "initial sets" 10 (Union_find.count_sets uf);
  ignore (Union_find.union uf 0 1);
  ignore (Union_find.union uf 1 2);
  check Alcotest.bool "same" true (Union_find.same uf 0 2);
  check Alcotest.bool "not same" false (Union_find.same uf 0 3);
  check Alcotest.int "component size" 3 (Union_find.component_size uf 2);
  check Alcotest.int "sets after unions" 8 (Union_find.count_sets uf)

let test_uf_groups () =
  let uf = Union_find.create 6 in
  ignore (Union_find.union uf 0 5);
  ignore (Union_find.union uf 1 3);
  let groups = Union_find.groups uf in
  check Alcotest.int "group count" 4 (List.length groups);
  let members_with m =
    List.find (fun (_, ms) -> List.mem m ms) groups |> snd
  in
  check Alcotest.(list int) "group of 0" [ 0; 5 ] (members_with 0);
  check Alcotest.(list int) "group of 1" [ 1; 3 ] (members_with 1)

let prop_uf_union_transitive =
  QCheck.Test.make ~name:"union-find transitivity" ~count:100
    QCheck.(list (pair (int_bound 19) (int_bound 19)))
    (fun pairs ->
      let uf = Union_find.create 20 in
      List.iter (fun (a, b) -> ignore (Union_find.union uf a b)) pairs;
      (* same is an equivalence: reflexive, symmetric, and consistent
         with find *)
      List.for_all
        (fun (a, b) ->
          Union_find.same uf a b
          && Union_find.find uf a = Union_find.find uf b)
        pairs)

let prop_uf_sizes_sum =
  QCheck.Test.make ~name:"union-find sizes sum to n" ~count:100
    QCheck.(list (pair (int_bound 19) (int_bound 19)))
    (fun pairs ->
      let uf = Union_find.create 20 in
      List.iter (fun (a, b) -> ignore (Union_find.union uf a b)) pairs;
      let groups = Union_find.groups uf in
      List.fold_left (fun acc (_, ms) -> acc + List.length ms) 0 groups = 20
      && List.length groups = Union_find.count_sets uf)

(* ------------------------------------------------------------------ *)
(* Pqueue                                                              *)
(* ------------------------------------------------------------------ *)

let test_pqueue_order () =
  let q = Pqueue.create () in
  List.iter (fun k -> Pqueue.push q k k) [ 5; 1; 4; 2; 3 ];
  let popped = List.init 5 (fun _ -> fst (Pqueue.pop q)) in
  check Alcotest.(list int) "sorted pops" [ 1; 2; 3; 4; 5 ] popped;
  check Alcotest.bool "empty" true (Pqueue.is_empty q)

let test_pqueue_fifo_ties () =
  let q = Pqueue.create () in
  Pqueue.push q 1 "a";
  Pqueue.push q 1 "b";
  Pqueue.push q 1 "c";
  let order = List.init 3 (fun _ -> snd (Pqueue.pop q)) in
  check Alcotest.(list string) "FIFO on ties" [ "a"; "b"; "c" ] order

let test_pqueue_peek_clear () =
  let q = Pqueue.create () in
  Pqueue.push q 3 "x";
  Pqueue.push q 1 "y";
  check Alcotest.string "peek min" "y" (snd (Pqueue.peek q));
  check Alcotest.int "peek preserves" 2 (Pqueue.length q);
  Pqueue.clear q;
  check Alcotest.bool "cleared" true (Pqueue.is_empty q);
  Alcotest.check_raises "pop empty" Not_found (fun () -> ignore (Pqueue.pop q))

let prop_pqueue_sorts =
  QCheck.Test.make ~name:"pqueue pops in nondecreasing key order" ~count:200
    QCheck.(list small_int)
    (fun keys ->
      let q = Pqueue.create () in
      List.iter (fun k -> Pqueue.push q k ()) keys;
      let rec drain last =
        if Pqueue.is_empty q then true
        else
          let k, () = Pqueue.pop q in
          k >= last && drain k
      in
      drain min_int)

(* ------------------------------------------------------------------ *)
(* Bitgrid                                                             *)
(* ------------------------------------------------------------------ *)

let test_bitgrid_set_get () =
  let g = Bitgrid.create (Box3.make (vec 0 0 0) (vec 4 4 4)) in
  check Alcotest.bool "initially false" false (Bitgrid.get g (vec 2 2 2));
  Bitgrid.set g (vec 2 2 2) true;
  check Alcotest.bool "set true" true (Bitgrid.get g (vec 2 2 2));
  check Alcotest.int "count" 1 (Bitgrid.count g);
  Bitgrid.set g (vec 2 2 2) false;
  check Alcotest.int "count after unset" 0 (Bitgrid.count g)

let test_bitgrid_bounds () =
  let g = Bitgrid.create (Box3.make (vec 1 1 1) (vec 3 3 3)) in
  check Alcotest.bool "oob get false" false (Bitgrid.get g (vec 0 0 0));
  Alcotest.check_raises "oob set" (Invalid_argument "Bitgrid.set: out of bounds")
    (fun () -> Bitgrid.set g (vec 0 0 0) true)

let test_bitgrid_fill () =
  let g = Bitgrid.create (Box3.make (vec 0 0 0) (vec 9 9 9)) in
  Bitgrid.fill g (Box3.make (vec 0 0 0) (vec 2 2 2)) true;
  check Alcotest.int "filled 27" 27 (Bitgrid.count g);
  (* Clipped fill *)
  Bitgrid.fill g (Box3.make (vec 8 8 8) (vec 20 20 20)) true;
  check Alcotest.int "clipped fill" (27 + 8) (Bitgrid.count g);
  Bitgrid.clear g;
  check Alcotest.int "clear" 0 (Bitgrid.count g)

let prop_bitgrid_roundtrip =
  QCheck.Test.make ~name:"bitgrid set/get roundtrip" ~count:100
    QCheck.(list (triple (int_bound 7) (int_bound 7) (int_bound 7)))
    (fun cells ->
      let g = Bitgrid.create (Box3.make (vec 0 0 0) (vec 7 7 7)) in
      List.iter (fun (x, y, z) -> Bitgrid.set g (vec x y z) true) cells;
      List.for_all (fun (x, y, z) -> Bitgrid.get g (vec x y z)) cells)

(* ------------------------------------------------------------------ *)
(* Veca                                                                *)
(* ------------------------------------------------------------------ *)

let test_veca_push_get () =
  let v = Veca.create () in
  let i0 = Veca.push v "a" and i1 = Veca.push v "b" in
  check Alcotest.int "first index" 0 i0;
  check Alcotest.int "second index" 1 i1;
  check Alcotest.string "get" "b" (Veca.get v 1);
  Veca.set v 0 "c";
  check Alcotest.string "set" "c" (Veca.get v 0);
  check Alcotest.(list string) "to_list" [ "c"; "b" ] (Veca.to_list v)

let test_veca_bounds () =
  let v = Veca.create () in
  ignore (Veca.push v 1);
  Alcotest.check_raises "oob" (Invalid_argument "Veca: index out of bounds")
    (fun () -> ignore (Veca.get v 1))

let test_veca_fold_find () =
  let v = Veca.of_list [ 1; 2; 3; 4 ] in
  check Alcotest.int "fold sum" 10 (Veca.fold ( + ) 0 v);
  check Alcotest.(option int) "find" (Some 2) (Veca.find_index (fun x -> x = 3) v);
  check Alcotest.(option int) "find none" None (Veca.find_index (fun x -> x = 9) v)

(* ------------------------------------------------------------------ *)
(* Stats / Pretty                                                      *)
(* ------------------------------------------------------------------ *)

let test_stats () =
  check (Alcotest.float 1e-9) "mean" 2.5 (Stats.mean [ 1.; 2.; 3.; 4. ]);
  check (Alcotest.float 1e-9) "geomean" 2. (Stats.geomean [ 1.; 2.; 4. ]);
  let lo, hi = Stats.min_max [ 3.; 1.; 2. ] in
  check (Alcotest.float 1e-9) "min" 1. lo;
  check (Alcotest.float 1e-9) "max" 3. hi;
  check (Alcotest.float 1e-9) "reduction" 47.
    (Stats.percent_reduction 100. 53.);
  check Alcotest.int "clamp" 5 (Stats.clamp 0 5 9);
  check Alcotest.bool "ratio by zero is nan" true (Float.is_nan (Stats.ratio 1. 0.))

let test_pretty_table () =
  let t = Pretty.create [ "name"; "value" ] in
  Pretty.add_row t [ "a"; "1" ];
  Pretty.add_rule t;
  Pretty.add_row t [ "total"; "1" ];
  let s = Pretty.render t in
  check Alcotest.bool "has header" true
    (String.length s > 0 && String.sub s 0 4 = "name");
  Alcotest.check_raises "bad row"
    (Invalid_argument "Pretty.add_row: column count mismatch") (fun () ->
      Pretty.add_row t [ "only-one" ])

let test_pretty_numbers () =
  check Alcotest.string "commas" "1,234,567" (Pretty.int_with_commas 1234567);
  check Alcotest.string "small" "42" (Pretty.int_with_commas 42);
  check Alcotest.string "negative" "-1,000" (Pretty.int_with_commas (-1000));
  check Alcotest.string "float2" "3.14" (Pretty.float2 3.14159);
  check Alcotest.string "float3" "2.718" (Pretty.float3 2.71828)

(* ------------------------------------------------------------------ *)
(* Pool / Rng lanes                                                    *)
(* ------------------------------------------------------------------ *)

let test_pool_map_order () =
  let input = Array.init 57 (fun i -> i) in
  let expected = Array.map (fun i -> (i * i) + 1) input in
  List.iter
    (fun jobs ->
      let got = Pool.map ~jobs (fun i -> (i * i) + 1) input in
      check Alcotest.bool
        (Printf.sprintf "order preserved with %d jobs" jobs)
        true (got = expected))
    [ 1; 2; 4; 8 ]

let test_pool_map_empty_and_run () =
  check Alcotest.int "empty map" 0 (Array.length (Pool.map ~jobs:4 succ [||]));
  let results = Pool.run ~jobs:3 (Array.init 5 (fun i () -> i * 10)) in
  check Alcotest.bool "run results" true (results = [| 0; 10; 20; 30; 40 |])

let test_pool_exception_propagates () =
  let raised =
    try
      ignore
        (Pool.map ~jobs:4
           (fun i -> if i = 5 then failwith "boom" else i)
           (Array.init 12 (fun i -> i)));
      false
    with Failure m -> m = "boom"
  in
  check Alcotest.bool "exception re-raised" true raised

let test_pool_exception_runs_all_and_reuses () =
  (* a raising task must not stop the remaining tasks, poison the pool,
     or leak unjoined domains: every other task still runs exactly once
     and the very next call on the same pool succeeds *)
  let ran = Atomic.make 0 in
  (try
     ignore
       (Pool.map ~jobs:4
          (fun i ->
            Atomic.incr ran;
            if i = 3 then failwith "mid-flight";
            i)
          (Array.init 24 (fun i -> i)))
   with Failure _ -> ());
  check Alcotest.int "all tasks still ran" 24 (Atomic.get ran);
  let again = Pool.map ~jobs:4 succ (Array.init 8 (fun i -> i)) in
  check Alcotest.bool "pool usable after a failure" true
    (again = Array.init 8 (fun i -> i + 1))

let test_pool_lowest_index_exception_wins () =
  (* several tasks raise; the caller sees what the serial path would have
     thrown first — the lowest-index failure — for every job count *)
  List.iter
    (fun jobs ->
      let seen =
        try
          ignore
            (Pool.map ~jobs
               (fun i -> if i mod 5 = 2 then failwith (string_of_int i) else i)
               (Array.init 40 (fun i -> i)));
          "none"
        with Failure m -> m
      in
      check Alcotest.string
        (Printf.sprintf "lowest index wins with %d jobs" jobs)
        "2" seen)
    [ 1; 2; 4; 8 ]

let test_pool_exception_keeps_backtrace () =
  (* re-raise must preserve the original raise point, not the join site *)
  Printexc.record_backtrace true;
  let bt =
    try
      ignore
        (Pool.map ~jobs:2
           (fun i -> if i = 1 then failwith "where" else i)
           (Array.init 4 (fun i -> i)));
      ""
    with Failure _ -> Printexc.get_backtrace ()
  in
  check Alcotest.bool "backtrace mentions the raising task" true
    (bt = "" (* backtraces may be compiled out *)
    || (let mentions sub =
          let n = String.length bt and m = String.length sub in
          let rec at i = i + m <= n && (String.sub bt i m = sub || at (i + 1)) in
          at 0
        in
        mentions "test_util"))

let test_pool_balances_uneven_tasks () =
  (* uneven costs: every task still runs exactly once *)
  let hits = Array.make 16 0 in
  ignore
    (Pool.map ~jobs:4
       (fun i ->
         if i < 2 then ignore (Sys.opaque_identity (Array.make 10_000 i));
         (* race: slot [i] is written by task [i] only — disjoint
            indices, no two tasks share a cell *)
         hits.(i) <- hits.(i) + 1)
       (Array.init 16 (fun i -> i)));
  check Alcotest.bool "each task once" true (Array.for_all (( = ) 1) hits)

let test_pool_nested_map () =
  (* nested Pool.map inside Pool.map must compose on the one persistent
     scheduler — no deadlock at any job count, and the composed result
     is the serial one (blocked parents help-drain instead of parking
     for ever on work only they hold) *)
  let input = Array.init 12 (fun i -> i) in
  let expected =
    Array.map
      (fun o -> Array.fold_left ( + ) 0 (Array.map (fun i -> (o * 100) + i) input))
      (Array.init 6 (fun o -> o))
  in
  List.iter
    (fun jobs ->
      let got =
        Pool.map ~jobs
          (fun o ->
            Array.fold_left ( + ) 0
              (Pool.map ~jobs (fun i -> (o * 100) + i) input))
          (Array.init 6 (fun o -> o))
      in
      check Alcotest.bool
        (Printf.sprintf "nested map with %d jobs" jobs)
        true (got = expected))
    [ 1; 2; 4; 8 ]

let test_pool_nested_exception () =
  (* an exception inside an inner map must surface through the outer
     map as the outer task's failure, lowest outer index first, and the
     scheduler stays usable *)
  let seen =
    try
      ignore
        (Pool.map ~jobs:4
           (fun o ->
             Array.fold_left ( + ) 0
               (Pool.map ~jobs:4
                  (fun i ->
                    if o >= 2 && i = 3 then
                      failwith (Printf.sprintf "inner %d" o)
                    else i)
                  (Array.init 8 (fun i -> i))))
           (Array.init 6 (fun o -> o)));
      "none"
    with Failure m -> m
  in
  check Alcotest.string "lowest outer index wins" "inner 2" seen;
  let again = Pool.map ~jobs:4 succ (Array.init 8 (fun i -> i)) in
  check Alcotest.bool "pool usable after nested failure" true
    (again = Array.init 8 (fun i -> i + 1))

let test_pool_helper_drains_without_workers () =
  (* a pool with zero worker domains still completes any map: the
     blocked submitter helps-drain its own submissions.  This is the
     degenerate case of the help-first protocol — if the caller could
     park without helping, this would deadlock. *)
  let pool = Pool.create ~workers:0 in
  let got = Pool.map ~pool ~jobs:4 (fun i -> i * 3) (Array.init 32 (fun i -> i)) in
  check Alcotest.bool "helper drained every task" true
    (got = Array.init 32 (fun i -> i * 3));
  (* nested on the worker-less pool too *)
  let nested =
    Pool.map ~pool ~jobs:4
      (fun o -> Array.length (Pool.map ~pool ~jobs:4 succ (Array.make (o + 1) 0)))
      (Array.init 5 (fun o -> o))
  in
  check Alcotest.bool "nested without workers" true
    (nested = [| 1; 2; 3; 4; 5 |]);
  Pool.shutdown pool

let test_pool_spawn_error_surfaced () =
  (* healthy pools report no spawn failure; the field is the seam
     through which a Domain.spawn failure (recorded, not swallowed)
     reaches operators *)
  let pool = Pool.create ~workers:1 in
  ignore (Pool.map ~pool ~jobs:1 succ (Array.init 4 (fun i -> i)));
  (match Pool.stats ~pool () with
  | { Pool.spawn_error = None; _ } -> ()
  | { Pool.spawn_error = Some msg; _ } ->
      Alcotest.failf "unexpected spawn error: %s" msg);
  Pool.shutdown pool;
  (* the global pool too *)
  check Alcotest.bool "global pool healthy" true
    ((Pool.stats ()).Pool.spawn_error = None)

let test_pool_async_await () =
  let p = Pool.async (fun () -> 6 * 7) in
  check Alcotest.int "await returns" 42 (Pool.await p);
  (* awaiting again returns the memoised value *)
  check Alcotest.int "await idempotent" 42 (Pool.await p);
  let q = Pool.async (fun () -> failwith "late") in
  let raised = try ignore (Pool.await q); false with Failure m -> m = "late" in
  check Alcotest.bool "await re-raises" true raised;
  (* async composes with map running on the same scheduler *)
  let r = Pool.async (fun () -> Array.fold_left ( + ) 0 (Pool.map ~jobs:4 succ (Array.init 10 (fun i -> i)))) in
  check Alcotest.int "async over nested map" 55 (Pool.await r)

let test_pool_jobs_invariance_combined () =
  (* the jobs-invariance contract on a composed workload: an outer map
     (suite instances) over inner maps with data-dependent sizes
     (restart lanes / routing batches) must give identical results for
     every job count, including the serial path *)
  let workload jobs =
    Pool.map ~jobs
      (fun o ->
        let lanes =
          Pool.map ~jobs
            (fun l ->
              Array.fold_left ( + ) 0
                (Pool.map ~jobs (fun i -> (o * 31) + (l * 7) + i)
                   (Array.init ((l mod 3) + 2) (fun i -> i))))
            (Array.init ((o mod 4) + 1) (fun l -> l))
        in
        Array.fold_left ( + ) 0 lanes)
      (Array.init 9 (fun o -> o))
  in
  let serial = workload 1 in
  List.iter
    (fun jobs ->
      check Alcotest.bool
        (Printf.sprintf "combined workload invariant at %d jobs" jobs)
        true
        (workload jobs = serial))
    [ 2; 4; 8 ]

let test_rng_lane_zero_is_create () =
  let a = Rng.lane 42 0 and b = Rng.create 42 in
  let same = ref true in
  for _ = 1 to 100 do
    if Rng.next_int64 a <> Rng.next_int64 b then same := false
  done;
  check Alcotest.bool "lane 0 = create" true !same

let test_rng_lanes_independent () =
  let draws lane =
    let r = Rng.lane 42 lane in
    List.init 50 (fun _ -> Rng.int r 1_000_000)
  in
  check Alcotest.bool "lane 1 <> lane 2" true (draws 1 <> draws 2);
  check Alcotest.bool "lane 1 <> lane 0" true (draws 1 <> draws 0);
  check Alcotest.bool "lane reproducible" true (draws 3 = draws 3)

let test_rng_split_n () =
  let r = Rng.create 7 in
  let streams = Rng.split_n r 4 in
  check Alcotest.int "four streams" 4 (Array.length streams);
  let firsts =
    Array.to_list (Array.map (fun s -> Rng.next_int64 s) streams)
  in
  check Alcotest.int "distinct first draws" 4
    (List.length (List.sort_uniq Int64.compare firsts))

let suites =
  [
    ( "util.vec3-box3",
      [
        Alcotest.test_case "vec3 arithmetic" `Quick test_vec3_arith;
        Alcotest.test_case "vec3 neighbors" `Quick test_vec3_neighbors;
        Alcotest.test_case "box3 basics" `Quick test_box3_basics;
        Alcotest.test_case "box3 single cell" `Quick test_box3_single_cell;
        Alcotest.test_case "box3 overlap" `Quick test_box3_overlap;
        Alcotest.test_case "box3 join/inflate" `Quick test_box3_join_inflate;
        Alcotest.test_case "box3 bounding" `Quick test_box3_bounding;
        qtest prop_box_join_contains;
        qtest prop_box_volume_cells;
        qtest prop_manhattan_triangle;
      ] );
    ("util.interval", [ Alcotest.test_case "interval" `Quick test_interval ]);
    ( "util.rng",
      [
        Alcotest.test_case "determinism" `Quick test_rng_determinism;
        Alcotest.test_case "bounds" `Quick test_rng_bounds;
        Alcotest.test_case "split independence" `Quick test_rng_split_independent;
        Alcotest.test_case "shuffle is permutation" `Quick
          test_rng_shuffle_permutation;
        Alcotest.test_case "copy" `Quick test_rng_copy;
      ] );
    ( "util.union_find",
      [
        Alcotest.test_case "basics" `Quick test_uf_basics;
        Alcotest.test_case "groups" `Quick test_uf_groups;
        qtest prop_uf_union_transitive;
        qtest prop_uf_sizes_sum;
      ] );
    ( "util.pqueue",
      [
        Alcotest.test_case "order" `Quick test_pqueue_order;
        Alcotest.test_case "FIFO ties" `Quick test_pqueue_fifo_ties;
        Alcotest.test_case "peek/clear" `Quick test_pqueue_peek_clear;
        qtest prop_pqueue_sorts;
      ] );
    ( "util.bitgrid",
      [
        Alcotest.test_case "set/get" `Quick test_bitgrid_set_get;
        Alcotest.test_case "bounds" `Quick test_bitgrid_bounds;
        Alcotest.test_case "fill/clear" `Quick test_bitgrid_fill;
        qtest prop_bitgrid_roundtrip;
      ] );
    ( "util.veca",
      [
        Alcotest.test_case "push/get" `Quick test_veca_push_get;
        Alcotest.test_case "bounds" `Quick test_veca_bounds;
        Alcotest.test_case "fold/find" `Quick test_veca_fold_find;
      ] );
    ( "util.stats-pretty",
      [
        Alcotest.test_case "stats" `Quick test_stats;
        Alcotest.test_case "pretty table" `Quick test_pretty_table;
        Alcotest.test_case "pretty numbers" `Quick test_pretty_numbers;
      ] );
    ( "util.pool",
      [
        Alcotest.test_case "map preserves order" `Quick test_pool_map_order;
        Alcotest.test_case "empty map and run" `Quick test_pool_map_empty_and_run;
        Alcotest.test_case "exception propagates" `Quick
          test_pool_exception_propagates;
        Alcotest.test_case "failure runs all, pool reusable" `Quick
          test_pool_exception_runs_all_and_reuses;
        Alcotest.test_case "lowest-index exception wins" `Quick
          test_pool_lowest_index_exception_wins;
        Alcotest.test_case "backtrace preserved" `Quick
          test_pool_exception_keeps_backtrace;
        Alcotest.test_case "balances uneven tasks" `Quick
          test_pool_balances_uneven_tasks;
        Alcotest.test_case "nested map composes" `Quick test_pool_nested_map;
        Alcotest.test_case "nested exception surfaces" `Quick
          test_pool_nested_exception;
        Alcotest.test_case "helper drains without workers" `Quick
          test_pool_helper_drains_without_workers;
        Alcotest.test_case "async/await" `Quick test_pool_async_await;
        Alcotest.test_case "spawn error surfaced in stats" `Quick
          test_pool_spawn_error_surfaced;
        Alcotest.test_case "combined jobs invariance" `Quick
          test_pool_jobs_invariance_combined;
      ] );
    ( "util.rng-lanes",
      [
        Alcotest.test_case "lane 0 is create" `Quick test_rng_lane_zero_is_create;
        Alcotest.test_case "lanes independent" `Quick test_rng_lanes_independent;
        Alcotest.test_case "split_n" `Quick test_rng_split_n;
      ] );
  ]
