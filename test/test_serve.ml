(* The serving layer under Alcotest: JSON codec round-trips, frame
   framing over a real pipe, cache-key correctness (gate order and every
   result-affecting knob separate keys; jobs/debug/verify do not), the
   LRU cache's accounting, the request/response codec, a QCheck sweep
   of random fuzz cases through the codec, and an in-process end-to-end
   daemon exchange over a temp socket. *)

open Tqec_serve

let check = Alcotest.check

(* --- json ---------------------------------------------------------- *)

let roundtrip v =
  let s = Json.to_string v in
  check Alcotest.string "json round-trip" s (Json.to_string (Json.of_string s))

let test_json_roundtrip () =
  roundtrip Json.Null;
  roundtrip (Json.Bool true);
  roundtrip (Json.Int (-42));
  roundtrip (Json.Float 0.05);
  roundtrip (Json.Float 3.0);
  roundtrip (Json.String "plain");
  roundtrip (Json.String "esc \"quotes\" \\ \n \t \r \b \012 \001 end");
  roundtrip (Json.List [ Json.Int 1; Json.Null; Json.String "x" ]);
  roundtrip
    (Json.Obj
       [
         ("a", Json.List []);
         ("nested", Json.Obj [ ("b", Json.Bool false) ]);
         ("", Json.Int 0);
       ]);
  (* structural equality too, not just print equality *)
  let v =
    Json.Obj
      [ ("k", Json.List [ Json.Float 1.5; Json.Int 2; Json.String "\n" ]) ]
  in
  assert (Json.of_string (Json.to_string v) = v)

let test_json_errors () =
  let bad s =
    match Json.of_string s with
    | _ -> Alcotest.failf "accepted malformed %S" s
    | exception Json.Parse_error _ -> ()
  in
  bad "";
  bad "{";
  bad "[1,]";
  bad "{\"a\":}";
  bad "nul";
  bad "1 2";
  bad "\"unterminated";
  bad "{\"a\":1} trailing"

let test_json_accessors () =
  let j = Json.of_string "{\"i\":7,\"f\":2.5,\"s\":\"x\",\"b\":true}" in
  check Alcotest.(option int) "int" (Some 7)
    (Option.bind (Json.member "i" j) Json.to_int);
  check
    Alcotest.(option (float 0.0))
    "float" (Some 2.5)
    (Option.bind (Json.member "f" j) Json.to_float);
  (* ints coerce to float, not the reverse *)
  check
    Alcotest.(option (float 0.0))
    "int as float" (Some 7.0)
    (Option.bind (Json.member "i" j) Json.to_float);
  check Alcotest.(option int) "float is not int" None
    (Option.bind (Json.member "f" j) Json.to_int);
  check Alcotest.(option string) "missing" None
    (Option.bind (Json.member "zz" j) Json.to_str)

(* --- framing ------------------------------------------------------- *)

let test_framing_pipe () =
  let r, w = Unix.pipe () in
  Fun.protect
    ~finally:(fun () ->
      Unix.close r;
      Unix.close w)
    (fun () ->
      Protocol.write_frame w "hello";
      Protocol.write_frame w "";
      (* stays under the 64 KiB pipe buffer: no reader runs while we
         write, so the frames must fit without blocking *)
      Protocol.write_frame w (String.make 40000 'x');
      check Alcotest.string "frame 1" "hello" (Protocol.read_frame r);
      check Alcotest.string "empty frame" "" (Protocol.read_frame r);
      check Alcotest.int "large frame" 40000
        (String.length (Protocol.read_frame r)))

let test_framing_limits () =
  let r, w = Unix.pipe () in
  Fun.protect
    ~finally:(fun () ->
      Unix.close r;
      Unix.close w)
    (fun () ->
      (match Protocol.write_frame w (String.make (Protocol.max_frame + 1) 'x') with
      | () -> Alcotest.fail "oversized write accepted"
      | exception Protocol.Framing_error _ -> ());
      (* a hostile length prefix is rejected before any allocation *)
      let hdr = Bytes.of_string "\xff\xff\xff\xff" in
      assert (Unix.write w hdr 0 4 = 4);
      match Protocol.read_frame r with
      | _ -> Alcotest.fail "oversized read accepted"
      | exception Protocol.Framing_error _ -> ())

(* --- request/response codec ---------------------------------------- *)

let req_roundtrip r =
  match Protocol.decode_request (Protocol.encode_request r) with
  | Ok r' -> assert (r' = r)
  | Error m -> Alcotest.failf "request did not round-trip: %s" m

let resp_roundtrip r =
  match Protocol.decode_response (Protocol.encode_response r) with
  | Ok r' -> assert (r' = r)
  | Error m -> Alcotest.failf "response did not round-trip: %s" m

let test_codec_requests () =
  req_roundtrip Protocol.Stats;
  req_roundtrip Protocol.Shutdown;
  req_roundtrip
    (Protocol.Compress
       {
         input = Protocol.Named { name = "rd84_142"; scale = 96 };
         knobs = Protocol.default_knobs;
       });
  req_roundtrip
    (Protocol.Compress
       {
         input = Protocol.Qct { name = "fix"; text = "qubits 2\ncnot 0 1\n" };
         knobs =
           {
             Protocol.variant = Tqec_compress.Pipeline.Dual_only;
             effort = Tqec_place.Placer.Full;
             seed = 9;
             restarts = 4;
             jobs = Some 2;
             early_stop = None;
             partition = Some 3;
             corridor = Some 4096;
             debug = true;
             verify = true;
           };
       })

let test_codec_responses () =
  resp_roundtrip (Protocol.Progress { stage = "routing"; seconds = 0.25 });
  resp_roundtrip
    (Protocol.Result
       {
         payload = "x: volume=1 routed=true";
         cached = true;
         timings = [ ("bridging", 0.5); ("placement", 1.25) ];
       });
  resp_roundtrip (Protocol.Busy { in_flight = 1; capacity = 1 });
  resp_roundtrip (Protocol.Failed { message = "verify: 3 violation(s)" });
  resp_roundtrip
    (Protocol.Stats_reply
       {
         Protocol.sv_hits = 1; sv_misses = 2; sv_entries = 3; sv_bytes = 4;
         sv_served = 5; sv_busy = 6; sv_errors = 7; sv_in_flight = 0;
         sv_capacity = 2;
       });
  resp_roundtrip Protocol.Bye

let test_codec_rejects () =
  let bad s =
    match Protocol.decode_request s with
    | Ok _ -> Alcotest.failf "accepted %S" s
    | Error _ -> ()
  in
  bad "not json at all";
  bad "{}";
  bad "{\"op\":\"launch\"}";
  bad "{\"op\":\"compress\"}";
  (* an input, but two of them *)
  bad "{\"op\":\"compress\",\"qct\":\"qubits 1\\n\",\"benchmark\":\"rd84_142\"}";
  bad "{\"op\":\"compress\",\"benchmark\":\"rd84_142\",\"scale\":0}";
  bad "{\"op\":\"compress\",\"benchmark\":\"rd84_142\",\"restarts\":0}";
  (* defaults fill everything the request leaves out *)
  match Protocol.decode_request "{\"op\":\"compress\",\"benchmark\":\"x\"}" with
  | Ok (Protocol.Compress { knobs; _ }) ->
      assert (knobs = Protocol.default_knobs)
  | Ok _ -> Alcotest.fail "decoded to the wrong request"
  | Error m -> Alcotest.failf "minimal request rejected: %s" m

(* --- fingerprint --------------------------------------------------- *)

let icm_of text =
  Tqec_icm.Decompose.run (Tqec_circuit.Qct.parse_string ~name:"fp" text)

let fp ?(knobs = Protocol.default_knobs) text =
  Fingerprint.of_icm (icm_of text) ~knobs

let test_fingerprint_input () =
  let a = "qubits 3\ncnot 0 1\ncnot 1 2\n" in
  check Alcotest.string "identical circuits agree" (fp a) (fp a);
  (* same gate multiset, different order: CNOT(0,1) and CNOT(1,2) do
     not commute, so the keys must differ *)
  let b = "qubits 3\ncnot 1 2\ncnot 0 1\n" in
  assert (fp a <> fp b);
  (* different circuit entirely *)
  assert (fp a <> fp "qubits 3\ncnot 0 1\n");
  (* a T gadget registers in the fingerprint *)
  assert (fp "qubits 2\nt 0\n" <> fp "qubits 2\nt 1\n")

let test_fingerprint_knobs () =
  let text = "qubits 3\ncnot 0 1\nt 1\ncnot 1 2\n" in
  let base = Protocol.default_knobs in
  let key k = fp ~knobs:k text in
  let base_key = key base in
  (* every result-affecting knob separates the key *)
  assert (key { base with Protocol.seed = 7 } <> base_key);
  assert (key { base with Protocol.restarts = 3 } <> base_key);
  assert (key { base with Protocol.partition = Some 2 } <> base_key);
  assert (key { base with Protocol.corridor = Some 512 } <> base_key);
  assert (key { base with Protocol.early_stop = None } <> base_key);
  assert (
    key { base with Protocol.variant = Tqec_compress.Pipeline.Dual_only }
    <> base_key);
  assert (
    key { base with Protocol.effort = Tqec_place.Placer.Normal } <> base_key);
  (* jobs, debug and verify must NOT separate it: the result bytes are
     invariant in all three, and a daemon must hit its cache across
     clients that differ only there *)
  check Alcotest.string "jobs-invariant" base_key
    (key { base with Protocol.jobs = Some 1 });
  check Alcotest.string "jobs-invariant (8)" base_key
    (key { base with Protocol.jobs = Some 8 });
  check Alcotest.string "debug-invariant" base_key
    (key { base with Protocol.debug = true });
  check Alcotest.string "verify-invariant" base_key
    (key { base with Protocol.verify = true })

(* --- cache --------------------------------------------------------- *)

let test_cache_counters () =
  let c = Cache.create ~budget:1000 in
  check Alcotest.(option (pair string (list (pair string (float 0.0)))))
    "miss on empty" None (Cache.find c "k1");
  Cache.add c "k1" ~payload:"payload-one" ~timings:[ ("s", 1.0) ];
  check Alcotest.(option (pair string (list (pair string (float 0.0)))))
    "hit" (Some ("payload-one", [ ("s", 1.0) ]))
    (Cache.find c "k1");
  check Alcotest.int "hits" 1 (Cache.hits c);
  check Alcotest.int "misses" 1 (Cache.misses c);
  check Alcotest.int "entries" 1 (Cache.entries c);
  check Alcotest.int "bytes" (String.length "payload-one") (Cache.bytes c)

let test_cache_lru () =
  let c = Cache.create ~budget:30 in
  let p10 = String.make 10 'a' in
  Cache.add c "a" ~payload:p10 ~timings:[];
  Cache.add c "b" ~payload:p10 ~timings:[];
  Cache.add c "c" ~payload:p10 ~timings:[];
  (* full at 30 bytes; touching "a" makes "b" the LRU victim *)
  assert (Cache.find c "a" <> None);
  Cache.add c "d" ~payload:p10 ~timings:[];
  assert (Cache.find c "b" = None);
  assert (Cache.find c "a" <> None);
  assert (Cache.find c "c" <> None);
  assert (Cache.find c "d" <> None);
  check Alcotest.int "one eviction" 1 (Cache.evictions c);
  check Alcotest.int "bytes stay within budget" 30 (Cache.bytes c)

let test_cache_limits () =
  let c = Cache.create ~budget:10 in
  (* oversized payloads are served but never stored *)
  Cache.add c "big" ~payload:(String.make 11 'x') ~timings:[];
  check Alcotest.int "oversized not stored" 0 (Cache.entries c);
  check Alcotest.int "no bytes" 0 (Cache.bytes c);
  (* same-key replacement accounts bytes once *)
  Cache.add c "k" ~payload:"aaaa" ~timings:[];
  Cache.add c "k" ~payload:"bbbbbb" ~timings:[];
  check Alcotest.int "replacement entries" 1 (Cache.entries c);
  check Alcotest.int "replacement bytes" 6 (Cache.bytes c);
  (match Cache.find c "k" with
  | Some (p, _) -> check Alcotest.string "replacement payload" "bbbbbb" p
  | None -> Alcotest.fail "replaced key missing");
  (* budget 0 disables caching entirely *)
  let c0 = Cache.create ~budget:0 in
  Cache.add c0 "k" ~payload:"" ~timings:[];
  Cache.add c0 "k2" ~payload:"x" ~timings:[];
  check Alcotest.int "zero budget stores only empty payloads" 1
    (Cache.entries c0);
  check Alcotest.int "zero budget holds zero bytes" 0 (Cache.bytes c0)

(* --- codec property over random fuzz cases ------------------------- *)

let qcheck_tests =
  let rand () = Random.State.make [| 0x5EC7 |] in
  List.map
    (fun t -> QCheck_alcotest.to_alcotest ~rand:(rand ()) t)
    [
      QCheck2.Test.make ~count:100 ~name:"serve codec round-trips fuzz cases"
        ~print:Tqec_fuzz.Case.print Tqec_fuzz.Case.gen (fun case ->
          Tqec_fuzz.Oracle.check_codec case = []);
    ]

(* --- in-process end-to-end ----------------------------------------- *)

let test_server_e2e () =
  let socket =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "tqecc-test-%d.sock" (Unix.getpid ()))
  in
  let config =
    { Server.default_config with Server.socket_path = socket; capacity = 1 }
  in
  let daemon = Thread.create (fun () -> ignore (Server.run config)) () in
  (* wait for the listener to come up *)
  let rec await n =
    match Client.call ~socket Protocol.Stats with
    | _ -> ()
    | exception Client.Connect_error _ when n > 0 ->
        Thread.delay 0.02;
        await (n - 1)
  in
  await 250;
  let request =
    Protocol.Compress
      {
        input = Protocol.Qct { name = "e2e"; text = "qubits 2\ncnot 0 1\n" };
        knobs = Protocol.default_knobs;
      }
  in
  let payload_of = function
    | Protocol.Result { payload; cached; _ } -> (payload, cached)
    | other ->
        Alcotest.failf "unexpected response: %s"
          (Protocol.encode_response other)
  in
  let p1, c1 = payload_of (Client.call ~socket request) in
  let p2, c2 = payload_of (Client.call ~socket request) in
  check Alcotest.bool "first is computed" false c1;
  check Alcotest.bool "second is cached" true c2;
  check Alcotest.string "identical bytes" p1 p2;
  (* progress frames stream on the miss; the payload carries the name *)
  assert (String.length p1 > 0);
  check Alcotest.string "payload names the circuit" "e2e"
    (String.sub p1 0 3);
  (match Client.call ~socket Protocol.Stats with
  | Protocol.Stats_reply s ->
      check Alcotest.int "one hit" 1 s.Protocol.sv_hits;
      check Alcotest.int "one miss" 1 s.Protocol.sv_misses;
      check Alcotest.int "served both" 2 s.Protocol.sv_served
  | _ -> Alcotest.fail "stats request failed");
  (match Client.call ~socket Protocol.Shutdown with
  | Protocol.Bye -> ()
  | _ -> Alcotest.fail "shutdown not acknowledged");
  Thread.join daemon;
  check Alcotest.bool "socket removed" false (Sys.file_exists socket)

(* A cyclic constraint DAG reaching the daemon's compute path must come
   back as a structured Failed response naming the icm stage — not kill
   the daemon.  The [icm-cycle] fault seam runs the real pipeline on a
   crafted cyclic ICM, driving the acyclicity gate end to end. *)
let test_server_cycle_failure () =
  let socket =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "tqecc-test-cycle-%d.sock" (Unix.getpid ()))
  in
  let config =
    {
      Server.default_config with
      Server.socket_path = socket;
      capacity = 1;
      fault = Some "icm-cycle";
    }
  in
  let daemon = Thread.create (fun () -> ignore (Server.run config)) () in
  let rec await n =
    match Client.call ~socket Protocol.Stats with
    | _ -> ()
    | exception Client.Connect_error _ when n > 0 ->
        Thread.delay 0.02;
        await (n - 1)
  in
  await 250;
  let request =
    Protocol.Compress
      {
        input = Protocol.Qct { name = "cyc"; text = "qubits 2\ncnot 0 1\n" };
        knobs = Protocol.default_knobs;
      }
  in
  (match Client.call ~socket request with
  | Protocol.Failed { message } ->
      let contains hay needle =
        let n = String.length needle and h = String.length hay in
        let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
        go 0
      in
      check Alcotest.bool "failure names the icm stage" true
        (contains message "icm");
      check Alcotest.bool "failure says cyclic" true
        (contains message "cyclic")
  | other ->
      Alcotest.failf "expected structured failure, got: %s"
        (Protocol.encode_response other));
  (* the daemon survived the failure and still serves *)
  (match Client.call ~socket Protocol.Stats with
  | Protocol.Stats_reply s ->
      check Alcotest.int "error counted" 1 s.Protocol.sv_errors
  | _ -> Alcotest.fail "stats after failure");
  (match Client.call ~socket Protocol.Shutdown with
  | Protocol.Bye -> ()
  | _ -> Alcotest.fail "shutdown not acknowledged");
  Thread.join daemon

let suites =
  [
    ( "serve.json",
      [
        Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
        Alcotest.test_case "malformed input" `Quick test_json_errors;
        Alcotest.test_case "accessors" `Quick test_json_accessors;
      ] );
    ( "serve.protocol",
      [
        Alcotest.test_case "framing over a pipe" `Quick test_framing_pipe;
        Alcotest.test_case "frame limits" `Quick test_framing_limits;
        Alcotest.test_case "request codec" `Quick test_codec_requests;
        Alcotest.test_case "response codec" `Quick test_codec_responses;
        Alcotest.test_case "hostile requests" `Quick test_codec_rejects;
      ] );
    ( "serve.fingerprint",
      [
        Alcotest.test_case "gate order and content" `Quick
          test_fingerprint_input;
        Alcotest.test_case "knob separation" `Quick test_fingerprint_knobs;
      ] );
    ( "serve.cache",
      [
        Alcotest.test_case "hit/miss counters" `Quick test_cache_counters;
        Alcotest.test_case "LRU eviction" `Quick test_cache_lru;
        Alcotest.test_case "budget edge cases" `Quick test_cache_limits;
      ] );
    ("serve.codec-fuzz", qcheck_tests);
    ( "serve.e2e",
      [
        Alcotest.test_case "daemon round trip" `Quick test_server_e2e;
        Alcotest.test_case "cyclic ICM -> structured failure" `Quick
          test_server_cycle_failure;
      ] );
  ]
