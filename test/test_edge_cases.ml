(* Edge-case and failure-injection tests across all libraries. *)

open Tqec_util
open Tqec_circuit
open Tqec_icm
open Tqec_compress

let check = Alcotest.check
let vec = Vec3.make

(* ------------------------------------------------------------------ *)
(* Degenerate circuits through the whole flow                          *)
(* ------------------------------------------------------------------ *)

let quick = { Pipeline.default_config with effort = Tqec_place.Placer.Quick }

let test_single_cnot_pipeline () =
  let c =
    Circuit.make ~name:"one" ~n_qubits:2 [ Gate.Cnot { control = 0; target = 1 } ]
  in
  let r = Pipeline.run ~config:quick c in
  check Alcotest.bool "routes" true r.Pipeline.routing.Tqec_route.Pathfinder.success;
  check Alcotest.(list string) "sound" [] (Pipeline.check r)

let test_gateless_wire_pipeline () =
  (* wire 2 never used: flows through without canonical rails *)
  let c =
    Circuit.make ~name:"sparse" ~n_qubits:3
      [ Gate.Cnot { control = 0; target = 1 } ]
  in
  let icm = Decompose.run c in
  check Alcotest.int "rails skip unused" 2 (Tqec_geom.Canonical.used_rows icm);
  let r = Pipeline.run_icm ~config:quick icm in
  check Alcotest.bool "still sound" true (Pipeline.check r = [])

let test_pauli_only_circuit () =
  (* no CNOTs at all: zero canonical volume, no nets to route *)
  let c = Circuit.make ~name:"paulis" ~n_qubits:2 [ Gate.X 0; Gate.Z 1 ] in
  let icm = Decompose.run c in
  check Alcotest.int "no defect volume" 0 (Tqec_geom.Canonical.defect_volume icm);
  check Alcotest.int "lin steps zero" 0 (Baselines.lin_1d icm).Baselines.l_steps

let test_t_only_circuit_pipeline () =
  let c = Circuit.make ~name:"t" ~n_qubits:1 [ Gate.T 0 ] in
  let r = Pipeline.run ~config:quick c in
  check Alcotest.bool "sound" true (Pipeline.check r = []);
  (* 3 distillation boxes placed: volume at least their footprints *)
  check Alcotest.bool "volume covers boxes" true (r.Pipeline.volume >= 192 + 18 + 18)

let test_deep_t_chain () =
  (* many T gadgets on one wire: a long time-SM strip must stay legal *)
  let c =
    Circuit.make ~name:"tchain" ~n_qubits:1 (List.init 6 (fun _ -> Gate.T 0))
  in
  let r = Pipeline.run ~config:quick c in
  check Alcotest.bool "sound" true (Pipeline.check r = []);
  let sm_nodes =
    Array.to_list r.Pipeline.placement.Tqec_place.Placer.sm.Tqec_place.Super_module.nodes
    |> List.filter (fun nd ->
           match nd.Tqec_place.Super_module.nd_kind with
           | Tqec_place.Super_module.Time_sm _ -> true
           | _ -> false)
  in
  check Alcotest.int "one strip" 1 (List.length sm_nodes);
  (* 6 gadgets x 5 ordered measurements each *)
  match (List.hd sm_nodes).Tqec_place.Super_module.nd_kind with
  | Tqec_place.Super_module.Time_sm { modules; _ } ->
      check Alcotest.int "30 ordered modules" 30 (List.length modules)
  | _ -> assert false

(* Fuzz-fleet regression pins: circuits with no placeable module used
   to raise ("Placer.place: no nodes") or report a phantom volume of 1
   (the bbox fold was seeded with a zero cell).  The whole flow now
   returns the empty placement with volume 0 and verifies clean. *)
let test_empty_circuit_pipeline () =
  List.iter
    (fun n_qubits ->
      let c =
        Circuit.make ~name:(Printf.sprintf "empty%d" n_qubits) ~n_qubits []
      in
      let r = Pipeline.run ~config:quick c in
      check Alcotest.int "volume 0" 0 r.Pipeline.volume;
      check Alcotest.int "no nodes" 0
        (Array.length r.Pipeline.placement.Tqec_place.Placer.node_pos);
      check Alcotest.bool "routes (vacuous)" true
        r.Pipeline.routing.Tqec_route.Pathfinder.success;
      check Alcotest.(list string) "sound" [] (Pipeline.check r))
    [ 1; 3 ]

let test_pauli_only_pipeline_full_flow () =
  (* X/Z fold into the Pauli frame: no modules, no nets, volume 0 *)
  let c = Circuit.make ~name:"paulis" ~n_qubits:2 [ Gate.X 0; Gate.Z 1 ] in
  let r = Pipeline.run ~config:quick c in
  check Alcotest.int "volume 0" 0 r.Pipeline.volume;
  check Alcotest.(list string) "sound" [] (Pipeline.check r)

let test_h_only_pipeline () =
  (* H only flips the interpretation frame: still module-free *)
  let c = Circuit.make ~name:"hs" ~n_qubits:2 [ Gate.H 0; Gate.H 0; Gate.H 1 ] in
  let r = Pipeline.run ~config:quick c in
  check Alcotest.int "volume 0" 0 r.Pipeline.volume;
  check Alcotest.(list string) "sound" [] (Pipeline.check r)

let test_empty_circuit_partitioned () =
  (* the divide-and-conquer path must also survive zero nodes *)
  let c = Circuit.make ~name:"empty" ~n_qubits:2 [] in
  let config = { quick with Pipeline.partition = Some 1 } in
  let r = Pipeline.run ~config c in
  check Alcotest.int "volume 0" 0 r.Pipeline.volume;
  check Alcotest.(list string) "sound" [] (Pipeline.check r)

let test_partition_zero_nodes () =
  check Alcotest.int "empty partition" 0
    (Array.length (Tqec_place.Partition.run ~n:0 ~nets:[||] ~max_part:4))

(* ------------------------------------------------------------------ *)
(* Parser / format edges                                               *)
(* ------------------------------------------------------------------ *)

let test_revlib_empty_body () =
  let c = Revlib.parse_string ~name:"e" ".numvars 2\n.begin\n.end\n" in
  check Alcotest.int "no gates" 0 (Circuit.n_gates c);
  check Alcotest.int "wires from numvars" 2 c.Circuit.n_qubits

let test_revlib_crlf_and_tabs () =
  let c = Revlib.parse_string ~name:"w" ".numvars 2\n.begin\nt2\tx0  x1\n.end\n" in
  check Alcotest.int "one gate" 1 (Circuit.n_gates c)

let test_revlib_case_insensitive_directives () =
  let c = Revlib.parse_string ~name:"c" ".NUMVARS 2\n.BEGIN\nt1 x1\n.END\n" in
  check Alcotest.int "parsed" 1 (Circuit.n_gates c)

let test_revlib_gate_after_end_ignored () =
  let c =
    Revlib.parse_string ~name:"g" ".numvars 2\n.begin\nt1 x0\n.end\nt1 x1\n"
  in
  check Alcotest.int "stops at .end" 1 (Circuit.n_gates c)

(* ------------------------------------------------------------------ *)
(* Geometry / routing edges                                            *)
(* ------------------------------------------------------------------ *)

let test_grid_one_cell () =
  let g = Tqec_route.Grid.create (Box3.of_cell (vec 0 0 0)) in
  check Alcotest.bool "in bounds" true (Tqec_route.Grid.in_bounds g (vec 0 0 0));
  check Alcotest.bool "out" false (Tqec_route.Grid.in_bounds g (vec 1 0 0))

let test_astar_source_is_target () =
  let g = Tqec_route.Grid.create (Box3.make (vec 0 0 0) (vec 3 3 3)) in
  match
    Tqec_route.Astar.search g
      ~region:(Box3.make (vec 0 0 0) (vec 3 3 3))
      ~penalty:1
      ~sources:[ vec 1 1 1 ]
      ~target:(vec 1 1 1)
  with
  | Some [ p ] -> check Alcotest.bool "trivial path" true (Vec3.equal p (vec 1 1 1))
  | Some _ -> Alcotest.fail "expected singleton path"
  | None -> Alcotest.fail "expected trivial path"

let test_astar_expansion_cap () =
  let g = Tqec_route.Grid.create (Box3.make (vec 0 0 0) (vec 9 9 9)) in
  check Alcotest.bool "budget exhausted" true
    (Tqec_route.Astar.search ~max_expansions:1 g
       ~region:(Box3.make (vec 0 0 0) (vec 9 9 9))
       ~penalty:1
       ~sources:[ vec 0 0 0 ]
       ~target:(vec 9 9 9)
    = None)

let test_pathfinder_empty_nets () =
  let g = Tqec_route.Grid.create (Box3.make (vec 0 0 0) (vec 3 3 3)) in
  let r = Tqec_route.Pathfinder.route_all g Tqec_route.Pathfinder.default_config [] in
  check Alcotest.bool "vacuous success" true r.Tqec_route.Pathfinder.success

let test_defect_single_vertex () =
  check Alcotest.bool "single primal vertex valid open" true
    (Tqec_geom.Defect.valid_path ~dtype:Tqec_geom.Defect.Primal ~closed:false
       [ vec 0 0 0 ]);
  check Alcotest.bool "single vertex cannot close" false
    (Tqec_geom.Defect.valid_path ~dtype:Tqec_geom.Defect.Primal ~closed:true
       [ vec 0 0 0 ])

let test_loop_of_corners_rejects_overlap () =
  (* a figure-eight corner list revisits a vertex *)
  try
    ignore
      (Tqec_geom.Defect.loop_of_corners ~id:0 ~structure:0
         ~dtype:Tqec_geom.Defect.Primal
         [ vec 0 0 0; vec 4 0 0; vec 4 2 0; vec 0 2 0; vec 0 0 0; vec 2 0 0 ]);
    Alcotest.fail "expected rejection"
  with Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Scheduling / constraints edges                                      *)
(* ------------------------------------------------------------------ *)

let test_schedule_empty () =
  let icm = Decompose.run (Circuit.make ~name:"e" ~n_qubits:1 []) in
  check Alcotest.int "zero depth" 0 (Schedule.asap icm).Schedule.depth;
  check (Alcotest.float 1e-9) "zero parallelism" 0. (Schedule.parallelism icm)

let test_constraints_empty () =
  let icm = Decompose.run (Circuit.make ~name:"e" ~n_qubits:1 []) in
  check Alcotest.int "no pairs" 0 (List.length (Constraints.of_icm icm));
  check Alcotest.int "order covers all" (Array.length icm.Icm.meas)
    (List.length (Constraints.topological_order icm))

(* ------------------------------------------------------------------ *)
(* Generator edges                                                     *)
(* ------------------------------------------------------------------ *)

let test_generator_coverage_guarantee () =
  (* every active wire is touched by a CNOT or Toffoli even when the
     gate count barely covers the wires *)
  let spec =
    { Generator.name = "cov"; n_wires = 10; n_toffoli = 2; n_cnot = 3;
      n_not = 0; n_unused = 2; seed = 77 }
  in
  let c = Generator.generate spec in
  let used = Array.make 10 false in
  List.iter
    (fun g ->
      match (g : Gate.t) with
      | Cnot _ | Toffoli _ -> List.iter (fun q -> used.(q) <- true) (Gate.qubits g)
      | _ -> ())
    c.Circuit.gates;
  for w = 0 to 7 do
    check Alcotest.bool (Printf.sprintf "wire %d used" w) true used.(w)
  done;
  check Alcotest.bool "unused tail untouched" false (used.(8) || used.(9))

let test_generator_rejects_impossible () =
  let spec =
    { Generator.name = "bad"; n_wires = 3; n_toffoli = 1; n_cnot = 0;
      n_not = 0; n_unused = 1; seed = 1 }
  in
  try
    ignore (Generator.generate spec);
    Alcotest.fail "expected rejection (2 active wires, needs 3)"
  with Invalid_argument _ -> ()

let test_tier_name_hardening () =
  (* well-formed *)
  check Alcotest.(option int) "x1" (Some 1) (Generator.tier_factor_of_name "tier-x1");
  check Alcotest.(option int) "x007" (Some 7)
    (Generator.tier_factor_of_name "tier-x007");
  check Alcotest.(option int) "max" (Some Generator.max_tier_factor)
    (Generator.tier_factor_of_name
       (Printf.sprintf "tier-x%d" Generator.max_tier_factor));
  (* malformed: zero, negative, non-numeric, radix prefixes, overflow *)
  List.iter
    (fun name ->
      check Alcotest.(option int) name None (Generator.tier_factor_of_name name);
      check Alcotest.bool (name ^ " no circuit") true
        (Generator.tier_of_name name = None))
    [
      "tier-x0"; "tier-x-3"; "tier-x"; "tier-xx"; "tier-x1.5"; "tier-x1e3";
      "tier-x0x10"; "tier-x0b1"; "tier-x1_0"; "tier-x+2"; "tier-x 2";
      "tier-x100001"; "tier-x99999999999999999999999"; "tier-y4"; "rd84_142";
    ]

let test_peak_rss_degrades () =
  let write content =
    let path = Filename.temp_file "tqec-status" ".txt" in
    let oc = open_out path in
    output_string oc content;
    close_out oc;
    path
  in
  (* a real-looking status file parses *)
  let ok = write "Name:\tx\nVmHWM:\t  123456 kB\nVmRSS:\t 99 kB\n" in
  check Alcotest.(option int) "parses VmHWM" (Some 123456)
    (Stats.peak_rss_kb ~path:ok ());
  (* missing file, missing field, digit-free field: None, no exception *)
  check Alcotest.(option int) "missing file" None
    (Stats.peak_rss_kb ~path:"/nonexistent/status" ());
  let absent = write "Name:\tx\nVmRSS:\t 99 kB\n" in
  check Alcotest.(option int) "field absent" None
    (Stats.peak_rss_kb ~path:absent ());
  let garbage = write "VmHWM:\tkB\n" in
  check Alcotest.(option int) "digit-free field" None
    (Stats.peak_rss_kb ~path:garbage ());
  List.iter Sys.remove [ ok; absent; garbage ];
  (* and the live Linux path still answers on this platform *)
  match Stats.peak_rss_kb () with
  | Some kb -> check Alcotest.bool "positive" true (kb > 0)
  | None -> ()

let test_suite_scaled_floor () =
  (* extreme scaling still yields a legal circuit *)
  let e = List.hd Suite.all in
  let c = Suite.scaled ~factor:10_000 e in
  check Alcotest.bool "non-empty" true (Circuit.n_gates c > 0);
  check Alcotest.bool "has toffoli" true (Circuit.count_toffoli c >= 1)

(* ------------------------------------------------------------------ *)
(* Report / pretty edges                                               *)
(* ------------------------------------------------------------------ *)

let test_report_empty_rows () =
  (* fig1 renderer with an empty series still renders a header *)
  let s = Report.fig1 [] in
  check Alcotest.bool "renders" true (String.length s > 0)

let test_pretty_aligns () =
  let t = Pretty.create ~aligns:[ Pretty.Left; Pretty.Left ] [ "a"; "b" ] in
  Pretty.add_row t [ "xx"; "y" ];
  let s = Pretty.render t in
  check Alcotest.bool "left aligned" true (String.length s > 0)

let suites =
  [
    ( "edge.pipeline",
      [
        Alcotest.test_case "single cnot" `Quick test_single_cnot_pipeline;
        Alcotest.test_case "gateless wire" `Quick test_gateless_wire_pipeline;
        Alcotest.test_case "pauli only" `Quick test_pauli_only_circuit;
        Alcotest.test_case "t only" `Quick test_t_only_circuit_pipeline;
        Alcotest.test_case "deep T chain" `Quick test_deep_t_chain;
        Alcotest.test_case "empty circuit" `Quick test_empty_circuit_pipeline;
        Alcotest.test_case "pauli-only full flow" `Quick
          test_pauli_only_pipeline_full_flow;
        Alcotest.test_case "h only" `Quick test_h_only_pipeline;
        Alcotest.test_case "empty partitioned" `Quick
          test_empty_circuit_partitioned;
        Alcotest.test_case "partition n=0" `Quick test_partition_zero_nodes;
      ] );
    ( "edge.revlib",
      [
        Alcotest.test_case "empty body" `Quick test_revlib_empty_body;
        Alcotest.test_case "tabs" `Quick test_revlib_crlf_and_tabs;
        Alcotest.test_case "case-insensitive" `Quick
          test_revlib_case_insensitive_directives;
        Alcotest.test_case "after .end" `Quick test_revlib_gate_after_end_ignored;
      ] );
    ( "edge.geometry-routing",
      [
        Alcotest.test_case "one-cell grid" `Quick test_grid_one_cell;
        Alcotest.test_case "source is target" `Quick test_astar_source_is_target;
        Alcotest.test_case "expansion cap" `Quick test_astar_expansion_cap;
        Alcotest.test_case "empty nets" `Quick test_pathfinder_empty_nets;
        Alcotest.test_case "single vertex defect" `Quick test_defect_single_vertex;
        Alcotest.test_case "self-overlapping loop" `Quick
          test_loop_of_corners_rejects_overlap;
      ] );
    ( "edge.schedule-constraints",
      [
        Alcotest.test_case "empty schedule" `Quick test_schedule_empty;
        Alcotest.test_case "empty constraints" `Quick test_constraints_empty;
      ] );
    ( "edge.generator",
      [
        Alcotest.test_case "coverage guarantee" `Quick
          test_generator_coverage_guarantee;
        Alcotest.test_case "impossible spec" `Quick test_generator_rejects_impossible;
        Alcotest.test_case "tier name hardening" `Quick test_tier_name_hardening;
        Alcotest.test_case "peak rss degrades" `Quick test_peak_rss_degrades;
        Alcotest.test_case "scaled floor" `Quick test_suite_scaled_floor;
      ] );
    ( "edge.report",
      [
        Alcotest.test_case "empty fig1" `Quick test_report_empty_rows;
        Alcotest.test_case "pretty aligns" `Quick test_pretty_aligns;
      ] );
  ]
