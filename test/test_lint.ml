(* The Tqec_lint subsystem: lexer edge cases (nested comments, literals
   that contain rule patterns, unterminated forms), one planted fixture
   per rule family proving it fails unaudited and passes audited, the
   audit-marker grammar, and the baseline mechanism. *)

open Tqec_lint

let check = Alcotest.check

let rule id =
  match Rules.find id with
  | Some r -> r
  | None -> Alcotest.failf "rule %s missing from catalog" id

let findings ?(path = "lib/fixture.ml") ids src =
  Engine.lint_string ~rules:(List.map rule ids) ~path src
  |> List.map (fun (f : Rule.finding) -> f.Rule.f_rule)

(* --- lexer ---------------------------------------------------------- *)

let test_lexer_nested_comments () =
  let lx = Lexer.scan "before (* a (* nested *) b *) after" in
  let texts = Array.map (fun (t : Lexer.token) -> t.Lexer.t_text) lx.Lexer.tokens in
  check Alcotest.(array string) "only code tokens" [| "before"; "after" |] texts;
  check Alcotest.int "one comment" 1 (Array.length lx.Lexer.comments);
  check Alcotest.string "nested body kept" " a (* nested *) b "
    lx.Lexer.comments.(0).Lexer.c_text

let test_lexer_patterns_in_literals () =
  (* rule patterns inside string, quoted-string and comment bodies are
     invisible: only the code token fires *)
  check
    Alcotest.(list string)
    "plain string literal" []
    (findings [ "hash-order" ] "let s = \"Hashtbl.iter\"");
  check
    Alcotest.(list string)
    "quoted string literal" []
    (findings [ "hash-order" ] "let s = {|Hashtbl.iter|}");
  check
    Alcotest.(list string)
    "id-delimited quoted string" []
    (findings [ "hash-order" ] "let s = {ext|Hashtbl.iter|ext}");
  check
    Alcotest.(list string)
    "comment body" []
    (findings [ "hash-order" ] "(* Hashtbl.iter is discussed here *)");
  check
    Alcotest.(list string)
    "code token still fires" [ "hash-order" ]
    (findings [ "hash-order" ] "let () = Hashtbl.iter f t")

let test_lexer_escapes () =
  (* escaped quotes stay inside the string *)
  check
    Alcotest.(list string)
    "escaped quote" []
    (findings [ "hash-order" ] "let s = \"a\\\"Hashtbl.iter\\\"b\"");
  (* a char literal holding a quote must not open a string *)
  check
    Alcotest.(list string)
    "quote char literal" [ "hash-order" ]
    (findings [ "hash-order" ] "let c = '\"' let () = Hashtbl.iter f t");
  (* a type variable's quote is not a char literal *)
  let lx = Lexer.scan "let f (x : 'a) = x" in
  check Alcotest.bool "type variable lexes" true
    (Array.exists
       (fun (t : Lexer.token) -> t.Lexer.t_text = "a")
       lx.Lexer.tokens)

let test_lexer_unterminated () =
  (* all unterminated forms degrade to end-of-input without raising and
     without leaking their contents as code tokens *)
  check
    Alcotest.(list string)
    "unterminated comment" []
    (findings [ "hash-order" ] "(* never closed Hashtbl.iter");
  check
    Alcotest.(list string)
    "unterminated string" []
    (findings [ "hash-order" ] "let s = \"Hashtbl.iter");
  check
    Alcotest.(list string)
    "unterminated quoted string" []
    (findings [ "hash-order" ] "let s = {x|Hashtbl.iter");
  let lx = Lexer.scan "x (* open" in
  check Alcotest.int "unterminated comment recorded" 1
    (Array.length lx.Lexer.comments)

let test_lexer_positions () =
  let lx = Lexer.scan "a\n  bb\n   Hashtbl.iter" in
  let t = lx.Lexer.tokens in
  check Alcotest.int "three tokens" 3 (Array.length t);
  check Alcotest.int "line of bb" 2 t.(1).Lexer.t_line;
  check Alcotest.int "col of bb" 3 t.(1).Lexer.t_col;
  check Alcotest.int "line of path token" 3 t.(2).Lexer.t_line;
  check Alcotest.string "module path joined" "Hashtbl.iter"
    t.(2).Lexer.t_text

let test_lexer_lowercase_paths_stay_split () =
  (* [p.field <- v] must keep its [<-] visible to the race rule *)
  let lx = Lexer.scan "p.spawn_failed <- true" in
  let texts = Array.map (fun (t : Lexer.token) -> t.Lexer.t_text) lx.Lexer.tokens in
  check
    Alcotest.(array string)
    "record mutation tokens"
    [| "p"; "."; "spawn_failed"; "<-"; "true" |]
    texts

(* --- one planted fixture per rule family ---------------------------- *)

let expect_rule ~id ~unaudited ~audited ?(path = "lib/fixture.ml") () =
  check
    Alcotest.(list string)
    (id ^ " fires unaudited") [ id ]
    (findings ~path [ id ] unaudited);
  check
    Alcotest.(list string)
    (id ^ " passes audited") []
    (findings ~path [ id ] audited)

let test_rule_hash_order () =
  expect_rule ~id:"hash-order"
    ~unaudited:"let () = Hashtbl.iter f t"
    ~audited:"(* hash-order: output sorted below *)\nlet () = Hashtbl.iter f t"
    ()

let test_rule_env_read () =
  expect_rule ~id:"env-read"
    ~unaudited:"let v = Sys.getenv_opt \"TQEC_X\""
    ~audited:
      "(* env-read: call-time capture, CLI owns the default *)\n\
       let v = Sys.getenv_opt \"TQEC_X\""
    ();
  (* CLI/test layers are exempt *)
  check
    Alcotest.(list string)
    "env-read exempt outside lib" []
    (findings ~path:"bin/fixture.ml" [ "env-read" ]
       "let v = Sys.getenv_opt \"TQEC_X\"")

let test_rule_partial () =
  expect_rule ~id:"partial"
    ~unaudited:"let f () = failwith \"nope\""
    ~audited:"(* partial: caller guarantees non-empty input *)\nlet f () = failwith \"nope\""
    ();
  (* a comment between the pattern tokens neither hides nor audits *)
  check
    Alcotest.(list string)
    "assert false with comment between" [ "partial" ]
    (findings [ "partial" ] "let f () = assert (* sic *) false");
  check
    Alcotest.(list string)
    "partial exempt outside lib" []
    (findings ~path:"test/fixture.ml" [ "partial" ] "let f () = failwith \"x\"")

let test_rule_swallow () =
  expect_rule ~id:"swallow"
    ~unaudited:"let x = try f () with _ -> 0"
    ~audited:
      "(* swallow: absence of the optional file is the common case *)\n\
       let x = try f () with _ -> 0"
    ();
  (* a catch-all value match is not an exception swallow *)
  check
    Alcotest.(list string)
    "match catch-all exempt" []
    (findings [ "swallow" ] "let x = match f () with | _ -> 0");
  check
    Alcotest.(list string)
    "match without bar exempt" []
    (findings [ "swallow" ] "let x = match f () with _ -> 0");
  (* a try nested inside a match arm still fires *)
  check
    Alcotest.(list string)
    "try inside match arm" [ "swallow" ]
    (findings [ "swallow" ]
       "let x = match y with | A -> (try f () with _ -> 0) | B -> 1")

let test_rule_wallclock () =
  expect_rule ~id:"wallclock"
    ~unaudited:"let t0 = Unix.gettimeofday ()"
    ~audited:
      "(* wallclock: reporting-only stage timing *)\n\
       let t0 = Unix.gettimeofday ()"
    ();
  expect_rule ~id:"wallclock" ~unaudited:"let t = Sys.time ()"
    ~audited:"(* wallclock: coarse budget clock only *)\nlet t = Sys.time ()"
    ()

let test_rule_unsafe () =
  expect_rule ~id:"unsafe"
    ~unaudited:"let y = Obj.magic x"
    ~audited:
      "(* unsafe: both sides are the same runtime representation *)\n\
       let y = Obj.magic x"
    ();
  (* the prefix unit matches the whole Array.unsafe_* family *)
  check
    Alcotest.(list string)
    "unsafe_get" [ "unsafe" ]
    (findings [ "unsafe" ] "let v = Array.unsafe_get a 0");
  check
    Alcotest.(list string)
    "unsafe_set" [ "unsafe" ]
    (findings [ "unsafe" ] "let () = Array.unsafe_set a 0 v")

let race_unaudited =
  "let () =\n  Pool.map\n    (fun i ->\n      total := !total + i)\n    items"

let race_audited_at_site =
  "let () =\n\
   \  Pool.map\n\
   \    (fun i ->\n\
   \      (* race: total is an atomic-free demo accumulator guarded by\n\
   \         the pool's completion barrier *)\n\
   \      total := !total + i)\n\
   \    items"

let race_audited_at_call =
  "(* race: per-index slots, no two tasks share a cell *)\n\
   let () =\n\
   \  Pool.map\n\
   \    (fun i ->\n\
   \      slots.(i) <- i)\n\
   \    items"

let test_rule_race () =
  check
    Alcotest.(list string)
    "race fires unaudited" [ "race" ]
    (findings [ "race" ] race_unaudited);
  check
    Alcotest.(list string)
    "race passes audited at mutation" []
    (findings [ "race" ] race_audited_at_site);
  check
    Alcotest.(list string)
    "race passes audited at the Pool call" []
    (findings [ "race" ] race_audited_at_call);
  (* a fully-qualified call opens the same window *)
  check
    Alcotest.(list string)
    "qualified Pool.map" [ "race" ]
    (findings [ "race" ]
       "let () = Tqec_util.Pool.map (fun i -> c := i) items");
  (* passing a named function opens no window *)
  check
    Alcotest.(list string)
    "named task function" []
    (findings [ "race" ] "let r = Pool.map ~jobs work items\nlet () = c := 1")

(* --- audit grammar -------------------------------------------------- *)

let test_audit_requires_justification () =
  (* a bare marker with nothing after it is not an audit *)
  check
    Alcotest.(list string)
    "empty audit rejected" [ "partial" ]
    (findings [ "partial" ] "(* partial: *)\nlet f () = failwith \"x\"");
  check Alcotest.bool "marker grammar direct" false
    (Engine.marker_with_justification " partial: " "partial:");
  check Alcotest.bool "justified" true
    (Engine.marker_with_justification " partial: invariant holds " "partial:")

let test_audit_window () =
  (* an audit too far above the site does not waive it (before = 3) *)
  let far =
    "(* partial: too far away *)\n\n\n\n\nlet f () = failwith \"x\""
  in
  check Alcotest.(list string) "audit out of window" [ "partial" ]
    (findings [ "partial" ] far);
  (* on the line after the site still counts (after = 1) *)
  let below = "let f () = failwith \"x\"\n(* partial: caller checked *)" in
  check Alcotest.(list string) "audit below the site" []
    (findings [ "partial" ] below)

let test_unit_matches () =
  check Alcotest.bool "exact" true (Rule.unit_matches "failwith" "failwith");
  check Alcotest.bool "module-path suffix" true
    (Rule.unit_matches "Pool.map" "Tqec_util.Pool.map");
  check Alcotest.bool "prefix unit" true
    (Rule.unit_matches "Array.unsafe_*" "Array.unsafe_blit");
  check Alcotest.bool "prefix after module path" true
    (Rule.unit_matches "Array.unsafe_*" "Stdlib.Array.unsafe_get");
  check Alcotest.bool "no substring match" false
    (Rule.unit_matches "exit" "exited");
  check Alcotest.bool "no mid-segment match" false
    (Rule.unit_matches "Pool.map" "Whirlpool.map")

(* --- reports and baseline ------------------------------------------- *)

let test_reports_deterministic () =
  let src = "let () = Hashtbl.iter f t\nlet g () = failwith \"x\"" in
  let run () =
    Engine.lint_string ~rules:Rules.all ~path:"lib/fixture.ml" src
  in
  let fs = run () in
  check Alcotest.int "two findings" 2 (List.length fs);
  let summary =
    { Report.files = 1; rules = Rules.ids; suppressed = 0; unused_baseline = 0 }
  in
  check Alcotest.string "text stable" (Report.text summary fs)
    (Report.text summary (run ()));
  check Alcotest.string "json stable" (Report.json summary fs)
    (Report.json summary (run ()));
  (* ordered by (path, line, col, rule) *)
  check
    Alcotest.(list string)
    "sorted findings" [ "hash-order"; "partial" ]
    (List.map (fun (f : Rule.finding) -> f.Rule.f_rule) fs)

let test_baseline () =
  let src = "let () = Hashtbl.iter f t\nlet g () = failwith \"x\"" in
  let fs = Engine.lint_string ~rules:Rules.all ~path:"lib/fixture.ml" src in
  let entry = Engine.baseline_entry (List.hd fs) in
  let b =
    Engine.baseline_of_string
      ("# a comment\n\n" ^ entry ^ "\nstale lib/gone.ml:9 token\n")
  in
  let kept, suppressed, unused = Engine.apply_baseline b fs in
  check Alcotest.int "one suppressed" 1 suppressed;
  check Alcotest.int "one stale" 1 unused;
  check
    Alcotest.(list string)
    "kept the other" [ "partial" ]
    (List.map (fun (f : Rule.finding) -> f.Rule.f_rule) kept)

let suites =
  [
    ( "lint.lexer",
      [
        Alcotest.test_case "nested comments" `Quick test_lexer_nested_comments;
        Alcotest.test_case "patterns inside literals" `Quick
          test_lexer_patterns_in_literals;
        Alcotest.test_case "escapes" `Quick test_lexer_escapes;
        Alcotest.test_case "unterminated forms" `Quick test_lexer_unterminated;
        Alcotest.test_case "positions" `Quick test_lexer_positions;
        Alcotest.test_case "lowercase paths stay split" `Quick
          test_lexer_lowercase_paths_stay_split;
      ] );
    ( "lint.rules",
      [
        Alcotest.test_case "hash-order" `Quick test_rule_hash_order;
        Alcotest.test_case "env-read" `Quick test_rule_env_read;
        Alcotest.test_case "partial" `Quick test_rule_partial;
        Alcotest.test_case "swallow" `Quick test_rule_swallow;
        Alcotest.test_case "wallclock" `Quick test_rule_wallclock;
        Alcotest.test_case "unsafe" `Quick test_rule_unsafe;
        Alcotest.test_case "race" `Quick test_rule_race;
      ] );
    ( "lint.audits",
      [
        Alcotest.test_case "justification required" `Quick
          test_audit_requires_justification;
        Alcotest.test_case "window" `Quick test_audit_window;
        Alcotest.test_case "unit matching" `Quick test_unit_matches;
      ] );
    ( "lint.report",
      [
        Alcotest.test_case "deterministic reports" `Quick
          test_reports_deterministic;
        Alcotest.test_case "baseline" `Quick test_baseline;
      ] );
  ]
