(* Tests for the ICM decomposition, constraints and validation. *)

open Tqec_circuit
open Tqec_icm

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let icm_of gates ~n_qubits =
  Decompose.run (Circuit.make ~name:"t" ~n_qubits gates)

(* ------------------------------------------------------------------ *)
(* Decompose                                                           *)
(* ------------------------------------------------------------------ *)

let test_cnot_only () =
  let icm = icm_of ~n_qubits:2 [ Gate.Cnot { control = 0; target = 1 } ] in
  check Alcotest.int "lines" 2 icm.Icm.n_lines;
  check Alcotest.int "cnots" 1 (Array.length icm.Icm.cnots);
  check Alcotest.int "no gadgets" 0 (Array.length icm.Icm.t_gadgets);
  check Alcotest.int "all measured" 2 (Array.length icm.Icm.meas);
  check Alcotest.bool "valid" true (Validate.is_valid icm)

let test_t_gadget_shape () =
  let icm = icm_of ~n_qubits:1 [ Gate.T 0 ] in
  let s = Icm.stats icm in
  check Alcotest.int "lines = 1 + 6" 7 s.Icm.s_qubits;
  check Alcotest.int "cnots = 6" 6 s.Icm.s_cnots;
  check Alcotest.int "one A" 1 s.Icm.s_a;
  check Alcotest.int "two Y" 2 s.Icm.s_y;
  check Alcotest.int "one gadget" 1 (Array.length icm.Icm.t_gadgets);
  let g = icm.Icm.t_gadgets.(0) in
  check Alcotest.int "six gadget lines" 6 (List.length g.Icm.t_lines);
  check Alcotest.int "six gadget cnots" 6 (List.length g.Icm.t_cnots);
  check Alcotest.int "four second-order" 4 (List.length g.Icm.t_second_meas);
  check Alcotest.bool "valid" true (Validate.is_valid icm)

let test_tdg_same_cost () =
  let a = icm_of ~n_qubits:1 [ Gate.T 0 ] in
  let b = icm_of ~n_qubits:1 [ Gate.Tdg 0 ] in
  check Alcotest.bool "same stats" true (Icm.stats a = Icm.stats b)

let test_s_gadget () =
  let icm = icm_of ~n_qubits:1 [ Gate.S 0 ] in
  let s = Icm.stats icm in
  check Alcotest.int "lines" 2 s.Icm.s_qubits;
  check Alcotest.int "cnots" 1 s.Icm.s_cnots;
  check Alcotest.int "one Y" 1 s.Icm.s_y;
  check Alcotest.int "no A" 0 s.Icm.s_a

let test_pauli_frame_free () =
  let icm = icm_of ~n_qubits:2 [ Gate.X 0; Gate.Z 1; Gate.X 1 ] in
  check Alcotest.int "no cnots" 0 (Array.length icm.Icm.cnots);
  check Alcotest.int "two lines" 2 icm.Icm.n_lines

let test_h_flips_measurement_basis () =
  let plain = icm_of ~n_qubits:1 [] in
  let hd = icm_of ~n_qubits:1 [ Gate.H 0 ] in
  let hh = icm_of ~n_qubits:1 [ Gate.H 0; Gate.H 0 ] in
  check Alcotest.bool "plain measures Z" true
    ((Icm.meas_of_line plain 0).Icm.m_basis = Icm.Mz);
  check Alcotest.bool "H measures X" true
    ((Icm.meas_of_line hd 0).Icm.m_basis = Icm.Mx);
  check Alcotest.bool "HH measures Z" true
    ((Icm.meas_of_line hh 0).Icm.m_basis = Icm.Mz)

let test_rejects_toffoli () =
  try
    ignore (icm_of ~n_qubits:3 [ Gate.Toffoli { c1 = 0; c2 = 1; target = 2 } ]);
    Alcotest.fail "expected rejection"
  with Invalid_argument _ -> ()

let test_wire_continues_after_t () =
  let icm = icm_of ~n_qubits:1 [ Gate.T 0; Gate.T 0 ] in
  check Alcotest.int "two gadgets" 2 (Array.length icm.Icm.t_gadgets);
  let g0 = icm.Icm.t_gadgets.(0) and g1 = icm.Icm.t_gadgets.(1) in
  check Alcotest.int "same wire" g0.Icm.t_wire g1.Icm.t_wire;
  check Alcotest.int "seq 0" 0 g0.Icm.t_seq;
  check Alcotest.int "seq 1" 1 g1.Icm.t_seq;
  (* Output line of the wire is the second gadget's out line. *)
  let out = icm.Icm.line_of_wire.(0) in
  check Alcotest.bool "output is a gadget line" true
    (List.mem out g1.Icm.t_lines)

(* Table-1 calibration on real suite entries (the decisive identity
   check: decomposition statistics equal the paper's published columns). *)
let test_paper_stats_exact () =
  List.iter
    (fun (e : Suite.entry) ->
      let c = Clifford_t.decompose (Suite.circuit e) in
      let icm = Decompose.run c in
      let s = Icm.stats icm in
      let name = e.Suite.spec.Generator.name in
      check Alcotest.int (name ^ " #Qubits") e.Suite.paper.Suite.p_qubits
        s.Icm.s_qubits;
      check Alcotest.int (name ^ " #CNOTs") e.Suite.paper.Suite.p_cnots
        s.Icm.s_cnots;
      check Alcotest.int (name ^ " #Y") e.Suite.paper.Suite.p_y s.Icm.s_y;
      check Alcotest.int (name ^ " #A") e.Suite.paper.Suite.p_a s.Icm.s_a;
      check Alcotest.bool (name ^ " valid") true (Validate.is_valid icm))
    [ List.nth Suite.all 0; List.nth Suite.all 1 ]

(* ------------------------------------------------------------------ *)
(* Constraints                                                         *)
(* ------------------------------------------------------------------ *)

let test_intra_t_pairs () =
  let icm = icm_of ~n_qubits:1 [ Gate.T 0 ] in
  let pairs = Constraints.of_icm icm in
  check Alcotest.int "4 intra pairs" 4 (List.length pairs);
  let g = icm.Icm.t_gadgets.(0) in
  List.iter
    (fun (p : Constraints.pair) ->
      check Alcotest.int "before is first-order" g.Icm.t_first_meas p.before)
    pairs

let test_inter_t_pairs () =
  let icm = icm_of ~n_qubits:1 [ Gate.T 0; Gate.T 0 ] in
  let pairs = Constraints.of_icm icm in
  (* 4 intra per gadget + 16 inter (4x4 between consecutive gadgets). *)
  check Alcotest.int "pair count" (4 + 4 + 16) (List.length pairs)

let test_inter_t_distinct_wires_unconstrained () =
  let icm = icm_of ~n_qubits:2 [ Gate.T 0; Gate.T 1 ] in
  let pairs = Constraints.of_icm icm in
  check Alcotest.int "only intra pairs" 8 (List.length pairs)

let test_violations () =
  let icm = icm_of ~n_qubits:1 [ Gate.T 0 ] in
  let pairs = Constraints.of_icm icm in
  (* Everything at the same time: all pairs violated. *)
  check Alcotest.int "all violated" 4
    (List.length (Constraints.violations pairs ~time_of:(fun _ -> 0)));
  (* Identity order: measurement indices increase in emission order,
     which respects first < second. *)
  check Alcotest.bool "emission order ok" true
    (Constraints.satisfied pairs ~time_of:(fun i -> i))

let test_topological_order () =
  let icm = icm_of ~n_qubits:2 [ Gate.T 0; Gate.T 1; Gate.T 0 ] in
  let order = Constraints.topological_order icm in
  check Alcotest.int "covers all measurements" (Array.length icm.Icm.meas)
    (List.length order);
  let position = Hashtbl.create 16 in
  List.iteri (fun i m -> Hashtbl.replace position m i) order;
  let pairs = Constraints.of_icm icm in
  check Alcotest.bool "topological order satisfies" true
    (Constraints.satisfied pairs ~time_of:(Hashtbl.find position))

let prop_constraints_satisfied_by_emission =
  QCheck.Test.make ~name:"emission order satisfies all constraints" ~count:30
    QCheck.(pair (int_range 1 4) (int_range 1 30))
    (fun (wires, gates) ->
      let c =
        Generator.random_clifford_t ~seed:(wires + (31 * gates))
          ~n_qubits:wires ~n_gates:gates
      in
      let icm = Decompose.run c in
      let pairs = Constraints.of_icm icm in
      Constraints.satisfied pairs ~time_of:(fun i -> i))

let prop_decomposed_always_valid =
  QCheck.Test.make ~name:"decomposed ICM always validates" ~count:50
    QCheck.(pair (int_range 1 5) (int_range 0 40))
    (fun (wires, gates) ->
      let c =
        Generator.random_clifford_t ~seed:(7 + wires + (13 * gates))
          ~n_qubits:wires ~n_gates:gates
      in
      Validate.is_valid (Decompose.run c))

(* ------------------------------------------------------------------ *)
(* Schedule                                                            *)
(* ------------------------------------------------------------------ *)

let test_schedule_serial_chain () =
  let icm =
    icm_of ~n_qubits:3
      [ Gate.Cnot { control = 0; target = 1 };
        Gate.Cnot { control = 1; target = 2 };
        Gate.Cnot { control = 0; target = 2 } ]
  in
  let a = Schedule.asap icm in
  check Alcotest.int "depth 3" 3 a.Schedule.depth;
  check Alcotest.bool "valid" true (Schedule.valid icm a)

let test_schedule_parallel () =
  let icm =
    icm_of ~n_qubits:4
      [ Gate.Cnot { control = 0; target = 1 };
        Gate.Cnot { control = 2; target = 3 } ]
  in
  let a = Schedule.asap icm in
  check Alcotest.int "depth 1" 1 a.Schedule.depth;
  check (Alcotest.float 1e-9) "parallelism 2" 2. (Schedule.parallelism icm)

let test_schedule_alap_valid_and_deep () =
  let icm =
    icm_of ~n_qubits:4
      [ Gate.Cnot { control = 0; target = 1 };
        Gate.Cnot { control = 2; target = 3 };
        Gate.Cnot { control = 1; target = 2 } ]
  in
  let l = Schedule.alap icm in
  check Alcotest.bool "alap valid" true (Schedule.valid icm l);
  check Alcotest.int "same horizon" (Schedule.asap icm).Schedule.depth
    l.Schedule.depth

let prop_schedule_slack_nonnegative =
  QCheck.Test.make ~name:"schedule slack is non-negative" ~count:30
    QCheck.(pair (int_range 2 5) (int_range 1 30))
    (fun (wires, gates) ->
      let c =
        Generator.random_clifford_t ~seed:(wires * 1000 + gates)
          ~n_qubits:wires ~n_gates:gates
      in
      let icm = Decompose.run c in
      Array.for_all (fun s -> s >= 0) (Schedule.slack icm))

let prop_schedule_asap_alap_valid =
  QCheck.Test.make ~name:"ASAP and ALAP are always valid schedules"
    ~count:30
    (QCheck.int_range 1 3000)
    (fun seed ->
      let c = Generator.random_clifford_t ~seed ~n_qubits:4 ~n_gates:25 in
      let icm = Decompose.run c in
      Schedule.valid icm (Schedule.asap icm)
      && Schedule.valid icm (Schedule.alap icm))

(* ------------------------------------------------------------------ *)
(* Validate                                                            *)
(* ------------------------------------------------------------------ *)

let test_validate_detects_missing_meas () =
  let icm = icm_of ~n_qubits:2 [ Gate.Cnot { control = 0; target = 1 } ] in
  let broken = { icm with Icm.meas = [| icm.Icm.meas.(0) |] } in
  check Alcotest.bool "invalid" false (Validate.is_valid broken);
  check Alcotest.bool "missing measurement reported" true
    (List.exists
       (function Validate.Missing_measurement _ -> true | _ -> false)
       (Validate.check broken))

let test_validate_detects_self_loop () =
  let icm = icm_of ~n_qubits:2 [ Gate.Cnot { control = 0; target = 1 } ] in
  let broken =
    { icm with Icm.cnots = [| { Icm.control = 0; target = 0 } |] }
  in
  check Alcotest.bool "self loop reported" true
    (List.exists
       (function Validate.Cnot_self_loop _ -> true | _ -> false)
       (Validate.check broken))

let test_validate_detects_range () =
  let icm = icm_of ~n_qubits:2 [ Gate.Cnot { control = 0; target = 1 } ] in
  let broken =
    { icm with Icm.cnots = [| { Icm.control = 0; target = 99 } |] }
  in
  check Alcotest.bool "range reported" true
    (List.exists
       (function Validate.Line_out_of_range _ -> true | _ -> false)
       (Validate.check broken))

(* ------------------------------------------------------------------ *)
(* Validate edge cases                                                 *)
(* ------------------------------------------------------------------ *)

let test_validate_empty_circuit () =
  let icm = icm_of ~n_qubits:1 [] in
  check Alcotest.bool "valid" true (Validate.is_valid icm);
  check Alcotest.int "one line" 1 icm.Icm.n_lines;
  check Alcotest.int "no cnots" 0 (Array.length icm.Icm.cnots);
  check Alcotest.int "no constraints" 0
    (List.length (Constraints.of_icm icm));
  check Alcotest.(list string) "verifier agrees" []
    (List.map Tqec_verify.Violation.to_string
       (Tqec_verify.Icm_check.check icm))

let test_validate_single_qubit_t () =
  let icm = icm_of ~n_qubits:1 [ Gate.T 0 ] in
  check Alcotest.bool "valid" true (Validate.is_valid icm);
  check Alcotest.(list string) "verifier clean" []
    (List.map Tqec_verify.Violation.to_string
       (Tqec_verify.Icm_check.check icm))

let test_longest_inter_t_chain () =
  (* k T gates on one wire: the constraint DAG's longest path is
     first(g0) -> second(g0) -> second(g1) -> ... -> second(g_{k-1}),
     i.e. exactly k edges. *)
  let k = 5 in
  let icm = icm_of ~n_qubits:1 (List.init k (fun _ -> Gate.T 0)) in
  let pairs =
    List.map
      (fun (p : Constraints.pair) -> (p.Constraints.before, p.Constraints.after))
      (Constraints.of_icm icm)
  in
  check Alcotest.int "pair count" ((4 * k) + (16 * (k - 1)))
    (List.length pairs);
  let n = Array.length icm.Icm.meas in
  let order = Constraints.topological_order icm in
  check Alcotest.int "acyclic: order covers all" n (List.length order);
  (* longest path by DP along the topological order *)
  let depth = Array.make n 0 in
  List.iter
    (fun m ->
      List.iter
        (fun (b, a) ->
          if b = m && depth.(a) < depth.(m) + 1 then
            depth.(a) <- depth.(m) + 1)
        pairs)
    order;
  check Alcotest.int "longest chain" k (Array.fold_left max 0 depth)

let test_validate_cyclic_fixture () =
  (* alias a second-order measurement of gadget 0 into gadget 1's group:
     the inter-T pairs then point back into gadget 0's intra pairs and
     the constraint DAG acquires a cycle *)
  let icm = icm_of ~n_qubits:1 [ Gate.T 0; Gate.T 0 ] in
  let gadgets = icm.Icm.t_gadgets in
  let g0 = gadgets.(0) and g1 = gadgets.(1) in
  let stolen = List.hd g0.Icm.t_second_meas in
  gadgets.(1) <-
    { g1 with Icm.t_second_meas = stolen :: List.tl g1.Icm.t_second_meas };
  check Alcotest.bool "verifier reports constraint-cycle" true
    (List.exists
       (fun (v : Tqec_verify.Violation.t) ->
         v.Tqec_verify.Violation.v_code = "constraint-cycle")
       (Tqec_verify.Icm_check.check icm));
  check Alcotest.bool "topological order refuses" true
    (match Constraints.topological_order icm with
    | _ -> false
    | exception Constraints.Cycle { emitted; total } ->
        emitted < total && total = Array.length icm.Icm.meas)

let suites =
  [
    ( "icm.decompose",
      [
        Alcotest.test_case "cnot only" `Quick test_cnot_only;
        Alcotest.test_case "T gadget shape" `Quick test_t_gadget_shape;
        Alcotest.test_case "Tdg same cost" `Quick test_tdg_same_cost;
        Alcotest.test_case "S gadget" `Quick test_s_gadget;
        Alcotest.test_case "pauli frame free" `Quick test_pauli_frame_free;
        Alcotest.test_case "H flips basis" `Quick test_h_flips_measurement_basis;
        Alcotest.test_case "rejects toffoli" `Quick test_rejects_toffoli;
        Alcotest.test_case "wire continues after T" `Quick
          test_wire_continues_after_t;
        Alcotest.test_case "paper stats exact (2 suites)" `Quick
          test_paper_stats_exact;
        qtest prop_decomposed_always_valid;
      ] );
    ( "icm.constraints",
      [
        Alcotest.test_case "intra-T pairs" `Quick test_intra_t_pairs;
        Alcotest.test_case "inter-T pairs" `Quick test_inter_t_pairs;
        Alcotest.test_case "distinct wires unconstrained" `Quick
          test_inter_t_distinct_wires_unconstrained;
        Alcotest.test_case "violations" `Quick test_violations;
        Alcotest.test_case "topological order" `Quick test_topological_order;
        qtest prop_constraints_satisfied_by_emission;
      ] );
    ( "icm.schedule",
      [
        Alcotest.test_case "serial chain" `Quick test_schedule_serial_chain;
        Alcotest.test_case "parallel" `Quick test_schedule_parallel;
        Alcotest.test_case "alap" `Quick test_schedule_alap_valid_and_deep;
        qtest prop_schedule_slack_nonnegative;
        qtest prop_schedule_asap_alap_valid;
      ] );
    ( "icm.validate",
      [
        Alcotest.test_case "missing measurement" `Quick
          test_validate_detects_missing_meas;
        Alcotest.test_case "self loop" `Quick test_validate_detects_self_loop;
        Alcotest.test_case "out of range" `Quick test_validate_detects_range;
        Alcotest.test_case "empty circuit" `Quick test_validate_empty_circuit;
        Alcotest.test_case "single qubit T" `Quick test_validate_single_qubit_t;
        Alcotest.test_case "longest inter-T chain" `Quick
          test_longest_inter_t_chain;
        Alcotest.test_case "planted cyclic fixture" `Quick
          test_validate_cyclic_fixture;
      ] );
  ]
