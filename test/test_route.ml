(* Tests for the routing substrate: grid bookkeeping, A* optimality,
   PathFinder negotiation. *)

open Tqec_util
open Tqec_route

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest
let vec = Vec3.make

let grid10 () = Grid.create (Box3.make (vec 0 0 0) (vec 9 9 9))

(* ------------------------------------------------------------------ *)
(* Grid                                                                *)
(* ------------------------------------------------------------------ *)

let test_grid_usage_history () =
  let g = grid10 () in
  let p = vec 1 2 3 in
  check Alcotest.int "usage 0" 0 (Grid.usage g p);
  Grid.add_usage g p 2;
  check Alcotest.int "usage 2" 2 (Grid.usage g p);
  Grid.add_history g p 5;
  check Alcotest.int "history" 5 (Grid.history g p);
  (* cost = 1 + history + penalty * overuse(=2) *)
  check Alcotest.int "cost" (1 + 5 + (3 * 2)) (Grid.enter_cost g ~penalty:3 p);
  Grid.add_usage g p (-2);
  check Alcotest.int "usage back" 0 (Grid.usage g p)

let test_grid_negative_usage_rejected () =
  let g = grid10 () in
  Alcotest.check_raises "negative usage"
    (Invalid_argument "Grid.add_usage: negative usage") (fun () ->
      Grid.add_usage g (vec 0 0 0) (-1))

let test_grid_obstacles () =
  let g = grid10 () in
  Grid.set_obstacle g (vec 5 5 5);
  check Alcotest.bool "obstacle" true (Grid.is_obstacle g (vec 5 5 5));
  check Alcotest.bool "oob not obstacle" false (Grid.is_obstacle g (vec 99 0 0));
  Grid.set_obstacle_box g (Box3.make (vec 0 0 0) (vec 1 1 1));
  check Alcotest.bool "box corner" true (Grid.is_obstacle g (vec 1 1 1))

let test_grid_shared () =
  let g = grid10 () in
  let p = vec 2 2 2 in
  Grid.set_shared g p;
  Grid.add_usage g p 5;
  check Alcotest.(list bool) "not overused" []
    (List.map (fun _ -> true) (Grid.overused g));
  (* shared cell cost ignores congestion *)
  check Alcotest.int "shared cost" 1 (Grid.enter_cost g ~penalty:10 p)

let test_grid_overused () =
  let g = grid10 () in
  Grid.add_usage g (vec 1 1 1) 2;
  Grid.add_usage g (vec 2 2 2) 1;
  check Alcotest.int "one overused" 1 (List.length (Grid.overused g));
  check Alcotest.int "count agrees" 1 (Grid.overused_count g);
  Grid.add_usage g (vec 1 1 1) (-1);
  check Alcotest.int "drops back" 0 (Grid.overused_count g);
  Grid.add_usage g (vec 3 3 3) 4;
  Grid.set_shared g (vec 3 3 3);
  check Alcotest.int "shared leaves the set" 0 (Grid.overused_count g)

(* The incrementally maintained overused set must agree with a
   brute-force rescan of the whole volume after any usage/shared
   trajectory. *)
let prop_grid_overused_incremental =
  QCheck.Test.make ~name:"incremental overused set matches brute force"
    ~count:50
    (QCheck.int_range 1 10_000)
    (fun seed ->
      let rng = Rng.create seed in
      let size = 5 in
      let box = Box3.make (vec 0 0 0) (vec (size - 1) (size - 1) (size - 1)) in
      let g = Grid.create box in
      for _ = 1 to 120 do
        let p = vec (Rng.int rng size) (Rng.int rng size) (Rng.int rng size) in
        match Rng.int rng 4 with
        | 0 -> Grid.set_shared g p
        | 1 -> if Grid.usage g p > 0 then Grid.add_usage g p (-1)
        | _ -> Grid.add_usage g p (1 + Rng.int rng 2)
      done;
      let brute =
        List.filter
          (fun c -> Grid.usage g c > Grid.capacity && not (Grid.is_shared g c))
          (Box3.cells box)
      in
      Grid.overused g = brute && Grid.overused_count g = List.length brute)

(* A snapshot freezes the congestion state: mutations of the live grid
   must not leak into it, and vice versa. *)
let test_grid_snapshot_isolated () =
  let g = grid10 () in
  Grid.add_usage g (vec 1 1 1) 2;
  Grid.add_history g (vec 4 4 4) 3;
  let s = Grid.snapshot g in
  Grid.add_usage g (vec 1 1 1) (-2);
  Grid.add_usage g (vec 2 2 2) 5;
  Grid.add_history g (vec 4 4 4) 7;
  check Alcotest.int "snapshot usage frozen" 2 (Grid.usage s (vec 1 1 1));
  check Alcotest.int "snapshot other cell" 0 (Grid.usage s (vec 2 2 2));
  check Alcotest.int "snapshot history frozen" 3 (Grid.history s (vec 4 4 4));
  check Alcotest.int "snapshot overused frozen" 1 (Grid.overused_count s);
  Grid.add_usage s (vec 7 7 7) 9;
  check Alcotest.int "live grid unaffected" 0 (Grid.usage g (vec 7 7 7))

(* The sparse chunked grid against a dense mirror of its semantics:
   random usage/history/shared trajectories — including a racy-view
   lifecycle (view, keep mutating, patch every written cell) — must
   agree cell-for-cell on usage, history and enter_cost, and on the
   [overused] list in value AND order.  The box spans several tiles per
   axis with a non-zero, non-tile-aligned origin, so tile and offset
   arithmetic is exercised on both sides of every boundary. *)
let prop_grid_sparse_vs_dense_oracle =
  QCheck.Test.make ~name:"sparse grid matches dense oracle (with view/patch)"
    ~count:40
    (QCheck.int_range 1 10_000)
    (fun seed ->
      let rng = Rng.create seed in
      let lo = vec 3 (-5) 2 in
      let nx = 20 and ny = 11 and nz = 9 in
      let hi = vec (3 + nx - 1) (-5 + ny - 1) (2 + nz - 1) in
      let box = Box3.make lo hi in
      let die = Box3.make lo (vec (3 + nx - 6) (-5 + ny - 3) (2 + nz - 2)) in
      let g = Grid.create ~die box in
      (* dense oracle state *)
      let cells = nx * ny * nz in
      let o_usage = Array.make cells 0 in
      let o_hist = Array.make cells 0 in
      let o_shared = Array.make cells false in
      let idx (c : Vec3.t) =
        (((c.Vec3.x - 3) * ny) + (c.Vec3.y + 5)) * nz + (c.Vec3.z - 2)
      in
      let rand_cell () =
        vec (3 + Rng.int rng nx) (-5 + Rng.int rng ny) (2 + Rng.int rng nz)
      in
      let touched = ref [] in
      let step record =
        let c = rand_cell () in
        let i = idx c in
        (match Rng.int rng 5 with
        | 0 ->
            Grid.set_shared g c;
            o_shared.(i) <- true
        | 1 ->
            if Grid.usage g c > 0 then begin
              Grid.add_usage g c (-1);
              o_usage.(i) <- o_usage.(i) - 1;
              if record then touched := c :: !touched
            end
        | 2 ->
            let d = 1 + Rng.int rng 3 in
            Grid.add_history g c d;
            o_hist.(i) <- o_hist.(i) + d;
            if record then touched := c :: !touched
        | _ ->
            let d = 1 + Rng.int rng 2 in
            Grid.add_usage g c d;
            o_usage.(i) <- o_usage.(i) + d;
            if record then touched := c :: !touched);
        ()
      in
      for _ = 1 to 150 do
        step false
      done;
      (* single-threaded view: an exact copy at this instant; the cells
         mutated afterwards are recorded and patched, after which the
         view must equal the live grid everywhere *)
      let v = Grid.view g in
      for _ = 1 to 150 do
        step true
      done;
      List.iter (fun c -> Grid.patch_cell ~src:g ~dst:v c) !touched;
      let agree c =
        let i = idx c in
        let expected_cost penalty =
          let base = if Box3.contains die c then 1 else 7 in
          if o_shared.(i) then base + o_hist.(i)
          else
            let over = o_usage.(i) + 1 - Grid.capacity in
            base + o_hist.(i) + (if over > 0 then penalty * over else 0)
        in
        Grid.usage g c = o_usage.(i)
        && Grid.history g c = o_hist.(i)
        && Grid.is_shared g c = o_shared.(i)
        && Grid.enter_cost g ~penalty:3 c = expected_cost 3
        && Grid.usage v c = o_usage.(i)
        && Grid.history v c = o_hist.(i)
        && Grid.enter_cost v ~penalty:3 c = expected_cost 3
      in
      let brute =
        List.filter
          (fun c -> o_usage.(idx c) > Grid.capacity && not o_shared.(idx c))
          (Box3.cells box)
      in
      List.for_all agree (Box3.cells box)
      && Grid.overused g = brute
      && Grid.overused_count g = List.length brute)

(* Generation counters behind the corridor cache: every summary
   mutation bumps exactly the touched tile's generation — no other
   tile's, and nothing on pure reads or snapshot/view — and
   [region_unchanged_since] answers from those stamps.  A random
   mutation trajectory is checked step by step against an oracle that
   predicts whether a bump must happen ([add_usage]/[add_history] with
   a non-zero delta, [set_shared], [set_obstacle] on a clear cell) or
   must not (zero deltas, repeated obstacles, cost/summary queries). *)
let prop_grid_generation_tracking =
  QCheck.Test.make ~name:"tile generations track summary mutations exactly"
    ~count:40
    (QCheck.int_range 1 10_000)
    (fun seed ->
      let rng = Rng.create seed in
      let lo = vec 3 (-5) 2 in
      let nx = 20 and ny = 11 and nz = 9 in
      let box = Box3.make lo (vec (3 + nx - 1) (-5 + ny - 1) (2 + nz - 1)) in
      let g = Grid.create box in
      let n_tiles = Grid.n_tiles g in
      let gens () = Array.init n_tiles (Grid.tile_generation g) in
      let rand_cell () =
        vec (3 + Rng.int rng nx) (-5 + Rng.int rng ny) (2 + Rng.int rng nz)
      in
      let ok = ref true in
      let expect cond = ok := !ok && cond in
      for _ = 1 to 200 do
        let c = rand_cell () in
        let ti = Grid.tile_index g c in
        let before = gens () in
        let stamp = Grid.generation g in
        let bumps =
          match Rng.int rng 6 with
          | 0 ->
              Grid.set_shared g c;
              true
          | 1 ->
              let newly = not (Grid.is_obstacle g c) in
              Grid.set_obstacle g c;
              newly
          | 2 ->
              Grid.add_usage g c 0;
              false
          | 3 ->
              Grid.add_history g c (1 + Rng.int rng 3);
              true
          | 4 ->
              ignore (Grid.usage g c);
              ignore (Grid.enter_cost g ~penalty:3 c);
              ignore (Grid.tile_congestion g ti);
              ignore (Grid.tile_free g ti);
              false
          | _ ->
              Grid.add_usage g c (1 + Rng.int rng 2);
              true
        in
        let after = gens () in
        for t = 0 to n_tiles - 1 do
          if t <> ti then expect (after.(t) = before.(t))
        done;
        expect (if bumps then after.(ti) > before.(ti) else after.(ti) = before.(ti));
        expect (if bumps then Grid.generation g > stamp else Grid.generation g = stamp);
        (* the stamp protocol the corridor cache runs on: a region
           containing the touched cell is invalidated, a region in a
           different tile is not *)
        expect (Grid.region_unchanged_since g ~since:stamp (Box3.of_cell c) = not bumps);
        let far = vec (3 + ((c.Vec3.x - 3 + 16) mod nx)) c.Vec3.y c.Vec3.z in
        if Grid.tile_index g far <> ti then
          expect (Grid.region_unchanged_since g ~since:stamp (Box3.of_cell far))
      done;
      (* snapshot and view never bump the source; the snapshot inherits
         the source's timeline at the split, the view starts a fresh
         zero timeline (stamps taken against a view are valid against
         that view alone) *)
      let before = gens () in
      let stamp = Grid.generation g in
      let s = Grid.snapshot g in
      let v = Grid.view g in
      expect (gens () = before && Grid.generation g = stamp);
      expect (Grid.generation s = stamp);
      expect (Grid.generation v = 0 && Grid.region_unchanged_since v ~since:0 box);
      (* patch_cell bumps the destination's touched tile only when it
         changes what the summaries report: patching a cell the source
         just changed invalidates, re-patching the now-equal cell does
         not (rip-up + identical reclaim must keep corridors cached
         against the destination valid) *)
      let c = rand_cell () in
      Grid.add_usage g c 1;
      let vstamp = Grid.generation v in
      Grid.patch_cell ~src:g ~dst:v c;
      expect (Grid.generation v > vstamp);
      expect (not (Grid.region_unchanged_since v ~since:vstamp (Box3.of_cell c)));
      let vstamp = Grid.generation v in
      Grid.patch_cell ~src:g ~dst:v c;
      expect (Grid.generation v = vstamp);
      !ok)

(* Satellite of the sparse-grid PR: the long-documented "views answer
   cost queries only" contract is now enforced instead of silently
   returning an empty overuse set. *)
let test_grid_view_rejects_overuse_queries () =
  let g = grid10 () in
  Grid.add_usage g (vec 1 1 1) 2;
  let v = Grid.view g in
  check Alcotest.int "cost queries still served" 2 (Grid.usage v (vec 1 1 1));
  (match Grid.overused v with
  | _ -> Alcotest.fail "overused on a view must raise"
  | exception Invalid_argument _ -> ());
  (match Grid.overused_count v with
  | _ -> Alcotest.fail "overused_count on a view must raise"
  | exception Invalid_argument _ -> ());
  (* snapshots keep the full interface *)
  check Alcotest.int "snapshot still answers" 1
    (Grid.overused_count (Grid.snapshot g))

let test_grid_mem_tracks_touched_tiles () =
  let g = Grid.create (Box3.make (vec 0 0 0) (vec 63 63 63)) in
  let m0 = Grid.mem g in
  check Alcotest.int "fresh grid holds no tiles" 0 m0.Grid.mem_tiles;
  Grid.add_usage g (vec 0 0 0) 1;
  Grid.add_usage g (vec 1 1 1) 1;
  (* same tile: no new allocation *)
  Grid.add_usage g (vec 60 60 60) 1;
  let m = Grid.mem g in
  check Alcotest.int "two touched tiles" 2 m.Grid.mem_tiles;
  check Alcotest.bool "touched volume stays far below capacity" true
    (m.Grid.mem_touched_cells * 100 < m.Grid.mem_cells);
  check Alcotest.bool "directory covers the box" true
    (m.Grid.mem_tiles_total * Grid.tile_cells >= m.Grid.mem_cells)

let test_grid_die_cost () =
  let die = Box3.make (vec 0 0 0) (vec 4 4 4) in
  let g = Grid.create ~die (Box3.make (vec 0 0 0) (vec 9 9 9)) in
  let inside = Grid.enter_cost g ~penalty:1 (vec 1 1 1) in
  let outside = Grid.enter_cost g ~penalty:1 (vec 8 8 8) in
  check Alcotest.bool "outside costs more" true (outside > inside)

(* ------------------------------------------------------------------ *)
(* Astar                                                               *)
(* ------------------------------------------------------------------ *)

let full_region = Box3.make (vec 0 0 0) (vec 9 9 9)

let test_astar_straight_line () =
  let g = grid10 () in
  match
    Astar.search g ~region:full_region ~penalty:1 ~sources:[ vec 0 0 0 ]
      ~target:(vec 5 0 0)
  with
  | None -> Alcotest.fail "expected a path"
  | Some path ->
      check Alcotest.int "shortest length" 6 (List.length path);
      check Alcotest.bool "starts at source" true
        (Vec3.equal (List.hd path) (vec 0 0 0));
      check Alcotest.bool "ends at target" true
        (Vec3.equal (List.nth path 5) (vec 5 0 0))

let test_astar_detours_around_wall () =
  let g = grid10 () in
  (* wall at x=2 spanning all y,z except y=9 *)
  for y = 0 to 8 do
    for z = 0 to 9 do
      Grid.set_obstacle g (vec 2 y z)
    done
  done;
  match
    Astar.search g ~region:full_region ~penalty:1 ~sources:[ vec 0 0 0 ]
      ~target:(vec 4 0 0)
  with
  | None -> Alcotest.fail "expected detour"
  | Some path ->
      (* must pass through the y=9 gap *)
      check Alcotest.bool "visits gap row" true
        (List.exists (fun (p : Vec3.t) -> p.y = 9) path);
      (* path is a connected chain of unit steps *)
      let rec connected = function
        | a :: (b :: _ as rest) -> Vec3.manhattan a b = 1 && connected rest
        | _ -> true
      in
      check Alcotest.bool "connected" true (connected path)

let test_astar_unreachable () =
  let g = grid10 () in
  for y = 0 to 9 do
    for z = 0 to 9 do
      Grid.set_obstacle g (vec 2 y z)
    done
  done;
  check Alcotest.bool "unreachable" true
    (Astar.search g ~region:full_region ~penalty:1 ~sources:[ vec 0 0 0 ]
       ~target:(vec 4 0 0)
    = None)

let test_astar_respects_region () =
  let g = grid10 () in
  let region = Box3.make (vec 0 0 0) (vec 3 3 3) in
  check Alcotest.bool "target outside region" true
    (Astar.search g ~region ~penalty:1 ~sources:[ vec 0 0 0 ]
       ~target:(vec 5 0 0)
    = None)

let test_astar_source_target_exempt () =
  let g = grid10 () in
  Grid.set_obstacle g (vec 0 0 0);
  Grid.set_obstacle g (vec 3 0 0);
  match
    Astar.search g ~region:full_region ~penalty:1 ~sources:[ vec 0 0 0 ]
      ~target:(vec 3 0 0)
  with
  | None -> Alcotest.fail "pins must be reachable"
  | Some path -> check Alcotest.int "length" 4 (List.length path)

let test_astar_multi_source () =
  let g = grid10 () in
  match
    Astar.search g ~region:full_region ~penalty:1
      ~sources:[ vec 0 0 0; vec 9 9 9; vec 5 1 0 ]
      ~target:(vec 5 0 0)
  with
  | None -> Alcotest.fail "expected path"
  | Some path ->
      (* picks the closest source *)
      check Alcotest.int "short path" 2 (List.length path);
      check Alcotest.bool "from nearest" true
        (Vec3.equal (List.hd path) (vec 5 1 0))

(* A* path cost equals Dijkstra-optimal cost on random congested grids. *)
let prop_astar_optimal_vs_dijkstra =
  QCheck.Test.make ~name:"A* matches Dijkstra cost on random grids" ~count:25
    (QCheck.int_range 1 10_000)
    (fun seed ->
      let rng = Rng.create seed in
      let size = 6 in
      let box = Box3.make (vec 0 0 0) (vec (size - 1) (size - 1) (size - 1)) in
      let g = Grid.create box in
      (* random usage bumps make non-uniform costs *)
      for _ = 1 to 40 do
        let p = vec (Rng.int rng size) (Rng.int rng size) (Rng.int rng size) in
        Grid.add_usage g p 1
      done;
      for _ = 1 to 10 do
        let p = vec (Rng.int rng size) (Rng.int rng size) (Rng.int rng size) in
        if not (Vec3.equal p (vec 0 0 0)) then Grid.set_obstacle g p
      done;
      let target = vec (size - 1) (size - 1) (size - 1) in
      let source = vec 0 0 0 in
      let astar_cost =
        match
          Astar.search g ~region:box ~penalty:2 ~sources:[ source ] ~target
        with
        | Some path -> Some (Astar.path_cost g ~penalty:2 path)
        | None -> None
      in
      (* plain Dijkstra oracle *)
      let dist = Hashtbl.create 64 in
      let q = Pqueue.create () in
      Hashtbl.replace dist source 0;
      Pqueue.push q 0 source;
      let passable p =
        Box3.contains box p
        && ((not (Grid.is_obstacle g p)) || Vec3.equal p target || Vec3.equal p source)
      in
      while not (Pqueue.is_empty q) do
        let d, p = Pqueue.pop q in
        if d <= (try Hashtbl.find dist p with Not_found -> max_int) then
          List.iter
            (fun n ->
              if passable n then begin
                let nd = d + Grid.enter_cost g ~penalty:2 n in
                let old = try Hashtbl.find dist n with Not_found -> max_int in
                if nd < old then begin
                  Hashtbl.replace dist n nd;
                  Pqueue.push q nd n
                end
              end)
            (Vec3.axis_neighbors p)
      done;
      let dijkstra_cost = Hashtbl.find_opt dist target in
      astar_cost = dijkstra_cost)

(* ------------------------------------------------------------------ *)
(* Pathfinder                                                          *)
(* ------------------------------------------------------------------ *)

let test_pathfinder_simple_net () =
  let g = grid10 () in
  let nets =
    [ { Pathfinder.net_id = 0; pins = [ vec 0 0 0; vec 5 5 0; vec 9 0 0 ] } ]
  in
  let r = Pathfinder.route_all g Pathfinder.default_config nets in
  check Alcotest.bool "success" true r.Pathfinder.success;
  check Alcotest.(list string) "valid" [] (Pathfinder.validate g r nets)

let test_pathfinder_negotiates_conflict () =
  (* two nets whose straight paths collide in a narrow corridor *)
  let g = Grid.create (Box3.make (vec 0 0 0) (vec 9 2 1)) in
  let nets =
    [
      { Pathfinder.net_id = 0; pins = [ vec 0 1 0; vec 9 1 0 ] };
      { Pathfinder.net_id = 1; pins = [ vec 0 1 1; vec 9 1 1 ] };
      { Pathfinder.net_id = 2; pins = [ vec 0 0 0; vec 9 2 1 ] };
    ]
  in
  let r = Pathfinder.route_all g Pathfinder.default_config nets in
  check Alcotest.bool "resolved" true r.Pathfinder.success;
  check Alcotest.(list string) "valid" [] (Pathfinder.validate g r nets)

let test_pathfinder_single_pin_net () =
  let g = grid10 () in
  let nets = [ { Pathfinder.net_id = 0; pins = [ vec 3 3 3 ] } ] in
  let r = Pathfinder.route_all g Pathfinder.default_config nets in
  check Alcotest.bool "success" true r.Pathfinder.success

let test_pathfinder_unroutable () =
  let g = grid10 () in
  (* wall isolating the target completely *)
  for y = 0 to 9 do
    for z = 0 to 9 do
      Grid.set_obstacle g (vec 5 y z)
    done
  done;
  let nets = [ { Pathfinder.net_id = 7; pins = [ vec 0 0 0; vec 9 0 0 ] } ] in
  let r = Pathfinder.route_all g Pathfinder.default_config nets in
  check Alcotest.bool "failure reported" false r.Pathfinder.success;
  check Alcotest.(list int) "unrouted id" [ 7 ] r.Pathfinder.unrouted

(* ------------------------------------------------------------------ *)
(* Validator blind spots: planted illegal routes must be rejected      *)
(* ------------------------------------------------------------------ *)

let planted_result routes =
  {
    Pathfinder.routes;
    success = true;
    iterations_used = 1;
    overused_after = 0;
    unrouted = [];
  }

let has_error fragment errors =
  List.exists
    (fun e ->
      let rec find i =
        i + String.length fragment <= String.length e
        && (String.sub e i (String.length fragment) = fragment || find (i + 1))
      in
      find 0)
    errors

let test_validate_rejects_obstacle_crossing () =
  let g = grid10 () in
  Grid.set_obstacle g (vec 2 0 0);
  let nets = [ { Pathfinder.net_id = 0; pins = [ vec 0 0 0; vec 4 0 0 ] } ] in
  let r =
    planted_result
      [
        {
          Pathfinder.r_net = 0;
          r_cells = List.init 5 (fun x -> vec x 0 0);
        };
      ]
  in
  let errors = Pathfinder.validate g r nets in
  check Alcotest.bool "obstacle crossing detected" true
    (has_error "obstacle" errors)

let test_validate_allows_obstacle_pins () =
  (* pins on obstacle cells are the one legal exemption (A* exempts
     sources and target), so they must not be flagged *)
  let g = grid10 () in
  Grid.set_obstacle g (vec 0 0 0);
  Grid.set_obstacle g (vec 3 0 0);
  let nets = [ { Pathfinder.net_id = 0; pins = [ vec 0 0 0; vec 3 0 0 ] } ] in
  let r =
    planted_result
      [ { Pathfinder.r_net = 0; r_cells = List.init 4 (fun x -> vec x 0 0) } ]
  in
  check Alcotest.(list string) "pin obstacles exempt" []
    (Pathfinder.validate g r nets)

let test_validate_rejects_out_of_bounds () =
  let g = grid10 () in
  let nets = [ { Pathfinder.net_id = 3; pins = [ vec 0 0 0; vec 1 0 0 ] } ] in
  let r =
    planted_result
      [
        {
          Pathfinder.r_net = 3;
          (* a connected chain that dips below the grid floor *)
          r_cells = [ vec 0 0 0; vec 0 0 (-1); vec 1 0 (-1); vec 1 0 0 ];
        };
      ]
  in
  let errors = Pathfinder.validate g r nets in
  check Alcotest.bool "escape detected" true
    (has_error "leaves the routing grid" errors)

let test_validate_rejects_overcapacity () =
  let g = grid10 () in
  let straight = List.init 4 (fun x -> vec x 0 0) in
  let nets =
    [
      { Pathfinder.net_id = 0; pins = [ vec 0 0 0; vec 3 0 0 ] };
      { Pathfinder.net_id = 1; pins = [ vec 0 1 0; vec 3 1 0 ] };
    ]
  in
  let r =
    planted_result
      [
        { Pathfinder.r_net = 0; r_cells = straight };
        (* net 1 detours through net 0's row: every straight cell is
           doubly used without being shared *)
        {
          Pathfinder.r_net = 1;
          r_cells = (vec 0 1 0 :: straight) @ [ vec 3 1 0 ];
        };
      ]
  in
  let errors = Pathfinder.validate g r nets in
  check Alcotest.bool "capacity violation detected" true
    (has_error "capacity" errors);
  check Alcotest.bool "accounting mismatch detected" true
    (has_error "overuse accounting" errors);
  (* shared cells lift the capacity limit: the same routes become legal
     once the contested row is marked shared and the overuse is owned *)
  List.iter (Grid.set_shared g) straight;
  check Alcotest.(list string) "shared row legal" []
    (Pathfinder.validate g r nets)

let test_validate_accounting_must_match () =
  (* a result that under-reports its residual overuse is rejected even
     when it does not claim success *)
  let g = grid10 () in
  let straight = List.init 2 (fun x -> vec x 0 0) in
  let nets =
    [
      { Pathfinder.net_id = 0; pins = [ vec 0 0 0; vec 1 0 0 ] };
      { Pathfinder.net_id = 1; pins = [ vec 0 0 0; vec 1 0 0 ] };
    ]
  in
  let r =
    {
      Pathfinder.routes =
        [
          { Pathfinder.r_net = 0; r_cells = straight };
          { Pathfinder.r_net = 1; r_cells = straight };
        ];
      success = false;
      iterations_used = 1;
      overused_after = 0;
      unrouted = [];
    }
  in
  let errors = Pathfinder.validate g r nets in
  check Alcotest.bool "accounting enforced" true
    (has_error "overuse accounting" errors);
  check Alcotest.(list string) "honest accounting accepted" []
    (Pathfinder.validate g { r with Pathfinder.overused_after = 2 } nets)

(* ------------------------------------------------------------------ *)
(* Parallel router determinism                                         *)
(* ------------------------------------------------------------------ *)

(* A congested scenario that needs several negotiation iterations, so the
   parallel batch path really runs: five nets crossing a narrow slab of
   height [ymax + 1].  ymax = 4 is routable after real negotiation;
   ymax = 2 is over capacity and exercises the saturated endgame. *)
let congested_scenario ymax =
  let g = Grid.create (Box3.make (vec 0 0 0) (vec 11 ymax 1)) in
  let nets =
    [
      { Pathfinder.net_id = 0; pins = [ vec 0 1 0; vec 11 1 0 ] };
      { Pathfinder.net_id = 1; pins = [ vec 0 1 1; vec 11 1 1 ] };
      { Pathfinder.net_id = 2; pins = [ vec 0 0 0; vec 11 ymax 1 ] };
      { Pathfinder.net_id = 3; pins = [ vec 0 ymax 0; vec 11 0 1 ] };
      { Pathfinder.net_id = 4; pins = [ vec 0 0 1; vec 11 ymax 0 ] };
    ]
  in
  (g, nets)

let route_congested ymax jobs =
  let g, nets = congested_scenario ymax in
  let r =
    Pathfinder.route_all g { Pathfinder.default_config with jobs } nets
  in
  (r, Pathfinder.validate g r nets)

(* The acceptance-critical property mirroring the placer's: the routing
   trajectory is a pure function of the input — TQEC_JOBS=1 and
   TQEC_JOBS=4 give identical routes, iteration counts and residual
   overuse. *)
let test_pathfinder_jobs_invariant () =
  let serial, errs1 = route_congested 4 (Some 1) in
  let parallel, errs4 = route_congested 4 (Some 4) in
  check Alcotest.(list string) "serial valid" [] errs1;
  check Alcotest.(list string) "parallel valid" [] errs4;
  check Alcotest.bool "identical results" true (serial = parallel);
  check Alcotest.bool "negotiation really iterated" true
    (serial.Pathfinder.iterations_used > 1);
  check Alcotest.bool "negotiation converged" true serial.Pathfinder.success

(* Same property on a slab that is genuinely over capacity: the router
   must stay deterministic (and its overuse accounting honest) even when
   negotiation cannot converge. *)
let test_pathfinder_jobs_invariant_saturated () =
  let serial, errs1 = route_congested 2 (Some 1) in
  let parallel, errs4 = route_congested 2 (Some 4) in
  check Alcotest.(list string) "serial valid" [] errs1;
  check Alcotest.(list string) "parallel valid" [] errs4;
  check Alcotest.bool "identical results" true (serial = parallel);
  check Alcotest.bool "saturation reported" true
    (serial.Pathfinder.overused_after > 0 && not serial.Pathfinder.success)

(* ------------------------------------------------------------------ *)
(* Hierarchical corridor search                                        *)
(* ------------------------------------------------------------------ *)

(* Planted fixture for the corridor fallback: a straight source→target
   line whose coarse corridor (the tile row plus its one-tile ring,
   y < 16) is severed by a wall at x = 16; the only gap lies at y ≥ 16,
   outside the corridor.  The coarse search cannot see the wall (no
   tile is fully obstacled), so it confidently picks the straight
   corridor — and the fine pass must fail, forcing the full-window
   fallback. *)
let corridor_wall_fixture () =
  let g = Grid.create (Box3.make (vec 0 0 0) (vec 31 23 7)) in
  for y = 0 to 15 do
    for z = 0 to 7 do
      Grid.set_obstacle g (vec 16 y z)
    done
  done;
  g

let test_corridor_infeasible_reports_none () =
  let g = corridor_wall_fixture () in
  let region = Grid.box g in
  let sources = [ vec 0 4 4 ] and target = vec 31 4 4 in
  check Alcotest.bool "corridor infeasible" true
    (Astar.search_corridor g ~region ~penalty:2 ~sources ~target = None);
  match Astar.search g ~region ~penalty:2 ~sources ~target with
  | None -> Alcotest.fail "flat search must find the gap detour"
  | Some path ->
      check Alcotest.bool "detour leaves the corridor" true
        (List.exists (fun (c : Vec3.t) -> c.Vec3.y >= 16) path)

(* The acceptance-critical regression: with the hierarchical path forced
   on ([corridor_cells = 0]) over the planted fixture, the corridor
   fails, the router falls back to the full-window search, and the
   resulting routes are bit-identical to the flat ([corridor_cells =
   max_int]) configuration. *)
let test_corridor_fallback_matches_flat_route () =
  let run corridor_cells =
    let g = corridor_wall_fixture () in
    let nets =
      [ { Pathfinder.net_id = 0; pins = [ vec 0 4 4; vec 31 4 4 ] } ]
    in
    let r =
      Pathfinder.route_all g
        { Pathfinder.default_config with corridor_cells }
        nets
    in
    check Alcotest.(list string) "valid" [] (Pathfinder.validate g r nets);
    r
  in
  let flat = run max_int in
  let hier = run 0 in
  check Alcotest.bool "routes bit-identical" true (flat = hier);
  check Alcotest.bool "routed" true flat.Pathfinder.success

(* On an empty (hence congestion-free) multi-tile grid the corridor must
   contain a minimal path: hierarchical and flat searches agree on
   cost. *)
let test_corridor_minimal_when_feasible () =
  let g = Grid.create (Box3.make (vec 0 0 0) (vec 63 63 15)) in
  let region = Grid.box g in
  let sources = [ vec 1 2 3 ] and target = vec 60 50 12 in
  match Astar.search_corridor g ~region ~penalty:2 ~sources ~target with
  | None -> Alcotest.fail "corridor search failed on an empty grid"
  | Some path ->
      let flat =
        match Astar.search g ~region ~penalty:2 ~sources ~target with
        | Some p -> p
        | None -> Alcotest.fail "flat search failed on an empty grid"
      in
      check Alcotest.int "same cost as flat A*"
        (Astar.path_cost g ~penalty:2 flat)
        (Astar.path_cost g ~penalty:2 path)

(* Worker-count invariance holds with the hierarchical path forced on:
   the corridor decisions read only deterministic tile summaries. *)
let test_corridor_jobs_invariant () =
  let route jobs =
    let g, nets = congested_scenario 4 in
    let r =
      Pathfinder.route_all g
        { Pathfinder.default_config with jobs; corridor_cells = 0 }
        nets
    in
    (r, Pathfinder.validate g r nets)
  in
  let serial, errs1 = route (Some 1) in
  let parallel, errs4 = route (Some 4) in
  check Alcotest.(list string) "serial valid" [] errs1;
  check Alcotest.(list string) "parallel valid" [] errs4;
  check Alcotest.bool "identical results" true (serial = parallel);
  check Alcotest.bool "converged" true serial.Pathfinder.success

(* Corridor-widening regression: when the margin-inflated corridor
   already covers the whole grid, the escalation must stop after one
   failed search instead of repeating it — and still report the net
   unrouted. *)
let test_pathfinder_unroutable_wide_corridor () =
  let g = grid10 () in
  for y = 0 to 9 do
    for z = 0 to 9 do
      Grid.set_obstacle g (vec 5 y z)
    done
  done;
  (* pins span the full grid, so even the first corridor covers it *)
  let nets = [ { Pathfinder.net_id = 0; pins = [ vec 0 0 0; vec 9 9 9 ] } ] in
  let r = Pathfinder.route_all g Pathfinder.default_config nets in
  check Alcotest.bool "failure reported" false r.Pathfinder.success;
  check Alcotest.(list int) "unrouted id" [ 0 ] r.Pathfinder.unrouted

let prop_pathfinder_random_nets_valid =
  QCheck.Test.make ~name:"pathfinder routes random nets validly" ~count:15
    (QCheck.int_range 1 1000)
    (fun seed ->
      let rng = Rng.create seed in
      let g = Grid.create (Box3.make (vec 0 0 0) (vec 11 11 3)) in
      let random_pin () = vec (Rng.int rng 12) (Rng.int rng 12) (Rng.int rng 4) in
      let nets =
        List.init 6 (fun i ->
            {
              Pathfinder.net_id = i;
              pins = List.init (2 + Rng.int rng 3) (fun _ -> random_pin ());
            })
      in
      List.iter
        (fun (n : Pathfinder.net) -> List.iter (Grid.set_shared g) n.Pathfinder.pins)
        nets;
      let r = Pathfinder.route_all g Pathfinder.default_config nets in
      r.Pathfinder.success && Pathfinder.validate g r nets = [])

(* ------------------------------------------------------------------ *)
(* End-to-end: route-stage jobs invariance on suite circuits           *)
(* ------------------------------------------------------------------ *)

module Suite = Tqec_circuit.Suite
module Pipeline = Tqec_compress.Pipeline

let run_suite_pipeline name factor jobs =
  let entry =
    match Suite.find name with
    | Some e -> e
    | None -> Alcotest.failf "unknown suite benchmark %s" name
  in
  let circuit = Suite.scaled ~factor entry in
  Pipeline.run
    ~config:
      {
        Pipeline.default_config with
        effort = Tqec_place.Placer.Quick;
        seed = 42;
        jobs;
      }
    circuit

(* The full-flow mirror of the router determinism test, on two suite
   circuits: the routing stage (and thus the whole result) is identical
   under TQEC_JOBS=1 and TQEC_JOBS=4. *)
let test_pipeline_route_jobs_invariant name factor () =
  let serial = run_suite_pipeline name factor (Some 1) in
  let parallel = run_suite_pipeline name factor (Some 4) in
  check Alcotest.(list string) "parallel pipeline sound" []
    (Pipeline.check parallel);
  check Alcotest.bool "identical routing" true
    (serial.Pipeline.routing = parallel.Pipeline.routing);
  check Alcotest.int "identical volume" serial.Pipeline.volume
    parallel.Pipeline.volume;
  check Alcotest.bool "routing succeeded" true
    serial.Pipeline.routing.Pathfinder.success

let suites =
  [
    ( "route.grid",
      [
        Alcotest.test_case "usage/history" `Quick test_grid_usage_history;
        Alcotest.test_case "negative usage rejected" `Quick
          test_grid_negative_usage_rejected;
        Alcotest.test_case "obstacles" `Quick test_grid_obstacles;
        Alcotest.test_case "shared cells" `Quick test_grid_shared;
        Alcotest.test_case "overused" `Quick test_grid_overused;
        Alcotest.test_case "snapshot isolated" `Quick test_grid_snapshot_isolated;
        Alcotest.test_case "die cost" `Quick test_grid_die_cost;
        Alcotest.test_case "view rejects overuse queries" `Quick
          test_grid_view_rejects_overuse_queries;
        Alcotest.test_case "mem tracks touched tiles" `Quick
          test_grid_mem_tracks_touched_tiles;
        qtest prop_grid_overused_incremental;
        qtest prop_grid_sparse_vs_dense_oracle;
        qtest prop_grid_generation_tracking;
      ] );
    ( "route.astar",
      [
        Alcotest.test_case "straight line" `Quick test_astar_straight_line;
        Alcotest.test_case "detours" `Quick test_astar_detours_around_wall;
        Alcotest.test_case "unreachable" `Quick test_astar_unreachable;
        Alcotest.test_case "respects region" `Quick test_astar_respects_region;
        Alcotest.test_case "pins exempt" `Quick test_astar_source_target_exempt;
        Alcotest.test_case "multi-source" `Quick test_astar_multi_source;
        qtest prop_astar_optimal_vs_dijkstra;
      ] );
    ( "route.pathfinder",
      [
        Alcotest.test_case "simple net" `Quick test_pathfinder_simple_net;
        Alcotest.test_case "negotiates" `Quick test_pathfinder_negotiates_conflict;
        Alcotest.test_case "single pin" `Quick test_pathfinder_single_pin_net;
        Alcotest.test_case "unroutable" `Quick test_pathfinder_unroutable;
        Alcotest.test_case "unroutable, grid-wide corridor" `Quick
          test_pathfinder_unroutable_wide_corridor;
        Alcotest.test_case "jobs invariant" `Quick test_pathfinder_jobs_invariant;
        Alcotest.test_case "jobs invariant (saturated)" `Quick
          test_pathfinder_jobs_invariant_saturated;
        qtest prop_pathfinder_random_nets_valid;
      ] );
    ( "route.corridor",
      [
        Alcotest.test_case "infeasible corridor reports none" `Quick
          test_corridor_infeasible_reports_none;
        Alcotest.test_case "fallback matches flat route" `Quick
          test_corridor_fallback_matches_flat_route;
        Alcotest.test_case "minimal when feasible" `Quick
          test_corridor_minimal_when_feasible;
        Alcotest.test_case "jobs invariant (corridor forced)" `Quick
          test_corridor_jobs_invariant;
      ] );
    ( "route.validate",
      [
        Alcotest.test_case "rejects obstacle crossing" `Quick
          test_validate_rejects_obstacle_crossing;
        Alcotest.test_case "allows obstacle pins" `Quick
          test_validate_allows_obstacle_pins;
        Alcotest.test_case "rejects out-of-bounds" `Quick
          test_validate_rejects_out_of_bounds;
        Alcotest.test_case "rejects overcapacity" `Quick
          test_validate_rejects_overcapacity;
        Alcotest.test_case "accounting must match" `Quick
          test_validate_accounting_must_match;
      ] );
    ( "route.parallel-pipeline",
      [
        Alcotest.test_case "4gt10-v1_81 jobs invariant" `Slow
          (test_pipeline_route_jobs_invariant "4gt10-v1_81" 4);
        Alcotest.test_case "4gt4-v0_73 jobs invariant" `Slow
          (test_pipeline_route_jobs_invariant "4gt4-v0_73" 8);
      ] );
  ]
