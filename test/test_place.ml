(* Tests for the placement substrate: SA engine, B*-tree packing,
   super-module construction, placer invariants. *)

open Tqec_util
open Tqec_circuit
open Tqec_icm
open Tqec_pdgraph
open Tqec_place

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Sa                                                                  *)
(* ------------------------------------------------------------------ *)

let test_sa_minimizes_quadratic () =
  (* minimize (x - 17)^2 over integers with +-1 moves *)
  let state = ref 100 in
  let cost () = float_of_int ((!state - 17) * (!state - 17)) in
  let rng = Rng.create 5 in
  let best = ref !state in
  let perturb () =
    let prev = !state in
    state := !state + (if Rng.bool rng then 1 else -1);
    fun () -> state := prev
  in
  let params =
    { Sa.iterations = 5000; moves_per_temp = 50; cooling = 0.9;
      initial_acceptance = 0.8 }
  in
  let stats =
    Sa.run ~rng ~params ~cost ~perturb
      ~on_best:(fun _ -> best := !state)
      ()
  in
  check Alcotest.bool "found near-optimal" true (abs (!best - 17) <= 1);
  check Alcotest.bool "best cost consistent" true (stats.Sa.best_cost <= 1.);
  check Alcotest.bool "attempted all" true (stats.Sa.attempted >= 5000)

let test_sa_stats_sane () =
  let state = ref 0 in
  let rng = Rng.create 1 in
  let perturb () =
    incr state;
    fun () -> decr state
  in
  let stats =
    Sa.run ~rng
      ~params:{ Sa.iterations = 200; moves_per_temp = 20; cooling = 0.9;
                initial_acceptance = 0.8 }
      ~cost:(fun () -> float_of_int (abs !state))
      ~perturb ()
  in
  check Alcotest.bool "accepted <= attempted" true
    (stats.Sa.accepted <= stats.Sa.attempted);
  check Alcotest.bool "temperature decayed" true
    (stats.Sa.final_temperature > 0.)

let test_sa_default_params () =
  let p = Sa.default_params ~size:10 in
  check Alcotest.bool "iterations positive" true (p.Sa.iterations > 0);
  check Alcotest.bool "cooling in range" true
    (p.Sa.cooling > 0. && p.Sa.cooling < 1.)

(* The stepper contract behind adaptive multi-start: advancing a
   trajectory in arbitrary chunks is bit-identical to one uninterrupted
   run. *)
let test_sa_stepper_matches_run () =
  let params =
    { Sa.iterations = 3000; moves_per_temp = 40; cooling = 0.92;
      initial_acceptance = 0.8 }
  in
  let make_problem () =
    let state = ref 500 in
    let rng = Rng.create 9 in
    let cost () = float_of_int ((!state - 123) * (!state - 123)) in
    let perturb () =
      let prev = !state in
      state := !state + (if Rng.bool rng then 3 else -2);
      fun () -> state := prev
    in
    (rng, cost, perturb, state)
  in
  let rng, cost, perturb, state_a = make_problem () in
  let direct = Sa.run ~rng ~params ~cost ~perturb () in
  let rng, cost, perturb, state_b = make_problem () in
  let st = Sa.create ~rng ~params ~cost ~perturb () in
  while not (Sa.finished st) do
    Sa.step st 37
  done;
  let chunked = Sa.stats st in
  check Alcotest.int "attempted equal" direct.Sa.attempted chunked.Sa.attempted;
  check Alcotest.int "accepted equal" direct.Sa.accepted chunked.Sa.accepted;
  check (Alcotest.float 0.) "best cost equal" direct.Sa.best_cost
    chunked.Sa.best_cost;
  check Alcotest.int "final state equal" !state_a !state_b;
  check Alcotest.int "total moves" params.Sa.iterations (Sa.total_moves st);
  check Alcotest.int "attempted accessor" chunked.Sa.attempted
    (Sa.attempted st)

(* ------------------------------------------------------------------ *)
(* Bstar_tree                                                          *)
(* ------------------------------------------------------------------ *)

let dims_of_list l = Array.of_list l

let test_bstar_pack_no_overlap () =
  let dims = dims_of_list [ (3, 2); (2, 2); (4, 1); (1, 5); (2, 3) ] in
  let t = Bstar_tree.create dims in
  check Alcotest.(list string) "tree consistent" [] (Bstar_tree.check t);
  let pos, (w, h) = Bstar_tree.pack t in
  check Alcotest.bool "no overlap" false (Bstar_tree.overlaps pos dims);
  check Alcotest.bool "fits bbox" true
    (Array.for_all2
       (fun (x, y) (bw, bh) -> x >= 0 && y >= 0 && x + bw <= w && y + bh <= h)
       pos dims)

let test_bstar_shelves_quality () =
  (* shelves should pack 16 unit squares into area close to 16 *)
  let dims = Array.make 16 (2, 2) in
  let t = Bstar_tree.create_shelves dims in
  check Alcotest.(list string) "tree consistent" [] (Bstar_tree.check t);
  let pos, (w, h) = Bstar_tree.pack t in
  check Alcotest.bool "no overlap" false (Bstar_tree.overlaps pos dims);
  check Alcotest.bool "dense" true (w * h <= 100)

let test_bstar_rotate () =
  let dims = dims_of_list [ (5, 1); (5, 1) ] in
  let t = Bstar_tree.create dims in
  check Alcotest.int "width" 5 (Bstar_tree.width t 0);
  Bstar_tree.rotate t 0;
  check Alcotest.bool "rotated" true (Bstar_tree.is_rotated t 0);
  check Alcotest.int "width after rotate" 1 (Bstar_tree.width t 0);
  check Alcotest.int "height after rotate" 5 (Bstar_tree.height t 0)

let test_bstar_snapshot_restore () =
  let dims = Array.make 8 (2, 3) in
  let t = Bstar_tree.create dims in
  let rng = Rng.create 3 in
  let before = fst (Bstar_tree.pack t) in
  let snap = Bstar_tree.snapshot t in
  for _ = 1 to 10 do
    Bstar_tree.move_block t ~rng (Rng.int rng 8);
    Bstar_tree.rotate t (Rng.int rng 8)
  done;
  Bstar_tree.restore t snap;
  check Alcotest.(list string) "consistent after restore" [] (Bstar_tree.check t);
  let after = fst (Bstar_tree.pack t) in
  check Alcotest.bool "same packing restored" true (before = after)

let prop_bstar_moves_preserve_invariants =
  QCheck.Test.make ~name:"bstar moves keep tree consistent and non-overlapping"
    ~count:60
    QCheck.(pair (int_range 2 20) (int_range 1 500))
    (fun (n, seed) ->
      let rng = Rng.create seed in
      let dims =
        Array.init n (fun i -> (1 + ((i * 7) mod 5), 1 + ((i * 3) mod 4)))
      in
      let t = Bstar_tree.create dims in
      for _ = 1 to 40 do
        match Rng.int rng 3 with
        | 0 -> Bstar_tree.rotate t (Rng.int rng n)
        | 1 -> Bstar_tree.swap_blocks t (Rng.int rng n) (Rng.int rng n)
        | _ -> Bstar_tree.move_block t ~rng (Rng.int rng n)
      done;
      let current_dims =
        Array.init n (fun b -> (Bstar_tree.width t b, Bstar_tree.height t b))
      in
      let pos, _ = Bstar_tree.pack t in
      Bstar_tree.check t = [] && not (Bstar_tree.overlaps pos current_dims))

let prop_bstar_pack_compact_bottom_left =
  QCheck.Test.make ~name:"packed root sits at origin" ~count:50
    (QCheck.int_range 1 15)
    (fun n ->
      let dims = Array.init n (fun i -> (1 + (i mod 3), 1 + (i mod 2))) in
      let t = Bstar_tree.create dims in
      let pos, _ = Bstar_tree.pack t in
      (* block 0 is initially the root: packed at the origin *)
      pos.(0) = (0, 0))

(* Differential check of one tree state: the incremental [pack_xy]
   (whatever its cache holds) must reproduce the brute-force reference
   packer bit for bit, the packing must be overlap-free, and every block
   must be bottom-supported (y = 0 or resting exactly on another
   block's top — the skyline's compactness guarantee). *)
let assert_pack_matches_reference t xs ys =
  let n = Bstar_tree.size t in
  let w, h = Bstar_tree.pack_xy t xs ys in
  let rpos, (rw, rh) = Bstar_tree.pack_reference t in
  let ok = ref ((w, h) = (rw, rh)) in
  for b = 0 to n - 1 do
    if (xs.(b), ys.(b)) <> rpos.(b) then ok := false
  done;
  let cur_dims =
    Array.init n (fun b -> (Bstar_tree.width t b, Bstar_tree.height t b))
  in
  if Bstar_tree.overlaps rpos cur_dims then ok := false;
  for b = 0 to n - 1 do
    let x, y = rpos.(b) in
    if x < 0 || y < 0 then ok := false;
    if y > 0 then begin
      let bw = fst cur_dims.(b) in
      let supported = ref false in
      for j = 0 to n - 1 do
        if j <> b then begin
          let jx, jy = rpos.(j) in
          let jw, jh = cur_dims.(j) in
          if jx < x + bw && x < jx + jw && jy + jh = y then supported := true
        end
      done;
      if not !supported then ok := false
    end
  done;
  !ok

(* The tentpole property: over >= 1000 random move / pack / undo / pack
   steps, the incremental repack (prefix reuse + contour restart) stays
   bit-identical to a from-scratch brute-force pack — for both contour
   back-ends.  Dims are drawn from a small set so block x-intervals
   frequently abut existing breakpoints exactly. *)
let prop_pack_incremental_matches_reference =
  QCheck.Test.make
    ~name:"incremental pack = reference over 1000 move/undo steps"
    ~count:4
    QCheck.(pair (int_range 2 24) (int_range 1 1_000_000))
    (fun (n, seed) ->
      List.for_all
        (fun mode ->
          let rng = Rng.create seed in
          let dims =
            Array.init n (fun i -> (1 + ((i * 7) mod 5), 1 + ((i * 3) mod 4)))
          in
          let t = Bstar_tree.create ~contour:mode dims in
          let xs = Array.make n 0 and ys = Array.make n 0 in
          let ok = ref (assert_pack_matches_reference t xs ys) in
          for _ = 1 to 500 do
            let undo =
              match Rng.int rng 3 with
              | 0 ->
                  let b = Rng.int rng n in
                  Bstar_tree.rotate t b;
                  fun () -> Bstar_tree.rotate t b
              | 1 ->
                  let a = Rng.int rng n and b = Rng.int rng n in
                  Bstar_tree.swap_blocks t a b;
                  fun () -> Bstar_tree.swap_blocks t a b
              | _ ->
                  let snap = Bstar_tree.snapshot t in
                  Bstar_tree.move_block t ~rng (Rng.int rng n);
                  fun () -> Bstar_tree.restore t snap
            in
            if not (assert_pack_matches_reference t xs ys) then ok := false;
            if Rng.bool rng then begin
              (* reject: the cache must survive the restore *)
              undo ();
              if not (assert_pack_matches_reference t xs ys) then ok := false
            end;
            if Bstar_tree.check t <> [] then ok := false
          done;
          !ok)
        [ `Flat; `Balanced ])

(* Same move trajectory through both contour back-ends: identical
   geometry at every step (the mode only changes constants, never
   results). *)
let prop_pack_contour_modes_agree =
  QCheck.Test.make ~name:"flat and balanced contours pack identically"
    ~count:6
    QCheck.(pair (int_range 2 20) (int_range 1 1_000_000))
    (fun (n, seed) ->
      let dims =
        Array.init n (fun i -> (1 + ((i * 5) mod 4), 1 + ((i * 3) mod 5)))
      in
      let tf = Bstar_tree.create ~contour:`Flat dims in
      let tb = Bstar_tree.create ~contour:`Balanced dims in
      let rng_f = Rng.create seed and rng_b = Rng.create seed in
      let xs_f = Array.make n 0 and ys_f = Array.make n 0 in
      let xs_b = Array.make n 0 and ys_b = Array.make n 0 in
      let ok = ref true in
      let apply t rng =
        match Rng.int rng 3 with
        | 0 -> Bstar_tree.rotate t (Rng.int rng n)
        | 1 -> Bstar_tree.swap_blocks t (Rng.int rng n) (Rng.int rng n)
        | _ -> Bstar_tree.move_block t ~rng (Rng.int rng n)
      in
      for _ = 1 to 200 do
        apply tf rng_f;
        apply tb rng_b;
        let wh_f = Bstar_tree.pack_xy tf xs_f ys_f in
        let wh_b = Bstar_tree.pack_xy tb xs_b ys_b in
        if wh_f <> wh_b || xs_f <> xs_b || ys_f <> ys_b then ok := false
      done;
      !ok)

(* Exact-abutment regression: uniform widths make every placement's
   x-interval land exactly on existing breakpoints. *)
let test_pack_abutting_breakpoints () =
  List.iter
    (fun mode ->
      let dims = Array.make 9 (2, 2) in
      let t = Bstar_tree.create ~contour:mode dims in
      let xs = Array.make 9 0 and ys = Array.make 9 0 in
      check Alcotest.bool "uniform grid matches reference" true
        (assert_pack_matches_reference t xs ys);
      let rng = Rng.create 77 in
      for _ = 1 to 50 do
        Bstar_tree.move_block t ~rng (Rng.int rng 9);
        check Alcotest.bool "still matches after move" true
          (assert_pack_matches_reference t xs ys)
      done)
    [ `Flat; `Balanced ]

(* ------------------------------------------------------------------ *)
(* Hpwl_cache                                                          *)
(* ------------------------------------------------------------------ *)

(* Random nets of 2-4 distinct nodes over [0, n). *)
let random_nets rng n =
  let n_nets = 2 * n in
  Array.init n_nets (fun _ ->
      let k = 2 + Rng.int rng 3 in
      let rec draw acc remaining =
        if remaining = 0 then acc
        else
          let v = Rng.int rng n in
          if List.mem v acc then draw acc remaining
          else draw (v :: acc) (remaining - 1)
      in
      Array.of_list (draw [] (min k n)))

(* Drive the cache exactly the way the annealer does: double-buffered
   pack, diff the buffers for changed nodes, incremental update, random
   accept/undo — and assert the cached total equals the from-scratch
   HPWL after every single step. *)
let prop_hpwl_cache_matches_scratch =
  QCheck.Test.make
    ~name:"incremental HPWL = from-scratch over 1000 move/undo steps"
    ~count:8
    QCheck.(pair (int_range 3 20) (int_range 1 1_000_000))
    (fun (n, seed) ->
      let rng = Rng.create seed in
      let dims =
        Array.init n (fun i -> (1 + ((i * 7) mod 5), 1 + ((i * 3) mod 4)))
      in
      let nets = random_nets rng n in
      let tree = Bstar_tree.create dims in
      let xs = [| Array.make n 0; Array.make n 0 |] in
      let ys = [| Array.make n 0; Array.make n 0 |] in
      let cur = ref 0 in
      ignore (Bstar_tree.pack_xy tree xs.(0) ys.(0));
      let cache = Hpwl_cache.create ~n_nodes:n nets in
      ignore (Hpwl_cache.rebuild cache ~xs:xs.(0) ~ys:ys.(0));
      let changed = Array.make n 0 in
      let ok = ref true in
      let agree () =
        Hpwl_cache.total cache
        = Hpwl_cache.compute_xy nets ~xs:xs.(!cur) ~ys:ys.(!cur)
      in
      for _ = 1 to 1000 do
        let undo_structural =
          match Rng.int rng 3 with
          | 0 ->
              let b = Rng.int rng n in
              Bstar_tree.rotate tree b;
              fun () -> Bstar_tree.rotate tree b
          | 1 ->
              let a = Rng.int rng n and b = Rng.int rng n in
              Bstar_tree.swap_blocks tree a b;
              fun () -> Bstar_tree.swap_blocks tree a b
          | _ ->
              let snapshot = Bstar_tree.snapshot tree in
              Bstar_tree.move_block tree ~rng (Rng.int rng n);
              fun () -> Bstar_tree.restore tree snapshot
        in
        let prev_xs = xs.(!cur) and prev_ys = ys.(!cur) in
        let next = 1 - !cur in
        let next_xs = xs.(next) and next_ys = ys.(next) in
        ignore (Bstar_tree.pack_xy tree next_xs next_ys);
        cur := next;
        let n_changed = ref 0 in
        for b = 0 to n - 1 do
          if next_xs.(b) <> prev_xs.(b) || next_ys.(b) <> prev_ys.(b)
          then begin
            changed.(!n_changed) <- b;
            incr n_changed
          end
        done;
        Hpwl_cache.update cache ~xs:next_xs ~ys:next_ys ~changed
          ~n_changed:!n_changed;
        if not (agree ()) then ok := false;
        (* randomly reject the move, as the annealer would *)
        if Rng.bool rng then begin
          undo_structural ();
          Hpwl_cache.restore cache;
          cur := 1 - !cur;
          if not (agree ()) then ok := false
        end
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Super_module                                                        *)
(* ------------------------------------------------------------------ *)

let pipeline_pieces circuit =
  let icm = Decompose.run (Clifford_t.decompose circuit) in
  let g = Pd_graph.of_icm icm in
  ignore (Ishape.run g);
  let time_sms = Super_module.time_sm_modules g in
  let in_sm = Hashtbl.create 16 in
  List.iter (fun (_, ms) -> List.iter (fun m -> Hashtbl.replace in_sm m ()) ms) time_sms;
  let flipping = Flipping.run ~exclude:(Hashtbl.mem in_sm) g in
  (g, flipping, time_sms)

let one_t_circuit () =
  Circuit.make ~name:"one-t" ~n_qubits:2
    [ Gate.Cnot { control = 0; target = 1 }; Gate.T 0;
      Gate.Cnot { control = 1; target = 0 } ]

let test_time_sm_structure () =
  let g, _, time_sms = pipeline_pieces (one_t_circuit ()) in
  ignore g;
  check Alcotest.int "one wire with gadgets" 1 (List.length time_sms);
  let _, modules = List.hd time_sms in
  (* 1 first-order + 4 second-order *)
  check Alcotest.int "five measurement modules" 5 (List.length modules);
  let distinct = List.sort_uniq Int.compare modules in
  check Alcotest.int "all distinct" 5 (List.length distinct)

let test_super_module_build () =
  let g, flipping, _ = pipeline_pieces (one_t_circuit ()) in
  let sm = Super_module.build g flipping in
  let kinds =
    Array.fold_left
      (fun (t, d, c, p) nd ->
        match nd.Super_module.nd_kind with
        | Super_module.Time_sm _ -> (t + 1, d, c, p)
        | Super_module.Distill_sm _ -> (t, d + 1, c, p)
        | Super_module.Chain _ -> (t, d, c + 1, p)
        | Super_module.Plain _ -> (t, d, c, p + 1))
      (0, 0, 0, 0) sm.Super_module.nodes
  in
  let time_sm, distill, _chains, _plain = kinds in
  check Alcotest.int "one time SM" 1 time_sm;
  (* one T gadget: 1 |A> + 2 |Y> boxes *)
  check Alcotest.int "three distillation nodes" 3 distill;
  (* every alive non-distill module claimed exactly once *)
  List.iter
    (fun (m : Pd_graph.module_rec) ->
      match m.m_kind with
      | Pd_graph.Distill _ -> ()
      | _ ->
          if m.m_alive then begin
            check Alcotest.bool
              (Printf.sprintf "module %d claimed" m.m_id)
              true
              (Hashtbl.mem sm.Super_module.node_of_module m.m_id)
          end)
    (Pd_graph.alive_modules g)

let test_module_offsets_distinct () =
  let g, flipping, _ = pipeline_pieces (one_t_circuit ()) in
  let sm = Super_module.build g flipping in
  (* within every node, claimed offsets must be pairwise distinct *)
  let by_node = Hashtbl.create 16 in
  (* hash-order: accumulation commutes (per-node offset lists are
     sort_uniq'd and only counted below) *)
  Hashtbl.iter
    (fun m node ->
      let off = Hashtbl.find sm.Super_module.module_offset m in
      let existing = try Hashtbl.find by_node node with Not_found -> [] in
      Hashtbl.replace by_node node (off :: existing))
    sm.Super_module.node_of_module;
  (* hash-order: independent per-node assertions; any order fails the
     same set *)
  Hashtbl.iter
    (fun node offs ->
      let distinct = List.sort_uniq compare offs in
      check Alcotest.int
        (Printf.sprintf "node %d offsets distinct" node)
        (List.length offs) (List.length distinct))
    by_node

let test_offsets_inside_footprint () =
  let g, flipping, _ = pipeline_pieces (one_t_circuit ()) in
  let sm = Super_module.build g flipping in
  (* hash-order: independent per-module assertions *)
  Hashtbl.iter
    (fun m node ->
      let dx, dy, dz = Hashtbl.find sm.Super_module.module_offset m in
      let nd = sm.Super_module.nodes.(node) in
      check Alcotest.bool
        (Printf.sprintf "module %d inside node %d" m node)
        true
        (dx >= 0 && dx < nd.Super_module.nd_w && dy >= 0
        && dy < nd.Super_module.nd_h && dz >= 0 && dz < nd.Super_module.nd_d))
    sm.Super_module.node_of_module

(* ------------------------------------------------------------------ *)
(* Placer                                                              *)
(* ------------------------------------------------------------------ *)

let place_circuit ?(seed = 42) circuit =
  let icm = Decompose.run (Clifford_t.decompose circuit) in
  let g = Pd_graph.of_icm icm in
  ignore (Ishape.run g);
  let time_sms = Super_module.time_sm_modules g in
  let in_sm = Hashtbl.create 16 in
  List.iter (fun (_, ms) -> List.iter (fun m -> Hashtbl.replace in_sm m ()) ms) time_sms;
  let flipping = Flipping.run ~exclude:(Hashtbl.mem in_sm) g in
  let dual = Dual_bridge.run g in
  let fvalue = Fvalue.plan flipping in
  let config = { Placer.default_config with effort = Placer.Quick; seed } in
  (g, flipping, fvalue, Placer.place ~config g flipping dual fvalue)

let test_placer_three_cnot () =
  let _, _, _, p = place_circuit Suite.three_cnot_example in
  check Alcotest.(list string) "placement valid" [] (Placer.check p);
  check Alcotest.bool "volume positive" true (p.Placer.volume > 0);
  check Alcotest.int "volume consistent" p.Placer.volume
    (p.Placer.width * p.Placer.height * p.Placer.depth)

let test_placer_with_t_gates () =
  let g, flipping, fvalue, p = place_circuit (one_t_circuit ()) in
  ignore g;
  check Alcotest.(list string) "placement valid" [] (Placer.check p);
  (* every claimed module has a well-defined cell and pin;
     hash-order: independent per-module assertions *)
  Hashtbl.iter
    (fun m _ ->
      let cell = Placer.module_cell p m in
      let pin = Placer.pin_cell p fvalue flipping m in
      check Alcotest.bool "pin adjacent-ish to cell" true
        (Vec3.manhattan cell pin <= 2))
    p.Placer.sm.Super_module.node_of_module

let test_placer_deterministic () =
  let _, _, _, a = place_circuit ~seed:7 (one_t_circuit ()) in
  let _, _, _, b = place_circuit ~seed:7 (one_t_circuit ()) in
  check Alcotest.int "same volume" a.Placer.volume b.Placer.volume;
  check Alcotest.bool "same positions" true (a.Placer.node_pos = b.Placer.node_pos)

let test_placer_force_directed () =
  let icm = Decompose.run (Clifford_t.decompose (one_t_circuit ())) in
  let g = Pd_graph.of_icm icm in
  ignore (Ishape.run g);
  let time_sms = Super_module.time_sm_modules g in
  let in_sm = Hashtbl.create 16 in
  List.iter (fun (_, ms) -> List.iter (fun m -> Hashtbl.replace in_sm m ()) ms) time_sms;
  let flipping = Flipping.run ~exclude:(Hashtbl.mem in_sm) g in
  let dual = Dual_bridge.run g in
  let fvalue = Fvalue.plan flipping in
  let config =
    { Placer.default_config with effort = Placer.Quick;
      strategy = Placer.Force_directed }
  in
  let p = Placer.place ~config g flipping dual fvalue in
  check Alcotest.(list string) "force-directed placement valid" []
    (Placer.check p);
  check Alcotest.bool "no rotation used" true
    (Array.for_all not p.Placer.rotated)

let place_multistart ?(margin = Placer.default_config.Placer.early_stop_margin)
    ~restarts ~jobs seed circuit =
  let icm = Decompose.run (Clifford_t.decompose circuit) in
  let g = Pd_graph.of_icm icm in
  ignore (Ishape.run g);
  let time_sms = Super_module.time_sm_modules g in
  let in_sm = Hashtbl.create 16 in
  List.iter (fun (_, ms) -> List.iter (fun m -> Hashtbl.replace in_sm m ()) ms) time_sms;
  let flipping = Flipping.run ~exclude:(Hashtbl.mem in_sm) g in
  let dual = Dual_bridge.run g in
  let fvalue = Fvalue.plan flipping in
  let config =
    { Placer.default_config with effort = Placer.Quick; seed; restarts; jobs;
      early_stop_margin = margin }
  in
  Placer.place ~config g flipping dual fvalue

(* The acceptance-critical determinism property: a multi-start placement
   is a pure function of (seed, restarts) — TQEC_JOBS=1 and TQEC_JOBS=4
   must give identical geometry. *)
let test_placer_jobs_invariant () =
  let circuit = one_t_circuit () in
  let serial = place_multistart ~restarts:4 ~jobs:(Some 1) 11 circuit in
  let parallel = place_multistart ~restarts:4 ~jobs:(Some 4) 11 circuit in
  check Alcotest.(list string) "parallel placement valid" []
    (Placer.check parallel);
  check
    Alcotest.(list int)
    "same (width, height, depth, volume)"
    [ serial.Placer.width; serial.Placer.height; serial.Placer.depth;
      serial.Placer.volume ]
    [ parallel.Placer.width; parallel.Placer.height; parallel.Placer.depth;
      parallel.Placer.volume ];
  check Alcotest.bool "same positions" true
    (serial.Placer.node_pos = parallel.Placer.node_pos);
  check Alcotest.bool "same rotations" true
    (serial.Placer.rotated = parallel.Placer.rotated)

(* Lane 0 of a multi-start run is the single-start trajectory, so the
   best-of-K cost can never exceed the K=1 cost.  Early stopping is
   disabled here so the full-budget attempt accounting is exact. *)
let test_placer_multistart_never_worse () =
  let circuit = one_t_circuit () in
  let single =
    place_multistart ~margin:None ~restarts:1 ~jobs:(Some 1) 42 circuit
  in
  let multi =
    place_multistart ~margin:None ~restarts:3 ~jobs:(Some 2) 42 circuit
  in
  check Alcotest.bool "best-of-3 cost <= single cost" true
    (multi.Placer.sa_stats.Sa.best_cost
    <= single.Placer.sa_stats.Sa.best_cost);
  check Alcotest.bool "attempts accumulate across restarts" true
    (multi.Placer.sa_stats.Sa.attempted
    >= 3 * single.Placer.sa_stats.Sa.attempted)

(* Adaptive early stopping: lane 0 is exempt, so even the most
   aggressive margin never makes the multi-start result worse than the
   single-start run — and stop decisions happen at deterministic epoch
   barriers, so the outcome is identical for any worker count. *)
let test_placer_early_stop () =
  let circuit = one_t_circuit () in
  let single =
    place_multistart ~margin:None ~restarts:1 ~jobs:(Some 1) 42 circuit
  in
  let eager =
    place_multistart ~margin:(Some 0.) ~restarts:4 ~jobs:(Some 1) 42 circuit
  in
  let eager_par =
    place_multistart ~margin:(Some 0.) ~restarts:4 ~jobs:(Some 4) 42 circuit
  in
  check Alcotest.(list string) "early-stopped placement valid" []
    (Placer.check eager);
  check Alcotest.bool "never worse than single-start" true
    (eager.Placer.sa_stats.Sa.best_cost
    <= single.Placer.sa_stats.Sa.best_cost);
  let full =
    place_multistart ~margin:None ~restarts:4 ~jobs:(Some 1) 42 circuit
  in
  check Alcotest.bool "early stop never adds moves" true
    (eager.Placer.sa_stats.Sa.attempted <= full.Placer.sa_stats.Sa.attempted);
  check
    Alcotest.(list int)
    "jobs-invariant under early stop"
    [ eager.Placer.width; eager.Placer.height; eager.Placer.depth;
      eager.Placer.volume; eager.Placer.sa_stats.Sa.attempted ]
    [ eager_par.Placer.width; eager_par.Placer.height; eager_par.Placer.depth;
      eager_par.Placer.volume; eager_par.Placer.sa_stats.Sa.attempted ];
  check Alcotest.bool "same positions under early stop" true
    (eager.Placer.node_pos = eager_par.Placer.node_pos)

(* ------------------------------------------------------------------ *)
(* Partition + divide-and-conquer placement                            *)
(* ------------------------------------------------------------------ *)

let test_partition_balanced () =
  let rng = Rng.create 99 in
  let n = 100 in
  let nets =
    Array.init 60 (fun _ ->
        let k = 2 + Rng.int rng 4 in
        Array.init k (fun _ -> Rng.int rng n))
  in
  let parts = Partition.run ~n ~nets ~max_part:16 in
  let seen = Array.make n 0 in
  Array.iter
    (fun group ->
      check Alcotest.bool "group non-empty" true (Array.length group > 0);
      check Alcotest.bool "group within cap" true (Array.length group <= 16);
      let sorted = Array.copy group in
      Array.sort Int.compare sorted;
      check Alcotest.bool "group sorted" true (sorted = group);
      Array.iter (fun v -> seen.(v) <- seen.(v) + 1) group)
    parts;
  check Alcotest.bool "every node in exactly one group" true
    (Array.for_all (fun c -> c = 1) seen);
  (* pure function of the inputs *)
  check Alcotest.bool "deterministic" true
    (parts = Partition.run ~n ~nets ~max_part:16)

let test_partition_separates_components () =
  (* two 4-cliques with no cross nets and a cap of 4: the bisection must
     recover the connected components exactly *)
  let nets =
    [| [| 0; 1; 2; 3 |]; [| 0; 2 |]; [| 4; 5; 6; 7 |]; [| 5; 7 |] |]
  in
  let parts = Partition.run ~n:8 ~nets ~max_part:4 in
  check Alcotest.int "two groups" 2 (Array.length parts);
  check Alcotest.bool "components preserved" true
    (parts = [| [| 0; 1; 2; 3 |]; [| 4; 5; 6; 7 |] |])

let place_partitioned ?(restarts = 1) ?(jobs = Some 1) ~partition seed circuit =
  let icm = Decompose.run (Clifford_t.decompose circuit) in
  let g = Pd_graph.of_icm icm in
  ignore (Ishape.run g);
  let time_sms = Super_module.time_sm_modules g in
  let in_sm = Hashtbl.create 16 in
  List.iter (fun (_, ms) -> List.iter (fun m -> Hashtbl.replace in_sm m ()) ms) time_sms;
  let flipping = Flipping.run ~exclude:(Hashtbl.mem in_sm) g in
  let dual = Dual_bridge.run g in
  let fvalue = Fvalue.plan flipping in
  let config =
    { Placer.default_config with effort = Placer.Quick; seed; restarts; jobs;
      partition }
  in
  Placer.place ~config g flipping dual fvalue

let test_placer_partitioned_valid () =
  (* a cap of 2 forces many partitions and a non-trivial stitch *)
  let p = place_partitioned ~partition:(Some 2) 42 (one_t_circuit ()) in
  check Alcotest.(list string) "partitioned placement valid" []
    (Placer.check p);
  check Alcotest.int "volume consistent" p.Placer.volume
    (p.Placer.width * p.Placer.height * p.Placer.depth);
  check Alcotest.bool "wirelength non-negative" true (p.Placer.wirelength >= 0)

(* A cap at or above the node count must reproduce the single-die
   trajectory bit for bit: the partitioned path is only entered beyond
   the cap, and anneal_group with the base seed IS the historical
   engine. *)
let test_placer_partition_cap_above_n_identical () =
  let base = place_partitioned ~partition:None 7 (one_t_circuit ()) in
  let capped = place_partitioned ~partition:(Some 100_000) 7 (one_t_circuit ()) in
  check Alcotest.bool "same positions" true
    (base.Placer.node_pos = capped.Placer.node_pos);
  check Alcotest.bool "same rotations" true
    (base.Placer.rotated = capped.Placer.rotated);
  check
    Alcotest.(list int)
    "same extents"
    [ base.Placer.width; base.Placer.height; base.Placer.depth ]
    [ capped.Placer.width; capped.Placer.height; capped.Placer.depth ]

(* Auto-partition: with [partition = None] the placer enters the
   divide-and-conquer path on its own once the node count exceeds
   [auto_partition], with the threshold as the cap — the trajectory
   must be bit-identical to requesting that cap explicitly.  A
   threshold at or above the node count keeps the historical
   single-die anneal bit for bit, so the default (thousands of nodes)
   can never perturb paper-suite results. *)
let place_auto ~auto_partition seed circuit =
  let icm = Decompose.run (Clifford_t.decompose circuit) in
  let g = Pd_graph.of_icm icm in
  ignore (Ishape.run g);
  let time_sms = Super_module.time_sm_modules g in
  let in_sm = Hashtbl.create 16 in
  List.iter (fun (_, ms) -> List.iter (fun m -> Hashtbl.replace in_sm m ()) ms) time_sms;
  let flipping = Flipping.run ~exclude:(Hashtbl.mem in_sm) g in
  let dual = Dual_bridge.run g in
  let fvalue = Fvalue.plan flipping in
  let config =
    { Placer.default_config with effort = Placer.Quick; seed;
      jobs = Some 1; partition = None; auto_partition }
  in
  Placer.place ~config g flipping dual fvalue

let test_placer_auto_partition_matches_explicit () =
  let circuit = one_t_circuit () in
  let auto = place_auto ~auto_partition:3 5 circuit in
  let explicit = place_partitioned ~partition:(Some 3) 5 circuit in
  check Alcotest.bool "node count exceeds the threshold" true
    (Array.length auto.Placer.node_pos > 3);
  check Alcotest.bool "same positions" true
    (auto.Placer.node_pos = explicit.Placer.node_pos);
  check Alcotest.bool "same rotations" true
    (auto.Placer.rotated = explicit.Placer.rotated);
  check
    Alcotest.(list int)
    "same extents"
    [ explicit.Placer.width; explicit.Placer.height; explicit.Placer.depth ]
    [ auto.Placer.width; auto.Placer.height; auto.Placer.depth ]

let test_placer_auto_partition_threshold_above_n_single_die () =
  let circuit = one_t_circuit () in
  let auto = place_auto ~auto_partition:100_000 5 circuit in
  let base = place_partitioned ~partition:None 5 circuit in
  check Alcotest.bool "same positions" true
    (auto.Placer.node_pos = base.Placer.node_pos);
  check Alcotest.bool "same rotations" true
    (auto.Placer.rotated = base.Placer.rotated);
  check
    Alcotest.(list int)
    "same extents"
    [ base.Placer.width; base.Placer.height; base.Placer.depth ]
    [ auto.Placer.width; auto.Placer.height; auto.Placer.depth ]

(* Partitioned placement is a pure function of (seed, restarts, cap):
   the per-partition anneals fan out over the pool (nested with their
   restart lanes), but seeds are partition-indexed, the stitch order is
   deterministic, so jobs=1 and jobs=4 agree bit for bit. *)
let test_placer_partitioned_jobs_invariant () =
  let circuit = one_t_circuit () in
  let serial =
    place_partitioned ~restarts:2 ~jobs:(Some 1) ~partition:(Some 3) 11 circuit
  in
  let parallel =
    place_partitioned ~restarts:2 ~jobs:(Some 4) ~partition:(Some 3) 11 circuit
  in
  check Alcotest.(list string) "parallel partitioned placement valid" []
    (Placer.check parallel);
  check Alcotest.bool "same positions" true
    (serial.Placer.node_pos = parallel.Placer.node_pos);
  check Alcotest.bool "same rotations" true
    (serial.Placer.rotated = parallel.Placer.rotated);
  check
    Alcotest.(list int)
    "same extents and attempts"
    [ serial.Placer.width; serial.Placer.height; serial.Placer.volume;
      serial.Placer.sa_stats.Sa.attempted ]
    [ parallel.Placer.width; parallel.Placer.height; parallel.Placer.volume;
      parallel.Placer.sa_stats.Sa.attempted ]

let prop_partition_well_formed =
  QCheck.Test.make ~name:"partition covers nodes within cap" ~count:60
    QCheck.(
      triple (int_range 1 60) (int_range 1 12)
        (small_list (small_list (int_range 0 59))))
    (fun (n, cap, raw_nets) ->
      let nets =
        raw_nets
        |> List.map (fun l -> Array.of_list (List.filter (fun v -> v < n) l))
        |> Array.of_list
      in
      let parts = Partition.run ~n ~nets ~max_part:cap in
      let seen = Array.make n 0 in
      Array.iter (fun g -> Array.iter (fun v -> seen.(v) <- seen.(v) + 1) g) parts;
      Array.for_all (fun g -> Array.length g > 0 && Array.length g <= cap) parts
      && Array.for_all (fun c -> c = 1) seen)

let prop_placer_valid_on_random =
  QCheck.Test.make ~name:"placement valid on random circuits" ~count:10
    (QCheck.int_range 1 500)
    (fun seed ->
      let c = Generator.random_clifford_t ~seed ~n_qubits:3 ~n_gates:12 in
      let _, _, _, p = place_circuit c in
      Placer.check p = [])

let suites =
  [
    ( "place.sa",
      [
        Alcotest.test_case "minimizes quadratic" `Quick test_sa_minimizes_quadratic;
        Alcotest.test_case "stats sane" `Quick test_sa_stats_sane;
        Alcotest.test_case "default params" `Quick test_sa_default_params;
        Alcotest.test_case "stepper = run" `Quick test_sa_stepper_matches_run;
      ] );
    ( "place.bstar",
      [
        Alcotest.test_case "pack no overlap" `Quick test_bstar_pack_no_overlap;
        Alcotest.test_case "shelves quality" `Quick test_bstar_shelves_quality;
        Alcotest.test_case "rotate" `Quick test_bstar_rotate;
        Alcotest.test_case "snapshot/restore" `Quick test_bstar_snapshot_restore;
        qtest prop_bstar_moves_preserve_invariants;
        qtest prop_bstar_pack_compact_bottom_left;
        qtest prop_pack_incremental_matches_reference;
        qtest prop_pack_contour_modes_agree;
        Alcotest.test_case "abutting breakpoints" `Quick
          test_pack_abutting_breakpoints;
      ] );
    ("place.hpwl_cache", [ qtest prop_hpwl_cache_matches_scratch ]);
    ( "place.super_module",
      [
        Alcotest.test_case "time SM structure" `Quick test_time_sm_structure;
        Alcotest.test_case "build kinds" `Quick test_super_module_build;
        Alcotest.test_case "offsets distinct" `Quick test_module_offsets_distinct;
        Alcotest.test_case "offsets inside footprint" `Quick
          test_offsets_inside_footprint;
      ] );
    ( "place.placer",
      [
        Alcotest.test_case "three-cnot" `Quick test_placer_three_cnot;
        Alcotest.test_case "with T gates" `Quick test_placer_with_t_gates;
        Alcotest.test_case "deterministic" `Quick test_placer_deterministic;
        Alcotest.test_case "jobs-invariant multi-start" `Quick
          test_placer_jobs_invariant;
        Alcotest.test_case "multi-start never worse" `Quick
          test_placer_multistart_never_worse;
        Alcotest.test_case "adaptive early stop" `Quick
          test_placer_early_stop;
        Alcotest.test_case "force-directed" `Quick test_placer_force_directed;
        qtest prop_placer_valid_on_random;
      ] );
    ( "place.partition",
      [
        Alcotest.test_case "balanced groups" `Quick test_partition_balanced;
        Alcotest.test_case "separates components" `Quick
          test_partition_separates_components;
        Alcotest.test_case "partitioned placement valid" `Quick
          test_placer_partitioned_valid;
        Alcotest.test_case "cap above n identical" `Quick
          test_placer_partition_cap_above_n_identical;
        Alcotest.test_case "auto-partition matches explicit cap" `Quick
          test_placer_auto_partition_matches_explicit;
        Alcotest.test_case "auto-partition threshold above n single-die" `Quick
          test_placer_auto_partition_threshold_above_n_single_die;
        Alcotest.test_case "partitioned jobs-invariant" `Quick
          test_placer_partitioned_jobs_invariant;
        qtest prop_partition_well_formed;
      ] );
  ]
