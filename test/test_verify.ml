(* Mutation tests for the translation-validation pass: run the real
   pipeline, plant one fault per stage boundary in the artifacts, and
   assert the verifier rejects it with the right stage (and, where the
   fault maps to a single invariant, the right code).  A verifier that
   accepts any of these planted faults is broken. *)

open Tqec_circuit
open Tqec_compress
module V = Tqec_verify.Violation
module Icm = Tqec_icm.Icm
module Pd = Tqec_pdgraph.Pd_graph

let check = Alcotest.check

let quick variant =
  { Pipeline.default_config with variant; effort = Tqec_place.Placer.Quick }

(* Shared fixtures.  Each mutation test builds its own fresh result (the
   faults mutate shared stage artifacts in place). *)
let run_three () =
  Pipeline.run_icm ~config:(quick Pipeline.Full)
    (Tqec_icm.Decompose.run Suite.three_cnot_example)

let run_two_t () =
  Pipeline.run ~config:(quick Pipeline.Full)
    (Circuit.make ~name:"tt" ~n_qubits:1 [ Gate.T 0; Gate.T 0 ])

let codes_at stage report =
  List.filter_map
    (fun (v : V.t) -> if v.v_stage = stage then Some v.v_code else None)
    report.V.violations

let assert_rejected ~stage ~code report =
  check Alcotest.bool "verifier rejects the planted fault" false (V.ok report);
  let codes = codes_at stage report in
  check Alcotest.bool
    (Printf.sprintf "stage %s reports code %s (got {%s})" (V.stage_name stage)
       code (String.concat ", " codes))
    true
    (List.mem code codes)

(* ------------------------------------------------------------------ *)
(* Clean runs pass                                                     *)
(* ------------------------------------------------------------------ *)

let test_clean_full () =
  let r = run_three () in
  let report = Pipeline.verify r in
  check Alcotest.bool "clean report" true (V.ok report);
  check Alcotest.int "all eight stages checked" (List.length V.all_stages)
    (List.length report.V.checked)

let test_clean_variants_and_gadgets () =
  List.iter
    (fun variant ->
      let r =
        Pipeline.run_icm ~config:(quick variant)
          (Tqec_icm.Decompose.run Suite.three_cnot_example)
      in
      check Alcotest.bool "variant verifies clean" true
        (V.ok (Pipeline.verify r)))
    [ Pipeline.Dual_only; Pipeline.Modular_only ];
  check Alcotest.bool "T-gadget circuit verifies clean" true
    (V.ok (Pipeline.verify (run_two_t ())))

let test_stage_scoping () =
  let r = run_three () in
  let report = Pipeline.verify ~stages:[ V.Icm; V.Placement ] r in
  check Alcotest.bool "scoped report clean" true (V.ok report);
  check Alcotest.bool "only the requested stages ran" true
    (report.V.checked = [ V.Icm; V.Placement ])

let test_check_alias () =
  check Alcotest.(list string) "deprecated alias empty on sound runs" []
    (Pipeline.check (run_three ()))

(* ------------------------------------------------------------------ *)
(* Planted faults, one per stage boundary                              *)
(* ------------------------------------------------------------------ *)

(* ICM: alias a second-order measurement of gadget 1 into gadget 0's
   group, closing a measurement-order cycle. *)
let test_mutation_icm_constraint_cycle () =
  let r = run_two_t () in
  let gadgets = r.Pipeline.icm.Icm.t_gadgets in
  check Alcotest.bool "fixture has two gadgets" true (Array.length gadgets >= 2);
  let g0 = gadgets.(0) and g1 = gadgets.(1) in
  let stolen = List.hd g0.Icm.t_second_meas in
  gadgets.(1) <-
    { g1 with Icm.t_second_meas = stolen :: List.tl g1.Icm.t_second_meas };
  assert_rejected ~stage:V.Icm ~code:"constraint-cycle"
    (Pipeline.verify ~stages:[ V.Icm ] r)

(* PD graph: a module forgets its net list while the nets still claim to
   traverse it — incidence is no longer symmetric. *)
let test_mutation_pd_incidence () =
  let r = run_three () in
  let m =
    List.find
      (fun (m : Pd.module_rec) -> m.Pd.m_nets <> [])
      (Pd.alive_modules r.Pipeline.graph)
  in
  m.Pd.m_nets <- [];
  assert_rejected ~stage:V.Pd_graph ~code:"incidence"
    (Pipeline.verify ~stages:[ V.Pd_graph ] r)

(* I-shape: revive a module the recorded merge map says was absorbed. *)
let test_mutation_ishape_revive_absorbed () =
  let r = run_three () in
  check Alcotest.bool "fixture has merges" true (r.Pipeline.merges <> []);
  let merge = List.hd r.Pipeline.merges in
  (Pd.module_get r.Pipeline.graph merge.Tqec_pdgraph.Ishape.g_absorbed)
    .Pd.m_alive <- true;
  let report = Pipeline.verify ~stages:[ V.Ishape ] r in
  check Alcotest.bool "verifier rejects revived module" false (V.ok report);
  let codes = codes_at V.Ishape report in
  check Alcotest.bool "merge replay notices" true
    (List.exists (fun c -> c = "merge-map" || c = "braiding") codes)

(* Flipping: flip a chain head — Eq. 5 fixes f = 0 there. *)
let test_mutation_fvalue_head_flipped () =
  let r = run_three () in
  let head = List.hd (List.hd r.Pipeline.flipping.Tqec_pdgraph.Flipping.chains) in
  Hashtbl.replace r.Pipeline.fvalue.Tqec_pdgraph.Fvalue.f_of_point head true;
  assert_rejected ~stage:V.Flipping ~code:"fvalue"
    (Pipeline.verify ~stages:[ V.Flipping ] r)

(* Dual bridging: drop a net from a recorded merged structure; the class
   partition no longer covers every net. *)
let test_mutation_dual_class_partition () =
  let r = run_three () in
  let dual = r.Pipeline.dual in
  let merged =
    match dual.Tqec_pdgraph.Dual_bridge.merged with
    | (rep, members) :: rest -> (rep, List.tl members) :: rest
    | [] -> Alcotest.fail "fixture has no merged structures"
  in
  let r = { r with Pipeline.dual = { dual with merged } } in
  assert_rejected ~stage:V.Dual_bridge ~code:"classes"
    (Pipeline.verify ~stages:[ V.Dual_bridge ] r)

(* Placement: two nodes at one anchor — footprints overlap. *)
let test_mutation_placement_overlap () =
  let r = run_three () in
  let p = r.Pipeline.placement in
  check Alcotest.bool "fixture has two nodes" true
    (Array.length p.Tqec_place.Placer.node_pos >= 2);
  let node_pos = Array.copy p.Tqec_place.Placer.node_pos in
  node_pos.(1) <- node_pos.(0);
  let r =
    { r with Pipeline.placement = { p with Tqec_place.Placer.node_pos } }
  in
  assert_rejected ~stage:V.Placement ~code:"overlap"
    (Pipeline.verify ~stages:[ V.Placement ] r)

(* Placement: lift a non-chain module off layer 0. *)
let test_mutation_placement_layer () =
  let r = run_three () in
  let sm = r.Pipeline.placement.Tqec_place.Placer.sm in
  let moved = ref false in
  Array.iter
    (fun (nd : Tqec_place.Super_module.node) ->
      match nd.Tqec_place.Super_module.nd_kind with
      | Tqec_place.Super_module.Plain m when not !moved ->
          let dx, dy, _ =
            Hashtbl.find sm.Tqec_place.Super_module.module_offset m
          in
          Hashtbl.replace sm.Tqec_place.Super_module.module_offset m (dx, dy, 1);
          moved := true
      | _ -> ())
    sm.Tqec_place.Super_module.nodes;
  check Alcotest.bool "fixture has a plain module" true !moved;
  assert_rejected ~stage:V.Placement ~code:"layer"
    (Pipeline.verify ~stages:[ V.Placement ] r)

(* Routing: amputate a cell from an emitted route — the strand no longer
   matches a legal tree over its pins. *)
let test_mutation_routing_cells () =
  let r = run_three () in
  let routing = r.Pipeline.routing in
  let routes =
    match routing.Tqec_route.Pathfinder.routes with
    | route :: rest ->
        let cells = route.Tqec_route.Pathfinder.r_cells in
        check Alcotest.bool "route has cells" true (List.length cells >= 2);
        { route with Tqec_route.Pathfinder.r_cells = List.tl cells } :: rest
    | [] -> Alcotest.fail "fixture has no routes"
  in
  let r =
    {
      r with
      Pipeline.routing = { routing with Tqec_route.Pathfinder.routes };
    }
  in
  let report = Pipeline.verify ~stages:[ V.Routing ] r in
  check Alcotest.bool "verifier rejects amputated route" false (V.ok report);
  let codes = codes_at V.Routing report in
  check Alcotest.bool "legality or volume notices" true
    (List.exists (fun c -> c = "legality" || c = "volume") codes)

(* Routing: misreport the final volume by one unit. *)
let test_mutation_volume_misreport () =
  let r = run_three () in
  let r = { r with Pipeline.volume = r.Pipeline.volume + 1 } in
  assert_rejected ~stage:V.Routing ~code:"volume"
    (Pipeline.verify ~stages:[ V.Routing ] r)

(* Geometry: drop an emitted strand; the diagram no longer matches the
   claimed modules and routes cell-for-cell. *)
let test_mutation_geometry_dropped_strand () =
  let r = run_three () in
  let geom = Emit.geometry r in
  let defects = geom.Tqec_geom.Geometry.defects in
  check Alcotest.bool "geometry has defects" true (defects <> []);
  (* strands of one loop overlap at corner cells, so drop a strand that
     covers at least one cell no other strand does — its structure's cell
     set visibly shrinks *)
  let covers_uniquely (d : Tqec_geom.Defect.t) =
    let others =
      List.concat_map
        (fun (o : Tqec_geom.Defect.t) ->
          if o == d then [] else Tqec_geom.Defect.cells o)
        defects
    in
    List.exists (fun c -> not (List.mem c others)) (Tqec_geom.Defect.cells d)
  in
  let victim = List.find covers_uniquely defects in
  let corrupted =
    {
      geom with
      Tqec_geom.Geometry.defects = List.filter (fun d -> d != victim) defects;
    }
  in
  let report =
    Tqec_verify.Check.run ~stages:[ V.Geometry ]
      {
        Tqec_verify.Check.a_icm = r.Pipeline.icm;
        a_graph = r.Pipeline.graph;
        a_merges = r.Pipeline.merges;
        a_flipping = r.Pipeline.flipping;
        a_dual = r.Pipeline.dual;
        a_fvalue = r.Pipeline.fvalue;
        a_placement = r.Pipeline.placement;
        a_routing = r.Pipeline.routing;
        a_volume = r.Pipeline.volume;
        a_geometry = Some corrupted;
      }
  in
  check Alcotest.bool "verifier rejects dropped strand" false (V.ok report);
  check Alcotest.bool "geometry stage reports it" true
    (codes_at V.Geometry report <> [])

let suites =
  [
    ( "verify.clean",
      [
        Alcotest.test_case "full pipeline verifies clean" `Quick
          test_clean_full;
        Alcotest.test_case "variants and T gadgets clean" `Quick
          test_clean_variants_and_gadgets;
        Alcotest.test_case "stage scoping" `Quick test_stage_scoping;
        Alcotest.test_case "check alias" `Quick test_check_alias;
      ] );
    ( "verify.mutations",
      [
        Alcotest.test_case "icm constraint cycle" `Quick
          test_mutation_icm_constraint_cycle;
        Alcotest.test_case "pd incidence break" `Quick
          test_mutation_pd_incidence;
        Alcotest.test_case "ishape revived absorbed" `Quick
          test_mutation_ishape_revive_absorbed;
        Alcotest.test_case "fvalue head flipped" `Quick
          test_mutation_fvalue_head_flipped;
        Alcotest.test_case "dual class partition" `Quick
          test_mutation_dual_class_partition;
        Alcotest.test_case "placement overlap" `Quick
          test_mutation_placement_overlap;
        Alcotest.test_case "placement wrong layer" `Quick
          test_mutation_placement_layer;
        Alcotest.test_case "routing amputated cell" `Quick
          test_mutation_routing_cells;
        Alcotest.test_case "volume misreport" `Quick
          test_mutation_volume_misreport;
        Alcotest.test_case "geometry dropped strand" `Quick
          test_mutation_geometry_dropped_strand;
      ] );
  ]
