let () =
  Alcotest.run "tqec"
    (List.concat
       [ Test_util.suites; Test_circuit.suites; Test_icm.suites;
         Test_pdgraph.suites; Test_geom.suites; Test_place.suites;
         Test_route.suites; Test_compress.suites; Test_verify.suites; Test_extensions.suites; Test_edge_cases.suites;
         Test_fuzz.suites; Test_serve.suites; Test_lint.suites ])
